// Benchmark trend extraction, ledger lines, and regression diffing.
//
// The raw material is the BENCH_*.json documents every bench binary emits
// (obs/report.hpp schema). extract_trend() flattens one document into
// named numeric metrics with stable keys:
//
//   sweep:<name>:steps_per_second      engine throughput of a sweep section
//   sweep:<name>:wall_seconds          its parallel-phase wall clock
//   profile:<name>:ns_per_step         hot-path envelope cost
//   profile:<name>:<phase>:ns_per_call per-phase breakdown
//   table:<title>:<row>:<header>       numeric experiment-table cells
//   timing:<key>                       named wall-clock phases
//
// Each key classifies as higher-is-better (rates: ".../s", "per_second"),
// lower-is-better (durations: "seconds", "ns_per_..."), or informational
// (counts, ratios) — only the first two participate in regression
// verdicts. diff_trends() compares two entries metric by metric against a
// relative tolerance; the nucon_bench CLI turns its verdict into exit
// codes (`diff`, `check`) and appends machine-tagged, git-sha-stamped
// entries to the committed bench/history/ ledger (`record`), one JSON
// object per line.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nucon::prof {

enum class Direction { kHigherIsBetter, kLowerIsBetter, kInformational };

/// Classification by key substring (see file comment). Durations win over
/// rates when both patterns appear ("wall_seconds" stays lower-is-better).
[[nodiscard]] Direction direction_of(const std::string& key);
[[nodiscard]] const char* direction_name(Direction d);

/// One flattened report: identification tags plus the metric map.
struct TrendEntry {
  std::string bench;        ///< report name ("hotpath", "fdqos", ...)
  std::string machine;      ///< hostname tag (ledger entries)
  std::string git_sha;      ///< source revision tag (ledger entries)
  std::string recorded_at;  ///< ISO-8601 UTC, informational only
  std::map<std::string, double> metrics;
};

/// Flattens a validated BENCH report document. Returns nullopt on
/// malformed JSON or a non-report shape; `error` (when non-null) gets the
/// diagnostic. Tags other than `bench` are left empty — the recorder
/// stamps them.
[[nodiscard]] std::optional<TrendEntry> extract_trend(
    const std::string& report_json, std::string* error);

/// One ledger line (a complete JSON object, no trailing newline).
[[nodiscard]] std::string ledger_line(const TrendEntry& entry);

/// Parses one ledger line back. Returns nullopt with a diagnostic in
/// `error` on malformed input; the caller owns line numbering.
[[nodiscard]] std::optional<TrendEntry> parse_ledger_line(
    const std::string& line, std::string* error);

struct MetricDelta {
  std::string key;
  double before = 0.0;
  double after = 0.0;
  /// Signed relative change, positive = better (direction-aware);
  /// 0 for informational or non-comparable metrics.
  double gain = 0.0;
  Direction direction = Direction::kInformational;
  bool compared = false;  ///< both sides present, finite, nonzero baseline
  bool regression = false;
  bool improvement = false;
};

struct TrendDiff {
  std::vector<MetricDelta> deltas;  ///< key order (deterministic)
  int compared = 0;
  int regressions = 0;
  int improvements = 0;

  [[nodiscard]] bool has_regression() const { return regressions > 0; }
};

/// Compares `after` against the `before` baseline. A directional metric
/// regresses when it moves against its direction by more than `tolerance`
/// (relative, e.g. 0.1 == 10%). Metrics present on only one side are
/// reported uncompared. Per-metric overrides in `tolerance_overrides`
/// (exact key match) replace the global tolerance.
[[nodiscard]] TrendDiff diff_trends(
    const TrendEntry& before, const TrendEntry& after, double tolerance,
    const std::map<std::string, double>& tolerance_overrides = {});

/// Human-readable table of a diff: one row per compared metric, verdict
/// column, summary line.
[[nodiscard]] std::string render_trend_diff(const TrendDiff& diff,
                                            double tolerance);

}  // namespace nucon::prof
