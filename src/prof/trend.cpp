#include "prof/trend.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/minijson.hpp"

namespace nucon::prof {
namespace {

using util::JsonValue;

/// Shortest round-tripping decimal rendering (report.cpp's discipline).
std::string double_json(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

/// A table cell parses as a metric when the whole cell is one finite
/// number (the renderers print "123", "0.973", "1234567"...).
std::optional<double> numeric_cell(const std::string& cell) {
  if (cell.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

void extract_tables(const JsonValue& doc, TrendEntry& out) {
  const JsonValue* tables = doc.find("tables");
  if (tables == nullptr || !tables->is_array()) return;
  for (const JsonValue& table : tables->array) {
    const auto title = table.string_at("title");
    const JsonValue* headers = table.find("headers");
    const JsonValue* rows = table.find("rows");
    if (!title || headers == nullptr || !headers->is_array() ||
        rows == nullptr || !rows->is_array()) {
      continue;
    }
    for (const JsonValue& row : rows->array) {
      if (!row.is_array() || row.array.empty() ||
          !row.array[0].is_string()) {
        continue;
      }
      const std::string& row_key = row.array[0].string;
      for (std::size_t j = 1;
           j < row.array.size() && j < headers->array.size(); ++j) {
        if (!row.array[j].is_string() || !headers->array[j].is_string()) {
          continue;
        }
        const auto v = numeric_cell(row.array[j].string);
        if (!v) continue;
        out.metrics["table:" + *title + ":" + row_key + ":" +
                    headers->array[j].string] = *v;
      }
    }
  }
}

void extract_sweeps(const JsonValue& doc, TrendEntry& out) {
  const JsonValue* sweeps = doc.find("sweeps");
  if (sweeps == nullptr || !sweeps->is_array()) return;
  for (const JsonValue& sweep : sweeps->array) {
    const auto name = sweep.string_at("name");
    if (!name) continue;
    if (const auto sps = sweep.number_at("steps_per_second")) {
      out.metrics["sweep:" + *name + ":steps_per_second"] = *sps;
    }
    if (const auto wall = sweep.number_at("wall_seconds")) {
      out.metrics["sweep:" + *name + ":wall_seconds"] = *wall;
    }
  }
}

void extract_profiles(const JsonValue& doc, TrendEntry& out) {
  const JsonValue* profiles = doc.find("profiles");
  if (profiles == nullptr || !profiles->is_array()) return;
  for (const JsonValue& profile : profiles->array) {
    const auto name = profile.string_at("name");
    if (!name) continue;
    if (const auto ns = profile.number_at("ns_per_step")) {
      out.metrics["profile:" + *name + ":ns_per_step"] = *ns;
    }
    if (const auto cov = profile.number_at("covered_fraction")) {
      out.metrics["profile:" + *name + ":covered_fraction"] = *cov;
    }
    const JsonValue* phases = profile.find("phases");
    if (phases == nullptr || !phases->is_array()) continue;
    for (const JsonValue& phase : phases->array) {
      const auto pname = phase.string_at("phase");
      const auto ns = phase.number_at("ns_per_call");
      if (!pname || !ns) continue;
      out.metrics["profile:" + *name + ":" + *pname + ":ns_per_call"] = *ns;
    }
  }
}

void extract_timings(const JsonValue& doc, TrendEntry& out) {
  const JsonValue* timings = doc.find("timings");
  if (timings == nullptr || !timings->is_object()) return;
  for (const auto& [key, value] : timings->members) {
    if (value.is_number()) out.metrics["timing:" + key] = value.number;
  }
}

}  // namespace

Direction direction_of(const std::string& key) {
  // covered_fraction is a health indicator, not a speed; counts and
  // ratios stay informational too. Durations before rates: "wall_seconds"
  // must not classify as a rate.
  if (contains(key, "covered_fraction") || contains(key, "reduction")) {
    return Direction::kInformational;
  }
  if (contains(key, "seconds") || contains(key, "ns_per_") ||
      contains(key, "ns/call") || contains(key, "ns/step") ||
      contains(key, ":wall_s") || contains(key, "ms/")) {
    return Direction::kLowerIsBetter;
  }
  if (contains(key, "per_second") || contains(key, "/s")) {
    return Direction::kHigherIsBetter;
  }
  return Direction::kInformational;
}

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::kHigherIsBetter:
      return "higher";
    case Direction::kLowerIsBetter:
      return "lower";
    case Direction::kInformational:
      return "info";
  }
  return "info";
}

std::optional<TrendEntry> extract_trend(const std::string& report_json,
                                        std::string* error) {
  util::JsonParseError parse_error;
  const auto doc = util::parse_json(report_json, &parse_error);
  if (!doc) {
    if (error != nullptr) *error = parse_error.to_string();
    return std::nullopt;
  }
  if (!doc->is_object() || !doc->find("name") || !doc->find("v")) {
    if (error != nullptr) *error = "not a BENCH report document";
    return std::nullopt;
  }
  TrendEntry out;
  out.bench = doc->string_at("name").value_or("");
  extract_tables(*doc, out);
  extract_sweeps(*doc, out);
  extract_profiles(*doc, out);
  extract_timings(*doc, out);
  return out;
}

std::string ledger_line(const TrendEntry& entry) {
  std::ostringstream os;
  os << "{\"v\":1,\"bench\":\"" << json_escape(entry.bench)
     << "\",\"machine\":\"" << json_escape(entry.machine) << "\",\"sha\":\""
     << json_escape(entry.git_sha) << "\",\"at\":\""
     << json_escape(entry.recorded_at) << "\",\"metrics\":{";
  bool first = true;
  for (const auto& [key, value] : entry.metrics) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(key) << "\":" << double_json(value);
  }
  os << "}}";
  return os.str();
}

std::optional<TrendEntry> parse_ledger_line(const std::string& line,
                                            std::string* error) {
  util::JsonParseError parse_error;
  const auto doc = util::parse_json(line, &parse_error);
  if (!doc) {
    if (error != nullptr) *error = parse_error.to_string();
    return std::nullopt;
  }
  if (!doc->is_object()) {
    if (error != nullptr) *error = "ledger line is not a JSON object";
    return std::nullopt;
  }
  const auto v = doc->number_at("v");
  if (!v || *v != 1.0) {
    if (error != nullptr) *error = "unsupported ledger line version";
    return std::nullopt;
  }
  const auto bench = doc->string_at("bench");
  const JsonValue* metrics = doc->find("metrics");
  if (!bench || metrics == nullptr || !metrics->is_object()) {
    if (error != nullptr) {
      *error = "ledger line missing \"bench\" or \"metrics\"";
    }
    return std::nullopt;
  }
  TrendEntry out;
  out.bench = *bench;
  out.machine = doc->string_at("machine").value_or("");
  out.git_sha = doc->string_at("sha").value_or("");
  out.recorded_at = doc->string_at("at").value_or("");
  for (const auto& [key, value] : metrics->members) {
    if (value.is_number()) out.metrics[key] = value.number;
  }
  return out;
}

TrendDiff diff_trends(const TrendEntry& before, const TrendEntry& after,
                      double tolerance,
                      const std::map<std::string, double>& tolerance_overrides) {
  TrendDiff diff;
  // Union of keys in map (= lexicographic) order: deterministic output.
  auto ib = before.metrics.begin();
  auto ia = after.metrics.begin();
  while (ib != before.metrics.end() || ia != after.metrics.end()) {
    MetricDelta d;
    bool have_before = false;
    bool have_after = false;
    if (ia == after.metrics.end() ||
        (ib != before.metrics.end() && ib->first < ia->first)) {
      d.key = ib->first;
      d.before = ib->second;
      have_before = true;
      ++ib;
    } else if (ib == before.metrics.end() || ia->first < ib->first) {
      d.key = ia->first;
      d.after = ia->second;
      have_after = true;
      ++ia;
    } else {
      d.key = ib->first;
      d.before = ib->second;
      d.after = ia->second;
      have_before = have_after = true;
      ++ib;
      ++ia;
    }
    d.direction = direction_of(d.key);
    if (have_before && have_after && d.direction != Direction::kInformational &&
        std::isfinite(d.before) && std::isfinite(d.after) && d.before != 0.0) {
      d.compared = true;
      ++diff.compared;
      const double rel = (d.after - d.before) / d.before;
      d.gain = d.direction == Direction::kHigherIsBetter ? rel : -rel;
      const auto it = tolerance_overrides.find(d.key);
      const double tol = it != tolerance_overrides.end() ? it->second
                                                         : tolerance;
      if (d.gain < -tol) {
        d.regression = true;
        ++diff.regressions;
      } else if (d.gain > tol) {
        d.improvement = true;
        ++diff.improvements;
      }
    }
    diff.deltas.push_back(std::move(d));
  }
  return diff;
}

std::string render_trend_diff(const TrendDiff& diff, double tolerance) {
  std::ostringstream os;
  char buf[64];
  const auto fmt = [&buf](double v) {
    std::snprintf(buf, sizeof buf, "%.4g", v);
    return std::string(buf);
  };
  for (const MetricDelta& d : diff.deltas) {
    if (!d.compared) continue;
    std::snprintf(buf, sizeof buf, "%+.1f%%", d.gain * 100.0);
    os << "  " << (d.regression   ? "REGRESSION "
                   : d.improvement ? "improved   "
                                   : "ok         ")
       << buf << "  " << d.key << "  (" << fmt(d.before) << " -> "
       << fmt(d.after) << ", " << direction_name(d.direction)
       << " is better)\n";
  }
  std::snprintf(buf, sizeof buf, "%.0f%%", tolerance * 100.0);
  os << "compared " << diff.compared << " metrics at tolerance " << buf
     << ": " << diff.regressions << " regression(s), " << diff.improvements
     << " improvement(s)\n";
  return os.str();
}

}  // namespace nucon::prof
