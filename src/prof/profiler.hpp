// Hot-path profiling probes for the simulation core.
//
// A ProfileCollector accumulates per-phase (calls, ticks) pairs for the
// scheduler's step taxonomy — delivery choice, oracle sample, trace hook,
// automaton step, payload encode — plus a kStep envelope spanning the
// whole per-process step body. Timestamps come from rdtsc where available
// (one instruction, ~20 cycles, monotone on every x86_64 this project
// targets), so an *active* probe costs two register reads per phase
// boundary; an *inattached* probe (SchedulerOptions::profile == nullptr)
// costs one predictable null test, the same discipline as NUCON_TRACE.
//
// Determinism contract: per-phase CALL COUNTS are a pure function of the
// run and fold into trace::MetricsRegistry as `prof.<phase>.calls`
// counters (only when a collector is attached, so default runs keep
// byte-identical metrics). TICK totals are wall-clock and therefore
// nondeterministic: they never enter the registry and are emitted into
// reports only behind include_timings, exactly like wall_seconds
// (obs::profile_section_of).
//
// The probes compile out entirely under -DNUCON_DISABLE_PROFILING (CMake
// option of the same name): StepProbe's methods become empty inlines and
// the NUCON_PROF macro family expands to ((void)0), leaving the scheduler
// binary with no probe code at all.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace nucon::trace {
class MetricsRegistry;
}  // namespace nucon::trace

namespace nucon::prof {

/// The scheduler hot-loop taxonomy (EXPERIMENTS.md "Profiling & trend
/// tracking"). kStep is the envelope: the whole per-process step body,
/// which the other phases partition via StepProbe::lap.
enum class Phase : int {
  kStep = 0,        ///< envelope: one whole live-process step
  kDeliveryChoice,  ///< injection hook + delivery policy + queue take
  kOracleSample,    ///< Oracle::value(p, now)
  kTraceHook,       ///< step record, metric updates, NUCON_TRACE fan-out,
                    ///< state hashing, decide detection, on_step observer
  kAutomatonStep,   ///< Automaton::step (incl. the automaton's encoding)
  kPayloadEncode,   ///< outgoing message materialization + enqueue
  kCount,
};

inline constexpr int kPhaseCount = static_cast<int>(Phase::kCount);

/// Stable lowercase name ("delivery_choice", ...); the registry key is
/// "prof.<name>.calls".
[[nodiscard]] const char* phase_name(Phase p);

/// Monotone timestamp in "ticks" (rdtsc cycles on x86, nanoseconds on the
/// fallback clock). Convert with ticks_per_second().
[[nodiscard]] inline std::uint64_t ticks_now() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Tick rate, calibrated against the steady clock once per process and
/// cached (nondeterministic, like every wall-clock quantity here).
[[nodiscard]] double ticks_per_second();

struct PhaseStats {
  std::int64_t calls = 0;
  std::int64_t ticks = 0;

  friend bool operator==(const PhaseStats&, const PhaseStats&) = default;
};

/// Per-phase accumulator. Not thread-safe: one collector per run (the
/// sweep engine gives each job its own and merges serially, mirroring the
/// MetricsRegistry fold).
class ProfileCollector {
 public:
  void record(Phase ph, std::uint64_t ticks) {
    PhaseStats& s = phases_[static_cast<std::size_t>(ph)];
    ++s.calls;
    s.ticks += static_cast<std::int64_t>(ticks);
  }

  [[nodiscard]] const PhaseStats& phase(Phase ph) const {
    return phases_[static_cast<std::size_t>(ph)];
  }

  [[nodiscard]] bool empty() const;

  /// Bucket-wise sum; calls stay deterministic under any merge order.
  void merge(const ProfileCollector& other);

  /// Adds `prof.<phase>.calls` counters (kStep included) to the registry.
  /// Tick totals are deliberately NOT folded — they are wall-clock.
  void fold_counts_into(trace::MetricsRegistry& metrics) const;

  /// Wall-clock seconds spent in a phase (ticks / ticks_per_second()).
  [[nodiscard]] double seconds(Phase ph) const;

  /// Mean nanoseconds per call of a phase (0 when never hit).
  [[nodiscard]] double ns_per_call(Phase ph) const;

  /// Fraction of the kStep envelope covered by the inner phases
  /// (0.0 when the envelope is empty, so an empty collector can never
  /// masquerade as perfect coverage next to all-zero timings). The lap
  /// discipline in the scheduler makes this ~1 by construction; the
  /// prof-labeled tests pin >= 0.9 as the acceptance floor.
  [[nodiscard]] double covered_fraction() const;

  /// One line per non-empty phase: name, calls, total ms, ns/call, share.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ProfileCollector&,
                         const ProfileCollector&) = default;

 private:
  std::array<PhaseStats, kPhaseCount> phases_{};
};

#ifdef NUCON_DISABLE_PROFILING

class StepProbe {
 public:
  explicit StepProbe(ProfileCollector*) {}
  void begin() {}
  void lap(Phase) {}
  void finish() {}
};

#define NUCON_PROF(collector, call) ((void)0)
#define NUCON_PROF_SCOPE(collector, phase) ((void)0)

#else  // profiling compiled in

/// Lap-style step timer: begin() stamps the envelope start, each lap(ph)
/// charges the interval since the previous boundary to `ph`, finish()
/// charges begin()..now to kStep. Because consecutive laps share their
/// boundary timestamp, the inner phases partition the envelope exactly —
/// no double counting, no uncovered gaps beyond the loop control outside
/// begin()/finish().
class StepProbe {
 public:
  explicit StepProbe(ProfileCollector* c) : c_(c) {}

  void begin() {
    if (c_ == nullptr) return;
    start_ = last_ = ticks_now();
  }
  void lap(Phase ph) {
    if (c_ == nullptr) return;
    const std::uint64_t now = ticks_now();
    // Clamp instead of trusting the TSC: a backwards step (SMI, migration
    // across unsynced sockets) would otherwise wrap to a huge unsigned
    // delta and poison the phase total into nonsense (the all-zero-ns
    // H3 rendering bug).
    c_->record(ph, now >= last_ ? now - last_ : 0);
    last_ = now;
  }
  void finish() {
    if (c_ == nullptr) return;
    const std::uint64_t now = ticks_now();
    c_->record(Phase::kStep, now >= start_ ? now - start_ : 0);
  }

 private:
  ProfileCollector* c_;
  std::uint64_t start_ = 0;
  std::uint64_t last_ = 0;
};

/// Null-check guard, NUCON_TRACE's pattern:
///   NUCON_PROF(collector, record(Phase::kStep, dt));
#define NUCON_PROF(collector, call)  \
  do {                               \
    if (collector) (collector)->call; \
  } while (0)

namespace detail {
/// RAII probe for coarse, non-lap scopes (bench harnesses, tests).
class ScopedProbe {
 public:
  ScopedProbe(ProfileCollector* c, Phase ph)
      : c_(c), ph_(ph), t0_(c ? ticks_now() : 0) {}
  ~ScopedProbe() {
    if (c_ == nullptr) return;
    const std::uint64_t now = ticks_now();
    c_->record(ph_, now >= t0_ ? now - t0_ : 0);  // clamp, as StepProbe::lap
  }
  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;

 private:
  ProfileCollector* c_;
  Phase ph_;
  std::uint64_t t0_;
};
}  // namespace detail

#define NUCON_PROF_CAT2(a, b) a##b
#define NUCON_PROF_CAT(a, b) NUCON_PROF_CAT2(a, b)
#define NUCON_PROF_SCOPE(collector, phase)                 \
  ::nucon::prof::detail::ScopedProbe NUCON_PROF_CAT(       \
      nucon_prof_scope_, __LINE__)(collector, phase)

#endif  // NUCON_DISABLE_PROFILING

}  // namespace nucon::prof
