#include "prof/profiler.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "trace/metrics.hpp"

namespace nucon::prof {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kStep:
      return "step";
    case Phase::kDeliveryChoice:
      return "delivery_choice";
    case Phase::kOracleSample:
      return "oracle_sample";
    case Phase::kTraceHook:
      return "trace_hook";
    case Phase::kAutomatonStep:
      return "automaton_step";
    case Phase::kPayloadEncode:
      return "payload_encode";
    case Phase::kCount:
      break;
  }
  return "unknown";
}

double ticks_per_second() {
#if defined(__x86_64__) || defined(__i386__)
  // Calibrate rdtsc against the steady clock over a few milliseconds,
  // once per process. Invariant-TSC hardware (everything this project
  // targets) makes the rate constant, so one calibration suffices.
  static const double rate = [] {
    const auto wall0 = std::chrono::steady_clock::now();
    const std::uint64_t t0 = ticks_now();
    // Busy-wait ~2ms; long enough to drown clock-read latency, short
    // enough to be invisible at process startup.
    while (std::chrono::steady_clock::now() - wall0 <
           std::chrono::milliseconds(2)) {
    }
    const std::uint64_t t1 = ticks_now();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();
    return secs > 0.0 ? static_cast<double>(t1 - t0) / secs : 1e9;
  }();
  return rate;
#else
  return 1e9;  // fallback clock already counts nanoseconds
#endif
}

bool ProfileCollector::empty() const {
  for (const PhaseStats& s : phases_) {
    if (s.calls != 0) return false;
  }
  return true;
}

void ProfileCollector::merge(const ProfileCollector& other) {
  for (int i = 0; i < kPhaseCount; ++i) {
    phases_[static_cast<std::size_t>(i)].calls +=
        other.phases_[static_cast<std::size_t>(i)].calls;
    phases_[static_cast<std::size_t>(i)].ticks +=
        other.phases_[static_cast<std::size_t>(i)].ticks;
  }
}

void ProfileCollector::fold_counts_into(trace::MetricsRegistry& metrics) const {
  for (int i = 0; i < kPhaseCount; ++i) {
    const Phase ph = static_cast<Phase>(i);
    metrics.counter(std::string("prof.") + phase_name(ph) + ".calls") +=
        phase(ph).calls;
  }
}

double ProfileCollector::seconds(Phase ph) const {
  return static_cast<double>(phase(ph).ticks) / ticks_per_second();
}

double ProfileCollector::ns_per_call(Phase ph) const {
  const PhaseStats& s = phase(ph);
  if (s.calls == 0) return 0.0;
  return seconds(ph) * 1e9 / static_cast<double>(s.calls);
}

double ProfileCollector::covered_fraction() const {
  const std::int64_t envelope = phase(Phase::kStep).ticks;
  // An empty (or clamped-to-zero) envelope reports zero coverage: "no
  // timing data" must be distinguishable from "fully covered" in reports.
  if (envelope <= 0) return 0.0;
  std::int64_t inner = 0;
  for (int i = 0; i < kPhaseCount; ++i) {
    if (static_cast<Phase>(i) == Phase::kStep) continue;
    inner += phases_[static_cast<std::size_t>(i)].ticks;
  }
  return static_cast<double>(inner) / static_cast<double>(envelope);
}

std::string ProfileCollector::to_string() const {
  std::ostringstream os;
  char buf[64];
  for (int i = 0; i < kPhaseCount; ++i) {
    const Phase ph = static_cast<Phase>(i);
    const PhaseStats& s = phase(ph);
    if (s.calls == 0) continue;
    const double share =
        phase(Phase::kStep).ticks > 0
            ? static_cast<double>(s.ticks) /
                  static_cast<double>(phase(Phase::kStep).ticks)
            : 0.0;
    std::snprintf(buf, sizeof buf, "%.3f ms  %.1f ns/call  %.1f%%",
                  seconds(ph) * 1e3, ns_per_call(ph), share * 100.0);
    os << phase_name(ph) << ": calls=" << s.calls << "  " << buf << "\n";
  }
  return os.str();
}

}  // namespace nucon::prof
