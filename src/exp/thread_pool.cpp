#include "exp/thread_pool.hpp"

#include <stdexcept>

namespace nucon::exp {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(cv_mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lk(cv_mu_);
  return queued_count_;
}

void ThreadPool::enqueue(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lk(cv_mu_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit after shutdown began");
    }
    target = next_++ % workers_.size();
    ++queued_count_;
  }
  {
    std::lock_guard<std::mutex> lk(workers_[target]->mu);
    workers_[target]->queue.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t index, std::function<void()>& out) {
  // Own deque first (LIFO end: the task most recently pushed here)...
  {
    Worker& w = *workers_[index];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.queue.empty()) {
      out = std::move(w.queue.back());
      w.queue.pop_back();
      return true;
    }
  }
  // ...then steal from siblings, oldest task first.
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& w = *workers_[(index + k) % workers_.size()];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.queue.empty()) {
      out = std::move(w.queue.front());
      w.queue.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  std::function<void()> task;
  while (true) {
    if (try_pop(index, task)) {
      {
        std::lock_guard<std::mutex> lk(cv_mu_);
        --queued_count_;
      }
      task();
      task = nullptr;
      // A completed task may have submitted follow-up work; siblings parked
      // on the cv only wake on submit, so poke one along.
      cv_.notify_one();
      continue;
    }
    std::unique_lock<std::mutex> lk(cv_mu_);
    cv_.wait(lk, [this] { return stopping_ || queued_count_ > 0; });
    if (stopping_ && queued_count_ == 0) return;
  }
}

}  // namespace nucon::exp
