// Parallel experiment sweep engine.
//
// A SweepPoint is one fully self-describing experiment: algorithm, system
// size, crash count/timing, oracle family knobs, step budget and seed.
// Everything a run needs (failure pattern, oracle stack, proposals,
// scheduler options) is derived deterministically from the point, so any
// point re-executes bit-for-bit anywhere — on a worker thread of the
// SweepRunner, or serially through replay_failure() when a run goes wrong.
//
// A SweepGrid is the declarative cross product the benches and
// tools/nucon_explore expand (algorithm x n x faults x stabilization x
// faulty-module behavior x seed range). SweepRunner executes the expanded
// points on a work-stealing ThreadPool and then folds the per-point
// ConsensusRunStats into a SweepAggregate *serially, in expansion order*,
// so aggregates are bit-identical for any thread count (floating-point
// accumulation order never depends on scheduling).
//
// Any point whose verdict misses its algorithm's expectation yields a
// ReplayArtifact — a one-line, parseable description that
// `nucon_explore --replay '<artifact>'` (or replay_failure() in code)
// re-executes serially for debugging.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algo/harness.hpp"
#include "fd/sigma_nu.hpp"
#include "prof/profiler.hpp"
#include "trace/trace_recorder.hpp"
#include "util/stats.hpp"

namespace nucon {
class FdBoard;  // fd/impl/host.hpp
}  // namespace nucon

namespace nucon::exp {

/// Every consensus algorithm the library can run under its canonical
/// oracle family (the same registry tools/nucon_explore exposes).
enum class Algo {
  kAnuc,         // A_nuc with (Omega, Sigma^nu+)
  kStacked,      // StackedNuc with raw (Omega, Sigma^nu)
  kMrMajority,   // Mostefaoui-Raynal, majorities, Omega only
  kMrSigma,      // MR with Sigma quorums, (Omega, Sigma)
  kNaive,        // the broken §6.3 substitution: MR quorums over Sigma^nu
  kCt,           // Chandra-Toueg with <>S
  kBenOr,        // randomized, no oracle
  kFromScratch,  // Thm 7.1 IF stack: election + Sigma-from-majority + MR
};

[[nodiscard]] const char* algo_name(Algo a);
[[nodiscard]] std::optional<Algo> parse_algo(const std::string& name);

/// What a correct run of the algorithm must satisfy. kNone marks algorithms
/// that are *expected* to misbehave (the naive substitution), so their
/// violations are counted but do not spawn replay artifacts.
enum class Expect { kNonuniform, kUniform, kNone };
[[nodiscard]] Expect expectation(Algo a);
[[nodiscard]] const char* expect_name(Expect e);

/// Where a point's Omega/<>S component comes from. kGenerated reads the
/// ground-truth failure pattern (the classic oracles); kImplemented runs
/// heartbeat modules (fd/impl/) beside the algorithm under the timing-aware
/// scheduler and feeds their measured outputs through the oracle interface.
/// Quorum components (Sigma family) stay generated either way — the
/// heartbeat automata implement leader/suspect detectors only.
enum class FdSource { kGenerated, kImplemented };
[[nodiscard]] const char* fd_source_name(FdSource s);

/// True for algorithms whose canonical oracle has a heartbeat-implementable
/// component (everything but ben-or and from-scratch, which consume no
/// Omega/<>S from the oracle).
[[nodiscard]] bool supports_implemented_fd(Algo a);

/// The canonical oracle stack of an algorithm: owns every layer and exposes
/// the composed top the run queries. Factored out of the sweep engine's
/// per-point setup so external drivers (tools/nucon_explore, the fuzzer in
/// src/fuzz) construct byte-for-byte the same oracles — seed offsets
/// included — as the sweeps; any configuration replays identically
/// everywhere. Oracles are stateful (lazily fixed histories), so every job
/// builds its own stack; nothing is shared across threads.
class AlgoOracles {
 public:
  /// With a non-null `board`, the stack's Omega/<>S layer is an
  /// ImplementedOracle over it (the hosted heartbeat modules' output
  /// variables) instead of a generated oracle; quorum layers and their
  /// seed offsets are unchanged. ben-or / from-scratch reject a board.
  AlgoOracles(Algo algo, const FailurePattern& fp, Time stabilize,
              FaultyQuorumBehavior faulty_mode, std::uint64_t seed,
              std::shared_ptr<FdBoard> board = nullptr, Time hold = 8);

  [[nodiscard]] Oracle& top() { return *top_; }

 private:
  template <typename T, typename... Args>
  T& make(Args&&... args) {
    owned_.push_back(std::make_unique<T>(std::forward<Args>(args)...));
    top_ = owned_.back().get();
    return static_cast<T&>(*top_);
  }

  std::vector<std::unique_ptr<Oracle>> owned_;
  Oracle* top_ = nullptr;
};

/// The consensus factory an algorithm denotes at system size n (seed only
/// feeds Ben-Or's coin). Same registry the sweep points run.
[[nodiscard]] ConsensusFactory consensus_factory_of(Algo a, Pid n,
                                                    std::uint64_t seed);

/// One grid point == one deterministic run.
struct SweepPoint {
  Algo algo = Algo::kAnuc;
  Pid n = 5;
  Pid faults = 1;
  /// Oracle stabilization time (Omega and the quorum component).
  Time stabilize = 120;
  /// Redraw interval for the quorum detectors' noisy component (SigmaOptions
  /// ::hold and friends). The default matches the oracle defaults and is the
  /// adversarial-noise regime: quorums keep churning forever relative to a
  /// round (3n^2 steps), so histories grow with every await step. Scaling
  /// benches raise it to ~rounds so they measure the post-GST regime where
  /// the quorum stream is stable; printed in specs only off-default, so
  /// pre-existing artifacts (and golden traces) are untouched.
  Time hold = 8;
  /// 0 spreads crashes randomly before `stabilize`; > 0 pins them all here.
  Time crash_at = 0;
  FaultyQuorumBehavior faulty_mode = FaultyQuorumBehavior::kAdversarialDisjoint;
  std::int64_t max_steps = 200'000;
  std::uint64_t seed = 1;
  /// kImplemented hosts heartbeat detectors beside the algorithm and runs
  /// under the timing-aware scheduler; artifacts print an `fd=` token only
  /// for this non-default value, so pre-existing artifact strings (and the
  /// golden traces embedding them) are untouched.
  FdSource fd = FdSource::kGenerated;

  friend bool operator==(const SweepPoint&, const SweepPoint&) = default;
};

/// Declarative cross product. expand() emits points in a fixed nested order
/// (algo, n, faults, stabilize, mode, seed) and silently skips infeasible
/// combinations (faults >= n).
struct SweepGrid {
  std::vector<Algo> algos = {Algo::kAnuc};
  std::vector<Pid> ns = {5};
  std::vector<Pid> fault_counts = {1};
  std::vector<Time> stabilizes = {120};
  std::vector<FaultyQuorumBehavior> faulty_modes = {
      FaultyQuorumBehavior::kAdversarialDisjoint};
  Time crash_at = 0;
  std::uint64_t seed_begin = 1;
  int seed_count = 1;
  std::int64_t max_steps = 200'000;
  FdSource fd = FdSource::kGenerated;

  [[nodiscard]] std::vector<SweepPoint> expand() const;
};

/// Serializable pointer to a failed run: `to_string()` round-trips through
/// `parse()`, and the CLI accepts it verbatim (--replay).
struct ReplayArtifact {
  SweepPoint point;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<ReplayArtifact> parse(
      const std::string& line);

  friend bool operator==(const ReplayArtifact&, const ReplayArtifact&) = default;
};

struct JobOutcome {
  SweepPoint point;
  ConsensusRunStats stats;
  /// Verdict measured against expectation(point.algo).
  bool ok = true;
  /// Hot-path phase profile of this job (empty unless the runner had
  /// set_profiling(true)). Call counts are deterministic; tick timings
  /// are wall-clock.
  prof::ProfileCollector profile;
};

/// Merged view of a sweep, folded serially in expansion order.
struct SweepAggregate {
  std::int64_t runs = 0;
  std::int64_t undecided = 0;              // some correct process never decided
  std::int64_t termination_failures = 0;   // verdict.termination false
  std::int64_t uniform_violations = 0;
  std::int64_t nonuniform_violations = 0;
  std::int64_t expectation_failures = 0;   // !JobOutcome::ok

  Accumulator decide_rounds;  // over runs that decided (decide_round > 0)
  Accumulator steps;
  Accumulator messages;
  Accumulator kbytes;

  /// Per-job MetricsRegistry entries merged serially in expansion order
  /// (integer-only, so bit-identical for any thread count).
  trace::MetricsRegistry metrics;

  /// One artifact per failed-expectation point, in expansion order.
  std::vector<ReplayArtifact> failures;

  /// When the runner has a trace dir: one JSONL trace path per entry of
  /// `failures`, same order (empty otherwise).
  std::vector<std::string> failure_trace_paths;
};

struct SweepResult {
  std::vector<JobOutcome> jobs;  // expansion order, independent of threads
  SweepAggregate aggregate;
  /// Wall-clock of the parallel execution phase (not deterministic; never
  /// part of the aggregate).
  double wall_seconds = 0.0;
  /// Wall-clock of the serial fold phase, including failure-trace
  /// attachment (not deterministic either).
  double fold_seconds = 0.0;
  /// Simulation throughput of the parallel phase: total simulated steps
  /// across all jobs divided by wall_seconds. Derived from wall-clock, so
  /// like the fields above it never enters the aggregate and is emitted in
  /// reports only alongside the other timing fields.
  double steps_per_second = 0.0;
  /// Per-job profiles merged serially in expansion order (empty unless
  /// the runner had set_profiling(true)). Call counts deterministic, tick
  /// timings wall-clock — reports emit them behind include_timings only.
  prof::ProfileCollector profile;
};

class SweepRunner {
 public:
  /// threads == 0 picks hardware concurrency.
  explicit SweepRunner(unsigned threads = 0) : threads_(threads) {}

  /// Auto-attach a JSONL trace to every failed-expectation job: each one
  /// is re-executed serially (bit-identical by construction) with a
  /// TraceRecorder and written to `dir/failure-<index>.trace.jsonl`; the
  /// paths land in SweepAggregate::failure_trace_paths next to the replay
  /// artifacts. Empty (the default) disables attachment.
  void set_trace_dir(std::string dir) { trace_dir_ = std::move(dir); }

  /// Attach a hot-path ProfileCollector to every job's scheduler run.
  /// Each job profiles into its own collector (rdtsc probes are not
  /// thread-safe to share) and the runner merges them serially in
  /// expansion order into SweepResult::profile; the deterministic
  /// `prof.<phase>.calls` counters land in each job's metrics and hence
  /// the aggregate, bit-identical for any thread count.
  void set_profiling(bool on) { profiling_ = on; }

  /// After every run(), write a versioned JSON report to `path`: one
  /// section per grid cell (all seeds of one algo/n/faults/stab/mode
  /// combination) with verdict counts and folded metrics, a "total"
  /// section with the failure artifacts and attached trace paths, and
  /// wall-clock per phase (execute/fold). The report body is a pure
  /// function of the fold, so it is bit-identical for any thread count
  /// (timing fields aside); obs/report.hpp defines the schema. Empty (the
  /// default) disables report writing.
  void set_report_path(std::string path) { report_path_ = std::move(path); }

  [[nodiscard]] SweepResult run(const std::vector<SweepPoint>& points) const;
  [[nodiscard]] SweepResult run(const SweepGrid& grid) const;

 private:
  unsigned threads_;
  bool profiling_ = false;
  std::string trace_dir_;
  std::string report_path_;
};

/// The failure pattern a point deterministically denotes.
[[nodiscard]] FailurePattern failure_pattern_of(const SweepPoint& pt);

/// The proposals a point runs with (alternating 0/1, the benches' mix).
[[nodiscard]] std::vector<Value> proposals_of(const SweepPoint& pt);

/// Executes one point to its stats summary (this is the per-job body the
/// runner schedules; callable serially too). A non-null `profile`
/// receives the run's rdtsc phase breakdown and makes the deterministic
/// `prof.<phase>.calls` counters appear in the returned metrics.
[[nodiscard]] ConsensusRunStats run_point(
    const SweepPoint& pt, prof::ProfileCollector* profile = nullptr);

/// Full simulation of one point, for tracing/debugging (keeps the recorded
/// Run and the automata, which run_point folds away).
[[nodiscard]] SimResult simulate_point(const SweepPoint& pt);

/// Serial re-execution of a failed point. Identical to run_point by
/// construction — the guarantee a replay artifact exists to exploit.
[[nodiscard]] ConsensusRunStats replay_failure(const ReplayArtifact& artifact);

/// One point executed with a TraceRecorder attached: the stats summary
/// plus the JSONL trace document (meta line, typed events, trailing
/// verdict line). The JSONL is a pure function of the point, so it is
/// byte-identical wherever it is produced.
struct TracedRun {
  ConsensusRunStats stats;
  std::string jsonl;
};
[[nodiscard]] TracedRun trace_point(const SweepPoint& pt,
                                    trace::TraceRecorder::Options opts = {});

}  // namespace nucon::exp
