#include "exp/sweep.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <stdexcept>

#include "algo/ben_or.hpp"
#include "algo/ct_consensus.hpp"
#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"
#include "core/from_scratch.hpp"
#include "core/stacked_nuc.hpp"
#include "exp/thread_pool.hpp"
#include "obs/report.hpp"
#include "fd/classic.hpp"
#include "fd/composed.hpp"
#include "fd/impl/host.hpp"
#include "fd/omega.hpp"
#include "fd/scripted.hpp"
#include "fd/sigma.hpp"
#include "fd/sigma_nu.hpp"

namespace nucon::exp {
namespace {

struct AlgoInfo {
  Algo algo;
  const char* name;
  Expect expect;
};

constexpr AlgoInfo kAlgoTable[] = {
    {Algo::kAnuc, "anuc", Expect::kNonuniform},
    {Algo::kStacked, "stacked", Expect::kNonuniform},
    {Algo::kMrMajority, "mr-majority", Expect::kUniform},
    {Algo::kMrSigma, "mr-sigma", Expect::kUniform},
    {Algo::kNaive, "naive", Expect::kNone},
    {Algo::kCt, "ct", Expect::kUniform},
    {Algo::kBenOr, "ben-or", Expect::kUniform},
    {Algo::kFromScratch, "from-scratch", Expect::kUniform},
};

const AlgoInfo& info_of(Algo a) {
  for (const AlgoInfo& i : kAlgoTable) {
    if (i.algo == a) return i;
  }
  throw std::invalid_argument("unknown Algo");
}

const char* mode_name(FaultyQuorumBehavior b) {
  switch (b) {
    case FaultyQuorumBehavior::kBenign:
      return "benign";
    case FaultyQuorumBehavior::kNoise:
      return "noise";
    default:
      return "adversarial";
  }
}

std::optional<FaultyQuorumBehavior> parse_mode(const std::string& s) {
  if (s == "benign") return FaultyQuorumBehavior::kBenign;
  if (s == "noise") return FaultyQuorumBehavior::kNoise;
  if (s == "adversarial") return FaultyQuorumBehavior::kAdversarialDisjoint;
  return std::nullopt;
}

std::optional<FdSource> parse_fd_source(const std::string& s) {
  if (s == "generated") return FdSource::kGenerated;
  if (s == "implemented") return FdSource::kImplemented;
  return std::nullopt;
}

/// The detector class the hosted heartbeat modules present to `a`'s
/// canonical stack: the leader consumers take Omega, CT takes <>S.
HeartbeatMode implemented_mode_of(Algo a) {
  if (a == Algo::kCt) return HeartbeatMode::kDiamondS;
  return HeartbeatMode::kOmega;
}

void validate(const SweepPoint& pt) {
  if (pt.n < 2 || pt.n > kMaxProcesses || pt.faults < 0 || pt.faults >= pt.n ||
      pt.max_steps <= 0 ||
      (pt.fd == FdSource::kImplemented && !supports_implemented_fd(pt.algo))) {
    throw std::invalid_argument("infeasible SweepPoint: " +
                                ReplayArtifact{pt}.to_string());
  }
}

/// Everything a point's run needs, derived from the point alone via the
/// public AlgoOracles/consensus_factory_of pieces. The seed offsets match
/// tools/nucon_explore's historical scheme so explorer sessions before and
/// after the engine landed replay identically.
struct PointSetup {
  FailurePattern fp;
  /// Only populated for fd=implemented points: the FdHost-wrapped factory
  /// plus the board its heartbeat modules publish to.
  HostedConsensus hosted;
  AlgoOracles oracle;
  ConsensusFactory make;
  std::vector<Value> proposals;
  SchedulerOptions opts;

  explicit PointSetup(const SweepPoint& pt)
      : fp(failure_pattern_of(pt)),
        hosted(pt.fd == FdSource::kImplemented
                   ? make_hosted_consensus(
                         consensus_factory_of(pt.algo, pt.n, pt.seed), pt.n,
                         implemented_mode_of(pt.algo))
                   : HostedConsensus{}),
        oracle(pt.algo, fp, pt.stabilize, pt.faulty_mode, pt.seed,
               hosted.board, pt.hold),
        make(hosted.board ? hosted.factory
                          : consensus_factory_of(pt.algo, pt.n, pt.seed)),
        proposals(proposals_of(pt)) {
    opts.seed = pt.seed;
    opts.max_steps = pt.max_steps;
    // Implemented detectors run under the timed network: latency becomes a
    // modeled quantity the timeouts can track, so suspicions stabilize
    // instead of chasing the adversarial delivery policy. Part of the
    // point's deterministic derivation, so artifacts replay identically.
    if (pt.fd == FdSource::kImplemented) opts.timing.enabled = true;
  }
};

/// The cell a point belongs to: everything but the seed. Points of one
/// cell fold into one report section.
std::string cell_spec_of(const SweepPoint& pt) {
  std::ostringstream os;
  os << "algo=" << algo_name(pt.algo) << " n=" << pt.n
     << " faults=" << pt.faults << " stab=" << pt.stabilize
     << " crash=" << pt.crash_at << " mode=" << mode_name(pt.faulty_mode)
     << " steps=" << pt.max_steps;
  // Printed only off-default: specs and artifacts from before the fd and
  // hold dimensions existed (including those embedded in golden traces)
  // must stay byte-identical.
  if (pt.fd != FdSource::kGenerated) os << " fd=" << fd_source_name(pt.fd);
  if (pt.hold != 8) os << " hold=" << pt.hold;
  return os.str();
}

/// Builds and writes the runner-level report: per-cell sections in
/// first-appearance (= expansion) order, then a "total" section carrying
/// the failure artifacts and attached trace paths.
void write_runner_report(const SweepResult& result, const std::string& path) {
  obs::BenchReport report;
  report.name = "sweep";

  std::vector<std::string> cell_order;
  std::map<std::string, std::vector<std::size_t>> cells;
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const std::string spec = cell_spec_of(result.jobs[i].point);
    auto [it, inserted] = cells.try_emplace(spec);
    if (inserted) cell_order.push_back(spec);
    it->second.push_back(i);
  }
  for (std::size_t k = 0; k < cell_order.size(); ++k) {
    const std::string& spec = cell_order[k];
    report.sweeps.push_back(obs::section_of_jobs(
        "cell-" + std::to_string(k), spec, result.jobs, cells[spec]));
  }
  report.sweeps.push_back(obs::section_of(
      "total", std::to_string(result.jobs.size()) + " points", result));
  if (!result.profile.empty()) {
    report.profiles.push_back(
        obs::profile_section_of("sweep-total", result.profile));
  }
  report.timings["execute"] = result.wall_seconds;
  report.timings["fold"] = result.fold_seconds;
  if (!obs::write_report_json(report, path)) {
    std::fprintf(stderr, "sweep: cannot write report to %s\n", path.c_str());
  }
}

bool meets_expectation(const SweepPoint& pt, const ConsensusRunStats& stats) {
  switch (expectation(pt.algo)) {
    case Expect::kNonuniform:
      return stats.verdict.solves_nonuniform();
    case Expect::kUniform:
      return stats.verdict.solves_uniform();
    case Expect::kNone:
      return true;
  }
  return true;
}

}  // namespace

const char* algo_name(Algo a) { return info_of(a).name; }

std::optional<Algo> parse_algo(const std::string& name) {
  for (const AlgoInfo& i : kAlgoTable) {
    if (name == i.name) return i.algo;
  }
  return std::nullopt;
}

Expect expectation(Algo a) { return info_of(a).expect; }

const char* fd_source_name(FdSource s) {
  return s == FdSource::kImplemented ? "implemented" : "generated";
}

bool supports_implemented_fd(Algo a) {
  // Ben-Or reads no detector and from-scratch builds its own Omega from
  // scratch; neither consumes an Omega/<>S oracle layer to replace.
  return a != Algo::kBenOr && a != Algo::kFromScratch;
}

AlgoOracles::AlgoOracles(Algo algo, const FailurePattern& fp, Time stabilize,
                         FaultyQuorumBehavior faulty_mode, std::uint64_t seed,
                         std::shared_ptr<FdBoard> board, Time hold) {
  if (board && !supports_implemented_fd(algo)) {
    throw std::invalid_argument(
        "AlgoOracles: algorithm has no Omega/<>S layer to implement");
  }
  // The algorithm's Omega (or, for CT, <>S) layer: the hosted heartbeat
  // modules' output board when one is supplied, the generated oracle
  // otherwise. Quorum layers and their seed offsets are identical in both
  // configurations.
  const auto leader_layer = [&]() -> Oracle& {
    if (board) return make<ImplementedOracle>(board);
    OmegaOptions oo;
    oo.stabilize_at = stabilize;
    oo.seed = seed;
    return make<OmegaOracle>(fp, oo);
  };
  switch (algo) {
    case Algo::kAnuc: {
      auto& omega = leader_layer();
      SigmaNuPlusOptions spo;
      spo.stabilize_at = stabilize;
      spo.seed = seed + 0x53;
      spo.faulty = faulty_mode;
      spo.hold = hold;
      auto& plus = make<SigmaNuPlusOracle>(fp, spo);
      make<ComposedOracle>(omega, plus);
      break;
    }
    case Algo::kStacked:
    case Algo::kNaive: {
      auto& omega = leader_layer();
      SigmaNuOptions sno;
      sno.stabilize_at = stabilize;
      sno.seed = seed + 0x52;
      sno.faulty = faulty_mode;
      sno.hold = hold;
      auto& nu = make<SigmaNuOracle>(fp, sno);
      make<ComposedOracle>(omega, nu);
      break;
    }
    case Algo::kMrMajority: {
      leader_layer();
      break;
    }
    case Algo::kMrSigma: {
      auto& omega = leader_layer();
      SigmaOptions so;
      so.stabilize_at = stabilize;
      so.seed = seed + 0x51;
      so.hold = hold;
      auto& sigma = make<SigmaOracle>(fp, so);
      make<ComposedOracle>(omega, sigma);
      break;
    }
    case Algo::kCt: {
      if (board) {
        make<ImplementedOracle>(board);
        break;
      }
      SuspectsOptions sso;
      sso.stabilize_at = stabilize;
      sso.seed = seed + 0x54;
      make<EvtStrongOracle>(fp, sso);
      break;
    }
    case Algo::kBenOr:
    case Algo::kFromScratch: {
      make<ScriptedOracle>([](Pid, Time) { return FdValue{}; });
      break;
    }
  }
}

ConsensusFactory consensus_factory_of(Algo a, Pid n, std::uint64_t seed) {
  switch (a) {
    case Algo::kAnuc:
      return make_anuc(n);
    case Algo::kStacked:
      return make_stacked_nuc(n);
    case Algo::kMrMajority:
      return make_mr_majority(n);
    case Algo::kMrSigma:
    case Algo::kNaive:
      return make_mr_fd_quorum(n);
    case Algo::kCt:
      return make_ct(n);
    case Algo::kBenOr:
      return make_ben_or(n, static_cast<Pid>((n - 1) / 2), seed);
    case Algo::kFromScratch:
      return make_from_scratch(n, static_cast<Pid>((n - 1) / 2));
  }
  throw std::invalid_argument("unknown Algo");
}

const char* expect_name(Expect e) {
  switch (e) {
    case Expect::kNonuniform:
      return "nonuniform";
    case Expect::kUniform:
      return "uniform";
    case Expect::kNone:
      return "none";
  }
  return "none";
}

std::vector<SweepPoint> SweepGrid::expand() const {
  std::vector<SweepPoint> points;
  for (Algo algo : algos) {
    // Infeasible like faults >= n: silently skipped, not an error.
    if (fd == FdSource::kImplemented && !supports_implemented_fd(algo)) {
      continue;
    }
    for (Pid n : ns) {
      for (Pid faults : fault_counts) {
        if (faults < 0 || faults >= n) continue;  // infeasible cell
        for (Time stabilize : stabilizes) {
          for (FaultyQuorumBehavior mode : faulty_modes) {
            for (int k = 0; k < seed_count; ++k) {
              SweepPoint pt;
              pt.algo = algo;
              pt.n = n;
              pt.faults = faults;
              pt.stabilize = stabilize;
              pt.crash_at = crash_at;
              pt.faulty_mode = mode;
              pt.max_steps = max_steps;
              pt.seed = seed_begin + static_cast<std::uint64_t>(k);
              pt.fd = fd;
              points.push_back(pt);
            }
          }
        }
      }
    }
  }
  return points;
}

std::string ReplayArtifact::to_string() const {
  std::ostringstream os;
  os << "algo=" << algo_name(point.algo) << " n=" << point.n
     << " faults=" << point.faults << " stab=" << point.stabilize
     << " crash=" << point.crash_at << " mode=" << mode_name(point.faulty_mode)
     << " steps=" << point.max_steps << " seed=" << point.seed;
  // Off-default only; see cell_spec_of.
  if (point.fd != FdSource::kGenerated) {
    os << " fd=" << fd_source_name(point.fd);
  }
  if (point.hold != 8) os << " hold=" << point.hold;
  return os.str();
}

std::optional<ReplayArtifact> ReplayArtifact::parse(const std::string& line) {
  SweepPoint pt;
  bool saw_algo = false;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "algo") {
      const auto a = parse_algo(value);
      if (!a) return std::nullopt;
      pt.algo = *a;
      saw_algo = true;
    } else if (key == "mode") {
      const auto m = parse_mode(value);
      if (!m) return std::nullopt;
      pt.faulty_mode = *m;
    } else if (key == "fd") {
      const auto s = parse_fd_source(value);
      if (!s) return std::nullopt;
      pt.fd = *s;
    } else if (key == "seed") {
      // Seeds are unsigned: std::stoll would reject (throw on) every seed
      // >= 2^63, so artifacts printed from the top half of the seed space
      // would not round-trip. Signed fields below keep std::stoll.
      if (value.empty() || value[0] == '-') return std::nullopt;
      try {
        pt.seed = std::stoull(value);
      } catch (...) {
        return std::nullopt;
      }
    } else {
      std::int64_t v = 0;
      try {
        v = std::stoll(value);
      } catch (...) {
        return std::nullopt;
      }
      if (key == "n") {
        pt.n = static_cast<Pid>(v);
      } else if (key == "faults") {
        pt.faults = static_cast<Pid>(v);
      } else if (key == "stab") {
        pt.stabilize = v;
      } else if (key == "hold") {
        pt.hold = v;
      } else if (key == "crash") {
        pt.crash_at = v;
      } else if (key == "steps") {
        pt.max_steps = v;
      } else {
        return std::nullopt;
      }
    }
  }
  if (!saw_algo || pt.n < 2 || pt.n > kMaxProcesses || pt.faults < 0 ||
      pt.faults >= pt.n || pt.max_steps <= 0 || pt.hold < 1 ||
      (pt.fd == FdSource::kImplemented && !supports_implemented_fd(pt.algo))) {
    return std::nullopt;
  }
  return ReplayArtifact{pt};
}

FailurePattern failure_pattern_of(const SweepPoint& pt) {
  validate(pt);
  FailurePattern fp(pt.n);
  Rng rng(pt.seed * 2654435761ULL + 99);
  // Random crash times land in [lo, hi]: shortly before stabilization when
  // stabilize is large enough, otherwise a floor window derived from the
  // step budget. The old upper bound max(stabilize - 10, 11) collapsed the
  // window to {10, 11} for every stabilize <= 21, so all small-stabilize
  // grid cells silently tested the same crash time.
  const Time lo = 10;
  const Time budget_hi = std::clamp<Time>(pt.max_steps / 4, lo + 10, 64);
  const Time hi = std::max<Time>(pt.stabilize - 10, budget_hi);
  assert(hi > lo && "degenerate crash-time window");
  for (Pid p : rng.pick_subset(ProcessSet::full(pt.n), pt.faults)) {
    fp.set_crash(p, pt.crash_at > 0 ? pt.crash_at : rng.range(lo, hi));
  }
  return fp;
}

std::vector<Value> proposals_of(const SweepPoint& pt) {
  std::vector<Value> out(static_cast<std::size_t>(pt.n));
  for (Pid p = 0; p < pt.n; ++p) out[static_cast<std::size_t>(p)] = p % 2;
  return out;
}

ConsensusRunStats run_point(const SweepPoint& pt,
                            prof::ProfileCollector* profile) {
  PointSetup setup(pt);
  // Sweep jobs fold into summary stats; nobody reads the StepRecord
  // vector, so skip growing it. simulate_point/trace_point keep recording.
  setup.opts.record_run = false;
  setup.opts.profile = profile;
  return run_consensus(setup.fp, setup.oracle.top(), setup.make,
                       setup.proposals, setup.opts);
}

SimResult simulate_point(const SweepPoint& pt) {
  PointSetup setup(pt);
  return simulate_consensus(setup.fp, setup.oracle.top(), setup.make,
                            setup.proposals, setup.opts);
}

ConsensusRunStats replay_failure(const ReplayArtifact& artifact) {
  return run_point(artifact.point);
}

TracedRun trace_point(const SweepPoint& pt, trace::TraceRecorder::Options opts) {
  PointSetup setup(pt);
  trace::TraceRecorder recorder(opts);
  recorder.begin_run(setup.fp, ReplayArtifact{pt}.to_string(),
                     expect_name(expectation(pt.algo)));
  setup.opts.trace = &recorder;

  TracedRun out;
  out.stats = run_consensus(setup.fp, setup.oracle.top(), setup.make,
                            setup.proposals, setup.opts);
  const ConsensusVerdict& v = out.stats.verdict;
  recorder.annotate(
      std::string("{\"k\":\"verdict\",\"termination\":") +
      (v.termination ? "true" : "false") + ",\"validity\":" +
      (v.validity ? "true" : "false") + ",\"nonuniform_agreement\":" +
      (v.nonuniform_agreement ? "true" : "false") + ",\"uniform_agreement\":" +
      (v.uniform_agreement ? "true" : "false") + "}");
  out.jsonl = recorder.jsonl();
  return out;
}

SweepResult SweepRunner::run(const SweepGrid& grid) const {
  return run(grid.expand());
}

SweepResult SweepRunner::run(const std::vector<SweepPoint>& points) const {
  for (const SweepPoint& pt : points) validate(pt);

  SweepResult result;
  result.jobs.resize(points.size());

  const auto started = std::chrono::steady_clock::now();
  {
    // Each future writes only its own preallocated slot, so the result
    // vector is ordered by expansion index no matter which worker finishes
    // first. The pool drains on scope exit.
    ThreadPool pool(threads_);
    std::vector<std::future<void>> done;
    done.reserve(points.size());
    const bool profiling = profiling_;
    for (std::size_t i = 0; i < points.size(); ++i) {
      done.push_back(pool.submit([&result, &points, profiling, i] {
        JobOutcome out;
        out.point = points[i];
        // One collector per job: the rdtsc probes are single-threaded,
        // and the serial merge below keeps the counts deterministic.
        out.stats =
            run_point(points[i], profiling ? &out.profile : nullptr);
        out.ok = meets_expectation(out.point, out.stats);
        result.jobs[i] = std::move(out);
      }));
    }
    for (std::future<void>& f : done) f.get();  // rethrows job exceptions
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  // Serial fold in expansion order: bit-identical for any thread count.
  const auto fold_started = std::chrono::steady_clock::now();
  SweepAggregate& agg = result.aggregate;
  for (const JobOutcome& job : result.jobs) {
    ++agg.runs;
    if (!job.stats.all_correct_decided) ++agg.undecided;
    if (!job.stats.verdict.termination) ++agg.termination_failures;
    if (!job.stats.verdict.uniform_agreement) ++agg.uniform_violations;
    if (!job.stats.verdict.nonuniform_agreement) ++agg.nonuniform_violations;
    if (!job.ok) {
      ++agg.expectation_failures;
      agg.failures.push_back(ReplayArtifact{job.point});
      if (!trace_dir_.empty()) {
        // Serial re-execution with a recorder attached: bit-identical to
        // the worker's run by the replay guarantee, and performed in the
        // serial fold, so the written bytes do not depend on thread count.
        std::filesystem::create_directories(trace_dir_);
        const std::string path =
            trace_dir_ + "/failure-" +
            std::to_string(agg.failures.size() - 1) + ".trace.jsonl";
        const TracedRun traced = trace_point(job.point);
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << traced.jsonl;
        agg.failure_trace_paths.push_back(path);
      }
    }
    if (job.stats.decide_round > 0) agg.decide_rounds.add(job.stats.decide_round);
    agg.steps.add(static_cast<double>(job.stats.steps));
    agg.messages.add(static_cast<double>(job.stats.messages_sent));
    agg.kbytes.add(static_cast<double>(job.stats.bytes_sent) / 1024.0);
    agg.metrics.merge(job.stats.metrics);
    result.profile.merge(job.profile);
  }
  result.fold_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - fold_started)
                            .count();
  if (result.wall_seconds > 0.0) {
    result.steps_per_second = agg.steps.sum() / result.wall_seconds;
  }
  if (!report_path_.empty()) write_runner_report(result, report_path_);
  return result;
}

}  // namespace nucon::exp
