// Work-stealing thread pool for the experiment sweep engine.
//
// Each worker owns a deque of queued tasks; external submissions are
// distributed round-robin, a worker pops from the back of its own deque and
// steals from the front of a sibling's when it runs dry. Results and
// exceptions propagate through std::future (a task that throws stores the
// exception in its future; the pool itself never dies from a job).
// Destruction is a drain: every task already submitted runs to completion
// before the workers join, so `{ ThreadPool p(2); p.submit(...); }` is a
// complete fork-join scope.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace nucon::exp {

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (minimum 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains: all queued tasks run to completion, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Schedules `f` on some worker. The returned future yields f's result or
  /// rethrows the exception f exited with. Throws std::runtime_error if the
  /// pool is already shutting down.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  /// How many tasks are queued but not yet picked up (for tests/telemetry).
  [[nodiscard]] std::size_t queued() const;

 private:
  struct Worker {
    mutable std::mutex mu;
    std::deque<std::function<void()>> queue;
  };

  void enqueue(std::function<void()> task);
  void worker_loop(std::size_t index);
  [[nodiscard]] bool try_pop(std::size_t index, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  mutable std::mutex cv_mu_;
  std::condition_variable cv_;
  std::size_t queued_count_ = 0;  // tasks sitting in some deque
  std::size_t next_ = 0;          // round-robin submission cursor
  bool stopping_ = false;
};

}  // namespace nucon::exp
