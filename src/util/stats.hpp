// Small statistics helpers shared by the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace nucon {

/// Streaming accumulator for one metric (rounds, messages, bytes, ...).
class Accumulator {
 public:
  void add(double v) {
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width text table used by the bench binaries to print the
/// paper-style result rows.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns; includes a header separator line.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  [[nodiscard]] static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nucon
