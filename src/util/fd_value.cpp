#include "util/fd_value.hpp"

namespace nucon {

void FdValue::encode(ByteWriter& w) const {
  w.u8(flags_);
  if (has_leader()) w.pid(leader_);
  if (has_quorum()) w.process_set(quorum_);
  if (has_suspects()) w.process_set(suspects_);
}

void FdValue::encode(ByteWriter& w, Pid n) const {
  w.u8(flags_);
  if (has_leader()) w.pid(leader_);
  if (has_quorum()) w.process_set(quorum_, n);
  if (has_suspects()) w.process_set(suspects_, n);
}

std::optional<FdValue> FdValue::decode(ByteReader& r, Pid n) {
  const auto flags = r.u8();
  if (!flags || (*flags & ~(kHasLeader | kHasQuorum | kHasSuspects)) != 0) {
    return std::nullopt;
  }
  FdValue v;
  if (*flags & kHasLeader) {
    const auto p = r.pid();
    if (!p || *p >= n) return std::nullopt;
    v.set_leader(*p);
  }
  if (*flags & kHasQuorum) {
    const auto q = r.process_set(n);
    if (!q) return std::nullopt;
    v.set_quorum(*q);
  }
  if (*flags & kHasSuspects) {
    const auto s = r.process_set(n);
    if (!s) return std::nullopt;
    v.set_suspects(*s);
  }
  return v;
}

std::optional<FdValue> FdValue::decode(ByteReader& r) {
  const auto flags = r.u8();
  if (!flags || (*flags & ~(kHasLeader | kHasQuorum | kHasSuspects)) != 0) {
    return std::nullopt;
  }
  FdValue v;
  if (*flags & kHasLeader) {
    const auto p = r.pid();
    if (!p) return std::nullopt;
    v.set_leader(*p);
  }
  if (*flags & kHasQuorum) {
    const auto q = r.process_set();
    if (!q) return std::nullopt;
    v.set_quorum(*q);
  }
  if (*flags & kHasSuspects) {
    const auto s = r.process_set();
    if (!s) return std::nullopt;
    v.set_suspects(*s);
  }
  return v;
}

std::string FdValue::to_string() const {
  std::string out = "(";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ", ";
    first = false;
  };
  if (has_leader()) {
    sep();
    out += "leader=" + std::to_string(leader_);
  }
  if (has_quorum()) {
    sep();
    out += "quorum=" + quorum_.to_string();
  }
  if (has_suspects()) {
    sep();
    out += "suspects=" + suspects_.to_string();
  }
  out += ')';
  return out;
}

}  // namespace nucon
