// A minimal JSON document parser (parse-only, no emitter).
//
// The report layer (obs/report.cpp) emits JSON by hand and validates it
// with a skipping scanner; the trend engine (prof/trend.cpp) and the
// nucon_bench CLI additionally need to *read values back* out of emitted
// BENCH_*.json documents and bench/history ledger lines. This is the
// smallest DOM that serves them: objects keep insertion order (the
// emitters write deterministically ordered documents and the trend tables
// preserve that order), numbers are doubles (every numeric field the
// reports emit round-trips through %.17g), errors carry the 1-based line
// number of the offending byte so the CLIs can print the same
// "line N: message" diagnostics as trace_reader's ParseError.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace nucon::util {

struct JsonValue;

/// Insertion-ordered object entries; lookups are linear (documents here
/// are small: a handful of keys per object).
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  JsonMembers members;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Member lookup on an object (nullptr when absent or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Convenience accessors returning nullopt on kind mismatch / absence.
  [[nodiscard]] std::optional<double> number_at(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> string_at(
      const std::string& key) const;
};

/// Parse failure: message plus the 1-based line of the offending byte
/// (mirrors trace::ParseError so the CLIs print uniform diagnostics).
struct JsonParseError {
  std::string message;
  std::size_t line = 0;

  [[nodiscard]] std::string to_string() const {
    return line == 0 ? message
                     : "line " + std::to_string(line) + ": " + message;
  }
};

/// Parses exactly one JSON document (trailing whitespace allowed, trailing
/// bytes rejected). Returns nullopt on failure; `error`, when non-null,
/// receives the diagnostic.
[[nodiscard]] std::optional<JsonValue> parse_json(const std::string& text,
                                                  JsonParseError* error);

}  // namespace nucon::util
