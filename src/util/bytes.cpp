#include "util/bytes.hpp"

// All members are defined inline in the header; this translation unit
// exists so the header gets compiled standalone at least once, catching
// missing includes early.
namespace nucon {}
