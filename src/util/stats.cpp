#include "util/stats.hpp"

#include <cmath>
#include <cstdio>

namespace nucon {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  if (std::abs(v - std::round(v)) < 1e-9 && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(std::llround(v)));
  } else {
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  }
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      out.append(widths[c] - cells[c].size() + 2, ' ');
    }
    out += '\n';
  };

  emit_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep.append(widths[c], '-');
    sep.append(2, ' ');
  }
  out += sep + '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace nucon
