#include "util/minijson.hpp"

#include <cstdlib>

namespace nucon::util {
namespace {

struct Parser {
  const char* s;
  const char* begin;
  const char* end;
  JsonParseError* error;

  [[nodiscard]] std::size_t line_of(const char* at) const {
    std::size_t line = 1;
    for (const char* p = begin; p < at; ++p) {
      if (*p == '\n') ++line;
    }
    return line;
  }

  bool fail(const std::string& msg) {
    if (error != nullptr && error->message.empty()) {
      error->message = msg;
      error->line = line_of(s);
    }
    return false;
  }

  void skip_ws() {
    while (s < end && (*s == ' ' || *s == '\t' || *s == '\n' || *s == '\r')) {
      ++s;
    }
  }

  bool parse_value(JsonValue& out);

  bool parse_string(std::string& out) {
    if (s >= end || *s != '"') return fail("expected string");
    ++s;
    out.clear();
    while (s < end && *s != '"') {
      if (*s == '\\') {
        ++s;
        if (s >= end) break;
        switch (*s) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            // The emitters only escape control bytes (< 0x20); decode the
            // low byte and ignore the (always-zero) high byte.
            if (end - s < 5) return fail("truncated \\u escape");
            char hex[5] = {s[1], s[2], s[3], s[4], 0};
            char* hex_end = nullptr;
            const long code = std::strtol(hex, &hex_end, 16);
            if (hex_end != hex + 4) return fail("bad \\u escape");
            out += static_cast<char>(code & 0xff);
            s += 4;
            break;
          }
          default:
            return fail("unknown escape");
        }
        ++s;
        continue;
      }
      out += *s;
      ++s;
    }
    if (s >= end) return fail("unterminated string");
    ++s;  // closing quote
    return true;
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++s;  // '{'
    skip_ws();
    if (s < end && *s == '}') {
      ++s;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (s >= end || *s != ':') return fail("expected ':' in object");
      ++s;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (s < end && *s == ',') {
        ++s;
        continue;
      }
      if (s < end && *s == '}') {
        ++s;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++s;  // '['
    skip_ws();
    if (s < end && *s == ']') {
      ++s;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (s < end && *s == ',') {
        ++s;
        continue;
      }
      if (s < end && *s == ']') {
        ++s;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }
};

bool Parser::parse_value(JsonValue& out) {
  skip_ws();
  if (s >= end) return fail("unexpected end of document");
  switch (*s) {
    case '{':
      return parse_object(out);
    case '[':
      return parse_array(out);
    case '"':
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    case 't':
      if (end - s >= 4 && std::string(s, 4) == "true") {
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        s += 4;
        return true;
      }
      return fail("bad literal");
    case 'f':
      if (end - s >= 5 && std::string(s, 5) == "false") {
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        s += 5;
        return true;
      }
      return fail("bad literal");
    case 'n':
      if (end - s >= 4 && std::string(s, 4) == "null") {
        out.kind = JsonValue::Kind::kNull;
        s += 4;
        return true;
      }
      return fail("bad literal");
    default: {
      char* num_end = nullptr;
      const double v = std::strtod(s, &num_end);
      if (num_end == s) return fail("unexpected character");
      out.kind = JsonValue::Kind::kNumber;
      out.number = v;
      s = num_end;
      return true;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<double> JsonValue::number_at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->number;
}

std::optional<std::string> JsonValue::string_at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->string;
}

std::optional<JsonValue> parse_json(const std::string& text,
                                    JsonParseError* error) {
  Parser p{text.data(), text.data(), text.data() + text.size(), error};
  JsonValue out;
  if (!p.parse_value(out)) return std::nullopt;
  p.skip_ws();
  if (p.s != p.end) {
    p.fail("trailing bytes after the JSON document");
    return std::nullopt;
  }
  return out;
}

}  // namespace nucon::util
