// Refcounted immutable payloads for the simulated network.
//
// A broadcast used to copy its encoded payload once per destination; with
// n processes that is n-1 redundant copies of buffers that are never
// mutated after encoding. SharedBytes wraps the encoded Bytes in a
// shared_ptr<const Bytes>, so a broadcast enqueues n refcount bumps
// instead of n buffer copies while receivers still observe a plain
// `const Bytes&` (payload immutability is what makes the sharing sound:
// the simulator treats every in-flight payload as sealed at send time).
//
// The class also keeps thread-local byte accounting (PayloadCounters) so
// the scheduler and bench_hotpath can report, per run, how many payload
// bytes were deep-copied versus merely shared — the counter behind the
// "bytes copied per broadcast" regression check. Thread-local (not
// atomic-global) keeps the counters deterministic per run: each sweep job
// executes wholly on one worker thread.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "util/bytes.hpp"

namespace nucon {

/// Byte accounting for payload creation and fan-out (thread-local; see
/// SharedBytes::counters()). All fields only ever increase; callers
/// snapshot-and-subtract to scope them to one run.
struct PayloadCounters {
  std::uint64_t payloads = 0;      ///< payload buffers created (move or copy)
  std::uint64_t payload_bytes = 0; ///< bytes in those buffers
  std::uint64_t copied_bytes = 0;  ///< bytes deep-copied into a payload
  std::uint64_t shares = 0;        ///< refcount shares (would-be copies)
  std::uint64_t shared_bytes = 0;  ///< bytes covered by those shares
  std::uint64_t broadcasts = 0;    ///< broadcast()/gossip_to_others() calls

  friend PayloadCounters operator-(PayloadCounters a,
                                   const PayloadCounters& b) {
    a.payloads -= b.payloads;
    a.payload_bytes -= b.payload_bytes;
    a.copied_bytes -= b.copied_bytes;
    a.shares -= b.shares;
    a.shared_bytes -= b.shared_bytes;
    a.broadcasts -= b.broadcasts;
    return a;
  }
};

/// An immutable, refcounted payload. Copying shares the buffer (cheap,
/// counted as `shares`); the content is sealed at construction.
class SharedBytes {
 public:
  SharedBytes() = default;

  /// Seals a freshly encoded buffer (typically `writer.take()`); moves,
  /// never copies. Implicit so the many `{to, w.take()}` send sites keep
  /// reading as plain value construction.
  SharedBytes(Bytes&& b)  // NOLINT(google-explicit-constructor)
      : data_(std::make_shared<const Bytes>(std::move(b))) {
    counters().payloads += 1;
    counters().payload_bytes += data_->size();
  }

  /// Seals a copy of a buffer the caller keeps (a reused scratch writer's
  /// buffer). Explicit because it is the one constructor that deep-copies,
  /// and the copy is charged to `copied_bytes`.
  explicit SharedBytes(const Bytes& b)
      : data_(std::make_shared<const Bytes>(b)) {
    counters().payloads += 1;
    counters().payload_bytes += data_->size();
    counters().copied_bytes += data_->size();
  }

  SharedBytes(const SharedBytes& other) : data_(other.data_) {
    counters().shares += 1;
    counters().shared_bytes += size();
  }
  SharedBytes& operator=(const SharedBytes& other) {
    data_ = other.data_;
    counters().shares += 1;
    counters().shared_bytes += size();
    return *this;
  }
  SharedBytes(SharedBytes&&) noexcept = default;
  SharedBytes& operator=(SharedBytes&&) noexcept = default;

  /// The payload content; a default-constructed SharedBytes reads as
  /// empty. Stable for the lifetime of any share, so `&payload.get()` is
  /// a valid `Incoming::payload`.
  [[nodiscard]] const Bytes& get() const {
    static const Bytes kEmpty;
    return data_ ? *data_ : kEmpty;
  }

  [[nodiscard]] std::size_t size() const { return data_ ? data_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Buffer identity (not content): two shares of one broadcast compare
  /// equal, two separately encoded but equal payloads do not. Multiplexers
  /// use this to frame a broadcast's payload once instead of per share.
  [[nodiscard]] const Bytes* raw() const { return data_.get(); }

  /// A plain keepalive reference to the sealed buffer. Unlike copying the
  /// SharedBytes this is NOT a network share and is not charged to the
  /// fan-out counters; decode memoization uses it to pin a buffer so its
  /// address stays a unique cache key while the entry lives.
  [[nodiscard]] std::shared_ptr<const Bytes> ref() const { return data_; }

  /// Content equality (tests).
  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return a.get() == b.get();
  }
  friend bool operator==(const SharedBytes& a, const Bytes& b) {
    return a.get() == b;
  }

  /// The calling thread's payload accounting. Monotone; scope to a run by
  /// snapshotting before and subtracting after.
  [[nodiscard]] static PayloadCounters& counters() {
    thread_local PayloadCounters c;
    return c;
  }

 private:
  std::shared_ptr<const Bytes> data_;
};

}  // namespace nucon
