// FdValue: the value a process reads from its local failure-detector module
// in one step.
//
// The paper works with several detector ranges: Pi (the leader detector
// Omega), 2^Pi (the quorum detectors Sigma / Sigma^nu / Sigma^nu+ and the
// suspect-list detectors P, <>P, S, <>S), and products of those (composed
// detectors such as (Omega, Sigma^nu+)). Rather than a recursive variant,
// FdValue is a flat record of up-to-three optional components — leader,
// quorum, suspects — which covers every detector in this library while
// keeping values cheap to copy, compare and serialize.
#pragma once

#include <optional>
#include <string>

#include "util/bytes.hpp"
#include "util/process_set.hpp"

namespace nucon {

class FdValue {
 public:
  constexpr FdValue() = default;

  [[nodiscard]] static constexpr FdValue of_leader(Pid p) {
    FdValue v;
    v.set_leader(p);
    return v;
  }

  [[nodiscard]] static constexpr FdValue of_quorum(ProcessSet q) {
    FdValue v;
    v.set_quorum(q);
    return v;
  }

  [[nodiscard]] static constexpr FdValue of_suspects(ProcessSet s) {
    FdValue v;
    v.set_suspects(s);
    return v;
  }

  /// Product detector (D, D'): the union of the components of both values.
  /// Each component may be supplied by at most one side.
  [[nodiscard]] static constexpr FdValue combine(const FdValue& a,
                                                 const FdValue& b) {
    FdValue v = a;
    if (b.has_leader()) v.set_leader(b.leader());
    if (b.has_quorum()) v.set_quorum(b.quorum());
    if (b.has_suspects()) v.set_suspects(b.suspects());
    return v;
  }

  constexpr void set_leader(Pid p) {
    flags_ |= kHasLeader;
    leader_ = p;
  }
  constexpr void set_quorum(ProcessSet q) {
    flags_ |= kHasQuorum;
    quorum_ = q;
  }
  constexpr void set_suspects(ProcessSet s) {
    flags_ |= kHasSuspects;
    suspects_ = s;
  }

  [[nodiscard]] constexpr bool has_leader() const { return flags_ & kHasLeader; }
  [[nodiscard]] constexpr bool has_quorum() const { return flags_ & kHasQuorum; }
  [[nodiscard]] constexpr bool has_suspects() const { return flags_ & kHasSuspects; }

  /// Accessors require the component to be present (checked by assert).
  [[nodiscard]] constexpr Pid leader() const {
    assert(has_leader());
    return leader_;
  }
  [[nodiscard]] constexpr ProcessSet quorum() const {
    assert(has_quorum());
    return quorum_;
  }
  [[nodiscard]] constexpr ProcessSet suspects() const {
    assert(has_suspects());
    return suspects_;
  }

  friend constexpr bool operator==(const FdValue&, const FdValue&) = default;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<FdValue> decode(ByteReader& r);

  /// Width-aware forms: identical bytes for n <= 64, multi-word sets (and a
  /// leader bound check) beyond. Callers that know their n use these so
  /// payloads stay valid past 64 processes.
  void encode(ByteWriter& w, Pid n) const;
  [[nodiscard]] static std::optional<FdValue> decode(ByteReader& r, Pid n);

  [[nodiscard]] std::string to_string() const;

 private:
  static constexpr std::uint8_t kHasLeader = 1;
  static constexpr std::uint8_t kHasQuorum = 2;
  static constexpr std::uint8_t kHasSuspects = 4;

  std::uint8_t flags_ = 0;
  Pid leader_ = -1;
  ProcessSet quorum_;
  ProcessSet suspects_;
};

}  // namespace nucon
