// ProcessSet: a value-type set of process identifiers, the universal currency
// of quorum-based reasoning in this library.
//
// The paper's system has n processes Pi = {0, .., n-1}; a set of processes is
// a bitset so that the hot operations of the distrust machinery (intersection
// tests between quorums in quorum histories) are word-wise AND instructions.
//
// Storage layout: one inline 64-bit word (`lo_`, pids 0..63) plus an optional
// heap block (`hi_`) of kHiWords words for pids 64..kMaxProcesses-1. The block
// has a fixed size, so it never reallocates and a null `hi_` means "all high
// words are zero". Runs with n <= 64 — every paper experiment — never touch
// the heap: the fast paths are a single predictable `hi_ == nullptr` test
// away from the old one-word code. High blocks are recycled through a
// thread-local free list so per-step transients (quorum copies, scratch sets)
// do not hit the allocator at n > 64.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <type_traits>
#include <vector>

namespace nucon {

/// Process identifier. Processes are numbered 0 .. n-1.
using Pid = std::int32_t;

/// Maximum number of processes supported by the bitset representation.
inline constexpr Pid kMaxProcesses = 1024;

namespace detail {

/// 64-bit words per set, and per heap block (all but the inline word).
inline constexpr int kSetWords = kMaxProcesses / 64;
inline constexpr int kHiWords = kSetWords - 1;

/// Set once the thread's block pool has been destroyed (thread exit).
/// Trivially destructible, so it stays readable after TLS teardown and
/// acquire/release can fall back to plain new/delete.
inline thread_local bool g_hi_pool_dead = false;

struct HiBlockPool {
  std::vector<std::uint64_t*> free_list;
  ~HiBlockPool() {
    for (std::uint64_t* b : free_list) delete[] b;
    g_hi_pool_dead = true;
  }
};

inline HiBlockPool& hi_pool() {
  static thread_local HiBlockPool pool;
  return pool;
}

/// A zero-filled block of kHiWords words.
inline std::uint64_t* hi_acquire() {
  if (!g_hi_pool_dead) {
    HiBlockPool& pool = hi_pool();
    if (!pool.free_list.empty()) {
      std::uint64_t* b = pool.free_list.back();
      pool.free_list.pop_back();
      for (int i = 0; i < kHiWords; ++i) b[i] = 0;
      return b;
    }
  }
  return new std::uint64_t[kHiWords]();
}

inline void hi_release(std::uint64_t* b) {
  if (g_hi_pool_dead) {
    delete[] b;
    return;
  }
  hi_pool().free_list.push_back(b);
}

}  // namespace detail

/// An immutable-style value type holding a set of process ids.
class ProcessSet {
 public:
  constexpr ProcessSet() = default;

  constexpr ProcessSet(std::initializer_list<Pid> pids) {
    for (Pid p : pids) insert(p);
  }

  constexpr ProcessSet(const ProcessSet& o) : lo_(o.lo_) {
    if (o.hi_ != nullptr) {
      hi_ = alloc_hi();
      for (int i = 0; i < detail::kHiWords; ++i) hi_[i] = o.hi_[i];
    }
  }

  constexpr ProcessSet(ProcessSet&& o) noexcept : lo_(o.lo_), hi_(o.hi_) {
    o.lo_ = 0;
    o.hi_ = nullptr;
  }

  constexpr ProcessSet& operator=(const ProcessSet& o) {
    if (this == &o) return *this;
    lo_ = o.lo_;
    if (o.hi_ == nullptr) {
      drop_hi();
    } else {
      if (hi_ == nullptr) hi_ = alloc_hi();
      for (int i = 0; i < detail::kHiWords; ++i) hi_[i] = o.hi_[i];
    }
    return *this;
  }

  constexpr ProcessSet& operator=(ProcessSet&& o) noexcept {
    if (this == &o) return *this;
    drop_hi();
    lo_ = o.lo_;
    hi_ = o.hi_;
    o.lo_ = 0;
    o.hi_ = nullptr;
    return *this;
  }

  constexpr ~ProcessSet() { drop_hi(); }

  /// The full set {0, .., n-1}.
  [[nodiscard]] static constexpr ProcessSet full(Pid n) {
    assert(n >= 0 && n <= kMaxProcesses);
    ProcessSet s;
    if (n <= 64) {
      s.lo_ = (n == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
      return s;
    }
    s.lo_ = ~std::uint64_t{0};
    s.hi_ = s.alloc_hi();
    const int full_words = n / 64 - 1;  // full high words
    for (int i = 0; i < full_words; ++i) s.hi_[i] = ~std::uint64_t{0};
    if (n % 64 != 0) {
      s.hi_[full_words] = (std::uint64_t{1} << (n % 64)) - 1;
    }
    return s;
  }

  /// The singleton {p}.
  [[nodiscard]] static constexpr ProcessSet single(Pid p) {
    ProcessSet s;
    s.insert(p);
    return s;
  }

  /// A set from a raw 64-bit mask (bit i set <=> process i in the set).
  /// Only spans pids 0..63; the wide codec paths use word()/set_word().
  [[nodiscard]] static constexpr ProcessSet from_mask(std::uint64_t mask) {
    ProcessSet s;
    s.lo_ = mask;
    return s;
  }

  /// The low 64 bits. Callers on the legacy <=64-process wire paths use this;
  /// it asserts the set has no members above pid 63.
  [[nodiscard]] constexpr std::uint64_t mask() const {
    assert(hi_zero());
    return lo_;
  }

  /// Word i of the bitset (pids 64*i .. 64*i+63); zero beyond storage.
  [[nodiscard]] constexpr std::uint64_t word(int i) const {
    assert(i >= 0 && i < detail::kSetWords);
    if (i == 0) return lo_;
    return hi_ != nullptr ? hi_[i - 1] : 0;
  }

  /// Overwrites word i. Codec use (ByteReader::process_set).
  constexpr void set_word(int i, std::uint64_t w) {
    assert(i >= 0 && i < detail::kSetWords);
    if (i == 0) {
      lo_ = w;
      return;
    }
    if (w == 0 && hi_ == nullptr) return;
    if (hi_ == nullptr) hi_ = alloc_hi();
    hi_[i - 1] = w;
  }

  constexpr void insert(Pid p) {
    assert(p >= 0 && p < kMaxProcesses);
    if (p < 64) {
      lo_ |= std::uint64_t{1} << p;
      return;
    }
    if (hi_ == nullptr) hi_ = alloc_hi();
    hi_[p / 64 - 1] |= std::uint64_t{1} << (p % 64);
  }

  constexpr void erase(Pid p) {
    assert(p >= 0 && p < kMaxProcesses);
    if (p < 64) {
      lo_ &= ~(std::uint64_t{1} << p);
      return;
    }
    if (hi_ != nullptr) hi_[p / 64 - 1] &= ~(std::uint64_t{1} << (p % 64));
  }

  [[nodiscard]] constexpr bool contains(Pid p) const {
    assert(p >= 0 && p < kMaxProcesses);
    if (p < 64) return (lo_ >> p) & 1U;
    return hi_ != nullptr && ((hi_[p / 64 - 1] >> (p % 64)) & 1U);
  }

  [[nodiscard]] constexpr bool empty() const {
    return lo_ == 0 && hi_zero();
  }

  [[nodiscard]] constexpr int size() const {
    int count = __builtin_popcountll(lo_);
    if (hi_ != nullptr) {
      for (int i = 0; i < detail::kHiWords; ++i) {
        count += __builtin_popcountll(hi_[i]);
      }
    }
    return count;
  }

  [[nodiscard]] constexpr bool intersects(const ProcessSet& o) const {
    if ((lo_ & o.lo_) != 0) return true;
    if (hi_ == nullptr || o.hi_ == nullptr) return false;
    for (int i = 0; i < detail::kHiWords; ++i) {
      if ((hi_[i] & o.hi_[i]) != 0) return true;
    }
    return false;
  }

  [[nodiscard]] constexpr bool is_subset_of(const ProcessSet& o) const {
    if ((lo_ & ~o.lo_) != 0) return false;
    if (hi_ == nullptr) return true;
    for (int i = 0; i < detail::kHiWords; ++i) {
      if ((hi_[i] & ~o.word(i + 1)) != 0) return false;
    }
    return true;
  }

  [[nodiscard]] constexpr ProcessSet operator|(const ProcessSet& o) const {
    ProcessSet r;
    r.lo_ = lo_ | o.lo_;
    if (hi_ != nullptr || o.hi_ != nullptr) {
      r.hi_ = r.alloc_hi();
      for (int i = 0; i < detail::kHiWords; ++i) {
        r.hi_[i] = word(i + 1) | o.word(i + 1);
      }
    }
    return r;
  }
  [[nodiscard]] constexpr ProcessSet operator&(const ProcessSet& o) const {
    ProcessSet r;
    r.lo_ = lo_ & o.lo_;
    if (hi_ != nullptr && o.hi_ != nullptr) {
      r.hi_ = r.alloc_hi();
      for (int i = 0; i < detail::kHiWords; ++i) r.hi_[i] = hi_[i] & o.hi_[i];
    }
    return r;
  }
  /// Set difference: processes in *this but not in o.
  [[nodiscard]] constexpr ProcessSet operator-(const ProcessSet& o) const {
    ProcessSet r;
    r.lo_ = lo_ & ~o.lo_;
    if (hi_ != nullptr) {
      r.hi_ = r.alloc_hi();
      for (int i = 0; i < detail::kHiWords; ++i) {
        r.hi_[i] = hi_[i] & ~o.word(i + 1);
      }
    }
    return r;
  }
  constexpr ProcessSet& operator|=(const ProcessSet& o) {
    lo_ |= o.lo_;
    if (o.hi_ != nullptr) {
      if (hi_ == nullptr) hi_ = alloc_hi();
      for (int i = 0; i < detail::kHiWords; ++i) hi_[i] |= o.hi_[i];
    }
    return *this;
  }
  constexpr ProcessSet& operator&=(const ProcessSet& o) {
    lo_ &= o.lo_;
    if (hi_ != nullptr) {
      if (o.hi_ == nullptr) {
        drop_hi();
      } else {
        for (int i = 0; i < detail::kHiWords; ++i) hi_[i] &= o.hi_[i];
      }
    }
    return *this;
  }

  /// Smallest pid in the set; the set must be nonempty.
  [[nodiscard]] constexpr Pid min() const {
    assert(!empty());
    if (lo_ != 0) return static_cast<Pid>(__builtin_ctzll(lo_));
    for (int i = 0; i < detail::kHiWords; ++i) {
      if (hi_[i] != 0) {
        return static_cast<Pid>(64 * (i + 1) + __builtin_ctzll(hi_[i]));
      }
    }
    return 0;  // unreachable
  }

  /// Largest pid in the set; the set must be nonempty.
  [[nodiscard]] constexpr Pid max() const {
    assert(!empty());
    if (hi_ != nullptr) {
      for (int i = detail::kHiWords - 1; i >= 0; --i) {
        if (hi_[i] != 0) {
          return static_cast<Pid>(64 * (i + 1) + 63 - __builtin_clzll(hi_[i]));
        }
      }
    }
    return static_cast<Pid>(63 - __builtin_clzll(lo_));
  }

  /// The k-th member (0-based) in increasing pid order; k must be < size().
  /// Word-skipping select keeps Rng::pick O(words) instead of O(members).
  [[nodiscard]] constexpr Pid nth(int k) const {
    assert(k >= 0 && k < size());
    for (int i = 0; i < detail::kSetWords; ++i) {
      std::uint64_t w = word(i);
      const int pop = __builtin_popcountll(w);
      if (k >= pop) {
        k -= pop;
        if (i == 0 && hi_ == nullptr) break;
        continue;
      }
      for (int j = 0; j < k; ++j) w &= w - 1;  // drop the k lowest set bits
      return static_cast<Pid>(64 * i + __builtin_ctzll(w));
    }
    return 0;  // unreachable: k < size()
  }

  friend constexpr bool operator==(const ProcessSet& a, const ProcessSet& b) {
    if (a.lo_ != b.lo_) return false;
    if (a.hi_ == nullptr && b.hi_ == nullptr) return true;
    for (int i = 0; i < detail::kHiWords; ++i) {
      if (a.word(i + 1) != b.word(i + 1)) return false;
    }
    return true;
  }
  /// Orders by the infinite-precision bitset value, highest word first: for
  /// sets within pids 0..63 this is exactly the old one-word mask order, so
  /// sorted containers and codecs keyed on it keep their byte layouts.
  friend constexpr std::strong_ordering operator<=>(const ProcessSet& a,
                                                    const ProcessSet& b) {
    if (a.hi_ != nullptr || b.hi_ != nullptr) {
      for (int i = detail::kSetWords - 1; i >= 1; --i) {
        const std::uint64_t aw = a.word(i);
        const std::uint64_t bw = b.word(i);
        if (aw != bw) return aw <=> bw;
      }
    }
    return a.lo_ <=> b.lo_;
  }

  /// Iterates over the members in increasing pid order.
  class Iterator {
   public:
    constexpr Iterator(const ProcessSet* s, int word, std::uint64_t bits)
        : s_(s), word_(word), bits_(bits) {
      advance_to_nonempty();
    }
    constexpr Pid operator*() const {
      return static_cast<Pid>(64 * word_ + __builtin_ctzll(bits_));
    }
    constexpr Iterator& operator++() {
      bits_ &= bits_ - 1;  // clear lowest set bit
      advance_to_nonempty();
      return *this;
    }
    friend constexpr bool operator==(const Iterator& a, const Iterator& b) {
      return a.word_ == b.word_ && a.bits_ == b.bits_;
    }

   private:
    constexpr void advance_to_nonempty() {
      while (bits_ == 0 && word_ < detail::kSetWords) {
        if (s_->hi_ == nullptr) {
          word_ = detail::kSetWords;
          break;
        }
        ++word_;
        bits_ = word_ < detail::kSetWords ? s_->word(word_) : 0;
      }
    }

    const ProcessSet* s_;
    int word_;
    std::uint64_t bits_;
  };

  [[nodiscard]] constexpr Iterator begin() const {
    return Iterator(this, 0, lo_);
  }
  [[nodiscard]] constexpr Iterator end() const {
    return Iterator(this, detail::kSetWords, 0);
  }

  /// Human-readable form, e.g. "{0,2,5}".
  [[nodiscard]] std::string to_string() const {
    std::string out = "{";
    bool first = true;
    for (Pid p : *this) {
      if (!first) out += ',';
      out += std::to_string(p);
      first = false;
    }
    out += '}';
    return out;
  }

 private:
  [[nodiscard]] constexpr bool hi_zero() const {
    if (hi_ == nullptr) return true;
    for (int i = 0; i < detail::kHiWords; ++i) {
      if (hi_[i] != 0) return false;
    }
    return true;
  }

  [[nodiscard]] static constexpr std::uint64_t* alloc_hi() {
    if (std::is_constant_evaluated()) {
      return new std::uint64_t[detail::kHiWords]();
    }
    return detail::hi_acquire();
  }

  constexpr void drop_hi() {
    if (hi_ == nullptr) return;
    if (std::is_constant_evaluated()) {
      delete[] hi_;
    } else {
      detail::hi_release(hi_);
    }
    hi_ = nullptr;
  }

  std::uint64_t lo_ = 0;
  std::uint64_t* hi_ = nullptr;
};

/// True when the set holds a strict majority of n processes.
[[nodiscard]] constexpr bool is_majority(const ProcessSet& s, Pid n) {
  return 2 * s.size() > n;
}

}  // namespace nucon
