// ProcessSet: a value-type set of process identifiers, the universal currency
// of quorum-based reasoning in this library.
//
// The paper's system has n <= 64 processes Pi = {0, .., n-1}; a set of
// processes is represented as a 64-bit mask so that the hot operations of
// the distrust machinery (intersection tests between quorums in quorum
// histories) are single AND instructions.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace nucon {

/// Process identifier. Processes are numbered 0 .. n-1.
using Pid = std::int32_t;

/// Maximum number of processes supported by the bitmask representation.
inline constexpr Pid kMaxProcesses = 64;

/// An immutable-style value type holding a set of process ids.
class ProcessSet {
 public:
  constexpr ProcessSet() = default;

  constexpr ProcessSet(std::initializer_list<Pid> pids) {
    for (Pid p : pids) insert(p);
  }

  /// The full set {0, .., n-1}.
  [[nodiscard]] static constexpr ProcessSet full(Pid n) {
    assert(n >= 0 && n <= kMaxProcesses);
    ProcessSet s;
    s.bits_ = (n == kMaxProcesses) ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << n) - 1);
    return s;
  }

  /// The singleton {p}.
  [[nodiscard]] static constexpr ProcessSet single(Pid p) {
    ProcessSet s;
    s.insert(p);
    return s;
  }

  /// A set from a raw 64-bit mask (bit i set <=> process i in the set).
  [[nodiscard]] static constexpr ProcessSet from_mask(std::uint64_t mask) {
    ProcessSet s;
    s.bits_ = mask;
    return s;
  }

  [[nodiscard]] constexpr std::uint64_t mask() const { return bits_; }

  constexpr void insert(Pid p) {
    assert(p >= 0 && p < kMaxProcesses);
    bits_ |= std::uint64_t{1} << p;
  }

  constexpr void erase(Pid p) {
    assert(p >= 0 && p < kMaxProcesses);
    bits_ &= ~(std::uint64_t{1} << p);
  }

  [[nodiscard]] constexpr bool contains(Pid p) const {
    assert(p >= 0 && p < kMaxProcesses);
    return (bits_ >> p) & 1U;
  }

  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }

  [[nodiscard]] constexpr int size() const {
    return __builtin_popcountll(bits_);
  }

  [[nodiscard]] constexpr bool intersects(ProcessSet other) const {
    return (bits_ & other.bits_) != 0;
  }

  [[nodiscard]] constexpr bool is_subset_of(ProcessSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }

  [[nodiscard]] constexpr ProcessSet operator|(ProcessSet o) const {
    return from_mask(bits_ | o.bits_);
  }
  [[nodiscard]] constexpr ProcessSet operator&(ProcessSet o) const {
    return from_mask(bits_ & o.bits_);
  }
  /// Set difference: processes in *this but not in o.
  [[nodiscard]] constexpr ProcessSet operator-(ProcessSet o) const {
    return from_mask(bits_ & ~o.bits_);
  }
  constexpr ProcessSet& operator|=(ProcessSet o) {
    bits_ |= o.bits_;
    return *this;
  }
  constexpr ProcessSet& operator&=(ProcessSet o) {
    bits_ &= o.bits_;
    return *this;
  }

  /// Smallest pid in the set; the set must be nonempty.
  [[nodiscard]] constexpr Pid min() const {
    assert(!empty());
    return static_cast<Pid>(__builtin_ctzll(bits_));
  }

  /// Largest pid in the set; the set must be nonempty.
  [[nodiscard]] constexpr Pid max() const {
    assert(!empty());
    return static_cast<Pid>(63 - __builtin_clzll(bits_));
  }

  friend constexpr bool operator==(ProcessSet, ProcessSet) = default;
  friend constexpr auto operator<=>(ProcessSet a, ProcessSet b) {
    return a.bits_ <=> b.bits_;
  }

  /// Iterates over the members in increasing pid order.
  class Iterator {
   public:
    constexpr explicit Iterator(std::uint64_t bits) : bits_(bits) {}
    constexpr Pid operator*() const {
      return static_cast<Pid>(__builtin_ctzll(bits_));
    }
    constexpr Iterator& operator++() {
      bits_ &= bits_ - 1;  // clear lowest set bit
      return *this;
    }
    friend constexpr bool operator==(Iterator, Iterator) = default;

   private:
    std::uint64_t bits_;
  };

  [[nodiscard]] constexpr Iterator begin() const { return Iterator(bits_); }
  [[nodiscard]] constexpr Iterator end() const { return Iterator(0); }

  /// Human-readable form, e.g. "{0,2,5}".
  [[nodiscard]] std::string to_string() const {
    std::string out = "{";
    bool first = true;
    for (Pid p : *this) {
      if (!first) out += ',';
      out += std::to_string(p);
      first = false;
    }
    out += '}';
    return out;
  }

 private:
  std::uint64_t bits_ = 0;
};

/// True when the set holds a strict majority of n processes.
[[nodiscard]] constexpr bool is_majority(ProcessSet s, Pid n) {
  return 2 * s.size() > n;
}

}  // namespace nucon
