// Byte-level serialization for messages that cross the simulated network.
//
// Algorithms in this library never hand pointers to each other; every
// payload (quorum histories, gossiped DAGs, estimates) is encoded to a flat
// byte vector and decoded on receipt, so message sizes reported by the
// benchmarks are the sizes a real transport would carry.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/process_set.hpp"

namespace nucon {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values to a growing byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { out_.push_back(v); }

  /// Unsigned LEB128 variable-length integer; compact for the small counts
  /// (rounds, pids, node indices) that dominate our payloads.
  void uvarint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Zig-zag encoded signed integer.
  void svarint(std::int64_t v) {
    uvarint((static_cast<std::uint64_t>(v) << 1) ^
            static_cast<std::uint64_t>(v >> 63));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void pid(Pid p) { svarint(p); }

  /// Legacy single-word form: exactly the <=64-process wire format. Asserts
  /// the set fits; wide sets go through the width-aware overload below.
  void process_set(const ProcessSet& s) { u64(s.mask()); }

  /// Width-aware form: n <= 64 emits the legacy single u64 (byte-identical
  /// to the old format), larger n emits ceil(n/64) little-endian words. The
  /// word count is derived from n on both sides, so no length prefix.
  void process_set(const ProcessSet& s, Pid n) {
    assert(n >= 1 && n <= kMaxProcesses);
    const int words = (static_cast<int>(n) + 63) / 64;
    for (int i = 0; i < words; ++i) u64(s.word(i));
  }

  void str(std::string_view s) {
    uvarint(s.size());
    out_.insert(out_.end(), s.begin(), s.end());
  }

  void bytes(const Bytes& b) {
    uvarint(b.size());
    out_.insert(out_.end(), b.begin(), b.end());
  }

  /// Appends the bytes verbatim, no length prefix (framing protocols that
  /// delimit by "rest of the message").
  void raw(const Bytes& b) { out_.insert(out_.end(), b.begin(), b.end()); }

  [[nodiscard]] Bytes take() { return std::move(out_); }
  [[nodiscard]] std::size_t size() const { return out_.size(); }

  /// Reuse mode: drops the content but keeps the capacity, so a writer
  /// held across encodes (a per-automaton scratch writer) stops allocating
  /// once it has grown to the steady-state message size. Pair with
  /// buffer() to read the encoding without taking ownership.
  void reset() { out_.clear(); }
  [[nodiscard]] const Bytes& buffer() const { return out_; }

 private:
  Bytes out_;
};

/// Reads values back out of a byte buffer. All accessors return nullopt on
/// truncated or malformed input; decoding never throws and never reads out
/// of bounds.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  /// A reader only borrows the buffer; constructing one from a temporary
  /// would leave it dangling as soon as the statement ends.
  explicit ByteReader(Bytes&&) = delete;

  [[nodiscard]] std::optional<std::uint8_t> u8() {
    if (pos_ >= size_) return std::nullopt;
    return data_[pos_++];
  }

  [[nodiscard]] std::optional<std::uint64_t> uvarint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_ || shift > 63) return std::nullopt;
      const std::uint8_t b = data_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  [[nodiscard]] std::optional<std::int64_t> svarint() {
    const auto raw = uvarint();
    if (!raw) return std::nullopt;
    return static_cast<std::int64_t>((*raw >> 1) ^ (~(*raw & 1) + 1));
  }

  [[nodiscard]] std::optional<std::uint64_t> u64() {
    if (pos_ + 8 > size_) return std::nullopt;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::optional<Pid> pid() {
    const auto v = svarint();
    if (!v || *v < 0 || *v >= kMaxProcesses) return std::nullopt;
    return static_cast<Pid>(*v);
  }

  [[nodiscard]] std::optional<ProcessSet> process_set() {
    const auto m = u64();
    if (!m) return std::nullopt;
    return ProcessSet::from_mask(*m);
  }

  /// Width-aware form matching ByteWriter::process_set(s, n). Rejects any
  /// member >= n, so a payload encoded at one width cannot silently decode
  /// at another (cross-width decode rejection).
  [[nodiscard]] std::optional<ProcessSet> process_set(Pid n) {
    assert(n >= 1 && n <= kMaxProcesses);
    const int words = (static_cast<int>(n) + 63) / 64;
    ProcessSet s;
    for (int i = 0; i < words; ++i) {
      const auto w = u64();
      if (!w) return std::nullopt;
      const int low = 64 * i;  // first pid of this word
      const std::uint64_t valid =
          n - low >= 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << (n - low)) - 1);
      if ((*w & ~valid) != 0) return std::nullopt;
      s.set_word(i, *w);
    }
    return s;
  }

  [[nodiscard]] std::optional<std::string> str() {
    // Compare against the remaining space, never `pos_ + *len`: a huge
    // declared length would wrap the addition and pass the bounds check,
    // turning a malformed message into an out-of-bounds read.
    const auto len = uvarint();
    if (!len || *len > size_ - pos_) return std::nullopt;
    std::string s(reinterpret_cast<const char*>(data_ + pos_), *len);
    pos_ += *len;
    return s;
  }

  [[nodiscard]] std::optional<Bytes> bytes() {
    const auto len = uvarint();
    if (!len || *len > size_ - pos_) return std::nullopt;
    Bytes b(data_ + pos_, data_ + pos_ + *len);
    pos_ += *len;
    return b;
  }

  [[nodiscard]] bool done() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace nucon
