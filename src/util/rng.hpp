// Deterministic, seedable random number generation.
//
// Every source of nondeterminism in the simulator (step interleavings,
// message delays, crash times, failure-detector noise before stabilization)
// is drawn from an Rng so whole executions replay bit-for-bit from a seed.
#pragma once

#include <cassert>
#include <cstdint>

#include "util/bytes.hpp"
#include "util/process_set.hpp"

namespace nucon {

/// splitmix64: used to expand a single seed into a stream of well-mixed
/// 64-bit words (also the recommended seeder for xoshiro).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator; small, fast, and high quality for simulation use.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  constexpr std::uint64_t below(std::uint64_t bound) {
    assert(bound > 0);
    // Debiased modulo via rejection; bounds here are tiny so one or two
    // draws suffice in practice.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return v % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

  /// Uniformly random member of a nonempty ProcessSet. Same single
  /// below(size) draw and same chosen member as the old member-scan, so
  /// replayed executions are unchanged; nth() is a word-skipping select.
  Pid pick(const ProcessSet& s) {
    assert(!s.empty());
    const auto k = below(static_cast<std::uint64_t>(s.size()));
    return s.nth(static_cast<int>(k));
  }

  /// Uniformly random subset of `universe` with exactly `k` members.
  ProcessSet pick_subset(const ProcessSet& universe, int k) {
    assert(k >= 0 && k <= universe.size());
    ProcessSet out;
    ProcessSet remaining = universe;
    for (int i = 0; i < k; ++i) {
      const Pid p = pick(remaining);
      out.insert(p);
      remaining.erase(p);
    }
    return out;
  }

  /// Derives an independent child generator (e.g. one per process).
  [[nodiscard]] Rng fork(std::uint64_t salt) {
    return Rng(next() ^ (salt * 0x9e3779b97f4a7c15ULL));
  }

  /// Serializes the generator position, so a restored automaton draws the
  /// same continuation of its coin tape (full-state save/restore).
  void save(ByteWriter& w) const {
    for (std::uint64_t word : state_) w.u64(word);
  }
  [[nodiscard]] bool restore(ByteReader& r) {
    for (auto& word : state_) {
      const auto v = r.u64();
      if (!v) return false;
      word = *v;
    }
    return true;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace nucon
