// Consensus correctness verdicts over completed executions (paper §2.8).
//
// Given the proposals (initial configuration), the failure pattern, and the
// final decisions, reports which of the four properties held:
// termination (every correct process decided), validity (every decision was
// proposed), nonuniform agreement (no two *correct* deciders differ), and
// uniform agreement (no two deciders differ at all). Uniform agreement is
// reported too because the gap between the two agreement flavors is the
// entire subject of the paper.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/automaton.hpp"
#include "sim/failure_pattern.hpp"

namespace nucon {

struct ConsensusVerdict {
  bool termination = false;
  bool validity = false;
  bool nonuniform_agreement = false;
  bool uniform_agreement = false;
  std::string detail;  // first violation found, if any

  [[nodiscard]] bool solves_nonuniform() const {
    return termination && validity && nonuniform_agreement;
  }
  [[nodiscard]] bool solves_uniform() const {
    return termination && validity && uniform_agreement;
  }
};

[[nodiscard]] ConsensusVerdict check_consensus(
    const FailurePattern& fp, const std::vector<Value>& proposals,
    const std::vector<std::optional<Value>>& decisions);

}  // namespace nucon
