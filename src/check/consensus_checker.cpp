#include "check/consensus_checker.hpp"

#include <cassert>

namespace nucon {

ConsensusVerdict check_consensus(
    const FailurePattern& fp, const std::vector<Value>& proposals,
    const std::vector<std::optional<Value>>& decisions) {
  assert(proposals.size() == static_cast<std::size_t>(fp.n()));
  assert(decisions.size() == static_cast<std::size_t>(fp.n()));

  ConsensusVerdict v;
  v.termination = true;
  v.validity = true;
  v.nonuniform_agreement = true;
  v.uniform_agreement = true;

  const auto note = [&v](std::string why) {
    if (v.detail.empty()) v.detail = std::move(why);
  };

  for (Pid p : fp.correct()) {
    if (!decisions[static_cast<std::size_t>(p)]) {
      v.termination = false;
      note("termination: correct process " + std::to_string(p) +
           " never decided");
    }
  }

  for (Pid p = 0; p < fp.n(); ++p) {
    const auto& d = decisions[static_cast<std::size_t>(p)];
    if (!d) continue;
    bool proposed = false;
    for (Value x : proposals) proposed = proposed || (x == *d);
    if (!proposed) {
      v.validity = false;
      note("validity: process " + std::to_string(p) + " decided " +
           std::to_string(*d) + ", which nobody proposed");
    }
  }

  for (Pid p = 0; p < fp.n(); ++p) {
    for (Pid q = static_cast<Pid>(p + 1); q < fp.n(); ++q) {
      const auto& dp = decisions[static_cast<std::size_t>(p)];
      const auto& dq = decisions[static_cast<std::size_t>(q)];
      if (!dp || !dq || *dp == *dq) continue;
      v.uniform_agreement = false;
      if (fp.is_correct(p) && fp.is_correct(q)) {
        v.nonuniform_agreement = false;
        note("agreement: correct processes " + std::to_string(p) + " and " +
             std::to_string(q) + " decided " + std::to_string(*dp) + " vs " +
             std::to_string(*dq));
      } else {
        note("uniform agreement: processes " + std::to_string(p) + " and " +
             std::to_string(q) + " decided " + std::to_string(*dp) + " vs " +
             std::to_string(*dq));
      }
    }
  }

  return v;
}

}  // namespace nucon
