#include "check/model_checker.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "exp/thread_pool.hpp"

namespace nucon {
namespace {

std::string disagreement_text(Pid a, Value va, Pid b, Value vb) {
  if (b < a) {
    std::swap(a, b);
    std::swap(va, vb);
  }
  return "processes " + std::to_string(a) + " and " + std::to_string(b) +
         " decided " + std::to_string(va) + " vs " + std::to_string(vb);
}

// ---------------------------------------------------------------------------
// The incremental parallel engine (see the header comment for the design).
// ---------------------------------------------------------------------------

/// One automaton's complete encoded state plus its content hash, computed
/// once at encode time and reused by every configuration (and every dedup
/// key) that shares the section.
struct Section {
  Bytes bytes;
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
};

using SectionPtr = std::shared_ptr<const Section>;

/// An in-flight message of the canonical configuration encoding. The
/// payload lives in the engine's PayloadPool and is referenced by index,
/// which keeps Wire trivially copyable — wire-list copies are memmoves and
/// frontier teardown is a plain free, with no refcount traffic. h1/h2
/// cache the wire's Zobrist element hash (computed once at send time, see
/// key_of below).
struct Wire {
  Pid to = -1;
  MsgId id;
  std::uint32_t payload = 0;
  std::uint64_t ord = 0;  // (to, sender, seq) packed; integer order is
                          // the canonical wire order
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
};

bool wire_before(const Wire& a, const Wire& b) { return a.ord < b.ord; }

/// Append-only payload store. Chunked so element addresses are stable and
/// the chunk table never reallocates (capacity is reserved up front):
/// the sequential merge appends new payloads while same-layer workers
/// read older indices concurrently — stable addresses plus the pool
/// handoff through the task queue make that race-free. Payloads are
/// interned only for admitted configurations, in merge order, so indices
/// are deterministic for any thread count.
class PayloadPool {
 public:
  PayloadPool() { chunks_.reserve(kMaxChunks); }

  std::uint32_t add(SharedBytes payload) {
    const std::size_t i = size_;
    if ((i & kChunkMask) == 0) {
      assert(chunks_.size() < kMaxChunks && "payload pool exhausted");
      chunks_.push_back(std::make_unique<SharedBytes[]>(kChunkSize));
    }
    chunks_[i >> kChunkBits][i & kChunkMask] = std::move(payload);
    ++size_;
    return static_cast<std::uint32_t>(i);
  }

  [[nodiscard]] const Bytes& at(std::uint32_t i) const {
    return chunks_[i >> kChunkBits][i & kChunkMask].get();
  }

 private:
  static constexpr std::size_t kChunkBits = 14;  // 16384 payloads per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;
  static constexpr std::size_t kMaxChunks = 1 << 16;

  std::vector<std::unique_ptr<SharedBytes[]>> chunks_;
  std::size_t size_ = 0;
};

struct Key128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend Key128 operator^(Key128 a, Key128 b) {
    return {a.lo ^ b.lo, a.hi ^ b.hi};
  }
};

/// A compact configuration: complete per-automaton encodings (shared with
/// the parent configuration for the n-1 processes that did not step),
/// packed per-process counters (own_steps << 32 | sends), and the wire
/// list sorted by wire_before. The sorted order makes delivery indices
/// intrinsic to the configuration rather than to the path that reached
/// it. `key` is the configuration's dedup key, maintained incrementally.
struct Config {
  std::vector<SectionPtr> autom;
  std::vector<std::uint64_t> counters;
  std::vector<Wire> wires;
  Key128 key;
};

int own_steps_of(std::uint64_t counter) {
  return static_cast<int>(counter >> 32);
}

std::uint64_t fmix64(std::uint64_t v) {
  v ^= v >> 33;
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  v *= 0xc4ceb9fe1a85ec53ULL;
  v ^= v >> 33;
  return v;
}

// Two independent 64-bit absorb chains (splitmix-style and murmur-style
// finalizers). A single 64-bit visited key silently prunes an unexplored
// subtree on collision; with two unrelated mixes a prune requires both
// halves to collide. hash_collisions counts how often the widened key
// saved a bucket.

std::uint64_t absorb1(std::uint64_t h, std::uint64_t v) {
  h += 0x9e3779b97f4a7c15ULL + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::uint64_t absorb2(std::uint64_t h, std::uint64_t v) {
  h = (h ^ v) * 0x9ddfea08eb382d69ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  return h;
}

/// The dedup key is Zobrist-style: the XOR of one element hash per
/// constituent (each process's section + counters; each in-flight wire).
/// XOR lets a child's key be derived from the parent's in O(1) — flip the
/// stepped process's old and new elements, the delivered wire, and the
/// fresh sends. Elements never collide by construction (a process element
/// carries p, a wire element its unique (to, sender, seq)), so the XOR is
/// over a set, never a multiset.
struct Hash2 {
  std::uint64_t a;
  std::uint64_t b;

  explicit Hash2(std::uint64_t seed) : a(seed), b(~seed) {}

  void mix(std::uint64_t v) {
    a = absorb1(a, v);
    b = absorb2(b, v);
  }

  void bytes(const Bytes& data) {
    mix(data.size());
    // Word-at-a-time absorb of the content.
    std::size_t i = 0;
    std::uint64_t word = 0;
    for (std::uint8_t c : data) {
      word = (word << 8) | c;
      if (++i % 8 == 0) {
        mix(word);
        word = 0;
      }
    }
    if (i % 8 != 0) mix(word);
  }

  [[nodiscard]] Key128 key() const { return {a, b}; }
};

Key128 content_hash(const Bytes& data) {
  Hash2 h(0x6e75636f6eULL);  // "nucon"
  h.bytes(data);
  return h.key();
}

/// Element hash of process p's section + packed counters.
Key128 process_element(Pid p, const Section& s, std::uint64_t counter) {
  Hash2 h(0x70726f63ULL);  // "proc"
  h.mix(static_cast<std::uint64_t>(p));
  h.mix(s.h1);
  h.mix(s.h2);
  h.mix(counter);
  return h.key();
}

/// Element hash of an in-flight wire (cached in Wire::h1/h2).
/// `payload_hash` is the content_hash of the payload bytes, so a
/// broadcast's shared buffer is hashed once, not per destination.
Key128 wire_element(Pid to, MsgId id, Key128 payload_hash) {
  Hash2 h(0x77697265ULL);  // "wire"
  h.mix(static_cast<std::uint64_t>(to));
  h.mix(static_cast<std::uint64_t>(id.sender));
  h.mix(id.seq);
  h.mix(payload_hash.lo);
  h.mix(payload_hash.hi);
  return h.key();
}

/// Full (non-incremental) key, used for the root configuration only.
Key128 key_of(const Config& cfg) {
  Key128 k{};
  const Pid n = static_cast<Pid>(cfg.autom.size());
  for (Pid p = 0; p < n; ++p) {
    const auto i = static_cast<std::size_t>(p);
    k = k ^ process_element(p, *cfg.autom[i], cfg.counters[i]);
  }
  for (const Wire& w : cfg.wires) k = k ^ Key128{w.h1, w.h2};
  return k;
}

/// First-decider summary carried along each path so a new decision is
/// checked in O(1) instead of rescanning all n decisions per node. Any
/// disagreement anywhere conflicts with the first decider's value.
struct Decided {
  Pid pid = -1;
  Value value = 0;
};

// --- sleep sets ------------------------------------------------------------
//
// A sleep element is a step identified by (process, delivered message id);
// unlike the delivery index, the id survives the parent-to-child wire-list
// reshuffle. The id packs into one word — (p, sender+1, seq) in descending
// bit position — so its integer order IS the canonical enabled order
// (process ascending, lambda before deliveries in (sender, seq) order),
// and every set operation below is a single-word merge-scan.

using StepId = std::uint64_t;
using SleepSet = std::vector<StepId>;  // sorted ascending

constexpr StepId kStepIdNone = ~StepId{0};

StepId step_id_pack(Pid p, Pid sender, std::uint64_t seq) {
  // p, sender < 2^8 and seq < 2^48 — n is single-digit and a process
  // cannot send more messages than there are explored states.
  return (static_cast<StepId>(static_cast<std::uint8_t>(p)) << 56) |
         (static_cast<StepId>(static_cast<std::uint8_t>(sender + 1)) << 48) |
         seq;
}

Pid step_id_pid(StepId id) { return static_cast<Pid>(id >> 56); }

/// Streams the sleep set a child arrives with, in ascending order: the
/// parent's sleep plus the explored steps ordered before it
/// (targets[0..before)), minus every element of the stepping process —
/// same-process steps are the dependent ones (they race on one automaton
/// and its queue), everything else commutes and stays asleep. Streaming
/// lets the merge test duplicates against it without materializing.
struct ChildSleep {
  const StepId* a = nullptr;  // parent sleep
  std::size_t an = 0;
  const StepId* b = nullptr;  // targets
  std::size_t bn = 0;
  Pid skip = -1;
  std::size_t i = 0;
  std::size_t j = 0;

  ChildSleep(const SleepSet& parent, const SleepSet& targets,
             std::size_t before, Pid stepping)
      : a(parent.data()),
        an(parent.size()),
        b(targets.data()),
        bn(before),
        skip(stepping) {}

  StepId next() {
    for (;;) {
      StepId v;
      if (i < an && (j >= bn || a[i] <= b[j])) {
        v = a[i];
        if (j < bn && b[j] == v) ++j;
        ++i;
      } else if (j < bn) {
        v = b[j++];
      } else {
        return kStepIdNone;
      }
      if (step_id_pid(v) != skip) return v;
    }
  }

  [[nodiscard]] SleepSet materialize() {
    SleepSet out;
    out.reserve(an + bn);
    for (StepId v = next(); v != kStepIdNone; v = next()) out.push_back(v);
    return out;
  }
};

/// stored ⊆ cursor's stream? Allocation-free — the common dedup path asks
/// only this question. Consumes the cursor.
bool sleep_subset(const SleepSet& stored, ChildSleep cursor) {
  StepId v = cursor.next();
  for (const StepId s : stored) {
    while (v != kStepIdNone && v < s) v = cursor.next();
    if (v != s) return false;
    v = cursor.next();
  }
  return true;
}

// --- frontier expansion ----------------------------------------------------

struct WorkItem {
  std::uint32_t node = 0;  // witness parent-chain id
  int depth = 0;           // minimum depth of this configuration
  Config cfg;
  Decided decided;
  SleepSet sleep;  // sleep set this configuration was reached with
  /// Reconciliation pass: expand exactly these steps (the ones an earlier
  /// visit left asleep but the new arrival demands). Empty optional for a
  /// normal first expansion.
  std::optional<SleepSet> only;
};

/// Local-transition memo. A step's outcome (post-step section, sends,
/// decision) is a pure function of the stepping process's section, its
/// own-step index (which fixes the failure-detector value), and the
/// delivered payload — NOT of the rest of the configuration. Global
/// configurations are near-products of few distinct local states, so the
/// same local transition recurs across thousands of configurations; the
/// memo replaces restore+step+encode+hash with one table hit. Caching a
/// pure function on any worker cannot perturb results, so determinism
/// across thread counts is untouched.
struct StepMemo {
  struct Key {
    Pid p = -1;
    int own = 0;
    Pid sender = -1;
    std::uint64_t s_h1 = 0;   // stepping process's section content hash
    std::uint64_t s_h2 = 0;
    std::int64_t payload = -1;  // pool index of the delivery, -1 for lambda

    bool operator==(const Key&) const = default;
  };

  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = absorb1(0x6d656d6fULL, static_cast<std::uint64_t>(k.p));
      h = absorb1(h, static_cast<std::uint64_t>(k.own));
      h = absorb1(h, static_cast<std::uint64_t>(k.sender));
      h = absorb1(h, k.s_h1 ^ k.s_h2);
      h = absorb1(h, static_cast<std::uint64_t>(k.payload));
      return static_cast<std::size_t>(h);
    }
  };

  struct Send {
    Pid to = -1;
    SharedBytes payload;
    Key128 phash;  // payload content hash
  };

  struct Val {
    SectionPtr section;
    std::optional<Value> decision;
    std::vector<Send> sends;
  };

  using ValPtr = std::shared_ptr<const Val>;

  std::uint64_t tag = 0;
  std::unordered_map<Key, ValPtr, KeyHash> map;
};

/// A child configuration in delta form: the local transition's outcome
/// (shared with every candidate that took the same local step), the
/// child's dedup key and updated counter, and the delivered wire's index.
/// The full Config is only materialized (build_config) for candidates
/// that survive dedup AND are below the depth bound — the majority
/// (duplicates and the deepest layer's leaves) never pay for the
/// wire-list copy, and a candidate itself allocates nothing.
struct Candidate {
  McStep step;
  Key128 key;                // the child's dedup key
  StepMemo::ValPtr val;      // post-step section, sends, decision
  std::uint64_t counter = 0; // stepped process's updated packed counter
  int widx = -1;             // delivered wire index in the parent, -1 lambda
  Decided decided;
  bool violation = false;
  std::string violation_text;
};

/// Materializes a candidate's full configuration from its parent's,
/// interning the fresh sends' payloads. Wire ids and element hashes are
/// recomputed here rather than stored per candidate: only survivors pay,
/// and the recompute is a handful of integer mixes.
Config build_config(const Config& parent, const Candidate& c,
                    PayloadPool& pool) {
  Config cfg;
  cfg.key = c.key;
  const auto pi = static_cast<std::size_t>(c.step.p);
  cfg.autom = parent.autom;
  cfg.autom[pi] = c.val->section;
  cfg.counters = parent.counters;
  cfg.counters[pi] = c.counter;
  // The parent's wires minus the delivered one are already in canonical
  // order; each fresh send is placed by binary search instead of
  // re-sorting the whole list.
  const std::vector<StepMemo::Send>& sends = c.val->sends;
  cfg.wires.reserve(parent.wires.size() + sends.size());
  for (std::size_t w = 0; w < parent.wires.size(); ++w) {
    if (static_cast<int>(w) != c.widx) cfg.wires.push_back(parent.wires[w]);
  }
  const std::uint64_t base = (c.counter & 0xFFFFFFFFULL) - sends.size();
  for (std::size_t k = 0; k < sends.size(); ++k) {
    Wire wire;
    wire.to = sends[k].to;
    wire.id = MsgId{c.step.p, base + k + 1};
    wire.ord = step_id_pack(wire.to, wire.id.sender, wire.id.seq);
    const Key128 we = wire_element(wire.to, wire.id, sends[k].phash);
    wire.h1 = we.lo;
    wire.h2 = we.hi;
    wire.payload = pool.add(sends[k].payload);
    const auto at =
        std::upper_bound(cfg.wires.begin(), cfg.wires.end(), wire, wire_before);
    cfg.wires.insert(at, wire);
  }
  return cfg;
}

struct Expansion {
  std::vector<Candidate> cands;
  /// Packed ids of the expanded steps, aligned with cands: the sleep set
  /// cands[i] arrives with is ChildSleep(item.sleep, targets, i, step.p),
  /// computed lazily by the merge — duplicates never materialize one.
  SleepSet targets;
  std::size_t por_skips = 0;
};

/// Per-thread reusable automaton instances: restore_state overwrites the
/// complete state, so one instance per process serves every expansion on
/// the thread — no construct/destroy per candidate. The tag (unique per
/// model_check_consensus call) guards against a pool shared by concurrent
/// runs with different factories.
ConsensusAutomaton& scratch_automaton(const McOptions& opts,
                                      std::uint64_t run_tag, Pid p) {
  struct Scratch {
    std::uint64_t tag = 0;
    std::vector<std::unique_ptr<ConsensusAutomaton>> per_pid;
  };
  thread_local Scratch s;
  if (s.tag != run_tag) {
    s.per_pid.clear();
    s.per_pid.resize(static_cast<std::size_t>(opts.n));
    s.tag = run_tag;
  }
  auto& slot = s.per_pid[static_cast<std::size_t>(p)];
  if (!slot) slot = opts.make(p, opts.proposals[static_cast<std::size_t>(p)]);
  return *slot;
}

SectionPtr encode_section(const Automaton& a) {
  thread_local ByteWriter w;
  w.reset();
  const bool ok = a.save_state(w);
  assert(ok);
  (void)ok;
  auto section = std::make_shared<Section>();
  section->bytes = w.buffer();
  const Key128 h = content_hash(section->bytes);
  section->h1 = h.lo;
  section->h2 = h.hi;
  return section;
}

/// Computes one frontier item's children: pure function of the item (the
/// pool is read-only here), so the parallel layer can run it on any worker
/// in any order.
Expansion expand(const McOptions& opts, bool use_por, std::uint64_t run_tag,
                 const PayloadPool& pool, const WorkItem& item) {
  Expansion out;
  const Config& cfg = item.cfg;

  // The expanded steps, chosen while walking the enabled steps in
  // canonical order (== ascending packed step id): per process its lambda
  // step, then its pending deliveries in (sender, seq) order. Scratch
  // vectors are reused across calls on the same worker.
  thread_local std::vector<McStep> chosen;
  thread_local std::vector<int> chosen_wire;
  chosen.clear();
  chosen_wire.clear();

  if (item.only) {
    // Reconciliation pass: expand exactly the demanded steps. They were
    // enabled when this configuration was first expanded, hence are
    // enabled now (same configuration) — but their delivery indices must
    // be re-derived from the canonical list.
    std::size_t w = 0;
    std::size_t o = 0;
    for (Pid p = 0; p < opts.n && o < item.only->size(); ++p) {
      if ((*item.only)[o] == step_id_pack(p, -1, 0)) {
        out.targets.push_back((*item.only)[o]);
        chosen.push_back({p, -1, MsgId{}});
        chosen_wire.push_back(-1);
        ++o;
      }
      int local = 0;
      while (w < cfg.wires.size() && cfg.wires[w].to == p) {
        if (o < item.only->size() && (*item.only)[o] == cfg.wires[w].ord) {
          out.targets.push_back(cfg.wires[w].ord);
          chosen.push_back({p, local, cfg.wires[w].id});
          chosen_wire.push_back(static_cast<int>(w));
          ++o;
        }
        ++local;
        ++w;
      }
    }
  } else {
    // Normal expansion: every enabled step not asleep. The sleep set is
    // ascending like the enumeration, so one merge-scan suffices.
    std::size_t w = 0;
    std::size_t s = 0;
    const auto awake = [&](StepId id) {
      if (!use_por) return true;
      while (s < item.sleep.size() && item.sleep[s] < id) ++s;
      if (s < item.sleep.size() && item.sleep[s] == id) {
        ++out.por_skips;
        ++s;
        return false;
      }
      return true;
    };
    for (Pid p = 0; p < opts.n; ++p) {
      if (awake(step_id_pack(p, -1, 0))) {
        out.targets.push_back(step_id_pack(p, -1, 0));
        chosen.push_back({p, -1, MsgId{}});
        chosen_wire.push_back(-1);
      }
      int local = 0;
      while (w < cfg.wires.size() && cfg.wires[w].to == p) {
        if (awake(cfg.wires[w].ord)) {
          out.targets.push_back(cfg.wires[w].ord);
          chosen.push_back({p, local, cfg.wires[w].id});
          chosen_wire.push_back(static_cast<int>(w));
        }
        ++local;
        ++w;
      }
    }
  }

  out.cands.reserve(chosen.size());
  thread_local std::vector<Outgoing> sends;
  thread_local StepMemo memo;
  if (memo.tag != run_tag) {
    memo.map.clear();
    memo.tag = run_tag;
  }
  // Backstop against unbounded growth on huge runs; re-warming is cheap
  // relative to the memory.
  if (memo.map.size() > (8u << 20)) memo.map.clear();

  for (std::size_t k = 0; k < chosen.size(); ++k) {
    const McStep& step = chosen[k];
    const auto pi = static_cast<std::size_t>(step.p);
    const Section& before = *cfg.autom[pi];
    const int own = own_steps_of(cfg.counters[pi]) + 1;
    const int widx = chosen_wire[k];

    StepMemo::Key mk;
    mk.p = step.p;
    mk.own = own;
    mk.s_h1 = before.h1;
    mk.s_h2 = before.h2;
    if (widx >= 0) {
      const Wire& wire = cfg.wires[static_cast<std::size_t>(widx)];
      mk.sender = wire.id.sender;
      mk.payload = static_cast<std::int64_t>(wire.payload);
    }

    const auto [mit, fresh] = memo.map.try_emplace(mk);
    if (fresh) {
      ConsensusAutomaton& child = scratch_automaton(opts, run_tag, step.p);
      const bool ok = child.restore(before.bytes);
      assert(ok && "restore_state must accept its own save_state encoding");
      (void)ok;
      const FdValue d = opts.fd(step.p, own);
      sends.clear();
      if (widx >= 0) {
        const Wire& wire = cfg.wires[static_cast<std::size_t>(widx)];
        const Incoming in{wire.id.sender, &pool.at(wire.payload)};
        child.step(&in, d, sends);
      } else {
        child.step(nullptr, d, sends);
      }
      auto v = std::make_shared<StepMemo::Val>();
      v->section = encode_section(child);
      v->decision = child.decision();
      // A broadcast shares one payload buffer across destinations; hash
      // the content once.
      const Bytes* hashed_raw = nullptr;
      bool have_hash = false;
      Key128 payload_hash{};
      v->sends.reserve(sends.size());
      for (Outgoing& o : sends) {
        if (!have_hash || o.payload.raw() != hashed_raw) {
          hashed_raw = o.payload.raw();
          payload_hash = content_hash(o.payload.get());
          have_hash = true;
        }
        v->sends.push_back({o.to, std::move(o.payload), payload_hash});
      }
      mit->second = std::move(v);
    }
    const StepMemo::Val& v = *mit->second;

    Candidate c;
    c.step = step;
    c.widx = widx;
    c.val = mit->second;
    c.counter = (static_cast<std::uint64_t>(own) << 32) |
                ((cfg.counters[pi] & 0xFFFFFFFFULL) + v.sends.size());
    Key128 key = cfg.key;
    if (widx >= 0) {
      const Wire& delivered = cfg.wires[static_cast<std::size_t>(widx)];
      key = key ^ Key128{delivered.h1, delivered.h2};
    }
    std::uint64_t seq = cfg.counters[pi] & 0xFFFFFFFFULL;
    for (const StepMemo::Send& s : v.sends) {
      key = key ^ wire_element(s.to, MsgId{step.p, ++seq}, s.phash);
    }
    key = key ^ process_element(step.p, before, cfg.counters[pi]);
    key = key ^ process_element(step.p, *v.section, c.counter);
    c.key = key;

    c.decided = item.decided;
    if (v.decision) {
      const Value dv = *v.decision;
      if (item.decided.pid < 0) {
        c.decided = Decided{step.p, dv};
      } else if (step.p != item.decided.pid && dv != item.decided.value) {
        c.violation = true;
        c.violation_text = disagreement_text(item.decided.pid,
                                             item.decided.value, step.p, dv);
      }
    }

    out.cands.push_back(std::move(c));
  }
  return out;
}

// --- deterministic sequential merge ----------------------------------------

struct VisitEntry {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint32_t node = 0;
  std::uint32_t next = 0;  // 1-based index of the next entry with equal lo
  int depth = 0;
  bool expanded = false;
  SleepSet sleep;  // transitions not yet explored from this configuration
};

/// The visited set: open-addressing slots keyed by the low key half,
/// chaining to entries (the chain is only ever longer than one on a 64-bit
/// half-key collision). Flat probing costs ~1 cache miss per lookup where
/// a node-based map pays 2-3.
class Visited {
 public:
  Visited() : slots_(kInitialSlots), mask_(kInitialSlots - 1) {}

  /// The entry matching (lo, hi), or nullptr. lo_seen reports whether any
  /// entry with the same low half exists (the collision counter's input).
  VisitEntry* find(std::uint64_t lo, std::uint64_t hi, bool& lo_seen) {
    std::size_t i = fmix64(lo) & mask_;
    while (slots_[i].head != 0) {
      if (slots_[i].lo == lo) {
        lo_seen = true;
        for (std::uint32_t e = slots_[i].head; e != 0;
             e = entries_[e - 1].next) {
          if (entries_[e - 1].hi == hi) return &entries_[e - 1];
        }
        return nullptr;
      }
      i = (i + 1) & mask_;
    }
    lo_seen = false;
    return nullptr;
  }

  /// Inserts a new entry; (lo, hi) must not already be present. The
  /// returned reference is valid until the next insert.
  VisitEntry& insert(VisitEntry entry) {
    if ((entries_.size() + 1) * 10 >= slots_.size() * 7) grow();
    entries_.push_back(std::move(entry));
    place(static_cast<std::uint32_t>(entries_.size()));
    return entries_.back();
  }

  void reserve(std::size_t n) {
    while (n * 10 >= slots_.size() * 7) grow();
  }

  /// Pulls the slot line for an upcoming find into cache; lookups are
  /// effectively random so each one is otherwise a guaranteed miss.
  void prefetch(std::uint64_t lo) const {
    __builtin_prefetch(&slots_[fmix64(lo) & mask_]);
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  static constexpr std::size_t kInitialSlots = 1024;

  struct Slot {
    std::uint64_t lo = 0;
    std::uint32_t head = 0;  // 1-based entry index; 0 = empty slot
  };

  void place(std::uint32_t id) {
    VisitEntry& entry = entries_[id - 1];
    std::size_t i = fmix64(entry.lo) & mask_;
    while (slots_[i].head != 0 && slots_[i].lo != entry.lo) {
      i = (i + 1) & mask_;
    }
    if (slots_[i].head == 0) {
      slots_[i] = {entry.lo, id};
    } else {
      entry.next = slots_[i].head;
      slots_[i].head = id;
    }
  }

  void grow() {
    slots_.assign(slots_.size() * 2, {});
    mask_ = slots_.size() - 1;
    for (VisitEntry& entry : entries_) entry.next = 0;
    for (std::uint32_t id = 1; id <= entries_.size(); ++id) place(id);
  }

  std::vector<Slot> slots_;
  std::size_t mask_;
  std::vector<VisitEntry> entries_;
};

struct NodeMeta {
  std::uint32_t parent = 0;
  McStep step;
};

/// All mutable search state lives here and is only touched by the merge,
/// which consumes expansions in canonical frontier order — so dedup,
/// budget accounting, and violation selection are identical no matter how
/// many threads produced the expansions.
struct Engine {
  Engine(const McOptions& o, bool por, std::uint64_t tag)
      : opts(o), use_por(por), run_tag(tag) {}

  const McOptions& opts;
  bool use_por;
  std::uint64_t run_tag;

  McResult result;
  Visited visited;
  PayloadPool payloads;
  std::vector<NodeMeta> meta;
  std::vector<WorkItem> next;
  bool budget_hit = false;
  bool stop = false;

  void merge(const WorkItem& item, Expansion& e) {
    result.por_skipped += e.por_skips;
    for (const Candidate& c : e.cands) visited.prefetch(c.key.lo);
    for (std::size_t i = 0; i < e.cands.size(); ++i) {
      if (stop) return;
      merge_candidate(item, e.targets, i, e.cands[i]);
    }
  }

  void merge_candidate(const WorkItem& item, const SleepSet& targets,
                       std::size_t index, Candidate& c) {
    const Key128 key = c.key;
    bool lo_seen = false;
    VisitEntry* found = visited.find(key.lo, key.hi, lo_seen);

    if (found == nullptr) {
      if (lo_seen) ++result.hash_collisions;
      if (result.states_explored >= opts.max_states) {
        // The budget check runs before the new configuration is admitted:
        // nothing past max_states is materialized or counted.
        budget_hit = true;
        stop = true;
        return;
      }
      ++result.states_explored;
      const int depth = item.depth + 1;
      result.peak_depth = std::max(result.peak_depth, depth);
      const auto id = static_cast<std::uint32_t>(meta.size());
      meta.push_back({item.node, c.step});
      if (c.violation) {
        result.violation_found = true;
        result.violation = std::move(c.violation_text);
        result.witness = witness_of(id);
        stop = true;
        return;
      }
      const bool expandable = depth < opts.max_depth;
      SleepSet sleep;
      if (expandable && use_por) {
        sleep = ChildSleep(item.sleep, targets, index, c.step.p).materialize();
      }
      visited.insert({key.lo, key.hi, id, 0, depth, expandable, sleep});
      if (expandable) {
        next.push_back(WorkItem{id, depth, build_config(item.cfg, c, payloads),
                                c.decided, std::move(sleep), std::nullopt});
      }
      return;
    }

    // Revisit. A depth-capped leaf was never expanded and never will be
    // (BFS only revisits at >= the stored minimum depth), so any arrival
    // is a pure dedup. An expanded entry must reconcile sleep sets: steps
    // the first visit left asleep but this arrival demands are explored
    // now, from the stored minimum depth, or the reduction would lose
    // states the unreduced search reaches.
    if (!found->expanded) {
      ++result.states_deduped;
      return;
    }
    if (sleep_subset(found->sleep,
                     ChildSleep(item.sleep, targets, index, c.step.p))) {
      ++result.states_deduped;
      return;
    }
    SleepSet arrival =
        ChildSleep(item.sleep, targets, index, c.step.p).materialize();
    SleepSet missing;
    std::set_difference(found->sleep.begin(), found->sleep.end(),
                        arrival.begin(), arrival.end(),
                        std::back_inserter(missing));
    ++result.states_reexpanded;
    SleepSet inter;
    std::set_intersection(found->sleep.begin(), found->sleep.end(),
                          arrival.begin(), arrival.end(),
                          std::back_inserter(inter));
    found->sleep = std::move(inter);
    next.push_back(WorkItem{found->node, found->depth,
                            build_config(item.cfg, c, payloads), c.decided,
                            std::move(arrival), std::move(missing)});
  }

  [[nodiscard]] std::vector<McStep> witness_of(std::uint32_t id) const {
    std::vector<McStep> steps;
    for (std::uint32_t at = id; at != 0; at = meta[at].parent) {
      steps.push_back(meta[at].step);
    }
    std::reverse(steps.begin(), steps.end());
    return steps;
  }
};

/// Expands one layer over the pool. Chunks are submitted in frontier
/// order with a bounded in-flight window and merged strictly in that
/// order; workers only ever run the pure expand(), so the schedule of
/// workers is invisible to the result.
void parallel_layer(Engine& engine, exp::ThreadPool& pool,
                    const std::vector<WorkItem>& frontier) {
  const McOptions& opts = engine.opts;
  const bool use_por = engine.use_por;
  const std::uint64_t run_tag = engine.run_tag;
  const std::size_t workers = std::max(1u, pool.size());
  const std::size_t chunk =
      std::clamp<std::size_t>(frontier.size() / (workers * 4), 1, 256);
  const std::size_t window = workers * 4;

  std::deque<std::pair<std::size_t, std::future<std::vector<Expansion>>>>
      inflight;
  std::size_t submitted = 0;

  const PayloadPool& payloads = engine.payloads;
  const auto submit_next = [&] {
    const std::size_t begin = submitted;
    const std::size_t end = std::min(frontier.size(), begin + chunk);
    submitted = end;
    inflight.emplace_back(
        begin,
        pool.submit([&opts, use_por, run_tag, &payloads, &frontier, begin,
                     end] {
          std::vector<Expansion> out;
          out.reserve(end - begin);
          for (std::size_t i = begin; i < end; ++i) {
            out.push_back(expand(opts, use_por, run_tag, payloads,
                                 frontier[i]));
          }
          return out;
        }));
  };

  while (!inflight.empty() ||
         (!engine.stop && submitted < frontier.size())) {
    while (!engine.stop && submitted < frontier.size() &&
           inflight.size() < window) {
      submit_next();
    }
    if (inflight.empty()) break;
    const std::size_t begin = inflight.front().first;
    // Futures are always drained, even after a stop: the tasks borrow
    // the frontier, which must outlive them.
    std::vector<Expansion> results = inflight.front().second.get();
    inflight.pop_front();
    if (engine.stop) continue;
    for (std::size_t i = 0; i < results.size(); ++i) {
      engine.merge(frontier[begin + i], results[i]);
      if (engine.stop) break;
    }
  }
}

// ---------------------------------------------------------------------------
// The frozen pre-overhaul engine (model_check_consensus_replay_baseline):
// single-threaded DFS, O(depth) path replay per node, 64-bit dedup over
// snapshot(). Kept verbatim as the bench baseline and for automata without
// complete-state support.
// ---------------------------------------------------------------------------

struct MState {
  std::vector<std::unique_ptr<ConsensusAutomaton>> automata;
  MessageBuffer buffer;
  std::vector<std::uint64_t> send_seq;
  std::vector<int> own_steps;
};

void apply(const McOptions& opts, MState& state, const McStep& step) {
  const Pid p = step.p;
  std::optional<Message> msg;
  if (step.delivery >= 0) {
    assert(static_cast<std::size_t>(step.delivery) <
           state.buffer.pending_for(p));
    msg = state.buffer.take(p, static_cast<std::size_t>(step.delivery));
  }
  ++state.own_steps[static_cast<std::size_t>(p)];
  const FdValue d = opts.fd(p, state.own_steps[static_cast<std::size_t>(p)]);

  std::vector<Outgoing> sends;
  if (msg) {
    const Incoming in{msg->id.sender, &msg->payload.get()};
    state.automata[static_cast<std::size_t>(p)]->step(&in, d, sends);
  } else {
    state.automata[static_cast<std::size_t>(p)]->step(nullptr, d, sends);
  }
  for (Outgoing& o : sends) {
    Message m;
    m.id = MsgId{p, ++state.send_seq[static_cast<std::size_t>(p)]};
    m.to = o.to;
    // sent_at only orders causality checks; the per-process step count is
    // a valid logical stamp here.
    m.sent_at = state.own_steps[static_cast<std::size_t>(p)];
    m.payload = std::move(o.payload);
    state.buffer.add(std::move(m));
  }
}

MState materialize(const McOptions& opts, const std::vector<McStep>& path) {
  MState state;
  state.automata.reserve(static_cast<std::size_t>(opts.n));
  for (Pid p = 0; p < opts.n; ++p) {
    state.automata.push_back(
        opts.make(p, opts.proposals[static_cast<std::size_t>(p)]));
  }
  state.send_seq.assign(static_cast<std::size_t>(opts.n), 0);
  state.own_steps.assign(static_cast<std::size_t>(opts.n), 0);
  for (const McStep& step : path) apply(opts, state, step);
  return state;
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_bytes(std::uint64_t h, const Bytes& bytes) {
  h = mix64(h, bytes.size());
  for (std::uint8_t b : bytes) h = h * 1099511628211ULL + b;
  return h;
}

std::uint64_t state_key(const McOptions& opts, const MState& state) {
  std::uint64_t h = 0x6e75636f6eULL;
  for (Pid p = 0; p < opts.n; ++p) {
    const auto snap = state.automata[static_cast<std::size_t>(p)]->snapshot();
    h = snap ? hash_bytes(h, *snap) : mix64(h, 0xDEAD);
    h = mix64(h, static_cast<std::uint64_t>(
                     state.own_steps[static_cast<std::size_t>(p)]));
  }
  // In-flight messages, order-normalized (delivery choices enumerate every
  // pending message anyway, so queue order is not behaviorally relevant).
  struct BaselineWire {
    Pid to;
    Pid sender;
    std::uint64_t seq;
    const Bytes* payload;
  };
  std::vector<BaselineWire> wires;
  for (Pid q = 0; q < opts.n; ++q) {
    for (std::size_t i = 0; i < state.buffer.pending_for(q); ++i) {
      const Message& m = state.buffer.peek(q, i);
      wires.push_back({q, m.id.sender, m.id.seq, &m.payload.get()});
    }
  }
  std::sort(wires.begin(), wires.end(),
            [](const BaselineWire& a, const BaselineWire& b) {
              return std::tie(a.to, a.sender, a.seq) <
                     std::tie(b.to, b.sender, b.seq);
            });
  for (const BaselineWire& w : wires) {
    h = mix64(h, static_cast<std::uint64_t>(w.to));
    h = mix64(h, static_cast<std::uint64_t>(w.sender));
    h = mix64(h, w.seq);
    h = hash_bytes(h, *w.payload);
  }
  return h;
}

std::optional<std::string> agreement_violation(const MState& state) {
  for (std::size_t p = 0; p < state.automata.size(); ++p) {
    for (std::size_t q = p + 1; q < state.automata.size(); ++q) {
      const auto dp = state.automata[p]->decision();
      const auto dq = state.automata[q]->decision();
      if (dp && dq && *dp != *dq) {
        return "processes " + std::to_string(p) + " and " + std::to_string(q) +
               " decided " + std::to_string(*dp) + " vs " +
               std::to_string(*dq);
      }
    }
  }
  return std::nullopt;
}

struct Dfs {
  explicit Dfs(const McOptions& o) : opts_ptr(&o) {}

  const McOptions* opts_ptr;
  McResult result;
  std::unordered_set<std::uint64_t> visited;
  std::vector<McStep> path;

  bool budget_exceeded() const {
    return result.states_explored >= opts_ptr->max_states;
  }

  /// Returns true when a violation was found (stop everything).
  bool explore() {
    const McOptions& o = *opts_ptr;
    const MState state = materialize(o, path);
    ++result.states_explored;
    result.peak_depth =
        std::max(result.peak_depth, static_cast<int>(path.size()));

    if (const auto violation = agreement_violation(state)) {
      result.violation_found = true;
      result.violation = *violation;
      result.witness = path;
      return true;
    }

    if (!visited.insert(state_key(o, state)).second) {
      ++result.states_deduped;
      return false;
    }
    if (path.size() >= static_cast<std::size_t>(o.max_depth)) return false;
    if (budget_exceeded()) return false;

    for (Pid p = 0; p < o.n; ++p) {
      const int pending = static_cast<int>(state.buffer.pending_for(p));
      for (int delivery = -1; delivery < pending; ++delivery) {
        path.push_back({p, delivery});
        const bool found = explore();
        path.pop_back();
        if (found) return true;
        if (budget_exceeded()) return false;
      }
    }
    return false;
  }
};

}  // namespace

McResult model_check_consensus_replay_baseline(const McOptions& opts) {
  assert(opts.make != nullptr && opts.fd != nullptr);
  assert(opts.proposals.size() == static_cast<std::size_t>(opts.n));

  Dfs dfs(opts);
  dfs.explore();
  dfs.result.exhausted = !dfs.result.violation_found && !dfs.budget_exceeded();
  return dfs.result;
}

McResult model_check_consensus(const McOptions& opts) {
  assert(opts.make != nullptr && opts.fd != nullptr);
  assert(opts.proposals.size() == static_cast<std::size_t>(opts.n));

  bool use_por = opts.use_por;
  if (const char* env = std::getenv("NUCON_MC_NO_POR");
      env != nullptr && *env != '\0' && *env != '0') {
    use_por = false;
  }

  // Build and encode the initial configuration. Automata without the
  // complete-state contract fall back to the frozen replay engine.
  Config root;
  Decided decided;
  std::string root_violation;
  root.counters.assign(static_cast<std::size_t>(opts.n), 0);
  for (Pid p = 0; p < opts.n; ++p) {
    const auto a = opts.make(p, opts.proposals[static_cast<std::size_t>(p)]);
    ByteWriter w;
    if (!a->save_state(w) || a->clone() == nullptr) {
      return model_check_consensus_replay_baseline(opts);
    }
    auto section = std::make_shared<Section>();
    section->bytes = w.take();
    const Key128 h = content_hash(section->bytes);
    section->h1 = h.lo;
    section->h2 = h.hi;
    root.autom.push_back(std::move(section));
    if (const auto dv = a->decision()) {
      if (decided.pid >= 0 && *dv != decided.value) {
        root_violation = disagreement_text(decided.pid, decided.value, p, *dv);
      } else if (decided.pid < 0) {
        decided = Decided{p, *dv};
      }
    }
  }

  static std::atomic<std::uint64_t> run_counter{0};
  Engine engine(opts, use_por, ++run_counter);
  engine.result.states_explored = 1;
  engine.meta.push_back({});
  root.key = key_of(root);
  engine.visited.insert(
      {root.key.lo, root.key.hi, 0, 0, 0, opts.max_depth > 0, {}});
  if (!root_violation.empty()) {
    engine.result.violation_found = true;
    engine.result.violation = std::move(root_violation);
    return engine.result;
  }

  std::unique_ptr<exp::ThreadPool> owned_pool;
  exp::ThreadPool* pool = opts.pool;
  if (pool == nullptr && opts.threads > 1) {
    owned_pool = std::make_unique<exp::ThreadPool>(opts.threads);
    pool = owned_pool.get();
  }

  std::vector<WorkItem> frontier;
  if (opts.max_depth > 0) {
    frontier.push_back(
        WorkItem{0, 0, std::move(root), decided, {}, std::nullopt});
  }

  while (!frontier.empty() && !engine.stop) {
    engine.next.clear();
    engine.next.reserve(std::min<std::size_t>(
        4 * frontier.size(), opts.max_states > engine.result.states_explored
                                 ? opts.max_states - engine.result.states_explored
                                 : 0));
    engine.visited.reserve(engine.result.states_explored +
                           4 * frontier.size());
    if (pool != nullptr && frontier.size() > 1) {
      parallel_layer(engine, *pool, frontier);
    } else {
      for (const WorkItem& item : frontier) {
        if (engine.stop) break;
        Expansion e =
            expand(opts, use_por, engine.run_tag, engine.payloads, item);
        engine.merge(item, e);
      }
    }
    frontier = std::move(engine.next);
    engine.next = {};
  }

  engine.result.exhausted =
      !engine.result.violation_found && !engine.budget_hit;
  return engine.result;
}

StateKey128 state_key128(const Bytes& encoded) {
  const Key128 k = content_hash(encoded);
  return {k.lo, k.hi};
}

StateKey128 process_state_key(Pid p, StateKey128 content) {
  Hash2 h(0x70726f63ULL);  // "proc", same constant as process_element
  h.mix(static_cast<std::uint64_t>(p));
  h.mix(content.lo);
  h.mix(content.hi);
  const Key128 k = h.key();
  return {k.lo, k.hi};
}

std::optional<std::string> replay_witness(const McOptions& opts,
                                          const std::vector<McStep>& witness) {
  assert(opts.make != nullptr && opts.fd != nullptr);
  assert(opts.proposals.size() == static_cast<std::size_t>(opts.n));

  std::vector<std::unique_ptr<ConsensusAutomaton>> automata;
  for (Pid p = 0; p < opts.n; ++p) {
    automata.push_back(opts.make(p, opts.proposals[static_cast<std::size_t>(p)]));
  }
  std::vector<int> own_steps(static_cast<std::size_t>(opts.n), 0);
  std::vector<std::uint64_t> send_seq(static_cast<std::size_t>(opts.n), 0);
  struct LiveWire {
    Pid to;
    MsgId id;
    SharedBytes payload;
  };
  const auto live_before = [](const LiveWire& a, const LiveWire& b) {
    return std::tie(a.to, a.id.sender, a.id.seq) <
           std::tie(b.to, b.id.sender, b.id.seq);
  };
  std::vector<LiveWire> wires;

  for (const McStep& s : witness) {
    if (s.p < 0 || s.p >= opts.n) return std::nullopt;
    const auto pi = static_cast<std::size_t>(s.p);
    const int own = ++own_steps[pi];
    const FdValue d = opts.fd(s.p, own);
    std::vector<Outgoing> sends;
    if (s.delivery >= 0) {
      // Locate the s.delivery-th canonical pending message for p.
      int local = -1;
      std::size_t at = wires.size();
      for (std::size_t i = 0; i < wires.size(); ++i) {
        if (wires[i].to == s.p && ++local == s.delivery) {
          at = i;
          break;
        }
      }
      if (at == wires.size()) return std::nullopt;
      if (s.msg.sender >= 0 && !(wires[at].id == s.msg)) return std::nullopt;
      const Incoming in{wires[at].id.sender, &wires[at].payload.get()};
      automata[pi]->step(&in, d, sends);
      wires.erase(wires.begin() + static_cast<std::ptrdiff_t>(at));
    } else {
      automata[pi]->step(nullptr, d, sends);
    }
    for (Outgoing& o : sends) {
      wires.push_back({o.to, MsgId{s.p, ++send_seq[pi]}, std::move(o.payload)});
    }
    std::sort(wires.begin(), wires.end(), live_before);
  }

  for (Pid p = 0; p < opts.n; ++p) {
    const auto dp = automata[static_cast<std::size_t>(p)]->decision();
    if (!dp) continue;
    for (Pid q = p + 1; q < opts.n; ++q) {
      const auto dq = automata[static_cast<std::size_t>(q)]->decision();
      if (dq && *dq != *dp) return disagreement_text(p, *dp, q, *dq);
    }
  }
  return std::nullopt;
}

}  // namespace nucon
