#include "check/model_checker.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "sim/message.hpp"

namespace nucon {
namespace {

/// A fully materialized configuration. Automata are not copyable, so the
/// DFS re-materializes configurations by replaying the current path from
/// the initial configuration (cost O(depth) per node, which at the
/// explored scales is cheaper and simpler than state cloning).
struct MState {
  std::vector<std::unique_ptr<ConsensusAutomaton>> automata;
  MessageBuffer buffer;
  std::vector<std::uint64_t> send_seq;
  std::vector<int> own_steps;
};

void apply(const McOptions& opts, MState& state, const McStep& step) {
  const Pid p = step.p;
  std::optional<Message> msg;
  if (step.delivery >= 0) {
    assert(static_cast<std::size_t>(step.delivery) <
           state.buffer.pending_for(p));
    msg = state.buffer.take(p, static_cast<std::size_t>(step.delivery));
  }
  ++state.own_steps[static_cast<std::size_t>(p)];
  const FdValue d = opts.fd(p, state.own_steps[static_cast<std::size_t>(p)]);

  std::vector<Outgoing> sends;
  if (msg) {
    const Incoming in{msg->id.sender, &msg->payload.get()};
    state.automata[static_cast<std::size_t>(p)]->step(&in, d, sends);
  } else {
    state.automata[static_cast<std::size_t>(p)]->step(nullptr, d, sends);
  }
  for (Outgoing& o : sends) {
    Message m;
    m.id = MsgId{p, ++state.send_seq[static_cast<std::size_t>(p)]};
    m.to = o.to;
    // sent_at only orders causality checks; the per-process step count is
    // a valid logical stamp here.
    m.sent_at = state.own_steps[static_cast<std::size_t>(p)];
    m.payload = std::move(o.payload);
    state.buffer.add(std::move(m));
  }
}

MState materialize(const McOptions& opts, const std::vector<McStep>& path) {
  MState state;
  state.automata.reserve(static_cast<std::size_t>(opts.n));
  for (Pid p = 0; p < opts.n; ++p) {
    state.automata.push_back(
        opts.make(p, opts.proposals[static_cast<std::size_t>(p)]));
  }
  state.send_seq.assign(static_cast<std::size_t>(opts.n), 0);
  state.own_steps.assign(static_cast<std::size_t>(opts.n), 0);
  for (const McStep& step : path) apply(opts, state, step);
  return state;
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_bytes(std::uint64_t h, const Bytes& bytes) {
  h = mix64(h, bytes.size());
  for (std::uint8_t b : bytes) h = h * 1099511628211ULL + b;
  return h;
}

std::uint64_t state_key(const McOptions& opts, const MState& state) {
  std::uint64_t h = 0x6e75636f6eULL;
  for (Pid p = 0; p < opts.n; ++p) {
    const auto snap = state.automata[static_cast<std::size_t>(p)]->snapshot();
    h = snap ? hash_bytes(h, *snap) : mix64(h, 0xDEAD);
    h = mix64(h,
              static_cast<std::uint64_t>(state.own_steps[static_cast<std::size_t>(p)]));
  }
  // In-flight messages, order-normalized (delivery choices enumerate every
  // pending message anyway, so queue order is not behaviorally relevant).
  struct Wire {
    Pid to;
    Pid sender;
    std::uint64_t seq;
    const Bytes* payload;
  };
  std::vector<Wire> wires;
  for (Pid q = 0; q < opts.n; ++q) {
    for (std::size_t i = 0; i < state.buffer.pending_for(q); ++i) {
      const Message& m = state.buffer.peek(q, i);
      wires.push_back({q, m.id.sender, m.id.seq, &m.payload.get()});
    }
  }
  std::sort(wires.begin(), wires.end(), [](const Wire& a, const Wire& b) {
    return std::tie(a.to, a.sender, a.seq) < std::tie(b.to, b.sender, b.seq);
  });
  for (const Wire& w : wires) {
    h = mix64(h, static_cast<std::uint64_t>(w.to));
    h = mix64(h, static_cast<std::uint64_t>(w.sender));
    h = mix64(h, w.seq);
    h = hash_bytes(h, *w.payload);
  }
  return h;
}

std::optional<std::string> agreement_violation(const MState& state) {
  for (std::size_t p = 0; p < state.automata.size(); ++p) {
    for (std::size_t q = p + 1; q < state.automata.size(); ++q) {
      const auto dp = state.automata[p]->decision();
      const auto dq = state.automata[q]->decision();
      if (dp && dq && *dp != *dq) {
        return "processes " + std::to_string(p) + " and " + std::to_string(q) +
               " decided " + std::to_string(*dp) + " vs " +
               std::to_string(*dq);
      }
    }
  }
  return std::nullopt;
}

struct Dfs {
  explicit Dfs(const McOptions& o) : opts_ptr(&o) {}

  const McOptions* opts_ptr;
  McResult result;
  std::unordered_set<std::uint64_t> visited;
  std::vector<McStep> path;

  bool budget_exceeded() const {
    return result.states_explored >= opts_ptr->max_states;
  }

  /// Returns true when a violation was found (stop everything).
  bool explore() {
    const McOptions& o = *opts_ptr;
    const MState state = materialize(o, path);
    ++result.states_explored;

    if (const auto violation = agreement_violation(state)) {
      result.violation_found = true;
      result.violation = *violation;
      result.witness = path;
      return true;
    }

    if (!visited.insert(state_key(o, state)).second) {
      ++result.states_deduped;
      return false;
    }
    if (path.size() >= static_cast<std::size_t>(o.max_depth)) return false;
    if (budget_exceeded()) return false;

    for (Pid p = 0; p < o.n; ++p) {
      const int pending =
          static_cast<int>(state.buffer.pending_for(p));
      for (int delivery = -1; delivery < pending; ++delivery) {
        path.push_back({p, delivery});
        const bool found = explore();
        path.pop_back();
        if (found) return true;
        if (budget_exceeded()) return false;
      }
    }
    return false;
  }
};

}  // namespace

McResult model_check_consensus(const McOptions& opts) {
  assert(opts.make != nullptr && opts.fd != nullptr);
  assert(opts.proposals.size() == static_cast<std::size_t>(opts.n));

  Dfs dfs(opts);
  dfs.explore();
  dfs.result.exhausted =
      !dfs.result.violation_found && !dfs.budget_exceeded();
  return dfs.result;
}

}  // namespace nucon
