// Bounded model checking of consensus automata: exhaustive exploration of
// every schedule of a small system, up to a depth and state budget.
//
// The randomized scheduler samples runs; the model checker enumerates
// them. From each reachable configuration it branches on every choice the
// model leaves open — which process steps next and which pending message
// (or lambda) it receives — deduplicating configurations by a hash of the
// complete state (automaton snapshots + in-flight messages + per-process
// step counts). The failure detector is supplied as a deterministic
// function of (process, own step index), i.e. one fixed history, so the
// exploration covers exactly the schedules of that history.
//
// Soundness notes:
//  * a reported violation is real: the witness trace replays;
//  * "no violation" is relative to the depth/state budget, the fixed
//    detector history, and the automata's snapshot() being a COMPLETE
//    state encoding (true for MrConsensus; dedup degrades to best-effort
//    search for automata with partial snapshots);
//  * dedup uses 64-bit hashes of the encoded state (collision odds are
//    negligible at the explored scales but not zero).
//
// The flagship use (see model_checker_test.cpp): at n = 2 the checker
// *automatically finds* the paper's §6.3 violation for the naive
// Sigma^nu-quorum algorithm — two correct processes deciding differently
// within a dozen steps — and certifies MR-Sigma safe over the same
// exhaustively-explored space.
#pragma once

#include <functional>
#include <string>

#include "sim/automaton.hpp"
#include "sim/failure_pattern.hpp"

namespace nucon {

struct McOptions {
  Pid n = 2;
  ConsensusFactory make;
  std::vector<Value> proposals;
  /// The fixed failure-detector history: value seen by p at its k-th step
  /// (k starts at 1).
  std::function<FdValue(Pid p, int own_step)> fd;
  /// All processes are correct in the explored runs; the property checked
  /// is pairwise decision agreement (uniform == nonuniform here).
  int max_depth = 20;
  std::size_t max_states = 1'000'000;
};

/// One step of a witness schedule.
struct McStep {
  Pid p = -1;
  /// Index into the pending-message list for p at that point, or -1 for
  /// lambda.
  int delivery = -1;
};

struct McResult {
  bool violation_found = false;
  std::string violation;       // description of the disagreement
  std::vector<McStep> witness; // schedule reaching it (when found)
  std::size_t states_explored = 0;
  std::size_t states_deduped = 0;
  /// True when the search space within max_depth was fully covered
  /// without hitting the state budget.
  bool exhausted = false;
};

[[nodiscard]] McResult model_check_consensus(const McOptions& opts);

}  // namespace nucon
