// Bounded model checking of consensus automata: exhaustive exploration of
// every schedule of a small system, up to a depth and state budget.
//
// The randomized scheduler samples runs; the model checker enumerates
// them. From each reachable configuration it branches on every choice the
// model leaves open — which process steps next and which pending message
// (or lambda) it receives. The failure detector is supplied as a
// deterministic function of (process, own step index), i.e. one fixed
// history, so the exploration covers exactly the schedules of that
// history.
//
// Engine (the incremental, parallel, pruned explorer):
//  * configurations are held as compact byte encodings — per-automaton
//    complete states via Automaton::save_state (structurally shared with
//    the parent for the n-1 processes that did not step) plus the
//    canonically ordered in-flight message list — so expanding a child is
//    one clone + one step + one encode instead of replaying the whole
//    path from the initial configuration;
//  * the search is breadth-first by layers: each layer's frontier is
//    expanded in parallel over exp::ThreadPool, and the results are merged
//    sequentially in canonical frontier order. Dedup, budget accounting,
//    and violation selection all happen in the merge, which makes the
//    verdict, witness, and every counter bit-identical for any thread
//    count. BFS also reaches every configuration at its minimum depth
//    first, so the visited-set pruning is sound under the depth bound;
//  * dedup keys are 128 bits (two independent 64-bit mixes of the encoded
//    configuration); hash_collisions counts the 64-bit half-key clashes
//    the widened key disambiguated;
//  * sleep-set partial-order reduction prunes interleavings that only
//    permute steps of different processes (each step touches one automaton
//    and one destination queue, so such steps commute). Sleep sets are
//    reconciled on revisits, which keeps the reduction sound under state
//    caching: POR changes how many arrivals are generated, never the set
//    of configurations reached within the depth bound, so the verdict and
//    states_explored match the unreduced search. NUCON_MC_NO_POR=1
//    disables it.
//
// Soundness notes:
//  * a reported violation is real: the witness trace replays
//    (replay_witness below re-executes it);
//  * "no violation" is relative to the depth/state budget, the fixed
//    detector history, and the automata's save_state being a COMPLETE
//    state encoding (true for every checkable automaton in this library;
//    automata without save_state support fall back to the replay-based
//    baseline engine, whose dedup is best-effort over snapshot());
//  * the fd function is called from worker threads and must be pure.
//
// The flagship use (see model_checker_test.cpp): the checker
// *automatically finds* the paper's §6.3 violation for the naive
// Sigma^nu-quorum algorithm — two correct processes deciding differently
// within a dozen steps — and certifies A_nuc safe over the same
// exhaustively-explored space.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "sim/automaton.hpp"
#include "sim/failure_pattern.hpp"
#include "sim/message.hpp"

namespace nucon::exp {
class ThreadPool;
}  // namespace nucon::exp

namespace nucon {

struct McOptions {
  Pid n = 2;
  ConsensusFactory make;
  std::vector<Value> proposals;
  /// The fixed failure-detector history: value seen by p at its k-th step
  /// (k starts at 1). Must be a pure function — frontier expansion calls
  /// it concurrently from worker threads.
  std::function<FdValue(Pid p, int own_step)> fd;
  /// All processes are correct in the explored runs; the property checked
  /// is pairwise decision agreement (uniform == nonuniform here).
  int max_depth = 20;
  std::size_t max_states = 1'000'000;
  /// Worker threads for frontier expansion; 1 runs serial. The result is
  /// bit-identical for any thread count.
  unsigned threads = 1;
  /// Optional external pool to expand on (takes precedence over
  /// `threads`; the caller keeps ownership). When null and threads > 1 a
  /// pool is created for the call.
  exp::ThreadPool* pool = nullptr;
  /// Sleep-set partial-order reduction (see file comment). The
  /// NUCON_MC_NO_POR=1 environment variable forces it off.
  bool use_por = true;
};

/// One step of a witness schedule.
struct McStep {
  Pid p = -1;
  /// Index into p's pending messages in canonical (sender, seq) order at
  /// that configuration, or -1 for lambda.
  int delivery = -1;
  /// The delivered message's identity ({-1, 0} for lambda). Unlike the
  /// index it is stable across configurations; replay_witness checks it
  /// and the POR sleep sets are keyed on it.
  MsgId msg{};

  friend bool operator==(const McStep&, const McStep&) = default;
};

struct McResult {
  bool violation_found = false;
  std::string violation;        // description of the disagreement
  std::vector<McStep> witness;  // minimum-depth schedule reaching it
  /// Unique configurations reached (the root counts as one).
  std::size_t states_explored = 0;
  /// Arrivals at an already-covered configuration that were pruned.
  std::size_t states_deduped = 0;
  /// Revisits that re-expanded a cached configuration because the new
  /// arrival's sleep set demanded transitions the first visit skipped
  /// (the POR/state-caching reconciliation).
  std::size_t states_reexpanded = 0;
  /// Transitions pruned by the partial-order reduction.
  std::size_t por_skipped = 0;
  /// 64-bit half-key collisions the 128-bit dedup key disambiguated
  /// (i.e. prunes a 64-bit visited set would have gotten wrong).
  std::size_t hash_collisions = 0;
  /// Deepest configuration reached (<= max_depth).
  int peak_depth = 0;
  /// True when the search space within max_depth was fully covered
  /// without hitting the state budget.
  bool exhausted = false;

  friend bool operator==(const McResult&, const McResult&) = default;
};

[[nodiscard]] McResult model_check_consensus(const McOptions& opts);

/// The pre-overhaul engine, frozen as a baseline: single-threaded DFS that
/// re-materializes every configuration by replaying the whole path and
/// dedups on a 64-bit hash of snapshot(). Kept for the bench_model
/// speedup comparison and for cross-validating verdicts; `threads`,
/// `pool`, and `use_por` are ignored, and witness deliveries index the
/// FIFO buffer order rather than the canonical order.
[[nodiscard]] McResult model_check_consensus_replay_baseline(
    const McOptions& opts);

/// Re-executes a witness schedule against a fresh initial configuration
/// (canonical delivery indexing; each step's msg id is verified when set).
/// Returns the agreement violation the final configuration exhibits, or
/// nullopt when the schedule is inapplicable or ends violation-free.
[[nodiscard]] std::optional<std::string> replay_witness(
    const McOptions& opts, const std::vector<McStep>& witness);

/// The engine's 128-bit configuration-key building block, exposed for
/// external consumers (the coverage-guided fuzzer in src/fuzz uses it to
/// fingerprint per-process states). Two independent 64-bit mixes of the
/// same input; a collision requires both halves to collide, exactly the
/// property the model checker's dedup relies on.
struct StateKey128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const StateKey128&, const StateKey128&) = default;
  friend bool operator<(const StateKey128& a, const StateKey128& b) {
    return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
  }
};

/// Content key of an encoded automaton state — the exact double-mix the
/// incremental engine computes for its per-process section hashes.
[[nodiscard]] StateKey128 state_key128(const Bytes& encoded);

/// Mixes a process id into its state's content key, matching the engine's
/// per-process element hashing (minus the step counters, which external
/// consumers track — or deliberately ignore — themselves).
[[nodiscard]] StateKey128 process_state_key(Pid p, StateKey128 content);

}  // namespace nucon
