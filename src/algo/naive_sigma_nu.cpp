#include "algo/naive_sigma_nu.hpp"

#include "algo/mr_consensus.hpp"
#include "fd/composed.hpp"
#include "fd/omega.hpp"
#include "fd/sigma_nu.hpp"

namespace nucon {
namespace {

/// One adversarial execution of `make` under the contamination family.
ConsensusRunStats run_adversarial(const ContaminationSetup& setup,
                                  const ConsensusFactory& make,
                                  bool use_sigma_nu_plus,
                                  std::uint64_t seed) {
  FailurePattern fp(setup.n);
  fp.set_crash(setup.faulty, setup.crash_at);

  OmegaOptions omega_opts;
  omega_opts.stabilize_at = setup.omega_stabilize_at;
  omega_opts.seed = seed * 2 + 1;
  OmegaOracle omega(fp, omega_opts);

  SigmaNuOptions sigma_opts;
  sigma_opts.stabilize_at = 0;  // quorums are adversarial from the start
  sigma_opts.faulty = FaultyQuorumBehavior::kAdversarialDisjoint;
  sigma_opts.seed = seed * 2 + 2;
  SigmaNuOracle sigma_nu(fp, sigma_opts);

  SigmaNuPlusOptions plus_opts;
  plus_opts.stabilize_at = 0;
  plus_opts.faulty = FaultyQuorumBehavior::kAdversarialDisjoint;
  plus_opts.seed = seed * 2 + 2;
  SigmaNuPlusOracle sigma_nu_plus(fp, plus_opts);

  ComposedOracle oracle(omega, use_sigma_nu_plus
                                   ? static_cast<Oracle&>(sigma_nu_plus)
                                   : static_cast<Oracle&>(sigma_nu));

  // Mixed proposals: divergence between estimates is what contamination
  // propagates.
  std::vector<Value> proposals(static_cast<std::size_t>(setup.n));
  for (Pid p = 0; p < setup.n; ++p) proposals[static_cast<std::size_t>(p)] = p % 2;

  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = setup.max_steps;
  return run_consensus(fp, oracle, make, proposals, opts);
}

}  // namespace

ContaminationResult find_contamination(const ContaminationSetup& setup,
                                       int max_seeds,
                                       std::uint64_t base_seed) {
  ContaminationResult result;
  const ConsensusFactory naive = make_mr_fd_quorum(setup.n);

  for (int i = 0; i < max_seeds; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    ConsensusRunStats stats =
        run_adversarial(setup, naive, /*use_sigma_nu_plus=*/false, seed);
    ++result.runs_tried;
    if (!stats.verdict.uniform_agreement) ++result.uniform_violations;
    if (!stats.verdict.nonuniform_agreement) {
      ++result.nonuniform_violations;
      result.found = true;
      result.seed = seed;
      result.stats = std::move(stats);
      return result;
    }
  }
  return result;
}

int count_nonuniform_violations(const ContaminationSetup& setup,
                                const ConsensusFactory& make, int seeds,
                                bool use_sigma_nu_plus,
                                std::uint64_t base_seed) {
  int violations = 0;
  for (int i = 0; i < seeds; ++i) {
    const ConsensusRunStats stats =
        run_adversarial(setup, make, use_sigma_nu_plus,
                        base_seed + static_cast<std::uint64_t>(i));
    if (!stats.verdict.nonuniform_agreement) ++violations;
  }
  return violations;
}

}  // namespace nucon
