// The Chandra-Toueg rotating-coordinator consensus algorithm (reference
// [2] of the paper), driven by the eventually-strong detector <>S.
//
// Included as the classical baseline: it predates the leader-based designs
// the paper builds on, requires a majority of correct processes, and gives
// the extraction pipeline (core/extract_sigma_nu) a consensus algorithm
// whose detector is *not* a quorum detector.
//
// Faithful sequential formulation — each process runs rounds in order, and
// the coordinator's duties are phases of its own round:
//   phase 1: everyone sends its (estimate, timestamp) to the round's
//            coordinator c = (r-1) mod n;
//   phase 2: c waits for a majority of estimates and broadcasts the one
//            with the highest timestamp as the round's selection;
//   phase 3: everyone waits for the selection (adopt + ACK) or for <>S to
//            suspect c (NACK);
//   phase 4: c waits for a majority of replies and, if all of the needed
//            majority were ACKs, floods DECIDE (reliable broadcast by
//            re-flooding on first receipt).
#pragma once

#include <map>
#include <optional>

#include "sim/automaton.hpp"

namespace nucon {

class CtConsensus final : public ConsensusAutomaton {
 public:
  CtConsensus(Pid self, Value proposal, Pid n);

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] std::optional<Value> decision() const override {
    return decided_;
  }

  [[nodiscard]] std::optional<Bytes> snapshot() const override;

  [[nodiscard]] bool save_state(ByteWriter& w) const override;
  [[nodiscard]] bool restore_state(ByteReader& r) override;

  [[nodiscard]] int round() const { return round_; }
  [[nodiscard]] int decided_round() const { return decided_round_; }

 private:
  CtConsensus(const CtConsensus&) = default;
  [[nodiscard]] CtConsensus* clone_raw() const override {
    return new CtConsensus(*this);
  }

  enum class Phase {
    kAwaitEstimates,  // coordinator only
    kAwaitSelection,
    kAwaitReplies,  // coordinator only
  };

  /// Buffered per-round messages (messages may arrive before this process
  /// enters the round; entries below the current round are pruned).
  struct RoundInbox {
    std::map<Pid, std::pair<Value, int>> estimates;
    std::optional<Value> selection;
    int acks = 0;
    int replies = 0;
  };

  void on_message(Pid from, const Bytes& payload, std::vector<Outgoing>& out);
  void advance(const FdValue& d, std::vector<Outgoing>& out);
  void start_round(std::vector<Outgoing>& out);
  void flood_decide(Value v, std::vector<Outgoing>& out);

  [[nodiscard]] Pid coordinator_of(int round) const {
    return static_cast<Pid>((round - 1) % n_);
  }

  const Pid self_;
  const Pid n_;

  Value x_;
  int ts_ = 0;  // round of the last estimate adoption
  int round_ = 0;
  Phase phase_ = Phase::kAwaitSelection;
  Value select_value_ = 0;  // coordinator: this round's selection
  std::optional<Value> decided_;
  int decided_round_ = 0;
  bool flooded_decide_ = false;
  std::map<int, RoundInbox> inbox_;

  /// Encode scratch: reset before each message build, so steady-state
  /// encoding reuses one grown buffer instead of allocating per send.
  ByteWriter scratch_;
};

[[nodiscard]] ConsensusFactory make_ct(Pid n);

}  // namespace nucon
