// Ben-Or randomized binary consensus (1983) — the classical oracle-free
// baseline.
//
// The failure-detector approach this library reproduces is one of two
// standard ways around FLP; randomization is the other, and having it in
// the library lets the benches compare their costs. Round r:
//   phase 1: broadcast (R1, r, x); await n-t reports; if a strict
//            majority of all n carried the same v, propose v, else "?";
//   phase 2: broadcast (R2, r, proposal); await n-t proposals;
//            >= t+1 for v  -> decide v (and keep participating),
//            >= 1   for v  -> adopt v,
//            none          -> x = fair coin.
// Requires n > 2t for safety and terminates with probability 1; each
// automaton draws its coins from its own seeded tape, so runs stay
// deterministic and replayable.
#pragma once

#include <map>
#include <optional>

#include "sim/automaton.hpp"
#include "util/rng.hpp"

namespace nucon {

class BenOr final : public ConsensusAutomaton {
 public:
  /// proposal must be 0 or 1. `t` is the tolerated fault bound (n > 2t).
  BenOr(Pid self, Value proposal, Pid n, Pid t, std::uint64_t coin_seed);

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] std::optional<Value> decision() const override {
    return decided_;
  }

  [[nodiscard]] std::optional<Bytes> snapshot() const override;

  [[nodiscard]] bool save_state(ByteWriter& w) const override;
  [[nodiscard]] bool restore_state(ByteReader& r) override;

  [[nodiscard]] int round() const { return round_; }
  /// Round in which this process first decided (0 if undecided).
  [[nodiscard]] int decided_round() const { return decided_round_; }
  [[nodiscard]] std::int64_t coin_flips() const { return coin_flips_; }

 private:
  enum class Phase { kAwaitReports, kAwaitProposals };

  BenOr(const BenOr&) = default;
  [[nodiscard]] BenOr* clone_raw() const override { return new BenOr(*this); }

  static constexpr Value kQuestion = -1;

  /// Slots sized n on first touch (a fixed kMaxProcesses array would cost
  /// ~30KB per buffered round at the 1024-process cap).
  struct RoundMsgs {
    std::vector<std::optional<Value>> report;
    std::vector<std::optional<Value>> proposal;
    void ensure(Pid n) {
      if (report.empty()) {
        report.resize(static_cast<std::size_t>(n));
        proposal.resize(static_cast<std::size_t>(n));
      }
    }
  };

  void on_message(Pid from, const Bytes& payload);
  void advance(std::vector<Outgoing>& out);
  void start_round(std::vector<Outgoing>& out);

  /// Seals (tag, round, v) into scratch_ and returns one shareable buffer.
  [[nodiscard]] SharedBytes encode(std::uint8_t tag, int round, Value v);

  const Pid self_;
  const Pid n_;
  const Pid t_;

  Value x_;
  int round_ = 0;
  int decided_round_ = 0;
  Phase phase_ = Phase::kAwaitReports;
  std::optional<Value> decided_;
  Rng coin_;
  std::int64_t coin_flips_ = 0;
  std::map<int, RoundMsgs> inbox_;

  /// Encode scratch: reset before each message build, so steady-state
  /// encoding reuses one grown buffer instead of allocating per send.
  ByteWriter scratch_;
};

[[nodiscard]] ConsensusFactory make_ben_or(Pid n, Pid t,
                                           std::uint64_t seed = 0xBE7);

}  // namespace nucon
