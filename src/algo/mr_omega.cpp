#include "algo/mr_consensus.hpp"

#include <cassert>

namespace nucon {
namespace {

constexpr std::uint8_t kTagLead = 1;
constexpr std::uint8_t kTagRep = 2;
constexpr std::uint8_t kTagProp = 3;

}  // namespace

MrConsensus::MrConsensus(Pid self, Value proposal, MrOptions opts)
    : self_(self), opts_(opts), x_(proposal) {
  assert(opts_.n >= 2 && self_ >= 0 && self_ < opts_.n);
  assert(proposal != kQuestion);
}

SharedBytes MrConsensus::encode(std::uint8_t tag, int round, Value v) {
  scratch_.reset();
  scratch_.u8(tag);
  scratch_.uvarint(static_cast<std::uint64_t>(round));
  scratch_.svarint(v);
  return SharedBytes(scratch_.buffer());
}

void MrConsensus::on_message(Pid from, const Bytes& payload) {
  ByteReader r(payload);
  const auto tag = r.u8();
  const auto round = r.uvarint();
  const auto v = r.svarint();
  if (!tag || !round || !v || !r.done()) return;  // drop malformed input
  RoundMsgs& msgs = inbox_[static_cast<int>(*round)];
  msgs.ensure(opts_.n);
  switch (*tag) {
    case kTagLead:
      msgs.lead[from] = *v;
      break;
    case kTagRep:
      msgs.rep[from] = *v;
      break;
    case kTagProp:
      msgs.prop[from] = *v;
      break;
    default:
      break;
  }
}

bool MrConsensus::quorum_complete(
    const std::vector<std::optional<Value>>& slot, const ProcessSet& q) const {
  if (q.empty()) return false;
  for (Pid member : q) {
    if (!slot[member]) return false;
  }
  return true;
}

void MrConsensus::start_round(std::vector<Outgoing>& out) {
  ++round_;
  phase_ = Phase::kAwaitLead;
  broadcast(opts_.n, encode(kTagLead, round_, x_), out);
}

void MrConsensus::step(const Incoming* in, const FdValue& d,
                       std::vector<Outgoing>& out) {
  if (in != nullptr) on_message(in->from, *in->payload);
  if (round_ == 0) start_round(out);
  advance(d, out);
}

void MrConsensus::advance(const FdValue& d, std::vector<Outgoing>& out) {
  // A single step may traverse several phases when their wait conditions
  // are already satisfied by stored messages; each pass below makes at
  // most one phase transition, and the loop repeats until a wait blocks.
  const int majority = opts_.n / 2 + 1;

  while (true) {
    RoundMsgs& msgs = inbox_[round_];
    msgs.ensure(opts_.n);

    if (phase_ == Phase::kAwaitLead) {
      if (!d.has_leader()) return;
      const Pid leader = d.leader();
      if (!msgs.lead[leader]) return;  // keep waiting for the leader's LEAD
      x_ = *msgs.lead[leader];
      broadcast(opts_.n, encode(kTagRep, round_, x_), out);
      phase_ = Phase::kAwaitReports;
      continue;
    }

    if (phase_ == Phase::kAwaitReports) {
      Value proposal = kQuestion;
      if (opts_.mode == MrQuorumMode::kMajority) {
        int received = 0;
        for (Pid q = 0; q < opts_.n; ++q) received += msgs.rep[q].has_value();
        if (received < majority) return;
        // Propose v iff a majority reported the same estimate v.
        for (Pid q = 0; q < opts_.n; ++q) {
          if (!msgs.rep[q]) continue;
          const Value v = *msgs.rep[q];
          int same = 0;
          for (Pid r = 0; r < opts_.n; ++r) same += (msgs.rep[r] == v);
          if (same >= majority) {
            proposal = v;
            break;
          }
        }
      } else {
        if (!d.has_quorum()) return;
        const ProcessSet q = d.quorum();
        if (!quorum_complete(msgs.rep, q)) return;
        // Propose v iff the quorum unanimously reported v.
        bool unanimous = true;
        const Value first = *msgs.rep[q.min()];
        for (Pid member : q) unanimous = unanimous && (*msgs.rep[member] == first);
        if (unanimous) proposal = first;
      }
      broadcast(opts_.n, encode(kTagProp, round_, proposal), out);
      phase_ = Phase::kAwaitProposals;
      continue;
    }

    // Phase::kAwaitProposals
    ProcessSet witnesses;
    if (opts_.mode == MrQuorumMode::kMajority) {
      for (Pid q = 0; q < opts_.n; ++q) {
        if (msgs.prop[q]) witnesses.insert(q);
      }
      if (witnesses.size() < majority) return;
    } else {
      if (!d.has_quorum()) return;
      witnesses = d.quorum();
      if (!quorum_complete(msgs.prop, witnesses)) return;
    }

    // Adopt any non-"?" proposal; decide on a unanimous one.
    bool all_v = true;
    std::optional<Value> seen_v;
    for (Pid member : witnesses) {
      const Value v = *msgs.prop[member];
      if (v == kQuestion) {
        all_v = false;
      } else {
        seen_v = v;
      }
    }
    if (seen_v) x_ = *seen_v;
    if (all_v && seen_v && !decided_) {
      decided_ = *seen_v;
      decided_round_ = round_;
    }

    inbox_.erase(inbox_.begin(), inbox_.lower_bound(round_));
    start_round(out);
  }
}

std::optional<Bytes> MrConsensus::snapshot() const {
  // Complete state encoding: the model checker relies on two MrConsensus
  // automata with equal snapshots being behaviorally identical, so the
  // buffered per-round messages are included, not just the registers.
  ByteWriter w;
  if (!save_state(w)) return std::nullopt;
  return w.take();
}

bool MrConsensus::save_state(ByteWriter& w) const {
  w.svarint(x_);
  w.uvarint(static_cast<std::uint64_t>(round_));
  w.u8(static_cast<std::uint8_t>(phase_));
  w.u8(decided_.has_value());
  if (decided_) w.svarint(*decided_);
  w.uvarint(static_cast<std::uint64_t>(decided_round_));
  w.uvarint(inbox_.size());
  const auto slot = [&w, this](const std::vector<std::optional<Value>>& arr) {
    for (Pid q = 0; q < opts_.n; ++q) {
      const bool has = !arr.empty() && arr[q].has_value();
      w.u8(has);
      if (has) w.svarint(*arr[q]);
    }
  };
  for (const auto& [round, msgs] : inbox_) {
    w.uvarint(static_cast<std::uint64_t>(round));
    slot(msgs.lead);
    slot(msgs.rep);
    slot(msgs.prop);
  }
  return true;
}

bool MrConsensus::restore_state(ByteReader& r) {
  const auto x = r.svarint();
  const auto round = r.uvarint();
  const auto phase = r.u8();
  const auto has_decided = r.u8();
  if (!x || !round || !phase || *phase > 2 || !has_decided) return false;
  std::optional<Value> decided;
  if (*has_decided != 0) {
    const auto v = r.svarint();
    if (!v) return false;
    decided = *v;
  }
  const auto decided_round = r.uvarint();
  const auto rounds = r.uvarint();
  if (!decided_round || !rounds) return false;

  std::map<int, RoundMsgs> inbox;
  const auto slot = [&r, this](std::vector<std::optional<Value>>& arr) {
    for (Pid q = 0; q < opts_.n; ++q) {
      const auto has = r.u8();
      if (!has) return false;
      if (*has != 0) {
        const auto v = r.svarint();
        if (!v) return false;
        arr[q] = *v;
      }
    }
    return true;
  };
  for (std::uint64_t i = 0; i < *rounds; ++i) {
    const auto key = r.uvarint();
    if (!key) return false;
    RoundMsgs& msgs = inbox[static_cast<int>(*key)];
    msgs.ensure(opts_.n);
    if (!slot(msgs.lead) || !slot(msgs.rep) || !slot(msgs.prop)) return false;
  }

  x_ = *x;
  round_ = static_cast<int>(*round);
  phase_ = static_cast<Phase>(*phase);
  decided_ = decided;
  decided_round_ = static_cast<int>(*decided_round);
  inbox_ = std::move(inbox);
  return true;
}

ConsensusFactory make_mr_majority(Pid n) {
  return [n](Pid p, Value proposal) {
    return std::make_unique<MrConsensus>(
        p, proposal, MrOptions{n, MrQuorumMode::kMajority});
  };
}

ConsensusFactory make_mr_fd_quorum(Pid n) {
  return [n](Pid p, Value proposal) {
    return std::make_unique<MrConsensus>(
        p, proposal, MrOptions{n, MrQuorumMode::kFdQuorum});
  };
}

}  // namespace nucon
