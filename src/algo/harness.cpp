#include "algo/harness.hpp"

#include "algo/ben_or.hpp"
#include "algo/ct_consensus.hpp"
#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"
#include "core/from_scratch.hpp"
#include "core/stacked_nuc.hpp"
#include "fd/impl/host.hpp"

namespace nucon {

ConsensusRunStats run_consensus(const FailurePattern& fp, Oracle& oracle,
                                const ConsensusFactory& make,
                                const std::vector<Value>& proposals,
                                const SchedulerOptions& opts) {
  SimResult sim = simulate_consensus(fp, oracle, make, proposals, opts);

  ConsensusRunStats stats;
  stats.decisions = decisions_of(sim.automata);
  stats.verdict = check_consensus(fp, proposals, stats.decisions);
  stats.messages_sent = sim.messages_sent;
  stats.bytes_sent = sim.bytes_sent;
  stats.steps = sim.steps_taken;
  stats.end_time = sim.end_time;
  stats.all_correct_decided = all_correct_decided(fp, sim.automata);

  for (Pid p = 0; p < fp.n(); ++p) {
    const Automaton* a = sim.automata[static_cast<std::size_t>(p)].get();
    // A hosted stack reports the rounds of the algorithm it hosts.
    if (const auto* host = dynamic_cast<const FdHost*>(a)) {
      a = &host->inner();
    }
    int round = 0;
    int decided_round = 0;
    if (const auto* mr = dynamic_cast<const MrConsensus*>(a)) {
      round = mr->round();
      decided_round = mr->decided_round();
    } else if (const auto* anuc = dynamic_cast<const Anuc*>(a)) {
      round = anuc->round();
      decided_round = anuc->decided_round();
    } else if (const auto* stacked = dynamic_cast<const StackedNuc*>(a)) {
      round = stacked->consensus().round();
      decided_round = stacked->consensus().decided_round();
    } else if (const auto* scratch = dynamic_cast<const FromScratchConsensus*>(a)) {
      round = scratch->consensus().round();
      decided_round = scratch->consensus().decided_round();
    } else if (const auto* ct = dynamic_cast<const CtConsensus*>(a)) {
      round = ct->round();
      decided_round = ct->decided_round();
    } else if (const auto* bo = dynamic_cast<const BenOr*>(a)) {
      round = bo->round();
      decided_round = bo->decided_round();
    }
    stats.max_round = std::max(stats.max_round, round);
    if (fp.is_correct(p)) {
      stats.decide_round = std::max(stats.decide_round, decided_round);
    }
  }

  stats.metrics = std::move(sim.metrics);
  stats.metrics.counter("consensus.max_round") = stats.max_round;
  stats.metrics.counter("consensus.decide_round") = stats.decide_round;
  stats.metrics.counter("consensus.all_correct_decided") =
      stats.all_correct_decided;
  return stats;
}

}  // namespace nucon
