#include "algo/ct_consensus.hpp"

#include <cassert>

namespace nucon {
namespace {

constexpr std::uint8_t kTagEstimate = 1;
constexpr std::uint8_t kTagSelect = 2;
constexpr std::uint8_t kTagAck = 3;
constexpr std::uint8_t kTagNack = 4;
constexpr std::uint8_t kTagDecide = 5;

}  // namespace

CtConsensus::CtConsensus(Pid self, Value proposal, Pid n)
    : self_(self), n_(n), x_(proposal) {
  assert(n_ >= 2 && self_ >= 0 && self_ < n_);
}

void CtConsensus::step(const Incoming* in, const FdValue& d,
                       std::vector<Outgoing>& out) {
  if (in != nullptr) on_message(in->from, *in->payload, out);
  if (round_ == 0) start_round(out);
  advance(d, out);
}

void CtConsensus::start_round(std::vector<Outgoing>& out) {
  inbox_.erase(inbox_.begin(), inbox_.lower_bound(round_));
  ++round_;
  scratch_.reset();
  scratch_.u8(kTagEstimate);
  scratch_.uvarint(static_cast<std::uint64_t>(round_));
  scratch_.svarint(x_);
  scratch_.uvarint(static_cast<std::uint64_t>(ts_));
  out.push_back({coordinator_of(round_), SharedBytes(scratch_.buffer())});
  phase_ = coordinator_of(round_) == self_ ? Phase::kAwaitEstimates
                                           : Phase::kAwaitSelection;
}

void CtConsensus::flood_decide(Value v, std::vector<Outgoing>& out) {
  if (!decided_) {
    decided_ = v;
    decided_round_ = round_;
  }
  if (flooded_decide_) return;
  flooded_decide_ = true;
  scratch_.reset();
  scratch_.u8(kTagDecide);
  scratch_.svarint(v);
  broadcast(n_, SharedBytes(scratch_.buffer()), out);
}

void CtConsensus::on_message(Pid from, const Bytes& payload,
                             std::vector<Outgoing>& out) {
  ByteReader r(payload);
  const auto tag = r.u8();
  if (!tag) return;

  if (*tag == kTagDecide) {
    const auto v = r.svarint();
    if (v && r.done()) flood_decide(*v, out);
    return;
  }

  const auto round = r.uvarint();
  if (!round) return;
  const int rnd = static_cast<int>(*round);
  if (rnd < round_) return;  // this round is over for us

  RoundInbox& inbox = inbox_[rnd];
  switch (*tag) {
    case kTagEstimate: {
      const auto v = r.svarint();
      const auto ts = r.uvarint();
      if (v && ts && r.done()) {
        inbox.estimates[from] = {*v, static_cast<int>(*ts)};
      }
      break;
    }
    case kTagSelect:
      if (const auto v = r.svarint();
          v && r.done() && from == coordinator_of(rnd)) {
        inbox.selection = *v;
      }
      break;
    case kTagAck:
    case kTagNack:
      if (r.done()) {
        ++inbox.replies;
        if (*tag == kTagAck) ++inbox.acks;
      }
      break;
    default:
      break;
  }
}

void CtConsensus::advance(const FdValue& d, std::vector<Outgoing>& out) {
  const int majority = n_ / 2 + 1;

  // Several phases may already be satisfied by buffered messages; bound
  // the number of round transitions per step so a detector value that
  // suspects every coordinator cannot spin forever within one atomic step.
  for (int burst = 0; burst < 8; ++burst) {
    RoundInbox& inbox = inbox_[round_];

    if (phase_ == Phase::kAwaitEstimates) {
      if (static_cast<int>(inbox.estimates.size()) < majority) return;
      // Select the estimate carrying the highest timestamp.
      std::pair<Value, int> best{0, -1};
      for (const auto& [p, est] : inbox.estimates) {
        if (est.second > best.second) best = est;
      }
      select_value_ = best.first;
      scratch_.reset();
      scratch_.u8(kTagSelect);
      scratch_.uvarint(static_cast<std::uint64_t>(round_));
      scratch_.svarint(best.first);
      broadcast(n_, SharedBytes(scratch_.buffer()), out);
      phase_ = Phase::kAwaitSelection;
      continue;
    }

    if (phase_ == Phase::kAwaitSelection) {
      const Pid coord = coordinator_of(round_);
      if (inbox.selection) {
        x_ = *inbox.selection;
        ts_ = round_;
        scratch_.reset();
        scratch_.u8(kTagAck);
        scratch_.uvarint(static_cast<std::uint64_t>(round_));
        out.push_back({coord, SharedBytes(scratch_.buffer())});
      } else if (d.has_suspects() && d.suspects().contains(coord)) {
        scratch_.reset();
        scratch_.u8(kTagNack);
        scratch_.uvarint(static_cast<std::uint64_t>(round_));
        out.push_back({coord, SharedBytes(scratch_.buffer())});
      } else {
        return;  // keep waiting for the selection or for suspicion
      }
      if (coord == self_) {
        phase_ = Phase::kAwaitReplies;
        continue;
      }
      start_round(out);
      continue;
    }

    // Phase::kAwaitReplies (coordinator only).
    if (inbox.replies < majority) return;
    if (inbox.acks >= majority) flood_decide(select_value_, out);
    start_round(out);
  }
}

std::optional<Bytes> CtConsensus::snapshot() const {
  ByteWriter w;
  w.svarint(x_);
  w.uvarint(static_cast<std::uint64_t>(ts_));
  w.uvarint(static_cast<std::uint64_t>(round_));
  w.u8(static_cast<std::uint8_t>(phase_));
  w.u8(decided_.has_value());
  if (decided_) w.svarint(*decided_);
  return w.take();
}

bool CtConsensus::save_state(ByteWriter& w) const {
  // Complete state (unlike snapshot(), which covers the registers only):
  // the buffered per-round inbox and the coordinator's selection drive
  // future behavior, so the model checker's dedup must see them.
  w.svarint(x_);
  w.uvarint(static_cast<std::uint64_t>(ts_));
  w.uvarint(static_cast<std::uint64_t>(round_));
  w.u8(static_cast<std::uint8_t>(phase_));
  w.svarint(select_value_);
  w.u8(decided_.has_value());
  if (decided_) w.svarint(*decided_);
  w.uvarint(static_cast<std::uint64_t>(decided_round_));
  w.u8(flooded_decide_ ? 1 : 0);
  w.uvarint(inbox_.size());
  for (const auto& [round, box] : inbox_) {
    w.uvarint(static_cast<std::uint64_t>(round));
    w.uvarint(box.estimates.size());
    for (const auto& [from, est] : box.estimates) {
      w.pid(from);
      w.svarint(est.first);
      w.uvarint(static_cast<std::uint64_t>(est.second));
    }
    w.u8(box.selection.has_value());
    if (box.selection) w.svarint(*box.selection);
    w.uvarint(static_cast<std::uint64_t>(box.acks));
    w.uvarint(static_cast<std::uint64_t>(box.replies));
  }
  return true;
}

bool CtConsensus::restore_state(ByteReader& r) {
  const auto x = r.svarint();
  const auto ts = r.uvarint();
  const auto round = r.uvarint();
  const auto phase = r.u8();
  const auto select_value = r.svarint();
  const auto has_decided = r.u8();
  if (!x || !ts || !round || !phase || *phase > 2 || !select_value ||
      !has_decided) {
    return false;
  }
  std::optional<Value> decided;
  if (*has_decided != 0) {
    const auto v = r.svarint();
    if (!v) return false;
    decided = *v;
  }
  const auto decided_round = r.uvarint();
  const auto flooded = r.u8();
  const auto rounds = r.uvarint();
  if (!decided_round || !flooded || !rounds) return false;

  std::map<int, RoundInbox> inbox;
  for (std::uint64_t i = 0; i < *rounds; ++i) {
    const auto key = r.uvarint();
    const auto estimates = r.uvarint();
    if (!key || !estimates) return false;
    RoundInbox& box = inbox[static_cast<int>(*key)];
    for (std::uint64_t j = 0; j < *estimates; ++j) {
      const auto from = r.pid();
      const auto value = r.svarint();
      const auto est_ts = r.uvarint();
      if (!from || !value || !est_ts) return false;
      box.estimates[*from] = {*value, static_cast<int>(*est_ts)};
    }
    const auto has_selection = r.u8();
    if (!has_selection) return false;
    if (*has_selection != 0) {
      const auto v = r.svarint();
      if (!v) return false;
      box.selection = *v;
    }
    const auto acks = r.uvarint();
    const auto replies = r.uvarint();
    if (!acks || !replies) return false;
    box.acks = static_cast<int>(*acks);
    box.replies = static_cast<int>(*replies);
  }

  x_ = *x;
  ts_ = static_cast<int>(*ts);
  round_ = static_cast<int>(*round);
  phase_ = static_cast<Phase>(*phase);
  select_value_ = *select_value;
  decided_ = decided;
  decided_round_ = static_cast<int>(*decided_round);
  flooded_decide_ = *flooded != 0;
  inbox_ = std::move(inbox);
  return true;
}

ConsensusFactory make_ct(Pid n) {
  return [n](Pid p, Value proposal) {
    return std::make_unique<CtConsensus>(p, proposal, n);
  };
}

}  // namespace nucon
