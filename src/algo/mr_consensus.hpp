// The Mostéfaoui-Raynal leader-based consensus family (paper §6.3,
// high-level description; original in [6]).
//
// Each asynchronous round has three phases:
//   1. broadcast (LEAD, k, x); wait for the LEAD of the process currently
//      output by Omega and adopt its estimate;
//   2. broadcast (REP, k, x); wait for reports from a "quorum" and prepare
//      a proposal: v if the quorum unanimously reported v, else "?";
//   3. broadcast (PROP, k, proposal); wait for proposals from a "quorum";
//      adopt any v != "?", decide if the quorum unanimously proposed v.
//
// The family is parameterized by what counts as a quorum:
//   kMajority  — any majority of processes; uniform consensus when a
//                majority is correct (the original algorithm, run with
//                plain Omega);
//   kFdQuorum  — the set currently output by a quorum failure detector
//                (the run must use a composed (Omega, Sigma-like) oracle).
//                With Sigma this solves *uniform* consensus in any
//                environment; with Sigma^nu it is the paper's §6.3
//                *counterexample*: contamination can make correct
//                processes disagree (see algo/naive_sigma_nu.hpp).
#pragma once

#include <map>
#include <optional>

#include "sim/automaton.hpp"

namespace nucon {

enum class MrQuorumMode { kMajority, kFdQuorum };

struct MrOptions {
  Pid n = 0;
  MrQuorumMode mode = MrQuorumMode::kMajority;
};

class MrConsensus final : public ConsensusAutomaton {
 public:
  MrConsensus(Pid self, Value proposal, MrOptions opts);

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] std::optional<Value> decision() const override {
    return decided_;
  }

  [[nodiscard]] std::optional<Bytes> snapshot() const override;

  [[nodiscard]] bool save_state(ByteWriter& w) const override;
  [[nodiscard]] bool restore_state(ByteReader& r) override;

  /// Current asynchronous round (1-based), for instrumentation.
  [[nodiscard]] int round() const { return round_; }

  /// Round in which this process decided (0 if undecided).
  [[nodiscard]] int decided_round() const { return decided_round_; }

 private:
  enum class Phase { kAwaitLead, kAwaitReports, kAwaitProposals };

  MrConsensus(const MrConsensus&) = default;
  [[nodiscard]] MrConsensus* clone_raw() const override {
    return new MrConsensus(*this);
  }

  /// Sentinel for the special proposal value "?".
  static constexpr Value kQuestion = INT64_MIN;

  /// Slots sized n on first touch (a fixed kMaxProcesses array would cost
  /// ~50KB per buffered round at the 1024-process cap).
  struct RoundMsgs {
    std::vector<std::optional<Value>> lead;
    std::vector<std::optional<Value>> rep;
    std::vector<std::optional<Value>> prop;
    void ensure(Pid n) {
      if (lead.empty()) {
        lead.resize(static_cast<std::size_t>(n));
        rep.resize(static_cast<std::size_t>(n));
        prop.resize(static_cast<std::size_t>(n));
      }
    }
  };

  void start_round(std::vector<Outgoing>& out);
  void advance(const FdValue& d, std::vector<Outgoing>& out);
  void on_message(Pid from, const Bytes& payload);

  /// True when every member of the FD quorum `q` has a stored message in
  /// `slot` for the current round.
  [[nodiscard]] bool quorum_complete(
      const std::vector<std::optional<Value>>& slot, const ProcessSet& q) const;

  /// Seals (tag, round, v) into scratch_ and returns one shareable buffer.
  [[nodiscard]] SharedBytes encode(std::uint8_t tag, int round, Value v);

  const Pid self_;
  const MrOptions opts_;

  Value x_;  // current estimate
  int round_ = 0;
  Phase phase_ = Phase::kAwaitLead;
  std::optional<Value> decided_;
  int decided_round_ = 0;
  std::map<int, RoundMsgs> inbox_;

  /// Encode scratch: reset before each message build, so steady-state
  /// encoding reuses one grown buffer instead of allocating per send.
  ByteWriter scratch_;
};

/// Factory for the classic majority-based algorithm (use with Omega; needs
/// a majority of correct processes for termination).
[[nodiscard]] ConsensusFactory make_mr_majority(Pid n);

/// Factory for the quorum-based variant (use with a composed
/// (Omega, Sigma) oracle for uniform consensus in any environment, or with
/// (Omega, Sigma^nu) to reproduce the §6.3 contamination counterexample).
[[nodiscard]] ConsensusFactory make_mr_fd_quorum(Pid n);

}  // namespace nucon
