#include "algo/ben_or.hpp"

#include <cassert>

namespace nucon {
namespace {

constexpr std::uint8_t kTagReport = 1;
constexpr std::uint8_t kTagProposal = 2;

}  // namespace

SharedBytes BenOr::encode(std::uint8_t tag, int round, Value v) {
  scratch_.reset();
  scratch_.u8(tag);
  scratch_.uvarint(static_cast<std::uint64_t>(round));
  scratch_.svarint(v);
  return SharedBytes(scratch_.buffer());
}

BenOr::BenOr(Pid self, Value proposal, Pid n, Pid t, std::uint64_t coin_seed)
    : self_(self),
      n_(n),
      t_(t),
      x_(proposal),
      coin_(coin_seed ^ (static_cast<std::uint64_t>(self) * 0x9e3779b97f4a7c15ULL)) {
  assert(n_ > 2 * t_);
  assert(proposal == 0 || proposal == 1);
}

void BenOr::step(const Incoming* in, const FdValue& d,
                 std::vector<Outgoing>& out) {
  (void)d;  // oracle-free
  if (in != nullptr) on_message(in->from, *in->payload);
  if (round_ == 0) start_round(out);
  advance(out);
}

void BenOr::start_round(std::vector<Outgoing>& out) {
  inbox_.erase(inbox_.begin(), inbox_.lower_bound(round_));
  ++round_;
  phase_ = Phase::kAwaitReports;
  broadcast(n_, encode(kTagReport, round_, x_), out);
}

void BenOr::on_message(Pid from, const Bytes& payload) {
  ByteReader r(payload);
  const auto tag = r.u8();
  const auto round = r.uvarint();
  const auto v = r.svarint();
  if (!tag || !round || !v || !r.done()) return;
  if (*v != 0 && *v != 1 && *v != kQuestion) return;
  RoundMsgs& msgs = inbox_[static_cast<int>(*round)];
  msgs.ensure(n_);
  if (*tag == kTagReport && *v != kQuestion) {
    msgs.report[from] = *v;
  } else if (*tag == kTagProposal) {
    msgs.proposal[from] = *v;
  }
}

void BenOr::advance(std::vector<Outgoing>& out) {
  while (true) {
    RoundMsgs& msgs = inbox_[round_];
    msgs.ensure(n_);

    if (phase_ == Phase::kAwaitReports) {
      int received = 0;
      int count[2] = {0, 0};
      for (Pid q = 0; q < n_; ++q) {
        if (msgs.report[q]) {
          ++received;
          ++count[*msgs.report[q]];
        }
      }
      if (received < n_ - t_) return;
      Value proposal = kQuestion;
      for (Value v : {Value{0}, Value{1}}) {
        if (2 * count[v] > n_) proposal = v;  // strict majority of all n
      }
      broadcast(n_, encode(kTagProposal, round_, proposal), out);
      phase_ = Phase::kAwaitProposals;
      continue;
    }

    // Phase::kAwaitProposals.
    int received = 0;
    int count[2] = {0, 0};
    for (Pid q = 0; q < n_; ++q) {
      if (msgs.proposal[q]) {
        ++received;
        if (*msgs.proposal[q] != kQuestion) ++count[*msgs.proposal[q]];
      }
    }
    if (received < n_ - t_) return;

    // At most one of count[0], count[1] is nonzero (two non-"?" proposals
    // would each need a strict majority of reports).
    const Value v = count[1] > 0 ? 1 : 0;
    if (count[v] >= t_ + 1) {
      if (!decided_) {
        decided_ = v;
        decided_round_ = round_;
      }
      x_ = v;
    } else if (count[v] >= 1) {
      x_ = v;
    } else {
      x_ = static_cast<Value>(coin_.below(2));
      ++coin_flips_;
    }
    start_round(out);
  }
}

std::optional<Bytes> BenOr::snapshot() const {
  ByteWriter w;
  w.svarint(x_);
  w.uvarint(static_cast<std::uint64_t>(round_));
  w.uvarint(static_cast<std::uint64_t>(decided_round_));
  w.u8(static_cast<std::uint8_t>(phase_));
  w.u8(decided_.has_value());
  if (decided_) w.svarint(*decided_);
  return w.take();
}

bool BenOr::save_state(ByteWriter& w) const {
  // Complete state (snapshot() covers the registers only): the inbox and
  // the coin tape position both drive future behavior.
  w.svarint(x_);
  w.uvarint(static_cast<std::uint64_t>(round_));
  w.uvarint(static_cast<std::uint64_t>(decided_round_));
  w.u8(static_cast<std::uint8_t>(phase_));
  w.u8(decided_.has_value());
  if (decided_) w.svarint(*decided_);
  coin_.save(w);
  w.svarint(coin_flips_);
  w.uvarint(inbox_.size());
  const auto slot = [&w, this](const std::vector<std::optional<Value>>& arr) {
    for (Pid q = 0; q < n_; ++q) {
      const bool has = !arr.empty() && arr[q].has_value();
      w.u8(has);
      if (has) w.svarint(*arr[q]);
    }
  };
  for (const auto& [round, msgs] : inbox_) {
    w.uvarint(static_cast<std::uint64_t>(round));
    slot(msgs.report);
    slot(msgs.proposal);
  }
  return true;
}

bool BenOr::restore_state(ByteReader& r) {
  const auto x = r.svarint();
  const auto round = r.uvarint();
  const auto decided_round = r.uvarint();
  const auto phase = r.u8();
  const auto has_decided = r.u8();
  if (!x || !round || !decided_round || !phase || *phase > 1 || !has_decided) {
    return false;
  }
  std::optional<Value> decided;
  if (*has_decided != 0) {
    const auto v = r.svarint();
    if (!v) return false;
    decided = *v;
  }
  Rng coin(0);
  if (!coin.restore(r)) return false;
  const auto coin_flips = r.svarint();
  const auto rounds = r.uvarint();
  if (!coin_flips || !rounds) return false;

  std::map<int, RoundMsgs> inbox;
  const auto slot = [&r, this](std::vector<std::optional<Value>>& arr) {
    for (Pid q = 0; q < n_; ++q) {
      const auto has = r.u8();
      if (!has) return false;
      if (*has != 0) {
        const auto v = r.svarint();
        if (!v) return false;
        arr[q] = *v;
      }
    }
    return true;
  };
  for (std::uint64_t i = 0; i < *rounds; ++i) {
    const auto key = r.uvarint();
    if (!key) return false;
    RoundMsgs& msgs = inbox[static_cast<int>(*key)];
    msgs.ensure(n_);
    if (!slot(msgs.report) || !slot(msgs.proposal)) return false;
  }

  x_ = *x;
  round_ = static_cast<int>(*round);
  decided_round_ = static_cast<int>(*decided_round);
  phase_ = static_cast<Phase>(*phase);
  decided_ = decided;
  coin_ = coin;
  coin_flips_ = *coin_flips;
  inbox_ = std::move(inbox);
  return true;
}

ConsensusFactory make_ben_or(Pid n, Pid t, std::uint64_t seed) {
  return [n, t, seed](Pid p, Value proposal) {
    return std::make_unique<BenOr>(p, proposal, n, t, seed);
  };
}

}  // namespace nucon
