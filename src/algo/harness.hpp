// One-call consensus execution harness.
//
// Wires a consensus factory, a failure pattern and an oracle into the
// scheduler, runs to decision (or the step cap), and summarizes the
// execution: verdict, rounds, message/byte counts. Tests, benches and the
// examples all go through this entry point.
#pragma once

#include "check/consensus_checker.hpp"
#include "fd/failure_detector.hpp"
#include "sim/scheduler.hpp"
#include "trace/metrics.hpp"

namespace nucon {

struct ConsensusRunStats {
  ConsensusVerdict verdict;
  std::vector<std::optional<Value>> decisions;

  /// Largest round reached by any process, and the largest round in which
  /// a correct process decided (0 when nobody decided).
  int max_round = 0;
  int decide_round = 0;

  std::size_t messages_sent = 0;
  std::size_t bytes_sent = 0;
  std::size_t steps = 0;
  Time end_time = 0;
  bool all_correct_decided = false;

  /// Run-interior counters/histograms from the scheduler plus the
  /// harness's own `consensus.*` entries; the sweep engine folds these
  /// into SweepAggregate::metrics in expansion order.
  trace::MetricsRegistry metrics;
};

[[nodiscard]] ConsensusRunStats run_consensus(const FailurePattern& fp,
                                              Oracle& oracle,
                                              const ConsensusFactory& make,
                                              const std::vector<Value>& proposals,
                                              const SchedulerOptions& opts);

}  // namespace nucon
