// The paper's §6.3 counterexample, as an executable scenario.
//
// Replacing majorities by Sigma^nu quorums in the Mostéfaoui-Raynal
// algorithm does NOT solve nonuniform consensus: a faulty process whose
// (legal!) Sigma^nu quorum misses the quorum a correct process decided
// with can retain a stale estimate and, while it is briefly everyone's
// Omega output, contaminate correct processes that have not yet decided —
// two correct processes then decide differently. A_nuc (core/anuc.hpp)
// adds the quorum-history / distrust / quorum-awareness machinery exactly
// to close this hole.
//
// `find_contamination` searches seeds of the adversarial setup (faulty
// processes with disjoint quorums, noisy warmup Omega) for a run of the
// naive algorithm in which two correct processes decide differently. The
// companion test asserts such a run exists for the naive algorithm and
// that A_nuc never produces one under the same adversarial family.
#pragma once

#include <cstdint>

#include "algo/harness.hpp"

namespace nucon {

struct ContaminationSetup {
  Pid n = 4;
  /// Pid of the (single) faulty process and the time it crashes.
  Pid faulty = 3;
  Time crash_at = 600;
  /// When Omega and the leader side stabilize (after the crash).
  Time omega_stabilize_at = 900;
  std::int64_t max_steps = 60'000;
};

struct ContaminationResult {
  bool found = false;
  std::uint64_t seed = 0;   // the violating seed, when found
  int runs_tried = 0;
  int uniform_violations = 0;     // faulty-vs-correct disagreements seen
  int nonuniform_violations = 0;  // correct-vs-correct disagreements seen
  ConsensusRunStats stats;        // stats of the violating run
};

/// Runs the naive Sigma^nu-quorum Mostéfaoui-Raynal algorithm under the
/// adversarial oracle family for up to `max_seeds` seeds, stopping at the
/// first violation of *nonuniform* agreement.
[[nodiscard]] ContaminationResult find_contamination(
    const ContaminationSetup& setup, int max_seeds,
    std::uint64_t base_seed = 1);

/// Same adversarial family, but running an arbitrary consensus factory
/// (e.g. A_nuc) for `seeds` seeds; returns the number of nonuniform
/// agreement violations observed (expected: 0 for a correct algorithm).
/// When `use_sigma_nu_plus` is true the quorum component is the (equally
/// adversarial) Sigma^nu+ oracle, which is what A_nuc consumes.
[[nodiscard]] int count_nonuniform_violations(const ContaminationSetup& setup,
                                              const ConsensusFactory& make,
                                              int seeds,
                                              bool use_sigma_nu_plus,
                                              std::uint64_t base_seed = 1);

}  // namespace nucon
