// One-call harness for register workloads: runs the ABD automata under a
// failure pattern and oracle, stamps operation times, collects records and
// the atomicity verdict.
#pragma once

#include "fd/failure_detector.hpp"
#include "reg/linearizability.hpp"
#include "sim/scheduler.hpp"

namespace nucon {

struct RegisterRunResult {
  std::vector<RegOpRecord> records;
  AtomicityVerdict verdict;
  bool all_correct_done = false;
  std::size_t steps = 0;
  std::size_t messages_sent = 0;
};

[[nodiscard]] RegisterRunResult run_register_workload(
    const FailurePattern& fp, Oracle& oracle,
    std::vector<std::vector<RegOp>> workloads, SchedulerOptions opts);

/// A simple workload: each process alternates `rounds` times between
/// writing a distinct value (client*1000 + i) and reading.
[[nodiscard]] std::vector<std::vector<RegOp>> alternating_workloads(
    Pid n, int rounds);

}  // namespace nucon
