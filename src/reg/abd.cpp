#include "reg/abd.hpp"

#include <cassert>
#include <limits>

namespace nucon {
namespace {

constexpr std::uint8_t kTagReadQuery = 1;
constexpr std::uint8_t kTagReadReply = 2;
constexpr std::uint8_t kTagWrite = 3;
constexpr std::uint8_t kTagWriteAck = 4;

void encode_tagged(ByteWriter& w, std::uint8_t tag, std::uint64_t opid) {
  w.u8(tag);
  w.uvarint(opid);
}

}  // namespace

AbdRegister::AbdRegister(Pid self, Pid n, std::vector<RegOp> workload)
    : self_(self), n_(n), workload_(std::move(workload)) {
  assert(n_ >= 1 && self_ >= 0 && self_ < n_);
}

void AbdRegister::step(const Incoming* in, const FdValue& d,
                       std::vector<Outgoing>& out) {
  ++own_steps_;
  if (in != nullptr) on_message(in->from, *in->payload, out);
  advance(d, out);
}

void AbdRegister::on_message(Pid from, const Bytes& payload,
                             std::vector<Outgoing>& out) {
  ByteReader r(payload);
  const auto tag = r.u8();
  const auto opid = r.uvarint();
  if (!tag || !opid) return;

  switch (*tag) {
    case kTagReadQuery: {
      if (!r.done()) return;
      scratch_.reset();
      encode_tagged(scratch_, kTagReadReply, *opid);
      scratch_.uvarint(static_cast<std::uint64_t>(tag_.ts));
      scratch_.pid(tag_.writer < 0 ? 0 : tag_.writer);
      scratch_.u8(tag_.writer < 0);
      scratch_.svarint(value_);
      out.push_back({from, SharedBytes(scratch_.buffer())});
      break;
    }
    case kTagReadReply: {
      const auto ts = r.uvarint();
      const auto writer = r.pid();
      const auto initial = r.u8();
      const auto value = r.svarint();
      if (!ts || !writer || !initial || !value || !r.done()) return;
      if (!active_ || pending_.phase != 1 || *opid != pending_.opid) return;
      pending_.replied.insert(from);
      const RegTag reply_tag{static_cast<std::int64_t>(*ts),
                             *initial ? Pid{-1} : *writer};
      if (pending_.best_tag < reply_tag) {
        pending_.best_tag = reply_tag;
        pending_.best_value = *value;
      }
      break;
    }
    case kTagWrite: {
      const auto ts = r.uvarint();
      const auto writer = r.pid();
      const auto value = r.svarint();
      if (!ts || !writer || !value || !r.done()) return;
      const RegTag incoming{static_cast<std::int64_t>(*ts), *writer};
      if (tag_ < incoming) {
        tag_ = incoming;
        value_ = *value;
      }
      scratch_.reset();
      encode_tagged(scratch_, kTagWriteAck, *opid);
      out.push_back({from, SharedBytes(scratch_.buffer())});
      break;
    }
    case kTagWriteAck:
      if (!r.done()) return;
      if (!active_ || pending_.phase != 2 || *opid != pending_.opid) return;
      pending_.replied.insert(from);
      break;
    default:
      break;
  }
}

void AbdRegister::begin_phase(std::vector<Outgoing>& out) {
  pending_.opid = ++opid_counter_;
  pending_.replied = ProcessSet{};
  scratch_.reset();
  ByteWriter& w = scratch_;
  if (pending_.phase == 1) {
    encode_tagged(w, kTagReadQuery, pending_.opid);
  } else {
    // Phase 2: writes install a fresh tag; reads write back what they saw.
    RegTag install = pending_.best_tag;
    Value install_value = pending_.best_value;
    if (pending_.op.kind == RegOp::Kind::kWrite) {
      install = RegTag{pending_.best_tag.ts + 1, self_};
      install_value = pending_.op.value;
    }
    pending_.best_tag = install;
    pending_.best_value = install_value;
    encode_tagged(w, kTagWrite, pending_.opid);
    w.uvarint(static_cast<std::uint64_t>(install.ts));
    w.pid(install.writer < 0 ? 0 : install.writer);
    w.svarint(install_value);
  }
  broadcast(n_, SharedBytes(w.buffer()), out);
}

void AbdRegister::advance(const FdValue& d, std::vector<Outgoing>& out) {
  if (!active_) {
    if (next_op_ >= workload_.size()) return;
    pending_ = Pending{};
    pending_.op = workload_[next_op_++];
    pending_.phase = 1;
    pending_.invoked_step = -1;  // stamped by the observer
    active_ = true;
    begin_phase(out);
    return;
  }

  if (!d.has_quorum()) return;
  const ProcessSet quorum = d.quorum();
  if (quorum.empty() || !quorum.is_subset_of(pending_.replied)) return;

  if (pending_.phase == 1) {
    pending_.phase = 2;
    begin_phase(out);
    return;
  }

  // Phase 2 complete: the operation responds.
  RegOpRecord record;
  record.client = self_;
  record.kind = pending_.op.kind;
  record.value = pending_.op.kind == RegOp::Kind::kWrite ? pending_.op.value
                                                         : pending_.best_value;
  record.tag = pending_.best_tag;
  record.invoked_step = pending_.invoked_step;
  record.responded_step = -1;  // stamped by the observer
  completed_.push_back(record);
  active_ = false;
}

void AbdRegister::stamp_times(Time now) {
  if (active_ && pending_.invoked_step < 0) pending_.invoked_step = now;
  for (auto it = completed_.rbegin();
       it != completed_.rend() && it->responded_step < 0; ++it) {
    it->responded_step = now;
  }
}

std::optional<RegOpRecord> AbdRegister::in_flight_write() const {
  if (!active_ || pending_.phase != 2 ||
      pending_.op.kind != RegOp::Kind::kWrite) {
    return std::nullopt;
  }
  RegOpRecord record;
  record.client = self_;
  record.kind = RegOp::Kind::kWrite;
  record.value = pending_.op.value;
  record.tag = pending_.best_tag;  // the tag being installed
  record.invoked_step = pending_.invoked_step;
  record.responded_step = std::numeric_limits<std::int64_t>::max();
  return record;
}

std::vector<RegOpRecord> collect_records(
    const std::vector<std::unique_ptr<Automaton>>& automata) {
  std::vector<RegOpRecord> out;
  for (const auto& a : automata) {
    if (const auto* reg = dynamic_cast<const AbdRegister*>(a.get())) {
      out.insert(out.end(), reg->completed().begin(), reg->completed().end());
      if (const auto pending = reg->in_flight_write()) {
        out.push_back(*pending);
      }
    }
  }
  return out;
}

AutomatonFactory make_abd(Pid n, std::vector<std::vector<RegOp>> workloads) {
  assert(workloads.size() == static_cast<std::size_t>(n));
  return [n, workloads](Pid p) {
    return std::make_unique<AbdRegister>(
        p, n, workloads[static_cast<std::size_t>(p)]);
  };
}

}  // namespace nucon
