#include "reg/harness.hpp"

#include "reg/abd.hpp"

namespace nucon {

RegisterRunResult run_register_workload(
    const FailurePattern& fp, Oracle& oracle,
    std::vector<std::vector<RegOp>> workloads, SchedulerOptions opts) {
  opts.on_step = [](const StepRecord& rec,
                    const std::vector<std::unique_ptr<Automaton>>& all) {
    if (auto* reg = dynamic_cast<AbdRegister*>(
            all[static_cast<std::size_t>(rec.p)].get())) {
      reg->stamp_times(rec.t);
    }
  };
  if (!opts.stop_when) {
    opts.stop_when = [&fp](const std::vector<std::unique_ptr<Automaton>>& all) {
      for (Pid p : fp.correct()) {
        const auto* reg = dynamic_cast<const AbdRegister*>(
            all[static_cast<std::size_t>(p)].get());
        if (reg == nullptr || !reg->workload_done()) return false;
      }
      return true;
    };
  }

  const SimResult sim =
      simulate(fp, oracle, make_abd(fp.n(), std::move(workloads)), opts);

  RegisterRunResult result;
  result.records = collect_records(sim.automata);
  result.verdict = check_register_atomicity(result.records);
  result.all_correct_done = sim.stopped_by_predicate;
  result.steps = sim.run.steps.size();
  result.messages_sent = sim.messages_sent;
  return result;
}

std::vector<std::vector<RegOp>> alternating_workloads(Pid n, int rounds) {
  std::vector<std::vector<RegOp>> out(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) {
    for (int i = 0; i < rounds; ++i) {
      out[static_cast<std::size_t>(p)].push_back(
          {RegOp::Kind::kWrite, p * 1000 + i});
      out[static_cast<std::size_t>(p)].push_back({RegOp::Kind::kRead, 0});
    }
  }
  return out;
}

}  // namespace nucon
