// Atomic register emulation from quorum failure detectors (ABD-style).
//
// Background for the paper: Delporte et al. proved (Omega, Sigma) weakest
// for UNIFORM consensus by going through registers — uniform consensus can
// implement registers, and Sigma is what registers need. The paper then
// notes that NONUNIFORM consensus "is not strong enough to implement
// registers", which is why its proofs need different techniques. This
// module makes that contrast executable:
//
//   * with Sigma quorums, the classic two-phase ABD read/write protocol
//     yields an atomic multi-writer multi-reader register in ANY
//     environment (every operation's quorum intersects every other's);
//   * with Sigma^nu quorums, a faulty-but-not-yet-crashed process's
//     operations may use quorums disjoint from everyone else's, and the
//     register is no longer atomic (reg/linearizability.hpp catches the
//     stale reads) — registers have no useful "nonuniform" weakening.
//
// Every process is both a replica (holding a (timestamp, writer, value)
// tag) and a client executing a scripted workload of writes and reads.
// Both operation phases wait on the quorum currently output by the
// detector, re-read each step, exactly like the MR-Sigma consensus phases.
#pragma once

#include <optional>
#include <vector>

#include "sim/automaton.hpp"
#include "sim/failure_pattern.hpp"

namespace nucon {

/// The (timestamp, writer) tag ordering writes; lexicographic.
struct RegTag {
  std::int64_t ts = 0;
  Pid writer = -1;

  friend bool operator==(const RegTag&, const RegTag&) = default;
  friend auto operator<=>(const RegTag& a, const RegTag& b) {
    if (a.ts != b.ts) return a.ts <=> b.ts;
    return a.writer <=> b.writer;
  }
};

struct RegOp {
  enum class Kind { kWrite, kRead };
  Kind kind = Kind::kRead;
  Value value = 0;  // for writes
};

/// One completed operation, for the atomicity checker. Times are the
/// step indices (paper time) of invocation and response.
struct RegOpRecord {
  Pid client = -1;
  RegOp::Kind kind = RegOp::Kind::kRead;
  Value value = 0;  // written or returned
  RegTag tag;       // the tag written / the tag the read returned
  std::int64_t invoked_step = 0;
  std::int64_t responded_step = 0;
};

class AbdRegister final : public Automaton {
 public:
  /// The client executes `workload` sequentially (one op completes before
  /// the next is invoked), then goes idle (still serving as a replica).
  AbdRegister(Pid self, Pid n, std::vector<RegOp> workload);

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] const std::vector<RegOpRecord>& completed() const {
    return completed_;
  }

  /// A write that reached its install phase but has not responded (e.g.
  /// its client crashed mid-operation). Its tag may be visible to readers,
  /// so the atomicity checker must treat it as a concurrent write that
  /// never responds (responded_step = max).
  [[nodiscard]] std::optional<RegOpRecord> in_flight_write() const;
  [[nodiscard]] bool workload_done() const {
    return next_op_ >= workload_.size() && !active_;
  }

  /// Replica state, for tests.
  [[nodiscard]] RegTag replica_tag() const { return tag_; }
  [[nodiscard]] Value replica_value() const { return value_; }

  /// Observational instrumentation (not algorithm state): the scheduler
  /// observer calls this after each of this process's steps with the
  /// global time, filling in invocation/response times of operations that
  /// started/completed during the step. See record_register_times().
  void stamp_times(Time now);

 private:
  struct Pending {
    RegOp op;
    std::uint64_t opid = 0;
    int phase = 1;  // 1 = query, 2 = update
    ProcessSet replied;
    RegTag best_tag;
    Value best_value = 0;
    std::int64_t invoked_step = 0;
  };

  void on_message(Pid from, const Bytes& payload, std::vector<Outgoing>& out);
  void advance(const FdValue& d, std::vector<Outgoing>& out);
  void begin_phase(std::vector<Outgoing>& out);

  const Pid self_;
  const Pid n_;

  // Replica side.
  RegTag tag_;
  Value value_ = 0;

  // Client side.
  std::vector<RegOp> workload_;
  std::size_t next_op_ = 0;
  bool active_ = false;
  Pending pending_;
  std::uint64_t opid_counter_ = 0;
  std::int64_t own_steps_ = 0;
  std::vector<RegOpRecord> completed_;

  /// Encode scratch: reset before each message build, so steady-state
  /// encoding reuses one grown buffer instead of allocating per send.
  ByteWriter scratch_;
};

/// Factory: process p runs workloads[p].
[[nodiscard]] AutomatonFactory make_abd(
    Pid n, std::vector<std::vector<RegOp>> workloads);

/// Gathers every process's completed operations (times stamped).
[[nodiscard]] std::vector<RegOpRecord> collect_records(
    const std::vector<std::unique_ptr<Automaton>>& automata);

}  // namespace nucon
