// Atomicity (linearizability) checking for the emulated register.
//
// ABD-style protocols carry their linearization witness in the (ts,
// writer) tags: ordering operations by tag — each read placed after the
// write that installed its tag — linearizes the history iff
//   (1) every read's tag was installed by a matching write (or is the
//       initial tag), and write tags are unique;
//   (2) tags respect real time: an operation that responds before another
//       is invoked never carries a larger tag than a later write, and a
//       later read never returns a smaller tag.
// The checker verifies exactly these conditions over the recorded
// operations, so a stale read (the Sigma^nu failure mode) is reported with
// the offending pair.
#pragma once

#include <string>
#include <vector>

#include "reg/abd.hpp"

namespace nucon {

struct AtomicityVerdict {
  bool ok = true;
  std::string detail;
};

[[nodiscard]] AtomicityVerdict check_register_atomicity(
    const std::vector<RegOpRecord>& records);

}  // namespace nucon
