#include "reg/linearizability.hpp"

#include <algorithm>

namespace nucon {
namespace {

std::string describe(const RegOpRecord& r) {
  std::string out = r.kind == RegOp::Kind::kWrite ? "write(" : "read->";
  out += std::to_string(r.value);
  if (r.kind == RegOp::Kind::kWrite) out += ")";
  out += " by " + std::to_string(r.client) + " tag(" +
         std::to_string(r.tag.ts) + "," + std::to_string(r.tag.writer) +
         ") [" + std::to_string(r.invoked_step) + "," +
         std::to_string(r.responded_step) + "]";
  return out;
}

constexpr RegTag kInitialTag{0, -1};

}  // namespace

AtomicityVerdict check_register_atomicity(
    const std::vector<RegOpRecord>& records) {
  AtomicityVerdict verdict;
  const auto fail = [&verdict](std::string why) {
    verdict.ok = false;
    if (verdict.detail.empty()) verdict.detail = std::move(why);
  };

  // (1a) write tags are unique.
  std::vector<const RegOpRecord*> writes;
  for (const RegOpRecord& r : records) {
    if (r.kind == RegOp::Kind::kWrite) writes.push_back(&r);
  }
  for (std::size_t i = 0; i < writes.size(); ++i) {
    for (std::size_t j = i + 1; j < writes.size(); ++j) {
      if (writes[i]->tag == writes[j]->tag) {
        fail("duplicate write tag: " + describe(*writes[i]) + " vs " +
             describe(*writes[j]));
      }
    }
  }

  // (1b) every read's tag matches a write with the same value, or the
  // initial tag with the initial value 0.
  for (const RegOpRecord& r : records) {
    if (r.kind != RegOp::Kind::kRead) continue;
    if (r.tag == kInitialTag) {
      if (r.value != 0) {
        fail("read of initial tag returned " + std::to_string(r.value));
      }
      continue;
    }
    const auto it = std::find_if(writes.begin(), writes.end(),
                                 [&r](const RegOpRecord* w) {
                                   return w->tag == r.tag;
                                 });
    if (it == writes.end()) {
      fail("read returned a tag never written: " + describe(r));
    } else if ((*it)->value != r.value) {
      fail("read value does not match its tag's write: " + describe(r) +
           " vs " + describe(**it));
    }
  }

  // (2) real-time order respects tags.
  for (const RegOpRecord& earlier : records) {
    for (const RegOpRecord& later : records) {
      if (earlier.responded_step >= later.invoked_step) continue;
      if (later.kind == RegOp::Kind::kWrite) {
        if (!(earlier.tag < later.tag)) {
          fail("completed " + describe(earlier) +
               " has a tag >= the later " + describe(later));
        }
      } else {
        if (later.tag < earlier.tag) {
          fail("stale read: " + describe(later) + " after " +
               describe(earlier));
        }
      }
    }
  }

  return verdict;
}

}  // namespace nucon
