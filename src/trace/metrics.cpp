#include "trace/metrics.hpp"

#include <sstream>

namespace nucon::trace {

std::int64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  const auto target = static_cast<std::int64_t>(q * static_cast<double>(count_));
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) {
      // Upper bound of bucket i, clamped into the observed range.
      const std::int64_t hi = i == 0 ? 1 : (std::int64_t{1} << (i + 1)) - 1;
      return hi < max_ ? (hi > min_ ? hi : min_) : max_;
    }
  }
  return max();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

std::string MetricsRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [name, v] : counters_) {
    os << name << " = " << v << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ": count=" << h.count() << " mean=" << h.mean()
       << " p50=" << h.quantile(0.5) << " p99=" << h.quantile(0.99)
       << " min=" << h.min() << " max=" << h.max() << "\n";
  }
  return os.str();
}

}  // namespace nucon::trace
