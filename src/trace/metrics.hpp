// Deterministic run metrics: named counters and log2-bucketed histograms.
//
// Every simulated run produces a small MetricsRegistry (populated by the
// scheduler and the consensus harness) describing *what happened inside
// the run*: steps, lambda steps, forced deliveries, delivery delays,
// payload sizes, decides. The sweep engine folds per-job registries into
// the SweepAggregate serially in expansion order, and everything here is
// integer arithmetic, so aggregated metrics are bit-identical for any
// thread count — the same guarantee the engine makes for its float
// accumulators, obtained more cheaply.
//
// Histograms bucket by floor(log2(value)): coarse, but merge is a plain
// bucket-wise sum and quantile estimates are good to a factor of two,
// which is all the experiment tables need.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace nucon::trace {

class Histogram {
 public:
  /// One bucket per power of two (bucket 0 holds values <= 0 and 1).
  static constexpr int kBuckets = 64;

  void add(std::int64_t v) {
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
    ++buckets_[bucket_of(v)];
  }

  void merge(const Histogram& other) {
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  }

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] std::int64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return count_ ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Upper bound of the bucket containing the q-quantile (0 <= q <= 1);
  /// exact to within a factor of two.
  [[nodiscard]] std::int64_t quantile(double q) const;

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  [[nodiscard]] static int bucket_of(std::int64_t v) {
    if (v <= 1) return 0;
    int b = 0;
    while (v > 1) {
      v >>= 1;
      ++b;
    }
    return b < kBuckets ? b : kBuckets - 1;
  }

  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::int64_t buckets_[kBuckets] = {};
};

/// Named counters and histograms for one run (or, after merging, for a
/// whole sweep). Lookups return stable references — hot loops resolve a
/// name once and increment through the reference.
class MetricsRegistry {
 public:
  [[nodiscard]] std::int64_t& counter(const std::string& name) {
    return counters_[name];
  }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  /// Value of a counter (0 if never touched).
  [[nodiscard]] std::int64_t counter_value(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Counters add, histograms merge; names union. Deterministic because
  /// everything is integer arithmetic over ordered maps.
  void merge(const MetricsRegistry& other);

  [[nodiscard]] const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Compact one-metric-per-line rendering for the bench binaries.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const MetricsRegistry&,
                         const MetricsRegistry&) = default;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace nucon::trace
