#include "trace/trace_recorder.hpp"

#include <cstdio>

namespace nucon::trace {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string set_json(const ProcessSet& s) {
  std::string out = "[";
  bool first = true;
  for (Pid p : s) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(p);
  }
  return out + "]";
}

/// FdValue as a JSON object with only the present components.
std::string fd_json(const FdValue& d) {
  std::string out = "{";
  const char* sep = "";
  if (d.has_leader()) {
    out += "\"leader\":" + std::to_string(d.leader());
    sep = ",";
  }
  if (d.has_quorum()) {
    out += sep;
    out += "\"quorum\":" + set_json(d.quorum());
    sep = ",";
  }
  if (d.has_suspects()) {
    out += sep;
    out += "\"suspects\":" + set_json(d.suspects());
  }
  return out + "}";
}

}  // namespace

void TraceRecorder::line(std::string s) {
  out_ += s;
  out_ += '\n';
  ++events_;
}

void TraceRecorder::begin_run(const FailurePattern& fp,
                              const std::string& artifact,
                              const std::string& expect) {
  std::string crashes = "[";
  bool first = true;
  for (Pid p : fp.faulty()) {
    if (!first) crashes += ",";
    first = false;
    crashes += "{\"p\":" + std::to_string(p) +
               ",\"at\":" + std::to_string(fp.crash_time(p)) + "}";
  }
  crashes += "]";
  line("{\"k\":\"meta\",\"v\":1,\"artifact\":\"" + json_escape(artifact) +
       "\",\"n\":" + std::to_string(fp.n()) + ",\"correct\":" +
       set_json(fp.correct()) + ",\"crashes\":" + crashes + ",\"expect\":\"" +
       json_escape(expect) + "\"}");
}

void TraceRecorder::on_step(const StepRecord& rec) {
  if (!opts_.steps) return;
  std::string s = "{\"k\":\"step\",\"t\":" + std::to_string(rec.t) +
                  ",\"p\":" + std::to_string(rec.p);
  if (rec.received) {
    s += ",\"recv\":{\"from\":" + std::to_string(rec.received->sender) +
         ",\"seq\":" + std::to_string(rec.received->seq) + "}";
  }
  line(s + "}");
}

void TraceRecorder::on_oracle_query(Pid p, Time t, const FdValue& d) {
  if (!opts_.oracle_queries) return;
  line("{\"k\":\"oracle\",\"t\":" + std::to_string(t) +
       ",\"p\":" + std::to_string(p) + ",\"fd\":" + fd_json(d) + "}");
}

void TraceRecorder::on_send(Pid from, const Message& m) {
  if (!opts_.sends) return;
  line("{\"k\":\"send\",\"t\":" + std::to_string(m.sent_at) +
       ",\"p\":" + std::to_string(from) + ",\"to\":" + std::to_string(m.to) +
       ",\"seq\":" + std::to_string(m.id.seq) +
       ",\"bytes\":" + std::to_string(m.payload.size()) + "}");
}

void TraceRecorder::on_deliver(Pid to, const Message& m, Time now,
                               bool forced) {
  if (!opts_.delivers) return;
  std::string s = "{\"k\":\"deliver\",\"t\":" + std::to_string(now) +
                  ",\"p\":" + std::to_string(to) +
                  ",\"from\":" + std::to_string(m.id.sender) +
                  ",\"seq\":" + std::to_string(m.id.seq) +
                  ",\"delay\":" + std::to_string(now - m.sent_at);
  if (forced) s += ",\"forced\":true";
  line(s + "}");
}

void TraceRecorder::on_state_transition(Pid p, Time t,
                                        std::uint64_t state_hash) {
  if (!opts_.state_hashes) return;
  line("{\"k\":\"state\",\"t\":" + std::to_string(t) +
       ",\"p\":" + std::to_string(p) +
       ",\"hash\":" + std::to_string(state_hash) + "}");
}

void TraceRecorder::on_decide(Pid p, Time t, Value value) {
  if (!opts_.decides) return;
  line("{\"k\":\"decide\",\"t\":" + std::to_string(t) +
       ",\"p\":" + std::to_string(p) + ",\"value\":" + std::to_string(value) +
       "}");
}

void TraceRecorder::annotate(const std::string& json_object) {
  line(json_object);
}

bool TraceRecorder::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(out_.data(), 1, out_.size(), f);
  const bool ok = written == out_.size() && std::fclose(f) == 0;
  if (!ok && written != out_.size()) std::fclose(f);
  return ok;
}

std::uint64_t state_hash_of(const Bytes& snapshot) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : snapshot) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace nucon::trace
