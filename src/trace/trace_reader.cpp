#include "trace/trace_reader.hpp"

#include <cstdlib>

namespace nucon::trace {
namespace {

/// Value of an integer field `"name":123`, or nullopt.
std::optional<std::int64_t> int_field(const std::string& line,
                                      const std::string& name) {
  const std::string key = "\"" + name + "\":";
  const auto pos = line.find(key);
  if (pos == std::string::npos) return std::nullopt;
  return std::strtoll(line.c_str() + pos + key.size(), nullptr, 10);
}

/// Value of a string field `"name":"..."` (no unescaping beyond \" — the
/// recorder only escapes quotes, backslashes and control characters, none
/// of which occur in artifact strings).
std::optional<std::string> string_field(const std::string& line,
                                        const std::string& name) {
  const std::string key = "\"" + name + "\":\"";
  const auto pos = line.find(key);
  if (pos == std::string::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = pos + key.size(); i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      out += line[++i];
    } else if (line[i] == '"') {
      return out;
    } else {
      out += line[i];
    }
  }
  return std::nullopt;  // unterminated
}

/// Members of an integer-array field `"name":[1,2,3]`.
std::optional<ProcessSet> set_field(const std::string& line,
                                    const std::string& name) {
  const std::string key = "\"" + name + "\":[";
  const auto pos = line.find(key);
  if (pos == std::string::npos) return std::nullopt;
  ProcessSet out;
  const char* s = line.c_str() + pos + key.size();
  while (*s != ']' && *s != '\0') {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s) return std::nullopt;
    out.insert(static_cast<Pid>(v));
    s = *end == ',' ? end + 1 : end;
  }
  return *s == ']' ? std::optional<ProcessSet>(out) : std::nullopt;
}

/// The raw JSON fragment of an object-valued field `"name":{...}`.
std::optional<std::string> object_field(const std::string& line,
                                        const std::string& name) {
  const std::string key = "\"" + name + "\":{";
  const auto pos = line.find(key);
  if (pos == std::string::npos) return std::nullopt;
  const auto end = line.find('}', pos);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(pos + key.size() - 1, end - (pos + key.size() - 1) + 1);
}

}  // namespace

std::optional<ParsedTrace> parse_trace(const std::string& jsonl,
                                       ParseError* error) {
  ParsedTrace trace;
  bool saw_meta = false;
  const auto fail = [error](std::size_t line_no, std::string message)
      -> std::optional<ParsedTrace> {
    if (error) *error = ParseError{std::move(message), line_no};
    return std::nullopt;
  };

  std::size_t begin = 0;
  std::size_t line_no = 0;
  while (begin < jsonl.size()) {
    auto end = jsonl.find('\n', begin);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(begin, end - begin);
    begin = end + 1;
    ++line_no;
    if (line.empty()) continue;

    const auto kind = string_field(line, "k");
    if (!kind) {
      return fail(line_no, "no \"k\" (event kind) field: " +
                               (line.size() > 60 ? line.substr(0, 60) + "..."
                                                 : line));
    }

    if (*kind == "meta") {
      // Version gate first: a future schema may change every field below,
      // so nothing else on the line is trusted before the check. A meta
      // line without "v" is a pre-versioning (PR 2) trace and reads as
      // version 1, which is exactly the schema it carries.
      const std::int64_t v =
          int_field(line, "v").value_or(kTraceSchemaVersion);
      if (v != kTraceSchemaVersion) {
        return fail(line_no, "unsupported trace schema version " +
                                 std::to_string(v) + " (this reader supports " +
                                 std::to_string(kTraceSchemaVersion) + ")");
      }
      trace.version = v;
      const auto n = int_field(line, "n");
      const auto correct = set_field(line, "correct");
      if (!n || !correct) {
        return fail(line_no, "meta line missing \"n\" or \"correct\"");
      }
      trace.n = static_cast<Pid>(*n);
      trace.correct = *correct;
      trace.artifact = string_field(line, "artifact").value_or("");
      trace.expect = string_field(line, "expect").value_or("");
      saw_meta = true;
      continue;
    }

    ParsedEvent ev;
    ev.kind = *kind;
    ev.raw = line;
    ev.t = int_field(line, "t").value_or(-1);
    ev.p = static_cast<Pid>(int_field(line, "p").value_or(-1));
    if (const auto to = int_field(line, "to")) ev.peer = static_cast<Pid>(*to);
    if (const auto from = int_field(line, "from")) {
      ev.peer = static_cast<Pid>(*from);
    }
    ev.seq = int_field(line, "seq").value_or(-1);
    ev.bytes = int_field(line, "bytes").value_or(-1);
    ev.delay = int_field(line, "delay").value_or(-1);
    ev.forced = line.find("\"forced\":true") != std::string::npos;
    if (const auto v = int_field(line, "value")) ev.value = *v;
    ev.state_hash =
        static_cast<std::uint64_t>(int_field(line, "hash").value_or(0));
    ev.fd = object_field(line, "fd").value_or("");
    trace.events.push_back(std::move(ev));
  }

  if (!saw_meta) return fail(0, "no meta line in document");
  return trace;
}

DivergenceReport find_divergence(const ParsedTrace& trace) {
  DivergenceReport report;
  // Earliest decide overall and earliest by a correct process, per value
  // seen so far; a conflict is the first decide differing from any of them.
  struct Seen {
    Time t;
    Pid p;
    std::int64_t value;
    std::string fd;  // last oracle sample of p at its decide step
  };
  std::vector<Seen> all, correct_only;

  // Oracle events precede the decide of the same step in recorded order,
  // so "last fd seen so far" at the decide event is exactly the FD value
  // the decider sampled at (or last before) its deciding step.
  std::vector<std::string> last_fd(
      trace.n > 0 ? static_cast<std::size_t>(trace.n) : 0);
  const auto fd_of = [&last_fd](Pid p) -> const std::string& {
    static const std::string empty;
    return p >= 0 && static_cast<std::size_t>(p) < last_fd.size()
               ? last_fd[static_cast<std::size_t>(p)]
               : empty;
  };

  const auto conflict = [](const std::vector<Seen>& seen,
                           const ParsedEvent& ev) -> const Seen* {
    for (const Seen& s : seen) {
      if (s.value != *ev.value) return &s;
    }
    return nullptr;
  };
  const auto fill = [&fd_of](Divergence& d, const ParsedEvent& ev,
                             const Seen& s) {
    d.found = true;
    d.t = ev.t;
    d.p = ev.p;
    d.value = *ev.value;
    d.earlier_t = s.t;
    d.earlier_p = s.p;
    d.earlier_value = s.value;
    d.fd = fd_of(ev.p);
    d.earlier_fd = s.fd;
  };

  for (const ParsedEvent& ev : trace.events) {
    if (ev.kind == "oracle" && ev.p >= 0 &&
        static_cast<std::size_t>(ev.p) < last_fd.size()) {
      last_fd[static_cast<std::size_t>(ev.p)] = ev.fd;
      continue;
    }
    if (ev.kind != "decide" || !ev.value) continue;
    if (!report.uniform.found) {
      if (const Seen* s = conflict(all, ev)) fill(report.uniform, ev, *s);
    }
    if (!report.nonuniform.found && trace.is_correct(ev.p)) {
      if (const Seen* s = conflict(correct_only, ev)) {
        fill(report.nonuniform, ev, *s);
      }
    }
    const Seen seen{ev.t, ev.p, *ev.value, fd_of(ev.p)};
    all.push_back(seen);
    if (trace.is_correct(ev.p)) correct_only.push_back(seen);
  }
  return report;
}

}  // namespace nucon::trace
