// Structured run traces: typed events streamed as deterministic JSONL.
//
// A TraceRecorder attached to SchedulerOptions::trace captures what
// happens inside one simulated run as a stream of typed events — step,
// send, deliver, oracle-query, state-transition, decide — one JSON object
// per line. The byte stream is a pure function of the run (no wall-clock
// timestamps, no pointers), so tracing the same SweepPoint from any
// thread, process or machine produces byte-identical files; that is what
// makes a trace attached to a failing sweep job trustworthy evidence.
//
// Cost discipline: every scheduler hook goes through NUCON_TRACE, which
// is a single null-pointer test when tracing is compiled in (the default)
// and nothing at all when the library is built with
// -DNUCON_DISABLE_TRACING (CMake option NUCON_DISABLE_TRACING). Runs
// without a recorder attached therefore pay near zero.
//
// The line format is parsed back by trace_reader.hpp and rendered by
// tools/trace_dump; the schema is documented in EXPERIMENTS.md.
#pragma once

#include <string>

#include "sim/message.hpp"
#include "sim/run.hpp"

namespace nucon::trace {

/// Hook guard: `NUCON_TRACE(opts.trace, on_send(p, m));` expands to a
/// null-check + call, or to nothing under NUCON_DISABLE_TRACING.
#ifdef NUCON_DISABLE_TRACING
#define NUCON_TRACE(recorder, call) ((void)0)
#else
#define NUCON_TRACE(recorder, call)     \
  do {                                  \
    if (recorder) (recorder)->call;     \
  } while (0)
#endif

struct RecorderOptions {
  /// Per-event-kind switches, all cheap; state hashes are the exception
  /// (they snapshot() the stepping automaton every step) and default off.
  bool steps = true;
  bool oracle_queries = true;
  bool sends = true;
  bool delivers = true;
  bool state_hashes = false;
  bool decides = true;
};

class TraceRecorder {
 public:
  using Options = RecorderOptions;

  explicit TraceRecorder(Options opts = Options()) : opts_(opts) {}

  [[nodiscard]] const Options& options() const { return opts_; }

  /// Emits the meta header line. `artifact` is a free-form label (the
  /// sweep engine passes the replay artifact string); `expect` names the
  /// agreement flavor the run is expected to satisfy.
  void begin_run(const FailurePattern& fp, const std::string& artifact,
                 const std::string& expect);

  // --- scheduler hook points -------------------------------------------
  void on_step(const StepRecord& rec);
  void on_oracle_query(Pid p, Time t, const FdValue& d);
  void on_send(Pid from, const Message& m);
  /// `forced` marks a fairness-backstop delivery (message overdue).
  void on_deliver(Pid to, const Message& m, Time now, bool forced);
  void on_state_transition(Pid p, Time t, std::uint64_t state_hash);
  void on_decide(Pid p, Time t, Value value);

  /// Appends one raw JSONL line (used for the trailing verdict record).
  /// `json_object` must be a complete JSON object without the newline.
  void annotate(const std::string& json_object);

  /// The JSONL document so far (one event per line, meta line first).
  [[nodiscard]] const std::string& jsonl() const { return out_; }
  [[nodiscard]] std::int64_t event_count() const { return events_; }

  /// Writes jsonl() to `path`; returns false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  void line(std::string s);

  Options opts_;
  std::string out_;
  std::int64_t events_ = 0;
};

/// FNV-1a over an automaton snapshot, the state fingerprint carried by
/// state-transition events.
[[nodiscard]] std::uint64_t state_hash_of(const Bytes& snapshot);

}  // namespace nucon::trace
