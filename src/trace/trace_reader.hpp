// Parsing and analysis of recorded JSONL traces.
//
// The inverse of trace_recorder.hpp, plus the one analysis the debugging
// workflow is built around: given the decide events of a run, find the
// first step at which agreement diverged — separately for the uniform
// flavor (any two deciders differ) and the nonuniform flavor (two
// *correct* deciders differ), because the gap between those two is the
// subject of the paper. tools/trace_dump renders what this header
// computes.
//
// The parser handles exactly the schema the recorder emits (documented in
// EXPERIMENTS.md); it is not a general JSON parser.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/failure_pattern.hpp"
#include "util/process_set.hpp"

namespace nucon::trace {

/// The JSONL schema version this reader understands. The recorder stamps
/// it into the meta record (`"v":1`); a trace carrying a different version
/// is rejected up front instead of being silently misparsed.
inline constexpr std::int64_t kTraceSchemaVersion = 1;

struct ParsedEvent {
  std::string kind;  // step, oracle, send, deliver, state, decide, verdict
  Time t = -1;
  Pid p = -1;
  /// send: destination; deliver/step-recv: sender. -1 when absent.
  Pid peer = -1;
  std::int64_t seq = -1;
  std::int64_t bytes = -1;
  std::int64_t delay = -1;
  bool forced = false;
  std::optional<std::int64_t> value;  // decide
  std::uint64_t state_hash = 0;       // state
  std::string fd;                     // oracle: raw JSON fragment
  std::string raw;                    // the whole line
};

struct ParsedTrace {
  // Meta header.
  std::int64_t version = kTraceSchemaVersion;
  std::string artifact;
  std::string expect;
  Pid n = 0;
  ProcessSet correct;

  std::vector<ParsedEvent> events;  // in recorded (= run) order

  [[nodiscard]] bool is_correct(Pid p) const { return correct.contains(p); }
};

/// Why a parse failed: a one-line message plus the 1-based line number of
/// the offending JSONL line (0 when the document as a whole is at fault,
/// e.g. no meta line anywhere). The CLI tools print exactly this.
struct ParseError {
  std::string message;
  std::size_t line = 0;

  [[nodiscard]] std::string to_string() const {
    return line == 0 ? message : "line " + std::to_string(line) + ": " + message;
  }
};

/// Parses a whole JSONL document. Returns nullopt if the meta line is
/// missing, the schema version is unknown, or any line is structurally
/// broken; when `error` is non-null it receives the diagnostic.
[[nodiscard]] std::optional<ParsedTrace> parse_trace(const std::string& jsonl,
                                                     ParseError* error = nullptr);

/// One agreement-divergence finding: the decide event that first
/// contradicted an earlier decide.
struct Divergence {
  bool found = false;
  Time t = 0;
  Pid p = -1;
  std::int64_t value = 0;
  // The earlier, contradicted decide.
  Time earlier_t = 0;
  Pid earlier_p = -1;
  std::int64_t earlier_value = 0;
  /// The FD values the two deciders last sampled at (or before) their
  /// decide steps — raw `fd` JSON fragments, empty when the trace carries
  /// no oracle events. The paper's indistinguishability arguments turn on
  /// exactly these: what each decider's detector told it when it decided.
  std::string fd;
  std::string earlier_fd;
};

struct DivergenceReport {
  /// First decide differing from any earlier decide.
  Divergence uniform;
  /// First decide by a correct process differing from an earlier decide by
  /// a correct process.
  Divergence nonuniform;
};

[[nodiscard]] DivergenceReport find_divergence(const ParsedTrace& trace);

}  // namespace nucon::trace
