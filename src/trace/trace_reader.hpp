// Parsing and analysis of recorded JSONL traces.
//
// The inverse of trace_recorder.hpp, plus the one analysis the debugging
// workflow is built around: given the decide events of a run, find the
// first step at which agreement diverged — separately for the uniform
// flavor (any two deciders differ) and the nonuniform flavor (two
// *correct* deciders differ), because the gap between those two is the
// subject of the paper. tools/trace_dump renders what this header
// computes.
//
// The parser handles exactly the schema the recorder emits (documented in
// EXPERIMENTS.md); it is not a general JSON parser.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/failure_pattern.hpp"
#include "util/process_set.hpp"

namespace nucon::trace {

struct ParsedEvent {
  std::string kind;  // step, oracle, send, deliver, state, decide, verdict
  Time t = -1;
  Pid p = -1;
  /// send: destination; deliver/step-recv: sender. -1 when absent.
  Pid peer = -1;
  std::int64_t seq = -1;
  std::int64_t bytes = -1;
  std::int64_t delay = -1;
  bool forced = false;
  std::optional<std::int64_t> value;  // decide
  std::uint64_t state_hash = 0;       // state
  std::string fd;                     // oracle: raw JSON fragment
  std::string raw;                    // the whole line
};

struct ParsedTrace {
  // Meta header.
  std::string artifact;
  std::string expect;
  Pid n = 0;
  ProcessSet correct;

  std::vector<ParsedEvent> events;  // in recorded (= run) order

  [[nodiscard]] bool is_correct(Pid p) const { return correct.contains(p); }
};

/// Parses a whole JSONL document. Returns nullopt if the meta line is
/// missing or any line is structurally broken.
[[nodiscard]] std::optional<ParsedTrace> parse_trace(const std::string& jsonl);

/// One agreement-divergence finding: the decide event that first
/// contradicted an earlier decide.
struct Divergence {
  bool found = false;
  Time t = 0;
  Pid p = -1;
  std::int64_t value = 0;
  // The earlier, contradicted decide.
  Time earlier_t = 0;
  Pid earlier_p = -1;
  std::int64_t earlier_value = 0;
};

struct DivergenceReport {
  /// First decide differing from any earlier decide.
  Divergence uniform;
  /// First decide by a correct process differing from an earlier decide by
  /// a correct process.
  Divergence nonuniform;
};

[[nodiscard]] DivergenceReport find_divergence(const ParsedTrace& trace);

}  // namespace nucon::trace
