#include "dag/schedule_sim.hpp"

#include <cassert>

#include "sim/message.hpp"

namespace nucon {

ChainSimOutcome simulate_chain(const SampleDag& dag,
                               std::span<const NodeRef> chain,
                               const ConsensusFactory& make,
                               const std::vector<Value>& proposals,
                               Pid observer) {
  const Pid n = dag.n();
  assert(proposals.size() == static_cast<std::size_t>(n));
  assert(observer >= 0 && observer < n);

  ChainSimOutcome outcome;

  std::vector<std::unique_ptr<ConsensusAutomaton>> automata;
  automata.reserve(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) {
    automata.push_back(make(p, proposals[static_cast<std::size_t>(p)]));
  }

  MessageBuffer buffer;
  std::vector<std::uint64_t> send_seq(static_cast<std::size_t>(n), 0);
  std::vector<Outgoing> sends;

  for (std::size_t i = 0; i < chain.size(); ++i) {
    const NodeRef node = chain[i];
    const Pid p = node.q;
    const FdValue& d = dag.node(node).d;
    outcome.participants.insert(p);

    // Lemma 4.10 delivery rule: the oldest pending message, else lambda.
    std::optional<Message> msg;
    if (buffer.pending_for(p) > 0) msg = buffer.take(p, 0);

    sends.clear();
    if (msg) {
      const Incoming in{msg->id.sender, &msg->payload.get(), &msg->payload};
      automata[static_cast<std::size_t>(p)]->step(&in, d, sends);
    } else {
      automata[static_cast<std::size_t>(p)]->step(nullptr, d, sends);
    }

    for (Outgoing& o : sends) {
      Message m;
      m.id = MsgId{p, ++send_seq[static_cast<std::size_t>(p)]};
      m.to = o.to;
      m.sent_at = static_cast<Time>(i);
      m.payload = std::move(o.payload);
      buffer.add(std::move(m));
    }

    if (!outcome.observer_decided) {
      if (const auto decision =
              automata[static_cast<std::size_t>(observer)]->decision()) {
        outcome.observer_decided = true;
        outcome.decision = decision;
        outcome.steps_to_decision = i + 1;
        outcome.prefix_participants = outcome.participants;
      }
    }
  }

  return outcome;
}

}  // namespace nucon
