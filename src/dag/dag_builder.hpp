// The DAG-building algorithm A_DAG (paper Fig. 1).
//
// Each step: receive a (possibly empty) gossiped DAG, merge it, query the
// local failure-detector module, append the sample as a new node whose
// predecessors are everything currently known, and gossip the whole DAG to
// every process. DagCore is the reusable body of the loop; the Fig. 2 and
// Fig. 3 transformation algorithms embed it verbatim and add their output
// computation after line 12, exactly as the paper's listings do.
#pragma once

#include <span>

#include "dag/sample_dag.hpp"
#include "sim/automaton.hpp"

namespace nucon {

class DagCore {
 public:
  DagCore(Pid self, Pid n) : self_(self), dag_(n) {}

  /// Lines 6-11 of Fig. 1: merge the received DAG (if the message carried
  /// one), record the sample d as node (self, d, k), with edges from every
  /// known node. Returns the new node (the variable v_p of the listing).
  NodeRef on_step(const Incoming* in, const FdValue& d);

  /// Line 12: the gossip payload (the whole serialized DAG).
  [[nodiscard]] Bytes gossip() const { return dag_.serialize(); }

  [[nodiscard]] const SampleDag& dag() const { return dag_; }
  [[nodiscard]] std::uint32_t k() const { return k_; }
  [[nodiscard]] Pid self() const { return self_; }

  /// Full-state save/restore for the embedding automata's model-checker
  /// support: the DAG (already serializable as the gossip payload) plus
  /// the local sample counter.
  void save(ByteWriter& w) const {
    w.bytes(dag_.serialize());
    w.uvarint(k_);
  }
  [[nodiscard]] bool restore(ByteReader& r) {
    const auto raw = r.bytes();
    if (!raw) return false;
    auto dag = SampleDag::deserialize(*raw);
    if (!dag || dag->n() != dag_.n()) return false;
    const auto k = r.uvarint();
    if (!k) return false;
    dag_ = std::move(*dag);
    k_ = static_cast<std::uint32_t>(*k);
    return true;
  }

 private:
  Pid self_;
  SampleDag dag_;
  std::uint32_t k_ = 0;
};

/// Sends the gossip payload to every process except the sender (the
/// paper's "send to every process" includes the sender, but self-delivery
/// of a DAG already merged is a no-op, and skipping it halves queue
/// pressure in two-process systems). The DAG — the heaviest payload in the
/// library — is serialized once and shared n-1 ways.
void gossip_to_others(Pid self, Pid n, SharedBytes payload,
                      std::vector<Outgoing>& out);

/// Gossip cadence for DAG-building automata. The paper's listing gossips
/// in every step, but a step of our model consumes at most one message
/// while such a broadcast produces n-1 of them: per-step gossip makes
/// queues grow without bound and the delivered DAGs ever staler. Gossiping
/// every ~2n steps keeps queues draining while still gossiping infinitely
/// often, which is all the limit lemmas (4.5-4.8) rely on. 0 = default
/// (2n); 1 reproduces the listing verbatim.
[[nodiscard]] constexpr int effective_gossip_every(int requested, Pid n) {
  return requested > 0 ? requested : 2 * n;
}

/// Fig. 1 as a standalone automaton (used by the E1 experiment to measure
/// DAG growth and gossip cost, and by the model tests for Lemmas 4.5-4.8).
class AdagAutomaton final : public Automaton {
 public:
  AdagAutomaton(Pid self, Pid n, int gossip_every = 0)
      : core_(self, n), n_(n),
        gossip_every_(effective_gossip_every(gossip_every, n)) {}

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override {
    core_.on_step(in, d);
    if (core_.k() % static_cast<std::uint32_t>(gossip_every_) == 0) {
      gossip_to_others(core_.self(), n_, core_.gossip(), out);
    }
  }

  [[nodiscard]] const DagCore& core() const { return core_; }

 private:
  DagCore core_;
  Pid n_;
  int gossip_every_;
};

[[nodiscard]] AutomatonFactory make_adag(Pid n, int gossip_every = 0);

/// participants(g) of a path (or any node sequence): the set of creators.
[[nodiscard]] ProcessSet participants_of(std::span<const NodeRef> path);

/// trusted(g) (paper Fig. 3, line 19): the union of the quorum components
/// of the sampled values along the path.
[[nodiscard]] ProcessSet trusted_of(const SampleDag& dag,
                                    std::span<const NodeRef> path);

}  // namespace nucon
