// DAGs of failure-detector samples (paper §4.1).
//
// Nodes are samples (q, d, k): process q saw value d at its k-th query.
// When a process creates a new sample it adds edges from *every* node it
// currently knows to the new node, and processes gossip whole DAGs.
//
// Two structural facts make a compact representation exact:
//   1. every process's view is prefix-closed per creator (q's samples
//      arrive in order), so a view is just a frontier vector
//      (max k known per creator);
//   2. a new node's predecessor set is the creator's entire current view,
//      so it is the frontier at creation time — a vector clock.
// Hence edge (q,k) -> (r,j) exists iff k <= vc(r,j)[q], and reachability
// coincides with the edge relation (views are full subgraphs), so the
// paper's "descendants of u" is a single vector-clock comparison.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.hpp"
#include "util/fd_value.hpp"

namespace nucon {

/// Identifies the k-th sample of process q (k is 1-based).
struct NodeRef {
  Pid q = -1;
  std::uint32_t k = 0;

  friend bool operator==(const NodeRef&, const NodeRef&) = default;
};

class SampleDag {
 public:
  struct Node {
    FdValue d;
    /// Creation view: vc[r] = number of r's samples known to the creator
    /// when this node was created (the node's predecessor set).
    std::vector<std::uint32_t> vc;
  };

  explicit SampleDag(Pid n);

  [[nodiscard]] Pid n() const { return n_; }

  /// Number of q's samples present.
  [[nodiscard]] std::uint32_t count_of(Pid q) const {
    return static_cast<std::uint32_t>(chains_[static_cast<std::size_t>(q)].size());
  }

  [[nodiscard]] bool contains(NodeRef v) const {
    return v.q >= 0 && v.q < n_ && v.k >= 1 && v.k <= count_of(v.q);
  }

  [[nodiscard]] const Node& node(NodeRef v) const;

  /// Current frontier (the whole node set, by prefix-closure).
  [[nodiscard]] std::vector<std::uint32_t> frontier() const;

  /// Records p's next sample with the current view as its predecessor set.
  /// Returns the new node.
  NodeRef take_sample(Pid p, const FdValue& d);

  /// Edge (and reachability) test: u -> v.
  [[nodiscard]] bool has_edge(NodeRef u, NodeRef v) const {
    return contains(u) && contains(v) &&
           node(v).vc[static_cast<std::size_t>(u.q)] >= u.k;
  }

  /// v in G|u: v is u itself or a descendant of u.
  [[nodiscard]] bool in_cone(NodeRef u, NodeRef v) const {
    return v == u || has_edge(u, v);
  }

  /// Union with another DAG (gossip receipt). Node data for a given
  /// (q, k) is immutable and identical everywhere, so merging appends the
  /// chain suffixes this DAG is missing.
  void merge_from(const SampleDag& other);

  [[nodiscard]] std::size_t total_nodes() const;

  /// Total number of edges, i.e. the sum of predecessor-set sizes.
  [[nodiscard]] std::uint64_t total_edges() const;

  /// Full-DAG gossip payload, as the paper's algorithm sends.
  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<SampleDag> deserialize(const Bytes& data);

  /// All nodes of G|u in a topological order (vc-sums strictly increase
  /// along edges, so sorting by them linearizes the DAG), starting with u.
  [[nodiscard]] std::vector<NodeRef> cone_topo(NodeRef u) const;

  /// Greedy maximal chain (path) through G|u starting at u: walks
  /// cone_topo(u) and keeps each node that has an edge from the previous
  /// kept node. Every consecutive pair is an edge of the DAG, so the
  /// result is a genuine path in the paper's sense. Biased toward one
  /// process's samples (own samples trail the gossip frontier); prefer
  /// fair_chain when the path must cover many processes.
  [[nodiscard]] std::vector<NodeRef> greedy_chain(NodeRef u) const;

  /// The Lemma 4.8-style path through G|u: starting at u, repeatedly
  /// extend with the earliest not-yet-used sample, rotating round-robin
  /// over creators, so every process that keeps sampling appears
  /// infinitely often in the limit. Consecutive nodes are DAG edges.
  ///
  /// Every cross-process switch necessarily skips the other process's
  /// samples that are concurrent with the current tip (about one gossip
  /// round-trip's worth), so after each switch the chain keeps up to
  /// `batch` consecutive samples of the same creator (own successors are
  /// always edges) before rotating again — longer batches give longer
  /// paths at the cost of coarser interleaving.
  [[nodiscard]] std::vector<NodeRef> fair_chain(NodeRef u, int batch = 8) const;

 private:
  Pid n_;
  /// chains_[q][k-1] = q's k-th sample.
  std::vector<std::vector<Node>> chains_;
};

}  // namespace nucon
