// Simulating schedules of an algorithm A from a DAG of samples
// (paper §4.2, Lemmas 4.9-4.10).
//
// A path g = (p1,d1,k1), (p2,d2,k2), ... through a DAG of samples of D
// determines schedules of A-using-D: process p1 steps first seeing d1,
// then p2 seeing d2, and so on; the free choice is which pending message
// each step receives. Following the constructive proof of Lemma 4.10 we
// always deliver the *oldest* pending message (or lambda when none is
// pending), which makes the simulated run admissible in the limit and the
// simulation deterministic.
#pragma once

#include <span>

#include "dag/sample_dag.hpp"
#include "sim/automaton.hpp"

namespace nucon {

struct ChainSimOutcome {
  /// Whether the observer decided within the simulated schedule.
  bool observer_decided = false;
  std::optional<Value> decision;
  /// Length of the shortest deciding prefix (only when observer_decided).
  std::size_t steps_to_decision = 0;
  /// participants() of that deciding prefix.
  ProcessSet prefix_participants;
  /// participants of the full simulated schedule.
  ProcessSet participants;
};

/// Simulates algorithm `make` along `chain` (a path in `dag`) from the
/// initial configuration in which process p proposes proposals[p], and
/// reports whether/when `observer` decides.
[[nodiscard]] ChainSimOutcome simulate_chain(const SampleDag& dag,
                                             std::span<const NodeRef> chain,
                                             const ConsensusFactory& make,
                                             const std::vector<Value>& proposals,
                                             Pid observer);

}  // namespace nucon
