#include "dag/dag_builder.hpp"

namespace nucon {

NodeRef DagCore::on_step(const Incoming* in, const FdValue& d) {
  if (in != nullptr) {
    // Malformed or foreign-sized gossip is dropped, matching the listing's
    // assumption that messages are DAGs.
    if (auto received = SampleDag::deserialize(*in->payload);
        received && received->n() == dag_.n()) {
      dag_.merge_from(*received);
    }
  }
  ++k_;
  return dag_.take_sample(self_, d);
}

void gossip_to_others(Pid self, Pid n, SharedBytes payload,
                      std::vector<Outgoing>& out) {
  SharedBytes::counters().broadcasts += 1;
  for (Pid q = 0; q < n; ++q) {
    if (q != self) out.push_back({q, payload});
  }
}

AutomatonFactory make_adag(Pid n, int gossip_every) {
  return [n, gossip_every](Pid p) {
    return std::make_unique<AdagAutomaton>(p, n, gossip_every);
  };
}

ProcessSet participants_of(std::span<const NodeRef> path) {
  ProcessSet out;
  for (const NodeRef& v : path) out.insert(v.q);
  return out;
}

ProcessSet trusted_of(const SampleDag& dag, std::span<const NodeRef> path) {
  ProcessSet out;
  for (const NodeRef& v : path) {
    const FdValue& d = dag.node(v).d;
    if (d.has_quorum()) out |= d.quorum();
  }
  return out;
}

}  // namespace nucon
