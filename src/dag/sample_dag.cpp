#include "dag/sample_dag.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace nucon {

SampleDag::SampleDag(Pid n) : n_(n), chains_(static_cast<std::size_t>(n)) {
  assert(n >= 1 && n <= kMaxProcesses);
}

const SampleDag::Node& SampleDag::node(NodeRef v) const {
  assert(contains(v));
  return chains_[static_cast<std::size_t>(v.q)][v.k - 1];
}

std::vector<std::uint32_t> SampleDag::frontier() const {
  std::vector<std::uint32_t> f(static_cast<std::size_t>(n_));
  for (Pid q = 0; q < n_; ++q) f[static_cast<std::size_t>(q)] = count_of(q);
  return f;
}

NodeRef SampleDag::take_sample(Pid p, const FdValue& d) {
  assert(p >= 0 && p < n_);
  Node node;
  node.d = d;
  node.vc = frontier();
  chains_[static_cast<std::size_t>(p)].push_back(std::move(node));
  return NodeRef{p, count_of(p)};
}

void SampleDag::merge_from(const SampleDag& other) {
  assert(other.n_ == n_);
  for (Pid q = 0; q < n_; ++q) {
    auto& mine = chains_[static_cast<std::size_t>(q)];
    const auto& theirs = other.chains_[static_cast<std::size_t>(q)];
    for (std::size_t k = mine.size(); k < theirs.size(); ++k) {
      mine.push_back(theirs[k]);
    }
  }
}

std::size_t SampleDag::total_nodes() const {
  std::size_t total = 0;
  for (const auto& chain : chains_) total += chain.size();
  return total;
}

std::uint64_t SampleDag::total_edges() const {
  std::uint64_t total = 0;
  for (const auto& chain : chains_) {
    for (const Node& node : chain) {
      total += std::accumulate(node.vc.begin(), node.vc.end(), std::uint64_t{0});
    }
  }
  return total;
}

Bytes SampleDag::serialize() const {
  ByteWriter w;
  w.pid(n_);
  for (const auto& chain : chains_) {
    w.uvarint(chain.size());
    for (const Node& node : chain) {
      node.d.encode(w, n_);
      for (std::uint32_t c : node.vc) w.uvarint(c);
    }
  }
  return w.take();
}

std::optional<SampleDag> SampleDag::deserialize(const Bytes& data) {
  ByteReader r(data);
  const auto n = r.pid();
  if (!n || *n < 1) return std::nullopt;
  SampleDag dag(*n);
  for (Pid q = 0; q < *n; ++q) {
    const auto len = r.uvarint();
    // Each node consumes at least one byte per process plus the value, so
    // any length claim beyond the remaining input is malformed; rejecting
    // it here keeps attacker-controlled lengths from driving allocation.
    if (!len || *len > r.remaining()) return std::nullopt;
    auto& chain = dag.chains_[static_cast<std::size_t>(q)];
    chain.reserve(static_cast<std::size_t>(*len));
    for (std::uint64_t k = 0; k < *len; ++k) {
      Node node;
      const auto d = FdValue::decode(r, *n);
      if (!d) return std::nullopt;
      node.d = *d;
      node.vc.resize(static_cast<std::size_t>(*n));
      for (Pid c = 0; c < *n; ++c) {
        const auto v = r.uvarint();
        if (!v) return std::nullopt;
        node.vc[static_cast<std::size_t>(c)] = static_cast<std::uint32_t>(*v);
      }
      chain.push_back(std::move(node));
    }
  }
  if (!r.done()) return std::nullopt;
  return dag;
}

std::vector<NodeRef> SampleDag::cone_topo(NodeRef u) const {
  std::vector<NodeRef> out;
  if (!contains(u)) return out;
  for (Pid q = 0; q < n_; ++q) {
    for (std::uint32_t k = 1; k <= count_of(q); ++k) {
      const NodeRef v{q, k};
      if (in_cone(u, v)) out.push_back(v);
    }
  }
  const auto vc_sum = [this](NodeRef v) {
    const Node& nd = node(v);
    return std::accumulate(nd.vc.begin(), nd.vc.end(), std::uint64_t{0});
  };
  std::stable_sort(out.begin(), out.end(), [&](NodeRef a, NodeRef b) {
    const auto sa = vc_sum(a);
    const auto sb = vc_sum(b);
    if (sa != sb) return sa < sb;
    if (a.q != b.q) return a.q < b.q;
    return a.k < b.k;
  });
  // u has the minimal vc-sum within its own cone, but other nodes may tie;
  // rotate u to the front.
  const auto it = std::find(out.begin(), out.end(), u);
  assert(it != out.end());
  std::rotate(out.begin(), it, it + 1);
  return out;
}

std::vector<NodeRef> SampleDag::greedy_chain(NodeRef u) const {
  std::vector<NodeRef> chain;
  for (NodeRef v : cone_topo(u)) {
    if (chain.empty() || has_edge(chain.back(), v)) chain.push_back(v);
  }
  return chain;
}

std::vector<NodeRef> SampleDag::fair_chain(NodeRef u, int batch) const {
  std::vector<NodeRef> chain;
  if (!contains(u)) return chain;
  assert(batch >= 1);
  chain.push_back(u);

  // used[q] = largest index of q's samples consumed (or permanently
  // skipped: a sample that does not see the current chain tip will not see
  // any later tip either, since tips only move forward).
  std::vector<std::uint32_t> used(static_cast<std::size_t>(n_), 0);
  used[static_cast<std::size_t>(u.q)] = u.k;
  NodeRef last = u;

  const auto extend_own_batch = [&] {
    // (q, k) -> (q, k+1) is always an edge; take up to batch-1 successors.
    for (int i = 1; i < batch && last.k + 1 <= count_of(last.q); ++i) {
      last = NodeRef{last.q, last.k + 1};
      used[static_cast<std::size_t>(last.q)] = last.k;
      chain.push_back(last);
    }
  };
  extend_own_batch();

  while (true) {
    bool extended = false;
    for (Pid offset = 0; offset < n_; ++offset) {
      const Pid q = static_cast<Pid>((last.q + 1 + offset) % n_);
      std::uint32_t k = used[static_cast<std::size_t>(q)] + 1;
      // Advance to q's first sample whose creation view includes `last`
      // (vc[last.q] is nondecreasing in k, so this scan never backtracks).
      while (k <= count_of(q) &&
             node({q, k}).vc[static_cast<std::size_t>(last.q)] < last.k) {
        ++k;
      }
      if (k > count_of(q)) continue;
      used[static_cast<std::size_t>(q)] = k;
      last = NodeRef{q, k};
      chain.push_back(last);
      extend_own_batch();
      extended = true;
      break;
    }
    if (!extended) return chain;
  }
}

}  // namespace nucon
