// T_{D -> Sigma^nu} (paper Fig. 2, Theorem 5.4): the necessity direction.
//
// Given ANY failure detector D that can be used to solve binary nonuniform
// consensus via some algorithm A, each process runs A_DAG over samples of
// D and, in its computation component, simulates schedules of A from the
// cone G_p|u_p of fresh samples against the two initial configurations I_0
// (all propose 0) and I_1 (all propose 1). When it finds simulated
// schedules S_0 and S_1 in which it decides in both, it outputs
// participants(S_0) u participants(S_1) as its next Sigma^nu quorum and
// refreshes the barrier u_p.
//
// Why this yields Sigma^nu: if two correct processes ever emitted disjoint
// quorums, the corresponding deciding schedules would be mergeable runs of
// A deciding 0 and 1 respectively (Lemma 2.2), contradicting nonuniform
// agreement (Lemma 5.3); the freshness barrier gives completeness
// (Lemma 5.2). When A solves *uniform* consensus the same emitted history
// is in Sigma (Theorem 5.8).
//
// Schedule search: Sch(G|u, I) is exponential; following the constructive
// proofs (Lemmas 4.8/4.10) we simulate A along a greedy maximal chain of
// the cone with oldest-first delivery and take the shortest deciding
// prefix. This finds a deciding schedule whenever the cone contains
// enough fresh samples of enough processes, which is what the liveness
// argument (Lemma 5.1) relies on.
#pragma once

#include "core/emulated.hpp"
#include "dag/dag_builder.hpp"
#include "dag/schedule_sim.hpp"

namespace nucon {

struct ExtractOptions {
  /// The consensus algorithm A that uses D (as a factory), and the system
  /// size it was built for.
  ConsensusFactory algorithm;
  Pid n = 0;
  /// Run the (expensive) simulation search only every `check_every` steps;
  /// 1 matches the listing.
  int check_every = 1;
  /// Cap on the chain length fed to each simulation (0 = unlimited).
  std::size_t max_chain = 0;
  /// DAG gossip cadence (see effective_gossip_every; 0 = default 2n).
  int gossip_every = 0;
};

class ExtractSigmaNu final : public Automaton, public EmulatedFd {
 public:
  ExtractSigmaNu(Pid self, ExtractOptions opts);

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] FdValue emulated_output() const override {
    return FdValue::of_quorum(output_);
  }

  [[nodiscard]] const DagCore& core() const { return core_; }
  [[nodiscard]] std::int64_t outputs_produced() const { return outputs_; }
  [[nodiscard]] std::int64_t simulations_run() const { return simulations_; }

 private:
  bool try_emit(NodeRef fresh);

  DagCore core_;
  ExtractOptions opts_;
  ProcessSet output_;  // Sigma^nu-output_p, initially Pi (line 2)
  NodeRef u_;          // freshness barrier u_p
  std::int64_t outputs_ = 0;
  std::int64_t simulations_ = 0;
  int steps_since_check_ = 0;
};

[[nodiscard]] AutomatonFactory make_extract_sigma_nu(ExtractOptions opts);

}  // namespace nucon
