// A_nuc: nonuniform consensus from (Omega, Sigma^nu+) in any environment
// (paper Figs. 4 and 5, Theorem 6.27).
//
// The skeleton is the Mostéfaoui-Raynal three-phase round structure
// (LEAD / REP / PROP), with two additions that defeat contamination:
//
//  * Distrust. Every process accumulates a quorum history H_p (its own
//    quorums via get_quorum, everyone else's via SAW messages and the
//    histories piggybacked on LEAD and PROP messages). A leader estimate
//    is adopted only from a process p does not distrust, and proposals are
//    only consumed from a quorum none of whose members is distrusted
//    (Fig. 5 lines 51-53; core/quorum_history.hpp).
//
//  * Quorum awareness. Before p may decide using quorum Q, every member
//    of Q must have acknowledged (SAW/ACK handshake, lines 31-42) having
//    inserted Q into its copy of H[q] in an earlier round — so any process
//    that later collects proposals from a quorum intersecting Q learns
//    that p saw Q, and will distrust whoever presents a quorum disjoint
//    from it (Lemmas 6.17, 6.24, 6.25).
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "core/quorum_history.hpp"
#include "sim/automaton.hpp"

namespace nucon {

/// Ablation switches for A_nuc. Both default on; the ablation experiment
/// (bench_ablation, E11) disables each in turn and shows nonuniform
/// agreement break under the adversarial oracle family — i.e. each of the
/// paper's two additions over Mostéfaoui-Raynal is individually necessary.
struct AnucOptions {
  /// The distrust test before adopting a leader estimate and before
  /// consuming a quorum's proposals (Fig. 4 lines 18 and 28).
  bool use_distrust = true;
  /// The SAW/ACK quorum-awareness precondition for deciding
  /// (Fig. 4 line 30, "seen_p[Q_p] < k_p").
  bool use_quorum_awareness = true;
};

class Anuc final : public ConsensusAutomaton {
 public:
  Anuc(Pid self, Value proposal, Pid n, AnucOptions options = {});

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] std::optional<Value> decision() const override {
    return decided_;
  }

  [[nodiscard]] std::optional<Bytes> snapshot() const override;

  [[nodiscard]] bool save_state(ByteWriter& w) const override;
  [[nodiscard]] bool restore_state(ByteReader& r) override;

  [[nodiscard]] int round() const { return round_; }
  [[nodiscard]] int decided_round() const { return decided_round_; }

  /// Instrumentation for the benches.
  [[nodiscard]] const QuorumHistory& history() const { return history_; }
  [[nodiscard]] std::int64_t distrust_calls() const { return distrust_calls_; }
  [[nodiscard]] std::int64_t distrust_hits() const { return distrust_hits_; }

 private:
  enum class Phase { kAwaitLead, kAwaitReports, kAwaitProposals };

  /// StackedNuc's clone copies its embedded components.
  friend class StackedNuc;
  Anuc(const Anuc&) = default;
  [[nodiscard]] Anuc* clone_raw() const override { return new Anuc(*this); }

  static constexpr Value kQuestion = INT64_MIN;

  /// The history rides immutably from decode to import, so receivers of
  /// one broadcast share a single decoded object (see the decode memo in
  /// anuc.cpp) instead of each parsing identical bytes.
  struct HistoryMsg {
    Value v = 0;
    std::shared_ptr<const QuorumHistory> h;
  };

  /// Slots sized n on first touch (a fixed kMaxProcesses array would cost
  /// ~100KB per buffered round at the 1024-process cap).
  struct RoundMsgs {
    std::vector<std::optional<HistoryMsg>> lead;
    std::vector<std::optional<Value>> rep;
    std::vector<std::optional<HistoryMsg>> prop;
    /// Members whose PROP history this round has already been folded into
    /// history_. import is idempotent (pointwise union), so skipping the
    /// re-import on every kAwaitProposals retry pass changes no state —
    /// only the work. Deliberately not serialized: a restored automaton
    /// re-imports once, a no-op.
    ProcessSet props_imported;
    void ensure(Pid n) {
      if (lead.empty()) {
        lead.resize(static_cast<std::size_t>(n));
        rep.resize(static_cast<std::size_t>(n));
        prop.resize(static_cast<std::size_t>(n));
      }
    }
  };

  /// Per-quorum SAW/ACK bookkeeping (Fig. 4 lines 7-11 and 31-42); keyed
  /// by the quorum itself. `seen` empty encodes the initial infinity.
  struct SawState {
    bool sent = false;
    ProcessSet acks;
    int max_ack_round = 0;
    std::optional<int> seen;
  };

  void on_message(Pid from, const Bytes& payload, const SharedBytes* shared,
                  std::vector<Outgoing>& out);
  void advance(const FdValue& d, std::vector<Outgoing>& out);
  void start_round(std::vector<Outgoing>& out);

  /// get_quorum() (Fig. 5 lines 47-50): reads the Sigma^nu+ component and
  /// records it as one of this process's own quorums.
  ProcessSet get_quorum(const FdValue& d);

  [[nodiscard]] bool distrusts(Pid q);

  const Pid self_;
  const Pid n_;
  const AnucOptions options_;

  Value x_;  // current estimate
  int round_ = 0;
  Phase phase_ = Phase::kAwaitLead;
  std::optional<Value> decided_;
  int decided_round_ = 0;

  QuorumHistory history_;
  std::map<int, RoundMsgs> inbox_;
  /// ProcessSet's ordering is the numeric bitset order, so for n <= 64 this
  /// map iterates exactly like the old mask-keyed map (save_state bytes are
  /// unchanged).
  std::map<ProcessSet, SawState> saw_;

  /// Encode scratch: reset before each message build, so steady-state
  /// encoding reuses one grown buffer instead of allocating per send.
  ByteWriter scratch_;

  std::int64_t distrust_calls_ = 0;
  std::int64_t distrust_hits_ = 0;
};

[[nodiscard]] ConsensusFactory make_anuc(Pid n, AnucOptions options = {});

}  // namespace nucon
