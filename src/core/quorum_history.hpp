// Quorum histories and the distrust machinery of A_nuc (paper Fig. 5).
//
// H_p is an array indexed by process: H_p[q] is the set of quorums of q
// that p knows about (its own via get_quorum, others' via SAW messages and
// the histories piggybacked on LEAD/PROP messages).
//
//   F_p          = processes q' with a known quorum disjoint from one of
//                  p's own quorums — p "considers q' faulty" (line 52);
//   distrusts(q) = there are r not in F_p and known quorums Q of q and R
//                  of r that are disjoint (line 53).
//
// Quorums are only ever added (Observation 6.10), so F_p is monotone
// (Observation 6.11). That monotonicity is what makes the queries cheap to
// maintain incrementally: the history keeps a lazily synced cache of
// distinct quorum values ("entries"), each carrying its owner set and the
// set of processes owning a quorum disjoint from it. A new quorum is
// interned once (one disjointness scan over the distinct values); membership
// and distrust queries then read the precomputed owner/disjoint-owner sets
// instead of re-running the triple loop over all (q, quorum, own) triples on
// every A_nuc step. Note distrust itself is NOT monotone in the witness — r
// may later join F_p — so the cache stores the disjointness *relation*, not
// boolean distrust results; queries subtract the current F_p at read time.
//
// Debug builds (!NDEBUG) cross-check every cached query against the
// recompute-from-scratch reference (considered_faulty_slow / distrusts_slow).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "util/bytes.hpp"
#include "util/process_set.hpp"

namespace nucon {

class QuorumHistory {
 public:
  explicit QuorumHistory(Pid n);

  QuorumHistory(const QuorumHistory& other);
  QuorumHistory& operator=(const QuorumHistory& other);
  QuorumHistory(QuorumHistory&&) noexcept = default;
  QuorumHistory& operator=(QuorumHistory&&) noexcept = default;
  ~QuorumHistory() = default;

  [[nodiscard]] Pid n() const { return n_; }

  /// H[q] <- H[q] u {quorum}.
  void insert(Pid q, const ProcessSet& quorum);

  /// import_history (Fig. 5 lines 44-46): pointwise union.
  void import(const QuorumHistory& other);

  /// The known quorums of q.
  [[nodiscard]] const std::vector<ProcessSet>& of(Pid q) const {
    return sets_[static_cast<std::size_t>(q)];
  }

  [[nodiscard]] bool knows(Pid q, const ProcessSet& quorum) const;

  /// F_p for p = self (Fig. 5 line 52).
  [[nodiscard]] ProcessSet considered_faulty(Pid self) const;

  /// distrusts(q) for p = self (Fig. 5 lines 51-53).
  [[nodiscard]] bool distrusts(Pid self, Pid q) const;

  /// Recompute-from-scratch reference implementations of the two queries
  /// above. The cached versions must agree with these on every history (the
  /// scale-label equivalence oracle and the !NDEBUG cross-check both pin
  /// it); they are the pre-cache triple loops, kept verbatim.
  [[nodiscard]] ProcessSet considered_faulty_slow(Pid self) const;
  [[nodiscard]] bool distrusts_slow(Pid self, Pid q) const;

  /// Total number of (process, quorum) entries.
  [[nodiscard]] std::size_t size() const;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<QuorumHistory> decode(ByteReader& r);

 private:
  /// One distinct quorum value across the whole history.
  struct Entry {
    ProcessSet quorum;
    /// Processes q with quorum in H[q].
    ProcessSet owners;
    /// Processes owning some known quorum disjoint from this one (an empty
    /// quorum counts as disjoint from itself).
    ProcessSet disjoint_owners;
    /// Ids of entries whose quorum is disjoint from this one.
    std::vector<std::uint32_t> disjoint_entries;
  };

  struct Cache {
    std::vector<Entry> entries;
    /// quorum value -> entry id.
    std::map<ProcessSet, std::uint32_t> index;
    /// Per process: owned entry ids, sorted by quorum value (mirrors the
    /// order of sets_[q]).
    std::vector<std::vector<std::uint32_t>> owned;
    /// Per process p: F_p, the union of disjoint_owners over p's owned
    /// entries, maintained eagerly as ownerships fold in. Makes
    /// considered_faulty a copy and distrusts a subset test — the identity
    /// is that union commutes with subtracting the fixed F_self, so
    /// "some owned entry has a disjoint owner outside F_self" collapses to
    /// "F_q is not a subset of F_self".
    std::vector<ProcessSet> faulty;
    /// Per process: how many quorums of sets_[q] are folded into the cache.
    std::vector<std::size_t> synced;
    /// Value of generation_ the cache was last synced at.
    std::uint64_t generation = 0;
  };

  /// Brings the cache up to date with sets_ and returns it. For processes
  /// whose quorum count is unchanged this skips immediately; otherwise it
  /// merges the sorted quorum list against the sorted owned-entry list and
  /// interns only the new values (Observation 6.10: nothing is ever
  /// removed, so folded quorums are always still present).
  Cache& cache() const;

  std::uint32_t intern(Cache& c, const ProcessSet& quorum) const;

  Pid n_;
  /// sets_[q] = known quorums of q, kept sorted and deduplicated.
  std::vector<std::vector<ProcessSet>> sets_;
  /// Bumped on every successful insert; cheap cache-freshness check.
  std::uint64_t generation_ = 0;
  mutable std::unique_ptr<Cache> cache_;
};

}  // namespace nucon
