// Quorum histories and the distrust machinery of A_nuc (paper Fig. 5).
//
// H_p is an array indexed by process: H_p[q] is the set of quorums of q
// that p knows about (its own via get_quorum, others' via SAW messages and
// the histories piggybacked on LEAD/PROP messages).
//
//   F_p          = processes q' with a known quorum disjoint from one of
//                  p's own quorums — p "considers q' faulty" (line 52);
//   distrusts(q) = there are r not in F_p and known quorums Q of q and R
//                  of r that are disjoint (line 53).
//
// Quorums are only ever added (Observation 6.10), so F_p is monotone
// (Observation 6.11).
#pragma once

#include <optional>
#include <vector>

#include "util/bytes.hpp"
#include "util/process_set.hpp"

namespace nucon {

class QuorumHistory {
 public:
  explicit QuorumHistory(Pid n);

  [[nodiscard]] Pid n() const { return n_; }

  /// H[q] <- H[q] u {quorum}.
  void insert(Pid q, ProcessSet quorum);

  /// import_history (Fig. 5 lines 44-46): pointwise union.
  void import(const QuorumHistory& other);

  /// The known quorums of q.
  [[nodiscard]] const std::vector<ProcessSet>& of(Pid q) const {
    return sets_[static_cast<std::size_t>(q)];
  }

  [[nodiscard]] bool knows(Pid q, ProcessSet quorum) const;

  /// F_p for p = self (Fig. 5 line 52).
  [[nodiscard]] ProcessSet considered_faulty(Pid self) const;

  /// distrusts(q) for p = self (Fig. 5 lines 51-53).
  [[nodiscard]] bool distrusts(Pid self, Pid q) const;

  /// Total number of (process, quorum) entries.
  [[nodiscard]] std::size_t size() const;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<QuorumHistory> decode(ByteReader& r);

 private:
  Pid n_;
  /// sets_[q] = known quorums of q, kept sorted and deduplicated.
  std::vector<std::vector<ProcessSet>> sets_;
};

}  // namespace nucon
