#include "core/from_scratch.hpp"

namespace nucon {
namespace {

constexpr std::uint8_t kChannelOmega = 0;
constexpr std::uint8_t kChannelSigma = 1;
constexpr std::uint8_t kChannelConsensus = 2;

}  // namespace

FromScratchConsensus::FromScratchConsensus(Pid self, Value proposal, Pid n,
                                           Pid t)
    : omega_(self, n),
      sigma_(self, n, t),
      consensus_(self, proposal, MrOptions{n, MrQuorumMode::kFdQuorum}) {}

void FromScratchConsensus::step_component(Automaton& component,
                                          const Incoming* in, const FdValue& d,
                                          std::uint8_t channel,
                                          std::vector<Outgoing>& out) {
  component_sends_.clear();
  component.step(in, d, component_sends_);
  reframe_sends(component_sends_, frame_scratch_,
                [channel](ByteWriter& w, const Bytes& payload) {
                  w.u8(channel);
                  w.raw(payload);
                },
                out);
}

void FromScratchConsensus::step(const Incoming* in, const FdValue& d,
                                std::vector<Outgoing>& out) {
  (void)d;  // no oracle anywhere in this stack

  const Incoming* routed[3] = {nullptr, nullptr, nullptr};
  Incoming inner;
  if (in != nullptr && !in->payload->empty()) {
    const std::uint8_t channel = in->payload->front();
    if (channel <= kChannelConsensus) {
      demux_.assign(in->payload->begin() + 1, in->payload->end());
      inner = Incoming{in->from, &demux_};
      routed[channel] = &inner;
    }
  }

  step_component(omega_, routed[kChannelOmega], FdValue{}, kChannelOmega, out);
  step_component(sigma_, routed[kChannelSigma], FdValue{}, kChannelSigma, out);

  const FdValue synthesized = FdValue::combine(
      omega_.emulated_output(), sigma_.emulated_output());
  step_component(consensus_, routed[kChannelConsensus], synthesized,
                 kChannelConsensus, out);
}

ConsensusFactory make_from_scratch(Pid n, Pid t) {
  return [n, t](Pid p, Value proposal) {
    return std::make_unique<FromScratchConsensus>(p, proposal, n, t);
  };
}

}  // namespace nucon
