#include "core/quorum_history.hpp"

#include <algorithm>
#include <cassert>

namespace nucon {

QuorumHistory::QuorumHistory(Pid n)
    : n_(n), sets_(static_cast<std::size_t>(n)) {
  assert(n >= 1 && n <= kMaxProcesses);
}

void QuorumHistory::insert(Pid q, ProcessSet quorum) {
  assert(q >= 0 && q < n_);
  auto& sets = sets_[static_cast<std::size_t>(q)];
  const auto it = std::lower_bound(sets.begin(), sets.end(), quorum);
  if (it == sets.end() || *it != quorum) sets.insert(it, quorum);
}

void QuorumHistory::import(const QuorumHistory& other) {
  assert(other.n_ == n_);
  for (Pid q = 0; q < n_; ++q) {
    for (ProcessSet quorum : other.of(q)) insert(q, quorum);
  }
}

bool QuorumHistory::knows(Pid q, ProcessSet quorum) const {
  assert(q >= 0 && q < n_);
  const auto& sets = sets_[static_cast<std::size_t>(q)];
  return std::binary_search(sets.begin(), sets.end(), quorum);
}

ProcessSet QuorumHistory::considered_faulty(Pid self) const {
  ProcessSet out;
  const auto& mine = of(self);
  for (Pid q = 0; q < n_; ++q) {
    for (ProcessSet quorum : of(q)) {
      for (ProcessSet own : mine) {
        if (!quorum.intersects(own)) {
          out.insert(q);
          break;
        }
      }
      if (out.contains(q)) break;
    }
  }
  return out;
}

bool QuorumHistory::distrusts(Pid self, Pid q) const {
  const ProcessSet faulty = considered_faulty(self);
  for (Pid r = 0; r < n_; ++r) {
    if (faulty.contains(r)) continue;
    for (ProcessSet rq : of(r)) {
      for (ProcessSet qq : of(q)) {
        if (!qq.intersects(rq)) return true;
      }
    }
  }
  return false;
}

std::size_t QuorumHistory::size() const {
  std::size_t total = 0;
  for (const auto& sets : sets_) total += sets.size();
  return total;
}

void QuorumHistory::encode(ByteWriter& w) const {
  w.pid(n_);
  for (const auto& sets : sets_) {
    w.uvarint(sets.size());
    for (ProcessSet q : sets) w.process_set(q);
  }
}

std::optional<QuorumHistory> QuorumHistory::decode(ByteReader& r) {
  const auto n = r.pid();
  if (!n || *n < 1) return std::nullopt;
  QuorumHistory h(*n);
  for (Pid q = 0; q < *n; ++q) {
    const auto len = r.uvarint();
    if (!len) return std::nullopt;
    for (std::uint64_t i = 0; i < *len; ++i) {
      const auto quorum = r.process_set();
      if (!quorum) return std::nullopt;
      h.insert(q, *quorum);
    }
  }
  return h;
}

}  // namespace nucon
