#include "core/quorum_history.hpp"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <utility>

namespace nucon {

QuorumHistory::QuorumHistory(Pid n)
    : n_(n), sets_(static_cast<std::size_t>(n)) {
  assert(n >= 1 && n <= kMaxProcesses);
}

QuorumHistory::QuorumHistory(const QuorumHistory& other)
    : n_(other.n_), sets_(other.sets_), generation_(other.generation_) {
  if (other.cache_) cache_ = std::make_unique<Cache>(*other.cache_);
}

QuorumHistory& QuorumHistory::operator=(const QuorumHistory& other) {
  if (this == &other) return *this;
  n_ = other.n_;
  sets_ = other.sets_;
  generation_ = other.generation_;
  cache_ = other.cache_ ? std::make_unique<Cache>(*other.cache_) : nullptr;
  return *this;
}

void QuorumHistory::insert(Pid q, const ProcessSet& quorum) {
  assert(q >= 0 && q < n_);
  auto& sets = sets_[static_cast<std::size_t>(q)];
  const auto it = std::lower_bound(sets.begin(), sets.end(), quorum);
  if (it == sets.end() || *it != quorum) {
    sets.insert(it, quorum);
    ++generation_;
  }
}

void QuorumHistory::import(const QuorumHistory& other) {
  assert(other.n_ == n_);
  for (Pid q = 0; q < n_; ++q) {
    const auto& src = other.of(q);
    if (src.empty()) continue;
    auto& dst = sets_[static_cast<std::size_t>(q)];
    // Both sides are sorted and deduplicated, so one two-pointer walk
    // detects whether the import adds anything; most imports arrive after
    // the sender's history is already a subset of ours and cost O(s + d)
    // comparisons, no inserts and no generation bump.
    std::size_t i = 0;
    std::size_t missing = 0;
    for (const ProcessSet& quorum : src) {
      while (i < dst.size() && dst[i] < quorum) ++i;
      if (i == dst.size() || quorum < dst[i]) ++missing;
    }
    if (missing == 0) continue;
    std::vector<ProcessSet> merged;
    merged.reserve(dst.size() + missing);
    std::merge(dst.begin(), dst.end(), src.begin(), src.end(),
               std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    dst = std::move(merged);
    ++generation_;
  }
}

bool QuorumHistory::knows(Pid q, const ProcessSet& quorum) const {
  assert(q >= 0 && q < n_);
  const auto& sets = sets_[static_cast<std::size_t>(q)];
  return std::binary_search(sets.begin(), sets.end(), quorum);
}

std::uint32_t QuorumHistory::intern(Cache& c, const ProcessSet& quorum) const {
  const auto it = c.index.find(quorum);
  if (it != c.index.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(c.entries.size());
  Entry e;
  e.quorum = quorum;
  for (std::uint32_t other = 0; other < id; ++other) {
    if (!c.entries[other].quorum.intersects(quorum)) {
      e.disjoint_entries.push_back(other);
      e.disjoint_owners |= c.entries[other].owners;
      c.entries[other].disjoint_entries.push_back(id);
    }
  }
  // An empty quorum is disjoint from everything, including itself: its own
  // owners must land in its disjoint_owners when they are folded in.
  if (quorum.empty()) e.disjoint_entries.push_back(id);
  c.entries.push_back(std::move(e));
  c.index.emplace(quorum, id);
  return id;
}

QuorumHistory::Cache& QuorumHistory::cache() const {
  if (!cache_) {
    cache_ = std::make_unique<Cache>();
    cache_->owned.resize(static_cast<std::size_t>(n_));
    cache_->faulty.resize(static_cast<std::size_t>(n_));
    cache_->synced.resize(static_cast<std::size_t>(n_), 0);
  }
  Cache& c = *cache_;
  if (c.generation == generation_) return c;
  for (Pid q = 0; q < n_; ++q) {
    const auto& qs = sets_[static_cast<std::size_t>(q)];
    auto& owned = c.owned[static_cast<std::size_t>(q)];
    if (c.synced[static_cast<std::size_t>(q)] == qs.size()) continue;
    // Merge walk: qs and owned are both sorted by quorum value, and folded
    // quorums never disappear from qs, so every owned id finds its match
    // and the leftovers are exactly the new quorums.
    std::vector<std::uint32_t> merged;
    merged.reserve(qs.size());
    std::size_t j = 0;
    for (const ProcessSet& quorum : qs) {
      if (j < owned.size() && c.entries[owned[j]].quorum == quorum) {
        merged.push_back(owned[j]);
        ++j;
        continue;
      }
      const std::uint32_t id = intern(c, quorum);
      Entry& e = c.entries[id];
      if (!e.owners.contains(q)) {
        e.owners.insert(q);
        for (const std::uint32_t d : e.disjoint_entries) {
          Entry& de = c.entries[d];
          de.disjoint_owners.insert(q);
          // d's quorum gained a disjoint owner, so every owner of d now
          // considers q faulty. The self-disjoint empty quorum works out:
          // q is already in e.owners, so F_q picks up q itself.
          for (const Pid p : de.owners) {
            c.faulty[static_cast<std::size_t>(p)].insert(q);
          }
        }
        c.faulty[static_cast<std::size_t>(q)] |= e.disjoint_owners;
      }
      merged.push_back(id);
    }
    assert(j == owned.size());
    owned = std::move(merged);
    c.synced[static_cast<std::size_t>(q)] = qs.size();
  }
  c.generation = generation_;
  return c;
}

ProcessSet QuorumHistory::considered_faulty(Pid self) const {
  const Cache& c = cache();
  const ProcessSet out = c.faulty[static_cast<std::size_t>(self)];
  assert(out == considered_faulty_slow(self));
  return out;
}

bool QuorumHistory::distrusts(Pid self, Pid q) const {
  const Cache& c = cache();
  // Union commutes with subtracting the fixed F_self, so "some entry of q
  // has a disjoint owner outside F_self" is exactly "F_q is not a subset
  // of F_self" — one word-wise test per call, no per-entry walk.
  const bool out = !c.faulty[static_cast<std::size_t>(q)].is_subset_of(
      c.faulty[static_cast<std::size_t>(self)]);
  assert(out == distrusts_slow(self, q));
  return out;
}

ProcessSet QuorumHistory::considered_faulty_slow(Pid self) const {
  ProcessSet out;
  const auto& mine = of(self);
  for (Pid q = 0; q < n_; ++q) {
    for (const ProcessSet& quorum : of(q)) {
      for (const ProcessSet& own : mine) {
        if (!quorum.intersects(own)) {
          out.insert(q);
          break;
        }
      }
      if (out.contains(q)) break;
    }
  }
  return out;
}

bool QuorumHistory::distrusts_slow(Pid self, Pid q) const {
  const ProcessSet faulty = considered_faulty_slow(self);
  for (Pid r = 0; r < n_; ++r) {
    if (faulty.contains(r)) continue;
    for (const ProcessSet& rq : of(r)) {
      for (const ProcessSet& qq : of(q)) {
        if (!qq.intersects(rq)) return true;
      }
    }
  }
  return false;
}

std::size_t QuorumHistory::size() const {
  std::size_t total = 0;
  for (const auto& sets : sets_) total += sets.size();
  return total;
}

void QuorumHistory::encode(ByteWriter& w) const {
  w.pid(n_);
  for (const auto& sets : sets_) {
    w.uvarint(sets.size());
    for (const ProcessSet& q : sets) w.process_set(q, n_);
  }
}

std::optional<QuorumHistory> QuorumHistory::decode(ByteReader& r) {
  const auto n = r.pid();
  if (!n || *n < 1) return std::nullopt;
  QuorumHistory h(*n);
  for (Pid q = 0; q < *n; ++q) {
    const auto len = r.uvarint();
    if (!len) return std::nullopt;
    auto& sets = h.sets_[static_cast<std::size_t>(q)];
    // Every quorum needs at least one payload byte, so clamping the
    // reservation to the remaining input keeps a malicious length from
    // pre-allocating unbounded memory before the read fails.
    sets.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(*len, r.remaining())));
    for (std::uint64_t i = 0; i < *len; ++i) {
      const auto quorum = r.process_set(*n);
      if (!quorum) return std::nullopt;
      // Our encoder writes each process's quorums sorted and deduplicated,
      // so appends dominate; the insert fallback keeps arbitrary (fuzzed,
      // hand-built) orderings decoding to the identical history.
      if (sets.empty() || sets.back() < *quorum) {
        sets.push_back(*quorum);
        ++h.generation_;
      } else if (*quorum < sets.back()) {
        h.insert(q, *quorum);
      }
    }
  }
  return h;
}

}  // namespace nucon
