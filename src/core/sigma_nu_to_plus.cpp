#include "core/sigma_nu_to_plus.hpp"

namespace nucon {

SigmaNuToPlus::SigmaNuToPlus(Pid self, Pid n, int gossip_every)
    : core_(self, n),
      n_(n),
      gossip_every_(effective_gossip_every(gossip_every, n)),
      output_(ProcessSet::full(n)) {}

void SigmaNuToPlus::step(const Incoming* in, const FdValue& d,
                         std::vector<Outgoing>& out) {
  const NodeRef fresh = core_.on_step(in, d);
  if (core_.k() % static_cast<std::uint32_t>(gossip_every_) == 0) {
    gossip_to_others(core_.self(), n_, core_.gossip(), out);
  }

  if (core_.k() == 1) u_ = fresh;  // line 13
  try_emit(fresh);
}

bool SigmaNuToPlus::try_emit(NodeRef fresh) {
  const SampleDag& dag = core_.dag();
  const std::vector<NodeRef> chain = dag.fair_chain(u_);

  // Scan suffixes from the back, accumulating participants(g) and
  // trusted(g) incrementally; remember the longest suffix satisfying the
  // line 15 condition.
  ProcessSet participants;
  ProcessSet trusted;
  std::optional<std::size_t> best_start;
  for (std::size_t i = chain.size(); i-- > 0;) {
    const NodeRef v = chain[i];
    participants.insert(v.q);
    const FdValue& d = dag.node(v).d;
    if (d.has_quorum()) trusted |= d.quorum();
    if (trusted.is_subset_of(participants) &&
        participants.contains(core_.self())) {
      best_start = i;
    }
  }
  if (!best_start) return false;

  output_ = participants_of(
      std::span<const NodeRef>(chain).subspan(*best_start));  // line 16
  u_ = fresh;                                                 // line 17
  ++outputs_;
  return true;
}

bool SigmaNuToPlus::save_state(ByteWriter& w) const {
  core_.save(w);
  w.process_set(output_, n_);
  w.svarint(u_.q);
  w.uvarint(u_.k);
  w.svarint(outputs_);
  return true;
}

bool SigmaNuToPlus::restore_state(ByteReader& r) {
  if (!core_.restore(r)) return false;
  const auto output = r.process_set(n_);
  const auto uq = r.svarint();
  const auto uk = r.uvarint();
  const auto outputs = r.svarint();
  if (!output || !uq || !uk || !outputs) return false;
  output_ = *output;
  u_ = NodeRef{static_cast<Pid>(*uq), static_cast<std::uint32_t>(*uk)};
  outputs_ = *outputs;
  return true;
}

AutomatonFactory make_sigma_nu_to_plus(Pid n, int gossip_every) {
  return [n, gossip_every](Pid p) {
    return std::make_unique<SigmaNuToPlus>(p, n, gossip_every);
  };
}

}  // namespace nucon
