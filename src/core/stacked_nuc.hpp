// The Theorem 6.28 construction: nonuniform consensus from raw
// (Omega, Sigma^nu) in any environment.
//
// "Given failure detectors Omega and Sigma^nu ... we use
//  T_{Sigma^nu -> Sigma^nu+} to transform Sigma^nu to Sigma^nu+.
//  Concurrently, we run A_nuc, which solves nonuniform consensus using
//  Omega (provided directly) and Sigma^nu+ (obtained through the output
//  variables of the transformation)."
//
// Both components run inside one automaton: each step feeds the raw
// Sigma^nu sample to the embedded transformation, then steps A_nuc with a
// synthesized detector value whose leader component is the raw Omega
// output and whose quorum component is the transformation's current
// Sigma^nu+-output_p. The two components' messages share the link through
// a one-byte multiplexing prefix.
#pragma once

#include "core/anuc.hpp"
#include "core/sigma_nu_to_plus.hpp"

namespace nucon {

class StackedNuc final : public ConsensusAutomaton {
 public:
  StackedNuc(Pid self, Value proposal, Pid n, int gossip_every = 0);

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] std::optional<Value> decision() const override {
    return consensus_.decision();
  }

  [[nodiscard]] std::optional<Bytes> snapshot() const override {
    return consensus_.snapshot();
  }

  /// Complete state = both components' complete states (the per-step
  /// scratch members are overwritten before every use).
  [[nodiscard]] bool save_state(ByteWriter& w) const override {
    return transform_.save_state(w) && consensus_.save_state(w);
  }
  [[nodiscard]] bool restore_state(ByteReader& r) override {
    return transform_.restore_state(r) && consensus_.restore_state(r);
  }

  [[nodiscard]] const SigmaNuToPlus& transformation() const {
    return transform_;
  }
  [[nodiscard]] const Anuc& consensus() const { return consensus_; }

 private:
  StackedNuc(const StackedNuc&) = default;
  [[nodiscard]] StackedNuc* clone_raw() const override {
    return new StackedNuc(*this);
  }

  /// Runs one sub-automaton step and wraps its sends with `channel`.
  void step_component(Automaton& component, const Incoming* in,
                      const FdValue& d, std::uint8_t channel,
                      std::vector<Outgoing>& out);

  SigmaNuToPlus transform_;
  Anuc consensus_;

  /// Reused per-step scratch: the component's raw sends, the framing
  /// writer (each distinct broadcast payload framed once and re-shared),
  /// and the demultiplexed inner payload of the received message.
  std::vector<Outgoing> component_sends_;
  ByteWriter frame_scratch_;
  Bytes demux_;
};

[[nodiscard]] ConsensusFactory make_stacked_nuc(Pid n, int gossip_every = 0);

}  // namespace nucon
