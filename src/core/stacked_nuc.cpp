#include "core/stacked_nuc.hpp"

namespace nucon {
namespace {

constexpr std::uint8_t kChannelTransform = 0;
constexpr std::uint8_t kChannelConsensus = 1;

}  // namespace

StackedNuc::StackedNuc(Pid self, Value proposal, Pid n, int gossip_every)
    : transform_(self, n, gossip_every), consensus_(self, proposal, n) {}

void StackedNuc::step_component(Automaton& component, const Incoming* in,
                                const FdValue& d, std::uint8_t channel,
                                std::vector<Outgoing>& out) {
  component_sends_.clear();
  component.step(in, d, component_sends_);
  reframe_sends(component_sends_, frame_scratch_,
                [channel](ByteWriter& w, const Bytes& payload) {
                  w.u8(channel);
                  w.raw(payload);
                },
                out);
}

void StackedNuc::step(const Incoming* in, const FdValue& d,
                      std::vector<Outgoing>& out) {
  // Demultiplex the received message (if any) to its component.
  const Incoming* for_transform = nullptr;
  const Incoming* for_consensus = nullptr;
  Incoming inner;
  if (in != nullptr && !in->payload->empty()) {
    const std::uint8_t channel = in->payload->front();
    demux_.assign(in->payload->begin() + 1, in->payload->end());
    inner = Incoming{in->from, &demux_};
    if (channel == kChannelTransform) {
      for_transform = &inner;
    } else if (channel == kChannelConsensus) {
      for_consensus = &inner;
    }
  }

  // The transformation samples the raw Sigma^nu quorum.
  step_component(transform_, for_transform, d, kChannelTransform, out);

  // A_nuc sees (Omega directly, Sigma^nu+ through the output variable).
  FdValue synthesized = transform_.emulated_output();
  if (d.has_leader()) synthesized.set_leader(d.leader());
  step_component(consensus_, for_consensus, synthesized, kChannelConsensus,
                 out);
}

ConsensusFactory make_stacked_nuc(Pid n, int gossip_every) {
  return [n, gossip_every](Pid p, Value proposal) {
    return std::make_unique<StackedNuc>(p, proposal, n, gossip_every);
  };
}

}  // namespace nucon
