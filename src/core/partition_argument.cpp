#include "core/partition_argument.hpp"

#include <cassert>

#include "core/sigma_from_majority.hpp"
#include "fd/scripted.hpp"

namespace nucon {
namespace {

/// The quorum a candidate automaton currently emits, if it emits one.
std::optional<ProcessSet> emitted_quorum(const Automaton& a) {
  const auto* fd = dynamic_cast<const EmulatedFd*>(&a);
  if (fd == nullptr) return std::nullopt;
  const FdValue v = fd->emulated_output();
  if (!v.has_quorum()) return std::nullopt;
  return v.quorum();
}

/// Runs the candidate on one side of the partition (the other side crashed
/// at time 0) until some member outputs a quorum inside its own side.
struct SideRun {
  bool completed = false;  // a member emitted a quorum inside `side`
  Pid witness = -1;
  ProcessSet quorum;
  Time when = 0;
  Run run;

  explicit SideRun(FailurePattern fp) : run(std::move(fp)) {}
};

SideRun run_side(Pid n, ProcessSet side, ProcessSet other,
                 const AutomatonFactory& candidate, Oracle& oracle,
                 std::int64_t max_steps, std::uint64_t seed) {
  FailurePattern fp(n);
  for (Pid p : other) fp.set_crash(p, 0);

  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = max_steps;
  opts.restrict_to = side;
  opts.stop_when = [side](const std::vector<std::unique_ptr<Automaton>>& all) {
    for (Pid p : side) {
      const auto q = emitted_quorum(*all[static_cast<std::size_t>(p)]);
      if (q && !q->empty() && q->is_subset_of(side)) return true;
    }
    return false;
  };

  SimResult sim = simulate(fp, oracle, candidate, opts);

  SideRun result(fp);
  result.run = std::move(sim.run);
  result.when = sim.end_time;
  for (Pid p : side) {
    const auto q = emitted_quorum(*sim.automata[static_cast<std::size_t>(p)]);
    if (q && !q->empty() && q->is_subset_of(side)) {
      result.completed = true;
      result.witness = p;
      result.quorum = *q;
      break;
    }
  }
  return result;
}

}  // namespace

PartitionDemoResult run_partition_argument(Pid n,
                                           const AutomatonFactory& candidate,
                                           std::int64_t max_steps,
                                           std::uint64_t seed) {
  assert(n >= 2);
  PartitionDemoResult result;

  // Partition Pi into halves; with t = max(|A|, |B|) >= n/2 both "all of A
  // crashes" and "all of B crashes" are in E_t.
  ProcessSet side_a, side_b;
  for (Pid p = 0; p < n; ++p) {
    (p < (n + 1) / 2 ? side_a : side_b).insert(p);
  }
  result.side_a = side_a;
  result.side_b = side_b;

  // The fixed, legal (Omega, Sigma^nu) history: each side trusts itself.
  ScriptedOracle oracle([side_a, side_b](Pid p, Time) {
    const ProcessSet side = side_a.contains(p) ? side_a : side_b;
    FdValue v = FdValue::of_quorum(side);
    v.set_leader(side.min());
    return v;
  });

  // Run R (A-side) and run R_B (B-side).
  const SideRun run_a =
      run_side(n, side_a, side_b, candidate, oracle, max_steps, seed);
  if (!run_a.completed) {
    result.outcome = PartitionOutcome::kCompletenessFailed;
    result.detail = "A-side never output a quorum within A (completeness of "
                    "Sigma fails when B crashes)";
    return result;
  }
  result.tau = run_a.when;
  result.witness_a = run_a.witness;
  result.quorum_a = run_a.quorum;

  const SideRun run_b =
      run_side(n, side_b, side_a, candidate, oracle, max_steps, seed + 1);
  if (!run_b.completed) {
    result.outcome = PartitionOutcome::kCompletenessFailed;
    result.detail = "B-side never output a quorum within B (completeness of "
                    "Sigma fails when A crashes)";
    return result;
  }
  result.witness_b = run_b.witness;
  result.quorum_b = run_b.quorum;

  // Build run R': failure pattern "A crashes at tau+1", steps of R (all at
  // times <= tau) merged with the steps of R_B. Both step sequences are
  // legal under this pattern and have disjoint participants, so Lemma 2.2
  // applies; we verify it by replaying the merged schedule.
  FailurePattern fp_merged(n);
  for (Pid p : side_a) fp_merged.set_crash(p, result.tau + 1);

  Run part_a(fp_merged);
  part_a.steps = run_a.run.steps;
  Run part_b(fp_merged);
  part_b.steps = run_b.run.steps;

  std::string merge_error;
  const auto merged = merge_runs(part_a, part_b, &merge_error);
  if (merged) {
    const ReplayOutcome outcome = replay(*merged, n, candidate);
    result.merged_run_valid =
        outcome.ok && !check_run_structure(*merged).has_value();
    if (result.merged_run_valid) {
      // Lemma 2.2(b): each side's witness holds the same output in the
      // merged run as in its original run.
      const auto qa = emitted_quorum(
          *outcome.automata[static_cast<std::size_t>(result.witness_a)]);
      const auto qb = emitted_quorum(
          *outcome.automata[static_cast<std::size_t>(result.witness_b)]);
      if (qa) result.quorum_a = *qa;
      if (qb) result.quorum_b = *qb;
    }
  } else {
    result.detail = "merge failed: " + merge_error;
  }

  if (!result.quorum_a.intersects(result.quorum_b)) {
    result.outcome = PartitionOutcome::kIntersectionViolated;
    result.detail = "disjoint quorums " + result.quorum_a.to_string() +
                    " and " + result.quorum_b.to_string() +
                    " in the merged run";
  } else {
    result.outcome = PartitionOutcome::kSurvived;
    result.detail = "quorums intersected within the step budget";
  }
  return result;
}

// --- Candidates --------------------------------------------------------------

namespace {

/// Emits exactly the quorum component currently read from the detector.
class IdentityCandidate final : public Automaton, public EmulatedFd {
 public:
  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override {
    (void)in;
    (void)out;
    if (d.has_quorum()) output_ = d.quorum();
  }

  [[nodiscard]] FdValue emulated_output() const override {
    return FdValue::of_quorum(output_);
  }

 private:
  ProcessSet output_;
};

/// Gossips quorums and outputs the union of everything it has heard plus
/// its own readings.
class GossipUnionCandidate final : public Automaton, public EmulatedFd {
 public:
  explicit GossipUnionCandidate(Pid n) : n_(n) {}

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override {
    if (in != nullptr) {
      ByteReader r(*in->payload);
      if (const auto q = r.process_set(n_); q && r.done()) heard_ |= *q;
    }
    if (d.has_quorum()) {
      heard_ |= d.quorum();
      ByteWriter w;
      w.process_set(d.quorum(), n_);
      broadcast(n_, w.take(), out);
    }
    if (!heard_.empty()) output_ = heard_;
  }

  [[nodiscard]] FdValue emulated_output() const override {
    return FdValue::of_quorum(output_);
  }

 private:
  Pid n_;
  ProcessSet heard_;
  ProcessSet output_ = ProcessSet{};
};

}  // namespace

AutomatonFactory make_identity_candidate() {
  return [](Pid) { return std::make_unique<IdentityCandidate>(); };
}

AutomatonFactory make_gossip_union_candidate(Pid n) {
  return [n](Pid) { return std::make_unique<GossipUnionCandidate>(n); };
}

AutomatonFactory make_wait_for_n_minus_t_candidate(Pid n) {
  const Pid t = static_cast<Pid>((n + 1) / 2);  // t >= n/2: no majority left
  return make_sigma_from_majority(n, t);
}

}  // namespace nucon
