// The partition argument of Theorem 7.1 (ONLY-IF direction), executable.
//
// With t >= n/2, split Pi into disjoint halves A and B and feed any
// candidate transformation T the legal (Omega, Sigma^nu) history in which
// A-side modules forever output (min A, A) and B-side modules (min B, B):
//
//   run R   — all of B crashed at time 0, A correct: Sigma completeness
//             forces some a in A to output a quorum A' inside A by some
//             time tau;
//   run R_B — the mirror image on the B side;
//   run R'  — the *merge* (Lemma 2.2) of R truncated at tau with R_B,
//             under the failure pattern "A crashes at tau+1": a still
//             outputs A' at tau, some b in B outputs B' inside B, and
//             A' and B' are disjoint — the emulated history violates
//             Sigma's intersection property.
//
// A candidate can only escape the intersection violation by never
// achieving completeness on one side (blocking forever), which is also a
// failure. The harness detects and reports either outcome; Theorem 7.1
// says EVERY candidate is defeated, and the tests run the harness against
// a portfolio of natural candidates.
#pragma once

#include <string>

#include "core/emulated.hpp"
#include "sim/merge.hpp"

namespace nucon {

enum class PartitionOutcome {
  /// Intersection violated: disjoint quorums emitted on the two sides of
  /// the merged run (the expected defeat).
  kIntersectionViolated,
  /// A side never emitted a quorum of its own processes: completeness of
  /// Sigma fails in that run (the other possible defeat).
  kCompletenessFailed,
  /// The candidate survived within the step budget (would contradict
  /// Theorem 7.1 if the budget were infinite; never expected).
  kSurvived,
};

struct PartitionDemoResult {
  PartitionOutcome outcome = PartitionOutcome::kSurvived;
  ProcessSet side_a, side_b;
  Time tau = 0;                    // when the A-side witness emitted
  Pid witness_a = -1, witness_b = -1;
  ProcessSet quorum_a, quorum_b;   // the disjoint quorums, if violated
  bool merged_run_valid = false;   // Lemma 2.2 replay of R' succeeded
  std::string detail;
};

/// Runs the construction against a candidate transformation. The factory's
/// automata must implement EmulatedFd and emit quorum values.
[[nodiscard]] PartitionDemoResult run_partition_argument(
    Pid n, const AutomatonFactory& candidate, std::int64_t max_steps,
    std::uint64_t seed);

// --- A portfolio of natural candidates to defeat ---------------------------

/// Outputs the Sigma^nu quorum currently read from the detector.
[[nodiscard]] AutomatonFactory make_identity_candidate();

/// Gossips every quorum it reads and outputs the union of everything heard.
[[nodiscard]] AutomatonFactory make_gossip_union_candidate(Pid n);

/// Waits for round tags from n - t processes (the majority algorithm of
/// Theorem 7.1-IF run outside its precondition, with t = ceil(n/2)).
[[nodiscard]] AutomatonFactory make_wait_for_n_minus_t_candidate(Pid n);

}  // namespace nucon
