#include "core/sigma_from_majority.hpp"

#include <cassert>

namespace nucon {

SigmaFromMajority::SigmaFromMajority(Pid self, Pid n, Pid t)
    : self_(self), n_(n), t_(t), output_(ProcessSet::full(n)) {
  assert(n_ >= 2 && t_ >= 0 && t_ < n_);
}

void SigmaFromMajority::begin_round(std::vector<Outgoing>& out) {
  heard_.erase(round_);
  ++round_;
  scratch_.reset();
  scratch_.uvarint(static_cast<std::uint64_t>(round_));
  broadcast(n_, SharedBytes(scratch_.buffer()), out);
}

void SigmaFromMajority::step(const Incoming* in, const FdValue& d,
                             std::vector<Outgoing>& out) {
  (void)d;  // "from scratch": the failure detector is never consulted
  if (round_ == 0) begin_round(out);

  if (in != nullptr) {
    ByteReader r(*in->payload);
    const auto msg_round = r.uvarint();
    if (msg_round && r.done()) {
      heard_[static_cast<int>(*msg_round)].insert(in->from);
    }
  }

  const ProcessSet current = heard_[round_];
  if (current.size() >= n_ - t_) {
    output_ = current;
    ++emitted_;
    begin_round(out);
  }
}

AutomatonFactory make_sigma_from_majority(Pid n, Pid t) {
  return [n, t](Pid p) { return std::make_unique<SigmaFromMajority>(p, n, t); };
}

}  // namespace nucon
