// T_{Sigma^nu -> Sigma^nu+} (paper Fig. 3, Theorem 6.7).
//
// Each process runs A_DAG over samples of Sigma^nu, keeping a freshness
// barrier u_p (its own most recent sample at the time of the last output).
// Whenever the cone G_p|u_p contains a path g with
//      trusted(g) subset-of participants(g)   and   p in participants(g)
// the process outputs participants(g) as its next Sigma^nu+ quorum and
// refreshes u_p. Self-inclusion is the "p in participants(g)" condition;
// conditional nonintersection follows because every participant's sampled
// Sigma^nu quorum is contained in the output (Lemma 6.4); completeness
// follows from the freshness barrier (Lemma 6.2).
//
// Path search: the paper's "exists a path" is over exponentially many
// paths; we search the suffixes of a greedy maximal chain through the
// cone, which is exactly the shape of the witness path built in the proof
// of Lemma 6.1 (a fresh window containing samples of every correct
// process), and pick the longest valid suffix.
#pragma once

#include "core/emulated.hpp"
#include "dag/dag_builder.hpp"

namespace nucon {

class SigmaNuToPlus final : public Automaton, public EmulatedFd {
 public:
  /// gossip_every: DAG gossip cadence (see effective_gossip_every).
  SigmaNuToPlus(Pid self, Pid n, int gossip_every = 0);

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] FdValue emulated_output() const override {
    return FdValue::of_quorum(output_);
  }

  [[nodiscard]] const DagCore& core() const { return core_; }
  [[nodiscard]] std::int64_t outputs_produced() const { return outputs_; }

  [[nodiscard]] bool save_state(ByteWriter& w) const override;
  [[nodiscard]] bool restore_state(ByteReader& r) override;

 private:
  /// StackedNuc's clone copies its embedded components.
  friend class StackedNuc;
  SigmaNuToPlus(const SigmaNuToPlus&) = default;
  [[nodiscard]] SigmaNuToPlus* clone_raw() const override {
    return new SigmaNuToPlus(*this);
  }

  /// Searches G|u for a witness path and updates the output; returns true
  /// when a new quorum was emitted (lines 15-17).
  bool try_emit(NodeRef fresh);

  DagCore core_;
  Pid n_;
  int gossip_every_;
  ProcessSet output_;  // Sigma^nu+-output_p, initially Pi (line 2)
  NodeRef u_;          // freshness barrier u_p
  std::int64_t outputs_ = 0;
};

[[nodiscard]] AutomatonFactory make_sigma_nu_to_plus(Pid n,
                                                     int gossip_every = 0);

}  // namespace nucon
