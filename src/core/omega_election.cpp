#include "core/omega_election.hpp"

#include <cassert>

namespace nucon {

OmegaElection::OmegaElection(Pid self, Pid n, OmegaElectionOptions opts)
    : self_(self), n_(n), opts_(opts), leader_(self) {
  assert(n_ >= 1 && self_ >= 0 && self_ < n_);
  if (opts_.heartbeat_every <= 0) opts_.heartbeat_every = 2 * n;
  if (opts_.initial_timeout <= 0) {
    opts_.initial_timeout = 8 * opts_.heartbeat_every;
  }
  last_heartbeat_.assign(static_cast<std::size_t>(n), 0);
  timeout_.assign(static_cast<std::size_t>(n), opts_.initial_timeout);
  ByteWriter w;
  w.u8(1);
  heartbeat_ = SharedBytes(w.take());
}

void OmegaElection::refresh(Pid q) {
  if (suspected_.contains(q)) {
    // False suspicion: the peer is alive after all. Back off its timeout
    // so each correct peer is falsely suspected only finitely often.
    suspected_.erase(q);
    timeout_[static_cast<std::size_t>(q)] *= 2;
    ++false_suspicions_;
  }
  last_heartbeat_[static_cast<std::size_t>(q)] = own_steps_;
}

void OmegaElection::step(const Incoming* in, const FdValue& d,
                         std::vector<Outgoing>& out) {
  (void)d;  // from scratch: no failure detector consulted
  ++own_steps_;

  if (in != nullptr) {
    ByteReader r(*in->payload);
    if (const auto tag = r.u8(); tag && *tag == 1 && r.done()) {
      refresh(in->from);
    }
  }

  if (own_steps_ % opts_.heartbeat_every == 0) {
    SharedBytes::counters().broadcasts += 1;
    for (Pid q = 0; q < n_; ++q) {
      if (q != self_) out.push_back({q, heartbeat_});
    }
  }

  for (Pid q = 0; q < n_; ++q) {
    if (q == self_) continue;
    if (own_steps_ - last_heartbeat_[static_cast<std::size_t>(q)] >
        timeout_[static_cast<std::size_t>(q)]) {
      suspected_.insert(q);
    }
  }

  const ProcessSet trusted = ProcessSet::full(n_) - suspected_;
  leader_ = trusted.empty() ? self_ : trusted.min();
}

AutomatonFactory make_omega_election(Pid n, OmegaElectionOptions opts) {
  return [n, opts](Pid p) {
    return std::make_unique<OmegaElection>(p, n, opts);
  };
}

}  // namespace nucon
