#include "core/extract_sigma_nu.hpp"

#include <cassert>

namespace nucon {

ExtractSigmaNu::ExtractSigmaNu(Pid self, ExtractOptions opts)
    : core_(self, opts.n),
      opts_(std::move(opts)),
      output_(ProcessSet::full(opts_.n)) {
  assert(opts_.algorithm != nullptr && opts_.n >= 2);
}

void ExtractSigmaNu::step(const Incoming* in, const FdValue& d,
                          std::vector<Outgoing>& out) {
  const NodeRef fresh = core_.on_step(in, d);
  const auto cadence = static_cast<std::uint32_t>(
      effective_gossip_every(opts_.gossip_every, opts_.n));
  if (core_.k() % cadence == 0) {
    gossip_to_others(core_.self(), opts_.n, core_.gossip(), out);
  }

  if (core_.k() == 1) u_ = fresh;  // line 13

  if (++steps_since_check_ >= opts_.check_every) {
    steps_since_check_ = 0;
    try_emit(fresh);
  }
}

bool ExtractSigmaNu::try_emit(NodeRef fresh) {
  const SampleDag& dag = core_.dag();
  std::vector<NodeRef> chain = dag.fair_chain(u_);
  if (opts_.max_chain != 0 && chain.size() > opts_.max_chain) {
    chain.resize(opts_.max_chain);
  }

  // Lines 15-17: look for schedules in Sch(G|u, I_0) and Sch(G|u, I_1) in
  // which this process decides.
  const std::vector<Value> zeros(static_cast<std::size_t>(opts_.n), 0);
  const std::vector<Value> ones(static_cast<std::size_t>(opts_.n), 1);

  ++simulations_;
  const ChainSimOutcome sim0 =
      simulate_chain(dag, chain, opts_.algorithm, zeros, core_.self());
  if (!sim0.observer_decided) return false;

  ++simulations_;
  const ChainSimOutcome sim1 =
      simulate_chain(dag, chain, opts_.algorithm, ones, core_.self());
  if (!sim1.observer_decided) return false;

  // Line 18: participants(S_0) u participants(S_1), where S_0 and S_1 are
  // the shortest deciding prefixes.
  output_ = sim0.prefix_participants | sim1.prefix_participants;
  u_ = fresh;  // line 19
  ++outputs_;
  return true;
}

AutomatonFactory make_extract_sigma_nu(ExtractOptions opts) {
  return [opts](Pid p) { return std::make_unique<ExtractSigmaNu>(p, opts); };
}

}  // namespace nucon
