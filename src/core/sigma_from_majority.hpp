// Implementing Sigma "from scratch" when a majority is correct
// (paper Theorem 7.1, IF direction).
//
// In environment E_t with t < n/2, Sigma needs no failure detector at all:
// processes proceed in asynchronous rounds, each round broadcasting a tag
// and outputting the set of the first n - t processes heard from. Any two
// outputs are (n - t)-sized with n - t > n/2, hence intersect; eventually
// only correct processes send, giving completeness. Together with Omega
// this makes (Omega, Sigma) — and a fortiori (Omega, Sigma^nu) —
// implementable, which is the easy half of the equivalence
// (Omega, Sigma^nu) == (Omega, Sigma) under a correct majority.
#pragma once

#include <map>

#include "core/emulated.hpp"
#include "sim/automaton.hpp"

namespace nucon {

class SigmaFromMajority final : public Automaton, public EmulatedFd {
 public:
  /// `t` is the environment's fault bound; requires t < n/2 for the output
  /// to be a Sigma history (the class still runs otherwise, which is how
  /// the tests demonstrate the property failing when t >= n/2).
  SigmaFromMajority(Pid self, Pid n, Pid t);

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] FdValue emulated_output() const override {
    return FdValue::of_quorum(output_);
  }

  [[nodiscard]] int round() const { return round_; }
  [[nodiscard]] std::int64_t quorums_output() const { return emitted_; }

 private:
  void begin_round(std::vector<Outgoing>& out);

  const Pid self_;
  const Pid n_;
  const Pid t_;

  int round_ = 0;
  /// heard_[k] = senders of round-k tags received so far; kept per round
  /// because a fast process may send its round-k tag before we enter k.
  std::map<int, ProcessSet> heard_;
  ProcessSet output_;  // initially Pi
  std::int64_t emitted_ = 0;

  /// Encode scratch: reset before each round tag, so steady-state encoding
  /// reuses one grown buffer instead of allocating per broadcast.
  ByteWriter scratch_;
};

[[nodiscard]] AutomatonFactory make_sigma_from_majority(Pid n, Pid t);

}  // namespace nucon
