// Consensus with no failure-detector oracle at all (majority
// environments): the full implementability stack.
//
// Theorem 7.1-IF says that with t < n/2 the quorum detector Sigma is
// implementable from scratch; Omega is implementable from scratch in any
// environment by adaptive-timeout election (core/omega_election.hpp).
// Stacking both emulations under the MR quorum consensus algorithm — all
// three components inside one automaton sharing the link through a
// channel byte — yields uniform consensus in E_t with t < n/2 with *zero*
// oracles, the strongest "everything here actually runs" statement the
// library can make. (With t >= n/2 no such stack can exist: that is the
// ONLY-IF direction, core/partition_argument.hpp.)
#pragma once

#include "algo/mr_consensus.hpp"
#include "core/omega_election.hpp"
#include "core/sigma_from_majority.hpp"

namespace nucon {

class FromScratchConsensus final : public ConsensusAutomaton {
 public:
  /// `t` is the environment's fault bound; requires t < n/2 for
  /// termination (safety holds regardless).
  FromScratchConsensus(Pid self, Value proposal, Pid n, Pid t);

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] std::optional<Value> decision() const override {
    return consensus_.decision();
  }

  [[nodiscard]] std::optional<Bytes> snapshot() const override {
    return consensus_.snapshot();
  }

  [[nodiscard]] const OmegaElection& omega() const { return omega_; }
  [[nodiscard]] const SigmaFromMajority& sigma() const { return sigma_; }
  [[nodiscard]] const MrConsensus& consensus() const { return consensus_; }

 private:
  void step_component(Automaton& component, const Incoming* in,
                      const FdValue& d, std::uint8_t channel,
                      std::vector<Outgoing>& out);

  OmegaElection omega_;
  SigmaFromMajority sigma_;
  MrConsensus consensus_;

  /// Reused per-step scratch: the component's raw sends, the framing
  /// writer (each distinct broadcast payload framed once and re-shared),
  /// and the demultiplexed inner payload of the received message.
  std::vector<Outgoing> component_sends_;
  ByteWriter frame_scratch_;
  Bytes demux_;
};

[[nodiscard]] ConsensusFactory make_from_scratch(Pid n, Pid t);

}  // namespace nucon
