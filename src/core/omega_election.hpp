// Omega implemented from scratch: adaptive-timeout heartbeat leader
// election.
//
// The paper takes Omega as given (its implementability is a separate
// literature); the library provides a working implementation so that, in
// majority environments, the entire stack — Omega, Sigma, consensus — can
// run with no oracle at all (core/from_scratch.hpp).
//
// Processes have no clocks; each uses its own step count. Every
// `heartbeat_every` own steps it broadcasts a heartbeat. A peer is
// suspected when no heartbeat arrived for `timeout[q]` own steps; a
// heartbeat from a suspected peer proves the suspicion false and doubles
// that peer's timeout. The output is the smallest unsuspected process.
//
// Under any fair scheduler with bounded effective message age (our
// admissibility backstop), every correct process's heartbeats keep
// arriving within a bounded number of the observer's own steps, so each
// correct process is falsely suspected only finitely often (each time its
// timeout doubles), crashed processes are eventually suspected forever,
// and all correct outputs converge to the smallest correct process: the
// emitted history is in Omega. Works in EVERY environment — leadership,
// unlike quorums, needs no majority.
#pragma once

#include <vector>

#include "core/emulated.hpp"
#include "sim/automaton.hpp"

namespace nucon {

struct OmegaElectionOptions {
  /// Heartbeat cadence in own steps; 0 resolves to 2n (like the DAG gossip
  /// cadence, a per-step broadcast cannot drain in a one-receive-per-step
  /// model).
  int heartbeat_every = 0;
  /// Initial per-peer timeout in own steps; 0 resolves to 8x the cadence.
  std::int64_t initial_timeout = 0;
};

class OmegaElection final : public Automaton, public EmulatedFd {
 public:
  OmegaElection(Pid self, Pid n, OmegaElectionOptions opts = {});

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] FdValue emulated_output() const override {
    return FdValue::of_leader(leader_);
  }

  [[nodiscard]] ProcessSet suspected() const { return suspected_; }
  [[nodiscard]] std::int64_t false_suspicions() const {
    return false_suspicions_;
  }

 private:
  void refresh(Pid q);

  const Pid self_;
  const Pid n_;
  OmegaElectionOptions opts_;  // defaults resolved in the constructor

  std::int64_t own_steps_ = 0;
  std::vector<std::int64_t> last_heartbeat_;  // own-step stamp per process
  std::vector<std::int64_t> timeout_;
  ProcessSet suspected_;
  Pid leader_;
  std::int64_t false_suspicions_ = 0;

  /// The heartbeat payload is constant; sealed once at construction and
  /// shared across every broadcast thereafter.
  SharedBytes heartbeat_;
};

[[nodiscard]] AutomatonFactory make_omega_election(
    Pid n, OmegaElectionOptions opts = {});

}  // namespace nucon
