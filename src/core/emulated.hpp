// Emulated failure detectors (paper §2.9).
//
// A transformation algorithm T_{D->D'} maintains a variable output_p at
// every process; the history O_R of those variables is the emulated D'.
// Automata implementing a transformation expose the variable through this
// interface, and `record_emulated` captures O_R while the scheduler runs
// so the fd/history.hpp checkers can decide whether O_R is in D'(F).
#pragma once

#include "fd/history.hpp"
#include "sim/scheduler.hpp"

namespace nucon {

class EmulatedFd {
 public:
  virtual ~EmulatedFd() = default;
  /// The current value of output_p.
  [[nodiscard]] virtual FdValue emulated_output() const = 0;
};

/// An on_step observer that appends the stepping process's current
/// emulated output to `sink`. output_p only changes when p steps, so
/// sampling at p's steps records the full history of distinct values.
[[nodiscard]] inline SchedulerOptions with_emulation_recording(
    SchedulerOptions opts, RecordedHistory& sink) {
  opts.on_step = [&sink](const StepRecord& rec,
                         const std::vector<std::unique_ptr<Automaton>>& all) {
    const auto* fd = dynamic_cast<const EmulatedFd*>(
        all[static_cast<std::size_t>(rec.p)].get());
    if (fd != nullptr) sink.add(rec.p, rec.t, fd->emulated_output());
  };
  return opts;
}

}  // namespace nucon
