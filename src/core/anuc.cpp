#include "core/anuc.hpp"

#include <cassert>
#include <deque>
#include <unordered_map>

namespace nucon {
namespace {

constexpr std::uint8_t kTagLead = 1;
constexpr std::uint8_t kTagRep = 2;
constexpr std::uint8_t kTagProp = 3;
constexpr std::uint8_t kTagSaw = 4;
constexpr std::uint8_t kTagAck = 5;

/// Memoized LEAD/PROP payload parse. A broadcast seals one payload buffer
/// and hands every receiver a refcount share, so the n receivers used to
/// parse identical bytes n times — with histories growing over a run that
/// was the dominant per-step cost at scale. The memo is keyed by buffer
/// identity (the sealed Bytes address): each entry pins the buffer alive
/// via SharedBytes::ref(), so a key can never be reused by a different
/// payload while its entry exists, making a hit exact by construction (no
/// hashing of content, no collision risk). Thread-local because payloads
/// never cross threads (one sweep job runs wholly on one worker thread).
///
/// `h == nullptr` caches "malformed": same bytes, same verdict.
struct ParsedLeadProp {
  std::uint64_t round = 0;
  Value v = 0;
  std::shared_ptr<const QuorumHistory> h;
};

class LeadPropMemo {
 public:
  /// Returns the parse of `payload` (tag already consumed by the caller),
  /// reusing a previous receiver's parse of the same sealed buffer when
  /// `shared` identifies one.
  const ParsedLeadProp& parse(const Bytes& payload, const SharedBytes* shared) {
    if (shared == nullptr || shared->raw() == nullptr) {
      scratch_ = parse_fresh(payload);
      return scratch_;
    }
    const Bytes* key = shared->raw();
    const auto it = entries_.find(key);
    if (it != entries_.end()) return it->second.parsed;
    if (fifo_.size() >= kCapacity) {
      entries_.erase(fifo_.front());
      fifo_.pop_front();
    }
    Entry e;
    e.keepalive = shared->ref();
    e.parsed = parse_fresh(payload);
    fifo_.push_back(key);
    return entries_.emplace(key, std::move(e)).first->second.parsed;
  }

 private:
  /// Bounds memory: entries only matter while a broadcast's shares are
  /// still being delivered, a window of a couple of algorithm rounds.
  static constexpr std::size_t kCapacity = 4096;

  struct Entry {
    std::shared_ptr<const Bytes> keepalive;
    ParsedLeadProp parsed;
  };

  static ParsedLeadProp parse_fresh(const Bytes& payload) {
    ByteReader r(payload);
    (void)r.u8();  // tag, validated by the caller
    ParsedLeadProp p;
    const auto round = r.uvarint();
    const auto v = r.svarint();
    if (!round || !v) return p;
    auto h = QuorumHistory::decode(r);
    if (!h || !r.done()) return p;
    p.round = *round;
    p.v = *v;
    p.h = std::make_shared<const QuorumHistory>(std::move(*h));
    return p;
  }

  std::unordered_map<const Bytes*, Entry> entries_;
  std::deque<const Bytes*> fifo_;
  ParsedLeadProp scratch_;
};

LeadPropMemo& lead_prop_memo() {
  thread_local LeadPropMemo memo;
  return memo;
}

}  // namespace

Anuc::Anuc(Pid self, Value proposal, Pid n, AnucOptions options)
    : self_(self), n_(n), options_(options), x_(proposal), history_(n) {
  assert(n_ >= 2 && self_ >= 0 && self_ < n_);
  assert(proposal != kQuestion);
}

ProcessSet Anuc::get_quorum(const FdValue& d) {
  const ProcessSet q = d.quorum();
  history_.insert(self_, q);  // Fig. 5 line 49
  return q;
}

bool Anuc::distrusts(Pid q) {
  if (!options_.use_distrust) return false;  // ablated: trust everyone
  ++distrust_calls_;
  const bool hit = history_.distrusts(self_, q);
  if (hit) ++distrust_hits_;
  return hit;
}

void Anuc::step(const Incoming* in, const FdValue& d,
                std::vector<Outgoing>& out) {
  if (in != nullptr) on_message(in->from, *in->payload, in->shared, out);
  if (round_ == 0) start_round(out);
  advance(d, out);
}

void Anuc::start_round(std::vector<Outgoing>& out) {
  ++round_;
  phase_ = Phase::kAwaitLead;
  // Fig. 4 line 15: (LEAD, k, x, H) to all.
  scratch_.reset();
  scratch_.u8(kTagLead);
  scratch_.uvarint(static_cast<std::uint64_t>(round_));
  scratch_.svarint(x_);
  history_.encode(scratch_);
  broadcast(n_, SharedBytes(scratch_.buffer()), out);
}

void Anuc::on_message(Pid from, const Bytes& payload,
                      const SharedBytes* shared, std::vector<Outgoing>& out) {
  ByteReader r(payload);
  const auto tag = r.u8();
  if (!tag) return;

  switch (*tag) {
    case kTagLead:
    case kTagProp: {
      // One decode per sealed broadcast buffer, shared across receivers;
      // p.h null covers every malformed case the inline parse rejected.
      const ParsedLeadProp& p = lead_prop_memo().parse(payload, shared);
      if (!p.h || p.h->n() != n_) return;
      RoundMsgs& msgs = inbox_[static_cast<int>(p.round)];
      msgs.ensure(n_);
      auto& slot = (*tag == kTagLead) ? msgs.lead[from] : msgs.prop[from];
      slot = HistoryMsg{p.v, p.h};
      break;
    }
    case kTagRep: {
      const auto round = r.uvarint();
      const auto v = r.svarint();
      if (!round || !v || !r.done()) return;
      RoundMsgs& msgs = inbox_[static_cast<int>(*round)];
      msgs.ensure(n_);
      msgs.rep[from] = *v;
      break;
    }
    case kTagSaw: {
      // Fig. 4 lines 35-37: record the sender's quorum, acknowledge with
      // our current round number.
      const auto quorum = r.process_set(n_);
      if (!quorum || !r.done()) return;
      history_.insert(from, *quorum);
      scratch_.reset();
      scratch_.u8(kTagAck);
      scratch_.process_set(*quorum, n_);
      scratch_.uvarint(static_cast<std::uint64_t>(round_));
      out.push_back({from, SharedBytes(scratch_.buffer())});
      break;
    }
    case kTagAck: {
      // Fig. 4 lines 39-42.
      const auto quorum = r.process_set(n_);
      const auto round = r.uvarint();
      if (!quorum || !round || !r.done()) return;
      SawState& state = saw_[*quorum];
      state.acks.insert(from);
      state.max_ack_round =
          std::max(state.max_ack_round, static_cast<int>(*round));
      if (state.acks == *quorum) state.seen = state.max_ack_round;
      break;
    }
    default:
      break;
  }
}

void Anuc::advance(const FdValue& d, std::vector<Outgoing>& out) {
  // One simulator step may traverse several phases when their wait
  // conditions already hold; each loop pass makes at most one transition.
  while (true) {
    RoundMsgs& msgs = inbox_[round_];
    msgs.ensure(n_);

    if (phase_ == Phase::kAwaitLead) {
      // Fig. 4 lines 16-19.
      if (!d.has_leader()) return;
      const Pid leader = d.leader();
      auto& lead = msgs.lead[leader];
      if (!lead) return;
      history_.import(*lead->h);  // line 17, before the distrust check
      if (!distrusts(leader)) x_ = lead->v;
      scratch_.reset();
      scratch_.u8(kTagRep);
      scratch_.uvarint(static_cast<std::uint64_t>(round_));
      scratch_.svarint(x_);
      broadcast(n_, SharedBytes(scratch_.buffer()), out);
      phase_ = Phase::kAwaitReports;
      continue;
    }

    if (!d.has_quorum()) return;

    if (phase_ == Phase::kAwaitReports) {
      // Fig. 4 lines 20-24.
      const ProcessSet q = get_quorum(d);
      bool complete = !q.empty();
      for (Pid member : q) complete = complete && msgs.rep[member].has_value();
      if (!complete) return;

      bool unanimous = true;
      const Value first = *msgs.rep[q.min()];
      for (Pid member : q) unanimous = unanimous && (*msgs.rep[member] == first);

      scratch_.reset();
      scratch_.u8(kTagProp);
      scratch_.uvarint(static_cast<std::uint64_t>(round_));
      scratch_.svarint(unanimous ? first : kQuestion);
      history_.encode(scratch_);
      broadcast(n_, SharedBytes(scratch_.buffer()), out);
      phase_ = Phase::kAwaitProposals;
      continue;
    }

    // Phase::kAwaitProposals — Fig. 4 lines 25-33. Each pass is one
    // iteration of the outer repeat: re-read the quorum, require all its
    // proposals, import their histories, and re-check distrust.
    const ProcessSet q = get_quorum(d);
    bool complete = !q.empty();
    for (Pid member : q) complete = complete && msgs.prop[member].has_value();
    if (!complete) return;

    // Line 27. import is a pointwise union, so a member already folded in
    // on an earlier retry pass contributes nothing — skip the walk.
    for (Pid member : q) {
      if (!msgs.props_imported.contains(member)) {
        msgs.props_imported.insert(member);
        history_.import(*msgs.prop[member]->h);
      }
    }

    for (Pid member : q) {
      if (distrusts(member)) return;  // line 28 fails; retry next step
    }

    // Line 29: adopt any non-"?" proposal (Lemma 6.23: all non-"?"
    // proposals a process collects in a round are equal).
    bool all_v = true;
    std::optional<Value> seen_v;
    for (Pid member : q) {
      const Value v = msgs.prop[member]->v;
      if (v == kQuestion) {
        all_v = false;
      } else {
        seen_v = v;
      }
    }
    if (seen_v) x_ = *seen_v;

    // Line 30: decide only with unanimity AND the quorum-awareness bound
    // seen[Q] < k (the latter can be ablated for the E11 experiment).
    const SawState& state = saw_[q];
    const bool aware = !options_.use_quorum_awareness ||
                       (state.seen && *state.seen < round_);
    if (all_v && seen_v && aware && !decided_) {
      decided_ = x_;
      decided_round_ = round_;
    }

    // Lines 31-33: first use of this quorum to collect proposals.
    SawState& mutable_state = saw_[q];
    if (!mutable_state.sent) {
      mutable_state.sent = true;
      scratch_.reset();
      scratch_.u8(kTagSaw);
      scratch_.process_set(q, n_);
      // One sealed buffer shared across the quorum multicast.
      const SharedBytes payload(scratch_.buffer());
      for (Pid member : q) out.push_back({member, payload});
    }

    inbox_.erase(inbox_.begin(), inbox_.lower_bound(round_));
    start_round(out);
  }
}

std::optional<Bytes> Anuc::snapshot() const {
  ByteWriter w;
  w.svarint(x_);
  w.uvarint(static_cast<std::uint64_t>(round_));
  w.u8(static_cast<std::uint8_t>(phase_));
  w.u8(decided_.has_value());
  if (decided_) w.svarint(*decided_);
  history_.encode(w);
  return w.take();
}

bool Anuc::save_state(ByteWriter& w) const {
  // Unlike snapshot() (registers + history only), this is the complete
  // state: the buffered inbox and SAW/ACK bookkeeping determine future
  // behavior, so the model checker's dedup must distinguish them.
  w.svarint(x_);
  w.uvarint(static_cast<std::uint64_t>(round_));
  w.u8(static_cast<std::uint8_t>(phase_));
  w.u8(decided_.has_value());
  if (decided_) w.svarint(*decided_);
  w.uvarint(static_cast<std::uint64_t>(decided_round_));
  history_.encode(w);
  w.uvarint(inbox_.size());
  for (const auto& [round, msgs] : inbox_) {
    w.uvarint(static_cast<std::uint64_t>(round));
    const auto history_slot =
        [&w, this](const std::vector<std::optional<HistoryMsg>>& arr) {
          for (Pid q = 0; q < n_; ++q) {
            w.u8(!arr.empty() && arr[q].has_value());
            if (!arr.empty() && arr[q]) {
              w.svarint(arr[q]->v);
              arr[q]->h->encode(w);
            }
          }
        };
    history_slot(msgs.lead);
    for (Pid q = 0; q < n_; ++q) {
      const bool has = !msgs.rep.empty() && msgs.rep[q].has_value();
      w.u8(has);
      if (has) w.svarint(*msgs.rep[q]);
    }
    history_slot(msgs.prop);
  }
  w.uvarint(saw_.size());
  for (const auto& [quorum, state] : saw_) {
    w.process_set(quorum, n_);
    w.u8(state.sent ? 1 : 0);
    w.process_set(state.acks, n_);
    w.uvarint(static_cast<std::uint64_t>(state.max_ack_round));
    w.u8(state.seen.has_value());
    if (state.seen) w.uvarint(static_cast<std::uint64_t>(*state.seen));
  }
  w.svarint(distrust_calls_);
  w.svarint(distrust_hits_);
  return true;
}

bool Anuc::restore_state(ByteReader& r) {
  const auto x = r.svarint();
  const auto round = r.uvarint();
  const auto phase = r.u8();
  const auto has_decided = r.u8();
  if (!x || !round || !phase || *phase > 2 || !has_decided) return false;
  std::optional<Value> decided;
  if (*has_decided != 0) {
    const auto v = r.svarint();
    if (!v) return false;
    decided = *v;
  }
  const auto decided_round = r.uvarint();
  if (!decided_round) return false;
  auto history = QuorumHistory::decode(r);
  if (!history || history->n() != n_) return false;

  const auto rounds = r.uvarint();
  if (!rounds) return false;
  std::map<int, RoundMsgs> inbox;
  const auto history_slot =
      [&r, this](std::vector<std::optional<HistoryMsg>>& arr) {
        for (Pid q = 0; q < n_; ++q) {
          const auto has = r.u8();
          if (!has) return false;
          if (*has != 0) {
            const auto v = r.svarint();
            auto h = QuorumHistory::decode(r);
            if (!v || !h || h->n() != n_) return false;
            arr[q] = HistoryMsg{
                *v, std::make_shared<const QuorumHistory>(std::move(*h))};
          }
        }
        return true;
      };
  for (std::uint64_t i = 0; i < *rounds; ++i) {
    const auto key = r.uvarint();
    if (!key) return false;
    RoundMsgs& msgs = inbox[static_cast<int>(*key)];
    msgs.ensure(n_);
    if (!history_slot(msgs.lead)) return false;
    for (Pid q = 0; q < n_; ++q) {
      const auto has = r.u8();
      if (!has) return false;
      if (*has != 0) {
        const auto v = r.svarint();
        if (!v) return false;
        msgs.rep[q] = *v;
      }
    }
    if (!history_slot(msgs.prop)) return false;
  }

  const auto saw_count = r.uvarint();
  if (!saw_count) return false;
  std::map<ProcessSet, SawState> saw;
  for (std::uint64_t i = 0; i < *saw_count; ++i) {
    const auto quorum = r.process_set(n_);
    const auto sent = r.u8();
    const auto acks = r.process_set(n_);
    const auto max_ack_round = r.uvarint();
    const auto has_seen = r.u8();
    if (!quorum || !sent || !acks || !max_ack_round || !has_seen) return false;
    SawState& state = saw[*quorum];
    state.sent = *sent != 0;
    state.acks = *acks;
    state.max_ack_round = static_cast<int>(*max_ack_round);
    if (*has_seen != 0) {
      const auto seen = r.uvarint();
      if (!seen) return false;
      state.seen = static_cast<int>(*seen);
    }
  }
  const auto calls = r.svarint();
  const auto hits = r.svarint();
  if (!calls || !hits) return false;

  x_ = *x;
  round_ = static_cast<int>(*round);
  phase_ = static_cast<Phase>(*phase);
  decided_ = decided;
  decided_round_ = static_cast<int>(*decided_round);
  history_ = std::move(*history);
  inbox_ = std::move(inbox);
  saw_ = std::move(saw);
  distrust_calls_ = *calls;
  distrust_hits_ = *hits;
  return true;
}

ConsensusFactory make_anuc(Pid n, AnucOptions options) {
  return [n, options](Pid p, Value proposal) {
    return std::make_unique<Anuc>(p, proposal, n, options);
  };
}

}  // namespace nucon
