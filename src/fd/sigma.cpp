#include "fd/sigma.hpp"

#include <cassert>

#include <algorithm>

#include "fd/oracle_base.hpp"

namespace nucon {

SigmaOracle::SigmaOracle(const FailurePattern& fp, SigmaOptions opts)
    : fp_(fp), opts_(opts) {
  const ProcessSet correct = fp_.correct();
  kernel_ = correct.empty() ? 0 : correct.min();
  if (opts_.strategy == SigmaStrategy::kMajority) {
    // Majority quorums can satisfy completeness only if a majority is
    // correct; the constructor enforces the precondition loudly.
    assert(is_majority(correct, fp_.n()));
  }
}

FdValue SigmaOracle::value(Pid p, Time t) {
  const ProcessSet all = ProcessSet::full(fp_.n());
  const ProcessSet correct = fp_.correct();
  const bool stable = t >= opts_.stabilize_at;
  const std::uint64_t mix =
      oracle_mix(opts_.seed, p, t / std::max<Time>(1, opts_.hold), stable);

  switch (opts_.strategy) {
    case SigmaStrategy::kKernel: {
      const ProcessSet universe = stable ? correct : all;
      return FdValue::of_quorum(
          noisy_superset(ProcessSet::single(kernel_), universe, mix));
    }
    case SigmaStrategy::kMajority: {
      const ProcessSet universe = stable ? correct : all;
      const int quorum_size = fp_.n() / 2 + 1;
      Rng rng(mix);
      return FdValue::of_quorum(rng.pick_subset(universe, quorum_size));
    }
  }
  __builtin_unreachable();
}

}  // namespace nucon
