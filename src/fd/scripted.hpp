// A fully scripted failure detector: the test or scenario supplies H
// directly as a function of (p, t). Used to reconstruct the paper's
// hand-crafted histories (the §6.3 contamination scenario, the Theorem 7.1
// partition runs) exactly, rather than relying on randomized oracles.
#pragma once

#include <functional>
#include <utility>

#include "fd/failure_detector.hpp"

namespace nucon {

class ScriptedOracle final : public Oracle {
 public:
  using Script = std::function<FdValue(Pid p, Time t)>;

  explicit ScriptedOracle(Script script) : script_(std::move(script)) {}

  [[nodiscard]] FdValue value(Pid p, Time t) override { return script_(p, t); }

 private:
  Script script_;
};

}  // namespace nucon
