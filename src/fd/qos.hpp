// Failure-detector quality-of-service metrics (Chen–Toueg–Aguilera style),
// measured from a recorded history against the ground-truth failure
// pattern.
//
// The property checkers in fd/history.hpp answer "is this history in the
// class" — a yes/no. QoS answers "how good is it": how fast crashes are
// detected, how often correct processes are wrongly suspected and for how
// long, and when an Ω history stops changing its mind. All metrics are
// integer ticks/counts folded in sample order, so tables built from them
// are deterministic for any thread count.
#pragma once

#include <cstdint>

#include "fd/history.hpp"

namespace nucon {

struct FdQos {
  // --- Suspect-list metrics (qos_of_suspects) -------------------------------
  /// (correct observer, crashed target) pairs considered.
  std::int64_t crash_pairs = 0;
  /// Pairs where the observer's samples never reach permanent suspicion of
  /// the crashed target (detection time undefined).
  std::int64_t undetected = 0;
  /// Summed / max detection latency over detected pairs: time of the first
  /// sample of the observer's final always-suspected suffix minus the
  /// target's crash time (clamped at 0 for premature-but-permanent
  /// suspicion).
  std::int64_t detection_total = 0;
  Time detection_max = 0;
  /// Wrongful-suspicion episodes: a correct target transitions into some
  /// correct observer's suspect set.
  std::int64_t mistakes = 0;
  /// Summed / max episode length in ticks (an episode still open at the
  /// observer's last sample counts up to that sample).
  std::int64_t mistake_duration_total = 0;
  Time mistake_duration_max = 0;
  /// Samples of correct observers that carried a suspects component.
  std::int64_t observed_samples = 0;

  // --- Leader metrics (qos_of_leader) ---------------------------------------
  /// True when every correct process's samples end unanimously on one
  /// leader (who that leader is — and whether it is correct — is
  /// check_omega's question, not QoS's).
  bool omega_stabilized = false;
  /// Smallest sample time from which all correct processes' samples agree
  /// on the eventual leader; -1 when not stabilized.
  Time omega_stabilization = -1;

  [[nodiscard]] std::int64_t detected() const {
    return crash_pairs - undetected;
  }
  /// Mean detection latency in ticks (integer floor; 0 when nothing was
  /// detected).
  [[nodiscard]] std::int64_t detection_mean() const {
    return detected() > 0 ? detection_total / detected() : 0;
  }
  [[nodiscard]] std::int64_t mistake_duration_mean() const {
    return mistakes > 0 ? mistake_duration_total / mistakes : 0;
  }
  /// Mistake episodes per 1000 observed samples (integer floor).
  [[nodiscard]] std::int64_t mistakes_per_kilosample() const {
    return observed_samples > 0 ? mistakes * 1000 / observed_samples : 0;
  }
};

/// Suspect-list QoS of a ◇S/◇P-shaped history: detection time of crashed
/// targets and mistake statistics against correct targets, over samples of
/// correct observers. Samples without a suspects component are skipped.
[[nodiscard]] FdQos qos_of_suspects(const RecordedHistory& h,
                                    const FailurePattern& fp);

/// Leader QoS of an Ω-shaped history: stabilization time of the eventual
/// unanimous leader. Samples without a leader component are skipped.
[[nodiscard]] FdQos qos_of_leader(const RecordedHistory& h,
                                  const FailurePattern& fp);

}  // namespace nucon
