#include "fd/composed.hpp"

namespace nucon {

FdValue ComposedOracle::value(Pid p, Time t) {
  return FdValue::combine(first_.value(p, t), second_.value(p, t));
}

}  // namespace nucon
