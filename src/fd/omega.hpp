// The leader failure detector Omega (paper §3.1).
//
// Outputs one process id per module; there is a time after which every
// correct process's module outputs the same correct process. Before the
// configurable stabilization time the oracle outputs arbitrary (noisy)
// leaders, which is the adversarial slack the definition permits.
#pragma once

#include "fd/failure_detector.hpp"

namespace nucon {

struct OmegaOptions {
  /// Global time at which all modules lock onto the eventual leader.
  Time stabilize_at = 0;
  /// The eventual leader; must be correct. -1 selects the smallest correct
  /// process id.
  Pid leader = -1;
  /// Pre-stabilization behavior: -1 means arbitrary noise; any pid fixes
  /// the warmup output at every module (the adversarial choice behind the
  /// §6.3 contamination scenario is a *faulty* warmup leader).
  Pid warmup_leader = -1;
  std::uint64_t seed = 0x00e6a0ull;
};

class OmegaOracle final : public Oracle {
 public:
  OmegaOracle(const FailurePattern& fp, OmegaOptions opts);

  [[nodiscard]] FdValue value(Pid p, Time t) override;

  [[nodiscard]] Pid eventual_leader() const { return leader_; }

 private:
  const FailurePattern& fp_;
  OmegaOptions opts_;
  Pid leader_;
};

}  // namespace nucon
