#include "fd/omega.hpp"

#include <stdexcept>

#include "fd/oracle_base.hpp"

namespace nucon {

OmegaOracle::OmegaOracle(const FailurePattern& fp, OmegaOptions opts)
    : fp_(fp), opts_(opts), leader_(opts.leader) {
  if (leader_ < 0) {
    // Default eventual leader: the smallest correct process. A system with
    // no correct process has no Omega obligation; fall back to 0.
    leader_ = fp_.correct().empty() ? 0 : fp_.correct().min();
  } else if (leader_ >= fp_.n() ||
             (!fp_.correct().empty() && !fp_.is_correct(leader_))) {
    // A hard error, not an assert: a faulty (or out-of-range) eventual
    // leader would make release builds run an "Omega" that violates Omega
    // and silently poison every sweep built on it.
    throw std::invalid_argument(
        "OmegaOracle: configured eventual leader " + std::to_string(leader_) +
        " is not a correct process of " + fp_.to_string());
  }
}

FdValue OmegaOracle::value(Pid p, Time t) {
  if (t >= opts_.stabilize_at) return FdValue::of_leader(leader_);
  if (opts_.warmup_leader >= 0) return FdValue::of_leader(opts_.warmup_leader);
  // Pre-stabilization: an arbitrary process, possibly faulty, possibly
  // different at every module and every step.
  const Pid noisy = static_cast<Pid>(oracle_mix(opts_.seed, p, t) %
                                     static_cast<std::uint64_t>(fp_.n()));
  return FdValue::of_leader(noisy);
}

}  // namespace nucon
