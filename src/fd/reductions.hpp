// Classic local reductions between failure-detector classes (§2.9's
// "weaker than" relation, made executable).
//
// The library's headline transformations (Figs. 2 and 3) live in core/;
// this module collects the textbook local reductions that position the
// detector classes relative to each other:
//
//   P  -> <>P -> <>S      (identity: every P history is already in <>P...)
//   P  ->  S               (identity)
//   Sigma -> Sigma^nu      (identity: the nonuniform spec is weaker)
//   <>P -> Omega           (trust the smallest currently-unsuspected
//                           process; after <>P stabilizes, that is the
//                           smallest correct process at every module)
//
// Identity reductions are witnessed by IdentityEmulation, which re-emits
// the sampled value as its output; the tests then check the emitted
// history against the *target* class's checker, which is exactly the
// D' <= D statement. The <>P -> Omega reduction needs actual computation
// but no communication.
#pragma once

#include "core/emulated.hpp"
#include "sim/automaton.hpp"

namespace nucon {

/// Emits the sampled detector value unchanged: witnesses every reduction
/// where the source class's histories already satisfy the target spec.
class IdentityEmulation final : public Automaton, public EmulatedFd {
 public:
  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override {
    (void)in;
    (void)out;
    output_ = d;
  }

  [[nodiscard]] FdValue emulated_output() const override { return output_; }

 private:
  FdValue output_;
};

/// T_{<>P -> Omega}: outputs the smallest process not currently suspected
/// (falling back to self if everything is suspected, which can only happen
/// before stabilization).
class EvtPerfectToOmega final : public Automaton, public EmulatedFd {
 public:
  EvtPerfectToOmega(Pid self, Pid n) : self_(self), n_(n), output_(self) {}

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] FdValue emulated_output() const override {
    return FdValue::of_leader(output_);
  }

 private:
  Pid self_;
  Pid n_;
  Pid output_;
};

[[nodiscard]] AutomatonFactory make_identity_emulation();
[[nodiscard]] AutomatonFactory make_evt_perfect_to_omega(Pid n);

}  // namespace nucon
