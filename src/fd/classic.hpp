// The classical Chandra-Toueg suspect-list detectors: P, <>P, S, <>S.
//
// These are not part of the paper's contribution but are the standard
// substrate its lineage builds on ([1, 2]); the library provides them both
// as baselines (the Chandra-Toueg rotating-coordinator consensus in
// algo/ct_consensus uses <>S) and to exercise the generic "extract Sigma^nu
// from any detector that solves consensus" pipeline with detectors other
// than quorum detectors.
#pragma once

#include "fd/failure_detector.hpp"

namespace nucon {

struct SuspectsOptions {
  /// Time after which the "eventual" detectors become exact.
  Time stabilize_at = 0;
  std::uint64_t seed = 0x5059;
};

/// P: suspects exactly the processes that have crashed so far (strong
/// accuracy + strong completeness hold perpetually).
class PerfectOracle final : public Oracle {
 public:
  explicit PerfectOracle(const FailurePattern& fp) : fp_(fp) {}
  [[nodiscard]] FdValue value(Pid p, Time t) override;

 private:
  const FailurePattern& fp_;
};

/// <>P: arbitrary noise before stabilization, exactly faulty(F) after.
class EvtPerfectOracle final : public Oracle {
 public:
  EvtPerfectOracle(const FailurePattern& fp, SuspectsOptions opts)
      : fp_(fp), opts_(opts) {}
  [[nodiscard]] FdValue value(Pid p, Time t) override;

 private:
  const FailurePattern& fp_;
  SuspectsOptions opts_;
};

/// S: strong completeness + perpetual weak accuracy — one distinguished
/// correct process is never suspected by anyone.
class StrongOracle final : public Oracle {
 public:
  StrongOracle(const FailurePattern& fp, SuspectsOptions opts);
  [[nodiscard]] FdValue value(Pid p, Time t) override;
  [[nodiscard]] Pid never_suspected() const { return safe_; }

 private:
  const FailurePattern& fp_;
  SuspectsOptions opts_;
  Pid safe_;
};

/// <>S: strong completeness + eventual weak accuracy.
class EvtStrongOracle final : public Oracle {
 public:
  EvtStrongOracle(const FailurePattern& fp, SuspectsOptions opts)
      : fp_(fp), opts_(opts) {}
  [[nodiscard]] FdValue value(Pid p, Time t) override;

 private:
  const FailurePattern& fp_;
  SuspectsOptions opts_;
};

}  // namespace nucon
