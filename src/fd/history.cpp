#include "fd/history.hpp"

#include <algorithm>
#include <cassert>

namespace nucon {
namespace {

/// Finite form of "there is a time after which every sample of every
/// correct process satisfies pred": find the last violating sample time t*
/// among correct processes, then require every correct process to have at
/// least one sample after t* (so the suffix is witnessed, not vacuous).
template <typename Pred>
CheckResult eventually_all_correct(const RecordedHistory& h,
                                   const FailurePattern& fp, Pred pred,
                                   const char* what) {
  // One pass: track the last violating sample time among correct processes
  // and, alongside it, each correct process's latest sample time. Process p
  // is witnessed iff its latest sample lies strictly after the last
  // violation (a process with no samples has latest = -1 and always fails).
  Time last_violation = -1;
  std::vector<Time> latest(static_cast<std::size_t>(fp.n()), -1);
  for (const Sample& s : h.samples()) {
    if (s.p < 0 || s.p >= fp.n() || !fp.is_correct(s.p)) continue;
    Time& lt = latest[static_cast<std::size_t>(s.p)];
    lt = std::max(lt, s.t);
    if (!pred(s)) last_violation = std::max(last_violation, s.t);
  }
  for (Pid p : fp.correct()) {
    if (latest[static_cast<std::size_t>(p)] <= last_violation) {
      return CheckResult::fail(
          std::string(what) + ": correct process " + std::to_string(p) +
          " has no sample after the last violation (t=" +
          std::to_string(last_violation) + ")");
    }
  }
  return CheckResult::pass();
}

/// Unique quorum values among samples of the given processes.
std::vector<ProcessSet> unique_quorums(const RecordedHistory& h,
                                       ProcessSet from) {
  std::vector<ProcessSet> out;
  for (const Sample& s : h.samples()) {
    if (from.contains(s.p) && s.value.has_quorum()) {
      out.push_back(s.value.quorum());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

CheckResult pairwise_intersection(const std::vector<ProcessSet>& quorums,
                                  const char* what) {
  for (std::size_t i = 0; i < quorums.size(); ++i) {
    for (std::size_t j = i; j < quorums.size(); ++j) {
      if (!quorums[i].intersects(quorums[j])) {
        return CheckResult::fail(std::string(what) + ": quorums " +
                                 quorums[i].to_string() + " and " +
                                 quorums[j].to_string() + " are disjoint");
      }
    }
  }
  return CheckResult::pass();
}

CheckResult quorum_completeness(const RecordedHistory& h,
                                const FailurePattern& fp) {
  const ProcessSet correct = fp.correct();
  return eventually_all_correct(
      h, fp,
      [correct](const Sample& s) {
        return s.value.has_quorum() && s.value.quorum().is_subset_of(correct);
      },
      "completeness");
}

}  // namespace

std::vector<Sample> RecordedHistory::of(Pid p) const {
  std::vector<Sample> out;
  if (p < 0 || static_cast<std::size_t>(p) >= by_pid_.size()) return out;
  out.reserve(by_pid_[p].size());
  for (std::uint32_t i : by_pid_[static_cast<std::size_t>(p)]) {
    out.push_back(samples_[i]);
  }
  return out;
}

RecordedHistory RecordedHistory::from_run(const Run& run) {
  RecordedHistory h;
  for (const StepRecord& s : run.steps) h.add(s.p, s.t, s.d);
  return h;
}

CheckResult check_omega(const RecordedHistory& h, const FailurePattern& fp) {
  if (fp.correct().empty()) return CheckResult::pass();
  for (Pid c : fp.correct()) {
    const auto result = eventually_all_correct(
        h, fp,
        [c](const Sample& s) {
          return s.value.has_leader() && s.value.leader() == c;
        },
        "omega");
    if (result.ok) return CheckResult::pass();
  }
  return CheckResult::fail(
      "omega: no correct process is the eventual unanimous leader");
}

CheckResult check_sigma(const RecordedHistory& h, const FailurePattern& fp) {
  for (const Sample& s : h.samples()) {
    if (!s.value.has_quorum()) {
      return CheckResult::fail("sigma: sample without a quorum component");
    }
  }
  const auto inter = pairwise_intersection(
      unique_quorums(h, ProcessSet::full(fp.n())), "sigma intersection");
  if (!inter.ok) return inter;
  return quorum_completeness(h, fp);
}

CheckResult check_sigma_nu(const RecordedHistory& h,
                           const FailurePattern& fp) {
  for (const Sample& s : h.samples()) {
    if (!s.value.has_quorum()) {
      return CheckResult::fail("sigma_nu: sample without a quorum component");
    }
  }
  const auto inter = pairwise_intersection(
      unique_quorums(h, fp.correct()), "sigma_nu intersection");
  if (!inter.ok) return inter;
  return quorum_completeness(h, fp);
}

CheckResult check_sigma_nu_plus(const RecordedHistory& h,
                                const FailurePattern& fp) {
  const auto base = check_sigma_nu(h, fp);
  if (!base.ok) return base;

  for (const Sample& s : h.samples()) {
    if (!s.value.quorum().contains(s.p)) {
      return CheckResult::fail("sigma_nu_plus self-inclusion: sample of " +
                               std::to_string(s.p) + " outputs " +
                               s.value.quorum().to_string());
    }
  }

  // Conditional nonintersection: a quorum disjoint from some correct
  // process's quorum must contain only faulty processes.
  const auto correct_quorums = unique_quorums(h, fp.correct());
  const auto all_quorums = unique_quorums(h, ProcessSet::full(fp.n()));
  const ProcessSet faulty = fp.faulty();
  for (ProcessSet q : all_quorums) {
    for (ProcessSet p : correct_quorums) {
      if (!q.intersects(p) && !q.is_subset_of(faulty)) {
        return CheckResult::fail(
            "sigma_nu_plus conditional nonintersection: quorum " +
            q.to_string() + " misses correct quorum " + p.to_string() +
            " but contains a correct process");
      }
    }
  }
  return CheckResult::pass();
}

namespace {

CheckResult suspects_completeness(const RecordedHistory& h,
                                  const FailurePattern& fp) {
  const ProcessSet faulty = fp.faulty();
  return eventually_all_correct(
      h, fp,
      [faulty](const Sample& s) {
        return s.value.has_suspects() &&
               faulty.is_subset_of(s.value.suspects());
      },
      "strong completeness");
}

}  // namespace

CheckResult check_perfect(const RecordedHistory& h,
                          const FailurePattern& fp) {
  for (const Sample& s : h.samples()) {
    if (!s.value.has_suspects()) {
      return CheckResult::fail("perfect: sample without suspects component");
    }
    if (!s.value.suspects().is_subset_of(fp.crashed_at(s.t))) {
      return CheckResult::fail(
          "strong accuracy: suspects " + s.value.suspects().to_string() +
          " at (" + std::to_string(s.p) + ", t=" + std::to_string(s.t) +
          ") include a process not yet crashed");
    }
  }
  return suspects_completeness(h, fp);
}

CheckResult check_evt_perfect(const RecordedHistory& h,
                              const FailurePattern& fp) {
  const auto comp = suspects_completeness(h, fp);
  if (!comp.ok) return comp;
  const ProcessSet correct = fp.correct();
  return eventually_all_correct(
      h, fp,
      [correct](const Sample& s) {
        return s.value.has_suspects() &&
               !s.value.suspects().intersects(correct);
      },
      "eventual strong accuracy");
}

CheckResult check_strong(const RecordedHistory& h, const FailurePattern& fp) {
  // No correct process: weak accuracy ("some correct process is never
  // suspected") has an empty witness set but also no obligation — the
  // class quantifies over correct processes. Vacuous pass, matching
  // check_omega's convention for the same degenerate pattern.
  if (fp.correct().empty()) return CheckResult::pass();
  const auto comp = suspects_completeness(h, fp);
  if (!comp.ok) return comp;
  ProcessSet ever_suspected;
  for (const Sample& s : h.samples()) {
    if (s.value.has_suspects()) ever_suspected |= s.value.suspects();
  }
  if ((fp.correct() - ever_suspected).empty()) {
    return CheckResult::fail(
        "weak accuracy: every correct process was suspected at some point");
  }
  return CheckResult::pass();
}

CheckResult check_evt_strong(const RecordedHistory& h,
                             const FailurePattern& fp) {
  // Vacuous pass on the no-correct-process pattern; see check_strong.
  if (fp.correct().empty()) return CheckResult::pass();
  const auto comp = suspects_completeness(h, fp);
  if (!comp.ok) return comp;
  for (Pid c : fp.correct()) {
    const auto result = eventually_all_correct(
        h, fp,
        [c](const Sample& s) {
          return s.value.has_suspects() && !s.value.suspects().contains(c);
        },
        "eventual weak accuracy");
    if (result.ok) return CheckResult::pass();
  }
  return CheckResult::fail(
      "eventual weak accuracy: no correct process stops being suspected");
}

}  // namespace nucon
