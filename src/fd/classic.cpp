#include "fd/classic.hpp"

#include <cassert>

#include "fd/oracle_base.hpp"

namespace nucon {
namespace {

/// Random subset of `universe` derived from a mix word.
ProcessSet noise_subset(ProcessSet universe, std::uint64_t mix) {
  Rng rng(mix);
  const int k = static_cast<int>(
      rng.below(static_cast<std::uint64_t>(universe.size()) + 1));
  return rng.pick_subset(universe, k);
}

}  // namespace

FdValue PerfectOracle::value(Pid p, Time t) {
  (void)p;
  return FdValue::of_suspects(fp_.crashed_at(t));
}

FdValue EvtPerfectOracle::value(Pid p, Time t) {
  if (t >= opts_.stabilize_at) return FdValue::of_suspects(fp_.faulty());
  return FdValue::of_suspects(
      noise_subset(ProcessSet::full(fp_.n()), oracle_mix(opts_.seed, p, t)));
}

StrongOracle::StrongOracle(const FailurePattern& fp, SuspectsOptions opts)
    : fp_(fp), opts_(opts), safe_(0) {
  assert(!fp_.correct().empty());
  safe_ = fp_.correct().min();
}

FdValue StrongOracle::value(Pid p, Time t) {
  // Weak accuracy is perpetual: `safe_` is excluded from every suspect
  // list, before and after stabilization.
  if (t >= opts_.stabilize_at) {
    return FdValue::of_suspects(fp_.faulty() - ProcessSet::single(safe_));
  }
  const ProcessSet universe =
      ProcessSet::full(fp_.n()) - ProcessSet::single(safe_);
  return FdValue::of_suspects(
      noise_subset(universe, oracle_mix(opts_.seed, p, t)));
}

FdValue EvtStrongOracle::value(Pid p, Time t) {
  if (t >= opts_.stabilize_at) return FdValue::of_suspects(fp_.faulty());
  // Pre-stabilization noise may wrongly suspect anyone, including the
  // eventual never-suspected process.
  return FdValue::of_suspects(
      noise_subset(ProcessSet::full(fp_.n()), oracle_mix(opts_.seed, p, t)));
}

}  // namespace nucon
