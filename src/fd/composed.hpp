// Product failure detectors (D, D') (paper §2.3, footnote 1).
//
// The output at (p, t) is the pair of the component outputs. In FdValue
// terms, the components occupy disjoint slots (e.g. Omega fills `leader`,
// Sigma^nu+ fills `quorum`), so the pair is their union.
#pragma once

#include "fd/failure_detector.hpp"

namespace nucon {

class ComposedOracle final : public Oracle {
 public:
  ComposedOracle(Oracle& first, Oracle& second)
      : first_(first), second_(second) {}

  [[nodiscard]] FdValue value(Pid p, Time t) override;

 private:
  Oracle& first_;
  Oracle& second_;
};

}  // namespace nucon
