// Recorded failure-detector histories and per-class property checkers.
//
// A RecordedHistory is the finite fragment of some H : Pi x N -> R that an
// execution actually observed (either by sampling an oracle, or the history
// O_R of the output variables of a transformation algorithm, §2.9). The
// check_* functions decide membership of that fragment in each detector
// class. "Eventually" clauses are checked in their natural finite form:
// there is a sample time t in the record such that the clause holds for
// every sample after t AND every correct process has at least one sample
// after t (so the check is never vacuously true).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/failure_pattern.hpp"
#include "sim/run.hpp"
#include "util/fd_value.hpp"

namespace nucon {

struct Sample {
  Pid p = -1;
  Time t = 0;
  FdValue value;
};

class RecordedHistory {
 public:
  void add(Pid p, Time t, FdValue value) {
    if (p >= 0) {
      if (static_cast<std::size_t>(p) >= by_pid_.size()) {
        by_pid_.resize(static_cast<std::size_t>(p) + 1);
      }
      by_pid_[static_cast<std::size_t>(p)].push_back(
          static_cast<std::uint32_t>(samples_.size()));
    }
    samples_.push_back({p, t, std::move(value)});
  }

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Samples of process p, in record order (record order is time order for
  /// histories captured from a run).
  [[nodiscard]] std::vector<Sample> of(Pid p) const;

  /// The FD values seen in the steps of a recorded run.
  [[nodiscard]] static RecordedHistory from_run(const Run& run);

 private:
  std::vector<Sample> samples_;
  // Per-process sample indices, kept in record order, so of() is a gather
  // rather than a full scan.
  std::vector<std::vector<std::uint32_t>> by_pid_;
};

/// Result of a property check; `ok` with an empty detail, or a
/// human-readable description of the first violation found.
struct CheckResult {
  bool ok = true;
  std::string detail;

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string why) { return {false, std::move(why)}; }
};

// --- Leader detector Omega (§3.1) ------------------------------------------
// There is a correct process c and a time after which every correct
// process's samples output c.
[[nodiscard]] CheckResult check_omega(const RecordedHistory& h,
                                      const FailurePattern& fp);

// --- Quorum detectors (§3.2, §3.3, §6.1) ------------------------------------

/// Sigma: intersection (all samples, all processes) + completeness.
[[nodiscard]] CheckResult check_sigma(const RecordedHistory& h,
                                      const FailurePattern& fp);

/// Sigma^nu: intersection restricted to samples of correct processes +
/// completeness.
[[nodiscard]] CheckResult check_sigma_nu(const RecordedHistory& h,
                                         const FailurePattern& fp);

/// Sigma^nu+: Sigma^nu + self-inclusion + conditional nonintersection.
[[nodiscard]] CheckResult check_sigma_nu_plus(const RecordedHistory& h,
                                              const FailurePattern& fp);

// --- Classic suspect-list detectors (Chandra-Toueg) -------------------------

/// Perfect detector P: strong completeness + strong accuracy (no process is
/// suspected before it crashes: suspects at (p,t) are within F(t)).
[[nodiscard]] CheckResult check_perfect(const RecordedHistory& h,
                                        const FailurePattern& fp);

/// Eventually perfect <>P: strong completeness + eventual strong accuracy.
[[nodiscard]] CheckResult check_evt_perfect(const RecordedHistory& h,
                                            const FailurePattern& fp);

/// Strong S: strong completeness + weak accuracy (some correct process is
/// never suspected in any sample).
[[nodiscard]] CheckResult check_strong(const RecordedHistory& h,
                                       const FailurePattern& fp);

/// Eventually strong <>S: strong completeness + eventual weak accuracy.
[[nodiscard]] CheckResult check_evt_strong(const RecordedHistory& h,
                                           const FailurePattern& fp);

/// ◇S under its usual name; the class the heartbeat suspicion lists
/// (fd/impl/heartbeat.hpp) implement.
[[nodiscard]] inline CheckResult check_diamond_s(const RecordedHistory& h,
                                                 const FailurePattern& fp) {
  return check_evt_strong(h, fp);
}

}  // namespace nucon
