// The quorum failure detector Sigma (paper §3.2).
//
// Every two quorums output anywhere, at any times, intersect; eventually
// the quorums of correct processes contain only correct processes. Two
// generation strategies are provided:
//
//  - kKernel: every quorum contains a fixed correct "kernel" process, which
//    makes intersection trivial and works in *every* environment (Sigma as
//    a mathematical object is nonempty for every failure pattern; whether
//    it is *implementable* is a different question — Theorem 7.1).
//  - kMajority: every quorum is a majority; valid only when a majority of
//    processes are correct (otherwise completeness is unsatisfiable), and
//    mirrors the "from scratch" implementation of Theorem 7.1.
#pragma once

#include "fd/failure_detector.hpp"

namespace nucon {

enum class SigmaStrategy { kKernel, kMajority };

struct SigmaOptions {
  Time stabilize_at = 0;
  SigmaStrategy strategy = SigmaStrategy::kKernel;
  std::uint64_t seed = 0x516;
  /// The noisy part of a quorum is re-drawn every `hold` ticks rather than
  /// every tick. Algorithms that wait for "all of my current quorum"
  /// need the same quorum to recur; holding it makes convergence brisk
  /// without changing the detector class.
  Time hold = 8;
};

class SigmaOracle final : public Oracle {
 public:
  SigmaOracle(const FailurePattern& fp, SigmaOptions opts);

  [[nodiscard]] FdValue value(Pid p, Time t) override;

 private:
  const FailurePattern& fp_;
  SigmaOptions opts_;
  Pid kernel_ = 0;
};

}  // namespace nucon
