// Hosting an implemented failure detector beside an unmodified algorithm.
//
// The consensus algorithms consume failure-detector values through the
// scheduler: each step's FdValue comes from Oracle::value(p, t). To drive
// them from an *implemented* detector (fd/impl/heartbeat.hpp) without
// touching them, the detector module runs inside an FdHost wrapper beside
// the inner algorithm (messages multiplexed over one link, StackedNuc
// style) and publishes its output variable to a shared FdBoard after every
// step; an ImplementedOracle reads the board, so the scheduler hands the
// inner algorithm — and records into StepRecord::d — exactly the module
// outputs. The recorded history of a hosted run therefore IS the
// implemented detector's history, and the check_* property checkers apply
// to it unchanged.
//
// The oracle's value for p's step at time t is what p's module published
// at p's previous step (the scheduler queries the oracle before the step
// runs). That one-step lag is an implementation detail of the sampling,
// not a violation: the module output is a variable, and the algorithm
// reads the value it had when the step started.
#pragma once

#include <memory>
#include <vector>

#include "fd/failure_detector.hpp"
#include "fd/impl/heartbeat.hpp"

namespace nucon {

/// The per-process output variables of an implemented detector, shared
/// between the n FdHost automata (writers) and the ImplementedOracle
/// (reader) of one run. Not thread-safe; one run executes on one thread.
class FdBoard {
 public:
  FdBoard(Pid n, const FdValue& initial)
      : values_(static_cast<std::size_t>(n), initial) {}

  void publish(Pid p, const FdValue& v) {
    values_[static_cast<std::size_t>(p)] = v;
  }

  [[nodiscard]] const FdValue& value_of(Pid p) const {
    return values_[static_cast<std::size_t>(p)];
  }

 private:
  std::vector<FdValue> values_;
};

/// Oracle facade over a board. Deterministic within a run: each (p, t) is
/// queried at most once (the global clock is strictly increasing), and the
/// board content at that query is a pure function of the schedule so far.
class ImplementedOracle final : public Oracle {
 public:
  explicit ImplementedOracle(std::shared_ptr<const FdBoard> board)
      : board_(std::move(board)) {}

  [[nodiscard]] FdValue value(Pid p, Time /*t*/) override {
    return board_->value_of(p);
  }

 private:
  std::shared_ptr<const FdBoard> board_;
};

/// One process of a hosted run: a heartbeat module plus the inner consensus
/// automaton, multiplexed over one link by a one-byte channel prefix. The
/// module steps first (heartbeats must flow even while the inner algorithm
/// idles) and publishes; the inner algorithm receives the scheduler's d —
/// the recorded board sample — so what the run records is what it consumed.
class FdHost final : public ConsensusAutomaton {
 public:
  FdHost(Pid self, Pid n, HeartbeatMode mode, const HeartbeatOptions& opts,
         std::shared_ptr<FdBoard> board,
         std::unique_ptr<ConsensusAutomaton> inner);

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] std::optional<Value> decision() const override {
    return inner_->decision();
  }

  [[nodiscard]] const HeartbeatFd& detector() const { return hb_; }
  [[nodiscard]] ConsensusAutomaton& inner() { return *inner_; }
  [[nodiscard]] const ConsensusAutomaton& inner() const { return *inner_; }

 private:
  /// Runs one sub-automaton step and wraps its sends with `channel`.
  void step_component(Automaton& component, const Incoming* in,
                      const FdValue& d, std::uint8_t channel,
                      std::vector<Outgoing>& out);

  HeartbeatFd hb_;
  std::unique_ptr<ConsensusAutomaton> inner_;
  std::shared_ptr<FdBoard> board_;

  // Reused per-step scratch (see StackedNuc).
  std::vector<Outgoing> component_sends_;
  ByteWriter frame_scratch_;
  Bytes demux_;
};

/// A hosted consensus stack: the factory builds FdHost automata that all
/// publish to `board`; pair it with an ImplementedOracle over the same
/// board when simulating.
struct HostedConsensus {
  ConsensusFactory factory;
  std::shared_ptr<FdBoard> board;

  [[nodiscard]] std::unique_ptr<Oracle> make_oracle() const {
    return std::make_unique<ImplementedOracle>(board);
  }
};

[[nodiscard]] HostedConsensus make_hosted_consensus(ConsensusFactory inner,
                                                    Pid n, HeartbeatMode mode,
                                                    HeartbeatOptions opts = {});

}  // namespace nucon
