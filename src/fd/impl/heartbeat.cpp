#include "fd/impl/heartbeat.hpp"

#include <algorithm>
#include <cassert>

namespace nucon {

HeartbeatOptions HeartbeatOptions::resolved(Pid n) const {
  HeartbeatOptions r = *this;
  if (r.heartbeat_every <= 0) r.heartbeat_every = 2 * std::max<Pid>(n, 1);
  if (r.timeout_init <= 0) r.timeout_init = 2 * r.heartbeat_every;
  if (r.timeout_increment <= 0) r.timeout_increment = r.heartbeat_every;
  if (r.timeout_max <= 0) r.timeout_max = 16 * r.heartbeat_every;
  r.timeout_max = std::max(r.timeout_max, r.timeout_init);
  return r;
}

HeartbeatFd::HeartbeatFd(Pid self, Pid n, HeartbeatMode mode,
                         HeartbeatOptions opts)
    : self_(self),
      n_(n),
      mode_(mode),
      opts_(opts.resolved(n)),
      last_heard_(static_cast<std::size_t>(n), 0),
      timeout_(static_cast<std::size_t>(n), opts_.timeout_init) {
  assert(self >= 0 && self < n);
}

void HeartbeatFd::step(const Incoming* in, const FdValue& /*d*/,
                       std::vector<Outgoing>& out) {
  ++local_time_;

  if (in != nullptr && in->from >= 0 && in->from < n_ && in->from != self_) {
    const auto q = static_cast<std::size_t>(in->from);
    last_heard_[q] = local_time_;
    if (suspected_.contains(in->from)) {
      // Mistake: the peer was alive after all. Unsuspect and widen its
      // timeout so the same gap is tolerated next time.
      suspected_.erase(in->from);
      timeout_[q] = std::min(timeout_[q] + opts_.timeout_increment,
                             opts_.timeout_max);
      ++mistakes_;
    }
  }

  for (Pid q = 0; q < n_; ++q) {
    if (q == self_) continue;
    if (local_time_ - last_heard_[static_cast<std::size_t>(q)] >
        timeout_[static_cast<std::size_t>(q)]) {
      suspected_.insert(q);
    }
  }

  if (local_time_ % opts_.heartbeat_every == 0 && n_ > 1) {
    // Empty payload: Incoming::from identifies the sender, which is all a
    // heartbeat says. One sealed buffer, shared across destinations.
    SharedBytes hb{Bytes{}};
    for (Pid q = 0; q < n_; ++q) {
      if (q != self_) out.push_back({q, hb});
    }
  }
}

FdValue HeartbeatFd::output() const {
  return mode_ == HeartbeatMode::kOmega
             ? FdValue::of_leader(leader())
             : FdValue::of_suspects(suspected_);
}

AutomatonFactory make_heartbeat_fd(Pid n, HeartbeatMode mode,
                                   HeartbeatOptions opts) {
  return [n, mode, opts](Pid p) {
    return std::make_unique<HeartbeatFd>(p, n, mode, opts);
  };
}

}  // namespace nucon
