// Heartbeat-implemented failure detectors.
//
// Everything else in fd/ is *generated*: an oracle reads the ground-truth
// failure pattern F and synthesizes a history in the detector's class. The
// automata here are *implementations* — they run beside the algorithm under
// test, observe only messages and their own step counter, and estimate who
// has crashed:
//
//   - every process broadcasts an empty heartbeat every `heartbeat_every`
//     of its own steps;
//   - a peer is suspected when no heartbeat has arrived for more than its
//     current timeout (counted in the observer's own steps, the only clock
//     a process has);
//   - a heartbeat from a suspected peer is a *mistake*: the peer is
//     unsuspected and its timeout grows by `timeout_increment` (capped at
//     `timeout_max`), the classic adaptive scheme of Chandra–Toueg's ◇P
//     algorithm.
//
// The ◇S view outputs the suspect set; the Ω view outputs the lowest id
// not currently timed out (the heartbeat chain: id order is the priority
// order, so once suspicions stabilize every process points at the same
// lowest correct id). Crashed peers stop sending, so completeness holds
// unconditionally; accuracy holds once the adaptive timeout exceeds the
// real inter-heartbeat gap, which the timing-aware scheduler mode
// (sim/timing.hpp) keeps bounded — that is what makes the timeouts
// meaningful rather than adversarial.
#pragma once

#include <vector>

#include "sim/automaton.hpp"
#include "sim/failure_pattern.hpp"

namespace nucon {

/// Which detector class the module's output variable presents.
enum class HeartbeatMode {
  kOmega,     ///< leader = lowest id not currently timed out
  kDiamondS,  ///< suspects = currently timed-out peers
};

struct HeartbeatOptions {
  /// Broadcast a heartbeat every this-many own steps. 0 = auto (2n): each
  /// peer then contributes less than half a message per receiver step, so
  /// queues stay bounded even under the adversarial scheduler's lambda
  /// steps.
  int heartbeat_every = 0;

  /// Initial per-peer timeout, in own steps. 0 = auto (2 * heartbeat_every).
  Time timeout_init = 0;

  /// Timeout growth per mistake. 0 = auto (heartbeat_every).
  Time timeout_increment = 0;

  /// Cap on the adaptive timeout; keeps crash-detection time bounded no
  /// matter how many mistakes preceded the crash. 0 = auto
  /// (16 * heartbeat_every, tolerating speed skew up to ~14x).
  Time timeout_max = 0;

  /// The same options with every auto (0) field replaced by its default
  /// for an n-process system.
  [[nodiscard]] HeartbeatOptions resolved(Pid n) const;
};

class HeartbeatFd final : public Automaton {
 public:
  HeartbeatFd(Pid self, Pid n, HeartbeatMode mode, HeartbeatOptions opts);

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  /// The module's current output variable, shaped by the mode.
  [[nodiscard]] FdValue output() const;

  /// Peers currently timed out (never contains self).
  [[nodiscard]] ProcessSet suspected() const { return suspected_; }

  /// Lowest id not currently timed out (always defined: self never is).
  [[nodiscard]] Pid leader() const {
    return (ProcessSet::full(n_) - suspected_).min();
  }

  /// Heartbeats received from peers that were suspected at the time.
  [[nodiscard]] std::int64_t mistakes() const { return mistakes_; }

  [[nodiscard]] Time timeout_of(Pid q) const {
    return timeout_[static_cast<std::size_t>(q)];
  }

  [[nodiscard]] Pid self() const { return self_; }

 private:
  HeartbeatFd(const HeartbeatFd&) = default;
  [[nodiscard]] HeartbeatFd* clone_raw() const override {
    return new HeartbeatFd(*this);
  }

  Pid self_;
  Pid n_;
  HeartbeatMode mode_;
  HeartbeatOptions opts_;  // resolved: no zero fields

  Time local_time_ = 0;  // own steps taken; the only clock a process has
  std::vector<Time> last_heard_;
  std::vector<Time> timeout_;
  ProcessSet suspected_;
  std::int64_t mistakes_ = 0;
};

/// Factory for running bare heartbeat modules (no hosted algorithm), e.g.
/// to record their output history and check it against a detector class.
[[nodiscard]] AutomatonFactory make_heartbeat_fd(Pid n, HeartbeatMode mode,
                                                 HeartbeatOptions opts = {});

}  // namespace nucon
