#include "fd/impl/host.hpp"

namespace nucon {
namespace {

constexpr std::uint8_t kChannelFd = 0;
constexpr std::uint8_t kChannelInner = 1;

}  // namespace

FdHost::FdHost(Pid self, Pid n, HeartbeatMode mode,
               const HeartbeatOptions& opts, std::shared_ptr<FdBoard> board,
               std::unique_ptr<ConsensusAutomaton> inner)
    : hb_(self, n, mode, opts),
      inner_(std::move(inner)),
      board_(std::move(board)) {}

void FdHost::step_component(Automaton& component, const Incoming* in,
                            const FdValue& d, std::uint8_t channel,
                            std::vector<Outgoing>& out) {
  component_sends_.clear();
  component.step(in, d, component_sends_);
  reframe_sends(component_sends_, frame_scratch_,
                [channel](ByteWriter& w, const Bytes& payload) {
                  w.u8(channel);
                  w.raw(payload);
                },
                out);
}

void FdHost::step(const Incoming* in, const FdValue& d,
                  std::vector<Outgoing>& out) {
  const Incoming* for_fd = nullptr;
  const Incoming* for_inner = nullptr;
  Incoming inner_in;
  if (in != nullptr && !in->payload->empty()) {
    const std::uint8_t channel = in->payload->front();
    demux_.assign(in->payload->begin() + 1, in->payload->end());
    inner_in = Incoming{in->from, &demux_};
    if (channel == kChannelFd) {
      for_fd = &inner_in;
    } else if (channel == kChannelInner) {
      for_inner = &inner_in;
    }
  }

  step_component(hb_, for_fd, d, kChannelFd, out);
  board_->publish(hb_.self(), hb_.output());

  step_component(*inner_, for_inner, d, kChannelInner, out);
}

HostedConsensus make_hosted_consensus(ConsensusFactory inner, Pid n,
                                      HeartbeatMode mode,
                                      HeartbeatOptions opts) {
  // Every module starts with an empty suspect set, so the initial board is
  // the mode's nobody-suspected output (leader 0 / no suspects).
  const FdValue initial = HeartbeatFd(0, n, mode, opts).output();
  auto board = std::make_shared<FdBoard>(n, initial);
  ConsensusFactory factory = [inner = std::move(inner), n, mode, opts,
                              board](Pid p, Value proposal) {
    return std::make_unique<FdHost>(p, n, mode, opts, board,
                                    inner(p, proposal));
  };
  return HostedConsensus{std::move(factory), std::move(board)};
}

}  // namespace nucon
