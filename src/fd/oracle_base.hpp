// Shared helpers for concrete oracles.
#pragma once

#include "fd/failure_detector.hpp"
#include "util/rng.hpp"

namespace nucon {

/// Deterministic stateless noise: the same (seed, p, t, salt) always mixes
/// to the same word, so oracles can answer value(p, t) without memoizing
/// while still being proper (single-valued) histories.
[[nodiscard]] constexpr std::uint64_t oracle_mix(std::uint64_t seed, Pid p,
                                                 Time t,
                                                 std::uint64_t salt = 0) {
  std::uint64_t s = seed ^ (static_cast<std::uint64_t>(p) * 0x9e3779b97f4a7c15ULL) ^
                    (static_cast<std::uint64_t>(t) * 0xbf58476d1ce4e5b9ULL) ^
                    (salt * 0x94d049bb133111ebULL);
  return splitmix64(s);
}

/// A deterministic pseudo-random subset of `universe` that always includes
/// `always`, sized between |always| and |universe|.
[[nodiscard]] inline ProcessSet noisy_superset(ProcessSet always,
                                               ProcessSet universe,
                                               std::uint64_t mix) {
  Rng rng(mix);
  const ProcessSet extras = universe - always;
  ProcessSet out = always;
  if (!extras.empty()) {
    const int k = static_cast<int>(rng.below(static_cast<std::uint64_t>(extras.size()) + 1));
    out |= rng.pick_subset(extras, k);
  }
  return out;
}

}  // namespace nucon
