#include "fd/reductions.hpp"

namespace nucon {

void EvtPerfectToOmega::step(const Incoming* in, const FdValue& d,
                             std::vector<Outgoing>& out) {
  (void)in;
  (void)out;
  if (!d.has_suspects()) return;
  const ProcessSet trusted = ProcessSet::full(n_) - d.suspects();
  output_ = trusted.empty() ? self_ : trusted.min();
}

AutomatonFactory make_identity_emulation() {
  return [](Pid) { return std::make_unique<IdentityEmulation>(); };
}

AutomatonFactory make_evt_perfect_to_omega(Pid n) {
  return [n](Pid p) { return std::make_unique<EvtPerfectToOmega>(p, n); };
}

}  // namespace nucon
