#include "fd/qos.hpp"

#include <algorithm>

namespace nucon {

FdQos qos_of_suspects(const RecordedHistory& h, const FailurePattern& fp) {
  FdQos q;
  for (Pid p : fp.correct()) {
    const std::vector<Sample> samples = [&] {
      std::vector<Sample> s = h.of(p);
      std::erase_if(s, [](const Sample& x) { return !x.value.has_suspects(); });
      return s;
    }();
    q.observed_samples += static_cast<std::int64_t>(samples.size());

    for (Pid target = 0; target < fp.n(); ++target) {
      if (target == p) continue;

      if (!fp.is_correct(target)) {
        // Detection: the final suffix of samples that all suspect the
        // target. Walk backwards to its first sample; no suffix (or no
        // samples at all) means the crash went undetected by p.
        ++q.crash_pairs;
        std::size_t i = samples.size();
        while (i > 0 && samples[i - 1].value.suspects().contains(target)) --i;
        if (i == samples.size()) {
          ++q.undetected;
        } else {
          const Time latency =
              std::max<Time>(0, samples[i].t - fp.crash_time(target));
          q.detection_total += latency;
          q.detection_max = std::max(q.detection_max, latency);
        }
        continue;
      }

      // Mistakes: episodes where the correct target sits in p's suspect
      // set. An episode open at the last sample is charged up to it.
      bool open = false;
      Time began = 0;
      for (const Sample& s : samples) {
        const bool suspected = s.value.suspects().contains(target);
        if (suspected && !open) {
          open = true;
          began = s.t;
          ++q.mistakes;
        } else if (!suspected && open) {
          open = false;
          const Time span = s.t - began;
          q.mistake_duration_total += span;
          q.mistake_duration_max = std::max(q.mistake_duration_max, span);
        }
      }
      if (open && !samples.empty()) {
        const Time span = samples.back().t - began;
        q.mistake_duration_total += span;
        q.mistake_duration_max = std::max(q.mistake_duration_max, span);
      }
    }
  }
  return q;
}

FdQos qos_of_leader(const RecordedHistory& h, const FailurePattern& fp) {
  FdQos q;
  if (fp.correct().empty()) {
    // Nobody to agree; vacuously stable from the start (mirrors
    // check_omega's convention for the empty-correct-set pattern).
    q.omega_stabilized = true;
    q.omega_stabilization = 0;
    return q;
  }

  // The candidate eventual leader is what each correct process's last
  // leader-carrying sample says; all must agree or nothing stabilized.
  Pid eventual = -1;
  for (Pid p : fp.correct()) {
    const std::vector<Sample> samples = h.of(p);
    Pid last = -1;
    for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
      if (it->value.has_leader()) {
        last = it->value.leader();
        break;
      }
    }
    if (last < 0) return q;  // a correct process never output a leader
    if (eventual < 0) eventual = last;
    if (last != eventual) return q;  // still split at the end of the record
  }

  Time last_violation = -1;
  for (const Sample& s : h.samples()) {
    if (s.p < 0 || s.p >= fp.n() || !fp.is_correct(s.p)) continue;
    if (!s.value.has_leader()) continue;
    if (s.value.leader() != eventual) {
      last_violation = std::max(last_violation, s.t);
    }
  }
  q.omega_stabilized = true;
  q.omega_stabilization = last_violation + 1;
  return q;
}

}  // namespace nucon
