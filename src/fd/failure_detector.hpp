// Abstract failure detectors (paper §2.3).
//
// A failure detector D maps a failure pattern F to a set of histories
// H : Pi x N -> R. An Oracle below *is* one such history, fixed lazily: it
// answers "what does p's module output at time t" deterministically (the
// same (p, t) always yields the same value), so the function it computes is
// a single H, and concrete oracles guarantee H is in D(F) for their class.
//
// Stabilization boundary convention: every generated oracle with a
// `stabilize_at` option (omega.cpp, classic.cpp, sigma.cpp, sigma_nu.cpp,
// sigma_nu_plus.cpp) treats the boundary as INCLUSIVE — the module output
// at t == stabilize_at is already the stable (post-convergence) value, and
// t == stabilize_at - 1 is the last tick that may show adversarial warmup
// noise. Equivalently: `t >= stabilize_at` selects the stable branch, and
// `stabilize_at == 0` means stable from the first queried tick (the
// scheduler's clock starts at 1). oracle_boundary_test.cpp pins this table
// for all five files.
#pragma once

#include "sim/failure_pattern.hpp"
#include "util/fd_value.hpp"

namespace nucon {

class Oracle {
 public:
  virtual ~Oracle() = default;

  Oracle() = default;
  Oracle(const Oracle&) = delete;
  Oracle& operator=(const Oracle&) = delete;

  /// The value H(p, t). Only queried for p alive at t (the model never
  /// lets a crashed process take a step), but implementations must still
  /// be well-defined for any (p, t) since histories are total functions.
  [[nodiscard]] virtual FdValue value(Pid p, Time t) = 0;
};

}  // namespace nucon
