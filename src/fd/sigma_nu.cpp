#include "fd/sigma_nu.hpp"

#include <algorithm>

#include "fd/oracle_base.hpp"

namespace nucon {

SigmaNuOracle::SigmaNuOracle(const FailurePattern& fp, SigmaNuOptions opts)
    : fp_(fp), opts_(opts) {
  const ProcessSet correct = fp_.correct();
  kernel_ = correct.empty() ? 0 : correct.min();
}

FdValue SigmaNuOracle::value(Pid p, Time t) {
  const ProcessSet all = ProcessSet::full(fp_.n());
  const ProcessSet correct = fp_.correct();
  const bool stable = t >= opts_.stabilize_at;
  const std::uint64_t mix =
      oracle_mix(opts_.seed, p, t / std::max<Time>(1, opts_.hold), stable);

  if (fp_.is_correct(p) || opts_.faulty == FaultyQuorumBehavior::kBenign) {
    // Correct modules: every quorum contains the correct kernel process, so
    // correct quorums always pairwise intersect; after stabilization the
    // noise is drawn from the correct processes only (completeness).
    const ProcessSet universe = stable ? correct : all;
    return FdValue::of_quorum(
        noisy_superset(ProcessSet::single(kernel_), universe, mix));
  }

  switch (opts_.faulty) {
    case FaultyQuorumBehavior::kAdversarialDisjoint:
      // A faulty-only quorum around p itself: misses every stabilized
      // correct quorum. Sigma^nu places no constraint on it.
      return FdValue::of_quorum(
          noisy_superset(ProcessSet::single(p), fp_.faulty(), mix));
    case FaultyQuorumBehavior::kNoise: {
      Rng rng(mix);
      // k >= 1: an empty quorum would vacuously satisfy every
      // "quorum ⊆ heard-from" wait and understate contamination pressure.
      const int k =
          1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(fp_.n())));
      return FdValue::of_quorum(rng.pick_subset(all, k));
    }
    case FaultyQuorumBehavior::kBenign:
      break;  // handled above
  }
  __builtin_unreachable();
}

}  // namespace nucon
