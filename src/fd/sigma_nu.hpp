// The nonuniform quorum failure detector Sigma^nu (paper §3.3).
//
// Like Sigma, but only quorums output at *correct* processes must
// intersect; faulty processes may output anything at all. The faulty-side
// freedom is exactly what separates Sigma^nu from Sigma (Theorem 7.1), so
// the oracle exposes it as a knob: benign faulty modules behave like
// correct ones, adversarial ones output quorums of faulty processes that
// miss every stabilized correct quorum — the fuel of the paper's §6.3
// contamination scenario.
#pragma once

#include "fd/failure_detector.hpp"

namespace nucon {

enum class FaultyQuorumBehavior {
  /// Faulty modules follow the same rule as correct ones.
  kBenign,
  /// Faulty modules output subsets of the faulty processes (plus
  /// themselves), disjoint from stabilized correct quorums.
  kAdversarialDisjoint,
  /// Faulty modules output uniformly random sets.
  kNoise,
};

struct SigmaNuOptions {
  Time stabilize_at = 0;
  FaultyQuorumBehavior faulty = FaultyQuorumBehavior::kAdversarialDisjoint;
  std::uint64_t seed = 0x516A;
  /// Quorum noise is re-drawn every `hold` ticks (see SigmaOptions::hold).
  Time hold = 8;
};

class SigmaNuOracle final : public Oracle {
 public:
  SigmaNuOracle(const FailurePattern& fp, SigmaNuOptions opts);

  [[nodiscard]] FdValue value(Pid p, Time t) override;

 private:
  const FailurePattern& fp_;
  SigmaNuOptions opts_;
  Pid kernel_ = 0;
};

/// Sigma^nu+ (paper §6.1): Sigma^nu plus self-inclusion (every process is
/// in all its quorums) and conditional nonintersection (a quorum disjoint
/// from some correct process's quorum contains only faulty processes).
/// The same faulty-side knob applies; note kAdversarialDisjoint remains a
/// *legal* Sigma^nu+ history because those quorums are faulty-only.
struct SigmaNuPlusOptions {
  Time stabilize_at = 0;
  FaultyQuorumBehavior faulty = FaultyQuorumBehavior::kAdversarialDisjoint;
  std::uint64_t seed = 0x516A0;
  /// Quorum noise is re-drawn every `hold` ticks (see SigmaOptions::hold).
  Time hold = 8;
};

class SigmaNuPlusOracle final : public Oracle {
 public:
  SigmaNuPlusOracle(const FailurePattern& fp, SigmaNuPlusOptions opts);

  [[nodiscard]] FdValue value(Pid p, Time t) override;

 private:
  const FailurePattern& fp_;
  SigmaNuPlusOptions opts_;
  Pid kernel_ = 0;
};

}  // namespace nucon
