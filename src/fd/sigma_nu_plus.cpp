#include "fd/sigma_nu.hpp"
#include <algorithm>

#include "fd/oracle_base.hpp"

namespace nucon {

SigmaNuPlusOracle::SigmaNuPlusOracle(const FailurePattern& fp,
                                     SigmaNuPlusOptions opts)
    : fp_(fp), opts_(opts) {
  const ProcessSet correct = fp_.correct();
  kernel_ = correct.empty() ? 0 : correct.min();
}

FdValue SigmaNuPlusOracle::value(Pid p, Time t) {
  const ProcessSet all = ProcessSet::full(fp_.n());
  const ProcessSet correct = fp_.correct();
  const bool stable = t >= opts_.stabilize_at;
  const std::uint64_t mix =
      oracle_mix(opts_.seed, p, t / std::max<Time>(1, opts_.hold), stable);

  // Correct modules (and benign faulty ones): {p, kernel} plus noise.
  // Self-inclusion holds by construction; every such quorum contains the
  // kernel, so it intersects every other such quorum, which discharges
  // both intersection properties.
  const auto benign = [&] {
    const ProcessSet universe = stable ? correct : all;
    return FdValue::of_quorum(noisy_superset(
        ProcessSet::single(p) | ProcessSet::single(kernel_),
        universe | ProcessSet::single(p), mix));
  };

  if (fp_.is_correct(p) || opts_.faulty == FaultyQuorumBehavior::kBenign) {
    return benign();
  }

  switch (opts_.faulty) {
    case FaultyQuorumBehavior::kAdversarialDisjoint:
      // Faulty-only quorum around p: legal under conditional
      // nonintersection precisely because it contains only faulty
      // processes. This is the history of the paper's §6.3 scenario.
      return FdValue::of_quorum(
          noisy_superset(ProcessSet::single(p), fp_.faulty(), mix));
    case FaultyQuorumBehavior::kNoise:
      // Randomly alternate between the two legal shapes.
      if (oracle_mix(opts_.seed, p, t, 1) & 1) {
        return FdValue::of_quorum(
            noisy_superset(ProcessSet::single(p), fp_.faulty(), mix));
      }
      return benign();
    case FaultyQuorumBehavior::kBenign:
      break;  // handled above
  }
  __builtin_unreachable();
}

}  // namespace nucon
