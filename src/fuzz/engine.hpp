// The coverage-guided fuzzing loop.
//
// Determinism discipline (the sweep engine's, transplanted): candidate
// genomes are generated serially from one master Rng, executed in parallel
// on an exp::ThreadPool with futures awaited in submission order, and
// merged serially in batch order — coverage admission, find selection and
// every counter happen in the merge. A campaign with a fixed master seed
// and a fixed execution budget therefore produces a bit-identical corpus,
// find list and report body at any thread count. A wall-clock budget
// (checked only at batch boundaries) trades that for a time box: it can
// only stop the same deterministic sequence earlier or later, never
// reorder it.
#pragma once

#include <array>

#include "fuzz/genome.hpp"
#include "fuzz/minimize.hpp"
#include "obs/report.hpp"

namespace nucon::fuzz {

struct EngineOptions {
  TargetSpec target;
  /// Seeds everything: initial genomes, parent selection, child mutation
  /// seeds. Same master seed -> same campaign.
  std::uint64_t master_seed = 1;
  /// Hard execution budget (fuzzing executions; minimization probes are
  /// counted separately). The determinism guarantee is phrased over this.
  std::size_t max_execs = 2048;
  /// Optional wall-clock box, checked at batch boundaries; 0 disables.
  double time_budget_seconds = 0.0;
  /// Candidates per batch. Fixed regardless of thread count, so the merge
  /// order never depends on parallelism.
  std::size_t batch_size = 32;
  /// Worker threads; 0 picks hardware concurrency, 1 runs serial.
  unsigned threads = 1;
  /// Fresh random genomes executed before mutation starts (plus the
  /// all-default genome, which is always seeded).
  std::size_t seed_genomes = 8;
  /// Stop after this many distinct finds (deduplicated by violation kind +
  /// divergence shape).
  std::size_t max_finds = 4;
  /// ddmin every find after the campaign (serial, deterministic).
  bool minimize = true;
};

/// One property violation the campaign discovered.
struct Find {
  Genome genome;     // as discovered
  Genome minimized;  // after ddmin (== genome when minimization is off)
  std::string violation;
  std::string divergence_shape;
  /// Execution index (0-based, in deterministic merge order) that hit it.
  std::size_t exec_index = 0;
};

struct FuzzStats {
  std::size_t execs = 0;
  std::size_t corpus_size = 0;
  std::size_t unique_states = 0;
  std::size_t divergence_shapes = 0;
  std::size_t finds = 0;
  std::size_t minimize_probes = 0;
  /// One {execs, unique_states, corpus_size} snapshot per merged batch —
  /// the coverage-over-time curve the BENCH report plots.
  std::vector<std::array<std::size_t, 3>> coverage_curve;
  /// Wall clock of the whole campaign. Nondeterministic; never enters the
  /// report body, only its timings map.
  double wall_seconds = 0.0;
};

struct FuzzResult {
  std::vector<Genome> corpus;  // admission order
  std::vector<Find> finds;     // discovery order
  FuzzStats stats;
};

[[nodiscard]] FuzzResult run_fuzz(const EngineOptions& opts);

/// The BENCH_fuzz report body: campaign counters, a downsampled coverage
/// curve, one row per find. Pure function of (opts, result) — timings
/// (wall clock, execs/s) are the caller's to add to report.timings.
[[nodiscard]] obs::BenchReport fuzz_report(const EngineOptions& opts,
                                           const FuzzResult& result);

/// Writes the replay artifacts into `dir`: every corpus genome
/// (cov-NNNN.genome), and per find the discovered genome (find-K.genome),
/// the minimized genome (find-K.min.genome) and a full JSONL trace of the
/// minimized replay (find-K.trace.jsonl, ready for trace_explain).
/// Returns false on any I/O failure.
bool write_artifacts(const FuzzResult& result, const std::string& dir);

}  // namespace nucon::fuzz
