// Genome generation and mutation.
//
// All randomness comes from one seeded Rng, so a Mutator constructed from
// a seed is a deterministic genome stream: the engine derives one child
// seed per candidate from its master generator, which is what makes the
// whole fuzzing campaign bit-identical at any thread count.
#pragma once

#include "fuzz/genome.hpp"
#include "util/rng.hpp"

namespace nucon::fuzz {

class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : rng_(seed) {}

  /// A fresh genome for the target: random seed, random crash genes, no
  /// delivery or perturbation genes yet (the seeded policy explores first;
  /// mutation pins choices afterwards).
  [[nodiscard]] Genome random_genome(const TargetSpec& target);

  /// One mutation of `parent`: reseed, crash-gene edit, delivery-gene
  /// block append/edit/truncate, or FD-perturbation edit — occasionally
  /// several stacked (havoc). The child always validates.
  [[nodiscard]] Genome mutate(const Genome& parent);

  /// A random payload of length uniform in [0, max_len] INCLUSIVE — the
  /// boundary length is reachable, unlike the pre-fuzzer ad-hoc loop in
  /// fuzz_test.cpp that silently capped one byte short.
  [[nodiscard]] Bytes random_payload(std::size_t max_len);

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  void mutate_once(Genome& g);

  Rng rng_;
};

}  // namespace nucon::fuzz
