#include "fuzz/minimize.hpp"

#include <algorithm>

namespace nucon::fuzz {
namespace {

bool probe(const GenomePredicate& pred, const Genome& cand,
           MinimizeStats* stats) {
  if (stats != nullptr) ++stats->probes;
  return pred(cand);
}

/// Chunk-reset ddmin over the delivery genes: resetting a range to
/// kInjectDefer (instead of erasing it) keeps every later gene at its step
/// position, so candidates stay aligned with the run.
bool shrink_deliveries(Genome& g, const GenomePredicate& pred,
                       MinimizeStats* stats) {
  bool changed = false;
  std::size_t chunk = (g.deliveries.size() + 1) / 2;
  while (chunk >= 1) {
    for (std::size_t start = 0; start < g.deliveries.size(); start += chunk) {
      const std::size_t end = std::min(start + chunk, g.deliveries.size());
      bool all_defer = true;
      for (std::size_t i = start; i < end; ++i) {
        all_defer = all_defer && g.deliveries[i] == kInjectDefer;
      }
      if (all_defer) continue;
      Genome cand = g;
      for (std::size_t i = start; i < end; ++i) {
        cand.deliveries[i] = kInjectDefer;
      }
      if (probe(pred, cand, stats)) {
        g = std::move(cand);
        changed = true;
      }
    }
    if (chunk == 1) break;
    chunk /= 2;
  }

  // A gene vector ending in defers behaves exactly like the truncated one
  // (steps past the end defer anyway), but probe the truncation so purely
  // structural predicates in tests are honored too.
  if (!g.deliveries.empty() && g.deliveries.back() == kInjectDefer) {
    Genome cand = g;
    while (!cand.deliveries.empty() &&
           cand.deliveries.back() == kInjectDefer) {
      cand.deliveries.pop_back();
    }
    if (probe(pred, cand, stats)) {
      g = std::move(cand);
      changed = true;
    }
  }

  // Single-gene simplification: any surviving index gene prefers the
  // canonical oldest-message choice.
  for (std::size_t i = 0; i < g.deliveries.size(); ++i) {
    if (g.deliveries[i] > 0) {
      Genome cand = g;
      cand.deliveries[i] = 0;
      if (probe(pred, cand, stats)) {
        g = std::move(cand);
        changed = true;
      }
    }
  }
  return changed;
}

/// List ddmin over the FD perturbation genes (real removal: order carries
/// no positional meaning here).
bool shrink_perturbs(Genome& g, const GenomePredicate& pred,
                     MinimizeStats* stats) {
  bool changed = false;
  std::size_t chunk = (g.fd_perturbs.size() + 1) / 2;
  while (chunk >= 1 && !g.fd_perturbs.empty()) {
    bool removed_any = false;
    for (std::size_t start = 0; start < g.fd_perturbs.size();) {
      const std::size_t end = std::min(start + chunk, g.fd_perturbs.size());
      Genome cand = g;
      cand.fd_perturbs.erase(
          cand.fd_perturbs.begin() + static_cast<std::ptrdiff_t>(start),
          cand.fd_perturbs.begin() + static_cast<std::ptrdiff_t>(end));
      if (probe(pred, cand, stats)) {
        g = std::move(cand);
        changed = removed_any = true;
        // Do not advance: the next chunk slid into `start`.
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !removed_any) break;
    if (chunk > 1) chunk /= 2;
  }
  return changed;
}

/// Clears crash genes the violation does not need, then tries dropping the
/// whole vector (= all correct).
bool shrink_crashes(Genome& g, const GenomePredicate& pred,
                    MinimizeStats* stats) {
  bool changed = false;
  for (std::size_t p = 0; p < g.crashes.size(); ++p) {
    if (g.crashes[p] == kNeverCrashes) continue;
    Genome cand = g;
    cand.crashes[p] = kNeverCrashes;
    if (probe(pred, cand, stats)) {
      g = std::move(cand);
      changed = true;
    }
  }
  const bool all_correct =
      std::all_of(g.crashes.begin(), g.crashes.end(),
                  [](Time c) { return c == kNeverCrashes; });
  if (!g.crashes.empty() && all_correct) {
    Genome cand = g;
    cand.crashes.clear();
    if (probe(pred, cand, stats)) {
      g = std::move(cand);
      changed = true;
    }
  }
  return changed;
}

}  // namespace

Genome minimize_genome(const Genome& g, const GenomePredicate& still_fails,
                       MinimizeStats* stats) {
  if (!probe(still_fails, g, stats)) return g;  // precondition violated
  Genome out = g;
  // Fixpoint over the passes: clearing a crash can make delivery genes
  // removable and vice versa. Bounded, since every pass only shrinks.
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    changed |= shrink_perturbs(out, still_fails, stats);
    changed |= shrink_crashes(out, still_fails, stats);
    changed |= shrink_deliveries(out, still_fails, stats);
    if (!changed) break;
  }
  return out;
}

Genome minimize_violation(const Genome& g, const std::string& violation,
                          MinimizeStats* stats) {
  GenomePredicate pred = [&violation](const Genome& cand) {
    ExecOptions eo;
    eo.collect_coverage = false;
    return execute_genome(cand, eo).violation == violation;
  };
  Genome out = minimize_genome(g, pred, stats);
  out.expected = violation;
  return out;
}

}  // namespace nucon::fuzz
