#include "fuzz/mutator.hpp"

#include <algorithm>

namespace nucon::fuzz {
namespace {

/// Interesting time horizon for crash and perturbation genes: around and
/// past stabilization, but never beyond what the step budget can reach.
Time horizon_of(const TargetSpec& t) {
  return std::min<Time>(t.max_steps,
                        std::max<Time>(2 * std::max<Time>(t.stabilize, 1), 256));
}

std::size_t count_correct(const std::vector<Time>& crashes) {
  std::size_t correct = 0;
  for (Time c : crashes) correct += (c == kNeverCrashes);
  return correct;
}

constexpr std::size_t kMaxPerturbGenes = 16;
constexpr std::size_t kMaxDeliveryGenes = 4096;

}  // namespace

Genome Mutator::random_genome(const TargetSpec& target) {
  Genome g;
  g.target = target;
  g.seed = rng_.next();
  const Pid faults = static_cast<Pid>(rng_.below(
      static_cast<std::uint64_t>(target.n)));  // 0 .. n-1 crashes
  if (faults > 0) {
    g.crashes.assign(static_cast<std::size_t>(target.n), kNeverCrashes);
    const Time horizon = horizon_of(target);
    for (Pid p : rng_.pick_subset(ProcessSet::full(target.n), faults)) {
      g.crashes[static_cast<std::size_t>(p)] = rng_.range(1, horizon);
    }
  }
  return g;
}

Genome Mutator::mutate(const Genome& parent) {
  Genome g = parent;
  g.expected.clear();  // a mutant's outcome is unknown by definition
  std::size_t rounds = 1;
  if (rng_.chance(1, 4)) rounds += rng_.below(4);  // havoc: stack a few
  for (std::size_t i = 0; i < rounds; ++i) mutate_once(g);
  return g;
}

void Mutator::mutate_once(Genome& g) {
  const TargetSpec& t = g.target;
  const Time horizon = horizon_of(t);
  switch (rng_.below(8)) {
    case 0: {  // reseed: new oracle histories + residual schedule
      g.seed = rng_.next();
      break;
    }
    case 1: {  // crash-gene edit
      if (g.crashes.empty()) {
        g.crashes.assign(static_cast<std::size_t>(t.n), kNeverCrashes);
      }
      const auto p = rng_.below(static_cast<std::uint64_t>(t.n));
      if (g.crashes[p] == kNeverCrashes) {
        // Crash p — unless it is the last correct process.
        if (count_correct(g.crashes) > 1) g.crashes[p] = rng_.range(1, horizon);
      } else if (rng_.chance(1, 2)) {
        g.crashes[p] = kNeverCrashes;  // revive
      } else {
        g.crashes[p] = rng_.range(1, horizon);  // move the crash
      }
      // Canonical form: "nobody crashes" is the empty vector (an all-never
      // vector serializes without crash lines and would not round-trip).
      if (count_correct(g.crashes) == g.crashes.size()) g.crashes.clear();
      break;
    }
    case 2: {  // append a block of delivery genes
      const std::size_t block = 1 + rng_.below(64);
      for (std::size_t i = 0;
           i < block && g.deliveries.size() < kMaxDeliveryGenes; ++i) {
        const std::uint64_t r = rng_.below(10);
        if (r < 3) {
          g.deliveries.push_back(kInjectDefer);
        } else if (r < 6) {
          g.deliveries.push_back(kInjectLambda);
        } else {
          g.deliveries.push_back(static_cast<std::int32_t>(rng_.below(6)));
        }
      }
      break;
    }
    case 3: {  // rewrite one delivery gene
      if (g.deliveries.empty()) {
        g.deliveries.push_back(static_cast<std::int32_t>(rng_.below(6)));
        break;
      }
      const auto i = rng_.below(g.deliveries.size());
      const std::uint64_t r = rng_.below(10);
      g.deliveries[i] = r < 3   ? kInjectDefer
                        : r < 6 ? kInjectLambda
                                : static_cast<std::int32_t>(rng_.below(6));
      break;
    }
    case 4: {  // truncate the delivery tail
      if (!g.deliveries.empty()) {
        g.deliveries.resize(rng_.below(g.deliveries.size() + 1));
      }
      break;
    }
    case 5: {  // add an FD perturbation gene
      if (g.fd_perturbs.size() >= kMaxPerturbGenes) break;
      FdPerturbGene pg;
      pg.p = static_cast<Pid>(rng_.below(static_cast<std::uint64_t>(t.n)));
      pg.from_t = rng_.range(0, horizon);
      pg.count = 1 + rng_.range(0, 49);
      pg.kind = static_cast<PerturbKind>(rng_.below(4));
      pg.target = static_cast<Pid>(rng_.below(static_cast<std::uint64_t>(t.n)));
      g.fd_perturbs.push_back(pg);
      break;
    }
    case 6: {  // rewrite one field of one perturbation gene
      if (g.fd_perturbs.empty()) break;
      FdPerturbGene& pg = g.fd_perturbs[rng_.below(g.fd_perturbs.size())];
      switch (rng_.below(4)) {
        case 0:
          pg.p = static_cast<Pid>(rng_.below(static_cast<std::uint64_t>(t.n)));
          break;
        case 1:
          pg.from_t = rng_.range(0, horizon);
          break;
        case 2:
          pg.kind = static_cast<PerturbKind>(rng_.below(4));
          break;
        default:
          pg.target =
              static_cast<Pid>(rng_.below(static_cast<std::uint64_t>(t.n)));
          break;
      }
      break;
    }
    default: {  // remove one perturbation gene
      if (!g.fd_perturbs.empty()) {
        g.fd_perturbs.erase(g.fd_perturbs.begin() +
                            static_cast<std::ptrdiff_t>(
                                rng_.below(g.fd_perturbs.size())));
      }
      break;
    }
  }
}

Bytes Mutator::random_payload(std::size_t max_len) {
  const std::size_t len = rng_.below(max_len + 1);  // boundary inclusive
  Bytes out(len);
  for (std::uint8_t& b : out) b = static_cast<std::uint8_t>(rng_.below(256));
  return out;
}

}  // namespace nucon::fuzz
