// ddmin-style genome minimization.
//
// Given a genome whose execution violates a property and a predicate that
// re-checks the violation, shrink the genome until every remaining gene is
// load-bearing: chunk-resetting over the delivery genes (reset to
// kInjectDefer rather than removed, so later genes keep their step
// positions), list ddmin over the FD perturbation genes, crash-gene
// clearing, and a final single-gene simplification sweep. Every candidate
// is re-validated through the predicate — deterministically, because
// execute_genome is a pure function — so the minimized genome is
// guaranteed to still fail, and a fixpoint loop repeats the passes until
// nothing shrinks.
#pragma once

#include <functional>

#include "fuzz/genome.hpp"

namespace nucon::fuzz {

/// Returns true when the candidate still exhibits the violation being
/// minimized. Generic so unit tests can minimize against synthetic
/// predicates with a known minimal core.
using GenomePredicate = std::function<bool(const Genome&)>;

struct MinimizeStats {
  /// Predicate evaluations (== candidate executions when the predicate
  /// runs execute_genome).
  std::size_t probes = 0;
};

/// Shrinks `g` under `still_fails`. Precondition: still_fails(g) is true;
/// the result also satisfies it. `stats` (optional) accumulates probes.
[[nodiscard]] Genome minimize_genome(const Genome& g,
                                     const GenomePredicate& still_fails,
                                     MinimizeStats* stats = nullptr);

/// Convenience wrapper for real finds: the predicate re-executes the
/// candidate (coverage off) and checks it still yields `violation`.
[[nodiscard]] Genome minimize_violation(const Genome& g,
                                        const std::string& violation,
                                        MinimizeStats* stats = nullptr);

}  // namespace nucon::fuzz
