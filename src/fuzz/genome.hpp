// The schedule genome: a compact, mutable encoding of one adversary
// strategy against one target algorithm.
//
// The randomized scheduler samples admissible runs from a seed; the model
// checker enumerates every schedule of a tiny system. The fuzzer sits
// between them: a genome pins the *interesting* scheduling decisions —
// per-step delivery choices (via SchedulerOptions::inject_delivery), crash
// times, and scripted perturbations of the failure-detector outputs —
// while everything the genome leaves open still comes from the seeded
// policy. Executing a genome is therefore a pure function: same bytes in,
// same run, same verdict, same coverage, on any thread of any machine.
// That purity is what makes mutation, corpus replay, and ddmin
// minimization (fuzz/minimize.hpp) trustworthy.
//
// Genomes serialize to a line-oriented text format ("nucon-genome v1",
// see to_string) so minimized counterexamples can be committed under
// tests/corpus/ and diffed by humans.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/model_checker.hpp"
#include "exp/sweep.hpp"

namespace nucon::fuzz {

/// What the genome runs against: the algorithm plus the fixed system
/// parameters the mutator never touches (the adversary mutates *within*
/// this arena).
struct TargetSpec {
  exp::Algo algo = exp::Algo::kNaive;
  Pid n = 4;
  /// Oracle stabilization time (same meaning as SweepPoint::stabilize).
  Time stabilize = 120;
  FaultyQuorumBehavior faulty_mode = FaultyQuorumBehavior::kAdversarialDisjoint;
  /// Per-execution step cap. Small by design: the fuzzer wants many short
  /// runs, and minimized counterexamples are short by construction.
  std::int64_t max_steps = 20'000;

  friend bool operator==(const TargetSpec&, const TargetSpec&) = default;
};

/// How one FD perturbation gene rewrites the oracle's answer.
enum class PerturbKind {
  kLeader,       // leader := target
  kQuorumDrop,   // quorum := quorum - {target}
  kQuorumAdd,    // quorum := quorum + {target}
  kSuspectFlip,  // suspects := suspects xor {target}
};

/// Rewrites the FD output of process `p` for every query with global time
/// in [from_t, from_t + count). Perturbations step OUTSIDE the detector's
/// specification on purpose — they model a detector misbehaving — so a
/// violation found on a spec-respecting algorithm is only meaningful when
/// the minimized genome carries no perturbation genes (the minimizer
/// drops every gene the violation does not need).
struct FdPerturbGene {
  Pid p = 0;
  Time from_t = 0;
  Time count = 1;
  PerturbKind kind = PerturbKind::kLeader;
  Pid target = 0;

  friend bool operator==(const FdPerturbGene&, const FdPerturbGene&) = default;
};

/// One adversary strategy. Delivery genes are indexed by *global step
/// count* — the scheduler consults gene k at its k-th live-process step,
/// whether or not messages are pending — so resetting a gene to
/// kInjectDefer never shifts the meaning of later genes (the property the
/// chunk-reset ddmin relies on). Steps beyond the gene vector fall back to
/// the seeded policy.
struct Genome {
  TargetSpec target;
  /// Seeds the oracle stack and the residual (non-injected) scheduler
  /// policy; same offsets as the sweep engine via exp::AlgoOracles.
  std::uint64_t seed = 1;
  /// Crash-time gene per process; kNeverCrashes = correct. Empty means
  /// all correct. At least one process is always kept correct.
  std::vector<Time> crashes;
  std::vector<FdPerturbGene> fd_perturbs;
  /// Per-step delivery genes: kInjectDefer, kInjectLambda, or an index
  /// (taken modulo the pending count at that step).
  std::vector<std::int32_t> deliveries;
  /// Expected outcome, for committed corpus entries: "ok" or a violation
  /// kind ("validity", "nonuniform", "uniform"). Empty = unspecified;
  /// serialized only when set. Not part of the executed strategy.
  std::string expected;

  friend bool operator==(const Genome&, const Genome&) = default;

  /// "nucon-genome v1" text; parse() round-trips it exactly.
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<Genome> parse(const std::string& text);
};

/// The failure pattern a genome's crash genes denote.
[[nodiscard]] FailurePattern failure_pattern_of(const Genome& g);

struct ExecOptions {
  /// Hash every stepping automaton's complete state into the per-run
  /// coverage key set (the expensive part of an execution; the minimizer
  /// turns it off).
  bool collect_coverage = true;
  /// Record a full JSONL trace (steps/sends/delivers/oracle/decides) into
  /// ExecutionResult::trace_jsonl. Off, only decide events are recorded —
  /// enough for the divergence signal at near-zero cost.
  bool full_trace = false;
};

/// What one execution produced: the verdict and the coverage signal.
struct ExecutionResult {
  ConsensusRunStats stats;
  /// Sorted, deduplicated per-process state keys touched by the run
  /// (model checker's 128-bit double-mix; empty when coverage is off).
  std::vector<StateKey128> state_keys;
  /// Canonical description of the first agreement divergence, or empty.
  /// New shapes are a coverage signal alongside new state keys.
  std::string divergence_shape;
  /// "" (no violation), "validity", "nonuniform", or "uniform". Uniform
  /// disagreement only counts as a violation for algorithms expected to
  /// solve uniform consensus — for A_nuc/StackedNuc it is the paper's
  /// point, not a bug. Termination failures are never violations (the
  /// injected schedule may simply starve the run).
  std::string violation;
  /// The JSONL trace (decides-only, or full when requested).
  std::string trace_jsonl;
};

/// Executes a genome deterministically. Throws std::invalid_argument for
/// an infeasible target (n out of range, max_steps <= 0, bad crash vector).
[[nodiscard]] ExecutionResult execute_genome(const Genome& g,
                                             const ExecOptions& opts = {});

}  // namespace nucon::fuzz
