#include "fuzz/engine.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>

#include "exp/thread_pool.hpp"
#include "fuzz/coverage.hpp"
#include "fuzz/mutator.hpp"

namespace nucon::fuzz {
namespace {

std::string counts_of(const Genome& g) {
  std::size_t crashes = 0;
  for (Time c : g.crashes) crashes += (c != kNeverCrashes);
  std::ostringstream os;
  os << g.deliveries.size() << "d/" << g.fd_perturbs.size() << "p/" << crashes
     << "c";
  return os.str();
}

}  // namespace

FuzzResult run_fuzz(const EngineOptions& opts) {
  const auto started = std::chrono::steady_clock::now();
  const auto out_of_time = [&opts, started] {
    if (opts.time_budget_seconds <= 0.0) return false;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
               .count() >= opts.time_budget_seconds;
  };

  Rng master(opts.master_seed);
  CoverageMap coverage;
  FuzzResult result;
  exp::ThreadPool pool(opts.threads);

  // ---- candidate generation (always serial, master-Rng driven) ---------
  std::vector<Genome> batch;
  bool seeded = false;
  const auto next_batch = [&]() {
    batch.clear();
    if (!seeded) {
      seeded = true;
      Genome base;
      base.target = opts.target;
      base.seed = master.next();
      batch.push_back(base);  // the pure seeded-policy run
      Mutator m(master.next());
      for (std::size_t i = 0; i < opts.seed_genomes; ++i) {
        batch.push_back(m.random_genome(opts.target));
      }
      return;
    }
    for (std::size_t i = 0; i < opts.batch_size; ++i) {
      const std::size_t parent = result.corpus.empty()
                                     ? 0
                                     : master.below(result.corpus.size());
      const std::uint64_t child_seed = master.next();
      Mutator m(child_seed);
      batch.push_back(result.corpus.empty()
                          ? m.random_genome(opts.target)
                          : m.mutate(result.corpus[parent]));
    }
  };

  // ---- fuzzing loop: parallel execute, serial merge in batch order -----
  while (result.stats.execs < opts.max_execs &&
         result.finds.size() < opts.max_finds && !out_of_time()) {
    next_batch();
    if (result.stats.execs + batch.size() > opts.max_execs) {
      batch.resize(opts.max_execs - result.stats.execs);
    }
    if (batch.empty()) break;

    std::vector<std::future<ExecutionResult>> done;
    done.reserve(batch.size());
    for (const Genome& g : batch) {
      done.push_back(pool.submit([&g] { return execute_genome(g); }));
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const ExecutionResult exec = done[i].get();
      const std::size_t exec_index = result.stats.execs++;

      const std::size_t fresh_states = coverage.add_states(exec.state_keys);
      const bool fresh_shape =
          coverage.add_divergence_shape(exec.divergence_shape);

      if (!exec.violation.empty() && result.finds.size() < opts.max_finds) {
        bool duplicate = false;
        for (const Find& f : result.finds) {
          duplicate = duplicate || (f.violation == exec.violation &&
                                    f.divergence_shape ==
                                        exec.divergence_shape);
        }
        if (!duplicate) {
          Find f;
          f.genome = batch[i];
          f.minimized = batch[i];
          f.violation = exec.violation;
          f.divergence_shape = exec.divergence_shape;
          f.exec_index = exec_index;
          result.finds.push_back(std::move(f));
        }
      }
      if (fresh_states > 0 || fresh_shape || !exec.violation.empty()) {
        result.corpus.push_back(batch[i]);
      }
    }
    // The corpus must never be empty once something ran; without it the
    // mutation loop has no parents. (Only reachable when no automaton in
    // the target supports state encoding AND nothing diverged.)
    if (result.corpus.empty()) result.corpus.push_back(batch.front());
    result.stats.coverage_curve.push_back({result.stats.execs,
                                           coverage.unique_states(),
                                           result.corpus.size()});
  }

  // ---- minimization (serial, after the campaign) -----------------------
  if (opts.minimize) {
    for (Find& f : result.finds) {
      MinimizeStats ms;
      f.minimized = minimize_violation(f.genome, f.violation, &ms);
      result.stats.minimize_probes += ms.probes;
    }
  }

  result.stats.corpus_size = result.corpus.size();
  result.stats.unique_states = coverage.unique_states();
  result.stats.divergence_shapes = coverage.divergence_shapes();
  result.stats.finds = result.finds.size();
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return result;
}

obs::BenchReport fuzz_report(const EngineOptions& opts,
                             const FuzzResult& result) {
  obs::BenchReport report;
  report.name = "fuzz";

  obs::TableSection campaign;
  campaign.title = "campaign algo=" + std::string(exp::algo_name(
                       opts.target.algo)) +
                   " n=" + std::to_string(opts.target.n) +
                   " master-seed=" + std::to_string(opts.master_seed);
  campaign.headers = {"metric", "value"};
  const FuzzStats& s = result.stats;
  campaign.rows = {
      {"execs", std::to_string(s.execs)},
      {"corpus", std::to_string(s.corpus_size)},
      {"unique_states", std::to_string(s.unique_states)},
      {"divergence_shapes", std::to_string(s.divergence_shapes)},
      {"finds", std::to_string(s.finds)},
      {"minimize_probes", std::to_string(s.minimize_probes)},
  };
  report.tables.push_back(std::move(campaign));

  obs::TableSection curve;
  curve.title = "coverage over execs";
  curve.headers = {"execs", "unique_states", "corpus"};
  // Downsample long campaigns to ~32 evenly spaced rows (deterministic:
  // pure index arithmetic), always keeping the final row.
  const std::size_t points = result.stats.coverage_curve.size();
  const std::size_t stride = points <= 32 ? 1 : (points + 31) / 32;
  for (std::size_t i = 0; i < points; i += stride) {
    const auto& c = result.stats.coverage_curve[i];
    curve.rows.push_back({std::to_string(c[0]), std::to_string(c[1]),
                          std::to_string(c[2])});
  }
  if (points > 0 && (points - 1) % stride != 0) {
    const auto& c = result.stats.coverage_curve[points - 1];
    curve.rows.push_back({std::to_string(c[0]), std::to_string(c[1]),
                          std::to_string(c[2])});
  }
  report.tables.push_back(std::move(curve));

  obs::TableSection finds;
  finds.title = "finds";
  finds.headers = {"find", "violation", "shape", "exec",
                   "genes",  "min-genes"};
  for (std::size_t k = 0; k < result.finds.size(); ++k) {
    const Find& f = result.finds[k];
    finds.rows.push_back({std::to_string(k), f.violation, f.divergence_shape,
                          std::to_string(f.exec_index), counts_of(f.genome),
                          counts_of(f.minimized)});
  }
  report.tables.push_back(std::move(finds));
  return report;
}

bool write_artifacts(const FuzzResult& result, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  const auto write = [&dir](const std::string& name, const std::string& body) {
    std::ofstream f(dir + "/" + name, std::ios::binary | std::ios::trunc);
    f << body;
    return f.good();
  };

  bool ok = true;
  for (std::size_t i = 0; i < result.corpus.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "cov-%04zu.genome", i);
    ok = write(name, result.corpus[i].to_string()) && ok;
  }
  for (std::size_t k = 0; k < result.finds.size(); ++k) {
    const Find& f = result.finds[k];
    const std::string base = "find-" + std::to_string(k);
    ok = write(base + ".genome", f.genome.to_string()) && ok;
    ok = write(base + ".min.genome", f.minimized.to_string()) && ok;
    ExecOptions eo;
    eo.collect_coverage = false;
    eo.full_trace = true;
    ok = write(base + ".trace.jsonl",
               execute_genome(f.minimized, eo).trace_jsonl) &&
         ok;
  }
  return ok;
}

}  // namespace nucon::fuzz
