// The corpus admission signal: which states and divergence shapes the
// campaign has already seen.
//
// A genome earns a corpus slot by reaching a per-process state key the
// model checker's 128-bit double-mix has not fingerprinted before, or an
// agreement-divergence shape find_divergence has not reported before.
// Both sets are ordered containers updated only in the engine's serial
// merge, so the admission decisions — and therefore the corpus — are a
// pure function of the candidate order.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "check/model_checker.hpp"

namespace nucon::fuzz {

class CoverageMap {
 public:
  /// Merges one execution's (sorted, deduplicated) key set; returns how
  /// many keys were new.
  std::size_t add_states(const std::vector<StateKey128>& keys) {
    std::size_t fresh = 0;
    for (const StateKey128& k : keys) fresh += states_.insert(k).second;
    return fresh;
  }

  /// True when the shape is new (empty shapes never count).
  bool add_divergence_shape(const std::string& shape) {
    if (shape.empty()) return false;
    return shapes_.insert(shape).second;
  }

  [[nodiscard]] std::size_t unique_states() const { return states_.size(); }
  [[nodiscard]] std::size_t divergence_shapes() const {
    return shapes_.size();
  }

 private:
  std::set<StateKey128> states_;
  std::set<std::string> shapes_;
};

}  // namespace nucon::fuzz
