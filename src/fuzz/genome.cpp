#include "fuzz/genome.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "algo/harness.hpp"
#include "fd/failure_detector.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_recorder.hpp"

namespace nucon::fuzz {
namespace {

const char* mode_name(FaultyQuorumBehavior b) {
  switch (b) {
    case FaultyQuorumBehavior::kBenign:
      return "benign";
    case FaultyQuorumBehavior::kNoise:
      return "noise";
    default:
      return "adversarial";
  }
}

std::optional<FaultyQuorumBehavior> parse_mode(const std::string& s) {
  if (s == "benign") return FaultyQuorumBehavior::kBenign;
  if (s == "noise") return FaultyQuorumBehavior::kNoise;
  if (s == "adversarial") return FaultyQuorumBehavior::kAdversarialDisjoint;
  return std::nullopt;
}

const char* kind_name(PerturbKind k) {
  switch (k) {
    case PerturbKind::kLeader:
      return "leader";
    case PerturbKind::kQuorumDrop:
      return "quorum-drop";
    case PerturbKind::kQuorumAdd:
      return "quorum-add";
    case PerturbKind::kSuspectFlip:
      return "suspect-flip";
  }
  return "leader";
}

std::optional<PerturbKind> parse_kind(const std::string& s) {
  if (s == "leader") return PerturbKind::kLeader;
  if (s == "quorum-drop") return PerturbKind::kQuorumDrop;
  if (s == "quorum-add") return PerturbKind::kQuorumAdd;
  if (s == "suspect-flip") return PerturbKind::kSuspectFlip;
  return std::nullopt;
}

void validate(const Genome& g) {
  const TargetSpec& t = g.target;
  if (t.n < 2 || t.n > kMaxProcesses || t.max_steps <= 0) {
    throw std::invalid_argument("infeasible fuzz target");
  }
  if (!g.crashes.empty()) {
    if (g.crashes.size() != static_cast<std::size_t>(t.n)) {
      throw std::invalid_argument("crash gene vector must have size n");
    }
    bool any_correct = false;
    for (Time c : g.crashes) {
      if (c == kNeverCrashes) {
        any_correct = true;
      } else if (c < 0) {
        throw std::invalid_argument("crash time must be >= 0");
      }
    }
    if (!any_correct) {
      throw std::invalid_argument("at least one process must stay correct");
    }
  }
}

/// Applies the genome's perturbation genes on top of the canonical oracle
/// stack. Still a fixed history: value(p, t) is a pure function.
class PerturbedOracle final : public Oracle {
 public:
  PerturbedOracle(Oracle& base, const std::vector<FdPerturbGene>& genes, Pid n)
      : base_(base), genes_(genes), n_(n) {}

  [[nodiscard]] FdValue value(Pid p, Time t) override {
    FdValue v = base_.value(p, t);
    for (const FdPerturbGene& g : genes_) {
      if (g.p != p || t < g.from_t || t >= g.from_t + g.count) continue;
      const Pid tgt = static_cast<Pid>(
          ((g.target % n_) + n_) % n_);  // any int gene maps into [0, n)
      switch (g.kind) {
        case PerturbKind::kLeader:
          v.set_leader(tgt);
          break;
        case PerturbKind::kQuorumDrop:
          if (v.has_quorum()) {
            ProcessSet q = v.quorum();
            q.erase(tgt);
            v.set_quorum(q);
          }
          break;
        case PerturbKind::kQuorumAdd:
          if (v.has_quorum()) {
            ProcessSet q = v.quorum();
            q.insert(tgt);
            v.set_quorum(q);
          }
          break;
        case PerturbKind::kSuspectFlip:
          if (v.has_suspects()) {
            ProcessSet s = v.suspects();
            if (s.contains(tgt)) {
              s.erase(tgt);
            } else {
              s.insert(tgt);
            }
            v.set_suspects(s);
          }
          break;
      }
    }
    return v;
  }

 private:
  Oracle& base_;
  const std::vector<FdPerturbGene>& genes_;
  Pid n_;
};

std::string artifact_of(const Genome& g) {
  std::ostringstream os;
  os << "fuzz algo=" << exp::algo_name(g.target.algo) << " n=" << g.target.n
     << " stab=" << g.target.stabilize << " mode="
     << mode_name(g.target.faulty_mode) << " steps=" << g.target.max_steps
     << " seed=" << g.seed << " genes=" << g.deliveries.size() << "+"
     << g.fd_perturbs.size();
  return os.str();
}

std::string shape_of(const trace::DivergenceReport& report) {
  const trace::Divergence& d =
      report.nonuniform.found ? report.nonuniform : report.uniform;
  if (!d.found) return {};
  std::ostringstream os;
  os << (report.nonuniform.found ? "nonuniform" : "uniform") << " p" << d.p
     << "=" << d.value << " vs p" << d.earlier_p << "=" << d.earlier_value;
  return os.str();
}

}  // namespace

std::string Genome::to_string() const {
  std::ostringstream os;
  os << "nucon-genome v1\n";
  os << "algo " << exp::algo_name(target.algo) << "\n";
  os << "n " << target.n << "\n";
  os << "stabilize " << target.stabilize << "\n";
  os << "mode " << mode_name(target.faulty_mode) << "\n";
  os << "max-steps " << target.max_steps << "\n";
  os << "seed " << seed << "\n";
  if (!crashes.empty()) {
    for (Pid p = 0; p < target.n; ++p) {
      const Time c = crashes[static_cast<std::size_t>(p)];
      if (c != kNeverCrashes) os << "crash " << p << " " << c << "\n";
    }
  }
  for (const FdPerturbGene& g : fd_perturbs) {
    os << "perturb " << g.p << " " << g.from_t << " " << g.count << " "
       << kind_name(g.kind) << " " << g.target << "\n";
  }
  if (!deliveries.empty()) {
    os << "deliveries";
    for (std::int32_t d : deliveries) os << " " << d;
    os << "\n";
  }
  if (!expected.empty()) os << "expected " << expected << "\n";
  os << "end\n";
  return os.str();
}

std::optional<Genome> Genome::parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "nucon-genome v1") return std::nullopt;

  Genome g;
  g.crashes.clear();
  bool saw_end = false;
  std::vector<std::pair<Pid, Time>> crash_genes;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "algo") {
      std::string name;
      ls >> name;
      const auto a = exp::parse_algo(name);
      if (!a) return std::nullopt;
      g.target.algo = *a;
    } else if (key == "n") {
      int n = 0;
      if (!(ls >> n) || n < 2 || n > kMaxProcesses) return std::nullopt;
      g.target.n = static_cast<Pid>(n);
    } else if (key == "stabilize") {
      if (!(ls >> g.target.stabilize)) return std::nullopt;
    } else if (key == "mode") {
      std::string name;
      ls >> name;
      const auto m = parse_mode(name);
      if (!m) return std::nullopt;
      g.target.faulty_mode = *m;
    } else if (key == "max-steps") {
      if (!(ls >> g.target.max_steps) || g.target.max_steps <= 0) {
        return std::nullopt;
      }
    } else if (key == "seed") {
      if (!(ls >> g.seed)) return std::nullopt;
    } else if (key == "crash") {
      int p = 0;
      Time c = 0;
      if (!(ls >> p >> c) || c < 0) return std::nullopt;
      crash_genes.emplace_back(static_cast<Pid>(p), c);
    } else if (key == "perturb") {
      FdPerturbGene pg;
      std::string kind;
      int p = 0, target = 0;
      if (!(ls >> p >> pg.from_t >> pg.count >> kind >> target)) {
        return std::nullopt;
      }
      const auto k = parse_kind(kind);
      if (!k || pg.count <= 0) return std::nullopt;
      pg.p = static_cast<Pid>(p);
      pg.target = static_cast<Pid>(target);
      pg.kind = *k;
      g.fd_perturbs.push_back(pg);
    } else if (key == "deliveries") {
      std::int32_t d = 0;
      while (ls >> d) g.deliveries.push_back(d);
    } else if (key == "expected") {
      ls >> g.expected;
    } else {
      return std::nullopt;
    }
  }
  if (!saw_end) return std::nullopt;
  if (!crash_genes.empty()) {
    g.crashes.assign(static_cast<std::size_t>(g.target.n), kNeverCrashes);
    for (const auto& [p, c] : crash_genes) {
      if (p < 0 || p >= g.target.n) return std::nullopt;
      g.crashes[static_cast<std::size_t>(p)] = c;
    }
  }
  for (const FdPerturbGene& pg : g.fd_perturbs) {
    if (pg.p < 0 || pg.p >= g.target.n) return std::nullopt;
  }
  try {
    validate(g);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  return g;
}

FailurePattern failure_pattern_of(const Genome& g) {
  validate(g);
  FailurePattern fp(g.target.n);
  if (!g.crashes.empty()) {
    for (Pid p = 0; p < g.target.n; ++p) {
      const Time c = g.crashes[static_cast<std::size_t>(p)];
      if (c != kNeverCrashes) fp.set_crash(p, c);
    }
  }
  return fp;
}

ExecutionResult execute_genome(const Genome& g, const ExecOptions& eopts) {
  validate(g);
  const TargetSpec& t = g.target;
  const FailurePattern fp = failure_pattern_of(g);

  exp::AlgoOracles oracles(t.algo, fp, t.stabilize, t.faulty_mode, g.seed);
  PerturbedOracle oracle(oracles.top(), g.fd_perturbs, t.n);

  std::vector<Value> proposals(static_cast<std::size_t>(t.n));
  for (Pid p = 0; p < t.n; ++p) proposals[static_cast<std::size_t>(p)] = p % 2;

  SchedulerOptions opts;
  opts.seed = g.seed;
  opts.max_steps = t.max_steps;
  opts.record_run = false;

  // Delivery genes are consumed one per live-process step, in step order.
  std::size_t gene_cursor = 0;
  if (!g.deliveries.empty()) {
    opts.inject_delivery = [&g, &gene_cursor](Pid, Time, std::size_t) {
      const std::size_t i = gene_cursor++;
      return i < g.deliveries.size() ? static_cast<int>(g.deliveries[i])
                                     : kInjectDefer;
    };
  }

  ExecutionResult result;

  // Coverage: complete state of the stepping automaton, hashed with the
  // model checker's double-mix and salted by the process id.
  ByteWriter scratch;
  if (eopts.collect_coverage) {
    opts.on_step = [&result, &scratch](
                       const StepRecord& rec,
                       const std::vector<std::unique_ptr<Automaton>>& autos) {
      const Automaton& a = *autos[static_cast<std::size_t>(rec.p)];
      scratch.reset();
      if (a.save_state(scratch)) {
        result.state_keys.push_back(
            process_state_key(rec.p, state_key128(scratch.buffer())));
      } else if (const auto snap = a.snapshot()) {
        result.state_keys.push_back(
            process_state_key(rec.p, state_key128(*snap)));
      }
    };
  }

  trace::RecorderOptions ro;
  if (!eopts.full_trace) {
    // Decides only: the divergence signal needs nothing else, and decide
    // events are rare, so tracing every execution stays near free.
    ro.steps = ro.oracle_queries = ro.sends = ro.delivers = false;
  }
  trace::TraceRecorder recorder(ro);
  recorder.begin_run(fp, artifact_of(g),
                     exp::expect_name(exp::expectation(t.algo)));
  opts.trace = &recorder;

  result.stats =
      run_consensus(fp, oracle, consensus_factory_of(t.algo, t.n, g.seed),
                    proposals, opts);

  const ConsensusVerdict& v = result.stats.verdict;
  recorder.annotate(
      std::string("{\"k\":\"verdict\",\"termination\":") +
      (v.termination ? "true" : "false") + ",\"validity\":" +
      (v.validity ? "true" : "false") + ",\"nonuniform_agreement\":" +
      (v.nonuniform_agreement ? "true" : "false") + ",\"uniform_agreement\":" +
      (v.uniform_agreement ? "true" : "false") + "}");
  result.trace_jsonl = recorder.jsonl();

  std::sort(result.state_keys.begin(), result.state_keys.end());
  result.state_keys.erase(
      std::unique(result.state_keys.begin(), result.state_keys.end()),
      result.state_keys.end());

  if (const auto parsed = trace::parse_trace(result.trace_jsonl)) {
    result.divergence_shape = shape_of(trace::find_divergence(*parsed));
  }

  if (!v.validity) {
    result.violation = "validity";
  } else if (!v.nonuniform_agreement) {
    result.violation = "nonuniform";
  } else if (!v.uniform_agreement &&
             exp::expectation(t.algo) == exp::Expect::kUniform) {
    result.violation = "uniform";
  }
  return result;
}

}  // namespace nucon::fuzz
