#include "smr/replicated_log.hpp"

#include <algorithm>
#include <cassert>

namespace nucon {
namespace {

constexpr std::uint8_t kFrameInner = 0;
constexpr std::uint8_t kFrameDecided = 1;
constexpr std::uint8_t kFrameSubmit = 2;

/// Proposed when a process knows no uncommitted command: committed no-ops
/// are skipped by clients and permitted by the checker.
constexpr Value kNoop = 0;

Bytes frame_decided(int instance, Value v) {
  ByteWriter w;
  w.u8(kFrameDecided);
  w.uvarint(static_cast<std::uint64_t>(instance));
  w.svarint(v);
  return w.take();
}

}  // namespace

ReplicatedLog::ReplicatedLog(Pid self, Pid n, std::vector<Value> commands,
                             ConsensusFactory engine,
                             bool trust_decided_catchup)
    : self_(self), n_(n), engine_(std::move(engine)),
      trust_decided_catchup_(trust_decided_catchup),
      pending_(commands.begin(), commands.end()) {
  assert(n_ >= 2 && self_ >= 0 && self_ < n_);
  pool_.insert(pending_.begin(), pending_.end());
}

bool ReplicatedLog::all_submitted_committed() const {
  return pending_.empty();
}

Value ReplicatedLog::next_proposal() const {
  for (Value v : pool_) {
    if (!committed_.contains(v)) return v;
  }
  return kNoop;
}

void ReplicatedLog::append_decision(Value v) {
  // Two instances can decide the same command when proposers race; every
  // replica applies the same canonical transform (second decision becomes
  // a no-op), so logs stay identical and duplicate-free.
  if (v != kNoop && committed_.contains(v)) v = kNoop;
  log_.push_back(v);
  if (v != kNoop) committed_.insert(v);
  const auto pos = std::find(pending_.begin(), pending_.end(), v);
  if (pos != pending_.end()) pending_.erase(pos);
}

void ReplicatedLog::commit(Value v, std::vector<Outgoing>& out) {
  append_decision(v);
  if (trust_decided_catchup_) {
    // Unblock any replica still inside (or not yet at) this instance.
    broadcast(n_, frame_decided(instance_, v), out);
  } else {
    // Keep the decided instance serving laggards; it advances only when a
    // message for it arrives.
    retired_.emplace(instance_, std::move(current_));
  }
  open_instance(out);
}

void ReplicatedLog::open_instance(std::vector<Outgoing>& out) {
  while (true) {
    ++instance_;

    // A DECIDED for this instance may already be cached: apply without
    // running the engine at all.
    if (const auto cached = decided_cache_.find(instance_);
        cached != decided_cache_.end()) {
      const Value v = cached->second;
      decided_cache_.erase(cached);
      future_.erase(instance_);
      append_decision(v);
      continue;
    }

    current_ = engine_(self_, next_proposal());

    // Feed messages that arrived for this instance before we opened it.
    const auto it = future_.find(instance_);
    if (it != future_.end()) {
      for (const auto& [from, payload] : it->second) {
        instance_sends_.clear();
        const Incoming in{from, &payload};
        current_->step(&in, FdValue{}, instance_sends_);
        frame_instance_sends(instance_, out);
      }
      future_.erase(it);
    }
    return;
  }
}

void ReplicatedLog::step_instance(const Incoming* in, const FdValue& d,
                                  std::vector<Outgoing>& out) {
  instance_sends_.clear();
  current_->step(in, d, instance_sends_);
  frame_instance_sends(instance_, out);
}

void ReplicatedLog::frame_instance_sends(int k, std::vector<Outgoing>& out) {
  reframe_sends(instance_sends_, frame_scratch_,
                [k](ByteWriter& w, const Bytes& payload) {
                  w.u8(kFrameInner);
                  w.uvarint(static_cast<std::uint64_t>(k));
                  w.bytes(payload);
                },
                out);
}

void ReplicatedLog::step(const Incoming* in, const FdValue& d,
                         std::vector<Outgoing>& out) {
  if (!announced_) {
    // Client-request dissemination: one SUBMIT broadcast with the whole
    // stream, so every replica's pool (and hence every leader's
    // proposals) eventually covers every command.
    announced_ = true;
    ByteWriter w;
    w.u8(kFrameSubmit);
    w.uvarint(pending_.size());
    for (Value v : pending_) w.svarint(v);
    broadcast(n_, w.take(), out);
  }
  if (instance_ == 0) open_instance(out);

  // Route the received frame, if any.
  const Incoming* for_current = nullptr;
  Incoming inner;
  Bytes inner_payload;
  if (in != nullptr) {
    ByteReader r(*in->payload);
    const auto type = r.u8();
    if (type && *type == kFrameSubmit) {
      if (const auto count = r.uvarint(); count && *count <= r.remaining()) {
        for (std::uint64_t i = 0; i < *count; ++i) {
          const auto v = r.svarint();
          if (!v) break;
          if (*v != kNoop) pool_.insert(*v);
        }
      }
    } else if (type) {
      const auto inst = r.uvarint();
      if (inst) {
        const int k = static_cast<int>(*inst);
        if (*type == kFrameInner) {
          if (auto payload = r.bytes(); payload && r.done()) {
            if (k == instance_) {
              inner_payload = std::move(*payload);
              inner = Incoming{in->from, &inner_payload};
              for_current = &inner;
            } else if (k > instance_) {
              future_[k].push_back({in->from, std::move(*payload)});
            } else if (trust_decided_catchup_ && k >= 1 &&
                       static_cast<std::size_t>(k) <= log_.size()) {
              // We already finished instance k; short-circuit the sender.
              out.push_back(
                  {in->from,
                   frame_decided(k, log_[static_cast<std::size_t>(k - 1)])});
            } else if (const auto retired = retired_.find(k);
                       retired != retired_.end()) {
              // No-catch-up mode: the retired instance keeps serving,
              // driven by the laggard's traffic and this step's real
              // detector value.
              instance_sends_.clear();
              const Incoming old{in->from, &*payload};
              retired->second->step(&old, d, instance_sends_);
              frame_instance_sends(k, out);
            }
          }
        } else if (*type == kFrameDecided && trust_decided_catchup_) {
          if (const auto v = r.svarint(); v && r.done()) {
            if (k == instance_) {
              append_decision(*v);
              open_instance(out);
            } else if (k > instance_) {
              decided_cache_.emplace(k, *v);
            }
          }
        }
      }
    }
  }

  step_instance(for_current, d, out);

  if (const auto decision = current_->decision()) {
    commit(*decision, out);
  }
}

AutomatonFactory make_replicated_log(
    Pid n, std::vector<std::vector<Value>> command_streams,
    ConsensusFactory engine, bool trust_decided_catchup) {
  assert(command_streams.size() == static_cast<std::size_t>(n));
  return [n, command_streams, engine, trust_decided_catchup](Pid p) {
    return std::make_unique<ReplicatedLog>(
        p, n, command_streams[static_cast<std::size_t>(p)], engine,
        trust_decided_catchup);
  };
}

LogVerdict check_logs(const FailurePattern& fp,
                      const std::vector<std::unique_ptr<Automaton>>& automata,
                      const std::vector<std::vector<Value>>& command_streams) {
  LogVerdict verdict;
  verdict.correct_prefix_consistent = true;
  verdict.all_prefix_consistent = true;
  verdict.only_submitted = true;
  verdict.no_duplicates = true;
  const auto note = [&verdict](std::string why) {
    if (verdict.detail.empty()) verdict.detail = std::move(why);
  };

  std::vector<const std::vector<Value>*> logs;
  for (const auto& a : automata) {
    const auto* replica = dynamic_cast<const ReplicatedLog*>(a.get());
    logs.push_back(replica != nullptr ? &replica->log() : nullptr);
  }

  std::vector<Value> submitted;
  for (const auto& stream : command_streams) {
    submitted.insert(submitted.end(), stream.begin(), stream.end());
  }

  const Pid n = fp.n();
  for (Pid p = 0; p < n; ++p) {
    if (logs[static_cast<std::size_t>(p)] == nullptr) continue;
    const auto& log = *logs[static_cast<std::size_t>(p)];

    std::vector<Value> seen;
    for (Value v : log) {
      if (v == kNoop) continue;
      if (std::find(submitted.begin(), submitted.end(), v) == submitted.end()) {
        verdict.only_submitted = false;
        note("replica " + std::to_string(p) + " committed unsubmitted " +
             std::to_string(v));
      }
      if (std::find(seen.begin(), seen.end(), v) != seen.end()) {
        verdict.no_duplicates = false;
        note("replica " + std::to_string(p) + " committed " +
             std::to_string(v) + " twice");
      }
      seen.push_back(v);
    }

    for (Pid q = static_cast<Pid>(p + 1); q < n; ++q) {
      if (logs[static_cast<std::size_t>(q)] == nullptr) continue;
      const auto& other = *logs[static_cast<std::size_t>(q)];
      const std::size_t common = std::min(log.size(), other.size());
      for (std::size_t i = 0; i < common; ++i) {
        if (log[i] == other[i]) continue;
        verdict.all_prefix_consistent = false;
        if (fp.is_correct(p) && fp.is_correct(q)) {
          verdict.correct_prefix_consistent = false;
          note("correct replicas " + std::to_string(p) + "/" +
               std::to_string(q) + " diverge at index " + std::to_string(i));
        } else {
          note("replicas " + std::to_string(p) + "/" + std::to_string(q) +
               " (one faulty) diverge at index " + std::to_string(i));
        }
        break;
      }
    }
  }
  return verdict;
}

}  // namespace nucon
