// Replicated state machine: a totally ordered command log built from a
// sequence of consensus instances — the canonical downstream use of the
// consensus primitive this library reproduces.
//
// Each process submits its own stream of commands and broadcasts it once
// (client-request dissemination); every replica keeps a pool of known
// commands. Consensus instances run sequentially: in instance k every
// process proposes the smallest known command that is not yet in its log
// (so a stable leader proposes everyone's commands, not only its own);
// the instance's decision is appended to the log. Instance messages are
// framed with the instance id and the inner consensus automata are
// created lazily per instance, so any ConsensusFactory from this library
// can serve as the ordering engine.
//
// Laggard handling is where uniformity bites, and the library implements
// both disciplines:
//
//  * trust_decided_catchup = true (for UNIFORM engines): a replica that
//    decides instance k broadcasts DECIDED(k, v); laggards adopt it
//    directly. Sound only because uniform agreement lets any replica's
//    decision be trusted.
//  * trust_decided_catchup = false (required for NONUNIFORM engines): a
//    faulty-but-alive replica's DECIDED may be wrong, so laggards must
//    not adopt it. Instead, finished instances are retired but kept
//    alive event-driven (stepped only when a message for them arrives),
//    so a laggard completes every instance through its own engine.
//    Bolting the uniform-style catch-up onto a nonuniform engine lets
//    contamination reach CORRECT replicas' logs — the E15 experiment
//    demonstrates it — which is the paper's uniform/nonuniform gap
//    resurfacing one abstraction layer up.
//
// The paper-relevant contrast: with a UNIFORM engine (MR over Sigma) all
// logs — including those of processes that later crash — are pairwise
// prefix-consistent, so clients may trust any replica's answers. With a
// NONUNIFORM engine (A_nuc over Sigma^nu+), only correct replicas' logs
// must agree: a faulty-but-alive replica can commit a divergent entry,
// which check_logs() reports as a (legal!) nonuniform divergence. That is
// exactly why "which consensus does my SMR need" is the uniform/nonuniform
// question.
#pragma once

#include <deque>
#include <map>
#include <set>

#include "sim/automaton.hpp"
#include "sim/failure_pattern.hpp"

namespace nucon {

class ReplicatedLog final : public Automaton {
 public:
  /// `commands`: this process's submission stream (must be unique across
  /// processes; use make_command). `engine`: the consensus factory used
  /// for every instance. Set `trust_decided_catchup` false when the
  /// engine is only nonuniform (see the header comment).
  ReplicatedLog(Pid self, Pid n, std::vector<Value> commands,
                ConsensusFactory engine, bool trust_decided_catchup = true);

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override;

  [[nodiscard]] const std::vector<Value>& log() const { return log_; }
  [[nodiscard]] bool all_submitted_committed() const;
  [[nodiscard]] bool has_committed(Value v) const {
    return committed_.contains(v);
  }
  [[nodiscard]] int instance() const { return instance_; }

 private:
  void open_instance(std::vector<Outgoing>& out);
  void append_decision(Value v);
  void commit(Value v, std::vector<Outgoing>& out);
  /// Runs one step of the current instance's automaton, wrapping sends.
  void step_instance(const Incoming* in, const FdValue& d,
                     std::vector<Outgoing>& out);
  /// Frames instance_sends_ with instance id `k` into `out`, framing each
  /// distinct broadcast payload once and re-sharing the frame.
  void frame_instance_sends(int k, std::vector<Outgoing>& out);
  /// The smallest known command not yet committed, or the no-op.
  [[nodiscard]] Value next_proposal() const;

  const Pid self_;
  const Pid n_;
  const ConsensusFactory engine_;
  const bool trust_decided_catchup_;

  std::deque<Value> pending_;          // own commands not yet committed
  std::set<Value> pool_;               // all known submitted commands
  std::set<Value> committed_;          // commands already in the log
  std::vector<Value> log_;             // committed commands, in order
  int instance_ = 0;                   // current instance (1-based)
  bool announced_ = false;             // own stream broadcast yet?
  std::unique_ptr<ConsensusAutomaton> current_;
  /// Messages that arrived for instances we have not opened yet.
  std::map<int, std::vector<std::pair<Pid, Bytes>>> future_;
  /// DECIDED values received for instances we have not reached yet
  /// (catch-up mode only).
  std::map<int, Value> decided_cache_;
  /// Finished instances kept alive to serve laggards (no-catch-up mode).
  std::map<int, std::unique_ptr<ConsensusAutomaton>> retired_;

  /// Reused per-step scratch: the inner engine's raw sends and the framing
  /// writer (see frame_instance_sends).
  std::vector<Outgoing> instance_sends_;
  ByteWriter frame_scratch_;
};

/// Encodes (client, seq) as a globally unique command value.
[[nodiscard]] constexpr Value make_command(Pid client, int seq) {
  return static_cast<Value>(client) * 1'000'000 + seq;
}

[[nodiscard]] AutomatonFactory make_replicated_log(
    Pid n, std::vector<std::vector<Value>> command_streams,
    ConsensusFactory engine, bool trust_decided_catchup = true);

/// Log consistency verdict over the final replica states.
struct LogVerdict {
  bool correct_prefix_consistent = false;  // nonuniform SMR guarantee
  bool all_prefix_consistent = false;      // uniform SMR guarantee
  bool only_submitted = false;             // validity: no invented entries
  bool no_duplicates = false;              // each command committed once
  std::string detail;
};

[[nodiscard]] LogVerdict check_logs(
    const FailurePattern& fp,
    const std::vector<std::unique_ptr<Automaton>>& automata,
    const std::vector<std::vector<Value>>& command_streams);

}  // namespace nucon
