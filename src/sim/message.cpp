#include "sim/message.hpp"

#include <cassert>

namespace nucon {

void MessageBuffer::add(Message m) {
  assert(m.to >= 0 && m.to < kMaxProcesses);
  const auto to = static_cast<std::size_t>(m.to);
  if (to >= queues_.size()) queues_.resize(to + 1);
  // Send times are the scheduler's global clock, which never moves
  // backwards, so each destination FIFO stays sorted by sent_at and
  // oldest_sent_at can read front() instead of scanning.
  assert(queues_[to].empty() || queues_[to].back().sent_at <= m.sent_at);
  queues_[to].push_back(std::move(m));
  ++total_;
}

std::size_t MessageBuffer::pending_for(Pid q) const {
  assert(q >= 0 && q < kMaxProcesses);
  const auto i = static_cast<std::size_t>(q);
  return i < queues_.size() ? queues_[i].size() : 0;
}

const Message& MessageBuffer::peek(Pid q, std::size_t i) const {
  assert(i < pending_for(q));
  return queues_[static_cast<std::size_t>(q)][i];
}

Message MessageBuffer::take(Pid q, std::size_t i) {
  assert(i < pending_for(q));
  auto& queue = queues_[static_cast<std::size_t>(q)];
  Message m = std::move(queue[i]);
  queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
  --total_;
  return m;
}

std::optional<Message> MessageBuffer::take_by_id(Pid q, MsgId id) {
  if (pending_for(q) == 0) return std::nullopt;
  auto& queue = queues_[static_cast<std::size_t>(q)];
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (queue[i].id == id) return take(q, i);
  }
  return std::nullopt;
}

std::optional<Time> MessageBuffer::oldest_sent_at(Pid q) const {
  if (pending_for(q) == 0) return std::nullopt;
  return queues_[static_cast<std::size_t>(q)].front().sent_at;
}

}  // namespace nucon
