#include "sim/message.hpp"

#include <cassert>

namespace nucon {

void MessageBuffer::add(Message m) {
  assert(m.to >= 0 && m.to < kMaxProcesses);
  queues_[m.to].push_back(std::move(m));
  ++total_;
}

std::size_t MessageBuffer::pending_for(Pid q) const {
  assert(q >= 0 && q < kMaxProcesses);
  return queues_[q].size();
}

const Message& MessageBuffer::peek(Pid q, std::size_t i) const {
  assert(i < pending_for(q));
  return queues_[q][i];
}

Message MessageBuffer::take(Pid q, std::size_t i) {
  assert(i < pending_for(q));
  Message m = std::move(queues_[q][i]);
  queues_[q].erase(queues_[q].begin() + static_cast<std::ptrdiff_t>(i));
  --total_;
  return m;
}

std::optional<Message> MessageBuffer::take_by_id(Pid q, MsgId id) {
  auto& queue = queues_[q];
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (queue[i].id == id) return take(q, i);
  }
  return std::nullopt;
}

std::optional<Time> MessageBuffer::oldest_sent_at(Pid q) const {
  if (queues_[q].empty()) return std::nullopt;
  Time oldest = queues_[q].front().sent_at;
  for (const Message& m : queues_[q]) oldest = std::min(oldest, m.sent_at);
  return oldest;
}

}  // namespace nucon
