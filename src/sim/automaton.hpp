// The deterministic process automata of the paper's model (§2.4).
//
// One step is atomic and does exactly four things: receive a single message
// (or the empty message lambda), query the local failure-detector module,
// change state, and send messages. The interface below is that step; the
// scheduler supplies the received message and the FD value, which are the
// only nondeterministic inputs, so automata themselves are deterministic —
// a recorded schedule replays to identical states.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "util/bytes.hpp"
#include "util/fd_value.hpp"
#include "util/process_set.hpp"
#include "util/shared_bytes.hpp"

namespace nucon {

/// A message handed to an automaton during a step.
struct Incoming {
  Pid from = -1;
  const Bytes* payload = nullptr;
  /// The refcounted payload the bytes live in, when the deliverer has one
  /// (the schedulers set it; multiplexers handing out re-framed sub-buffers
  /// leave it null). Lets receivers of a broadcast share one decode of the
  /// sealed buffer instead of parsing identical bytes n times; `*payload`
  /// aliases `shared->get()` whenever it is set.
  const SharedBytes* shared = nullptr;
};

/// A message an automaton asks to send during a step. The payload is
/// refcounted: a broadcast enqueues n shares of one sealed buffer instead
/// of n copies (util/shared_bytes.hpp).
struct Outgoing {
  Pid to = -1;
  SharedBytes payload;
};

class Automaton {
 public:
  virtual ~Automaton() = default;

  Automaton() = default;
  Automaton& operator=(const Automaton&) = delete;

  /// One atomic step. `in` is nullptr for the empty message lambda.
  /// Messages to send are appended to `out`.
  virtual void step(const Incoming* in, const FdValue& d,
                    std::vector<Outgoing>& out) = 0;

  /// Full encoding of the local state, used by tests to compare
  /// configurations (e.g. the Lemma 2.2 merging check). Optional; the
  /// default marks the state as not comparable. May omit transient
  /// bookkeeping; the complete-state contract lives in save_state below.
  [[nodiscard]] virtual std::optional<Bytes> snapshot() const {
    return std::nullopt;
  }

  /// Complete-state serialization contract for the model checker: two
  /// automata constructed by the same factory call whose save_state
  /// encodings are equal must behave identically on every future input,
  /// and restore_state(save_state(a)) must reproduce a exactly. Returns
  /// false when the automaton does not support it (the default).
  [[nodiscard]] virtual bool save_state(ByteWriter&) const { return false; }
  [[nodiscard]] virtual bool restore_state(ByteReader&) { return false; }

  /// Convenience wrapper: restores from a whole buffer, requiring it to be
  /// consumed exactly.
  [[nodiscard]] bool restore(const Bytes& state) {
    ByteReader r(state);
    return restore_state(r) && r.done();
  }

  /// Deep copy of the full state (including transient scratch); nullptr
  /// when the automaton does not implement clone_raw.
  [[nodiscard]] std::unique_ptr<Automaton> clone() const {
    return std::unique_ptr<Automaton>(clone_raw());
  }

 protected:
  /// Copying is reserved for clone_raw implementations; slicing copies
  /// through a base reference stay inaccessible to outside code.
  Automaton(const Automaton&) = default;

  /// Covariant clone hook: final classes return `new Self(*this)`.
  [[nodiscard]] virtual Automaton* clone_raw() const { return nullptr; }
};

/// Values proposed to / decided by consensus. int64 is general enough for
/// the paper's binary consensus and for multivalued tests.
using Value = std::int64_t;

/// An automaton that participates in consensus: it is constructed proposing
/// some value and may irrevocably decide.
class ConsensusAutomaton : public Automaton {
 public:
  [[nodiscard]] virtual std::optional<Value> decision() const = 0;

  /// Covariant clone (hides Automaton::clone on purpose): the model
  /// checker clones consensus automata and keeps querying decision().
  [[nodiscard]] std::unique_ptr<ConsensusAutomaton> clone() const {
    return std::unique_ptr<ConsensusAutomaton>(clone_raw());
  }

 protected:
  ConsensusAutomaton() = default;
  ConsensusAutomaton(const ConsensusAutomaton&) = default;
  [[nodiscard]] ConsensusAutomaton* clone_raw() const override {
    return nullptr;
  }
};

/// Creates the automaton for process p in the initial configuration.
using AutomatonFactory =
    std::function<std::unique_ptr<Automaton>(Pid p)>;

/// Creates a consensus automaton for process p proposing `proposal`.
using ConsensusFactory = std::function<std::unique_ptr<ConsensusAutomaton>(
    Pid p, Value proposal)>;

/// Helper: broadcast `payload` to every process in [0, n), including the
/// sender (a self-addressed message through the buffer models the paper's
/// "send to all" convention). The payload is sealed once; each recipient
/// gets a share, not a copy.
inline void broadcast(Pid n, SharedBytes payload, std::vector<Outgoing>& out) {
  SharedBytes::counters().broadcasts += 1;
  for (Pid q = 0; q < n; ++q) out.push_back({q, payload});
}

/// Helper for multiplexing automata (StackedNuc, FromScratchConsensus,
/// ReplicatedLog): re-emits a component's sends, each payload re-encoded
/// by `write_frame(ByteWriter&, const Bytes& payload)` (typically a
/// channel byte or instance header plus the payload). Shares of one
/// broadcast payload (same buffer identity) are framed once and the frame
/// re-shared, so framing does not undo the broadcast's copy elision;
/// `scratch` only grows, so steady-state framing does not allocate for
/// the encode itself.
template <typename WriteFrame>
void reframe_sends(std::vector<Outgoing>& sends, ByteWriter& scratch,
                   WriteFrame&& write_frame, std::vector<Outgoing>& out) {
  const Bytes* last_raw = nullptr;
  SharedBytes framed;
  for (Outgoing& o : sends) {
    if (last_raw == nullptr || o.payload.raw() != last_raw) {
      scratch.reset();
      write_frame(scratch, o.payload.get());
      last_raw = o.payload.raw();
      framed = SharedBytes(scratch.buffer());
    }
    out.push_back({o.to, framed});
  }
}

}  // namespace nucon
