// The deterministic process automata of the paper's model (§2.4).
//
// One step is atomic and does exactly four things: receive a single message
// (or the empty message lambda), query the local failure-detector module,
// change state, and send messages. The interface below is that step; the
// scheduler supplies the received message and the FD value, which are the
// only nondeterministic inputs, so automata themselves are deterministic —
// a recorded schedule replays to identical states.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "util/bytes.hpp"
#include "util/fd_value.hpp"
#include "util/process_set.hpp"

namespace nucon {

/// A message handed to an automaton during a step.
struct Incoming {
  Pid from = -1;
  const Bytes* payload = nullptr;
};

/// A message an automaton asks to send during a step.
struct Outgoing {
  Pid to = -1;
  Bytes payload;
};

class Automaton {
 public:
  virtual ~Automaton() = default;

  Automaton() = default;
  Automaton(const Automaton&) = delete;
  Automaton& operator=(const Automaton&) = delete;

  /// One atomic step. `in` is nullptr for the empty message lambda.
  /// Messages to send are appended to `out`.
  virtual void step(const Incoming* in, const FdValue& d,
                    std::vector<Outgoing>& out) = 0;

  /// Full encoding of the local state, used by tests to compare
  /// configurations (e.g. the Lemma 2.2 merging check). Optional; the
  /// default marks the state as not comparable.
  [[nodiscard]] virtual std::optional<Bytes> snapshot() const {
    return std::nullopt;
  }
};

/// Values proposed to / decided by consensus. int64 is general enough for
/// the paper's binary consensus and for multivalued tests.
using Value = std::int64_t;

/// An automaton that participates in consensus: it is constructed proposing
/// some value and may irrevocably decide.
class ConsensusAutomaton : public Automaton {
 public:
  [[nodiscard]] virtual std::optional<Value> decision() const = 0;
};

/// Creates the automaton for process p in the initial configuration.
using AutomatonFactory =
    std::function<std::unique_ptr<Automaton>(Pid p)>;

/// Creates a consensus automaton for process p proposing `proposal`.
using ConsensusFactory = std::function<std::unique_ptr<ConsensusAutomaton>(
    Pid p, Value proposal)>;

/// Helper: broadcast `payload` to every process in [0, n), including the
/// sender (a self-addressed message through the buffer models the paper's
/// "send to all" convention).
inline void broadcast(Pid n, const Bytes& payload, std::vector<Outgoing>& out) {
  for (Pid q = 0; q < n; ++q) out.push_back({q, payload});
}

}  // namespace nucon
