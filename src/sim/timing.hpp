// Timing-aware scheduler mode.
//
// The default scheduler models asynchrony abstractly: random lambda steps
// and reordering, bounded by the fairness backstop. That is the right
// adversary for the paper's possibility results, but it gives timeouts no
// meaning — a heartbeat-implemented failure detector (fd/impl/) needs
// message *latency* and process *speed* to be quantities, not adversarial
// choices. TimingOptions turns the same executor into a timed network:
// every message is assigned a deterministic delivery delay (a per-link
// base plus per-message jitter, all derived by hashing the timing seed
// with the message identity, never from the scheduler's Rng), and each
// process may be slowed to take a step only every k-th macro round.
//
// Default-off contract: with `enabled == false` the scheduler's behavior
// — the Rng stream, the recorded schedule, every metric — is byte-for-byte
// what it was before this mode existed. All timed code paths are gated on
// the flag, and delay sampling never touches the scheduler Rng, so a timed
// run is replay-deterministic from (options, seed) exactly like an untimed
// one.
#pragma once

#include <vector>

#include "sim/failure_pattern.hpp"
#include "util/rng.hpp"

namespace nucon {

struct TimingOptions {
  /// Master switch. Off = the classic adversarial scheduler, untouched.
  bool enabled = false;

  /// Minimum delivery delay of every message, in scheduler ticks (one
  /// macro round of n processes spans n ticks).
  Time delay_base = 1;

  /// Per-message uniform jitter in [0, delay_jitter], hashed from
  /// (seed, sender, sequence number, receiver).
  Time delay_jitter = 6;

  /// Per-link heterogeneity: link (s, r) carries a fixed extra base delay
  /// in [0, link_spread], hashed from (seed, s, r). 0 = uniform links.
  Time link_spread = 0;

  /// Per-process speed skew: process p takes a step only on macro rounds
  /// divisible by speed[p] (so speed 1 = full speed, 3 = a third of the
  /// steps). Missing entries (or an empty vector) mean speed 1. Values
  /// must be >= 1; correct processes still take infinitely many steps, so
  /// admissibility property (6) is preserved.
  std::vector<int> speed;

  /// Seed of the delay hashes; independent of SchedulerOptions::seed so
  /// the interleaving adversary and the latency model can be varied
  /// separately.
  std::uint64_t seed = 0x7151;

  [[nodiscard]] int speed_of(Pid p) const {
    const auto i = static_cast<std::size_t>(p);
    return (p >= 0 && i < speed.size() && speed[i] > 1) ? speed[i] : 1;
  }

  /// The fixed extra base delay of link (from, to).
  [[nodiscard]] Time link_base(Pid from, Pid to) const {
    if (link_spread <= 0) return 0;
    std::uint64_t s = seed ^
                      (static_cast<std::uint64_t>(from) * 0x9e3779b97f4a7c15ULL) ^
                      (static_cast<std::uint64_t>(to) * 0xbf58476d1ce4e5b9ULL);
    return static_cast<Time>(splitmix64(s) %
                             static_cast<std::uint64_t>(link_spread + 1));
  }

  /// Total delivery delay of the message (from, seq) -> to: base + link +
  /// jitter. A pure function of (options, message identity), so replay
  /// resamples identical delays regardless of delivery order.
  [[nodiscard]] Time message_delay(Pid from, std::uint64_t seq, Pid to) const {
    Time d = delay_base + link_base(from, to);
    if (delay_jitter > 0) {
      std::uint64_t s = seed ^
                        (static_cast<std::uint64_t>(from) * 0x94d049bb133111ebULL) ^
                        (seq * 0x2545f4914f6cdd1dULL) ^
                        (static_cast<std::uint64_t>(to) * 0xd6e8feb86659fd93ULL);
      d += static_cast<Time>(splitmix64(s) %
                             static_cast<std::uint64_t>(delay_jitter + 1));
    }
    return d;
  }
};

}  // namespace nucon
