// The admissible-run executor.
//
// Drives a set of automata under a failure pattern and a failure-detector
// oracle, producing a recorded Run. All nondeterminism — step interleaving,
// which pending message (if any) a step receives — comes from a seeded Rng,
// and the policies guarantee the admissibility properties of §2.6 in the
// limit: every live process is scheduled once per "macro round" in a random
// order (property (6)), and a fairness backstop force-delivers any message
// that has been pending too long (property (7)).
#pragma once

#include <functional>

#include "fd/failure_detector.hpp"
#include "sim/run.hpp"
#include "sim/timing.hpp"
#include "trace/metrics.hpp"

namespace nucon::trace {
class TraceRecorder;
}  // namespace nucon::trace

namespace nucon::prof {
class ProfileCollector;
}  // namespace nucon::prof

namespace nucon {

/// Return values for SchedulerOptions::inject_delivery (below).
inline constexpr int kInjectDefer = -2;   ///< fall through to the seeded policy
inline constexpr int kInjectLambda = -1;  ///< force a lambda (no-delivery) step

struct SchedulerOptions {
  std::uint64_t seed = 1;

  /// Hard cap on total steps; the run is cut off here if no stop predicate
  /// fires first.
  std::int64_t max_steps = 200'000;

  /// Percent of steps that receive lambda even though messages are pending
  /// (models arbitrary delivery delay).
  int lambda_percent = 20;

  /// Percent of receiving steps that take a random pending message rather
  /// than the oldest (models reordering).
  int shuffle_percent = 30;

  /// Fairness backstop: once the oldest message pending for the stepping
  /// process is older than this many ticks, it is delivered unconditionally.
  Time max_message_age = 64;

  /// Timing-aware mode (sim/timing.hpp). When enabled, delivery is driven
  /// by per-message delays (a message becomes deliverable at ready_at and
  /// a step takes the earliest-ready pending message, oldest first on
  /// ties) and processes may run at skewed speeds; the lambda/shuffle
  /// randomness and the fairness backstop are bypassed — latency is the
  /// model, not the adversary. Default-off, in which case the scheduler is
  /// byte-for-byte the classic adversarial executor.
  TimingOptions timing;

  /// Record the schedule (one StepRecord per step) into SimResult::run.
  /// Defaults on — replay, merging and the exploration tools all read it —
  /// but sweep workers turn it off: a sweep cell folds a run to counters
  /// and never reads the steps, so recording only grows a multi-thousand-
  /// entry vector per job. Off, the returned Run has an empty schedule;
  /// everything else (verdicts, metrics, traces, on_step) is unaffected.
  bool record_run = true;

  /// If nonempty, only these processes are scheduled. Used to produce the
  /// finite partial runs of the partition argument and the Lemma 2.2
  /// merging tests; such runs are not admissible (and need not be).
  ProcessSet restrict_to;

  /// Optional early stop, checked after every macro round.
  std::function<bool(const std::vector<std::unique_ptr<Automaton>>&)> stop_when;

  /// Optional observer invoked after every step with the recorded step and
  /// the automata. Used e.g. to sample the emulated output variables of
  /// transformation algorithms into a RecordedHistory.
  std::function<void(const StepRecord&,
                     const std::vector<std::unique_ptr<Automaton>>&)>
      on_step;

  /// Optional schedule-injection hook (the coverage-guided fuzzer's way of
  /// replaying a genome). When set it is consulted once per live-process
  /// step, BEFORE the seeded delivery policy, with the stepping process,
  /// the global clock, and the number of messages pending for it:
  ///   kInjectDefer  -> use the seeded policy (incl. fairness backstop);
  ///   kInjectLambda -> force a lambda step, overriding the backstop;
  ///   k >= 0        -> deliver pending message k % pending (lambda when
  ///                    pending == 0).
  /// The hook is called even when pending == 0, so an external gene
  /// sequence indexed by step count never desynchronizes from the run.
  /// Injected choices are counted in "scheduler.injected_choices" (the
  /// counter is only registered when the hook is set, so runs without it
  /// keep byte-identical metrics).
  std::function<int(Pid p, Time now, std::size_t pending)> inject_delivery;

  /// Optional structured trace recorder (trace/trace_recorder.hpp). The
  /// scheduler feeds it typed step/send/deliver/oracle-query/decide events;
  /// null costs one pointer test per hook site (and nothing at all when the
  /// library is built with NUCON_DISABLE_TRACING).
  trace::TraceRecorder* trace = nullptr;

  /// Optional hot-path profile collector (prof/profiler.hpp). When set,
  /// every step's phases — delivery choice, oracle sample, trace hook,
  /// automaton step, payload encode — are rdtsc-timed into it, and the
  /// per-phase call counts accumulated *during this run* are folded into
  /// SimResult::metrics as deterministic `prof.<phase>.calls` counters
  /// (lazily registered, so unprofiled runs keep byte-identical metrics).
  /// Null costs one pointer test per phase boundary; under
  /// NUCON_DISABLE_PROFILING the probes vanish from the binary entirely.
  prof::ProfileCollector* profile = nullptr;
};

struct SimResult {
  explicit SimResult(FailurePattern fp) : run(std::move(fp)) {}

  Run run;
  std::vector<std::unique_ptr<Automaton>> automata;

  /// Steps actually executed; equals run.steps.size() when the schedule
  /// was recorded, and stays valid when record_run is off.
  std::size_t steps_taken = 0;

  Time end_time = 0;
  bool stopped_by_predicate = false;
  std::size_t messages_sent = 0;
  std::size_t bytes_sent = 0;
  std::size_t undelivered_at_end = 0;

  /// What happened inside the run, as counters/histograms (always
  /// collected; integer-only, so deterministic under any aggregation
  /// order). Keys are documented in EXPERIMENTS.md.
  trace::MetricsRegistry metrics;
};

/// Executes up to opts.max_steps steps of the algorithm given by `make`
/// under failure pattern `fp`, reading FD values from `oracle`.
[[nodiscard]] SimResult simulate(const FailurePattern& fp, Oracle& oracle,
                                 const AutomatonFactory& make,
                                 const SchedulerOptions& opts);

/// Convenience wrapper for consensus algorithms: builds the factory from a
/// ConsensusFactory plus per-process proposals.
[[nodiscard]] SimResult simulate_consensus(const FailurePattern& fp,
                                           Oracle& oracle,
                                           const ConsensusFactory& make,
                                           const std::vector<Value>& proposals,
                                           SchedulerOptions opts);

/// True when every correct process (per fp) has decided.
[[nodiscard]] bool all_correct_decided(
    const FailurePattern& fp,
    const std::vector<std::unique_ptr<Automaton>>& automata);

}  // namespace nucon
