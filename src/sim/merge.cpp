#include "sim/merge.hpp"

namespace nucon {

bool mergeable(const Run& r0, const Run& r1) {
  return !r0.participants().intersects(r1.participants());
}

std::optional<Run> merge_runs(const Run& r0, const Run& r1,
                              std::string* error) {
  const auto fail = [&](std::string why) -> std::optional<Run> {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
  };

  if (r0.fp.n() != r1.fp.n()) return fail("different system sizes");
  for (Pid p = 0; p < r0.fp.n(); ++p) {
    if (r0.fp.crash_time(p) != r1.fp.crash_time(p)) {
      return fail("different failure patterns");
    }
  }
  if (!mergeable(r0, r1)) return fail("participant sets intersect");

  Run merged(r0.fp);
  merged.steps.reserve(r0.steps.size() + r1.steps.size());

  // Standard two-way merge by time; each input's internal order (and hence
  // its causal structure) is preserved because its times are already
  // nondecreasing.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < r0.steps.size() || j < r1.steps.size()) {
    const bool take0 =
        j == r1.steps.size() ||
        (i < r0.steps.size() && r0.steps[i].t <= r1.steps[j].t);
    merged.steps.push_back(take0 ? r0.steps[i++] : r1.steps[j++]);
  }
  return merged;
}

}  // namespace nucon
