// Failure patterns and environments (paper §2.2).
//
// A failure pattern F maps each global time t to the set of processes that
// have crashed by t; crashes are permanent. An environment is a set of
// failure patterns; the paper's E_t is "any set of up to t processes may
// crash, at any times". We represent a pattern by its per-process crash
// time (kNeverCrashes for correct processes), which encodes exactly the
// monotone functions F : N -> 2^Pi the paper allows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace nucon {

/// Discrete global clock (paper §2.2). Processes never see this clock; it
/// exists to order steps and to anchor failure patterns and FD histories.
using Time = std::int64_t;

inline constexpr Time kNeverCrashes = -1;

class FailurePattern {
 public:
  /// All n processes correct.
  explicit FailurePattern(Pid n);

  /// crash_times[p] == kNeverCrashes means p is correct; otherwise p takes
  /// no step at any time >= crash_times[p].
  FailurePattern(Pid n, std::vector<Time> crash_times);

  [[nodiscard]] Pid n() const { return n_; }

  /// F(t): processes crashed through time t.
  [[nodiscard]] ProcessSet crashed_at(Time t) const;

  /// faulty(F) — processes that crash at some time.
  [[nodiscard]] ProcessSet faulty() const { return faulty_; }

  /// correct(F) = Pi - faulty(F).
  [[nodiscard]] ProcessSet correct() const {
    return ProcessSet::full(n_) - faulty_;
  }

  [[nodiscard]] bool is_correct(Pid p) const { return !faulty_.contains(p); }

  /// True iff p has not crashed by time t (p may still be faulty later).
  [[nodiscard]] bool alive_at(Pid p, Time t) const {
    return !crashed_at(t).contains(p);
  }

  [[nodiscard]] Time crash_time(Pid p) const { return crash_times_[static_cast<std::size_t>(p)]; }

  /// First time at which every faulty process has crashed (0 if none).
  [[nodiscard]] Time all_faulty_crashed_by() const;

  /// Marks p as crashing at time t (t >= 0).
  void set_crash(Pid p, Time t);

  [[nodiscard]] std::string to_string() const;

 private:
  Pid n_;
  std::vector<Time> crash_times_;
  ProcessSet faulty_;
};

/// The environment E_t = { F : |faulty(F)| <= t } (paper §7), as a sampler
/// of random failure patterns within it.
struct Environment {
  Pid n = 0;
  Pid max_faulty = 0;  // the `t` of E_t

  [[nodiscard]] bool majority_correct() const { return 2 * max_faulty < n; }

  /// Draws a pattern with exactly `faults` crashes (faults <= max_faulty),
  /// with crash times uniform in [0, latest_crash].
  [[nodiscard]] FailurePattern sample(Rng& rng, Pid faults,
                                      Time latest_crash) const;

  /// Draws a pattern with a uniform number of crashes in [0, max_faulty].
  [[nodiscard]] FailurePattern sample(Rng& rng, Time latest_crash) const;
};

}  // namespace nucon
