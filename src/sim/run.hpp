// Recorded runs, replay, and the run-property validator (paper §2.6).
//
// A run R = (F, H, I, S, T). We record F (the failure pattern), the
// schedule S together with the times T (one StepRecord per step, carrying
// the FD value seen — the fragment of H that the run actually observed),
// and leave I implicit in the AutomatonFactory used to replay. Replay
// re-executes the deterministic automata against the recorded inputs,
// which both reconstructs every intermediate configuration and verifies
// applicability (property (1)).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/automaton.hpp"
#include "sim/failure_pattern.hpp"
#include "sim/message.hpp"

namespace nucon {

struct StepRecord {
  Pid p = -1;
  /// The received message, or nullopt for the empty message lambda.
  std::optional<MsgId> received;
  FdValue d;
  Time t = 0;
};

struct Run {
  explicit Run(FailurePattern pattern) : fp(std::move(pattern)) {}

  FailurePattern fp;
  std::vector<StepRecord> steps;

  [[nodiscard]] ProcessSet participants() const {
    ProcessSet out;
    for (const StepRecord& s : steps) out.insert(s.p);
    return out;
  }
};

/// The result of replaying a run against an algorithm.
struct ReplayOutcome {
  bool ok = false;
  std::string error;  // empty when ok

  /// Final automaton states (index = pid); populated even on failure for
  /// the prefix that replayed.
  std::vector<std::unique_ptr<Automaton>> automata;

  /// Messages still in flight at the end of the schedule.
  MessageBuffer leftover;

  std::size_t messages_sent = 0;
  std::size_t bytes_sent = 0;
};

/// Replays `run` from the initial configuration given by `make`. Fails if
/// the schedule is not applicable (a step receives a message that is not in
/// the buffer at that point).
[[nodiscard]] ReplayOutcome replay(const Run& run, Pid n,
                                   const AutomatonFactory& make);

/// Checks the structural run properties of §2.6 that do not need replay:
///   (3) no process steps after it crashed,
///   (4) times are nondecreasing,
///   (5') each process's own step times strictly increase (per-process
///        causality; cross-process message causality is checked by
///        `replay`, which rejects receiving before sending).
/// Returns a human-readable violation, or nullopt if all hold.
[[nodiscard]] std::optional<std::string> check_run_structure(const Run& run);

/// Admissibility residue for a finite prefix of an (infinite) admissible
/// run: how many messages addressed to correct processes are still
/// undelivered, and how many steps each correct process took. The paper's
/// properties (6)-(7) quantify over infinite runs; tests assert that with
/// a fair scheduler the residue stays bounded and step counts grow.
struct AdmissibilityStats {
  std::vector<std::int64_t> steps_by_process;
  std::size_t undelivered_to_correct = 0;
};

[[nodiscard]] AdmissibilityStats admissibility_stats(const Run& run, Pid n,
                                                     const ReplayOutcome& outcome);

/// Extracts decisions from consensus automata (index = pid; nullopt where
/// the automaton is not a ConsensusAutomaton or has not decided).
[[nodiscard]] std::vector<std::optional<Value>> decisions_of(
    const std::vector<std::unique_ptr<Automaton>>& automata);

}  // namespace nucon
