#include "sim/trace.hpp"

namespace nucon {
namespace {

std::string render_step(const StepRecord& s, bool show_fd) {
  std::string line = "  t=" + std::to_string(s.t) + "  p" + std::to_string(s.p);
  if (s.received) {
    line += "  recv(" + std::to_string(s.received->sender) + "#" +
            std::to_string(s.received->seq) + ")";
  } else {
    line += "  recv(lambda)";
  }
  if (show_fd) line += "  fd=" + s.d.to_string();
  return line + "\n";
}

}  // namespace

std::string render_trace(const Run& run, const TraceOptions& opts) {
  std::string out = "run: " + run.fp.to_string() + ", " +
                    std::to_string(run.steps.size()) + " steps, participants " +
                    run.participants().to_string() + "\n";

  const std::size_t total = run.steps.size();
  if (opts.max_steps == 0 || total <= opts.max_steps) {
    for (const StepRecord& s : run.steps) out += render_step(s, opts.show_fd);
    return out;
  }

  const std::size_t head = opts.max_steps / 2;
  const std::size_t tail = opts.max_steps - head;
  for (std::size_t i = 0; i < head; ++i) {
    out += render_step(run.steps[i], opts.show_fd);
  }
  out += "  ... (" + std::to_string(total - head - tail) + " steps elided)\n";
  for (std::size_t i = total - tail; i < total; ++i) {
    out += render_step(run.steps[i], opts.show_fd);
  }
  return out;
}

}  // namespace nucon
