#include "sim/run.hpp"

#include <cassert>

namespace nucon {

ReplayOutcome replay(const Run& run, Pid n, const AutomatonFactory& make) {
  ReplayOutcome out;
  out.automata.reserve(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) out.automata.push_back(make(p));

  std::vector<std::uint64_t> send_seq(static_cast<std::size_t>(n), 0);
  std::vector<Outgoing> sends;

  for (std::size_t i = 0; i < run.steps.size(); ++i) {
    const StepRecord& s = run.steps[i];
    if (s.p < 0 || s.p >= n) {
      out.error = "step " + std::to_string(i) + ": bad pid";
      return out;
    }

    std::optional<Message> msg;
    if (s.received) {
      msg = out.leftover.take_by_id(s.p, *s.received);
      if (!msg) {
        out.error = "step " + std::to_string(i) +
                    ": schedule not applicable (message from " +
                    std::to_string(s.received->sender) + " seq " +
                    std::to_string(s.received->seq) + " not in buffer)";
        return out;
      }
      // Cross-process causality (property (5)): a message cannot be
      // received at or before the time it was sent.
      if (msg->sent_at >= s.t) {
        out.error = "step " + std::to_string(i) +
                    ": message received at t=" + std::to_string(s.t) +
                    " but sent at t=" + std::to_string(msg->sent_at);
        return out;
      }
    }

    sends.clear();
    if (msg) {
      const Incoming in{msg->id.sender, &msg->payload.get(), &msg->payload};
      out.automata[static_cast<std::size_t>(s.p)]->step(&in, s.d, sends);
    } else {
      out.automata[static_cast<std::size_t>(s.p)]->step(nullptr, s.d, sends);
    }

    for (Outgoing& o : sends) {
      assert(o.to >= 0 && o.to < n);
      Message m;
      m.id = MsgId{s.p, ++send_seq[static_cast<std::size_t>(s.p)]};
      m.to = o.to;
      m.sent_at = s.t;
      m.payload = std::move(o.payload);
      out.bytes_sent += m.payload.size();
      ++out.messages_sent;
      out.leftover.add(std::move(m));
    }
  }

  out.ok = true;
  return out;
}

std::optional<std::string> check_run_structure(const Run& run) {
  Time prev = -1;
  std::vector<Time> last_step_of(static_cast<std::size_t>(run.fp.n()), -1);

  for (std::size_t i = 0; i < run.steps.size(); ++i) {
    const StepRecord& s = run.steps[i];
    if (s.p < 0 || s.p >= run.fp.n()) {
      return "step " + std::to_string(i) + ": pid out of range";
    }
    if (!run.fp.alive_at(s.p, s.t)) {
      return "step " + std::to_string(i) + ": process " + std::to_string(s.p) +
             " steps at t=" + std::to_string(s.t) + " after crashing";
    }
    if (s.t < prev) {
      return "step " + std::to_string(i) + ": times not nondecreasing";
    }
    prev = s.t;
    auto& last = last_step_of[static_cast<std::size_t>(s.p)];
    if (last >= s.t) {
      return "step " + std::to_string(i) + ": process " + std::to_string(s.p) +
             " takes two steps without time advancing";
    }
    last = s.t;
  }
  return std::nullopt;
}

AdmissibilityStats admissibility_stats(const Run& run, Pid n,
                                       const ReplayOutcome& outcome) {
  AdmissibilityStats stats;
  stats.steps_by_process.assign(static_cast<std::size_t>(n), 0);
  for (const StepRecord& s : run.steps) {
    ++stats.steps_by_process[static_cast<std::size_t>(s.p)];
  }
  for (Pid q : run.fp.correct()) {
    stats.undelivered_to_correct += outcome.leftover.pending_for(q);
  }
  return stats;
}

std::vector<std::optional<Value>> decisions_of(
    const std::vector<std::unique_ptr<Automaton>>& automata) {
  std::vector<std::optional<Value>> out(automata.size());
  for (std::size_t p = 0; p < automata.size(); ++p) {
    if (const auto* c = dynamic_cast<const ConsensusAutomaton*>(automata[p].get())) {
      out[p] = c->decision();
    }
  }
  return out;
}

}  // namespace nucon
