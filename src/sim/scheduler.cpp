#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/rng.hpp"

namespace nucon {
namespace {

/// Picks which message (index into the pending queue of p), if any, the
/// next step of p receives.
std::optional<std::size_t> choose_delivery(const MessageBuffer& buffer, Pid p,
                                           Time now,
                                           const SchedulerOptions& opts,
                                           Rng& rng) {
  const std::size_t pending = buffer.pending_for(p);
  if (pending == 0) return std::nullopt;

  // Fairness backstop (admissibility property (7)): stale messages are
  // delivered oldest-first no matter what the random policy says.
  const auto oldest = buffer.oldest_sent_at(p);
  if (oldest && now - *oldest > opts.max_message_age) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending; ++i) {
      if (buffer.peek(p, i).sent_at < buffer.peek(p, best).sent_at) best = i;
    }
    return best;
  }

  if (rng.chance(static_cast<std::uint64_t>(opts.lambda_percent), 100)) {
    return std::nullopt;
  }
  if (rng.chance(static_cast<std::uint64_t>(opts.shuffle_percent), 100)) {
    return rng.below(pending);
  }
  return 0;  // oldest in FIFO order
}

}  // namespace

SimResult simulate(const FailurePattern& fp, Oracle& oracle,
                   const AutomatonFactory& make,
                   const SchedulerOptions& opts) {
  const Pid n = fp.n();
  SimResult result(fp);
  result.automata.reserve(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) result.automata.push_back(make(p));

  Rng rng(opts.seed);
  MessageBuffer buffer;
  std::vector<std::uint64_t> send_seq(static_cast<std::size_t>(n), 0);

  const ProcessSet schedulable = opts.restrict_to.empty()
                                     ? ProcessSet::full(n)
                                     : opts.restrict_to;

  Time now = 0;
  std::int64_t steps_taken = 0;
  std::vector<Pid> order;
  std::vector<Outgoing> sends;

  while (steps_taken < opts.max_steps) {
    // One macro round: every process that is alive when its turn comes
    // takes exactly one step, in a fresh random order. This yields
    // property (6): correct processes take infinitely many steps.
    order.clear();
    for (Pid p : schedulable) order.push_back(p);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }

    bool anyone_stepped = false;
    for (Pid p : order) {
      ++now;
      if (!fp.alive_at(p, now)) continue;
      anyone_stepped = true;

      const auto delivery = choose_delivery(buffer, p, now, opts, rng);
      std::optional<Message> msg;
      if (delivery) msg = buffer.take(p, *delivery);

      const FdValue d = oracle.value(p, now);

      StepRecord rec;
      rec.p = p;
      rec.d = d;
      rec.t = now;
      if (msg) rec.received = msg->id;
      result.run.steps.push_back(rec);

      sends.clear();
      if (msg) {
        const Incoming in{msg->id.sender, &msg->payload};
        result.automata[static_cast<std::size_t>(p)]->step(&in, d, sends);
      } else {
        result.automata[static_cast<std::size_t>(p)]->step(nullptr, d, sends);
      }

      for (Outgoing& o : sends) {
        assert(o.to >= 0 && o.to < n);
        Message m;
        m.id = MsgId{p, ++send_seq[static_cast<std::size_t>(p)]};
        m.to = o.to;
        m.sent_at = now;
        m.payload = std::move(o.payload);
        result.bytes_sent += m.payload.size();
        ++result.messages_sent;
        buffer.add(std::move(m));
      }

      if (opts.on_step) opts.on_step(rec, result.automata);

      if (++steps_taken >= opts.max_steps) break;
    }

    if (opts.stop_when && opts.stop_when(result.automata)) {
      result.stopped_by_predicate = true;
      break;
    }
    // All schedulable processes crashed: nothing further can happen.
    if (!anyone_stepped) break;
  }

  result.end_time = now;
  result.undelivered_at_end = buffer.total_pending();
  return result;
}

SimResult simulate_consensus(const FailurePattern& fp, Oracle& oracle,
                             const ConsensusFactory& make,
                             const std::vector<Value>& proposals,
                             SchedulerOptions opts) {
  // A hard error, not an assert: release builds (and the sweep engine's
  // worker threads) must reject a malformed grid point instead of indexing
  // past the end of the proposal vector.
  if (proposals.size() != static_cast<std::size_t>(fp.n())) {
    throw std::invalid_argument(
        "simulate_consensus: proposals.size() must equal fp.n()");
  }
  if (!opts.stop_when) {
    opts.stop_when = [&fp](const std::vector<std::unique_ptr<Automaton>>& a) {
      return all_correct_decided(fp, a);
    };
  }
  const AutomatonFactory factory = [&make, &proposals](Pid p) {
    return make(p, proposals[static_cast<std::size_t>(p)]);
  };
  return simulate(fp, oracle, factory, opts);
}

bool all_correct_decided(
    const FailurePattern& fp,
    const std::vector<std::unique_ptr<Automaton>>& automata) {
  for (Pid p : fp.correct()) {
    const auto* c =
        dynamic_cast<const ConsensusAutomaton*>(automata[static_cast<std::size_t>(p)].get());
    if (c == nullptr || !c->decision()) return false;
  }
  return true;
}

}  // namespace nucon
