#include "sim/scheduler.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "prof/profiler.hpp"
#include "trace/trace_recorder.hpp"
#include "util/rng.hpp"

namespace nucon {
namespace {

/// A delivery decision: which pending message (index into the queue of p)
/// the next step receives, and how the choice was made (metrics/tracing).
struct Delivery {
  std::size_t index = 0;
  bool forced = false;    // fairness backstop fired
  bool shuffled = false;  // random pick instead of FIFO head
};

/// Picks which message, if any, the next step of p receives.
std::optional<Delivery> choose_delivery(const MessageBuffer& buffer, Pid p,
                                        Time now, const SchedulerOptions& opts,
                                        Rng& rng) {
  const std::size_t pending = buffer.pending_for(p);
  if (pending == 0) return std::nullopt;

  // Fairness backstop (admissibility property (7)): stale messages are
  // delivered oldest-first no matter what the random policy says. The
  // scheduler stamps sent_at with the global clock and each per-destination
  // queue is FIFO, so the queue head IS the oldest pending message — no
  // scan needed (the checked invariant below).
  const Time oldest = buffer.peek(p, 0).sent_at;
#ifndef NDEBUG
  for (std::size_t i = 1; i < pending; ++i) {
    assert(buffer.peek(p, i).sent_at >= oldest &&
           "scheduler queues must be FIFO in sent_at order");
  }
#endif
  if (now - oldest > opts.max_message_age) {
    return Delivery{0, /*forced=*/true, /*shuffled=*/false};
  }

  if (rng.chance(static_cast<std::uint64_t>(opts.lambda_percent), 100)) {
    return std::nullopt;
  }
  if (rng.chance(static_cast<std::uint64_t>(opts.shuffle_percent), 100)) {
    return Delivery{rng.below(pending), false, /*shuffled=*/true};
  }
  return Delivery{0, false, false};  // oldest in FIFO order
}

/// Timed-mode delivery: the earliest-ready pending message, FIFO order on
/// ties; lambda when nothing has matured yet. Deterministic — no Rng — so
/// timed runs replay from (options, seed) like untimed ones. Maturity is
/// eager delivery, which discharges admissibility property (7) directly.
std::optional<Delivery> choose_delivery_timed(const MessageBuffer& buffer,
                                              Pid p, Time now) {
  const std::size_t pending = buffer.pending_for(p);
  std::optional<std::size_t> best;
  Time best_ready = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    const Time ready = buffer.peek(p, i).ready_at;
    if (ready > now) continue;
    if (!best || ready < best_ready) {
      best = i;
      best_ready = ready;
    }
  }
  if (!best) return std::nullopt;
  return Delivery{*best, false, false};
}

}  // namespace

SimResult simulate(const FailurePattern& fp, Oracle& oracle,
                   const AutomatonFactory& make,
                   const SchedulerOptions& opts) {
  const Pid n = fp.n();
  SimResult result(fp);
  result.automata.reserve(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) result.automata.push_back(make(p));

  // Resolved once so decide detection below is a plain virtual call per
  // step, not a dynamic_cast per step.
  std::vector<ConsensusAutomaton*> consensus(static_cast<std::size_t>(n));
  std::vector<bool> decided(static_cast<std::size_t>(n), false);
  for (Pid p = 0; p < n; ++p) {
    consensus[static_cast<std::size_t>(p)] =
        dynamic_cast<ConsensusAutomaton*>(result.automata[static_cast<std::size_t>(p)].get());
  }

  // Hot-loop metric handles (references into result.metrics stay stable).
  trace::MetricsRegistry& metrics = result.metrics;
  std::int64_t& m_steps = metrics.counter("scheduler.steps");
  std::int64_t& m_lambda = metrics.counter("scheduler.lambda_steps");
  std::int64_t& m_delivers = metrics.counter("scheduler.delivers");
  std::int64_t& m_forced = metrics.counter("scheduler.forced_deliveries");
  std::int64_t& m_shuffled = metrics.counter("scheduler.shuffled_deliveries");
  std::int64_t& m_sends = metrics.counter("scheduler.sends");
  std::int64_t& m_decides = metrics.counter("scheduler.decides");
  trace::Histogram& m_delay = metrics.histogram("scheduler.delivery_delay");
  trace::Histogram& m_payload = metrics.histogram("scheduler.payload_bytes");
  // Messages examined when the fairness backstop fires: with the
  // destination-sharded buffer this is the length of ONE shard (the
  // stale destination's FIFO), not the global pending count — the
  // histogram makes that win visible in reports.
  trace::Histogram& m_scan = metrics.histogram("scheduler.pending_scan_length");
  // Registered lazily: runs without the injection hook must keep
  // byte-identical metrics content.
  std::int64_t* m_injected =
      opts.inject_delivery ? &metrics.counter("scheduler.injected_choices")
                           : nullptr;

#ifndef NUCON_DISABLE_TRACING
  const bool hash_states =
      opts.trace != nullptr && opts.trace->options().state_hashes;
  std::vector<std::uint64_t> last_state_hash(static_cast<std::size_t>(n), 0);
#endif

#ifndef NUCON_DISABLE_PROFILING
  // Collectors may be reused across runs (the n-scaling bench accumulates
  // per grid row), so the deterministic fold at the end charges only the
  // calls THIS run added.
  std::array<std::int64_t, prof::kPhaseCount> prof_calls_before{};
  if (opts.profile != nullptr) {
    for (int i = 0; i < prof::kPhaseCount; ++i) {
      prof_calls_before[static_cast<std::size_t>(i)] =
          opts.profile->phase(static_cast<prof::Phase>(i)).calls;
    }
  }
#endif

  Rng rng(opts.seed);
  MessageBuffer buffer;
  std::vector<std::uint64_t> send_seq(static_cast<std::size_t>(n), 0);

  const ProcessSet schedulable = opts.restrict_to.empty()
                                     ? ProcessSet::full(n)
                                     : opts.restrict_to;
  const bool timed = opts.timing.enabled;

  Time now = 0;
  std::int64_t steps_taken = 0;
  std::int64_t round_index = 0;
  std::vector<Pid> order;
  std::vector<Outgoing> sends;

  // Lap-based step timer: null collector = one predictable branch per
  // phase boundary; NUCON_DISABLE_PROFILING = no probe code at all.
  prof::StepProbe probe(opts.profile);

  while (steps_taken < opts.max_steps) {
    // One macro round: every process that is alive when its turn comes
    // takes exactly one step, in a fresh random order. This yields
    // property (6): correct processes take infinitely many steps.
    order.clear();
    for (Pid p : schedulable) order.push_back(p);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }

    bool anyone_stepped = false;
    for (Pid p : order) {
      ++now;
      if (!fp.alive_at(p, now)) continue;
      // A speed-skewed process burns its slot without stepping on most
      // rounds; it still counts as alive so the all-crashed exit below
      // never fires on a purely slow (but correct) system.
      anyone_stepped = true;
      if (timed && round_index % opts.timing.speed_of(p) != 0) continue;

      probe.begin();
      std::optional<Delivery> delivery;
      bool injected = false;
      if (opts.inject_delivery) {
        const std::size_t pending = buffer.pending_for(p);
        const int choice = opts.inject_delivery(p, now, pending);
        if (choice != kInjectDefer) {
          injected = true;
          ++*m_injected;
          if (choice >= 0 && pending > 0) {
            delivery = Delivery{static_cast<std::size_t>(choice) % pending,
                                false, false};
          }
          // kInjectLambda (or an index with nothing pending) stays nullopt.
        }
      }
      if (!injected) {
        delivery = timed ? choose_delivery_timed(buffer, p, now)
                         : choose_delivery(buffer, p, now, opts, rng);
      }
      std::optional<Message> msg;
      if (delivery && delivery->forced) {
        m_scan.add(static_cast<std::int64_t>(buffer.pending_for(p)));
      }
      if (delivery) msg = buffer.take(p, delivery->index);
      probe.lap(prof::Phase::kDeliveryChoice);

      const FdValue d = oracle.value(p, now);
      probe.lap(prof::Phase::kOracleSample);

      StepRecord rec;
      rec.p = p;
      rec.d = d;
      rec.t = now;
      if (msg) rec.received = msg->id;
      if (opts.record_run) result.run.steps.push_back(rec);

      ++m_steps;
      NUCON_TRACE(opts.trace, on_step(rec));
      NUCON_TRACE(opts.trace, on_oracle_query(p, now, d));
      if (msg) {
        ++m_delivers;
        m_forced += delivery->forced;
        m_shuffled += delivery->shuffled;
        m_delay.add(now - msg->sent_at);
        NUCON_TRACE(opts.trace, on_deliver(p, *msg, now, delivery->forced));
      } else {
        ++m_lambda;
      }
      probe.lap(prof::Phase::kTraceHook);

      sends.clear();
      if (msg) {
        const Incoming in{msg->id.sender, &msg->payload.get(), &msg->payload};
        result.automata[static_cast<std::size_t>(p)]->step(&in, d, sends);
      } else {
        result.automata[static_cast<std::size_t>(p)]->step(nullptr, d, sends);
      }
      probe.lap(prof::Phase::kAutomatonStep);

      for (Outgoing& o : sends) {
        assert(o.to >= 0 && o.to < n);
        Message m;
        m.id = MsgId{p, ++send_seq[static_cast<std::size_t>(p)]};
        m.to = o.to;
        m.sent_at = now;
        m.ready_at =
            timed ? now + opts.timing.message_delay(p, m.id.seq, o.to) : now;
        m.payload = std::move(o.payload);  // moves the share, not the bytes
        result.bytes_sent += m.payload.size();
        ++result.messages_sent;
        ++m_sends;
        m_payload.add(static_cast<std::int64_t>(m.payload.size()));
        NUCON_TRACE(opts.trace, on_send(p, m));
        buffer.add(std::move(m));
      }
      probe.lap(prof::Phase::kPayloadEncode);

#ifndef NUCON_DISABLE_TRACING
      if (hash_states) {
        const auto snap =
            result.automata[static_cast<std::size_t>(p)]->snapshot();
        if (snap) {
          const std::uint64_t h = trace::state_hash_of(*snap);
          auto& last = last_state_hash[static_cast<std::size_t>(p)];
          if (h != last) {
            last = h;
            opts.trace->on_state_transition(p, now, h);
          }
        }
      }
#endif

      ConsensusAutomaton* c = consensus[static_cast<std::size_t>(p)];
      if (c != nullptr && !decided[static_cast<std::size_t>(p)]) {
        if (const auto decision = c->decision()) {
          decided[static_cast<std::size_t>(p)] = true;
          ++m_decides;
          NUCON_TRACE(opts.trace, on_decide(p, now, *decision));
        }
      }

      if (opts.on_step) opts.on_step(rec, result.automata);
      // State hashing, decide detection and the observer are bookkeeping
      // like the earlier record/trace block: charged to the same phase.
      probe.lap(prof::Phase::kTraceHook);
      probe.finish();

      if (++steps_taken >= opts.max_steps) break;
    }
    ++round_index;

#ifndef NDEBUG
    // Shard/global bookkeeping agreement: the per-destination queue sizes
    // must always sum to the buffer's global pending count.
    {
      std::size_t shard_sum = 0;
      for (Pid q = 0; q < n; ++q) shard_sum += buffer.pending_for(q);
      assert(shard_sum == buffer.total_pending());
    }
#endif

    if (opts.stop_when && opts.stop_when(result.automata)) {
      result.stopped_by_predicate = true;
      break;
    }
    // All schedulable processes crashed: nothing further can happen.
    if (!anyone_stepped) break;
  }

  result.steps_taken = static_cast<std::size_t>(steps_taken);
  result.end_time = now;
  result.undelivered_at_end = buffer.total_pending();
  metrics.counter("scheduler.end_time") = now;
  metrics.counter("scheduler.undelivered_at_end") =
      static_cast<std::int64_t>(result.undelivered_at_end);

#ifndef NUCON_DISABLE_PROFILING
  // Deterministic side of the profile: per-phase call counts are a pure
  // function of the run, so they join the registry (and thus the sweep
  // fold) as `prof.<phase>.calls`. Registered only when a collector is
  // attached — unprofiled runs keep byte-identical metrics. Tick timings
  // stay in the collector; they are wall-clock and belong to the
  // include_timings side of reports.
  if (opts.profile != nullptr) {
    for (int i = 0; i < prof::kPhaseCount; ++i) {
      const auto ph = static_cast<prof::Phase>(i);
      metrics.counter(std::string("prof.") + prof::phase_name(ph) +
                      ".calls") +=
          opts.profile->phase(ph).calls -
          prof_calls_before[static_cast<std::size_t>(i)];
    }
  }
#endif
  return result;
}

SimResult simulate_consensus(const FailurePattern& fp, Oracle& oracle,
                             const ConsensusFactory& make,
                             const std::vector<Value>& proposals,
                             SchedulerOptions opts) {
  // A hard error, not an assert: release builds (and the sweep engine's
  // worker threads) must reject a malformed grid point instead of indexing
  // past the end of the proposal vector.
  if (proposals.size() != static_cast<std::size_t>(fp.n())) {
    throw std::invalid_argument(
        "simulate_consensus: proposals.size() must equal fp.n()");
  }
  if (!opts.stop_when) {
    opts.stop_when = [&fp](const std::vector<std::unique_ptr<Automaton>>& a) {
      return all_correct_decided(fp, a);
    };
  }
  const AutomatonFactory factory = [&make, &proposals](Pid p) {
    return make(p, proposals[static_cast<std::size_t>(p)]);
  };
  return simulate(fp, oracle, factory, opts);
}

bool all_correct_decided(
    const FailurePattern& fp,
    const std::vector<std::unique_ptr<Automaton>>& automata) {
  for (Pid p : fp.correct()) {
    const auto* c =
        dynamic_cast<const ConsensusAutomaton*>(automata[static_cast<std::size_t>(p)].get());
    if (c == nullptr || !c->decision()) return false;
  }
  return true;
}

}  // namespace nucon
