// Human-readable rendering of recorded runs, for debugging and the
// nucon_explore CLI.
#pragma once

#include <string>

#include "sim/run.hpp"

namespace nucon {

struct TraceOptions {
  /// Render at most this many steps (0 = all); when truncating, the head
  /// and tail are shown.
  std::size_t max_steps = 120;
  /// Include the failure-detector value seen in each step.
  bool show_fd = true;
};

/// One line per step: time, process, received message (or lambda), and the
/// detector value, plus a header describing the failure pattern.
[[nodiscard]] std::string render_trace(const Run& run,
                                       const TraceOptions& opts = {});

}  // namespace nucon
