#include "sim/failure_pattern.hpp"

#include <algorithm>
#include <cassert>

namespace nucon {

FailurePattern::FailurePattern(Pid n)
    : n_(n), crash_times_(static_cast<std::size_t>(n), kNeverCrashes) {
  assert(n >= 1 && n <= kMaxProcesses);
}

FailurePattern::FailurePattern(Pid n, std::vector<Time> crash_times)
    : n_(n), crash_times_(std::move(crash_times)) {
  assert(n >= 1 && n <= kMaxProcesses);
  assert(crash_times_.size() == static_cast<std::size_t>(n));
  for (Pid p = 0; p < n_; ++p) {
    const Time ct = crash_times_[static_cast<std::size_t>(p)];
    assert(ct == kNeverCrashes || ct >= 0);
    if (ct != kNeverCrashes) faulty_.insert(p);
  }
}

ProcessSet FailurePattern::crashed_at(Time t) const {
  ProcessSet out;
  for (Pid p : faulty_) {
    if (crash_times_[static_cast<std::size_t>(p)] <= t) out.insert(p);
  }
  return out;
}

Time FailurePattern::all_faulty_crashed_by() const {
  Time latest = 0;
  for (Pid p : faulty_) {
    latest = std::max(latest, crash_times_[static_cast<std::size_t>(p)]);
  }
  return latest;
}

void FailurePattern::set_crash(Pid p, Time t) {
  assert(p >= 0 && p < n_);
  assert(t >= 0);
  crash_times_[static_cast<std::size_t>(p)] = t;
  faulty_.insert(p);
}

std::string FailurePattern::to_string() const {
  std::string out = "F{n=" + std::to_string(n_);
  for (Pid p : faulty_) {
    out += ", " + std::to_string(p) + "@" +
           std::to_string(crash_times_[static_cast<std::size_t>(p)]);
  }
  out += '}';
  return out;
}

FailurePattern Environment::sample(Rng& rng, Pid faults,
                                   Time latest_crash) const {
  assert(faults >= 0 && faults <= max_faulty && faults < n);
  FailurePattern fp(n);
  const ProcessSet victims =
      rng.pick_subset(ProcessSet::full(n), faults);
  for (Pid p : victims) {
    fp.set_crash(p, rng.range(0, latest_crash));
  }
  return fp;
}

FailurePattern Environment::sample(Rng& rng, Time latest_crash) const {
  const Pid faults = static_cast<Pid>(
      rng.range(0, std::min<Pid>(max_faulty, static_cast<Pid>(n - 1))));
  return sample(rng, faults, latest_crash);
}

}  // namespace nucon
