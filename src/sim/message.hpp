// The message buffer M (paper §2.1).
//
// M is the multiset of (sender, payload, receiver) triples in flight.
// Messages are identified by (sender, sender-sequence-number), which makes
// every message unique (the paper assumes sender-side counters for the same
// reason) and lets recorded schedules be replayed deterministically.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sim/failure_pattern.hpp"
#include "util/bytes.hpp"
#include "util/process_set.hpp"
#include "util/shared_bytes.hpp"

namespace nucon {

/// Identifies one message: the k-th message ever sent by `sender`
/// (counting across all destinations, starting at 1).
struct MsgId {
  Pid sender = -1;
  std::uint64_t seq = 0;

  friend bool operator==(const MsgId&, const MsgId&) = default;
};

struct Message {
  MsgId id;
  Pid to = -1;
  /// Refcounted: the n messages of one broadcast share one sealed buffer.
  SharedBytes payload;
  Time sent_at = 0;
  /// Earliest time the timing-aware scheduler mode (sim/timing.hpp) will
  /// deliver the message; equals sent_at (and is ignored) when the mode is
  /// off. Not monotone within a queue — jitter differs per message.
  Time ready_at = 0;
};

/// In-flight messages, grouped per destination in send order. The
/// scheduler decides which (if any) pending message a step receives; the
/// buffer only tracks what is deliverable.
class MessageBuffer {
 public:
  /// Appends to the destination's FIFO. Send times are nondecreasing per
  /// queue (the simulation clock only moves forward), asserted in debug
  /// builds; oldest_sent_at() reads the front in O(1) on that invariant.
  void add(Message m);

  /// Number of messages pending for q.
  [[nodiscard]] std::size_t pending_for(Pid q) const;

  [[nodiscard]] std::size_t total_pending() const { return total_; }

  /// The i-th oldest pending message for q (0-based); i < pending_for(q).
  [[nodiscard]] const Message& peek(Pid q, std::size_t i) const;

  /// Removes and returns the i-th oldest pending message for q.
  [[nodiscard]] Message take(Pid q, std::size_t i);

  /// Removes and returns the pending message for q with the given id, if
  /// present (used when replaying recorded schedules).
  [[nodiscard]] std::optional<Message> take_by_id(Pid q, MsgId id);

  /// Oldest pending send time for q, if any (fairness bookkeeping).
  [[nodiscard]] std::optional<Time> oldest_sent_at(Pid q) const;

 private:
  // One FIFO per destination; indexed by pid. Grown lazily to the highest
  // destination seen: a fixed kMaxProcesses array of deques would cost
  // ~0.5MB per buffer (libstdc++ preallocates a node per deque) and the
  // checkers clone buffers freely.
  std::vector<std::deque<Message>> queues_;
  std::size_t total_ = 0;
};

}  // namespace nucon
