// Run merging (paper §2.10, Lemma 2.2).
//
// Two finite runs of the same algorithm under the same failure pattern and
// FD history are mergeable when their participant sets are disjoint and the
// algorithm has an initial configuration agreeing with both. A merging
// interleaves their steps in nondecreasing time order; Lemma 2.2 says the
// result is again a run and each participant ends in the same state as in
// its original run. This is the engine of the paper's partition arguments
// (Lemma 5.3, Theorem 7.1).
#pragma once

#include <optional>
#include <string>

#include "sim/run.hpp"

namespace nucon {

/// True iff the runs' participant sets are disjoint (condition (a) of
/// mergeability; condition (b) — a compatible initial configuration — is
/// the caller's obligation, discharged by the factory used to replay).
[[nodiscard]] bool mergeable(const Run& r0, const Run& r1);

/// Merges two mergeable runs recorded under the same failure pattern.
/// Returns nullopt (with a reason in *error if non-null) when the inputs
/// are not mergeable or were recorded under different patterns.
[[nodiscard]] std::optional<Run> merge_runs(const Run& r0, const Run& r1,
                                            std::string* error = nullptr);

}  // namespace nucon
