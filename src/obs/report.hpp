// Machine-readable sweep & bench reports, plus the markdown renderer.
//
// Three consumers, one model:
//
//   - SweepRunner::set_report_path(path) writes a versioned JSON report
//     of every sweep it executes (per-cell verdict counts, folded
//     metrics, failure artifacts with attached trace paths, wall-clock
//     per phase);
//   - every bench binary funnels its experiment tables and sweep results
//     through a BenchReport and writes BENCH_<name>.json, populating the
//     perf trajectory;
//   - report_markdown() renders the same data as the markdown tables
//     EXPERIMENTS.md used to hand-maintain.
//
// Determinism contract: with include_timings=false, report_json() is a
// pure function of the folded sweep results — every field is produced by
// the serial expansion-order fold — so the string is bit-identical for
// any thread count. Wall-clock fields only exist behind the flag.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "prof/profiler.hpp"

namespace nucon::obs {

/// Report schema version, stamped as `"v"` into every emitted JSON
/// document and checked by validate_report_json (which still accepts v1
/// documents: the bench/history ledger may hold pre-profiling entries).
/// v2 added the "profiles" section (hot-path phase breakdowns).
inline constexpr std::int64_t kReportSchemaVersion = 2;

/// One folded sweep: verdict counts, cost means, metrics, failures.
struct SweepSection {
  std::string name;
  std::string spec;  // human-readable grid / points description

  std::int64_t runs = 0;
  std::int64_t undecided = 0;
  std::int64_t termination_failures = 0;
  std::int64_t uniform_violations = 0;
  std::int64_t nonuniform_violations = 0;
  std::int64_t expectation_failures = 0;

  double mean_decide_round = 0.0;
  double mean_steps = 0.0;
  double mean_messages = 0.0;
  double mean_kbytes = 0.0;

  trace::MetricsRegistry metrics;

  std::vector<std::string> failure_artifacts;
  /// Parallel to failure_artifacts; empty strings when no trace attached.
  std::vector<std::string> failure_trace_paths;

  /// Nondeterministic; emitted only with include_timings.
  double wall_seconds = 0.0;
  /// Simulated steps per wall-clock second of the parallel phase.
  /// Nondeterministic like wall_seconds; emitted only with include_timings.
  double steps_per_second = 0.0;
};

/// One experiment table, exactly as the bench printed it.
struct TableSection {
  std::string title;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

/// One hot-path phase of a profile section (prof/profiler.hpp taxonomy).
/// seconds/ns_per_call/share are wall-clock — like wall_seconds they are
/// emitted only behind include_timings; calls alone is deterministic.
struct ProfilePhaseRow {
  std::string phase;
  std::int64_t calls = 0;
  double seconds = 0.0;
  double ns_per_call = 0.0;
  /// This phase's fraction of the step envelope.
  double share = 0.0;
};

/// Per-phase breakdown of one profiled workload (e.g. "anuc n=64"):
/// the kStep envelope plus the inner phases that partition it.
struct ProfileSection {
  std::string name;
  std::int64_t steps = 0;        ///< envelope calls
  double step_seconds = 0.0;     ///< total wall-clock inside the envelope
  double ns_per_step = 0.0;
  /// sum(inner phase time) / envelope time; the acceptance floor the
  /// prof tests pin is >= 0.9.
  double covered_fraction = 0.0;
  std::vector<ProfilePhaseRow> phases;  ///< inner phases only (no kStep)
};

struct BenchReport {
  std::string name;  // e.g. "E6" -> BENCH_E6.json
  std::vector<TableSection> tables;
  std::vector<SweepSection> sweeps;
  /// Hot-path phase breakdowns (nondeterministic timings; the whole
  /// section is emitted only behind include_timings).
  std::vector<ProfileSection> profiles;
  /// Named wall-clock phases (nondeterministic; include_timings only).
  std::map<std::string, double> timings;
};

/// Folds a whole SweepResult into a section (counts and means match the
/// aggregate bit for bit; failures carry their attached trace paths).
[[nodiscard]] SweepSection section_of(std::string name, std::string spec,
                                      const exp::SweepResult& result);

/// Folds the selected jobs only (e.g. one grid cell). Indices refer to
/// `jobs`; fold order is index order, so the result is deterministic.
[[nodiscard]] SweepSection section_of_jobs(
    std::string name, std::string spec,
    const std::vector<exp::JobOutcome>& jobs,
    const std::vector<std::size_t>& indices);

/// Renders a collector into a report section: the kStep envelope becomes
/// steps/step_seconds, every non-empty inner phase a ProfilePhaseRow.
[[nodiscard]] ProfileSection profile_section_of(
    std::string name, const prof::ProfileCollector& collector);

/// The JSON document. include_timings=false omits every wall-clock field,
/// leaving a string that is bit-identical for any thread count.
[[nodiscard]] std::string report_json(const BenchReport& report,
                                      bool include_timings = true);

/// Markdown rendering: one `##` section per report, `###` per table and
/// a summary table over the sweep sections.
[[nodiscard]] std::string report_markdown(const BenchReport& report);

/// Writes report_json(report, true) to `path`; false on I/O failure.
/// Atomic: the document is written to `path + ".tmp"` and renamed into
/// place, so an interrupted bench can never leave a truncated JSON behind
/// (re-runs replace the previous report either way).
bool write_report_json(const BenchReport& report, const std::string& path);

/// Structural validation of an emitted report: JSON syntax, schema
/// version, required keys with the right shapes. Returns the first
/// problem found, or nullopt when the document conforms.
[[nodiscard]] std::optional<std::string> validate_report_json(
    const std::string& json);

}  // namespace nucon::obs
