// Decision provenance: why did this process decide this value?
//
// For a `decide` event, walks its causal cone (obs/causal_graph.hpp) and
// extracts the contamination story the paper's §6.3 scenario is built
// around: which processes' events reached the decider, which
// failure-detector values (leader / quorum) were sampled along those
// paths, which *other* decisions sit in the cone — and, when a faulty
// process's decision propagated, the first message edge that carried the
// faulty decider's value into a correct process. That edge is the paper's
// counterexample made concrete: send/deliver sequence numbers and sim
// times of the exact message through which nonuniform agreement was lost.
//
// tools/trace_explain renders this; everything is a pure function of the
// trace, so explanations are deterministic and testable.
#pragma once

#include <string>
#include <vector>

#include "obs/causal_graph.hpp"

namespace nucon::obs {

/// The first message edge carrying a faulty decider's value into a
/// correct process. `found` is false when no faulty decision sits in the
/// explained decide's cone (nothing to contaminate with).
struct ContaminationEdge {
  bool found = false;

  // The faulty process whose lone decision started the chain.
  Pid faulty_decider = -1;
  Time faulty_decide_t = 0;
  std::int64_t faulty_value = 0;
  EventIndex faulty_decide_event = kNoEvent;

  // The first send causally after that decision whose delivery reached a
  // correct process, with both endpoints' sim times.
  EventIndex send_event = kNoEvent;
  EventIndex deliver_event = kNoEvent;
  Pid from = -1;
  Pid to = -1;  // the correct process the value reached
  std::int64_t seq = -1;
  Time send_t = 0;
  Time deliver_t = 0;

  /// True when the contaminating delivery is itself in the explained
  /// decide's causal cone (the chain demonstrably fed this decision, not
  /// just some correct process's state).
  bool reaches_decider = false;
};

/// What the cone of one decide event contains.
struct Provenance {
  EventIndex decide_event = kNoEvent;
  Pid decider = -1;
  bool decider_correct = false;
  Time t = 0;
  std::int64_t value = 0;

  std::size_t cone_size = 0;
  /// Processes with at least one event in the cone (the decider included).
  ProcessSet contributors;
  /// Oracle samples in the cone, recorded order (FD values the decision
  /// could have depended on).
  std::vector<EventIndex> oracle_events;
  /// Decide events of *other* processes in the cone, recorded order:
  /// decisions the decider could have known about.
  std::vector<EventIndex> foreign_decides;

  ContaminationEdge contamination;
};

/// Explains one decide event (must be index of a "decide" in g.trace()).
[[nodiscard]] Provenance explain_decide(const CausalGraph& g,
                                        EventIndex decide_event);

/// Human-readable rendering (multi-line, trailing newline).
[[nodiscard]] std::string render_provenance(const CausalGraph& g,
                                            const Provenance& p);

/// Machine-readable rendering: one JSON object (no trailing newline).
[[nodiscard]] std::string provenance_json(const CausalGraph& g,
                                          const Provenance& p);

}  // namespace nucon::obs
