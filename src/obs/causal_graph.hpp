// Happens-before reconstruction over a parsed run trace.
//
// The trace layer records a flat per-process timeline; this header turns
// it into the causal structure the paper's arguments are actually about.
// Nodes are the events of a ParsedTrace (by index); edges are
//
//   - program order: each event has the previous event of the same
//     process as predecessor (one chain per process, in recorded order);
//   - message order: every `deliver` is preceded by its matched `send`,
//     paired by the globally unique (sender, seq) message id.
//
// Oracle samples need no edge of their own: the recorder emits them
// inside the step they were sampled at, so program order already attaches
// them to that step.
//
// `causal_cone(e)` is then the set of events that could have influenced
// `e` — Lamport's happens-before closed under both edge kinds — which is
// what decision provenance (obs/provenance.hpp) walks. One recording
// caveat, documented here because cone users depend on it: within one
// scheduler step the recorder emits `step`, `oracle`, `deliver`, the
// `send`s, then `decide`, all at the same sim time. The message edge
// lands on the `deliver` event, so the step's *outputs* (sends, decide)
// are causally after the delivered message's history, while the `step`
// header event itself is not. Influence queries should therefore anchor
// on output events (sends, decides), never on the `step` record.
//
// Everything here is a pure function of trace bytes: same trace, same
// graph, same cones — golden-testable like the traces themselves.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "trace/trace_reader.hpp"

namespace nucon::obs {

using EventIndex = std::size_t;
inline constexpr EventIndex kNoEvent = static_cast<EventIndex>(-1);

class CausalGraph {
 public:
  /// One node per trace event; kNoEvent marks an absent edge.
  struct Node {
    EventIndex program_pred = kNoEvent;  // previous event of the same process
    EventIndex program_succ = kNoEvent;  // next event of the same process
    EventIndex message_pred = kNoEvent;  // deliver only: the matched send
    EventIndex message_succ = kNoEvent;  // send only: the matched deliver
  };

  /// Builds the graph for `trace`, which must outlive the graph (the
  /// graph stores only indices plus a pointer for event lookups).
  explicit CausalGraph(const trace::ParsedTrace& trace);

  [[nodiscard]] const trace::ParsedTrace& trace() const { return *trace_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const Node& node(EventIndex e) const { return nodes_[e]; }

  /// All events that could have influenced `e` (its happens-before
  /// ancestors, including `e` itself), ascending by event index. Recorded
  /// order refines causal order — an effect is always recorded after its
  /// causes — so ascending index order is a valid topological order.
  [[nodiscard]] std::vector<EventIndex> causal_cone(EventIndex e) const;

  /// True iff `a` happens-before (or is) `b`: a ∈ cone(b).
  [[nodiscard]] bool influences(EventIndex a, EventIndex b) const;

  /// All events causally after `e` (its happens-before descendants,
  /// including `e`), ascending. The dual of causal_cone.
  [[nodiscard]] std::vector<EventIndex> causal_future(EventIndex e) const;

  /// Index of the first `decide` event of process p, if it decided.
  [[nodiscard]] std::optional<EventIndex> first_decide_of(Pid p) const;

  /// Indices of every `decide` event, in recorded order.
  [[nodiscard]] const std::vector<EventIndex>& decides() const {
    return decides_;
  }

  /// Sends that were never delivered (crashed receiver, or still in
  /// flight at the end of the recorded prefix), in recorded order.
  [[nodiscard]] std::vector<EventIndex> undelivered_sends() const;

 private:
  /// Reverse-reachability bitmap behind causal_cone / influences.
  [[nodiscard]] std::vector<bool> cone_bitmap(EventIndex e) const;

  const trace::ParsedTrace* trace_;
  std::vector<Node> nodes_;
  std::vector<EventIndex> decides_;
};

}  // namespace nucon::obs
