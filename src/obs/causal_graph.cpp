#include "obs/causal_graph.hpp"

#include <map>
#include <utility>

namespace nucon::obs {

CausalGraph::CausalGraph(const trace::ParsedTrace& trace) : trace_(&trace) {
  const auto& events = trace.events;
  nodes_.resize(events.size());

  // Last event seen per process (program-order chains), and the send event
  // of every in-flight message id. (sender, seq) is globally unique — seq
  // is a per-sender counter across all destinations — so one map suffices.
  std::map<Pid, EventIndex> last_of;
  std::map<std::pair<Pid, std::int64_t>, EventIndex> send_of;

  for (EventIndex i = 0; i < events.size(); ++i) {
    const trace::ParsedEvent& ev = events[i];
    if (ev.p >= 0) {
      const auto it = last_of.find(ev.p);
      if (it != last_of.end()) {
        nodes_[i].program_pred = it->second;
        nodes_[it->second].program_succ = i;
      }
      last_of[ev.p] = i;
    }
    if (ev.kind == "send" && ev.seq >= 0) {
      send_of[{ev.p, ev.seq}] = i;
    } else if (ev.kind == "deliver" && ev.seq >= 0) {
      // ev.peer is the sender for deliver events.
      const auto it = send_of.find({ev.peer, ev.seq});
      if (it != send_of.end()) {
        nodes_[i].message_pred = it->second;
        nodes_[it->second].message_succ = i;
      }
    } else if (ev.kind == "decide") {
      decides_.push_back(i);
    }
  }
}

std::vector<bool> CausalGraph::cone_bitmap(EventIndex e) const {
  std::vector<bool> in_cone(nodes_.size(), false);
  if (e >= nodes_.size()) return in_cone;
  // DFS over the two predecessor edges. Recorded order refines causal
  // order, so every predecessor has a smaller index and termination is by
  // strictly decreasing frontier.
  std::vector<EventIndex> stack{e};
  in_cone[e] = true;
  while (!stack.empty()) {
    const EventIndex cur = stack.back();
    stack.pop_back();
    for (const EventIndex pred :
         {nodes_[cur].program_pred, nodes_[cur].message_pred}) {
      if (pred != kNoEvent && !in_cone[pred]) {
        in_cone[pred] = true;
        stack.push_back(pred);
      }
    }
  }
  return in_cone;
}

std::vector<EventIndex> CausalGraph::causal_cone(EventIndex e) const {
  const std::vector<bool> in_cone = cone_bitmap(e);
  std::vector<EventIndex> out;
  for (EventIndex i = 0; i < in_cone.size(); ++i) {
    if (in_cone[i]) out.push_back(i);
  }
  return out;
}

bool CausalGraph::influences(EventIndex a, EventIndex b) const {
  if (a >= nodes_.size() || b >= nodes_.size() || a > b) return false;
  return cone_bitmap(b)[a];
}

std::vector<EventIndex> CausalGraph::causal_future(EventIndex e) const {
  std::vector<EventIndex> out;
  if (e >= nodes_.size()) return out;
  std::vector<bool> reached(nodes_.size(), false);
  std::vector<EventIndex> stack{e};
  reached[e] = true;
  while (!stack.empty()) {
    const EventIndex cur = stack.back();
    stack.pop_back();
    for (const EventIndex succ :
         {nodes_[cur].program_succ, nodes_[cur].message_succ}) {
      if (succ != kNoEvent && !reached[succ]) {
        reached[succ] = true;
        stack.push_back(succ);
      }
    }
  }
  for (EventIndex i = e; i < reached.size(); ++i) {
    if (reached[i]) out.push_back(i);
  }
  return out;
}

std::optional<EventIndex> CausalGraph::first_decide_of(Pid p) const {
  for (const EventIndex e : decides_) {
    if (trace_->events[e].p == p) return e;
  }
  return std::nullopt;
}

std::vector<EventIndex> CausalGraph::undelivered_sends() const {
  std::vector<EventIndex> out;
  for (EventIndex i = 0; i < nodes_.size(); ++i) {
    if (trace_->events[i].kind == "send" &&
        nodes_[i].message_succ == kNoEvent) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace nucon::obs
