// Trace diffing: where do two runs first part ways?
//
// Traces are byte-deterministic, so two traces of the same SweepPoint are
// byte-identical and any difference is meaningful. Aligning two traces
// event-by-event and reporting the *first* divergent event (with its
// causal context) turns two recurring workflows into one comparison:
//
//   - determinism triage: same point, two machines/thread counts — the
//     first divergent event localizes the nondeterminism;
//   - what-if comparison: same seed, different oracle mode or algorithm —
//     the first divergent event is where the knob started to matter.
//
// Surfaced as `trace_dump --diff A B`.
#pragma once

#include <string>
#include <vector>

#include "obs/causal_graph.hpp"

namespace nucon::obs {

struct TraceDiff {
  /// True when the event streams differ (meta differences alone do not
  /// set this — two runs of different points legitimately carry different
  /// artifact strings yet may schedule identically).
  bool diverged = false;

  /// Index of the first divergent event: the first position where the
  /// raw event lines differ, or min(size_a, size_b) when one trace is a
  /// strict prefix of the other.
  std::size_t event_index = 0;

  /// The divergent events' raw lines; empty on the side whose trace
  /// already ended.
  std::string a_line;
  std::string b_line;

  std::size_t a_events = 0;
  std::size_t b_events = 0;

  /// True when the meta headers disagree (n, correct set, or expectation
  /// flavor); reported alongside, never as divergence.
  bool meta_differs = false;

  /// Causal context: the last events (up to the context cap) of the
  /// divergent event's causal cone in each trace — what led up to the
  /// split, per side. For a side whose trace ended, the cone of its last
  /// event.
  std::vector<EventIndex> a_context;
  std::vector<EventIndex> b_context;
};

/// Aligns `a` and `b` event-by-event; context_cap bounds the per-side
/// causal context (most recent cone events kept).
[[nodiscard]] TraceDiff diff_traces(const trace::ParsedTrace& a,
                                    const trace::ParsedTrace& b,
                                    std::size_t context_cap = 6);

}  // namespace nucon::obs
