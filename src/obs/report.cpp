#include "obs/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace nucon::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-tripping decimal rendering; deterministic for the
/// serially folded doubles the report carries.
std::string double_json(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

std::string metrics_json(const trace::MetricsRegistry& metrics) {
  std::ostringstream os;
  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : metrics.counters()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : metrics.histograms()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{\"count\":" << h.count()
       << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
       << ",\"max\":" << h.max() << ",\"p50\":" << h.quantile(0.5)
       << ",\"p90\":" << h.quantile(0.9) << ",\"p99\":" << h.quantile(0.99)
       << "}";
  }
  os << "}";
  return os.str();
}

std::string profile_section_json(const ProfileSection& p) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(p.name) << "\",\"steps\":" << p.steps
     << ",\"step_seconds\":" << double_json(p.step_seconds)
     << ",\"ns_per_step\":" << double_json(p.ns_per_step)
     << ",\"covered_fraction\":" << double_json(p.covered_fraction)
     << ",\"phases\":[";
  for (std::size_t i = 0; i < p.phases.size(); ++i) {
    const ProfilePhaseRow& row = p.phases[i];
    if (i > 0) os << ",";
    os << "{\"phase\":\"" << json_escape(row.phase)
       << "\",\"calls\":" << row.calls
       << ",\"seconds\":" << double_json(row.seconds)
       << ",\"ns_per_call\":" << double_json(row.ns_per_call)
       << ",\"share\":" << double_json(row.share) << "}";
  }
  os << "]}";
  return os.str();
}

std::string sweep_section_json(const SweepSection& s, bool include_timings) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(s.name) << "\",\"spec\":\""
     << json_escape(s.spec) << "\",\"runs\":" << s.runs
     << ",\"undecided\":" << s.undecided
     << ",\"termination_failures\":" << s.termination_failures
     << ",\"uniform_violations\":" << s.uniform_violations
     << ",\"nonuniform_violations\":" << s.nonuniform_violations
     << ",\"expectation_failures\":" << s.expectation_failures
     << ",\"mean_decide_round\":" << double_json(s.mean_decide_round)
     << ",\"mean_steps\":" << double_json(s.mean_steps)
     << ",\"mean_messages\":" << double_json(s.mean_messages)
     << ",\"mean_kbytes\":" << double_json(s.mean_kbytes) << ","
     << metrics_json(s.metrics) << ",\"failures\":[";
  for (std::size_t i = 0; i < s.failure_artifacts.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"artifact\":\"" << json_escape(s.failure_artifacts[i]) << "\"";
    if (i < s.failure_trace_paths.size() && !s.failure_trace_paths[i].empty()) {
      os << ",\"trace\":\"" << json_escape(s.failure_trace_paths[i]) << "\"";
    }
    os << "}";
  }
  os << "]";
  if (include_timings) {
    os << ",\"wall_seconds\":" << double_json(s.wall_seconds)
       << ",\"steps_per_second\":" << double_json(s.steps_per_second);
  }
  os << "}";
  return os.str();
}

}  // namespace

SweepSection section_of(std::string name, std::string spec,
                        const exp::SweepResult& result) {
  SweepSection s;
  s.name = std::move(name);
  s.spec = std::move(spec);
  const exp::SweepAggregate& agg = result.aggregate;
  s.runs = agg.runs;
  s.undecided = agg.undecided;
  s.termination_failures = agg.termination_failures;
  s.uniform_violations = agg.uniform_violations;
  s.nonuniform_violations = agg.nonuniform_violations;
  s.expectation_failures = agg.expectation_failures;
  s.mean_decide_round = agg.decide_rounds.mean();
  s.mean_steps = agg.steps.mean();
  s.mean_messages = agg.messages.mean();
  s.mean_kbytes = agg.kbytes.mean();
  s.metrics = agg.metrics;
  for (const exp::ReplayArtifact& a : agg.failures) {
    s.failure_artifacts.push_back(a.to_string());
  }
  s.failure_trace_paths = agg.failure_trace_paths;
  s.failure_trace_paths.resize(s.failure_artifacts.size());
  s.wall_seconds = result.wall_seconds;
  s.steps_per_second = result.steps_per_second;
  return s;
}

SweepSection section_of_jobs(std::string name, std::string spec,
                             const std::vector<exp::JobOutcome>& jobs,
                             const std::vector<std::size_t>& indices) {
  SweepSection s;
  s.name = std::move(name);
  s.spec = std::move(spec);
  Accumulator rounds, steps, messages, kbytes;
  for (const std::size_t i : indices) {
    const exp::JobOutcome& job = jobs[i];
    ++s.runs;
    if (!job.stats.all_correct_decided) ++s.undecided;
    if (!job.stats.verdict.termination) ++s.termination_failures;
    if (!job.stats.verdict.uniform_agreement) ++s.uniform_violations;
    if (!job.stats.verdict.nonuniform_agreement) ++s.nonuniform_violations;
    if (!job.ok) {
      ++s.expectation_failures;
      s.failure_artifacts.push_back(exp::ReplayArtifact{job.point}.to_string());
    }
    if (job.stats.decide_round > 0) rounds.add(job.stats.decide_round);
    steps.add(static_cast<double>(job.stats.steps));
    messages.add(static_cast<double>(job.stats.messages_sent));
    kbytes.add(static_cast<double>(job.stats.bytes_sent) / 1024.0);
    s.metrics.merge(job.stats.metrics);
  }
  s.mean_decide_round = rounds.mean();
  s.mean_steps = steps.mean();
  s.mean_messages = messages.mean();
  s.mean_kbytes = kbytes.mean();
  s.failure_trace_paths.resize(s.failure_artifacts.size());
  return s;
}

ProfileSection profile_section_of(std::string name,
                                  const prof::ProfileCollector& collector) {
  ProfileSection p;
  p.name = std::move(name);
  const prof::PhaseStats& envelope =
      collector.phase(prof::Phase::kStep);
  p.steps = envelope.calls;
  p.step_seconds = collector.seconds(prof::Phase::kStep);
  p.ns_per_step = collector.ns_per_call(prof::Phase::kStep);
  p.covered_fraction = collector.covered_fraction();
  for (int i = 0; i < prof::kPhaseCount; ++i) {
    const auto ph = static_cast<prof::Phase>(i);
    if (ph == prof::Phase::kStep) continue;
    const prof::PhaseStats& s = collector.phase(ph);
    if (s.calls == 0) continue;
    ProfilePhaseRow row;
    row.phase = prof::phase_name(ph);
    row.calls = s.calls;
    row.seconds = collector.seconds(ph);
    row.ns_per_call = collector.ns_per_call(ph);
    row.share = envelope.ticks > 0
                    ? static_cast<double>(s.ticks) /
                          static_cast<double>(envelope.ticks)
                    : 0.0;
    p.phases.push_back(std::move(row));
  }
  return p;
}

std::string report_json(const BenchReport& report, bool include_timings) {
  std::ostringstream os;
  os << "{\"v\":" << kReportSchemaVersion << ",\"name\":\""
     << json_escape(report.name) << "\",\"tables\":[";
  for (std::size_t i = 0; i < report.tables.size(); ++i) {
    const TableSection& t = report.tables[i];
    if (i > 0) os << ",";
    os << "{\"title\":\"" << json_escape(t.title) << "\",\"headers\":[";
    for (std::size_t j = 0; j < t.headers.size(); ++j) {
      if (j > 0) os << ",";
      os << "\"" << json_escape(t.headers[j]) << "\"";
    }
    os << "],\"rows\":[";
    for (std::size_t r = 0; r < t.rows.size(); ++r) {
      if (r > 0) os << ",";
      os << "[";
      for (std::size_t j = 0; j < t.rows[r].size(); ++j) {
        if (j > 0) os << ",";
        os << "\"" << json_escape(t.rows[r][j]) << "\"";
      }
      os << "]";
    }
    os << "]}";
  }
  os << "],\"sweeps\":[";
  for (std::size_t i = 0; i < report.sweeps.size(); ++i) {
    if (i > 0) os << ",";
    os << sweep_section_json(report.sweeps[i], include_timings);
  }
  os << "]";
  // Profile sections are wall-clock through and through (tick timings),
  // so like wall_seconds they exist only behind include_timings — the
  // timing-free body stays a pure function of the fold.
  if (include_timings && !report.profiles.empty()) {
    os << ",\"profiles\":[";
    for (std::size_t i = 0; i < report.profiles.size(); ++i) {
      if (i > 0) os << ",";
      os << profile_section_json(report.profiles[i]);
    }
    os << "]";
  }
  if (include_timings && !report.timings.empty()) {
    os << ",\"timings\":{";
    bool first = true;
    for (const auto& [phase, seconds] : report.timings) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(phase) << "\":" << double_json(seconds);
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

std::string report_markdown(const BenchReport& report) {
  std::ostringstream os;
  os << "## " << report.name << "\n";
  for (const TableSection& t : report.tables) {
    os << "\n### " << t.title << "\n\n|";
    for (const std::string& h : t.headers) os << " " << h << " |";
    os << "\n|";
    for (std::size_t j = 0; j < t.headers.size(); ++j) os << "---|";
    os << "\n";
    for (const auto& row : t.rows) {
      os << "|";
      for (const std::string& cell : row) os << " " << cell << " |";
      os << "\n";
    }
  }
  if (!report.profiles.empty()) {
    char buf[64];
    const auto fmt = [&buf](double v, int prec) {
      std::snprintf(buf, sizeof buf, "%.*f", prec, v);
      return std::string(buf);
    };
    for (const ProfileSection& p : report.profiles) {
      os << "\n### profile: " << p.name << "\n\n"
         << "steps=" << p.steps << "  ns/step=" << fmt(p.ns_per_step, 1)
         << "  phase coverage=" << fmt(p.covered_fraction * 100.0, 1)
         << "%\n\n"
         << "| phase | calls | total ms | ns/call | share |\n"
         << "|---|---|---|---|---|\n";
      for (const ProfilePhaseRow& row : p.phases) {
        os << "| " << row.phase << " | " << row.calls << " | "
           << fmt(row.seconds * 1e3, 3) << " | " << fmt(row.ns_per_call, 1)
           << " | " << fmt(row.share * 100.0, 1) << "% |\n";
      }
    }
  }
  if (!report.sweeps.empty()) {
    os << "\n### sweeps\n\n"
       << "| sweep | runs | undecided | term_fail | uniform_viol | "
          "nonuniform_viol | expect_fail | mean_round | mean_steps | "
          "mean_msgs |\n"
       << "|---|---|---|---|---|---|---|---|---|---|\n";
    char buf[64];
    const auto fmt = [&buf](double v, int prec) {
      std::snprintf(buf, sizeof buf, "%.*f", prec, v);
      return std::string(buf);
    };
    for (const SweepSection& s : report.sweeps) {
      os << "| " << s.name << " | " << s.runs << " | " << s.undecided << " | "
         << s.termination_failures << " | " << s.uniform_violations << " | "
         << s.nonuniform_violations << " | " << s.expectation_failures
         << " | " << fmt(s.mean_decide_round, 1) << " | "
         << fmt(s.mean_steps, 0) << " | " << fmt(s.mean_messages, 0)
         << " |\n";
    }
    for (const SweepSection& s : report.sweeps) {
      for (std::size_t i = 0; i < s.failure_artifacts.size(); ++i) {
        os << "\n- `" << s.name << "` failure: `" << s.failure_artifacts[i]
           << "`";
        if (i < s.failure_trace_paths.size() &&
            !s.failure_trace_paths[i].empty()) {
          os << " (trace: `" << s.failure_trace_paths[i] << "`)";
        }
      }
    }
  }
  os << "\n";
  return os.str();
}

bool write_report_json(const BenchReport& report, const std::string& path) {
  const std::string json = report_json(report, /*include_timings=*/true);
  // Write-to-temp-then-rename: a bench killed mid-write leaves at worst a
  // stale *.tmp, never a truncated BENCH_*.json that validate_report_json
  // (or the trend ledger) would later choke on. rename(2) replaces an
  // existing report atomically on every platform this builds on.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = (written == json.size()) && (std::fflush(f) == 0);
  if (std::fclose(f) != 0 || !ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Validation: a minimal JSON parser (syntax only, no number semantics
// beyond strtod) plus structural checks against the schema above.

namespace {

struct JsonCursor {
  const char* s;
  const char* end;
  std::string error;

  void skip_ws() {
    while (s < end && (*s == ' ' || *s == '\t' || *s == '\n' || *s == '\r')) {
      ++s;
    }
  }
  bool fail(const std::string& msg) {
    if (error.empty()) error = msg;
    return false;
  }
};

bool skip_value(JsonCursor& c);

bool skip_string(JsonCursor& c) {
  if (c.s >= c.end || *c.s != '"') return c.fail("expected string");
  ++c.s;
  while (c.s < c.end && *c.s != '"') {
    if (*c.s == '\\') {
      ++c.s;
      if (c.s >= c.end) break;
    }
    ++c.s;
  }
  if (c.s >= c.end) return c.fail("unterminated string");
  ++c.s;
  return true;
}

bool skip_object(JsonCursor& c) {
  ++c.s;  // '{'
  c.skip_ws();
  if (c.s < c.end && *c.s == '}') {
    ++c.s;
    return true;
  }
  while (true) {
    c.skip_ws();
    if (!skip_string(c)) return false;
    c.skip_ws();
    if (c.s >= c.end || *c.s != ':') return c.fail("expected ':' in object");
    ++c.s;
    if (!skip_value(c)) return false;
    c.skip_ws();
    if (c.s < c.end && *c.s == ',') {
      ++c.s;
      continue;
    }
    if (c.s < c.end && *c.s == '}') {
      ++c.s;
      return true;
    }
    return c.fail("expected ',' or '}' in object");
  }
}

bool skip_array(JsonCursor& c) {
  ++c.s;  // '['
  c.skip_ws();
  if (c.s < c.end && *c.s == ']') {
    ++c.s;
    return true;
  }
  while (true) {
    if (!skip_value(c)) return false;
    c.skip_ws();
    if (c.s < c.end && *c.s == ',') {
      ++c.s;
      continue;
    }
    if (c.s < c.end && *c.s == ']') {
      ++c.s;
      return true;
    }
    return c.fail("expected ',' or ']' in array");
  }
}

bool skip_value(JsonCursor& c) {
  c.skip_ws();
  if (c.s >= c.end) return c.fail("unexpected end of document");
  switch (*c.s) {
    case '{':
      return skip_object(c);
    case '[':
      return skip_array(c);
    case '"':
      return skip_string(c);
    case 't':
      if (c.end - c.s >= 4 && std::string(c.s, 4) == "true") {
        c.s += 4;
        return true;
      }
      return c.fail("bad literal");
    case 'f':
      if (c.end - c.s >= 5 && std::string(c.s, 5) == "false") {
        c.s += 5;
        return true;
      }
      return c.fail("bad literal");
    case 'n':
      if (c.end - c.s >= 4 && std::string(c.s, 4) == "null") {
        c.s += 4;
        return true;
      }
      return c.fail("bad literal");
    default: {
      char* num_end = nullptr;
      std::strtod(c.s, &num_end);
      if (num_end == c.s) return c.fail("unexpected character");
      c.s = num_end;
      return true;
    }
  }
}

/// The raw text of a top-level field `"name":` in `json` (object values:
/// the `{...}`/`[...]` span; scalars: the token). Top-level only — does
/// not recurse into nested objects looking for the key.
std::optional<std::string> top_level_field(const std::string& json,
                                           const std::string& name) {
  JsonCursor c{json.data(), json.data() + json.size(), {}};
  c.skip_ws();
  if (c.s >= c.end || *c.s != '{') return std::nullopt;
  ++c.s;
  while (true) {
    c.skip_ws();
    if (c.s < c.end && *c.s == '}') return std::nullopt;
    const char* key_begin = c.s;
    if (!skip_string(c)) return std::nullopt;
    const std::string key(key_begin + 1, c.s - 1);
    c.skip_ws();
    if (c.s >= c.end || *c.s != ':') return std::nullopt;
    ++c.s;
    c.skip_ws();
    const char* value_begin = c.s;
    if (!skip_value(c)) return std::nullopt;
    if (key == name) return std::string(value_begin, c.s);
    c.skip_ws();
    if (c.s < c.end && *c.s == ',') {
      ++c.s;
      continue;
    }
    return std::nullopt;
  }
}

}  // namespace

std::optional<std::string> validate_report_json(const std::string& json) {
  // 1. The document must be syntactically valid JSON with one value.
  JsonCursor c{json.data(), json.data() + json.size(), {}};
  if (!skip_value(c)) return "not valid JSON: " + c.error;
  c.skip_ws();
  if (c.s != c.end) return "trailing bytes after the JSON document";

  // 2. Top-level shape: an object with the versioned header. v1 (the
  // pre-profiling schema) stays readable: the bench/history ledger and
  // archived BENCH_*.json documents predate the "profiles" section.
  const auto v = top_level_field(json, "v");
  if (!v) return "missing schema version field \"v\"";
  if (*v != std::to_string(kReportSchemaVersion) && *v != "1") {
    return "unsupported report schema version " + *v;
  }
  const auto name = top_level_field(json, "name");
  if (!name || name->empty() || (*name)[0] != '"') {
    return "missing or non-string \"name\"";
  }
  const auto tables = top_level_field(json, "tables");
  if (!tables || (*tables)[0] != '[') return "missing or non-array \"tables\"";
  const auto sweeps = top_level_field(json, "sweeps");
  if (!sweeps || (*sweeps)[0] != '[') return "missing or non-array \"sweeps\"";

  // 3. Every sweep section must carry the verdict counters and metrics.
  // Cheap but effective: scan the sweeps array for the required keys per
  // object (each section object is emitted with all keys).
  std::size_t pos = 0;
  std::size_t section = 0;
  while ((pos = sweeps->find("{\"name\":", pos)) != std::string::npos) {
    std::size_t next = sweeps->find("{\"name\":", pos + 1);
    if (next == std::string::npos) next = sweeps->size();
    const std::string slice = sweeps->substr(pos, next - pos);
    for (const char* key :
         {"\"spec\":", "\"runs\":", "\"undecided\":",
          "\"termination_failures\":", "\"uniform_violations\":",
          "\"nonuniform_violations\":", "\"expectation_failures\":",
          "\"counters\":", "\"histograms\":", "\"failures\":"}) {
      if (slice.find(key) == std::string::npos) {
        return "sweep section " + std::to_string(section) + " missing " + key;
      }
    }
    ++section;
    pos = next;
  }

  // 4. When the v2 "profiles" section is present it must be an array of
  // sections that each carry the phase-breakdown keys.
  if (const auto profiles = top_level_field(json, "profiles")) {
    if ((*profiles)[0] != '[') return "non-array \"profiles\"";
    std::size_t ppos = 0;
    std::size_t psection = 0;
    while ((ppos = profiles->find("{\"name\":", ppos)) != std::string::npos) {
      std::size_t next = profiles->find("{\"name\":", ppos + 1);
      if (next == std::string::npos) next = profiles->size();
      const std::string slice = profiles->substr(ppos, next - ppos);
      for (const char* key : {"\"steps\":", "\"step_seconds\":",
                              "\"covered_fraction\":", "\"phases\":"}) {
        if (slice.find(key) == std::string::npos) {
          return "profile section " + std::to_string(psection) + " missing " +
                 key;
        }
      }
      ++psection;
      ppos = next;
    }
  }
  return std::nullopt;
}

}  // namespace nucon::obs
