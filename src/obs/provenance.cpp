#include "obs/provenance.hpp"

#include <sstream>

namespace nucon::obs {
namespace {

/// The contamination walk: given the explained decide and its cone, find
/// the first faulty decision in the cone (preferring one whose value the
/// decider adopted) and the first message edge through which that
/// decision reached a correct process.
ContaminationEdge find_contamination(const CausalGraph& g,
                                     const Provenance& p,
                                     const std::vector<EventIndex>& cone) {
  ContaminationEdge edge;
  const trace::ParsedTrace& trace = g.trace();

  // Candidate faulty decides in the cone, value-matching ones first: the
  // §6.3 chain is "decider adopted the faulty value", so equality names
  // the actual source; the fallback still explains cones that merely
  // *contain* a faulty decision.
  EventIndex faulty_decide = kNoEvent;
  for (const bool require_value_match : {true, false}) {
    for (const EventIndex e : cone) {
      const trace::ParsedEvent& ev = trace.events[e];
      if (ev.kind != "decide" || trace.is_correct(ev.p)) continue;
      if (require_value_match && (!ev.value || *ev.value != p.value)) continue;
      faulty_decide = e;
      break;
    }
    if (faulty_decide != kNoEvent) break;
  }
  if (faulty_decide == kNoEvent) return edge;

  const trace::ParsedEvent& fd_ev = trace.events[faulty_decide];
  edge.found = true;
  edge.faulty_decider = fd_ev.p;
  edge.faulty_decide_t = fd_ev.t;
  edge.faulty_value = fd_ev.value.value_or(0);
  edge.faulty_decide_event = faulty_decide;

  // First deliver (recorded order) whose matched send is causally after
  // the faulty decision and whose receiver is correct: the edge through
  // which the value first entered a correct process's state.
  const std::vector<EventIndex> future = g.causal_future(faulty_decide);
  std::vector<bool> in_future(g.size(), false);
  for (const EventIndex e : future) in_future[e] = true;

  for (EventIndex e = faulty_decide + 1; e < g.size(); ++e) {
    const trace::ParsedEvent& ev = trace.events[e];
    if (ev.kind != "deliver" || !trace.is_correct(ev.p)) continue;
    const EventIndex send = g.node(e).message_pred;
    if (send == kNoEvent || !in_future[send]) continue;
    const trace::ParsedEvent& send_ev = trace.events[send];
    edge.send_event = send;
    edge.deliver_event = e;
    edge.from = send_ev.p;
    edge.to = ev.p;
    edge.seq = ev.seq;
    edge.send_t = send_ev.t;
    edge.deliver_t = ev.t;
    edge.reaches_decider = g.influences(e, p.decide_event);
    break;
  }
  return edge;
}

}  // namespace

Provenance explain_decide(const CausalGraph& g, EventIndex decide_event) {
  const trace::ParsedTrace& trace = g.trace();
  Provenance p;
  p.decide_event = decide_event;
  if (decide_event >= g.size() ||
      trace.events[decide_event].kind != "decide") {
    return p;
  }
  const trace::ParsedEvent& decide = trace.events[decide_event];
  p.decider = decide.p;
  p.decider_correct = trace.is_correct(decide.p);
  p.t = decide.t;
  p.value = decide.value.value_or(0);

  const std::vector<EventIndex> cone = g.causal_cone(decide_event);
  p.cone_size = cone.size();
  for (const EventIndex e : cone) {
    const trace::ParsedEvent& ev = trace.events[e];
    if (ev.p >= 0) p.contributors.insert(ev.p);
    if (ev.kind == "oracle") p.oracle_events.push_back(e);
    if (ev.kind == "decide" && e != decide_event && ev.p != decide.p) {
      p.foreign_decides.push_back(e);
    }
  }
  p.contamination = find_contamination(g, p, cone);
  return p;
}

std::string render_provenance(const CausalGraph& g, const Provenance& p) {
  const trace::ParsedTrace& trace = g.trace();
  std::ostringstream os;
  os << "decide: p" << p.decider << " ("
     << (p.decider_correct ? "correct" : "faulty") << ") decided " << p.value
     << " at t=" << p.t << "\n";
  os << "  causal cone: " << p.cone_size << " events from processes "
     << p.contributors.to_string() << "\n";

  // Last FD sample per contributor inside the cone: the values the
  // decision could have turned on, one line per process.
  std::vector<EventIndex> last_sample(
      static_cast<std::size_t>(trace.n > 0 ? trace.n : 0), kNoEvent);
  for (const EventIndex e : p.oracle_events) {
    const Pid q = trace.events[e].p;
    if (q >= 0 && q < trace.n) last_sample[static_cast<std::size_t>(q)] = e;
  }
  for (Pid q = 0; q < trace.n; ++q) {
    const EventIndex e = last_sample[static_cast<std::size_t>(q)];
    if (e == kNoEvent) continue;
    os << "  last fd in cone: p" << q << " sampled " << trace.events[e].fd
       << " at t=" << trace.events[e].t << "\n";
  }

  for (const EventIndex e : p.foreign_decides) {
    const trace::ParsedEvent& ev = trace.events[e];
    os << "  known decision: p" << ev.p << " ("
       << (trace.is_correct(ev.p) ? "correct" : "faulty") << ") decided "
       << ev.value.value_or(0) << " at t=" << ev.t << "\n";
  }

  const ContaminationEdge& c = p.contamination;
  if (!c.found) {
    os << "  contamination: none (no faulty decision in the cone)\n";
  } else {
    os << "  contamination: faulty decider p" << c.faulty_decider
       << " decided " << c.faulty_value << " at t=" << c.faulty_decide_t
       << "\n";
    if (c.deliver_event == kNoEvent) {
      os << "    no message edge from that decision reached a correct "
            "process in this trace\n";
    } else {
      os << "    first contaminating edge: p" << c.from << " -> p" << c.to
         << " #" << c.seq << " (sent t=" << c.send_t << ", delivered t="
         << c.deliver_t << ") into correct p" << c.to << "\n";
      os << "    edge "
         << (c.reaches_decider ? "is in this decision's causal cone"
                               : "reaches a correct process but not this "
                                 "decision's cone")
         << "\n";
    }
  }
  return os.str();
}

std::string provenance_json(const CausalGraph& g, const Provenance& p) {
  const trace::ParsedTrace& trace = g.trace();
  std::ostringstream os;
  os << "{\"decide\":{\"p\":" << p.decider << ",\"correct\":"
     << (p.decider_correct ? "true" : "false") << ",\"t\":" << p.t
     << ",\"value\":" << p.value << "},\"cone_events\":" << p.cone_size
     << ",\"contributors\":[";
  bool first = true;
  for (const Pid q : p.contributors) {
    if (!first) os << ",";
    first = false;
    os << q;
  }
  os << "],\"known_decisions\":[";
  first = true;
  for (const EventIndex e : p.foreign_decides) {
    const trace::ParsedEvent& ev = trace.events[e];
    if (!first) os << ",";
    first = false;
    os << "{\"p\":" << ev.p << ",\"correct\":"
       << (trace.is_correct(ev.p) ? "true" : "false") << ",\"t\":" << ev.t
       << ",\"value\":" << ev.value.value_or(0) << "}";
  }
  os << "],\"contamination\":";
  const ContaminationEdge& c = p.contamination;
  if (!c.found) {
    os << "null";
  } else {
    os << "{\"faulty_decider\":" << c.faulty_decider << ",\"decide_t\":"
       << c.faulty_decide_t << ",\"value\":" << c.faulty_value;
    if (c.deliver_event != kNoEvent) {
      os << ",\"edge\":{\"from\":" << c.from << ",\"to\":" << c.to
         << ",\"seq\":" << c.seq << ",\"send_t\":" << c.send_t
         << ",\"deliver_t\":" << c.deliver_t << ",\"reaches_decider\":"
         << (c.reaches_decider ? "true" : "false") << "}";
    } else {
      os << ",\"edge\":null";
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace nucon::obs
