#include "obs/trace_diff.hpp"

#include <algorithm>

namespace nucon::obs {
namespace {

/// The tail of the cone of `e` (or of the last event when e is past the
/// end), capped; ascending order.
std::vector<EventIndex> context_of(const trace::ParsedTrace& t, EventIndex e,
                                   std::size_t cap) {
  if (t.events.empty()) return {};
  const CausalGraph g(t);
  const EventIndex anchor = std::min<EventIndex>(e, t.events.size() - 1);
  std::vector<EventIndex> cone = g.causal_cone(anchor);
  if (cone.size() > cap) cone.erase(cone.begin(), cone.end() - static_cast<std::ptrdiff_t>(cap));
  return cone;
}

}  // namespace

TraceDiff diff_traces(const trace::ParsedTrace& a, const trace::ParsedTrace& b,
                      std::size_t context_cap) {
  TraceDiff d;
  d.a_events = a.events.size();
  d.b_events = b.events.size();
  d.meta_differs =
      a.n != b.n || a.correct != b.correct || a.expect != b.expect;

  const std::size_t common = std::min(a.events.size(), b.events.size());
  std::size_t i = 0;
  while (i < common && a.events[i].raw == b.events[i].raw) ++i;

  if (i == common && a.events.size() == b.events.size()) {
    d.event_index = common;
    return d;  // identical event streams
  }

  d.diverged = true;
  d.event_index = i;
  if (i < a.events.size()) d.a_line = a.events[i].raw;
  if (i < b.events.size()) d.b_line = b.events[i].raw;
  d.a_context = context_of(a, i, context_cap);
  d.b_context = context_of(b, i, context_cap);
  return d;
}

}  // namespace nucon::obs
