// Experiment E4 (paper Fig. 3, Theorem 6.7 / Corollary 6.8).
//
// Runs T_{Sigma^nu -> Sigma^nu+} against legal Sigma^nu oracles (benign
// and adversarial faulty modules) and reports the emulation's behavior:
// steps to first emitted quorum, emission rate, quorum sizes, time until
// the emitted quorums of correct processes contain only correct processes
// (completeness convergence), and the mechanical Sigma^nu+ verdict.
// Expected shape: verdict always passes; convergence tracks the input
// oracle's stabilization time plus one gossip round-trip.
#include "bench_util.hpp"
#include "core/sigma_nu_to_plus.hpp"
#include "fd/history.hpp"

namespace nucon::bench {
namespace {

struct BoostRow {
  double first_emit = 0;
  double emissions = 0;
  double quorum_size = 0;
  Time completeness_at = -1;  // earliest global time after which emitted
                              // quorums of correct processes are correct-only
  bool check_ok = false;
};

BoostRow run_boost(Pid n, Pid faults, FaultyQuorumBehavior behavior,
                   Time stabilize, std::uint64_t seed, std::int64_t steps,
                   Time crash_at = 0) {
  // crash_at > 0 pins crashes late, so faulty modules' (mis)behavior is
  // actually visible in the gossiped samples.
  FailurePattern fp = spread_crashes(n, faults, stabilize - 10, seed);
  if (crash_at > 0) {
    FailurePattern late(n);
    for (Pid p : fp.faulty()) late.set_crash(p, crash_at);
    fp = late;
  }
  SigmaNuOptions so;
  so.stabilize_at = stabilize;
  so.seed = seed;
  so.faulty = behavior;
  SigmaNuOracle oracle(fp, so);

  RecordedHistory emulated;
  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = steps;
  opts = with_emulation_recording(std::move(opts), emulated);
  const SimResult sim = simulate(fp, oracle, make_sigma_nu_to_plus(n), opts);

  BoostRow row;
  Accumulator first_emit;
  Accumulator emissions;
  Accumulator qsize;
  for (Pid p : fp.correct()) {
    const auto* x = static_cast<const SigmaNuToPlus*>(
        sim.automata[static_cast<std::size_t>(p)].get());
    emissions.add(static_cast<double>(x->outputs_produced()));
    std::int64_t own_step = 0;
    std::int64_t first = 0;
    for (const Sample& s : emulated.of(p)) {
      ++own_step;
      if (first == 0 && s.value.quorum() != ProcessSet::full(n)) first = own_step;
      qsize.add(s.value.quorum().size());
    }
    if (first > 0) first_emit.add(static_cast<double>(first));
  }
  row.first_emit = first_emit.mean();
  row.emissions = emissions.mean();
  row.quorum_size = qsize.mean();

  Time last_violation = -1;
  for (const Sample& s : emulated.samples()) {
    if (fp.is_correct(s.p) && !s.value.quorum().is_subset_of(fp.correct())) {
      last_violation = std::max(last_violation, s.t);
    }
  }
  row.completeness_at = last_violation + 1;
  row.check_ok = check_sigma_nu_plus(emulated, fp).ok;
  return row;
}

const char* behavior_name(FaultyQuorumBehavior b) {
  switch (b) {
    case FaultyQuorumBehavior::kBenign:
      return "benign";
    case FaultyQuorumBehavior::kAdversarialDisjoint:
      return "adversarial";
    case FaultyQuorumBehavior::kNoise:
      return "noise";
  }
  return "?";
}

void experiments() {
  {
    TextTable t({"n", "faults", "faulty_mode", "first_emit", "emits/proc",
                 "mean_quorum", "complete_by_t", "sigma_nu_plus_ok"});
    for (Pid n : {2, 3, 4, 5, 6}) {
      for (Pid faults = 0; faults < n; faults += (n > 4 ? 2 : 1)) {
        for (const auto behavior : {FaultyQuorumBehavior::kBenign,
                                    FaultyQuorumBehavior::kAdversarialDisjoint}) {
          const BoostRow r =
              run_boost(n, faults, behavior, 80, 3, 3000, /*crash_at=*/900);
          t.add_row({std::to_string(n), std::to_string(faults),
                     behavior_name(behavior), TextTable::fmt(r.first_emit, 1),
                     TextTable::fmt(r.emissions, 1),
                     TextTable::fmt(r.quorum_size, 2),
                     std::to_string(r.completeness_at),
                     r.check_ok ? "yes" : "NO"});
        }
      }
    }
    print_section("E4a: T_{Sigma^nu -> Sigma^nu+} behavior (Fig. 3, Thm 6.7)",
                  t);
  }

  {
    // Convergence vs the input oracle's stabilization time.
    TextTable t({"stabilize_at", "complete_by_t", "emits/proc"});
    for (Time stabilize : {20, 80, 200, 500}) {
      const BoostRow r = run_boost(
          4, 1, FaultyQuorumBehavior::kAdversarialDisjoint, stabilize, 7, 4000);
      t.add_row({std::to_string(stabilize), std::to_string(r.completeness_at),
                 TextTable::fmt(r.emissions, 1)});
    }
    print_section(
        "E4b: completeness convergence tracks Sigma^nu stabilization", t);
  }
}

void BM_BoostStep(benchmark::State& state) {
  // Cost of one transformation step (DAG update + suffix search) as the
  // accumulated DAG grows.
  const Pid n = 4;
  SigmaNuToPlus automaton(0, n);
  std::vector<Outgoing> out;
  const FdValue v = FdValue::of_quorum(ProcessSet{0, 1});
  for (int i = 0; i < state.range(0); ++i) {
    out.clear();
    automaton.step(nullptr, v, out);
  }
  for (auto _ : state) {
    out.clear();
    automaton.step(nullptr, v, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BoostStep)->Arg(100)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "E4")
