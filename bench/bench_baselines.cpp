// Experiment E9: baseline comparison across the algorithm family.
//
// Same environments, same seeds: Mostéfaoui-Raynal with majorities and
// plain Omega (the §6.3 starting point), MR with Sigma quorums (uniform,
// any environment), Chandra-Toueg with <>S (the classical baseline), and
// A_nuc with (Omega, Sigma^nu+) (the paper's algorithm). Expected shape:
// all four terminate and agree under a correct majority, with n^2-per-round
// message costs; with a correct MINORITY only MR-Sigma and A_nuc
// terminate — the whole point of quorum detectors — and A_nuc pays extra
// bytes for piggybacked quorum histories and SAW/ACK traffic.
#include "bench_util.hpp"
#include "algo/ben_or.hpp"
#include "algo/ct_consensus.hpp"
#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"

namespace nucon::bench {
namespace {

enum class Algo { kMrMajority, kMrSigma, kCt, kAnuc, kBenOr };

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kMrMajority:
      return "MR+Omega(maj)";
    case Algo::kMrSigma:
      return "MR+Sigma";
    case Algo::kCt:
      return "CT+<>S";
    case Algo::kAnuc:
      return "A_nuc+(O,S^nu+)";
    case Algo::kBenOr:
      return "Ben-Or (coins)";
  }
  return "?";
}

struct AggRow {
  int runs = 0;
  int decided = 0;
  Accumulator rounds;
  Accumulator steps;
  Accumulator msgs;
  Accumulator bytes;
  bool safe = true;  // nonuniform agreement held in every run
};

AggRow run_algo(Algo algo, Pid n, Pid faults, int seeds) {
  constexpr Time kStabilize = 120;
  AggRow agg;
  for (int i = 0; i < seeds; ++i) {
    const std::uint64_t seed = 100 + static_cast<std::uint64_t>(i);
    const FailurePattern fp = spread_crashes(n, faults, kStabilize - 20, seed);

    OracleStack oracle;
    ConsensusFactory make;
    switch (algo) {
      case Algo::kMrMajority:
        oracle = omega_only(fp, kStabilize, seed);
        make = make_mr_majority(n);
        break;
      case Algo::kMrSigma:
        oracle = omega_sigma(fp, kStabilize, seed);
        make = make_mr_fd_quorum(n);
        break;
      case Algo::kCt:
        oracle = evt_strong(fp, kStabilize, seed);
        make = make_ct(n);
        break;
      case Algo::kAnuc:
        oracle = omega_sigma_nu_plus(fp, kStabilize, seed);
        make = make_anuc(n);
        break;
      case Algo::kBenOr:
        oracle = omega_only(fp, kStabilize, seed);  // Omega ignored
        make = make_ben_or(n, static_cast<Pid>((n - 1) / 2), seed);
        break;
    }

    SchedulerOptions opts;
    opts.seed = seed;
    opts.max_steps = 60'000;
    const ConsensusRunStats stats =
        run_consensus(fp, oracle.top(), make, mixed_proposals(n), opts);

    ++agg.runs;
    if (stats.all_correct_decided) {
      ++agg.decided;
      agg.rounds.add(stats.decide_round);
      agg.steps.add(static_cast<double>(stats.steps));
      agg.msgs.add(static_cast<double>(stats.messages_sent));
      agg.bytes.add(static_cast<double>(stats.bytes_sent));
    }
    agg.safe = agg.safe && stats.verdict.nonuniform_agreement;
  }
  return agg;
}

void add_rows(TextTable& t, Pid n, Pid faults, int seeds) {
  for (const Algo algo : {Algo::kMrMajority, Algo::kMrSigma, Algo::kCt,
                          Algo::kAnuc, Algo::kBenOr}) {
    const AggRow r = run_algo(algo, n, faults, seeds);
    t.add_row({algo_name(algo), std::to_string(n), std::to_string(faults),
               std::to_string(r.decided) + "/" + std::to_string(r.runs),
               TextTable::fmt(r.rounds.mean(), 1),
               TextTable::fmt(r.steps.mean(), 0),
               TextTable::fmt(r.msgs.mean(), 0),
               TextTable::fmt(r.bytes.mean() / 1024.0, 1),
               r.safe ? "yes" : "NO"});
  }
}

void experiments() {
  const int seeds = 20;
  {
    TextTable t({"algorithm", "n", "faults", "decided", "round", "steps",
                 "msgs", "KB", "agree_ok"});
    add_rows(t, 5, 0, seeds);
    add_rows(t, 5, 1, seeds);
    add_rows(t, 5, 2, seeds);
    print_section("E9a: baselines under a correct majority (n=5)", t);
  }
  {
    TextTable t({"algorithm", "n", "faults", "decided", "round", "steps",
                 "msgs", "KB", "agree_ok"});
    // Correct minority: 3 of 5 crash. MR-majority and CT must stall
    // (decided 0/N); the quorum-detector algorithms keep terminating.
    add_rows(t, 5, 3, seeds / 2);
    add_rows(t, 5, 4, seeds / 2);
    print_section(
        "E9b: correct-minority environments — where quorum detectors earn "
        "their keep",
        t);
  }
}

void BM_ConsensusRound(benchmark::State& state) {
  const Pid n = 5;
  const Algo algo = static_cast<Algo>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const FailurePattern fp(n);
    OracleStack oracle;
    ConsensusFactory make;
    switch (algo) {
      case Algo::kMrMajority:
        oracle = omega_only(fp, 0, seed);
        make = make_mr_majority(n);
        break;
      case Algo::kMrSigma:
        oracle = omega_sigma(fp, 0, seed);
        make = make_mr_fd_quorum(n);
        break;
      case Algo::kCt:
        oracle = evt_strong(fp, 0, seed);
        make = make_ct(n);
        break;
      case Algo::kAnuc:
        oracle = omega_sigma_nu_plus(fp, 0, seed);
        make = make_anuc(n);
        break;
      case Algo::kBenOr:
        oracle = omega_only(fp, 0, seed);
        make = make_ben_or(n, static_cast<Pid>((n - 1) / 2), seed);
        break;
    }
    SchedulerOptions opts;
    opts.seed = seed++;
    opts.max_steps = 60'000;
    benchmark::DoNotOptimize(
        run_consensus(fp, oracle.top(), make, mixed_proposals(n), opts));
  }
  state.SetLabel(algo_name(algo));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConsensusRound)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "E9")
