// Experiment E5 (paper Figs. 4-5, Theorem 6.27): cost of A_nuc.
//
// Reports rounds/steps/messages/bytes to global decision across system
// size, crash count and Omega stabilization time, plus distrust-machinery
// statistics. Expected shape: decisions land a constant number of rounds
// after the oracles stabilize; per-round message complexity is Theta(n^2)
// (three broadcast phases) plus the SAW/ACK handshakes; adversarial faulty
// quorums raise distrust hits without affecting safety or rounds much.
#include <thread>

#include "bench_util.hpp"
#include "core/anuc.hpp"
#include "exp/sweep.hpp"

namespace nucon::bench {
namespace {

struct AnucRow {
  ConsensusRunStats stats;
  std::int64_t distrust_calls = 0;
  std::int64_t distrust_hits = 0;
  std::size_t history_entries = 0;
};

AnucRow run_anuc(Pid n, Pid faults, Time stabilize, std::uint64_t seed,
                 FaultyQuorumBehavior behavior, Time crash_at = 0) {
  // crash_at > 0 pins all crashes late (so faulty processes participate —
  // and, under adversarial behavior, get distrusted — before dying).
  FailurePattern fp = spread_crashes(n, faults, std::max<Time>(stabilize - 10, 10), seed);
  if (crash_at > 0) {
    FailurePattern late(n);
    for (Pid p : fp.faulty()) late.set_crash(p, crash_at);
    fp = late;
  }
  auto oracle = omega_sigma_nu_plus(fp, stabilize, seed, behavior);

  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = 400'000;

  AnucRow row;
  // run_consensus consumes the automata; rerun via simulate_consensus to
  // keep instrumentation.
  SimResult sim = simulate_consensus(fp, oracle.top(), make_anuc(n),
                                     mixed_proposals(n), opts);
  row.stats.decisions = decisions_of(sim.automata);
  row.stats.verdict = check_consensus(fp, mixed_proposals(n), row.stats.decisions);
  row.stats.messages_sent = sim.messages_sent;
  row.stats.bytes_sent = sim.bytes_sent;
  row.stats.steps = sim.run.steps.size();
  row.stats.all_correct_decided = all_correct_decided(fp, sim.automata);
  for (Pid p = 0; p < n; ++p) {
    const auto* a = static_cast<const Anuc*>(
        sim.automata[static_cast<std::size_t>(p)].get());
    row.stats.max_round = std::max(row.stats.max_round, a->round());
    if (fp.is_correct(p)) {
      row.stats.decide_round =
          std::max(row.stats.decide_round, a->decided_round());
    }
    row.distrust_calls += a->distrust_calls();
    row.distrust_hits += a->distrust_hits();
    row.history_entries += a->history().size();
  }
  return row;
}

void add_anuc_row(TextTable& t, Pid n, Pid faults, Time stabilize,
                  std::uint64_t seed, FaultyQuorumBehavior behavior,
                  Time crash_at = 0) {
  const AnucRow r = run_anuc(n, faults, stabilize, seed, behavior, crash_at);
  t.add_row(
      {std::to_string(n), std::to_string(faults), std::to_string(stabilize),
       r.stats.all_correct_decided ? "yes" : "NO",
       std::to_string(r.stats.decide_round), std::to_string(r.stats.steps),
       std::to_string(r.stats.messages_sent),
       TextTable::fmt(static_cast<double>(r.stats.bytes_sent) / 1024.0, 1),
       std::to_string(r.distrust_hits),
       r.stats.verdict.solves_nonuniform() ? "yes" : "NO"});
}

void experiments() {
  {
    TextTable t({"n", "faults", "omega_stab", "decided", "round", "steps",
                 "msgs", "KB", "distrust_hits", "nonuniform_ok"});
    for (Pid n : {3, 4, 5, 7, 9}) {
      for (Pid faults : {static_cast<Pid>(0), static_cast<Pid>(n / 2),
                         static_cast<Pid>(n - 1)}) {
        add_anuc_row(t, n, faults, 120, 11,
                     FaultyQuorumBehavior::kAdversarialDisjoint);
      }
    }
    print_section("E5a: A_nuc cost vs system size and crashes (Figs. 4-5)", t);
  }

  {
    TextTable t({"n", "faults", "omega_stab", "decided", "round", "steps",
                 "msgs", "KB", "distrust_hits", "nonuniform_ok"});
    for (Time stabilize : {0, 100, 400, 1200}) {
      add_anuc_row(t, 4, 1, stabilize, 13,
                   FaultyQuorumBehavior::kAdversarialDisjoint);
    }
    print_section("E5b: A_nuc decision latency vs Omega stabilization", t);
  }

  {
    TextTable t({"n", "faults", "omega_stab", "decided", "round", "steps",
                 "msgs", "KB", "distrust_hits", "nonuniform_ok"});
    for (const auto behavior : {FaultyQuorumBehavior::kBenign,
                                FaultyQuorumBehavior::kNoise,
                                FaultyQuorumBehavior::kAdversarialDisjoint}) {
      // Late crashes (t=600): faulty processes are full participants while
      // their modules misbehave, so the distrust machinery actually fires.
      add_anuc_row(t, 5, 2, 120, 17, behavior, /*crash_at=*/600);
    }
    print_section("E5c: faulty-quorum behavior ablation (distrust at work)",
                  t);
  }

  {
    // E5d: the Fig. 4-5 sufficiency claim swept statistically on the
    // parallel engine — 240 grid points (n x faults x 20 seeds), with the
    // serial-vs-parallel wall clock. Aggregates are bit-identical for any
    // thread count (asserted by tests/sweep_test.cpp); the speedup column
    // is bounded by the machine's core count.
    exp::SweepGrid grid;
    grid.algos = {exp::Algo::kAnuc};
    grid.ns = {3, 5, 7, 9};
    grid.fault_counts = {0, 1, 2};
    grid.stabilizes = {120};
    grid.seed_begin = 1;
    grid.seed_count = 20;
    grid.max_steps = 400'000;

    exp::SweepRunner serial_runner(1);
    serial_runner.set_trace_dir("bench-traces/e5d");
    const exp::SweepResult serial = serial_runner.run(grid);
    const unsigned threads =
        std::max(4u, std::thread::hardware_concurrency());
    const exp::SweepResult parallel = exp::SweepRunner(threads).run(grid);

    TextTable t({"runs", "undecided", "nonuniform_viol", "mean_round",
                 "mean_msgs", "wall_1t_s", "wall_Nt_s", "threads",
                 "speedup"});
    const exp::SweepAggregate& agg = serial.aggregate;
    t.add_row({std::to_string(agg.runs), std::to_string(agg.undecided),
               std::to_string(agg.nonuniform_violations),
               TextTable::fmt(agg.decide_rounds.mean(), 1),
               TextTable::fmt(agg.messages.mean(), 0),
               TextTable::fmt(serial.wall_seconds, 2),
               TextTable::fmt(parallel.wall_seconds, 2),
               std::to_string(threads),
               TextTable::fmt(serial.wall_seconds /
                                  std::max(parallel.wall_seconds, 1e-9),
                              2)});
    print_section("E5d: A_nuc sufficiency sweep on the parallel engine", t);
    record_sweep("E5d", "anuc, n in {3,5,7,9}, faults in {0,1,2}, 20 seeds",
                 serial);
    std::printf(
        "E5d metrics: steps=%lld delivers=%lld (forced %lld) "
        "delay[p50=%lld p99=%lld max=%lld]\n",
        (long long)agg.metrics.counter_value("scheduler.steps"),
        (long long)agg.metrics.counter_value("scheduler.delivers"),
        (long long)agg.metrics.counter_value("scheduler.forced_deliveries"),
        (long long)agg.metrics.histograms().at("scheduler.delivery_delay")
            .quantile(0.5),
        (long long)agg.metrics.histograms().at("scheduler.delivery_delay")
            .quantile(0.99),
        (long long)agg.metrics.histograms().at("scheduler.delivery_delay")
            .max());
    for (std::size_t i = 0; i < agg.failures.size(); ++i) {
      std::printf("UNEXPECTED failure — replay with: nucon_explore --replay "
                  "'%s'\n",
                  agg.failures[i].to_string().c_str());
      if (i < agg.failure_trace_paths.size()) {
        std::printf("  trace attached: %s (inspect with trace_dump)\n",
                    agg.failure_trace_paths[i].c_str());
      }
    }
  }
}

void BM_AnucDecision(benchmark::State& state) {
  const Pid n = static_cast<Pid>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const FailurePattern fp(n);
    auto oracle = omega_sigma_nu_plus(fp, 0, seed);
    SchedulerOptions opts;
    opts.seed = seed++;
    opts.max_steps = 200'000;
    SimResult sim = simulate_consensus(fp, oracle.top(), make_anuc(n),
                                       mixed_proposals(n), opts);
    benchmark::DoNotOptimize(sim.run.steps.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnucDecision)->Arg(3)->Arg(5)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_DistrustEvaluation(benchmark::State& state) {
  // Cost of distrusts() over a saturated quorum history.
  const Pid n = 8;
  QuorumHistory h(n);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    h.insert(static_cast<Pid>(rng.below(n)),
             rng.pick_subset(ProcessSet::full(n),
                             1 + static_cast<int>(rng.below(n))));
  }
  for (auto _ : state) {
    for (Pid q = 0; q < n; ++q) benchmark::DoNotOptimize(h.distrusts(0, q));
  }
}
BENCHMARK(BM_DistrustEvaluation);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "E5")
