// Experiment F: QoS of the heartbeat-implemented detectors (fd/impl/)
// under the timing-aware scheduler (sim/timing.hpp).
//
// The generated oracles elsewhere in the benches synthesize histories from
// the ground-truth failure pattern; here the detectors are *measured*:
// heartbeat modules run as automata, their recorded output histories are
// scored with the Chen-Toueg-Aguilera QoS metrics (fd/qos.hpp), and the
// measured Omega is finally plugged under A_nuc to put a real detection
// latency next to the scripted E5b stabilization curve
// (bench_fig45_anuc.cpp). Expected shape: detection time grows linearly
// with both the configured timeout and the message delay while the mistake
// rate falls (the classic QoS trade-off); Omega stabilization tracks the
// slowest correct process; A_nuc over the measured Omega decides a
// constant number of rounds after the heartbeat chain settles, like the
// scripted curve with a moderate effective stabilization time.
//
// All tables are folded serially from deterministic runs, so the report is
// byte-identical for any --threads (the F5 sweep aggregate is fold-order
// deterministic by construction; see exp/sweep.hpp).
//
// NUCON_FDQOS_QUICK=1 shrinks seed counts and grids for CI.
#include <cstdlib>

#include "bench_util.hpp"
#include "fd/impl/heartbeat.hpp"
#include "fd/qos.hpp"
#include "fd/scripted.hpp"
#include "sim/timing.hpp"

namespace nucon::bench {
namespace {

bool quick_mode() { return std::getenv("NUCON_FDQOS_QUICK") != nullptr; }

// --- Bare heartbeat runs ----------------------------------------------------

/// Runs bare heartbeat modules (no hosted algorithm) under the timed
/// scheduler and records every module's output variable after each step.
RecordedHistory run_bare(HeartbeatMode mode, const FailurePattern& fp,
                         const HeartbeatOptions& hopts,
                         const TimingOptions& topts, std::uint64_t seed,
                         std::int64_t max_steps) {
  RecordedHistory h;
  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = max_steps;
  opts.record_run = false;
  opts.timing = topts;
  opts.timing.enabled = true;
  opts.on_step = [&h](const StepRecord& rec,
                      const std::vector<std::unique_ptr<Automaton>>& automata) {
    const auto* hb = static_cast<const HeartbeatFd*>(
        automata[static_cast<std::size_t>(rec.p)].get());
    h.add(rec.p, rec.t, hb->output());
  };
  ScriptedOracle oracle([](Pid, Time) { return FdValue{}; });
  (void)simulate(fp, oracle, make_heartbeat_fd(fp.n(), mode, hopts), opts);
  return h;
}

/// Seed-folded suspect-list QoS: counts and totals add, maxima max.
struct SuspectsAgg {
  FdQos q;
  void add(const FdQos& r) {
    q.crash_pairs += r.crash_pairs;
    q.undetected += r.undetected;
    q.detection_total += r.detection_total;
    q.detection_max = std::max(q.detection_max, r.detection_max);
    q.mistakes += r.mistakes;
    q.mistake_duration_total += r.mistake_duration_total;
    q.mistake_duration_max =
        std::max(q.mistake_duration_max, r.mistake_duration_max);
    q.observed_samples += r.observed_samples;
  }
};

/// Seed-folded leader QoS: stabilized only when every seed stabilized.
struct LeaderAgg {
  bool all_stabilized = true;
  Time stab_max = 0;
  std::int64_t stab_total = 0;
  int runs = 0;
  void add(const FdQos& r) {
    all_stabilized = all_stabilized && r.omega_stabilized;
    if (r.omega_stabilized) {
      stab_max = std::max(stab_max, r.omega_stabilization);
      stab_total += r.omega_stabilization;
      ++runs;
    }
  }
  [[nodiscard]] std::int64_t mean() const {
    return runs > 0 ? stab_total / runs : 0;
  }
};

std::vector<std::uint64_t> seeds() {
  return quick_mode() ? std::vector<std::uint64_t>{1, 2}
                      : std::vector<std::uint64_t>{1, 2, 3, 4, 5};
}

void add_suspects_row(TextTable& t, const std::string& knob,
                      const SuspectsAgg& a) {
  t.add_row({knob, std::to_string(a.q.crash_pairs),
             std::to_string(a.q.undetected),
             std::to_string(a.q.detection_mean()),
             std::to_string(a.q.detection_max), std::to_string(a.q.mistakes),
             std::to_string(a.q.mistake_duration_mean()),
             std::to_string(a.q.mistakes_per_kilosample())});
}

// F1: the QoS trade-off along the detector's own knob. Small timeouts
// detect the crash fast but keep wrongly suspecting slow-but-alive peers;
// large timeouts are clean but slow.
void f1_timeout_sweep() {
  TextTable t({"timeout_init", "crash_pairs", "undetected", "detect_mean",
               "detect_max", "mistakes", "mist_dur_mean", "mist_per_ksample"});
  FailurePattern fp(4);
  fp.set_crash(3, 300);
  for (Time timeout : {4, 8, 16, 32, 64}) {
    HeartbeatOptions hopts;
    hopts.timeout_init = timeout;
    SuspectsAgg agg;
    for (std::uint64_t seed : seeds()) {
      agg.add(qos_of_suspects(
          run_bare(HeartbeatMode::kDiamondS, fp, hopts, {}, seed, 12'000),
          fp));
    }
    add_suspects_row(t, std::to_string(timeout), agg);
  }
  print_section("F1: <>S QoS vs initial timeout (heartbeat, n=4, 1 crash)",
                t);
}

// F2: the same detector against a slower network. Detection time is
// measured in scheduler ticks, so it grows with the message delay; the
// adaptive timeout absorbs the jitter, keeping mistakes low.
void f2_delay_sweep() {
  TextTable t({"delay_base", "jitter", "crash_pairs", "undetected",
               "detect_mean", "detect_max", "mistakes", "mist_dur_mean",
               "mist_per_ksample"});
  FailurePattern fp(4);
  fp.set_crash(3, 300);
  for (Time delay : {1, 4, 8, 16}) {
    TimingOptions topts;
    topts.delay_base = delay;
    SuspectsAgg agg;
    for (std::uint64_t seed : seeds()) {
      agg.add(qos_of_suspects(
          run_bare(HeartbeatMode::kDiamondS, fp, {}, topts, seed, 16'000),
          fp));
    }
    t.add_row({std::to_string(delay), std::to_string(topts.delay_jitter),
               std::to_string(agg.q.crash_pairs),
               std::to_string(agg.q.undetected),
               std::to_string(agg.q.detection_mean()),
               std::to_string(agg.q.detection_max),
               std::to_string(agg.q.mistakes),
               std::to_string(agg.q.mistake_duration_mean()),
               std::to_string(agg.q.mistakes_per_kilosample())});
  }
  print_section("F2: <>S QoS vs message delay (heartbeat, n=4, 1 crash)", t);
}

// F3: Omega over the heartbeat chain. The initial leader (lowest id)
// crashes, so stabilization necessarily lands after the crash plus the
// detection latency; slowing the successor stretches it further (the
// other processes must first widen their timeouts to stop suspecting it).
void f3_omega_stabilization() {
  TextTable t({"delay_base", "skew_p1", "stabilized", "stab_mean",
               "stab_max"});
  FailurePattern fp(4);
  fp.set_crash(0, 250);
  for (Time delay : {1, 8}) {
    for (int skew : {1, 4}) {
      TimingOptions topts;
      topts.delay_base = delay;
      topts.speed = {1, skew, 1, 1};
      LeaderAgg agg;
      for (std::uint64_t seed : seeds()) {
        agg.add(qos_of_leader(
            run_bare(HeartbeatMode::kOmega, fp, {}, topts, seed, 16'000),
            fp));
      }
      t.add_row({std::to_string(delay), std::to_string(skew),
                 agg.all_stabilized ? "yes" : "NO",
                 std::to_string(agg.mean()), std::to_string(agg.stab_max)});
    }
  }
  print_section(
      "F3: Omega stabilization vs delay and speed skew (leader crashes)", t);
}

// F4: the E5b experiment (bench_fig45_anuc.cpp: A_nuc decision latency vs
// scripted Omega stabilization, n=4, faults=1, seed 13) with the measured
// heartbeat Omega next to each scripted row. The implemented detector has
// no stabilize knob — its effective stabilization is whatever the
// heartbeat chain delivers — so its latency is one roughly constant row
// sitting where a moderate scripted stabilization would put it. The
// quorum component keeps the scripted stabilize either way.
void f4_anuc_latency() {
  TextTable t({"omega", "omega_stab", "decided", "round", "steps", "msgs",
               "nonuniform_ok"});
  const auto stabs = quick_mode() ? std::vector<Time>{0, 400}
                                  : std::vector<Time>{0, 100, 400, 1200};
  for (exp::FdSource fd : {exp::FdSource::kGenerated,
                           exp::FdSource::kImplemented}) {
    for (Time stabilize : stabs) {
      exp::SweepPoint pt;
      pt.algo = exp::Algo::kAnuc;
      pt.n = 4;
      pt.faults = 1;
      pt.stabilize = stabilize;
      pt.seed = 13;
      pt.max_steps = 400'000;
      pt.fd = fd;
      const ConsensusRunStats r = exp::run_point(pt);
      t.add_row({fd == exp::FdSource::kGenerated ? "scripted" : "measured",
                 std::to_string(stabilize),
                 r.all_correct_decided ? "yes" : "NO",
                 std::to_string(r.decide_round), std::to_string(r.steps),
                 std::to_string(r.messages_sent),
                 r.verdict.solves_nonuniform() ? "yes" : "NO"});
    }
  }
  print_section(
      "F4: A_nuc decision latency — scripted Omega (E5b) vs measured "
      "heartbeat Omega",
      t);
}

// F5: the implemented-FD configuration swept statistically across the
// oracle-consuming algorithms on the parallel engine. The aggregate is
// folded serially in expansion order, so this section is bit-identical
// for any thread count.
void f5_implemented_sweep() {
  exp::SweepGrid grid;
  grid.algos = {exp::Algo::kAnuc, exp::Algo::kStacked, exp::Algo::kCt};
  grid.ns = {4};
  grid.fault_counts = {0, 1};
  grid.stabilizes = {120};
  grid.seed_begin = 1;
  grid.seed_count = quick_mode() ? 2 : 8;
  grid.max_steps = 400'000;
  grid.fd = exp::FdSource::kImplemented;

  const exp::SweepResult result = exp::SweepRunner().run(grid);
  const exp::SweepAggregate& agg = result.aggregate;
  TextTable t({"runs", "undecided", "uniform_viol", "nonuniform_viol",
               "expect_fail", "mean_round", "mean_msgs"});
  t.add_row({std::to_string(agg.runs), std::to_string(agg.undecided),
             std::to_string(agg.uniform_violations),
             std::to_string(agg.nonuniform_violations),
             std::to_string(agg.expectation_failures),
             TextTable::fmt(agg.decide_rounds.mean(), 1),
             TextTable::fmt(agg.messages.mean(), 0)});
  print_section("F5: consensus over implemented detectors (sweep)", t);
  record_sweep("F5",
               "anuc/stacked/ct, n=4, faults in {0,1}, fd=implemented",
               result);
  for (const exp::ReplayArtifact& a : agg.failures) {
    std::printf("UNEXPECTED failure — replay with: nucon_explore --replay "
                "'%s'\n",
                a.to_string().c_str());
  }
}

void experiments() {
  f1_timeout_sweep();
  f2_delay_sweep();
  f3_omega_stabilization();
  f4_anuc_latency();
  f5_implemented_sweep();
}

// --- Microbenchmarks --------------------------------------------------------

void BM_BareHeartbeatRun(benchmark::State& state) {
  // One bare <>S run (n=4, one crash) under the timed scheduler, history
  // recording included — the cost of a single QoS measurement.
  FailurePattern fp(4);
  fp.set_crash(3, 300);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    RecordedHistory h =
        run_bare(HeartbeatMode::kDiamondS, fp, {}, {}, seed++, 12'000);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BareHeartbeatRun)->Unit(benchmark::kMillisecond);

void BM_AnucScriptedOmega(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    exp::SweepPoint pt;
    pt.algo = exp::Algo::kAnuc;
    pt.n = 4;
    pt.faults = 1;
    pt.stabilize = 120;
    pt.seed = seed++;
    benchmark::DoNotOptimize(exp::run_point(pt).steps);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnucScriptedOmega)->Unit(benchmark::kMillisecond);

void BM_AnucMeasuredOmega(benchmark::State& state) {
  // Same point with the heartbeat Omega hosted beside the algorithm: the
  // overhead of the FD automata plus the timed delivery policy.
  std::uint64_t seed = 1;
  for (auto _ : state) {
    exp::SweepPoint pt;
    pt.algo = exp::Algo::kAnuc;
    pt.n = 4;
    pt.faults = 1;
    pt.stabilize = 120;
    pt.seed = seed++;
    pt.fd = exp::FdSource::kImplemented;
    benchmark::DoNotOptimize(exp::run_point(pt).steps);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnucMeasuredOmega)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "fdqos")
