// Experiments E10, E16, E17 plus substrate microbenchmarks.
//
// E10 validates Lemma 2.2 at scale (merge random disjoint partial runs and
// replay); E16 is the bounded model-checking dichotomy at n=2; E17 measures
// the incremental engine against the frozen replay-based baseline on the
// n=3 reference space (both run to exhaustion, so they cover the identical
// set of unique configurations and the unique-states/s ratio is the honest
// speedup). The microbenchmarks cover the primitives everything else is
// built on (ProcessSet ops, varint codec, replay).
//
// NUCON_MODEL_QUICK=1 shrinks E17 to the depth-8 slice of the same space
// for CI (scripts/bench-quick.sh); the full run uses depth 12.
#include <chrono>
#include <cstdlib>

#include "bench_util.hpp"
#include "algo/mr_consensus.hpp"
#include "check/model_checker.hpp"
#include "fd/scripted.hpp"
#include "sim/merge.hpp"

namespace nucon::bench {
namespace {

bool quick_grid() {
  const char* v = std::getenv("NUCON_MODEL_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// The n=3 reference history (the §6.3 contamination shape): processes 0
/// and 1 share quorum {0,1} under leader 0, process 2 is partitioned
/// behind {2} with itself as leader.
FdValue split_quorum_fd(Pid p, int /*own_step*/) {
  FdValue v =
      FdValue::of_quorum(p < 2 ? ProcessSet{0, 1} : ProcessSet::single(2));
  v.set_leader(p < 2 ? 0 : 2);
  return v;
}

McOptions reference_config(int depth) {
  McOptions o;
  o.n = 3;
  o.make = make_mr_fd_quorum(3);
  o.proposals = {0, 0, 1};
  o.fd = split_quorum_fd;
  o.max_depth = depth;
  o.max_states = 100'000'000;  // exhaustion, not budget, ends these runs
  return o;
}

template <typename F>
std::pair<McResult, double> timed(F&& run) {
  const auto t0 = std::chrono::steady_clock::now();
  McResult r = run();
  const auto t1 = std::chrono::steady_clock::now();
  return {std::move(r), std::chrono::duration<double>(t1 - t0).count()};
}

/// E17: the incremental/parallel/POR engine vs the frozen replay-based
/// DFS baseline, both exhausting the n=3 reference space. The baseline's
/// states_explored counts arrivals (its historical accounting), so its
/// unique-state count is explored minus deduped; exhaustion makes the
/// two engines' unique sets identical and the uniq/s ratio meaningful.
void engine_speedup() {
  const int depth = quick_grid() ? 8 : 12;
  const McOptions o = reference_config(depth);

  const auto [eng, eng_s] = timed([&] { return model_check_consensus(o); });
  const auto [base, base_s] =
      timed([&] { return model_check_consensus_replay_baseline(o); });

  const auto base_unique = base.states_explored - base.states_deduped;
  const double eng_rate = static_cast<double>(eng.states_explored) / eng_s;
  const double base_rate = static_cast<double>(base_unique) / base_s;
  const auto eng_arrivals = eng.states_explored + eng.states_deduped;

  TextTable t({"engine", "depth", "unique_states", "arrivals", "peak",
               "seconds", "states_per_sec", "speedup"});
  t.add_row({"incremental+por", std::to_string(depth),
             std::to_string(eng.states_explored),
             std::to_string(eng_arrivals), std::to_string(eng.peak_depth),
             TextTable::fmt(eng_s, 2), TextTable::fmt(eng_rate, 0),
             TextTable::fmt(eng_rate / base_rate, 1) + "x"});
  t.add_row({"replay baseline", std::to_string(depth),
             std::to_string(base_unique),
             std::to_string(base.states_explored),
             std::to_string(base.peak_depth), TextTable::fmt(base_s, 2),
             TextTable::fmt(base_rate, 0), "1.0x"});
  print_section("E17: incremental engine vs replay-based DFS baseline", t);

  // Where the speedup comes from, and the cross-checks that it changed
  // nothing: identical unique-state coverage and verdict, POR pruning
  // arrivals without touching the reached set, zero half-key collisions.
  TextTable d({"metric", "value"});
  d.add_row({"exhausted (engine/baseline)",
             std::string(eng.exhausted ? "yes" : "NO") + " / " +
                 (base.exhausted ? "yes" : "NO")});
  d.add_row({"unique states agree",
             eng.states_explored == base_unique ? "yes" : "NO"});
  d.add_row({"verdicts agree",
             eng.violation_found == base.violation_found ? "yes" : "NO"});
  d.add_row({"dedup ratio (engine dupes/arrival)",
             TextTable::fmt(static_cast<double>(eng.states_deduped) /
                                static_cast<double>(eng_arrivals),
                            3)});
  d.add_row({"por pruned transitions", std::to_string(eng.por_skipped)});
  d.add_row(
      {"por prune ratio (pruned/(pruned+arrivals))",
       TextTable::fmt(static_cast<double>(eng.por_skipped) /
                          static_cast<double>(eng.por_skipped + eng_arrivals),
                      3)});
  d.add_row({"reexpanded (por/caching reconciliation)",
             std::to_string(eng.states_reexpanded)});
  d.add_row({"hash collisions (64-bit halves)",
             std::to_string(eng.hash_collisions)});
  print_section("E17: speedup anatomy", d);

  report().timings["model:engine:seconds"] = eng_s;
  report().timings["model:baseline:seconds"] = base_s;
  report().timings["model:engine:states_per_sec"] = eng_rate;
  report().timings["model:baseline:states_per_sec"] = base_rate;
  report().timings["model:speedup"] = eng_rate / base_rate;

  // Determinism contract on a violating slice of the same space: verdict,
  // witness, and state counts bit-identical for 1 vs 8 threads and for
  // POR on vs off (deduped/por counters differ under the reduction by
  // design, so those two compare field-wise).
  McOptions v = reference_config(quick_grid() ? 13 : 14);
  v.max_states = quick_grid() ? 200'000 : 4'000'000;
  const McResult serial = model_check_consensus(v);
  v.threads = 8;
  const McResult par = model_check_consensus(v);
  v.threads = 1;
  v.use_por = false;
  const McResult nopor = model_check_consensus(v);
  TextTable c({"check", "result"});
  c.add_row({"1 vs 8 threads: McResult ==", serial == par ? "yes" : "NO"});
  c.add_row({"por on/off: verdict+witness ==",
             serial.violation_found == nopor.violation_found &&
                     serial.violation == nopor.violation &&
                     serial.witness == nopor.witness
                 ? "yes"
                 : "NO"});
  c.add_row({"por on/off: states_explored ==",
             serial.states_explored == nopor.states_explored ? "yes" : "NO"});
  print_section("E17: determinism cross-checks", c);
}

void experiments() {
  // E10: Lemma 2.2 sweep — merge disjoint halves of a 6-process system
  // under a fixed partition oracle, replay, and compare states.
  constexpr Pid kN = 6;
  ProcessSet side_a, side_b;
  for (Pid p = 0; p < kN / 2; ++p) side_a.insert(p);
  for (Pid p = kN / 2; p < kN; ++p) side_b.insert(p);

  const AutomatonFactory factory = [](Pid p) -> std::unique_ptr<Automaton> {
    return std::make_unique<MrConsensus>(
        p, p < kN / 2 ? 0 : 1, MrOptions{kN, MrQuorumMode::kFdQuorum});
  };

  int merged_ok = 0;
  int states_match = 0;
  const int trials = 50;
  Accumulator merged_steps;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t seed = 1 + static_cast<std::uint64_t>(i);
    const FailurePattern fp(kN);
    ScriptedOracle oracle([side_a, side_b](Pid p, Time) {
      const ProcessSet side = side_a.contains(p) ? side_a : side_b;
      FdValue v = FdValue::of_quorum(side);
      v.set_leader(side.min());
      return v;
    });

    SchedulerOptions opts;
    opts.seed = seed;
    opts.max_steps = 300;
    opts.restrict_to = side_a;
    SimResult run_a = simulate(fp, oracle, factory, opts);
    opts.restrict_to = side_b;
    opts.seed = seed + 1000;
    SimResult run_b = simulate(fp, oracle, factory, opts);

    const auto merged = merge_runs(run_a.run, run_b.run);
    if (!merged) continue;
    const ReplayOutcome outcome = replay(*merged, kN, factory);
    if (!outcome.ok || check_run_structure(*merged)) continue;
    ++merged_ok;
    merged_steps.add(static_cast<double>(merged->steps.size()));

    bool all_match = true;
    for (Pid p = 0; p < kN; ++p) {
      const auto& original = side_a.contains(p) ? run_a : run_b;
      all_match = all_match &&
                  outcome.automata[static_cast<std::size_t>(p)]->snapshot() ==
                      original.automata[static_cast<std::size_t>(p)]->snapshot();
    }
    if (all_match) ++states_match;
  }

  TextTable t({"trials", "merged_valid", "states_match", "mean_steps"});
  t.add_row({std::to_string(trials), std::to_string(merged_ok),
             std::to_string(states_match),
             TextTable::fmt(merged_steps.mean(), 0)});
  print_section("E10: Lemma 2.2 merge-and-replay sweep", t);

  // E16: exhaustive schedule exploration at n=2. The naive Sigma^nu
  // algorithm's agreement violation is FOUND; MR-Sigma is certified safe
  // over the full bounded space; state counts show the growth the dedup
  // tames.
  {
    TextTable mc({"system", "history", "depth", "states", "deduped",
                  "outcome"});
    const auto partition_fd = [](Pid p, int) {
      FdValue v = FdValue::of_quorum(ProcessSet::single(p));
      v.set_leader(p);
      return v;
    };
    const auto sigma_fd = [](Pid p, int) {
      FdValue v = FdValue::of_quorum(ProcessSet{0, 1});
      v.set_leader(p);
      return v;
    };

    {
      McOptions o;
      o.n = 2;
      o.make = make_mr_fd_quorum(2);
      o.proposals = {0, 1};
      o.fd = partition_fd;
      o.max_depth = 16;
      o.max_states = 2'000'000;
      const McResult r = model_check_consensus(o);
      mc.add_row({"naive MR+Sigma^nu", "partition", "16",
                  std::to_string(r.states_explored),
                  std::to_string(r.states_deduped),
                  r.violation_found
                      ? "VIOLATION in " + std::to_string(r.witness.size()) +
                            " steps (expected)"
                      : "none (unexpected)"});
    }
    for (int depth : {10, 12, 14}) {
      McOptions o;
      o.n = 2;
      o.make = make_mr_fd_quorum(2);
      o.proposals = {0, 1};
      o.fd = sigma_fd;
      o.max_depth = depth;
      o.max_states = 8'000'000;
      const McResult r = model_check_consensus(o);
      mc.add_row({"MR+Sigma", "intersecting", std::to_string(depth),
                  std::to_string(r.states_explored),
                  std::to_string(r.states_deduped),
                  r.violation_found ? "VIOLATION (unexpected)"
                                    : (r.exhausted ? "safe (exhaustive)"
                                                   : "safe (budget)")});
    }
    print_section(
        "E16: bounded model checking — the §6.3 violation found by "
        "exhaustive search",
        mc);
  }

  engine_speedup();
}

void BM_ProcessSetIntersect(benchmark::State& state) {
  Rng rng(1);
  std::vector<ProcessSet> sets;
  for (int i = 0; i < 256; ++i) {
    sets.push_back(rng.pick_subset(ProcessSet::full(64), 8));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sets[i % 256].intersects(sets[(i + 1) % 256]));
    ++i;
  }
}
BENCHMARK(BM_ProcessSetIntersect);

void BM_VarintRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    ByteWriter w;
    for (std::uint64_t v = 1; v < (1u << 21); v <<= 3) w.uvarint(v);
    const Bytes buf = w.take();
    ByteReader r(buf);
    while (!r.done()) benchmark::DoNotOptimize(r.uvarint());
  }
}
BENCHMARK(BM_VarintRoundTrip);

/// A do-nothing automaton: measures the harness overhead floor.
class NullAutomaton final : public Automaton {
 public:
  void step(const Incoming*, const FdValue&, std::vector<Outgoing>&) override {}
};

void BM_SchedulerThroughput(benchmark::State& state) {
  const Pid n = static_cast<Pid>(state.range(0));
  std::uint64_t seed = 1;
  const AutomatonFactory factory = [](Pid) {
    return std::make_unique<NullAutomaton>();
  };
  for (auto _ : state) {
    const FailurePattern fp(n);
    ScriptedOracle oracle([](Pid, Time) { return FdValue{}; });
    SchedulerOptions opts;
    opts.seed = seed++;
    opts.max_steps = 10'000;
    benchmark::DoNotOptimize(simulate(fp, oracle, factory, opts));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SchedulerThroughput)->Arg(4)->Arg(16)->Arg(64);

void BM_Replay(benchmark::State& state) {
  const Pid n = 4;
  const FailurePattern fp(n);
  auto oracle = omega_only(fp, 0, 2);
  const ConsensusFactory make = make_mr_majority(n);
  const AutomatonFactory generic = [&make](Pid p) {
    return make(p, p % 2);
  };
  SchedulerOptions opts;
  opts.seed = 3;
  opts.max_steps = 5'000;
  const SimResult sim = simulate(fp, oracle.top(), generic, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay(sim.run, n, generic));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sim.run.steps.size()));
}
BENCHMARK(BM_Replay);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "model")
