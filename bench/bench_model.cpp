// Experiment E10 plus substrate microbenchmarks.
//
// E10 validates Lemma 2.2 at scale (merge random disjoint partial runs and
// replay) and reports scheduler throughput; the microbenchmarks cover the
// primitives everything else is built on (ProcessSet ops, varint codec,
// replay).
#include "bench_util.hpp"
#include "algo/mr_consensus.hpp"
#include "check/model_checker.hpp"
#include "fd/scripted.hpp"
#include "sim/merge.hpp"

namespace nucon::bench {
namespace {

void experiments() {
  // E10: Lemma 2.2 sweep — merge disjoint halves of a 6-process system
  // under a fixed partition oracle, replay, and compare states.
  constexpr Pid kN = 6;
  ProcessSet side_a, side_b;
  for (Pid p = 0; p < kN / 2; ++p) side_a.insert(p);
  for (Pid p = kN / 2; p < kN; ++p) side_b.insert(p);

  const AutomatonFactory factory = [](Pid p) -> std::unique_ptr<Automaton> {
    return std::make_unique<MrConsensus>(
        p, p < kN / 2 ? 0 : 1, MrOptions{kN, MrQuorumMode::kFdQuorum});
  };

  int merged_ok = 0;
  int states_match = 0;
  const int trials = 50;
  Accumulator merged_steps;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t seed = 1 + static_cast<std::uint64_t>(i);
    const FailurePattern fp(kN);
    ScriptedOracle oracle([side_a, side_b](Pid p, Time) {
      const ProcessSet side = side_a.contains(p) ? side_a : side_b;
      FdValue v = FdValue::of_quorum(side);
      v.set_leader(side.min());
      return v;
    });

    SchedulerOptions opts;
    opts.seed = seed;
    opts.max_steps = 300;
    opts.restrict_to = side_a;
    SimResult run_a = simulate(fp, oracle, factory, opts);
    opts.restrict_to = side_b;
    opts.seed = seed + 1000;
    SimResult run_b = simulate(fp, oracle, factory, opts);

    const auto merged = merge_runs(run_a.run, run_b.run);
    if (!merged) continue;
    const ReplayOutcome outcome = replay(*merged, kN, factory);
    if (!outcome.ok || check_run_structure(*merged)) continue;
    ++merged_ok;
    merged_steps.add(static_cast<double>(merged->steps.size()));

    bool all_match = true;
    for (Pid p = 0; p < kN; ++p) {
      const auto& original = side_a.contains(p) ? run_a : run_b;
      all_match = all_match &&
                  outcome.automata[static_cast<std::size_t>(p)]->snapshot() ==
                      original.automata[static_cast<std::size_t>(p)]->snapshot();
    }
    if (all_match) ++states_match;
  }

  TextTable t({"trials", "merged_valid", "states_match", "mean_steps"});
  t.add_row({std::to_string(trials), std::to_string(merged_ok),
             std::to_string(states_match),
             TextTable::fmt(merged_steps.mean(), 0)});
  print_section("E10: Lemma 2.2 merge-and-replay sweep", t);

  // E16: exhaustive schedule exploration at n=2. The naive Sigma^nu
  // algorithm's agreement violation is FOUND; MR-Sigma is certified safe
  // over the full bounded space; state counts show the growth the dedup
  // tames.
  {
    TextTable mc({"system", "history", "depth", "states", "deduped",
                  "outcome"});
    const auto partition_fd = [](Pid p, int) {
      FdValue v = FdValue::of_quorum(ProcessSet::single(p));
      v.set_leader(p);
      return v;
    };
    const auto sigma_fd = [](Pid p, int) {
      FdValue v = FdValue::of_quorum(ProcessSet{0, 1});
      v.set_leader(p);
      return v;
    };

    {
      McOptions o;
      o.n = 2;
      o.make = make_mr_fd_quorum(2);
      o.proposals = {0, 1};
      o.fd = partition_fd;
      o.max_depth = 16;
      o.max_states = 2'000'000;
      const McResult r = model_check_consensus(o);
      mc.add_row({"naive MR+Sigma^nu", "partition", "16",
                  std::to_string(r.states_explored),
                  std::to_string(r.states_deduped),
                  r.violation_found
                      ? "VIOLATION in " + std::to_string(r.witness.size()) +
                            " steps (expected)"
                      : "none (unexpected)"});
    }
    for (int depth : {10, 12, 14}) {
      McOptions o;
      o.n = 2;
      o.make = make_mr_fd_quorum(2);
      o.proposals = {0, 1};
      o.fd = sigma_fd;
      o.max_depth = depth;
      o.max_states = 8'000'000;
      const McResult r = model_check_consensus(o);
      mc.add_row({"MR+Sigma", "intersecting", std::to_string(depth),
                  std::to_string(r.states_explored),
                  std::to_string(r.states_deduped),
                  r.violation_found ? "VIOLATION (unexpected)"
                                    : (r.exhausted ? "safe (exhaustive)"
                                                   : "safe (budget)")});
    }
    print_section(
        "E16: bounded model checking — the §6.3 violation found by "
        "exhaustive search",
        mc);
  }
}

void BM_ProcessSetIntersect(benchmark::State& state) {
  Rng rng(1);
  std::vector<ProcessSet> sets;
  for (int i = 0; i < 256; ++i) {
    sets.push_back(rng.pick_subset(ProcessSet::full(64), 8));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sets[i % 256].intersects(sets[(i + 1) % 256]));
    ++i;
  }
}
BENCHMARK(BM_ProcessSetIntersect);

void BM_VarintRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    ByteWriter w;
    for (std::uint64_t v = 1; v < (1u << 21); v <<= 3) w.uvarint(v);
    const Bytes buf = w.take();
    ByteReader r(buf);
    while (!r.done()) benchmark::DoNotOptimize(r.uvarint());
  }
}
BENCHMARK(BM_VarintRoundTrip);

/// A do-nothing automaton: measures the harness overhead floor.
class NullAutomaton final : public Automaton {
 public:
  void step(const Incoming*, const FdValue&, std::vector<Outgoing>&) override {}
};

void BM_SchedulerThroughput(benchmark::State& state) {
  const Pid n = static_cast<Pid>(state.range(0));
  std::uint64_t seed = 1;
  const AutomatonFactory factory = [](Pid) {
    return std::make_unique<NullAutomaton>();
  };
  for (auto _ : state) {
    const FailurePattern fp(n);
    ScriptedOracle oracle([](Pid, Time) { return FdValue{}; });
    SchedulerOptions opts;
    opts.seed = seed++;
    opts.max_steps = 10'000;
    benchmark::DoNotOptimize(simulate(fp, oracle, factory, opts));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SchedulerThroughput)->Arg(4)->Arg(16)->Arg(64);

void BM_Replay(benchmark::State& state) {
  const Pid n = 4;
  const FailurePattern fp(n);
  auto oracle = omega_only(fp, 0, 2);
  const ConsensusFactory make = make_mr_majority(n);
  const AutomatonFactory generic = [&make](Pid p) {
    return make(p, p % 2);
  };
  SchedulerOptions opts;
  opts.seed = 3;
  opts.max_steps = 5'000;
  const SimResult sim = simulate(fp, oracle.top(), generic, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay(sim.run, n, generic));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sim.run.steps.size()));
}
BENCHMARK(BM_Replay);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "E10")
