// Shared scaffolding for the experiment binaries.
//
// Every bench binary prints its experiment tables (the reproduction of the
// paper's results; see DESIGN.md §3 and EXPERIMENTS.md) before handing
// control to google-benchmark for the microbenchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "algo/harness.hpp"
#include "exp/sweep.hpp"
#include "fd/classic.hpp"
#include "fd/composed.hpp"
#include "fd/omega.hpp"
#include "fd/sigma.hpp"
#include "fd/sigma_nu.hpp"
#include "obs/report.hpp"
#include "util/stats.hpp"

namespace nucon::bench {

/// Owns a composed oracle stack for one run.
struct OracleStack {
  std::unique_ptr<Oracle> first;
  std::unique_ptr<Oracle> second;
  std::unique_ptr<Oracle> composed;

  Oracle& top() { return composed ? *composed : *first; }
};

inline OracleStack omega_sigma_nu_plus(
    const FailurePattern& fp, Time stabilize, std::uint64_t seed,
    FaultyQuorumBehavior behavior = FaultyQuorumBehavior::kAdversarialDisjoint) {
  OracleStack s;
  OmegaOptions oo;
  oo.stabilize_at = stabilize;
  oo.seed = seed;
  s.first = std::make_unique<OmegaOracle>(fp, oo);
  SigmaNuPlusOptions so;
  so.stabilize_at = stabilize;
  so.seed = seed + 0x9e37;
  so.faulty = behavior;
  s.second = std::make_unique<SigmaNuPlusOracle>(fp, so);
  s.composed = std::make_unique<ComposedOracle>(*s.first, *s.second);
  return s;
}

inline OracleStack omega_sigma(const FailurePattern& fp, Time stabilize,
                               std::uint64_t seed) {
  OracleStack s;
  OmegaOptions oo;
  oo.stabilize_at = stabilize;
  oo.seed = seed;
  s.first = std::make_unique<OmegaOracle>(fp, oo);
  SigmaOptions so;
  so.stabilize_at = stabilize;
  so.seed = seed + 0x9e37;
  s.second = std::make_unique<SigmaOracle>(fp, so);
  s.composed = std::make_unique<ComposedOracle>(*s.first, *s.second);
  return s;
}

inline OracleStack omega_sigma_nu(const FailurePattern& fp, Time stabilize,
                                  std::uint64_t seed) {
  OracleStack s;
  OmegaOptions oo;
  oo.stabilize_at = stabilize;
  oo.seed = seed;
  s.first = std::make_unique<OmegaOracle>(fp, oo);
  SigmaNuOptions so;
  so.stabilize_at = stabilize;
  so.seed = seed + 0x9e37;
  s.second = std::make_unique<SigmaNuOracle>(fp, so);
  s.composed = std::make_unique<ComposedOracle>(*s.first, *s.second);
  return s;
}

inline OracleStack omega_only(const FailurePattern& fp, Time stabilize,
                              std::uint64_t seed) {
  OracleStack s;
  OmegaOptions oo;
  oo.stabilize_at = stabilize;
  oo.seed = seed;
  s.first = std::make_unique<OmegaOracle>(fp, oo);
  return s;
}

inline OracleStack evt_strong(const FailurePattern& fp, Time stabilize,
                              std::uint64_t seed) {
  OracleStack s;
  SuspectsOptions so;
  so.stabilize_at = stabilize;
  so.seed = seed;
  s.first = std::make_unique<EvtStrongOracle>(fp, so);
  return s;
}

/// A failure pattern with `faults` crashes spread over [20, latest].
inline FailurePattern spread_crashes(Pid n, Pid faults, Time latest,
                                     std::uint64_t seed) {
  Rng rng(seed * 2654435761ULL + 17);
  return Environment{n, static_cast<Pid>(n - 1)}.sample(rng, faults, latest);
}

inline std::vector<Value> mixed_proposals(Pid n) {
  std::vector<Value> out(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) out[static_cast<std::size_t>(p)] = p % 2;
  return out;
}

/// The report this binary accumulates while run_experiments() executes.
/// NUCON_BENCH_MAIN names it and writes BENCH_<name>.json on exit
/// (obs/report.hpp schema).
inline obs::BenchReport& report() {
  static obs::BenchReport r;
  return r;
}

/// Prints a table and captures it into the report.
inline void print_section(const char* title, const TextTable& table) {
  std::printf("\n== %s ==\n%s", title, table.render().c_str());
  report().tables.push_back(
      obs::TableSection{title, table.headers(), table.rows()});
}

/// Captures one sweep's folded result (verdict counts, metrics, failure
/// artifacts) as a report section.
inline void record_sweep(std::string name, std::string spec,
                         const exp::SweepResult& result) {
  report().sweeps.push_back(
      obs::section_of(std::move(name), std::move(spec), result));
  report().timings["sweep:" + report().sweeps.back().name + ":execute"] =
      result.wall_seconds;
  report().timings["sweep:" + report().sweeps.back().name + ":fold"] =
      result.fold_seconds;
}

/// Captures one profiled workload's per-phase breakdown as a report
/// section (no-op for an empty collector, e.g. NUCON_DISABLE_PROFILING).
inline void record_profile(std::string name,
                           const prof::ProfileCollector& collector) {
  if (collector.empty()) return;
  report().profiles.push_back(
      obs::profile_section_of(std::move(name), collector));
}

inline int write_bench_report(const char* name) {
  report().name = name;
  const std::string path = std::string("BENCH_") + name + ".json";
  if (!obs::write_report_json(report(), path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nreport: %s\n", path.c_str());
  return 0;
}

}  // namespace nucon::bench

/// Each bench binary defines `run_experiments()` and uses this main. The
/// report_name string becomes BENCH_<report_name>.json in the working
/// directory, holding every table printed through print_section plus any
/// sweeps captured via record_sweep.
#define NUCON_BENCH_MAIN(run_experiments, report_name)          \
  int main(int argc, char** argv) {                             \
    run_experiments();                                          \
    if (nucon::bench::write_bench_report(report_name) != 0) {   \
      return 1;                                                 \
    }                                                           \
    benchmark::Initialize(&argc, argv);                         \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {   \
      return 1;                                                 \
    }                                                           \
    benchmark::RunSpecifiedBenchmarks();                        \
    benchmark::Shutdown();                                      \
    return 0;                                                   \
  }
