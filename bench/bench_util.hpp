// Shared scaffolding for the experiment binaries.
//
// Every bench binary prints its experiment tables (the reproduction of the
// paper's results; see DESIGN.md §3 and EXPERIMENTS.md) before handing
// control to google-benchmark for the microbenchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "algo/harness.hpp"
#include "fd/classic.hpp"
#include "fd/composed.hpp"
#include "fd/omega.hpp"
#include "fd/sigma.hpp"
#include "fd/sigma_nu.hpp"
#include "util/stats.hpp"

namespace nucon::bench {

/// Owns a composed oracle stack for one run.
struct OracleStack {
  std::unique_ptr<Oracle> first;
  std::unique_ptr<Oracle> second;
  std::unique_ptr<Oracle> composed;

  Oracle& top() { return composed ? *composed : *first; }
};

inline OracleStack omega_sigma_nu_plus(
    const FailurePattern& fp, Time stabilize, std::uint64_t seed,
    FaultyQuorumBehavior behavior = FaultyQuorumBehavior::kAdversarialDisjoint) {
  OracleStack s;
  OmegaOptions oo;
  oo.stabilize_at = stabilize;
  oo.seed = seed;
  s.first = std::make_unique<OmegaOracle>(fp, oo);
  SigmaNuPlusOptions so;
  so.stabilize_at = stabilize;
  so.seed = seed + 0x9e37;
  so.faulty = behavior;
  s.second = std::make_unique<SigmaNuPlusOracle>(fp, so);
  s.composed = std::make_unique<ComposedOracle>(*s.first, *s.second);
  return s;
}

inline OracleStack omega_sigma(const FailurePattern& fp, Time stabilize,
                               std::uint64_t seed) {
  OracleStack s;
  OmegaOptions oo;
  oo.stabilize_at = stabilize;
  oo.seed = seed;
  s.first = std::make_unique<OmegaOracle>(fp, oo);
  SigmaOptions so;
  so.stabilize_at = stabilize;
  so.seed = seed + 0x9e37;
  s.second = std::make_unique<SigmaOracle>(fp, so);
  s.composed = std::make_unique<ComposedOracle>(*s.first, *s.second);
  return s;
}

inline OracleStack omega_sigma_nu(const FailurePattern& fp, Time stabilize,
                                  std::uint64_t seed) {
  OracleStack s;
  OmegaOptions oo;
  oo.stabilize_at = stabilize;
  oo.seed = seed;
  s.first = std::make_unique<OmegaOracle>(fp, oo);
  SigmaNuOptions so;
  so.stabilize_at = stabilize;
  so.seed = seed + 0x9e37;
  s.second = std::make_unique<SigmaNuOracle>(fp, so);
  s.composed = std::make_unique<ComposedOracle>(*s.first, *s.second);
  return s;
}

inline OracleStack omega_only(const FailurePattern& fp, Time stabilize,
                              std::uint64_t seed) {
  OracleStack s;
  OmegaOptions oo;
  oo.stabilize_at = stabilize;
  oo.seed = seed;
  s.first = std::make_unique<OmegaOracle>(fp, oo);
  return s;
}

inline OracleStack evt_strong(const FailurePattern& fp, Time stabilize,
                              std::uint64_t seed) {
  OracleStack s;
  SuspectsOptions so;
  so.stabilize_at = stabilize;
  so.seed = seed;
  s.first = std::make_unique<EvtStrongOracle>(fp, so);
  return s;
}

/// A failure pattern with `faults` crashes spread over [20, latest].
inline FailurePattern spread_crashes(Pid n, Pid faults, Time latest,
                                     std::uint64_t seed) {
  Rng rng(seed * 2654435761ULL + 17);
  return Environment{n, static_cast<Pid>(n - 1)}.sample(rng, faults, latest);
}

inline std::vector<Value> mixed_proposals(Pid n) {
  std::vector<Value> out(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) out[static_cast<std::size_t>(p)] = p % 2;
  return out;
}

inline void print_section(const char* title, const TextTable& table) {
  std::printf("\n== %s ==\n%s", title, table.render().c_str());
}

}  // namespace nucon::bench

/// Each bench binary defines `run_experiments()` and uses this main.
#define NUCON_BENCH_MAIN(run_experiments)                       \
  int main(int argc, char** argv) {                             \
    run_experiments();                                          \
    benchmark::Initialize(&argc, argv);                         \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {   \
      return 1;                                                 \
    }                                                           \
    benchmark::RunSpecifiedBenchmarks();                        \
    benchmark::Shutdown();                                      \
    return 0;                                                   \
  }
