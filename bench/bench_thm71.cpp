// Experiment E7/E8 (paper Theorem 7.1): (Omega, Sigma^nu) == (Omega, Sigma)
// in E_t iff t < n/2.
//
// E7 (IF): with t < n/2, Sigma runs "from scratch" — reports the emulated
// quorum cadence (steps per round) and the mechanical Sigma verdict.
// E8 (ONLY-IF): with t >= n/2, the partition construction defeats every
// candidate transformation — reports, per candidate, the defeat mode and
// the disjoint quorums of the merged run R'.
#include <thread>

#include "bench_util.hpp"
#include "core/from_scratch.hpp"
#include "exp/sweep.hpp"
#include "core/partition_argument.hpp"
#include "core/sigma_from_majority.hpp"
#include "fd/history.hpp"
#include "fd/scripted.hpp"

namespace nucon::bench {
namespace {

void experiments() {
  {
    TextTable t({"n", "t", "faults", "rounds", "steps/round", "msgs",
                 "sigma_ok"});
    for (Pid n : {3, 5, 7, 9}) {
      const Pid bound = static_cast<Pid>((n - 1) / 2);
      for (Pid faults = 0; faults <= bound; ++faults) {
        FailurePattern fp = spread_crashes(n, faults, 50, 3);
        ScriptedOracle no_fd([](Pid, Time) { return FdValue{}; });
        RecordedHistory emulated;
        SchedulerOptions opts;
        opts.seed = 5;
        opts.max_steps = 6000;
        opts = with_emulation_recording(std::move(opts), emulated);
        const SimResult sim =
            simulate(fp, no_fd, make_sigma_from_majority(n, bound), opts);

        Accumulator rounds;
        for (Pid p : fp.correct()) {
          rounds.add(static_cast<const SigmaFromMajority*>(
                         sim.automata[static_cast<std::size_t>(p)].get())
                         ->round());
        }
        const double steps_per_round =
            rounds.mean() > 0
                ? static_cast<double>(sim.run.steps.size()) /
                      (rounds.mean() * static_cast<double>(fp.correct().size()))
                : 0.0;
        t.add_row({std::to_string(n), std::to_string(bound),
                   std::to_string(faults), TextTable::fmt(rounds.mean(), 0),
                   TextTable::fmt(steps_per_round, 2),
                   std::to_string(sim.messages_sent),
                   check_sigma(emulated, fp).ok ? "yes" : "NO"});
      }
    }
    print_section(
        "E7: Sigma from scratch under a correct majority (Thm 7.1 IF)", t);
  }

  {
    // The constructive upshot of the IF direction: consensus with NO
    // oracle at all — Omega by adaptive-timeout election, Sigma from
    // majorities, MR on top, in one automaton. Each (n, faults) cell is now
    // a 10-seed sweep executed on the parallel engine; the fault bound
    // differs per n, so the cells are built point-by-point rather than as
    // one rectangular grid.
    std::vector<exp::SweepPoint> points;
    for (Pid n : {3, 5, 7}) {
      for (Pid faults : {static_cast<Pid>(0), static_cast<Pid>((n - 1) / 2)}) {
        for (int k = 0; k < 10; ++k) {
          exp::SweepPoint pt;
          pt.algo = exp::Algo::kFromScratch;
          pt.n = n;
          pt.faults = faults;
          pt.stabilize = 120;
          pt.max_steps = 300'000;
          pt.seed = 5 + static_cast<std::uint64_t>(k);
          points.push_back(pt);
        }
      }
    }
    exp::SweepRunner runner(std::thread::hardware_concurrency());
    runner.set_trace_dir("bench-traces/e7b");
    const exp::SweepResult sweep = runner.run(points);

    TextTable t({"n", "t", "faults", "runs", "decided", "mean_round",
                 "mean_steps", "mean_msgs", "uniform_ok"});
    for (std::size_t cell = 0; cell < sweep.jobs.size(); cell += 10) {
      const exp::SweepPoint& pt = sweep.jobs[cell].point;
      int decided = 0;
      int uniform_ok = 0;
      Accumulator rounds, steps, msgs;
      for (std::size_t i = cell; i < cell + 10; ++i) {
        const ConsensusRunStats& stats = sweep.jobs[i].stats;
        decided += stats.all_correct_decided;
        uniform_ok += stats.verdict.solves_uniform();
        if (stats.decide_round > 0) rounds.add(stats.decide_round);
        steps.add(static_cast<double>(stats.steps));
        msgs.add(static_cast<double>(stats.messages_sent));
      }
      t.add_row({std::to_string(pt.n),
                 std::to_string(static_cast<Pid>((pt.n - 1) / 2)),
                 std::to_string(pt.faults), "10",
                 std::to_string(decided) + "/10",
                 TextTable::fmt(rounds.mean(), 1),
                 TextTable::fmt(steps.mean(), 0),
                 TextTable::fmt(msgs.mean(), 0),
                 uniform_ok == 10 ? "10/10" : std::to_string(uniform_ok) + "/10"});
    }
    print_section(
        "E7b: consensus with no oracle at all (Omega election + Sigma from "
        "scratch + MR), 10-seed sweeps",
        t);
    record_sweep("E7b", "from-scratch stack, n in {3,5,7}, 10 seeds", sweep);
    for (std::size_t i = 0; i < sweep.aggregate.failures.size(); ++i) {
      std::printf("UNEXPECTED failure — replay with: nucon_explore --replay "
                  "'%s'\n",
                  sweep.aggregate.failures[i].to_string().c_str());
      if (i < sweep.aggregate.failure_trace_paths.size()) {
        std::printf("  trace attached: %s (inspect with trace_dump)\n",
                    sweep.aggregate.failure_trace_paths[i].c_str());
      }
    }
  }

  {
    TextTable t({"candidate", "n", "outcome", "tau", "quorum_A", "quorum_B",
                 "merged_run_ok"});
    struct Candidate {
      const char* name;
      AutomatonFactory factory;
    };
    for (Pid n : {4, 6, 8}) {
      const Candidate candidates[] = {
          {"identity", make_identity_candidate()},
          {"gossip-union", make_gossip_union_candidate(n)},
          {"wait-n-t", make_wait_for_n_minus_t_candidate(n)},
      };
      for (const Candidate& c : candidates) {
        const auto r = run_partition_argument(n, c.factory, 6000, 7);
        const char* outcome =
            r.outcome == PartitionOutcome::kIntersectionViolated
                ? "intersection violated"
                : (r.outcome == PartitionOutcome::kCompletenessFailed
                       ? "completeness failed"
                       : "SURVIVED");
        t.add_row({c.name, std::to_string(n), outcome, std::to_string(r.tau),
                   r.quorum_a.to_string(), r.quorum_b.to_string(),
                   r.merged_run_valid ? "yes" : "-"});
      }
    }
    print_section(
        "E8: partition argument defeats every candidate when t >= n/2 "
        "(Thm 7.1 ONLY-IF)",
        t);
  }
}

void BM_SigmaFromMajorityRound(benchmark::State& state) {
  const Pid n = static_cast<Pid>(state.range(0));
  const Pid t = static_cast<Pid>((n - 1) / 2);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const FailurePattern fp(n);
    ScriptedOracle no_fd([](Pid, Time) { return FdValue{}; });
    SchedulerOptions opts;
    opts.seed = seed++;
    opts.max_steps = 2000;
    benchmark::DoNotOptimize(
        simulate(fp, no_fd, make_sigma_from_majority(n, t), opts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SigmaFromMajorityRound)->Arg(3)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_PartitionArgument(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_partition_argument(6, make_identity_candidate(), 4000, seed++));
  }
}
BENCHMARK(BM_PartitionArgument)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "E7")
