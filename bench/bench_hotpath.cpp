// Hot-path throughput baseline for the simulation core.
//
// Not a paper experiment: this bench measures the simulator itself, so the
// perf trajectory of the allocation overhaul (shared broadcast payloads,
// reusable encode scratch, record_run off in sweep workers) is pinned to
// numbers. Per registry algorithm it reports
//
//   steps/s     simulated automaton steps per wall-clock second,
//   delivers/s  message deliveries per wall-clock second,
//   B/bcast     payload bytes DEEP-COPIED per broadcast (post-overhaul),
//   pre B/bcast what copy-per-destination would have copied (copied+shared),
//   reduction   1 - copied/(copied+shared), the fraction of would-be copy
//               bytes the refcounted payloads eliminated.
//
// The broadcast-heavy algorithms (A_nuc, StackedNuc, and the DAG gossip
// inside StackedNuc) must show reduction >= (n-2)/(n-1): an n-1-way
// broadcast deep-copies at most one sealed scratch buffer where it used to
// copy n-1 times, and pure-move payloads (DAG gossip) copy nothing at all.
//
// NUCON_HOTPATH_QUICK=1 shrinks seeds and step budgets for CI
// (scripts/bench-quick.sh); the report schema is identical.
#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "bench_util.hpp"
#include "prof/profiler.hpp"
#include "util/shared_bytes.hpp"

namespace nucon::bench {
namespace {

bool quick_mode() {
  const char* v = std::getenv("NUCON_HOTPATH_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

constexpr exp::Algo kRegistry[] = {
    exp::Algo::kAnuc,      exp::Algo::kStacked, exp::Algo::kMrMajority,
    exp::Algo::kMrSigma,   exp::Algo::kNaive,   exp::Algo::kCt,
    exp::Algo::kBenOr,     exp::Algo::kFromScratch,
};

struct HotpathRow {
  double steps_per_second = 0.0;
  double delivers_per_second = 0.0;
  double copied_per_broadcast = 0.0;
  double prechange_per_broadcast = 0.0;
  /// 1 - copied/(copied+shared); 1.0 when nothing was copied at all.
  double copy_reduction = 1.0;
  std::int64_t steps = 0;
};

std::vector<exp::SweepPoint> points_for(exp::Algo algo, Pid n, int seeds,
                                        std::int64_t max_steps) {
  exp::SweepGrid grid;
  grid.algos = {algo};
  grid.ns = {n};
  grid.fault_counts = {1};
  grid.seed_count = seeds;
  grid.max_steps = max_steps;
  return grid.expand();
}

HotpathRow measure(exp::Algo algo, Pid n, int seeds, std::int64_t max_steps) {
  HotpathRow row;
  const PayloadCounters before = SharedBytes::counters();
  std::int64_t delivers = 0;

  const auto started = std::chrono::steady_clock::now();
  for (const exp::SweepPoint& pt : points_for(algo, n, seeds, max_steps)) {
    const ConsensusRunStats stats = exp::run_point(pt);
    row.steps += static_cast<std::int64_t>(stats.steps);
    delivers += stats.metrics.counter_value("scheduler.delivers");
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  const PayloadCounters c = SharedBytes::counters() - before;
  if (elapsed > 0.0) {
    row.steps_per_second = static_cast<double>(row.steps) / elapsed;
    row.delivers_per_second = static_cast<double>(delivers) / elapsed;
  }
  if (c.broadcasts > 0) {
    row.copied_per_broadcast = static_cast<double>(c.copied_bytes) /
                               static_cast<double>(c.broadcasts);
    row.prechange_per_broadcast =
        static_cast<double>(c.copied_bytes + c.shared_bytes) /
        static_cast<double>(c.broadcasts);
  }
  if (c.copied_bytes + c.shared_bytes > 0) {
    row.copy_reduction =
        1.0 - static_cast<double>(c.copied_bytes) /
                  static_cast<double>(c.copied_bytes + c.shared_bytes);
  }
  return row;
}

void experiments() {
  const bool quick = quick_mode();
  const Pid n = 6;
  const int seeds = quick ? 2 : 10;
  const std::int64_t max_steps = quick ? 20'000 : 100'000;

  {
    TextTable t({"algorithm", "steps/s", "delivers/s", "B/bcast",
                 "pre B/bcast", "reduction", "steps"});
    for (const exp::Algo algo : kRegistry) {
      const HotpathRow r = measure(algo, n, seeds, max_steps);
      t.add_row({exp::algo_name(algo), TextTable::fmt(r.steps_per_second, 0),
                 TextTable::fmt(r.delivers_per_second, 0),
                 TextTable::fmt(r.copied_per_broadcast, 1),
                 TextTable::fmt(r.prechange_per_broadcast, 1),
                 TextTable::fmt(r.copy_reduction, 3),
                 std::to_string(r.steps)});
    }
    print_section("H1: simulation-core throughput baseline (n=6, faults=1)",
                  t);
  }

  // One parallel sweep through the runner so the report also carries the
  // engine-level steps_per_second field next to wall_seconds.
  {
    exp::SweepGrid grid;
    grid.algos = {exp::Algo::kAnuc, exp::Algo::kMrSigma, exp::Algo::kCt};
    grid.ns = {5};
    grid.seed_count = quick ? 2 : 8;
    grid.max_steps = quick ? 20'000 : 60'000;
    exp::SweepRunner runner;
    runner.set_profiling(true);
    const exp::SweepResult result = runner.run(grid);
    record_sweep("hotpath-sweep", "3 algos x n=5, engine throughput", result);
    record_profile("hotpath-sweep", result.profile);
    TextTable t({"points", "wall_s", "steps/s"});
    t.add_row({std::to_string(result.jobs.size()),
               TextTable::fmt(result.wall_seconds, 3),
               TextTable::fmt(result.steps_per_second, 0)});
    print_section("H2: sweep-engine throughput (record_run off in workers)",
                  t);
  }

  // H3: where does a scheduler step go as n grows? One fresh collector per
  // n so each row is an independent per-phase breakdown; the same data
  // lands in the report's "profiles" section for nucon_bench to track.
  // n stops at 64 here to keep per-phase rows cheap; the H4 table below
  // carries the wide-set regime (kMaxProcesses is now 1024).
  {
    const std::vector<Pid> ns =
        quick ? std::vector<Pid>{6, 16, 32} : std::vector<Pid>{6, 16, 32, 64};
    TextTable t({"n", "steps/s", "ns/step", "deliver", "oracle", "automaton",
                 "encode", "trace", "coverage"});
    for (const Pid pn : ns) {
      prof::ProfileCollector profile;
      const auto started = std::chrono::steady_clock::now();
      std::int64_t steps = 0;
      for (const exp::SweepPoint& pt :
           points_for(exp::Algo::kAnuc, pn, quick ? 1 : 3,
                      quick ? 10'000 : 50'000)) {
        steps += static_cast<std::int64_t>(exp::run_point(pt, &profile).steps);
      }
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - started)
                                 .count();
      // Precision 1, not 0: cheap phases land under 0.5 ns/call on fast
      // machines and a 0-precision column would render them as "0",
      // indistinguishable from "never measured" (the S1 rendering bug).
      const auto phase_ns = [&profile](prof::Phase ph) {
        return TextTable::fmt(profile.ns_per_call(ph), 1);
      };
      t.add_row({std::to_string(pn),
                 TextTable::fmt(elapsed > 0.0
                                    ? static_cast<double>(steps) / elapsed
                                    : 0.0,
                                0),
                 TextTable::fmt(profile.ns_per_call(prof::Phase::kStep), 1),
                 phase_ns(prof::Phase::kDeliveryChoice),
                 phase_ns(prof::Phase::kOracleSample),
                 phase_ns(prof::Phase::kAutomatonStep),
                 phase_ns(prof::Phase::kPayloadEncode),
                 phase_ns(prof::Phase::kTraceHook),
                 TextTable::fmt(profile.covered_fraction(), 3)});
      record_profile("anuc-n" + std::to_string(pn), profile);
    }
    print_section("H3: per-phase step breakdown vs n (A_nuc, ns per call)",
                  t);
  }

  // H4: end-to-end A_nuc scaling into the wide-ProcessSet regime. The
  // step budget grows ~n^2 (message count per round does) so the large
  // rows measure a completed consensus, not a truncation; small n runs
  // enough seeds to push each row's wall time past the steady-clock
  // noise floor (decide lands at ~10.5n^2 steps, so ~300k steps per row
  // keeps the 10%-tolerance ledger guard on steps/s meaningful — a
  // single n=16 run finishes in ~2 ms and its rate is timer jitter).
  // Unlike H1-H3 these rows set the quorum redraw interval past the step
  // budget (hold = budget ticks, one window spanning the whole run): at
  // the default hold=8 the detector redraws its quorum dozens of times
  // per round forever, so histories grow with every await step and the
  // decide precondition seen[Q] < k waits on a random quorum repeat —
  // that regime measures noise accumulation, not scale. A single window
  // is the fully stabilized post-GST limit the paper's eventual detectors
  // converge to (each process's quorum flips once, from the noisy to the
  // stable draw, at stabilization): decide lands at ~10n^2 steps and n
  // itself is the only variable.
  // The "decided" column is the completion proof for n=256 and n=1000;
  // the steps/s series is the scaling guard nucon_bench check tightens.
  {
    const std::vector<Pid> ns = quick
                                    ? std::vector<Pid>{6, 16, 32, 64}
                                    : std::vector<Pid>{6, 16, 32, 64, 256, 1000};
    TextTable t({"n", "steps/s", "ns/step", "steps", "decided", "wall_s"});
    for (const Pid pn : ns) {
      const std::int64_t budget =
          std::max<std::int64_t>(50'000, 40LL * pn * pn);
      const int row_seeds = static_cast<int>(std::clamp<std::int64_t>(
          300'000 / (11LL * pn * pn), 1, 64));
      const auto started = std::chrono::steady_clock::now();
      std::int64_t steps = 0;
      bool decided = true;
      for (exp::SweepPoint pt :
           points_for(exp::Algo::kAnuc, pn, row_seeds, budget)) {
        pt.hold = budget;
        const ConsensusRunStats stats = exp::run_point(pt);
        steps += static_cast<std::int64_t>(stats.steps);
        decided = decided && stats.all_correct_decided;
      }
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - started)
                                 .count();
      const double sps =
          elapsed > 0.0 ? static_cast<double>(steps) / elapsed : 0.0;
      t.add_row({std::to_string(pn), TextTable::fmt(sps, 0),
                 TextTable::fmt(sps > 0.0 ? 1e9 / sps : 0.0, 1),
                 std::to_string(steps), decided ? "yes" : "no",
                 TextTable::fmt(elapsed, 3)});
    }
    print_section("H4: A_nuc scaling into the wide-set regime (steps/s vs n)",
                  t);
  }
}

void BM_RunPoint(benchmark::State& state) {
  const auto algo = static_cast<exp::Algo>(state.range(0));
  exp::SweepPoint pt;
  pt.algo = algo;
  pt.n = 6;
  pt.max_steps = 20'000;
  std::int64_t steps = 0;
  for (auto _ : state) {
    pt.seed += 1;
    const ConsensusRunStats stats = exp::run_point(pt);
    steps += static_cast<std::int64_t>(stats.steps);
    benchmark::DoNotOptimize(stats.steps);
  }
  state.SetLabel(exp::algo_name(algo));
  state.SetItemsProcessed(steps);  // items/s == simulated steps/s
}
BENCHMARK(BM_RunPoint)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "hotpath")
