// Experiment E12: the register contrast (paper §1; Delporte et al.).
//
// The same ABD protocol run over different quorum detectors:
//   Sigma (kernel)        — atomic in EVERY environment;
//   Sigma (majorities)    — atomic while a majority is correct;
//   Sigma^nu benign       — atomic (the faulty modules happen to behave);
//   Sigma^nu adversarial  — atomicity violations appear (stale reads by
//                           the faulty-but-alive process): registers are
//                           inherently "uniform" objects, which is why the
//                           paper's proofs cannot route through them.
// Also reports the cost of an operation (steps and messages per op).
#include "bench_util.hpp"
#include "reg/harness.hpp"

namespace nucon::bench {
namespace {

enum class RegOracle { kSigmaKernel, kSigmaMajority, kNuBenign, kNuAdversarial };

const char* oracle_name(RegOracle o) {
  switch (o) {
    case RegOracle::kSigmaKernel:
      return "Sigma (kernel)";
    case RegOracle::kSigmaMajority:
      return "Sigma (majority)";
    case RegOracle::kNuBenign:
      return "Sigma^nu benign";
    case RegOracle::kNuAdversarial:
      return "Sigma^nu adversarial";
  }
  return "?";
}

struct RegRow {
  int runs = 0;
  int done = 0;
  int violations = 0;
  Accumulator steps_per_op;
  Accumulator msgs_per_op;
};

RegRow run_register_family(RegOracle which, Pid n, Pid faults, int seeds) {
  RegRow row;
  for (int i = 0; i < seeds; ++i) {
    const std::uint64_t seed = 1 + static_cast<std::uint64_t>(i);
    FailurePattern fp(n);
    // Late crashes: the interesting window is faulty-but-alive.
    {
      Rng rng(seed * 97 + 3);
      const ProcessSet victims =
          rng.pick_subset(ProcessSet::full(n), faults);
      for (Pid p : victims) fp.set_crash(p, 800 + rng.range(0, 100));
    }

    std::unique_ptr<Oracle> oracle;
    switch (which) {
      case RegOracle::kSigmaKernel: {
        SigmaOptions so;
        so.stabilize_at = 60;
        so.seed = seed;
        oracle = std::make_unique<SigmaOracle>(fp, so);
        break;
      }
      case RegOracle::kSigmaMajority: {
        SigmaOptions so;
        so.stabilize_at = 60;
        so.seed = seed;
        so.strategy = SigmaStrategy::kMajority;
        oracle = std::make_unique<SigmaOracle>(fp, so);
        break;
      }
      case RegOracle::kNuBenign:
      case RegOracle::kNuAdversarial: {
        SigmaNuOptions so;
        so.stabilize_at = 0;
        so.seed = seed;
        so.faulty = which == RegOracle::kNuBenign
                        ? FaultyQuorumBehavior::kBenign
                        : FaultyQuorumBehavior::kAdversarialDisjoint;
        oracle = std::make_unique<SigmaNuOracle>(fp, so);
        break;
      }
    }

    SchedulerOptions opts;
    opts.seed = seed;
    opts.max_steps = 120'000;
    const RegisterRunResult result = run_register_workload(
        fp, *oracle, alternating_workloads(n, 3), opts);

    ++row.runs;
    if (result.all_correct_done) ++row.done;
    if (!result.verdict.ok) ++row.violations;
    if (!result.records.empty()) {
      row.steps_per_op.add(static_cast<double>(result.steps) /
                           static_cast<double>(result.records.size()));
      row.msgs_per_op.add(static_cast<double>(result.messages_sent) /
                          static_cast<double>(result.records.size()));
    }
  }
  return row;
}

void experiments() {
  const int seeds = 25;
  TextTable t({"oracle", "n", "faults", "done", "atomicity_viol",
               "steps/op", "msgs/op"});
  for (Pid n : {4, 5}) {
    for (Pid faults : {static_cast<Pid>(1), static_cast<Pid>(n / 2)}) {
      for (const RegOracle which :
           {RegOracle::kSigmaKernel, RegOracle::kSigmaMajority,
            RegOracle::kNuBenign, RegOracle::kNuAdversarial}) {
        if (which == RegOracle::kSigmaMajority && 2 * faults >= n) continue;
        const RegRow r = run_register_family(which, n, faults, seeds);
        t.add_row({oracle_name(which), std::to_string(n),
                   std::to_string(faults),
                   std::to_string(r.done) + "/" + std::to_string(r.runs),
                   std::to_string(r.violations),
                   TextTable::fmt(r.steps_per_op.mean(), 1),
                   TextTable::fmt(r.msgs_per_op.mean(), 1)});
      }
    }
  }
  print_section(
      "E12: ABD register over quorum detectors — Sigma^nu cannot implement "
      "registers",
      t);
}

void BM_RegisterOp(benchmark::State& state) {
  const Pid n = static_cast<Pid>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const FailurePattern fp(n);
    SigmaOptions so;
    so.seed = seed;
    SigmaOracle oracle(fp, so);
    SchedulerOptions opts;
    opts.seed = seed++;
    opts.max_steps = 60'000;
    benchmark::DoNotOptimize(run_register_workload(
        fp, oracle, alternating_workloads(n, 2), opts));
  }
}
BENCHMARK(BM_RegisterOp)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "E12")
