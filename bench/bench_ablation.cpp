// Experiment E11: ablation of A_nuc's two additions over the
// Mostéfaoui-Raynal skeleton (paper §6.3's design discussion).
//
//   - distrust OFF: adopting estimates from (and deciding with) processes
//     whose known quorums conflict — nonuniform agreement BREAKS under the
//     randomized adversarial family, like the naive algorithm's.
//   - quorum-awareness OFF (the "seen[Q] < k" decide guard): randomized
//     adversaries do NOT break it within the search budget. The reason is
//     instructive: quorum histories piggybacked on round-k proposals
//     usually already carry a quorum disjoint from the contaminator's, so
//     the distrust test fires anyway; the awareness handshake closes a
//     narrow timing window (a process deciding with a quorum it saw only
//     in the deciding round) that needs a coordinated scheduler+oracle
//     adversary, not random noise — which is why the paper must engineer
//     it in the proof of Lemma 6.25 rather than point to a generic run.
//
// Also reports the runtime cost each mechanism adds.
#include "bench_util.hpp"
#include "algo/naive_sigma_nu.hpp"
#include "core/anuc.hpp"

namespace nucon::bench {
namespace {

struct AblationRow {
  int violations = 0;
  int runs = 0;
  Accumulator rounds;
  Accumulator msgs;
  Accumulator bytes;
};

AblationRow run_variant(const AnucOptions& options, int seeds) {
  const ContaminationSetup setup;
  AblationRow row;
  for (int i = 0; i < seeds; ++i) {
    const std::uint64_t seed = 1 + static_cast<std::uint64_t>(i);
    FailurePattern fp(setup.n);
    fp.set_crash(setup.faulty, setup.crash_at);
    auto oracle =
        omega_sigma_nu_plus(fp, setup.omega_stabilize_at, seed);
    SchedulerOptions opts;
    opts.seed = seed;
    opts.max_steps = setup.max_steps;
    const ConsensusRunStats stats =
        run_consensus(fp, oracle.top(), make_anuc(setup.n, options),
                      mixed_proposals(setup.n), opts);
    ++row.runs;
    if (!stats.verdict.nonuniform_agreement) ++row.violations;
    if (stats.decide_round > 0) row.rounds.add(stats.decide_round);
    row.msgs.add(static_cast<double>(stats.messages_sent));
    row.bytes.add(static_cast<double>(stats.bytes_sent));
  }
  return row;
}

void experiments() {
  const int seeds = 300;
  TextTable t({"variant", "runs", "nonuniform_viol", "mean_round",
               "mean_msgs", "mean_KB"});
  const auto add = [&t, seeds](const char* name, AnucOptions options) {
    const AblationRow r = run_variant(options, seeds);
    t.add_row({name, std::to_string(r.runs), std::to_string(r.violations),
               TextTable::fmt(r.rounds.mean(), 1),
               TextTable::fmt(r.msgs.mean(), 0),
               TextTable::fmt(r.bytes.mean() / 1024.0, 1)});
  };

  add("full A_nuc", AnucOptions{});
  add("no distrust", AnucOptions{.use_distrust = false});
  add("no quorum-awareness", AnucOptions{.use_quorum_awareness = false});
  add("neither (MR skeleton + histories)",
      AnucOptions{.use_distrust = false, .use_quorum_awareness = false});
  print_section(
      "E11: A_nuc mechanism ablation under the §6.3 adversarial family", t);
  std::printf(
      "(A zero in the no-quorum-awareness row is expected: randomized\n"
      " adversaries do not hit its window — see the header comment and\n"
      " EXPERIMENTS.md; the distrust rows are the load-bearing result.)\n");
}

void BM_AnucVariant(benchmark::State& state) {
  AnucOptions options;
  options.use_distrust = state.range(0) != 0;
  options.use_quorum_awareness = state.range(1) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const FailurePattern fp(4);
    auto oracle = omega_sigma_nu_plus(fp, 0, seed);
    SchedulerOptions opts;
    opts.seed = seed++;
    opts.max_steps = 60'000;
    benchmark::DoNotOptimize(run_consensus(fp, oracle.top(),
                                           make_anuc(4, options),
                                           mixed_proposals(4), opts));
  }
}
BENCHMARK(BM_AnucVariant)
    ->Args({1, 1})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "E11")
