// Experiment E6 (paper §6.3 contamination scenario).
//
// Under the same adversarial (Omega, Sigma^nu[+]) oracle family, measures
// how often each algorithm violates agreement across seeds:
//   naive MR + Sigma^nu   — uniform violations common, nonuniform
//                           violations present (the paper's scenario);
//   A_nuc + Sigma^nu+     — uniform violations possible (faulty processes
//                           may decide alone; nonuniform consensus permits
//                           it), nonuniform violations ZERO;
//   MR + Sigma (control)  — no violations of either kind.
// The crossover the paper proves: the quorum-history machinery is exactly
// what separates row 2 from row 1.
#include "bench_util.hpp"
#include "algo/mr_consensus.hpp"
#include "algo/naive_sigma_nu.hpp"
#include "core/anuc.hpp"

namespace nucon::bench {
namespace {

struct ViolationRow {
  int runs = 0;
  int undecided = 0;
  int uniform_violations = 0;
  int nonuniform_violations = 0;
  double mean_decide_round = 0;
};

ViolationRow run_family(const ConsensusFactory& make, bool plus_oracle,
                        bool sigma_control, int seeds) {
  const ContaminationSetup setup;
  ViolationRow row;
  Accumulator rounds;
  for (int i = 0; i < seeds; ++i) {
    const std::uint64_t seed = 1 + static_cast<std::uint64_t>(i);
    FailurePattern fp(setup.n);
    fp.set_crash(setup.faulty, setup.crash_at);

    OracleStack oracle =
        sigma_control
            ? omega_sigma(fp, setup.omega_stabilize_at, seed)
            : (plus_oracle
                   ? omega_sigma_nu_plus(fp, setup.omega_stabilize_at, seed)
                   : omega_sigma_nu(fp, setup.omega_stabilize_at, seed));

    SchedulerOptions opts;
    opts.seed = seed;
    opts.max_steps = setup.max_steps;
    const ConsensusRunStats stats = run_consensus(
        fp, oracle.top(), make, mixed_proposals(setup.n), opts);

    ++row.runs;
    if (!stats.all_correct_decided) ++row.undecided;
    if (!stats.verdict.uniform_agreement) ++row.uniform_violations;
    if (!stats.verdict.nonuniform_agreement) ++row.nonuniform_violations;
    if (stats.decide_round > 0) rounds.add(stats.decide_round);
  }
  row.mean_decide_round = rounds.mean();
  return row;
}

void experiments() {
  const ContaminationSetup setup;
  const int seeds = 150;

  TextTable t({"algorithm", "oracle", "runs", "undecided", "uniform_viol",
               "nonuniform_viol", "mean_round"});
  const auto add = [&t](const char* name, const char* oracle,
                        const ViolationRow& r) {
    t.add_row({name, oracle, std::to_string(r.runs),
               std::to_string(r.undecided),
               std::to_string(r.uniform_violations),
               std::to_string(r.nonuniform_violations),
               TextTable::fmt(r.mean_decide_round, 1)});
  };

  add("naive MR-quorum", "(Omega,Sigma^nu) adversarial",
      run_family(make_mr_fd_quorum(setup.n), false, false, seeds));
  add("A_nuc", "(Omega,Sigma^nu+) adversarial",
      run_family(make_anuc(setup.n), true, false, seeds));
  add("MR-quorum", "(Omega,Sigma) control",
      run_family(make_mr_fd_quorum(setup.n), false, true, seeds));
  print_section("E6: contamination (§6.3) — violation rates over seeds", t);

  // The concrete witness the paper narrates: first seed with two correct
  // processes deciding differently under the naive algorithm.
  const ContaminationResult witness = find_contamination(setup, 400);
  TextTable w({"found", "seed", "runs_tried", "detail"});
  w.add_row({witness.found ? "yes" : "NO", std::to_string(witness.seed),
             std::to_string(witness.runs_tried),
             witness.found ? witness.stats.verdict.detail : ""});
  print_section("E6b: first correct-vs-correct disagreement witness", w);
}

void BM_NaiveContaminationSearch(benchmark::State& state) {
  for (auto _ : state) {
    const ContaminationSetup setup;
    benchmark::DoNotOptimize(find_contamination(setup, 25));
  }
  state.SetItemsProcessed(state.iterations() * 25);
}
BENCHMARK(BM_NaiveContaminationSearch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments)
