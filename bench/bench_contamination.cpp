// Experiment E6 (paper §6.3 contamination scenario).
//
// Under the same adversarial (Omega, Sigma^nu[+]) oracle family, measures
// how often each algorithm violates agreement across seeds:
//   naive MR + Sigma^nu   — uniform violations common, nonuniform
//                           violations present (the paper's scenario);
//   A_nuc + Sigma^nu+     — uniform violations possible (faulty processes
//                           may decide alone; nonuniform consensus permits
//                           it), nonuniform violations ZERO;
//   MR + Sigma (control)  — no violations of either kind.
// The crossover the paper proves: the quorum-history machinery is exactly
// what separates row 2 from row 1.
#include <thread>

#include "bench_util.hpp"
#include "algo/naive_sigma_nu.hpp"
#include "exp/sweep.hpp"

namespace nucon::bench {
namespace {

/// The §6.3 family as a sweep grid: one crash pinned mid-run, oracles
/// stabilizing after it, seeds 1..k — executed on the parallel engine.
exp::SweepGrid family_grid(exp::Algo algo, int seeds) {
  const ContaminationSetup setup;
  exp::SweepGrid grid;
  grid.algos = {algo};
  grid.ns = {setup.n};
  grid.fault_counts = {1};
  grid.stabilizes = {setup.omega_stabilize_at};
  grid.crash_at = setup.crash_at;
  grid.seed_begin = 1;
  grid.seed_count = seeds;
  grid.max_steps = setup.max_steps;
  return grid;
}

void experiments() {
  const int seeds = 150;
  const unsigned threads = std::thread::hardware_concurrency();

  TextTable t({"algorithm", "oracle", "runs", "undecided", "uniform_viol",
               "nonuniform_viol", "mean_round"});
  const auto add = [&t](const char* name, const char* oracle,
                        const exp::SweepAggregate& agg) {
    t.add_row({name, oracle, std::to_string(agg.runs),
               std::to_string(agg.undecided),
               std::to_string(agg.uniform_violations),
               std::to_string(agg.nonuniform_violations),
               TextTable::fmt(agg.decide_rounds.mean(), 1)});
  };

  exp::SweepRunner runner(threads);
  runner.set_trace_dir("bench-traces/e6");
  const exp::SweepResult naive_sweep =
      runner.run(family_grid(exp::Algo::kNaive, seeds));
  add("naive MR-quorum", "(Omega,Sigma^nu) adversarial",
      naive_sweep.aggregate);
  record_sweep("E6d:naive", "§6.3 family, naive, 150 seeds", naive_sweep);
  const exp::SweepResult anuc_sweep =
      runner.run(family_grid(exp::Algo::kAnuc, seeds));
  add("A_nuc", "(Omega,Sigma^nu+) adversarial", anuc_sweep.aggregate);
  record_sweep("E6d:anuc", "§6.3 family, anuc, 150 seeds", anuc_sweep);
  const exp::SweepResult control_sweep =
      runner.run(family_grid(exp::Algo::kMrSigma, seeds));
  add("MR-quorum", "(Omega,Sigma) control", control_sweep.aggregate);
  record_sweep("E6d:mr-sigma", "§6.3 family, mr-sigma control, 150 seeds",
               control_sweep);
  print_section("E6: contamination (§6.3) — violation rates over seeds", t);

  // Any A_nuc nonuniform violation would be a library bug; the engine hands
  // back a serially re-runnable artifact for each.
  const exp::SweepAggregate& anuc_agg = anuc_sweep.aggregate;
  for (std::size_t i = 0; i < anuc_agg.failures.size(); ++i) {
    std::printf("UNEXPECTED A_nuc failure — replay with: nucon_explore "
                "--replay '%s'\n",
                anuc_agg.failures[i].to_string().c_str());
    if (i < anuc_agg.failure_trace_paths.size()) {
      std::printf("  trace attached: %s (inspect with trace_dump)\n",
                  anuc_agg.failure_trace_paths[i].c_str());
    }
  }

  // The concrete witness the paper narrates: first seed with two correct
  // processes deciding differently under the naive algorithm.
  const ContaminationResult witness = find_contamination(ContaminationSetup{}, 400);
  TextTable w({"found", "seed", "runs_tried", "detail"});
  w.add_row({witness.found ? "yes" : "NO", std::to_string(witness.seed),
             std::to_string(witness.runs_tried),
             witness.found ? witness.stats.verdict.detail : ""});
  print_section("E6b: first correct-vs-correct disagreement witness", w);
}

void BM_NaiveContaminationSearch(benchmark::State& state) {
  for (auto _ : state) {
    const ContaminationSetup setup;
    benchmark::DoNotOptimize(find_contamination(setup, 25));
  }
  state.SetItemsProcessed(state.iterations() * 25);
}
BENCHMARK(BM_NaiveContaminationSearch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "E6")
