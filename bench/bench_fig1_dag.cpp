// Experiment E1 (paper Fig. 1, A_DAG and the §4.1 lemmas).
//
// Measures how the DAG of failure-detector samples and its gossip cost
// grow with system size and execution length, plus an ablation over the
// gossip cadence (the paper's listing gossips every step; see
// effective_gossip_every for why a cadence is needed in a one-receive-
// per-step model). Expected shape: nodes grow linearly in steps, edges
// quadratically (each new node links to everything known), per-message
// gossip bytes linearly, and per-step cadence (ablation=1) drowns the
// buffers while >= 2n cadences keep the backlog flat.
#include "bench_util.hpp"
#include "dag/dag_builder.hpp"
#include "sim/scheduler.hpp"

namespace nucon::bench {
namespace {

struct DagStats {
  std::size_t nodes = 0;
  std::uint64_t edges = 0;
  std::size_t messages = 0;
  std::size_t bytes = 0;
  std::size_t backlog = 0;
  double staleness = 0;  // own samples minus min known frontier entry
};

DagStats run_dag(Pid n, Pid faults, std::int64_t steps, int gossip_every,
                 std::uint64_t seed) {
  const FailurePattern fp = spread_crashes(n, faults, 60, seed);
  auto oracle = omega_sigma_nu(fp, 80, seed);

  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = steps;
  const SimResult sim =
      simulate(fp, oracle.top(), make_adag(n, gossip_every), opts);

  DagStats out;
  out.messages = sim.messages_sent;
  out.bytes = sim.bytes_sent;
  out.backlog = sim.undelivered_at_end;
  int counted = 0;
  for (Pid p : fp.correct()) {
    const auto& core =
        static_cast<const AdagAutomaton*>(
            sim.automata[static_cast<std::size_t>(p)].get())
            ->core();
    out.nodes = std::max(out.nodes, core.dag().total_nodes());
    out.edges = std::max(out.edges, core.dag().total_edges());
    std::uint32_t min_known = core.k();
    for (Pid q : fp.correct()) {
      min_known = std::min(min_known, core.dag().count_of(q));
    }
    out.staleness += static_cast<double>(core.k()) - min_known;
    ++counted;
  }
  if (counted > 0) out.staleness /= counted;
  return out;
}

void experiments() {
  {
    TextTable t({"n", "faults", "steps", "dag_nodes", "dag_edges",
                 "gossip_msgs", "gossip_MB", "bytes/msg", "backlog"});
    for (Pid n : {2, 3, 4, 6, 8}) {
      for (const std::int64_t steps : {400, 1200, 2400}) {
        const Pid faults = static_cast<Pid>(n / 3);
        const DagStats s = run_dag(n, faults, steps, /*gossip_every=*/0, 1);
        t.add_row({std::to_string(n), std::to_string(faults),
                   std::to_string(steps), std::to_string(s.nodes),
                   std::to_string(s.edges), std::to_string(s.messages),
                   TextTable::fmt(static_cast<double>(s.bytes) / 1e6, 2),
                   TextTable::fmt(s.messages
                                      ? static_cast<double>(s.bytes) /
                                            static_cast<double>(s.messages)
                                      : 0.0),
                   std::to_string(s.backlog)});
      }
    }
    print_section("E1a: A_DAG growth and gossip cost (Fig. 1)", t);
  }

  {
    TextTable t({"n", "gossip_every", "backlog", "staleness", "gossip_MB"});
    const Pid n = 4;
    for (int cadence : {1, 2, 4, 8, 16, 32}) {
      const DagStats s = run_dag(n, 1, 2000, cadence, 2);
      t.add_row({std::to_string(n), std::to_string(cadence),
                 std::to_string(s.backlog), TextTable::fmt(s.staleness, 1),
                 TextTable::fmt(static_cast<double>(s.bytes) / 1e6, 2)});
    }
    print_section(
        "E1b: gossip cadence ablation (per-step gossip floods the buffer)", t);
  }
}

void BM_DagTakeSample(benchmark::State& state) {
  const Pid n = static_cast<Pid>(state.range(0));
  SampleDag dag(n);
  Pid p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dag.take_sample(p, FdValue::of_quorum(ProcessSet::single(p))));
    p = static_cast<Pid>((p + 1) % n);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DagTakeSample)->Arg(4)->Arg(16)->Arg(64);

void BM_DagSerialize(benchmark::State& state) {
  SampleDag dag(8);
  for (int i = 0; i < state.range(0); ++i) {
    dag.take_sample(static_cast<Pid>(i % 8),
                    FdValue::of_quorum(ProcessSet::full(8)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag.serialize());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dag.serialize().size()));
}
BENCHMARK(BM_DagSerialize)->Arg(64)->Arg(512)->Arg(4096);

void BM_DagDeserializeMerge(benchmark::State& state) {
  SampleDag dag(8);
  for (int i = 0; i < state.range(0); ++i) {
    dag.take_sample(static_cast<Pid>(i % 8),
                    FdValue::of_quorum(ProcessSet::full(8)));
  }
  const Bytes wire = dag.serialize();
  for (auto _ : state) {
    auto decoded = SampleDag::deserialize(wire);
    benchmark::DoNotOptimize(decoded);
    SampleDag fresh(8);
    fresh.merge_from(*decoded);
    benchmark::DoNotOptimize(fresh.total_nodes());
  }
}
BENCHMARK(BM_DagDeserializeMerge)->Arg(64)->Arg(512);

void BM_FairChain(benchmark::State& state) {
  const FailurePattern fp(4);
  auto oracle = omega_sigma_nu(fp, 40, 3);
  SchedulerOptions opts;
  opts.seed = 3;
  opts.max_steps = state.range(0);
  const SimResult sim = simulate(fp, oracle.top(), make_adag(4), opts);
  const SampleDag& dag =
      static_cast<const AdagAutomaton*>(sim.automata[0].get())->core().dag();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag.fair_chain(NodeRef{0, 1}));
  }
}
BENCHMARK(BM_FairChain)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "E1")
