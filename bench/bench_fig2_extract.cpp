// Experiment E2/E3 (paper Fig. 2, Theorems 5.4 and 5.8).
//
// Runs the transformation T_{D -> Sigma^nu} with two (D, A) pairs:
//   E2: D = (Omega, Sigma^nu+) adversarial, A = A_nuc   -> output in Sigma^nu
//   E3: D = (Omega, Sigma),               A = MR-Sigma  -> output in Sigma
// and reports the emulation's liveness (steps to first emitted quorum,
// number of emissions) and the emitted quorum sizes, plus the mechanical
// class-membership verdicts. Expected shape: every correct process keeps
// emitting; verdicts always pass; emission latency grows with n (each
// emission needs a deciding simulated schedule, i.e. several simulated
// consensus rounds worth of fresh samples).
#include "bench_util.hpp"
#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"
#include "core/extract_sigma_nu.hpp"
#include "fd/history.hpp"

namespace nucon::bench {
namespace {

struct ExtractRow {
  double first_emit_step = 0;  // mean over correct processes (steps of p)
  double emissions = 0;        // mean over correct processes
  double quorum_size = 0;      // mean emitted quorum size
  std::int64_t simulations = 0;
  bool check_ok = false;
};

ExtractRow run_extract(Pid n, Pid faults, bool uniform_pair,
                       std::uint64_t seed, std::int64_t steps) {
  const FailurePattern fp = spread_crashes(n, faults, 40, seed);
  auto oracle = uniform_pair ? omega_sigma(fp, 60, seed)
                             : omega_sigma_nu_plus(fp, 60, seed);

  ExtractOptions eo;
  eo.algorithm = uniform_pair ? make_mr_fd_quorum(n) : make_anuc(n);
  eo.n = n;
  eo.check_every = 4;
  eo.max_chain = 800;

  RecordedHistory emulated;
  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = steps;
  opts = with_emulation_recording(std::move(opts), emulated);
  const SimResult sim = simulate(fp, oracle.top(), make_extract_sigma_nu(eo), opts);

  ExtractRow row;
  Accumulator first_emit;
  Accumulator emissions;
  Accumulator qsize;
  for (Pid p : fp.correct()) {
    const auto* x = static_cast<const ExtractSigmaNu*>(
        sim.automata[static_cast<std::size_t>(p)].get());
    emissions.add(static_cast<double>(x->outputs_produced()));
    row.simulations += x->simulations_run();
    // First own step at which the output departs from the initial Pi (an
    // emission may legitimately re-emit Pi, so this is a lower bound), and
    // the size of the final emitted quorum.
    std::int64_t own_step = 0;
    std::int64_t first = 0;
    const auto samples = emulated.of(p);
    for (const Sample& s : samples) {
      ++own_step;
      if (first == 0 && s.value.quorum() != ProcessSet::full(n)) {
        first = own_step;
      }
    }
    if (!samples.empty()) qsize.add(samples.back().value.quorum().size());
    if (first > 0) first_emit.add(static_cast<double>(first));
  }
  row.first_emit_step = first_emit.mean();
  row.emissions = emissions.mean();
  row.quorum_size = qsize.mean();
  row.check_ok = uniform_pair ? check_sigma(emulated, fp).ok
                              : check_sigma_nu(emulated, fp).ok;
  return row;
}

void experiments() {
  {
    TextTable t({"n", "faults", "first_emit(own steps)", "emits/proc",
                 "final_quorum", "sims", "sigma_nu_ok"});
    for (Pid n : {2, 3, 4}) {
      for (Pid faults = 0; faults < n; ++faults) {
        const ExtractRow r = run_extract(n, faults, false, 3, 2200);
        t.add_row({std::to_string(n), std::to_string(faults),
                   TextTable::fmt(r.first_emit_step, 1),
                   TextTable::fmt(r.emissions, 1),
                   TextTable::fmt(r.quorum_size, 2),
                   std::to_string(r.simulations), r.check_ok ? "yes" : "NO"});
      }
    }
    print_section(
        "E2: extract Sigma^nu from D=(Omega,Sigma^nu+), A=A_nuc (Thm 5.4)", t);
  }

  {
    TextTable t({"n", "faults", "first_emit(own steps)", "emits/proc",
                 "final_quorum", "sims", "sigma_ok"});
    for (Pid n : {2, 3, 4}) {
      for (Pid faults = 0; faults < n; ++faults) {
        const ExtractRow r = run_extract(n, faults, true, 5, 2200);
        t.add_row({std::to_string(n), std::to_string(faults),
                   TextTable::fmt(r.first_emit_step, 1),
                   TextTable::fmt(r.emissions, 1),
                   TextTable::fmt(r.quorum_size, 2),
                   std::to_string(r.simulations), r.check_ok ? "yes" : "NO"});
      }
    }
    print_section(
        "E3: same transformation with uniform A (MR-Sigma) emits Sigma "
        "(Thm 5.8)",
        t);
  }
}

void BM_SimulateChain(benchmark::State& state) {
  // Cost of one Sch(G|u, I) simulation, the inner loop of Fig. 2.
  const Pid n = static_cast<Pid>(state.range(0));
  const FailurePattern fp(n);
  auto oracle = omega_sigma_nu_plus(fp, 0, 7);
  SchedulerOptions opts;
  opts.seed = 7;
  opts.max_steps = 1600;
  const SimResult sim = simulate(fp, oracle.top(), make_adag(n), opts);
  const SampleDag& dag =
      static_cast<const AdagAutomaton*>(sim.automata[0].get())->core().dag();
  const auto chain = dag.fair_chain(NodeRef{0, 1});
  const std::vector<Value> zeros(static_cast<std::size_t>(n), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_chain(dag, chain, make_anuc(n), zeros, 0));
  }
  state.counters["chain_len"] = static_cast<double>(chain.size());
}
BENCHMARK(BM_SimulateChain)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "E2")
