// Experiment E15: replicated state machine over the library's consensus
// engines — the downstream-systems view of the uniform/nonuniform
// distinction.
//
// A uniform engine (MR over Sigma) keeps EVERY replica's log
// prefix-consistent: clients can read any replica. The paper's nonuniform
// engine (A_nuc over adversarial Sigma^nu+) keeps only correct replicas
// consistent — a faulty-but-alive replica may serve a divergent log, which
// this experiment tallies. Also reports ordering throughput
// (steps per committed command).
#include "bench_util.hpp"
#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"
#include "smr/replicated_log.hpp"

namespace nucon::bench {
namespace {

std::vector<std::vector<Value>> streams(Pid n, int per_process) {
  std::vector<std::vector<Value>> out(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) {
    for (int i = 1; i <= per_process; ++i) {
      out[static_cast<std::size_t>(p)].push_back(make_command(p, i));
    }
  }
  return out;
}

struct SmrRow {
  int runs = 0;
  int completed = 0;
  int correct_divergence = 0;  // correct replicas inconsistent (must be 0)
  int faulty_divergence = 0;   // a faulty replica diverged (nonuniform ok)
  Accumulator steps_per_cmd;
  Accumulator msgs_per_cmd;
};

enum class SmrMode { kUniform, kNonuniform, kNonuniformNaiveCatchup };

SmrRow run_smr(SmrMode mode, Pid n, Pid faults, int seeds) {
  const bool uniform_engine = mode == SmrMode::kUniform;
  SmrRow row;
  for (int i = 0; i < seeds; ++i) {
    const std::uint64_t seed = 1 + static_cast<std::uint64_t>(i);
    FailurePattern fp(n);
    {
      // Late crashes: faulty replicas participate long enough to diverge.
      Rng rng(seed * 53 + 11);
      for (Pid p : rng.pick_subset(ProcessSet::full(n), faults)) {
        fp.set_crash(p, 600 + rng.range(0, 200));
      }
    }

    OracleStack oracle = uniform_engine ? omega_sigma(fp, 100, seed)
                                        : omega_sigma_nu_plus(fp, 100, seed);
    const ConsensusFactory engine =
        uniform_engine ? make_mr_fd_quorum(n) : make_anuc(n);

    const auto commands = streams(n, 3);
    std::vector<Value> required;
    for (Pid p : fp.correct()) {
      const auto& s = commands[static_cast<std::size_t>(p)];
      required.insert(required.end(), s.begin(), s.end());
    }

    SchedulerOptions opts;
    opts.seed = seed;
    opts.max_steps = 300'000;
    opts.stop_when = [&fp, required](
                         const std::vector<std::unique_ptr<Automaton>>& all) {
      for (Pid p : fp.correct()) {
        const auto* replica = static_cast<const ReplicatedLog*>(
            all[static_cast<std::size_t>(p)].get());
        for (Value c : required) {
          if (!replica->has_committed(c)) return false;
        }
      }
      return true;
    };

    const bool catchup = mode != SmrMode::kNonuniform;
    const SimResult sim = simulate(
        fp, oracle.top(),
        make_replicated_log(n, commands, engine, catchup), opts);

    ++row.runs;
    if (!sim.stopped_by_predicate) continue;
    ++row.completed;
    const LogVerdict verdict = check_logs(fp, sim.automata, commands);
    if (!verdict.correct_prefix_consistent) ++row.correct_divergence;
    if (verdict.correct_prefix_consistent && !verdict.all_prefix_consistent) {
      ++row.faulty_divergence;
    }
    const double committed = static_cast<double>(required.size());
    row.steps_per_cmd.add(static_cast<double>(sim.run.steps.size()) / committed);
    row.msgs_per_cmd.add(static_cast<double>(sim.messages_sent) / committed);
  }
  return row;
}

void experiments() {
  const int seeds = 12;
  TextTable t({"engine", "n", "faults", "completed", "correct_diverge",
               "faulty_diverge", "steps/cmd", "msgs/cmd"});
  for (Pid n : {3, 5}) {
    for (Pid faults : {static_cast<Pid>(0), static_cast<Pid>(1),
                       static_cast<Pid>(n - 1)}) {
      for (const SmrMode mode :
           {SmrMode::kUniform, SmrMode::kNonuniform,
            SmrMode::kNonuniformNaiveCatchup}) {
        // (Sigma's kernel strategy exists in any environment, so the
        // uniform engine also covers the correct-minority rows.)
        const SmrRow r = run_smr(mode, n, faults, seeds);
        const char* name = mode == SmrMode::kUniform
                               ? "MR+Sigma, catch-up"
                               : (mode == SmrMode::kNonuniform
                                      ? "A_nuc, no catch-up"
                                      : "A_nuc, NAIVE catch-up");
        t.add_row({name, std::to_string(n), std::to_string(faults),
                   std::to_string(r.completed) + "/" + std::to_string(r.runs),
                   std::to_string(r.correct_divergence),
                   std::to_string(r.faulty_divergence),
                   TextTable::fmt(r.steps_per_cmd.mean(), 1),
                   TextTable::fmt(r.msgs_per_cmd.mean(), 1)});
      }
    }
  }
  print_section(
      "E15: replicated log — uniform engines protect clients of faulty "
      "replicas, nonuniform ones do not",
      t);
}

void BM_SmrCommandThroughput(benchmark::State& state) {
  const Pid n = static_cast<Pid>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const FailurePattern fp(n);
    auto oracle = omega_sigma(fp, 0, seed);
    const auto commands = streams(n, 2);
    SchedulerOptions opts;
    opts.seed = seed++;
    opts.max_steps = 150'000;
    benchmark::DoNotOptimize(simulate(
        fp, oracle.top(),
        make_replicated_log(n, commands, make_mr_fd_quorum(n)), opts));
  }
}
BENCHMARK(BM_SmrCommandThroughput)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nucon::bench

NUCON_BENCH_MAIN(nucon::bench::experiments, "E15")
