// A guided tour of the weakest-failure-detector proof, executed.
//
// Necessity (Fig. 2 / Theorem 5.4): take ANY detector D that solves
// nonuniform consensus via some algorithm A — here D = (Omega, Sigma^nu+)
// and A = A_nuc — and run the transformation T_{D -> Sigma^nu}: processes
// gossip DAGs of D-samples, simulate schedules of A out of the DAG against
// the all-0 and all-1 initial configurations, and output the participants
// of deciding schedules. The emulated history is checked to be in
// Sigma^nu.
//
// Sufficiency (Fig. 3 + Figs. 4-5 / Theorems 6.7, 6.27): boost Sigma^nu to
// Sigma^nu+ and solve consensus with it (see quickstart.cpp for the
// stacked construction).
//
// Bonus (Theorem 5.8): the SAME transformation, applied to a detector/
// algorithm pair solving UNIFORM consensus — (Omega, Sigma) with the MR
// quorum algorithm — emits a history in full Sigma.
//
// Build & run:  ./build/examples/weakest_fd_tour
#include <cstdio>

#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"
#include "core/extract_sigma_nu.hpp"
#include "core/sigma_nu_to_plus.hpp"
#include "fd/composed.hpp"
#include "fd/history.hpp"
#include "fd/omega.hpp"
#include "fd/sigma.hpp"
#include "fd/sigma_nu.hpp"

using namespace nucon;

namespace {

void show_emulated(const char* what, const RecordedHistory& h,
                   const FailurePattern& fp, const CheckResult& verdict) {
  std::printf("%s\n", what);
  for (Pid p = 0; p < fp.n(); ++p) {
    const auto samples = h.of(p);
    if (samples.empty()) continue;
    std::printf("  process %d (%s): %zu outputs, last quorum %s\n", p,
                fp.is_correct(p) ? "correct" : "faulty ", samples.size(),
                samples.back().value.quorum().to_string().c_str());
  }
  std::printf("  class membership: %s%s%s\n\n", verdict.ok ? "PASS" : "FAIL",
              verdict.ok ? "" : " — ", verdict.detail.c_str());
}

}  // namespace

int main() {
  const Pid n = 3;
  FailurePattern fp(n);
  fp.set_crash(2, 60);  // one faulty process

  // ---- Necessity: extract Sigma^nu from (Omega, Sigma^nu+) + A_nuc ------
  {
    OmegaOptions oo;
    oo.stabilize_at = 80;
    OmegaOracle omega(fp, oo);
    SigmaNuPlusOptions so;
    so.stabilize_at = 80;
    SigmaNuPlusOracle sigma(fp, so);
    ComposedOracle d(omega, sigma);

    ExtractOptions eo;
    eo.algorithm = make_anuc(n);  // the black-box A that uses D
    eo.n = n;
    eo.check_every = 4;
    eo.max_chain = 800;

    RecordedHistory emulated;
    SchedulerOptions opts;
    opts.seed = 3;
    opts.max_steps = 2500;
    opts = with_emulation_recording(std::move(opts), emulated);
    (void)simulate(fp, d, make_extract_sigma_nu(eo), opts);

    show_emulated(
        "[necessity] T_{D->Sigma^nu} with D=(Omega,Sigma^nu+), A=A_nuc:",
        emulated, fp, check_sigma_nu(emulated, fp));
  }

  // ---- Theorem 5.8: uniform pair emits full Sigma ------------------------
  {
    OmegaOptions oo;
    oo.stabilize_at = 80;
    OmegaOracle omega(fp, oo);
    SigmaOptions so;
    so.stabilize_at = 80;
    SigmaOracle sigma(fp, so);
    ComposedOracle d(omega, sigma);

    ExtractOptions eo;
    eo.algorithm = make_mr_fd_quorum(n);  // solves UNIFORM consensus
    eo.n = n;
    eo.check_every = 4;
    eo.max_chain = 800;

    RecordedHistory emulated;
    SchedulerOptions opts;
    opts.seed = 5;
    opts.max_steps = 2500;
    opts = with_emulation_recording(std::move(opts), emulated);
    (void)simulate(fp, d, make_extract_sigma_nu(eo), opts);

    show_emulated(
        "[Thm 5.8] same transformation, D=(Omega,Sigma), A=MR-Sigma "
        "(uniform):",
        emulated, fp, check_sigma(emulated, fp));
  }

  // ---- Sufficiency: boost Sigma^nu to Sigma^nu+ (Fig. 3) ----------------
  {
    SigmaNuOptions so;
    so.stabilize_at = 80;
    so.faulty = FaultyQuorumBehavior::kAdversarialDisjoint;
    SigmaNuOracle sigma_nu(fp, so);

    RecordedHistory emulated;
    SchedulerOptions opts;
    opts.seed = 7;
    opts.max_steps = 3000;
    opts = with_emulation_recording(std::move(opts), emulated);
    (void)simulate(fp, sigma_nu, make_sigma_nu_to_plus(n), opts);

    show_emulated(
        "[sufficiency] T_{Sigma^nu->Sigma^nu+} over an adversarial "
        "Sigma^nu:",
        emulated, fp, check_sigma_nu_plus(emulated, fp));
  }

  std::printf(
      "Together: any D solving nonuniform consensus yields Sigma^nu (and\n"
      "Omega, by Chandra-Hadzilacos-Toueg), and (Omega, Sigma^nu) suffices\n"
      "— so (Omega, Sigma^nu) is THE weakest failure detector for\n"
      "nonuniform consensus, in every environment (Theorem 6.29).\n");
  return 0;
}
