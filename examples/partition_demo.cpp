// Theorem 7.1, both directions, executed.
//
// IF (t < n/2): Sigma needs no failure detector at all — each process
// outputs the first n - t processes it hears from each round; any two
// (n-t)-sets intersect, so (Omega, Sigma^nu) and (Omega, Sigma) are
// equivalent under a correct majority.
//
// ONLY-IF (t >= n/2): split the system into halves A and B and feed any
// candidate transformation the legal Sigma^nu history where each half
// trusts itself. Run "B crashed" until completeness forces an A-only
// quorum at some a in A by time tau; mirror for B; merge the two runs
// (Lemma 2.2) under "A crashes at tau+1" — a genuine run in which the
// emulated quorums are disjoint, violating Sigma's intersection. Every
// candidate dies this way (or never achieves completeness).
//
// Build & run:  ./build/examples/partition_demo
#include <cstdio>

#include "core/partition_argument.hpp"
#include "core/sigma_from_majority.hpp"
#include "fd/history.hpp"
#include "fd/scripted.hpp"

using namespace nucon;

int main() {
  // ---- IF direction ------------------------------------------------------
  {
    const Pid n = 5;
    const Pid t = 2;  // t < n/2
    FailurePattern fp(n);
    fp.set_crash(3, 40);
    fp.set_crash(4, 70);

    ScriptedOracle no_fd([](Pid, Time) { return FdValue{}; });
    RecordedHistory emulated;
    SchedulerOptions opts;
    opts.seed = 11;
    opts.max_steps = 5000;
    opts = with_emulation_recording(std::move(opts), emulated);
    (void)simulate(fp, no_fd, make_sigma_from_majority(n, t), opts);

    const auto verdict = check_sigma(emulated, fp);
    std::printf(
        "[IF, t=%d < n/2=%d/2] Sigma implemented from scratch, %zu samples "
        "recorded\n  Sigma membership: %s%s\n\n",
        t, n, emulated.samples().size(), verdict.ok ? "PASS" : "FAIL",
        verdict.detail.c_str());
  }

  // ---- ONLY-IF direction -------------------------------------------------
  const Pid n = 6;
  struct Candidate {
    const char* name;
    AutomatonFactory factory;
  };
  const Candidate candidates[] = {
      {"identity (output the Sigma^nu reading)", make_identity_candidate()},
      {"gossip-union (output everything heard)",
       make_gossip_union_candidate(n)},
      {"wait-for-(n-t) round tags", make_wait_for_n_minus_t_candidate(n)},
  };

  std::printf("[ONLY-IF, t >= n/2] defeating candidate transformations "
              "(n=%d):\n\n", n);
  for (const Candidate& c : candidates) {
    const PartitionDemoResult r =
        run_partition_argument(n, c.factory, 6000, 13);
    std::printf("  candidate: %s\n", c.name);
    std::printf("    partition: A=%s  B=%s\n", r.side_a.to_string().c_str(),
                r.side_b.to_string().c_str());
    switch (r.outcome) {
      case PartitionOutcome::kIntersectionViolated:
        std::printf(
            "    DEFEATED: by tau=%lld process %d output %s; in the merged\n"
            "    run R' (Lemma 2.2 replay %s) process %d outputs %s —\n"
            "    disjoint quorums, so the emulated detector is not Sigma.\n",
            (long long)r.tau, r.witness_a, r.quorum_a.to_string().c_str(),
            r.merged_run_valid ? "verified" : "NOT verified", r.witness_b,
            r.quorum_b.to_string().c_str());
        break;
      case PartitionOutcome::kCompletenessFailed:
        std::printf("    DEFEATED: %s\n", r.detail.c_str());
        break;
      case PartitionOutcome::kSurvived:
        std::printf("    survived the step budget (%s) — increase it;\n"
                    "    Theorem 7.1 says no candidate survives forever.\n",
                    r.detail.c_str());
        break;
    }
    std::printf("\n");
  }
  return 0;
}
