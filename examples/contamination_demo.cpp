// The paper's §6.3 contamination scenario, replayed live.
//
// Substituting Sigma^nu quorums into the Mostéfaoui-Raynal algorithm looks
// plausible — only correct processes must agree, and only correct
// processes' quorums intersect — but it is WRONG: a faulty process whose
// (perfectly legal) quorum misses everyone else's can retain a stale
// estimate and, while Omega briefly points at it, re-infect correct
// processes that have not decided yet. This demo hunts for such a run,
// prints the disagreement, and shows that A_nuc survives the identical
// adversary thanks to its quorum-history / distrust machinery.
//
// Build & run:  ./build/examples/contamination_demo
#include <cstdio>

#include "algo/naive_sigma_nu.hpp"
#include "core/anuc.hpp"

using namespace nucon;

int main() {
  ContaminationSetup setup;  // n=4, process 3 faulty (crashes at t=600)

  std::printf(
      "Searching adversarial runs of the NAIVE algorithm (MR with Sigma^nu\n"
      "quorums) for a violation of nonuniform agreement...\n\n");

  const ContaminationResult result = find_contamination(setup, 500);
  if (!result.found) {
    std::printf("no violation found in %d runs — unexpected; the companion\n"
                "test suite asserts one exists in this seed range.\n",
                result.runs_tried);
    return 1;
  }

  std::printf("VIOLATION after %d runs (seed %llu):\n  %s\n",
              result.runs_tried, (unsigned long long)result.seed,
              result.stats.verdict.detail.c_str());
  for (Pid p = 0; p < setup.n; ++p) {
    const auto& d = result.stats.decisions[static_cast<std::size_t>(p)];
    std::printf("  process %d (%s) decided %s\n", p,
                p == setup.faulty ? "faulty " : "correct",
                d ? std::to_string(*d).c_str() : "nothing");
  }
  std::printf(
      "\nAlong the way, %d of %d runs broke UNIFORM agreement (the faulty\n"
      "process deciding alone on its disjoint quorum — legal for nonuniform\n"
      "consensus, fatal for uniform).\n\n",
      result.uniform_violations + 1, result.runs_tried);

  std::printf(
      "Re-running the SAME adversarial family against A_nuc (with the\n"
      "equally adversarial Sigma^nu+ oracle), %d seeds...\n",
      200);
  const int anuc_violations = count_nonuniform_violations(
      setup, make_anuc(setup.n), 200, /*use_sigma_nu_plus=*/true);
  std::printf("  nonuniform-agreement violations by A_nuc: %d\n\n",
              anuc_violations);

  std::printf(
      "The difference is exactly the machinery of Figs. 4-5: quorum\n"
      "histories piggybacked on LEAD/PROP messages, the distrust test\n"
      "before adopting a leader's estimate, and the SAW/ACK quorum-\n"
      "awareness handshake before deciding.\n");
  return anuc_violations == 0 ? 0 : 1;
}
