// Quickstart: solve nonuniform consensus among five asynchronous
// processes, two of which crash, using the paper's weakest failure
// detector (Omega, Sigma^nu).
//
// Two ways are shown:
//   1. A_nuc fed (Omega, Sigma^nu+) directly (Theorem 6.27);
//   2. the full Theorem 6.28 stack: raw (Omega, Sigma^nu) boosted to
//      Sigma^nu+ on the fly by the Fig. 3 transformation, inside the same
//      automaton as A_nuc.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "algo/harness.hpp"
#include "core/anuc.hpp"
#include "core/stacked_nuc.hpp"
#include "fd/composed.hpp"
#include "fd/omega.hpp"
#include "fd/sigma_nu.hpp"

using namespace nucon;

namespace {

void report(const char* title, const FailurePattern& fp,
            const ConsensusRunStats& stats) {
  std::printf("%s\n", title);
  std::printf("  proposals 0/1 alternating, crashes: %s\n",
              fp.to_string().c_str());
  for (Pid p = 0; p < fp.n(); ++p) {
    const auto& d = stats.decisions[static_cast<std::size_t>(p)];
    std::printf("  process %d (%s): %s\n", p,
                fp.is_correct(p) ? "correct" : "faulty ",
                d ? std::to_string(*d).c_str() : "no decision");
  }
  std::printf(
      "  decided=%s round=%d steps=%zu msgs=%zu bytes=%zu\n"
      "  termination=%d validity=%d nonuniform_agreement=%d "
      "(uniform_agreement=%d)%s%s\n\n",
      stats.all_correct_decided ? "yes" : "NO", stats.decide_round,
      stats.steps, stats.messages_sent, stats.bytes_sent,
      stats.verdict.termination, stats.verdict.validity,
      stats.verdict.nonuniform_agreement, stats.verdict.uniform_agreement,
      stats.verdict.detail.empty() ? "" : "\n  note: ",
      stats.verdict.detail.c_str());
}

}  // namespace

int main() {
  const Pid n = 5;

  // Two processes crash; the oracles stabilize at t=150. Faulty
  // Sigma^nu[+] modules are fully adversarial (disjoint quorums).
  FailurePattern fp(n);
  fp.set_crash(3, 100);
  fp.set_crash(4, 130);

  const std::vector<Value> proposals = {0, 1, 0, 1, 0};
  SchedulerOptions opts;
  opts.seed = 42;
  opts.max_steps = 200'000;

  {
    OmegaOptions oo;
    oo.stabilize_at = 150;
    OmegaOracle omega(fp, oo);
    SigmaNuPlusOptions so;
    so.stabilize_at = 150;
    SigmaNuPlusOracle sigma(fp, so);
    ComposedOracle oracle(omega, sigma);

    report("[1] A_nuc with (Omega, Sigma^nu+)  (Theorem 6.27)", fp,
           run_consensus(fp, oracle, make_anuc(n), proposals, opts));
  }

  {
    OmegaOptions oo;
    oo.stabilize_at = 150;
    OmegaOracle omega(fp, oo);
    SigmaNuOptions so;  // note: raw Sigma^nu, not Sigma^nu+
    so.stabilize_at = 150;
    SigmaNuOracle sigma(fp, so);
    ComposedOracle oracle(omega, sigma);

    report(
        "[2] T_{Sigma^nu->Sigma^nu+} stacked under A_nuc, fed raw "
        "(Omega, Sigma^nu)  (Theorem 6.28)",
        fp, run_consensus(fp, oracle, make_stacked_nuc(n), proposals, opts));
  }

  std::printf(
      "Nonuniform consensus permits a faulty process to decide a different\n"
      "value (a uniform-agreement note above is expected, not a bug); the\n"
      "correct processes always agree.\n");
  return 0;
}
