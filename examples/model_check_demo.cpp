// Exhaustively exploring the §6.3 counterexample at n = 2.
//
// Random schedules *sample* the naive algorithm's agreement violation;
// the bounded model checker *enumerates* every schedule of a fixed
// detector history and proves the dichotomy within the bound:
//
//   naive MR over the partition Sigma^nu history  -> violation FOUND,
//                                                    with a minimal-ish
//                                                    witness schedule;
//   MR over an intersecting Sigma history         -> NO violation in the
//                                                    entire bounded space;
//   A_nuc over the partition history              -> no violation found
//                                                    (broad search).
//
// Build & run:  ./build/examples/model_check_demo
#include <cstdio>

#include "algo/mr_consensus.hpp"
#include "check/model_checker.hpp"
#include "core/anuc.hpp"

using namespace nucon;

namespace {

FdValue partition_fd(Pid p, int) {
  FdValue v = FdValue::of_quorum(ProcessSet::single(p));
  v.set_leader(p);
  return v;
}

FdValue sigma_fd(Pid p, int) {
  FdValue v = FdValue::of_quorum(ProcessSet{0, 1});
  v.set_leader(p);
  return v;
}

void report(const char* name, const McResult& r) {
  std::printf("%s\n  states=%zu deduped=%zu por_pruned=%zu reexpanded=%zu "
              "peak_depth=%d collisions=%zu\n  %s\n",
              name, r.states_explored, r.states_deduped, r.por_skipped,
              r.states_reexpanded, r.peak_depth, r.hash_collisions,
              r.violation_found
                  ? ("VIOLATION: " + r.violation + " (witness " +
                     std::to_string(r.witness.size()) + " steps)")
                        .c_str()
                  : (r.exhausted ? "no violation — bounded space EXHAUSTED"
                                 : "no violation found (budget hit)"));
  if (r.violation_found) {
    std::printf("  witness schedule:");
    for (const McStep& s : r.witness) {
      std::printf(" p%d%s", s.p, s.delivery < 0 ? "(λ)" : "");
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  {
    McOptions o;
    o.n = 2;
    o.make = make_mr_fd_quorum(2);
    o.proposals = {0, 1};
    o.fd = partition_fd;
    o.max_depth = 16;
    o.max_states = 2'000'000;
    report("[naive MR-quorum over the partition Sigma^nu history]",
           model_check_consensus(o));
  }
  {
    McOptions o;
    o.n = 2;
    o.make = make_mr_fd_quorum(2);
    o.proposals = {0, 1};
    o.fd = sigma_fd;
    o.max_depth = 14;
    o.max_states = 8'000'000;
    report("[MR-quorum over an intersecting Sigma history]",
           model_check_consensus(o));
  }
  {
    McOptions o;
    o.n = 2;
    o.make = make_anuc(2);
    o.proposals = {0, 1};
    o.fd = partition_fd;
    o.max_depth = 14;
    o.max_states = 300'000;
    report("[A_nuc over the same partition history]",
           model_check_consensus(o));
  }

  std::printf(
      "The partition history is a LEGAL Sigma^nu history whenever the other\n"
      "process is faulty; the checker shows that quorum intersection — not\n"
      "luck — is what stands between the naive algorithm and disagreement,\n"
      "and that A_nuc's distrust machinery closes the gap.\n");
  return 0;
}
