
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/ben_or.cpp" "src/CMakeFiles/nucon.dir/algo/ben_or.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/algo/ben_or.cpp.o.d"
  "/root/repo/src/algo/ct_consensus.cpp" "src/CMakeFiles/nucon.dir/algo/ct_consensus.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/algo/ct_consensus.cpp.o.d"
  "/root/repo/src/algo/harness.cpp" "src/CMakeFiles/nucon.dir/algo/harness.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/algo/harness.cpp.o.d"
  "/root/repo/src/algo/mr_omega.cpp" "src/CMakeFiles/nucon.dir/algo/mr_omega.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/algo/mr_omega.cpp.o.d"
  "/root/repo/src/algo/naive_sigma_nu.cpp" "src/CMakeFiles/nucon.dir/algo/naive_sigma_nu.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/algo/naive_sigma_nu.cpp.o.d"
  "/root/repo/src/check/consensus_checker.cpp" "src/CMakeFiles/nucon.dir/check/consensus_checker.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/check/consensus_checker.cpp.o.d"
  "/root/repo/src/check/model_checker.cpp" "src/CMakeFiles/nucon.dir/check/model_checker.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/check/model_checker.cpp.o.d"
  "/root/repo/src/core/anuc.cpp" "src/CMakeFiles/nucon.dir/core/anuc.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/core/anuc.cpp.o.d"
  "/root/repo/src/core/extract_sigma_nu.cpp" "src/CMakeFiles/nucon.dir/core/extract_sigma_nu.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/core/extract_sigma_nu.cpp.o.d"
  "/root/repo/src/core/from_scratch.cpp" "src/CMakeFiles/nucon.dir/core/from_scratch.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/core/from_scratch.cpp.o.d"
  "/root/repo/src/core/omega_election.cpp" "src/CMakeFiles/nucon.dir/core/omega_election.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/core/omega_election.cpp.o.d"
  "/root/repo/src/core/partition_argument.cpp" "src/CMakeFiles/nucon.dir/core/partition_argument.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/core/partition_argument.cpp.o.d"
  "/root/repo/src/core/quorum_history.cpp" "src/CMakeFiles/nucon.dir/core/quorum_history.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/core/quorum_history.cpp.o.d"
  "/root/repo/src/core/sigma_from_majority.cpp" "src/CMakeFiles/nucon.dir/core/sigma_from_majority.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/core/sigma_from_majority.cpp.o.d"
  "/root/repo/src/core/sigma_nu_to_plus.cpp" "src/CMakeFiles/nucon.dir/core/sigma_nu_to_plus.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/core/sigma_nu_to_plus.cpp.o.d"
  "/root/repo/src/core/stacked_nuc.cpp" "src/CMakeFiles/nucon.dir/core/stacked_nuc.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/core/stacked_nuc.cpp.o.d"
  "/root/repo/src/dag/dag_builder.cpp" "src/CMakeFiles/nucon.dir/dag/dag_builder.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/dag/dag_builder.cpp.o.d"
  "/root/repo/src/dag/sample_dag.cpp" "src/CMakeFiles/nucon.dir/dag/sample_dag.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/dag/sample_dag.cpp.o.d"
  "/root/repo/src/dag/schedule_sim.cpp" "src/CMakeFiles/nucon.dir/dag/schedule_sim.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/dag/schedule_sim.cpp.o.d"
  "/root/repo/src/fd/classic.cpp" "src/CMakeFiles/nucon.dir/fd/classic.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/fd/classic.cpp.o.d"
  "/root/repo/src/fd/composed.cpp" "src/CMakeFiles/nucon.dir/fd/composed.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/fd/composed.cpp.o.d"
  "/root/repo/src/fd/history.cpp" "src/CMakeFiles/nucon.dir/fd/history.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/fd/history.cpp.o.d"
  "/root/repo/src/fd/omega.cpp" "src/CMakeFiles/nucon.dir/fd/omega.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/fd/omega.cpp.o.d"
  "/root/repo/src/fd/reductions.cpp" "src/CMakeFiles/nucon.dir/fd/reductions.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/fd/reductions.cpp.o.d"
  "/root/repo/src/fd/sigma.cpp" "src/CMakeFiles/nucon.dir/fd/sigma.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/fd/sigma.cpp.o.d"
  "/root/repo/src/fd/sigma_nu.cpp" "src/CMakeFiles/nucon.dir/fd/sigma_nu.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/fd/sigma_nu.cpp.o.d"
  "/root/repo/src/fd/sigma_nu_plus.cpp" "src/CMakeFiles/nucon.dir/fd/sigma_nu_plus.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/fd/sigma_nu_plus.cpp.o.d"
  "/root/repo/src/reg/abd.cpp" "src/CMakeFiles/nucon.dir/reg/abd.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/reg/abd.cpp.o.d"
  "/root/repo/src/reg/harness.cpp" "src/CMakeFiles/nucon.dir/reg/harness.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/reg/harness.cpp.o.d"
  "/root/repo/src/reg/linearizability.cpp" "src/CMakeFiles/nucon.dir/reg/linearizability.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/reg/linearizability.cpp.o.d"
  "/root/repo/src/sim/failure_pattern.cpp" "src/CMakeFiles/nucon.dir/sim/failure_pattern.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/sim/failure_pattern.cpp.o.d"
  "/root/repo/src/sim/merge.cpp" "src/CMakeFiles/nucon.dir/sim/merge.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/sim/merge.cpp.o.d"
  "/root/repo/src/sim/message.cpp" "src/CMakeFiles/nucon.dir/sim/message.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/sim/message.cpp.o.d"
  "/root/repo/src/sim/run.cpp" "src/CMakeFiles/nucon.dir/sim/run.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/sim/run.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/nucon.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/nucon.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/sim/trace.cpp.o.d"
  "/root/repo/src/smr/replicated_log.cpp" "src/CMakeFiles/nucon.dir/smr/replicated_log.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/smr/replicated_log.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "src/CMakeFiles/nucon.dir/util/bytes.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/util/bytes.cpp.o.d"
  "/root/repo/src/util/fd_value.cpp" "src/CMakeFiles/nucon.dir/util/fd_value.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/util/fd_value.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/nucon.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/nucon.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
