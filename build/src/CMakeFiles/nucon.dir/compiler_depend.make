# Empty compiler generated dependencies file for nucon.
# This may be replaced when dependencies are built.
