file(REMOVE_RECURSE
  "libnucon.a"
)
