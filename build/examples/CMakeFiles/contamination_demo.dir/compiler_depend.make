# Empty compiler generated dependencies file for contamination_demo.
# This may be replaced when dependencies are built.
