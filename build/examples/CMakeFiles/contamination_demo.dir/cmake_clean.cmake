file(REMOVE_RECURSE
  "CMakeFiles/contamination_demo.dir/contamination_demo.cpp.o"
  "CMakeFiles/contamination_demo.dir/contamination_demo.cpp.o.d"
  "contamination_demo"
  "contamination_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contamination_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
