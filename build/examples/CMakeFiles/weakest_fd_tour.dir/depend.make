# Empty dependencies file for weakest_fd_tour.
# This may be replaced when dependencies are built.
