file(REMOVE_RECURSE
  "CMakeFiles/weakest_fd_tour.dir/weakest_fd_tour.cpp.o"
  "CMakeFiles/weakest_fd_tour.dir/weakest_fd_tour.cpp.o.d"
  "weakest_fd_tour"
  "weakest_fd_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weakest_fd_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
