file(REMOVE_RECURSE
  "CMakeFiles/nucon_explore.dir/nucon_explore.cpp.o"
  "CMakeFiles/nucon_explore.dir/nucon_explore.cpp.o.d"
  "nucon_explore"
  "nucon_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nucon_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
