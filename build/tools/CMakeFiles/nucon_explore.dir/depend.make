# Empty dependencies file for nucon_explore.
# This may be replaced when dependencies are built.
