# Empty dependencies file for bench_fig3_boost.
# This may be replaced when dependencies are built.
