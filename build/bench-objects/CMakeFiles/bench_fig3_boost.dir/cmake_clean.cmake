file(REMOVE_RECURSE
  "../bench/bench_fig3_boost"
  "../bench/bench_fig3_boost.pdb"
  "CMakeFiles/bench_fig3_boost.dir/bench_fig3_boost.cpp.o"
  "CMakeFiles/bench_fig3_boost.dir/bench_fig3_boost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
