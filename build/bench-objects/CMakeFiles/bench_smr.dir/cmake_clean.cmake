file(REMOVE_RECURSE
  "../bench/bench_smr"
  "../bench/bench_smr.pdb"
  "CMakeFiles/bench_smr.dir/bench_smr.cpp.o"
  "CMakeFiles/bench_smr.dir/bench_smr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
