# Empty dependencies file for bench_smr.
# This may be replaced when dependencies are built.
