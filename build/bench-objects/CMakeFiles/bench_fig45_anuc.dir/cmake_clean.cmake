file(REMOVE_RECURSE
  "../bench/bench_fig45_anuc"
  "../bench/bench_fig45_anuc.pdb"
  "CMakeFiles/bench_fig45_anuc.dir/bench_fig45_anuc.cpp.o"
  "CMakeFiles/bench_fig45_anuc.dir/bench_fig45_anuc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig45_anuc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
