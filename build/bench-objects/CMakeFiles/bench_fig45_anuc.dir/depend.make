# Empty dependencies file for bench_fig45_anuc.
# This may be replaced when dependencies are built.
