file(REMOVE_RECURSE
  "../bench/bench_fig2_extract"
  "../bench/bench_fig2_extract.pdb"
  "CMakeFiles/bench_fig2_extract.dir/bench_fig2_extract.cpp.o"
  "CMakeFiles/bench_fig2_extract.dir/bench_fig2_extract.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
