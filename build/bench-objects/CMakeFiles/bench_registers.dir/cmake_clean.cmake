file(REMOVE_RECURSE
  "../bench/bench_registers"
  "../bench/bench_registers.pdb"
  "CMakeFiles/bench_registers.dir/bench_registers.cpp.o"
  "CMakeFiles/bench_registers.dir/bench_registers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
