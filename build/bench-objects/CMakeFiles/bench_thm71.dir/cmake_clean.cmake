file(REMOVE_RECURSE
  "../bench/bench_thm71"
  "../bench/bench_thm71.pdb"
  "CMakeFiles/bench_thm71.dir/bench_thm71.cpp.o"
  "CMakeFiles/bench_thm71.dir/bench_thm71.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm71.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
