# Empty compiler generated dependencies file for bench_thm71.
# This may be replaced when dependencies are built.
