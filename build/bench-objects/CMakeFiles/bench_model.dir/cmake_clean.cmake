file(REMOVE_RECURSE
  "../bench/bench_model"
  "../bench/bench_model.pdb"
  "CMakeFiles/bench_model.dir/bench_model.cpp.o"
  "CMakeFiles/bench_model.dir/bench_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
