file(REMOVE_RECURSE
  "../bench/bench_contamination"
  "../bench/bench_contamination.pdb"
  "CMakeFiles/bench_contamination.dir/bench_contamination.cpp.o"
  "CMakeFiles/bench_contamination.dir/bench_contamination.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contamination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
