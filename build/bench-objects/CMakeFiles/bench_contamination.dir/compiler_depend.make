# Empty compiler generated dependencies file for bench_contamination.
# This may be replaced when dependencies are built.
