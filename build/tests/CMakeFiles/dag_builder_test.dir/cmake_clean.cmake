file(REMOVE_RECURSE
  "CMakeFiles/dag_builder_test.dir/dag_builder_test.cpp.o"
  "CMakeFiles/dag_builder_test.dir/dag_builder_test.cpp.o.d"
  "dag_builder_test"
  "dag_builder_test.pdb"
  "dag_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
