# Empty dependencies file for omega_election_test.
# This may be replaced when dependencies are built.
