file(REMOVE_RECURSE
  "CMakeFiles/omega_election_test.dir/omega_election_test.cpp.o"
  "CMakeFiles/omega_election_test.dir/omega_election_test.cpp.o.d"
  "omega_election_test"
  "omega_election_test.pdb"
  "omega_election_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_election_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
