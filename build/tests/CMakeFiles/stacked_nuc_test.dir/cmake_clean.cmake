file(REMOVE_RECURSE
  "CMakeFiles/stacked_nuc_test.dir/stacked_nuc_test.cpp.o"
  "CMakeFiles/stacked_nuc_test.dir/stacked_nuc_test.cpp.o.d"
  "stacked_nuc_test"
  "stacked_nuc_test.pdb"
  "stacked_nuc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacked_nuc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
