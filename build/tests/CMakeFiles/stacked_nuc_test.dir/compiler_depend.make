# Empty compiler generated dependencies file for stacked_nuc_test.
# This may be replaced when dependencies are built.
