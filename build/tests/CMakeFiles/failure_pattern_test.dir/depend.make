# Empty dependencies file for failure_pattern_test.
# This may be replaced when dependencies are built.
