file(REMOVE_RECURSE
  "CMakeFiles/failure_pattern_test.dir/failure_pattern_test.cpp.o"
  "CMakeFiles/failure_pattern_test.dir/failure_pattern_test.cpp.o.d"
  "failure_pattern_test"
  "failure_pattern_test.pdb"
  "failure_pattern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
