# Empty dependencies file for mr_consensus_test.
# This may be replaced when dependencies are built.
