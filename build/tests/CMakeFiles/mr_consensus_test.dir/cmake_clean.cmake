file(REMOVE_RECURSE
  "CMakeFiles/mr_consensus_test.dir/mr_consensus_test.cpp.o"
  "CMakeFiles/mr_consensus_test.dir/mr_consensus_test.cpp.o.d"
  "mr_consensus_test"
  "mr_consensus_test.pdb"
  "mr_consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
