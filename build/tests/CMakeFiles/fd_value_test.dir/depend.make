# Empty dependencies file for fd_value_test.
# This may be replaced when dependencies are built.
