file(REMOVE_RECURSE
  "CMakeFiles/fd_value_test.dir/fd_value_test.cpp.o"
  "CMakeFiles/fd_value_test.dir/fd_value_test.cpp.o.d"
  "fd_value_test"
  "fd_value_test.pdb"
  "fd_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
