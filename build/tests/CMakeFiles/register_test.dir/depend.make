# Empty dependencies file for register_test.
# This may be replaced when dependencies are built.
