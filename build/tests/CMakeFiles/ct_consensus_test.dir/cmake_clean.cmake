file(REMOVE_RECURSE
  "CMakeFiles/ct_consensus_test.dir/ct_consensus_test.cpp.o"
  "CMakeFiles/ct_consensus_test.dir/ct_consensus_test.cpp.o.d"
  "ct_consensus_test"
  "ct_consensus_test.pdb"
  "ct_consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
