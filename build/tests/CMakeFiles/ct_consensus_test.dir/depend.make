# Empty dependencies file for ct_consensus_test.
# This may be replaced when dependencies are built.
