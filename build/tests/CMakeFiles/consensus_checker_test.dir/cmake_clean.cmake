file(REMOVE_RECURSE
  "CMakeFiles/consensus_checker_test.dir/consensus_checker_test.cpp.o"
  "CMakeFiles/consensus_checker_test.dir/consensus_checker_test.cpp.o.d"
  "consensus_checker_test"
  "consensus_checker_test.pdb"
  "consensus_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
