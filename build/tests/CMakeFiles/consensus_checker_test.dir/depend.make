# Empty dependencies file for consensus_checker_test.
# This may be replaced when dependencies are built.
