# Empty dependencies file for oracle_base_test.
# This may be replaced when dependencies are built.
