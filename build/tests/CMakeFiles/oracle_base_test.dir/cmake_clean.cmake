file(REMOVE_RECURSE
  "CMakeFiles/oracle_base_test.dir/oracle_base_test.cpp.o"
  "CMakeFiles/oracle_base_test.dir/oracle_base_test.cpp.o.d"
  "oracle_base_test"
  "oracle_base_test.pdb"
  "oracle_base_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_base_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
