file(REMOVE_RECURSE
  "CMakeFiles/history_checkers_test.dir/history_checkers_test.cpp.o"
  "CMakeFiles/history_checkers_test.dir/history_checkers_test.cpp.o.d"
  "history_checkers_test"
  "history_checkers_test.pdb"
  "history_checkers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_checkers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
