# Empty dependencies file for history_checkers_test.
# This may be replaced when dependencies are built.
