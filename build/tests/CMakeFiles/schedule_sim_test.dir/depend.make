# Empty dependencies file for schedule_sim_test.
# This may be replaced when dependencies are built.
