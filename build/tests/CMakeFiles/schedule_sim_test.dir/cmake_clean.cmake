file(REMOVE_RECURSE
  "CMakeFiles/schedule_sim_test.dir/schedule_sim_test.cpp.o"
  "CMakeFiles/schedule_sim_test.dir/schedule_sim_test.cpp.o.d"
  "schedule_sim_test"
  "schedule_sim_test.pdb"
  "schedule_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
