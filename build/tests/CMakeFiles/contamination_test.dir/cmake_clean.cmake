file(REMOVE_RECURSE
  "CMakeFiles/contamination_test.dir/contamination_test.cpp.o"
  "CMakeFiles/contamination_test.dir/contamination_test.cpp.o.d"
  "contamination_test"
  "contamination_test.pdb"
  "contamination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contamination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
