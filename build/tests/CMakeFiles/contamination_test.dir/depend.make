# Empty dependencies file for contamination_test.
# This may be replaced when dependencies are built.
