file(REMOVE_RECURSE
  "CMakeFiles/sample_dag_test.dir/sample_dag_test.cpp.o"
  "CMakeFiles/sample_dag_test.dir/sample_dag_test.cpp.o.d"
  "sample_dag_test"
  "sample_dag_test.pdb"
  "sample_dag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_dag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
