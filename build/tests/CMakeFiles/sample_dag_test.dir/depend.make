# Empty dependencies file for sample_dag_test.
# This may be replaced when dependencies are built.
