file(REMOVE_RECURSE
  "CMakeFiles/model_checker_test.dir/model_checker_test.cpp.o"
  "CMakeFiles/model_checker_test.dir/model_checker_test.cpp.o.d"
  "model_checker_test"
  "model_checker_test.pdb"
  "model_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
