# Empty dependencies file for sigma_nu_to_plus_test.
# This may be replaced when dependencies are built.
