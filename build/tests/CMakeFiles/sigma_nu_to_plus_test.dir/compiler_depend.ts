# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sigma_nu_to_plus_test.
