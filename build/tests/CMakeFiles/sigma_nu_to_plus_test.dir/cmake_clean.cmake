file(REMOVE_RECURSE
  "CMakeFiles/sigma_nu_to_plus_test.dir/sigma_nu_to_plus_test.cpp.o"
  "CMakeFiles/sigma_nu_to_plus_test.dir/sigma_nu_to_plus_test.cpp.o.d"
  "sigma_nu_to_plus_test"
  "sigma_nu_to_plus_test.pdb"
  "sigma_nu_to_plus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigma_nu_to_plus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
