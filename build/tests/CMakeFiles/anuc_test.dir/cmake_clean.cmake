file(REMOVE_RECURSE
  "CMakeFiles/anuc_test.dir/anuc_test.cpp.o"
  "CMakeFiles/anuc_test.dir/anuc_test.cpp.o.d"
  "anuc_test"
  "anuc_test.pdb"
  "anuc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anuc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
