# Empty dependencies file for anuc_test.
# This may be replaced when dependencies are built.
