# Empty dependencies file for quorum_history_test.
# This may be replaced when dependencies are built.
