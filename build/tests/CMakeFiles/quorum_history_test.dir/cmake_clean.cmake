file(REMOVE_RECURSE
  "CMakeFiles/quorum_history_test.dir/quorum_history_test.cpp.o"
  "CMakeFiles/quorum_history_test.dir/quorum_history_test.cpp.o.d"
  "quorum_history_test"
  "quorum_history_test.pdb"
  "quorum_history_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
