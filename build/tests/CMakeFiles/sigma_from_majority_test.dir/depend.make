# Empty dependencies file for sigma_from_majority_test.
# This may be replaced when dependencies are built.
