file(REMOVE_RECURSE
  "CMakeFiles/sigma_from_majority_test.dir/sigma_from_majority_test.cpp.o"
  "CMakeFiles/sigma_from_majority_test.dir/sigma_from_majority_test.cpp.o.d"
  "sigma_from_majority_test"
  "sigma_from_majority_test.pdb"
  "sigma_from_majority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigma_from_majority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
