# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sigma_from_majority_test.
