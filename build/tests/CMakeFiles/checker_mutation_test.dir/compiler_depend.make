# Empty compiler generated dependencies file for checker_mutation_test.
# This may be replaced when dependencies are built.
