file(REMOVE_RECURSE
  "CMakeFiles/fair_chain_test.dir/fair_chain_test.cpp.o"
  "CMakeFiles/fair_chain_test.dir/fair_chain_test.cpp.o.d"
  "fair_chain_test"
  "fair_chain_test.pdb"
  "fair_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
