# Empty compiler generated dependencies file for fair_chain_test.
# This may be replaced when dependencies are built.
