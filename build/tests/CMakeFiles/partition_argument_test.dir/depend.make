# Empty dependencies file for partition_argument_test.
# This may be replaced when dependencies are built.
