file(REMOVE_RECURSE
  "CMakeFiles/partition_argument_test.dir/partition_argument_test.cpp.o"
  "CMakeFiles/partition_argument_test.dir/partition_argument_test.cpp.o.d"
  "partition_argument_test"
  "partition_argument_test.pdb"
  "partition_argument_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_argument_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
