file(REMOVE_RECURSE
  "CMakeFiles/message_buffer_test.dir/message_buffer_test.cpp.o"
  "CMakeFiles/message_buffer_test.dir/message_buffer_test.cpp.o.d"
  "message_buffer_test"
  "message_buffer_test.pdb"
  "message_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
