# Empty dependencies file for message_buffer_test.
# This may be replaced when dependencies are built.
