# Empty dependencies file for ben_or_test.
# This may be replaced when dependencies are built.
