// nucon_explore: run any consensus algorithm in the library under a chosen
// environment and oracle family, and inspect the outcome. Runs execute on
// the parallel sweep engine (src/exp/); results print in seed order and are
// identical for any --threads value.
//
//   nucon_explore --algo anuc --n 5 --faults 2 --seed 7
//   nucon_explore --algo naive --faulty-mode adversarial --seeds 50 --threads 4
//   nucon_explore --algo from-scratch --n 7 --print-steps 40
//   nucon_explore --algo naive --seed 11 --trace run.trace.jsonl
//   nucon_explore --replay 'algo=anuc n=5 faults=2 stab=120 crash=0 mode=adversarial steps=200000 seed=7'
//
// Flags:
//   --algo X         anuc | stacked | mr-majority | mr-sigma | naive |
//                    ct | ben-or | from-scratch        (default anuc)
//   --n N            system size                        (default 5)
//   --faults F       number of crashes                  (default 1)
//   --seed S         first scheduler/oracle seed        (default 1)
//   --seeds K        run K consecutive seeds            (default 1)
//   --threads T      worker threads for the sweep       (default 1)
//   --stabilize T    oracle stabilization time          (default 120)
//   --crash-at T     pin all crashes at time T (0 = spread randomly)
//   --max-steps M    step budget per run                (default 200000)
//   --faulty-mode X  benign | noise | adversarial       (default adversarial)
//   --fd X           generated | implemented            (default generated)
//                    implemented hosts heartbeat Omega/<>S modules beside
//                    the algorithm under the timing-aware scheduler instead
//                    of reading a pattern-generated oracle; not available
//                    for ben-or / from-scratch
//   --print-steps N  print the first/last N steps of the run
//   --trace FILE     write a structured JSONL trace of the run to FILE
//                    (multi-seed runs write FILE.seed<k>); inspect with
//                    tools/trace_dump
//   --replay 'A'     serially re-execute one replay artifact and exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/sweep.hpp"
#include "sim/trace.hpp"

using namespace nucon;

namespace {

struct Cli {
  std::string algo = "anuc";
  Pid n = 5;
  Pid faults = 1;
  std::uint64_t seed = 1;
  int seeds = 1;
  int threads = 1;
  Time stabilize = 120;
  Time crash_at = 0;
  std::int64_t max_steps = 200'000;
  std::string faulty_mode = "adversarial";
  std::string fd = "generated";
  std::size_t print_steps = 0;
  std::string trace_file;
  std::string replay;
};

std::optional<FaultyQuorumBehavior> parse_mode(const std::string& mode) {
  if (mode == "benign") return FaultyQuorumBehavior::kBenign;
  if (mode == "noise") return FaultyQuorumBehavior::kNoise;
  if (mode == "adversarial") return FaultyQuorumBehavior::kAdversarialDisjoint;
  return std::nullopt;
}

std::optional<exp::FdSource> parse_fd(const std::string& fd) {
  if (fd == "generated") return exp::FdSource::kGenerated;
  if (fd == "implemented") return exp::FdSource::kImplemented;
  return std::nullopt;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--algo anuc|stacked|mr-majority|mr-sigma|naive|ct|"
               "ben-or|from-scratch]\n"
               "  [--n N] [--faults F] [--seed S] [--seeds K] [--threads T] "
               "[--stabilize T] [--crash-at T]\n"
               "  [--max-steps M] [--faulty-mode benign|noise|adversarial] "
               "[--fd generated|implemented]\n"
               "  [--print-steps N] [--trace FILE]\n"
               "  [--replay 'ARTIFACT']\n",
               argv0);
  return 2;
}

const char* expect_text(exp::Algo algo) {
  if (algo == exp::Algo::kNaive) {
    return "nonuniform (NOT guaranteed: the broken §6.3 substitution)";
  }
  return exp::expectation(algo) == exp::Expect::kNonuniform ? "nonuniform"
                                                            : "uniform";
}

void print_point(const exp::SweepPoint& pt, const ConsensusRunStats& stats,
                 std::size_t print_steps) {
  const FailurePattern fp = exp::failure_pattern_of(pt);
  const std::vector<Value> proposals = exp::proposals_of(pt);

  std::printf("[seed %llu] %s, %s, expect %s consensus\n",
              (unsigned long long)pt.seed, exp::algo_name(pt.algo),
              fp.to_string().c_str(), expect_text(pt.algo));
  for (Pid p = 0; p < pt.n; ++p) {
    const auto& d = stats.decisions[static_cast<std::size_t>(p)];
    std::printf("  p%d (%s) proposed %lld -> %s\n", p,
                fp.is_correct(p) ? "correct" : "faulty ",
                (long long)proposals[static_cast<std::size_t>(p)],
                d ? std::to_string(*d).c_str() : "undecided");
  }
  const ConsensusVerdict& verdict = stats.verdict;
  std::printf(
      "  steps=%zu msgs=%zu bytes=%zu | termination=%d validity=%d "
      "agreement(nonuniform=%d uniform=%d)%s%s\n",
      stats.steps, stats.messages_sent, stats.bytes_sent, verdict.termination,
      verdict.validity, verdict.nonuniform_agreement, verdict.uniform_agreement,
      verdict.detail.empty() ? "" : " | ", verdict.detail.c_str());

  if (print_steps > 0) {
    // Deterministic re-execution for the recorded run: the sweep summary
    // discards it, and any point replays bit-for-bit anyway.
    const SimResult sim = exp::simulate_point(pt);
    TraceOptions to;
    to.max_steps = print_steps;
    std::printf("%s", render_trace(sim.run, to).c_str());
  }
}

/// Re-executes `pt` with a TraceRecorder attached (bit-identical to the
/// sweep run by construction) and writes the JSONL document to `path`.
bool write_trace(const exp::SweepPoint& pt, const std::string& path) {
  const exp::TracedRun traced = exp::trace_point(pt);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "cannot write trace file: %s\n", path.c_str());
    return false;
  }
  std::fwrite(traced.jsonl.data(), 1, traced.jsonl.size(), f);
  std::fclose(f);
  std::printf("  trace written: %s (inspect with trace_dump)\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    const char* value = nullptr;
    if (flag == "--algo" && (value = next())) {
      cli.algo = value;
    } else if (flag == "--n" && (value = next())) {
      cli.n = static_cast<Pid>(std::atoi(value));
    } else if (flag == "--faults" && (value = next())) {
      cli.faults = static_cast<Pid>(std::atoi(value));
    } else if (flag == "--seed" && (value = next())) {
      cli.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--seeds" && (value = next())) {
      cli.seeds = std::atoi(value);
    } else if (flag == "--threads" && (value = next())) {
      cli.threads = std::atoi(value);
    } else if (flag == "--stabilize" && (value = next())) {
      cli.stabilize = std::atoll(value);
    } else if (flag == "--crash-at" && (value = next())) {
      cli.crash_at = std::atoll(value);
    } else if (flag == "--max-steps" && (value = next())) {
      cli.max_steps = std::atoll(value);
    } else if (flag == "--faulty-mode" && (value = next())) {
      cli.faulty_mode = value;
    } else if (flag == "--fd" && (value = next())) {
      cli.fd = value;
    } else if (flag == "--print-steps" && (value = next())) {
      cli.print_steps = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--trace" && (value = next())) {
      cli.trace_file = value;
    } else if (flag == "--replay" && (value = next())) {
      cli.replay = value;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return usage(argv[0]);
    }
  }

  if (!cli.replay.empty()) {
    const auto artifact = exp::ReplayArtifact::parse(cli.replay);
    if (!artifact) {
      std::fprintf(stderr, "unparseable replay artifact: %s\n",
                   cli.replay.c_str());
      return usage(argv[0]);
    }
    std::printf("replaying serially: %s\n", artifact->to_string().c_str());
    print_point(artifact->point, exp::replay_failure(*artifact),
                cli.print_steps);
    if (!cli.trace_file.empty() &&
        !write_trace(artifact->point, cli.trace_file)) {
      return 1;
    }
    return 0;
  }

  const auto algo = exp::parse_algo(cli.algo);
  const auto mode = parse_mode(cli.faulty_mode);
  const auto fd = parse_fd(cli.fd);
  if (!algo || !mode || !fd || cli.n < 2 || cli.n > kMaxProcesses ||
      cli.faults < 0 || cli.faults >= cli.n || cli.seeds < 1 ||
      cli.threads < 1 ||
      (*fd == exp::FdSource::kImplemented &&
       !exp::supports_implemented_fd(*algo))) {
    if (!algo) {
      std::fprintf(stderr, "unknown --algo: %s\n", cli.algo.c_str());
    } else if (!mode) {
      std::fprintf(stderr, "unknown --faulty-mode: %s\n",
                   cli.faulty_mode.c_str());
    } else if (!fd) {
      std::fprintf(stderr, "unknown --fd: %s\n", cli.fd.c_str());
    } else if (fd && *fd == exp::FdSource::kImplemented &&
               !exp::supports_implemented_fd(*algo)) {
      std::fprintf(stderr,
                   "--fd implemented: %s consumes no Omega/<>S oracle layer\n",
                   cli.algo.c_str());
    } else {
      std::fprintf(stderr,
                   "invalid combination: n=%d faults=%d seeds=%d threads=%d\n",
                   cli.n, cli.faults, cli.seeds, cli.threads);
    }
    return usage(argv[0]);
  }

  std::vector<exp::SweepPoint> points;
  points.reserve(static_cast<std::size_t>(cli.seeds));
  for (int k = 0; k < cli.seeds; ++k) {
    exp::SweepPoint pt;
    pt.algo = *algo;
    pt.n = cli.n;
    pt.faults = cli.faults;
    pt.stabilize = cli.stabilize;
    pt.crash_at = cli.crash_at;
    pt.faulty_mode = *mode;
    pt.max_steps = cli.max_steps;
    pt.seed = cli.seed + static_cast<std::uint64_t>(k);
    pt.fd = *fd;
    points.push_back(pt);
  }

  const exp::SweepResult sweep =
      exp::SweepRunner(static_cast<unsigned>(cli.threads)).run(points);

  for (std::size_t k = 0; k < sweep.jobs.size(); ++k) {
    const exp::JobOutcome& job = sweep.jobs[k];
    print_point(job.point, job.stats, cli.print_steps);
    if (!cli.trace_file.empty()) {
      // One file per seed; a single-seed run gets the name verbatim.
      const std::string path =
          sweep.jobs.size() == 1 ? cli.trace_file
                                 : cli.trace_file + ".seed" + std::to_string(k);
      if (!write_trace(job.point, path)) return 1;
    }
  }

  if (cli.seeds > 1) {
    const exp::SweepAggregate& agg = sweep.aggregate;
    std::printf(
        "\nsummary: %lld runs, %lld undecided, %lld nonuniform-agreement "
        "violations (%d threads, %.2fs)\n",
        (long long)agg.runs, (long long)agg.undecided,
        (long long)agg.nonuniform_violations, cli.threads,
        sweep.wall_seconds);
    for (const exp::ReplayArtifact& a : agg.failures) {
      std::printf("replay failed run with: %s --replay '%s'\n", argv[0],
                  a.to_string().c_str());
    }
  }
  return 0;
}
