// nucon_explore: run any consensus algorithm in the library under a chosen
// environment and oracle family, and inspect the outcome.
//
//   nucon_explore --algo anuc --n 5 --faults 2 --seed 7
//   nucon_explore --algo naive --faulty-mode adversarial --seeds 50
//   nucon_explore --algo from-scratch --n 7 --trace 40
//
// Flags:
//   --algo X         anuc | stacked | mr-majority | mr-sigma | naive |
//                    ct | ben-or | from-scratch        (default anuc)
//   --n N            system size                        (default 5)
//   --faults F       number of crashes                  (default 1)
//   --seed S         first scheduler/oracle seed        (default 1)
//   --seeds K        run K consecutive seeds            (default 1)
//   --stabilize T    oracle stabilization time          (default 120)
//   --crash-at T     pin all crashes at time T (0 = spread randomly)
//   --max-steps M    step budget per run                (default 200000)
//   --faulty-mode X  benign | noise | adversarial       (default adversarial)
//   --trace N        print the first/last N steps of the run
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "algo/ben_or.hpp"
#include "algo/ct_consensus.hpp"
#include "algo/harness.hpp"
#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"
#include "core/from_scratch.hpp"
#include "core/stacked_nuc.hpp"
#include "fd/classic.hpp"
#include "fd/composed.hpp"
#include "fd/omega.hpp"
#include "fd/scripted.hpp"
#include "fd/sigma.hpp"
#include "fd/sigma_nu.hpp"
#include "sim/trace.hpp"

using namespace nucon;

namespace {

struct Cli {
  std::string algo = "anuc";
  Pid n = 5;
  Pid faults = 1;
  std::uint64_t seed = 1;
  int seeds = 1;
  Time stabilize = 120;
  Time crash_at = 0;
  std::int64_t max_steps = 200'000;
  std::string faulty_mode = "adversarial";
  std::size_t trace = 0;
};

FaultyQuorumBehavior parse_mode(const std::string& mode) {
  if (mode == "benign") return FaultyQuorumBehavior::kBenign;
  if (mode == "noise") return FaultyQuorumBehavior::kNoise;
  return FaultyQuorumBehavior::kAdversarialDisjoint;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--algo anuc|stacked|mr-majority|mr-sigma|naive|ct|"
               "ben-or|from-scratch]\n"
               "  [--n N] [--faults F] [--seed S] [--seeds K] "
               "[--stabilize T] [--crash-at T]\n"
               "  [--max-steps M] [--faulty-mode benign|noise|adversarial] "
               "[--trace N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    const char* value = nullptr;
    if (flag == "--algo" && (value = next())) {
      cli.algo = value;
    } else if (flag == "--n" && (value = next())) {
      cli.n = static_cast<Pid>(std::atoi(value));
    } else if (flag == "--faults" && (value = next())) {
      cli.faults = static_cast<Pid>(std::atoi(value));
    } else if (flag == "--seed" && (value = next())) {
      cli.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--seeds" && (value = next())) {
      cli.seeds = std::atoi(value);
    } else if (flag == "--stabilize" && (value = next())) {
      cli.stabilize = std::atoll(value);
    } else if (flag == "--crash-at" && (value = next())) {
      cli.crash_at = std::atoll(value);
    } else if (flag == "--max-steps" && (value = next())) {
      cli.max_steps = std::atoll(value);
    } else if (flag == "--faulty-mode" && (value = next())) {
      cli.faulty_mode = value;
    } else if (flag == "--trace" && (value = next())) {
      cli.trace = static_cast<std::size_t>(std::atoll(value));
    } else {
      return usage(argv[0]);
    }
  }
  if (cli.n < 2 || cli.n > kMaxProcesses || cli.faults < 0 ||
      cli.faults >= cli.n || cli.seeds < 1) {
    return usage(argv[0]);
  }

  int violations = 0;
  int undecided = 0;
  for (int k = 0; k < cli.seeds; ++k) {
    const std::uint64_t seed = cli.seed + static_cast<std::uint64_t>(k);

    FailurePattern fp(cli.n);
    {
      Rng rng(seed * 2654435761ULL + 99);
      for (Pid p : rng.pick_subset(ProcessSet::full(cli.n), cli.faults)) {
        fp.set_crash(p, cli.crash_at > 0
                            ? cli.crash_at
                            : rng.range(10, std::max<Time>(cli.stabilize - 10, 11)));
      }
    }

    // Build the oracle stack and the factory for the chosen algorithm.
    OmegaOptions oo;
    oo.stabilize_at = cli.stabilize;
    oo.seed = seed;
    OmegaOracle omega(fp, oo);
    SigmaOptions so;
    so.stabilize_at = cli.stabilize;
    so.seed = seed + 0x51;
    SigmaOracle sigma(fp, so);
    SigmaNuOptions sno;
    sno.stabilize_at = cli.stabilize;
    sno.seed = seed + 0x52;
    sno.faulty = parse_mode(cli.faulty_mode);
    SigmaNuOracle sigma_nu(fp, sno);
    SigmaNuPlusOptions spo;
    spo.stabilize_at = cli.stabilize;
    spo.seed = seed + 0x53;
    spo.faulty = parse_mode(cli.faulty_mode);
    SigmaNuPlusOracle sigma_nu_plus(fp, spo);
    SuspectsOptions sso;
    sso.stabilize_at = cli.stabilize;
    sso.seed = seed + 0x54;
    EvtStrongOracle evt_strong(fp, sso);
    ScriptedOracle none([](Pid, Time) { return FdValue{}; });
    ComposedOracle omega_and_sigma(omega, sigma);
    ComposedOracle omega_and_nu(omega, sigma_nu);
    ComposedOracle omega_and_nu_plus(omega, sigma_nu_plus);

    Oracle* oracle = nullptr;
    ConsensusFactory make;
    const char* expect = "nonuniform";
    if (cli.algo == "anuc") {
      oracle = &omega_and_nu_plus;
      make = make_anuc(cli.n);
    } else if (cli.algo == "stacked") {
      oracle = &omega_and_nu;
      make = make_stacked_nuc(cli.n);
    } else if (cli.algo == "mr-majority") {
      oracle = &omega;
      make = make_mr_majority(cli.n);
      expect = "uniform";
    } else if (cli.algo == "mr-sigma") {
      oracle = &omega_and_sigma;
      make = make_mr_fd_quorum(cli.n);
      expect = "uniform";
    } else if (cli.algo == "naive") {
      oracle = &omega_and_nu;
      make = make_mr_fd_quorum(cli.n);
      expect = "nonuniform (NOT guaranteed: the broken §6.3 substitution)";
    } else if (cli.algo == "ct") {
      oracle = &evt_strong;
      make = make_ct(cli.n);
      expect = "uniform";
    } else if (cli.algo == "ben-or") {
      oracle = &none;
      make = make_ben_or(cli.n, static_cast<Pid>((cli.n - 1) / 2), seed);
      expect = "uniform";
    } else if (cli.algo == "from-scratch") {
      oracle = &none;
      make = make_from_scratch(cli.n, static_cast<Pid>((cli.n - 1) / 2));
      expect = "uniform";
    } else {
      return usage(argv[0]);
    }

    std::vector<Value> proposals(static_cast<std::size_t>(cli.n));
    for (Pid p = 0; p < cli.n; ++p) proposals[static_cast<std::size_t>(p)] = p % 2;

    SchedulerOptions opts;
    opts.seed = seed;
    opts.max_steps = cli.max_steps;
    SimResult sim = simulate_consensus(fp, *oracle, make, proposals, opts);
    const auto decisions = decisions_of(sim.automata);
    const auto verdict = check_consensus(fp, proposals, decisions);

    std::printf("[seed %llu] %s, %s, expect %s consensus\n",
                (unsigned long long)seed, cli.algo.c_str(),
                fp.to_string().c_str(), expect);
    for (Pid p = 0; p < cli.n; ++p) {
      const auto& d = decisions[static_cast<std::size_t>(p)];
      std::printf("  p%d (%s) proposed %lld -> %s\n", p,
                  fp.is_correct(p) ? "correct" : "faulty ",
                  (long long)proposals[static_cast<std::size_t>(p)],
                  d ? std::to_string(*d).c_str() : "undecided");
    }
    std::printf(
        "  steps=%zu msgs=%zu bytes=%zu | termination=%d validity=%d "
        "agreement(nonuniform=%d uniform=%d)%s%s\n",
        sim.run.steps.size(), sim.messages_sent, sim.bytes_sent,
        verdict.termination, verdict.validity, verdict.nonuniform_agreement,
        verdict.uniform_agreement, verdict.detail.empty() ? "" : " | ",
        verdict.detail.c_str());

    if (cli.trace > 0) {
      TraceOptions to;
      to.max_steps = cli.trace;
      std::printf("%s", render_trace(sim.run, to).c_str());
    }

    violations += !verdict.nonuniform_agreement;
    undecided += !all_correct_decided(fp, sim.automata);
  }

  if (cli.seeds > 1) {
    std::printf(
        "\nsummary: %d runs, %d undecided, %d nonuniform-agreement "
        "violations\n",
        cli.seeds, undecided, violations);
  }
  return 0;
}
