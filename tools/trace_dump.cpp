// trace_dump: pretty-print a JSONL run trace produced by the trace layer
// (nucon_explore --trace, or the sweep engine's failure auto-attach).
//
//   trace_dump failure-0.trace.jsonl
//   trace_dump --full --process 3 failure-0.trace.jsonl
//
// Renders the run as a per-process timeline summary and flags the first
// step at which agreement diverged — separately for the uniform flavor
// (any two deciders differ) and the nonuniform flavor (two correct
// deciders differ), the distinction the paper is about.
//
// Flags:
//   --full          dump every event chronologically after the summary
//   --process P     restrict --full to events of process P
//   --metrics       reconstruct the run's MetricsRegistry from the events
//                   (scheduler.* counters and histograms) and print it
//   --diff A B      compare two traces: report the first divergent event
//                   with the causal context of each side
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_diff.hpp"
#include "trace/metrics.hpp"
#include "trace/trace_reader.hpp"

using namespace nucon;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--full] [--process P] [--metrics] <trace.jsonl>\n"
               "       %s --diff <a.jsonl> <b.jsonl>\n",
               argv0, argv0);
  return 2;
}

/// Rebuilds the deterministic run metrics the scheduler would have
/// registered, from the recorded events alone. Only the event-sourced
/// subset is recoverable (end_time and undelivered_at_end are not
/// recorded per event), so names match scheduler.* where they overlap.
trace::MetricsRegistry metrics_of(const trace::ParsedTrace& trace) {
  trace::MetricsRegistry m;
  std::int64_t& steps = m.counter("scheduler.steps");
  std::int64_t& lambda = m.counter("scheduler.lambda_steps");
  std::int64_t& delivers = m.counter("scheduler.delivers");
  std::int64_t& forced = m.counter("scheduler.forced_deliveries");
  std::int64_t& sends = m.counter("scheduler.sends");
  std::int64_t& decides = m.counter("scheduler.decides");
  trace::Histogram& delay = m.histogram("scheduler.delivery_delay");
  trace::Histogram& payload = m.histogram("scheduler.payload_bytes");
  for (const trace::ParsedEvent& ev : trace.events) {
    if (ev.kind == "step") {
      ++steps;
      if (ev.peer < 0) ++lambda;
    } else if (ev.kind == "deliver") {
      ++delivers;
      forced += ev.forced;
      delay.add(ev.delay);
    } else if (ev.kind == "send") {
      ++sends;
      payload.add(ev.bytes);
    } else if (ev.kind == "decide") {
      ++decides;
    }
  }
  return m;
}

/// Reads and parses one trace, or prints a one-line diagnostic and returns
/// nullopt (the caller exits nonzero).
std::optional<trace::ParsedTrace> load_trace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  trace::ParseError error;
  auto trace = trace::parse_trace(buf.str(), &error);
  if (!trace) {
    std::fprintf(stderr, "%s: malformed trace: %s\n", path.c_str(),
                 error.to_string().c_str());
    return std::nullopt;
  }
  return trace;
}

int run_diff(const std::string& path_a, const std::string& path_b) {
  const auto a = load_trace(path_a);
  if (!a) return 1;
  const auto b = load_trace(path_b);
  if (!b) return 1;

  const obs::TraceDiff d = obs::diff_traces(*a, *b);
  if (d.meta_differs) {
    std::printf("meta differs: A is n=%d correct=%s expect=%s, B is n=%d "
                "correct=%s expect=%s\n",
                a->n, a->correct.to_string().c_str(), a->expect.c_str(), b->n,
                b->correct.to_string().c_str(), b->expect.c_str());
  }
  if (!d.diverged) {
    std::printf("no divergence: %zu events are byte-identical\n", d.a_events);
    return 0;
  }
  std::printf("first divergent event: index %zu (of %zu in A, %zu in B)\n",
              d.event_index, d.a_events, d.b_events);
  std::printf("  A: %s\n", d.a_line.empty() ? "<end of trace>"
                                            : d.a_line.c_str());
  std::printf("  B: %s\n", d.b_line.empty() ? "<end of trace>"
                                            : d.b_line.c_str());
  const auto print_context = [](const char* label,
                                const trace::ParsedTrace& t,
                                const std::vector<obs::EventIndex>& ctx) {
    if (ctx.empty()) return;
    std::printf("causal context in %s (most recent ancestors):\n", label);
    for (const obs::EventIndex e : ctx) {
      std::printf("  [%zu] %s\n", e, t.events[e].raw.c_str());
    }
  };
  print_context("A", *a, d.a_context);
  print_context("B", *b, d.b_context);
  return 0;
}

struct ProcessSummary {
  std::int64_t steps = 0;
  std::int64_t lambda_steps = 0;
  std::int64_t delivers = 0;
  std::int64_t forced = 0;
  std::int64_t sends = 0;
  std::int64_t state_changes = 0;
  Time first_t = -1;
  Time last_t = -1;
  bool decided = false;
  Time decide_t = 0;
  std::int64_t decide_value = 0;
};

std::string render_event(const trace::ParsedEvent& ev) {
  std::ostringstream os;
  os << "t=" << ev.t << "  p" << ev.p << "  ";
  if (ev.kind == "step") {
    if (ev.peer >= 0) {
      os << "step recv(" << ev.peer << "#" << ev.seq << ")";
    } else {
      os << "step recv(lambda)";
    }
  } else if (ev.kind == "oracle") {
    os << "oracle " << ev.fd;
  } else if (ev.kind == "send") {
    os << "send -> p" << ev.peer << " #" << ev.seq << " (" << ev.bytes
       << " bytes)";
  } else if (ev.kind == "deliver") {
    os << "deliver <- p" << ev.peer << " #" << ev.seq << " (delay " << ev.delay
       << (ev.forced ? ", forced)" : ")");
  } else if (ev.kind == "state") {
    os << "state hash=" << ev.state_hash;
  } else if (ev.kind == "decide") {
    os << "DECIDE " << (ev.value ? *ev.value : 0);
  } else {
    os << ev.kind << " " << ev.raw;
  }
  return os.str();
}

void print_divergence(const char* label, const trace::Divergence& d) {
  if (!d.found) {
    std::printf("first %s-agreement divergence: none\n", label);
    return;
  }
  std::printf(
      "first %s-agreement divergence: t=%lld p%d decided %lld [fd %s], "
      "contradicting p%d's decision %lld at t=%lld [fd %s]\n",
      label, static_cast<long long>(d.t), d.p,
      static_cast<long long>(d.value),
      d.fd.empty() ? "none sampled" : d.fd.c_str(), d.earlier_p,
      static_cast<long long>(d.earlier_value),
      static_cast<long long>(d.earlier_t),
      d.earlier_fd.empty() ? "none sampled" : d.earlier_fd.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  bool metrics = false;
  Pid only_process = -1;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--process") == 0 && i + 1 < argc) {
      only_process = static_cast<Pid>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--diff") == 0 && i + 2 < argc) {
      return run_diff(argv[i + 1], argv[i + 2]);
    } else if (argv[i][0] != '-' && path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", argv[i]);
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  const auto trace = load_trace(path);
  if (!trace) return 1;

  std::printf("trace: %s\n", path.c_str());
  if (!trace->artifact.empty()) {
    std::printf("artifact: %s\n", trace->artifact.c_str());
  }
  std::printf("n=%d correct=%s expect=%s, %zu events\n", trace->n,
              trace->correct.to_string().c_str(),
              trace->expect.empty() ? "?" : trace->expect.c_str(),
              trace->events.size());

  // Per-process timeline summary.
  std::vector<ProcessSummary> procs(static_cast<std::size_t>(
      trace->n > 0 ? trace->n : 0));
  for (const trace::ParsedEvent& ev : trace->events) {
    if (ev.p < 0 || ev.p >= trace->n) continue;
    ProcessSummary& s = procs[static_cast<std::size_t>(ev.p)];
    if (s.first_t < 0 && ev.t >= 0) s.first_t = ev.t;
    if (ev.t > s.last_t) s.last_t = ev.t;
    if (ev.kind == "step") {
      ++s.steps;
      if (ev.peer < 0) ++s.lambda_steps;
    } else if (ev.kind == "deliver") {
      ++s.delivers;
      s.forced += ev.forced;
    } else if (ev.kind == "send") {
      ++s.sends;
    } else if (ev.kind == "state") {
      ++s.state_changes;
    } else if (ev.kind == "decide" && ev.value) {
      s.decided = true;
      s.decide_t = ev.t;
      s.decide_value = *ev.value;
    }
  }
  std::printf("\nper-process timeline:\n");
  for (Pid p = 0; p < trace->n; ++p) {
    const ProcessSummary& s = procs[static_cast<std::size_t>(p)];
    std::printf(
        "  p%d (%s)  steps=%lld (lambda %lld)  recv=%lld (forced %lld)  "
        "send=%lld  active t=[%lld, %lld]",
        p, trace->is_correct(p) ? "correct" : "faulty ",
        static_cast<long long>(s.steps),
        static_cast<long long>(s.lambda_steps),
        static_cast<long long>(s.delivers), static_cast<long long>(s.forced),
        static_cast<long long>(s.sends), static_cast<long long>(s.first_t),
        static_cast<long long>(s.last_t));
    if (s.state_changes > 0) {
      std::printf("  state-changes=%lld",
                  static_cast<long long>(s.state_changes));
    }
    if (s.decided) {
      std::printf("  -> decided %lld at t=%lld",
                  static_cast<long long>(s.decide_value),
                  static_cast<long long>(s.decide_t));
    } else {
      std::printf("  -> undecided");
    }
    std::printf("\n");
  }

  std::printf("\n");
  const trace::DivergenceReport report = trace::find_divergence(*trace);
  print_divergence("uniform", report.uniform);
  print_divergence("nonuniform", report.nonuniform);
  if (report.nonuniform.found) {
    std::printf(
        "NOTE: two correct processes decided differently — this run violates "
        "even nonuniform agreement.\n");
  } else if (report.uniform.found) {
    std::printf(
        "NOTE: only uniform agreement diverged (a faulty decider is "
        "involved); nonuniform consensus permits this.\n");
  }

  if (metrics) {
    std::printf("\nmetrics (reconstructed from events):\n%s",
                metrics_of(*trace).to_string().c_str());
  }

  if (full) {
    std::printf("\nevents:\n");
    for (const trace::ParsedEvent& ev : trace->events) {
      if (only_process >= 0 && ev.p != only_process) continue;
      std::printf("  %s\n", render_event(ev).c_str());
    }
  }
  return 0;
}
