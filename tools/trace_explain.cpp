// trace_explain: decision provenance for a JSONL run trace.
//
//   trace_explain bench-traces/e6/failure-0.trace.jsonl
//   trace_explain --json failure-0.trace.jsonl
//   trace_explain --process 2 failure-0.trace.jsonl
//
// Reconstructs the happens-before graph (obs/causal_graph.hpp) and walks
// the causal cone of the interesting decide events (obs/provenance.hpp):
// which processes' decisions and messages reached each decider, the FD
// values sampled along the way, and — for the paper's §6.3 contamination
// scenario — the first message edge that carried a faulty decider's value
// into a correct process.
//
// Which decides get explained: with --process P, the first decide of P;
// otherwise, if agreement diverged, both sides of the tightest divergence
// (nonuniform when present, else uniform); otherwise the first decide of
// the run.
//
// Flags:
//   --json        emit one JSON object per explained decide instead of text
//   --process P   explain process P's decision only
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/causal_graph.hpp"
#include "obs/provenance.hpp"

using namespace nucon;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--json] [--process P] <trace.jsonl>\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  Pid only_process = -1;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--process") == 0 && i + 1 < argc) {
      only_process = static_cast<Pid>(std::atoi(argv[++i]));
    } else if (argv[i][0] != '-' && path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", argv[i]);
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << f.rdbuf();

  trace::ParseError error;
  const auto trace = trace::parse_trace(buf.str(), &error);
  if (!trace) {
    std::fprintf(stderr, "%s: malformed trace: %s\n", path.c_str(),
                 error.to_string().c_str());
    return 1;
  }

  const obs::CausalGraph graph(*trace);

  // Decide events to explain.
  std::vector<obs::EventIndex> targets;
  if (only_process >= 0) {
    const auto e = graph.first_decide_of(only_process);
    if (!e) {
      std::fprintf(stderr, "process %d never decided in this trace\n",
                   only_process);
      return 1;
    }
    targets.push_back(*e);
  } else {
    const trace::DivergenceReport report = trace::find_divergence(*trace);
    const trace::Divergence& d =
        report.nonuniform.found ? report.nonuniform : report.uniform;
    if (d.found) {
      // Both sides of the divergence: the contaminated decider is
      // whichever cone contains the faulty decision.
      if (const auto e = graph.first_decide_of(d.earlier_p)) {
        targets.push_back(*e);
      }
      if (const auto e = graph.first_decide_of(d.p)) targets.push_back(*e);
    } else if (!graph.decides().empty()) {
      targets.push_back(graph.decides().front());
    }
  }
  if (targets.empty()) {
    std::fprintf(stderr, "no decide events in %s\n", path.c_str());
    return 1;
  }

  if (!json) {
    std::printf("trace: %s\n", path.c_str());
    if (!trace->artifact.empty()) {
      std::printf("artifact: %s\n", trace->artifact.c_str());
    }
    std::printf("n=%d correct=%s expect=%s, %zu events\n\n", trace->n,
                trace->correct.to_string().c_str(),
                trace->expect.empty() ? "?" : trace->expect.c_str(),
                trace->events.size());
  }
  for (const obs::EventIndex e : targets) {
    const obs::Provenance p = obs::explain_decide(graph, e);
    if (json) {
      std::printf("%s\n", obs::provenance_json(graph, p).c_str());
    } else {
      std::printf("%s\n", obs::render_provenance(graph, p).c_str());
    }
  }
  return 0;
}
