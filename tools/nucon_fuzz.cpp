// nucon_fuzz: coverage-guided schedule/history fuzzing from the command
// line.
//
//   nucon_fuzz --algo naive --n 4 --time-budget 10 --corpus-dir fuzz-out
//   nucon_fuzz --algo anuc --max-execs 2048 --threads 8 --report BENCH_fuzz.json
//
// Mutates schedule genomes (delivery choices, crash times, FD
// perturbations) against one registered algorithm, guided by the model
// checker's 128-bit state keys and trace divergence shapes, and ddmin-
// minimizes every find into a replayable counterexample. With the same
// --seed and --max-execs the corpus, the finds and the report body are
// bit-identical at any --threads.
//
// Flags:
//   --algo NAME        target algorithm (exp registry name; the alias
//                      naive_sigma_nu selects the paper's broken
//                      substitution). Default naive.
//   --n N              system size (default 4)
//   --stabilize T      oracle stabilization time (default 120)
//   --max-steps K      per-execution step cap (default 20000)
//   --seed S           master seed (default 1)
//   --max-execs E      execution budget (default 2048)
//   --time-budget SEC  wall-clock box, checked per batch (default off)
//   --threads T        worker threads (default 1; 0 = hardware)
//   --max-finds F      stop after F distinct finds (default 4)
//   --corpus-dir DIR   write corpus + find artifacts (default off)
//   --report PATH      write the BENCH_fuzz.json report (default off)
//   --no-minimize      keep finds as discovered
//   --expect-find      exit 1 unless at least one find was made
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/engine.hpp"

using namespace nucon;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--algo NAME] [--n N] [--stabilize T] "
               "[--max-steps K] [--seed S] [--max-execs E] "
               "[--time-budget SEC] [--threads T] [--max-finds F] "
               "[--corpus-dir DIR] [--report PATH] [--no-minimize] "
               "[--expect-find]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::EngineOptions opts;
  std::string corpus_dir;
  std::string report_path;
  bool expect_find = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--algo") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      // The paper's broken substitution goes by its file name too.
      const std::string name = std::strcmp(v, "naive_sigma_nu") == 0
                                   ? "naive"
                                   : std::string(v);
      const auto a = exp::parse_algo(name);
      if (!a) {
        std::fprintf(stderr, "unknown algorithm: %s\n", v);
        return 2;
      }
      opts.target.algo = *a;
    } else if (flag == "--n") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opts.target.n = static_cast<Pid>(std::atoi(v));
    } else if (flag == "--stabilize") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opts.target.stabilize = std::atoll(v);
    } else if (flag == "--max-steps") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opts.target.max_steps = std::atoll(v);
    } else if (flag == "--seed") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opts.master_seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--max-execs") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opts.max_execs = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--time-budget") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opts.time_budget_seconds = std::atof(v);
    } else if (flag == "--threads") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opts.threads = static_cast<unsigned>(std::atoi(v));
    } else if (flag == "--max-finds") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opts.max_finds = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--corpus-dir") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      corpus_dir = v;
    } else if (flag == "--report") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      report_path = v;
    } else if (flag == "--no-minimize") {
      opts.minimize = false;
    } else if (flag == "--expect-find") {
      expect_find = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return usage(argv[0]);
    }
  }

  const fuzz::FuzzResult result = fuzz::run_fuzz(opts);
  const fuzz::FuzzStats& s = result.stats;

  std::printf("fuzz algo=%s n=%d: %zu execs, %zu corpus, %zu unique states, "
              "%zu divergence shapes, %zu finds (%.2fs, %.0f execs/s)\n",
              exp::algo_name(opts.target.algo), opts.target.n, s.execs,
              s.corpus_size, s.unique_states, s.divergence_shapes, s.finds,
              s.wall_seconds,
              s.wall_seconds > 0.0
                  ? static_cast<double>(s.execs) / s.wall_seconds
                  : 0.0);
  for (std::size_t k = 0; k < result.finds.size(); ++k) {
    const fuzz::Find& f = result.finds[k];
    std::printf("find %zu: %s (%s) at exec %zu; minimized %zu->%zu delivery "
                "genes, %zu->%zu perturbs\n",
                k, f.violation.c_str(),
                f.divergence_shape.empty() ? "-" : f.divergence_shape.c_str(),
                f.exec_index, f.genome.deliveries.size(),
                f.minimized.deliveries.size(), f.genome.fd_perturbs.size(),
                f.minimized.fd_perturbs.size());
  }

  if (!corpus_dir.empty() && !fuzz::write_artifacts(result, corpus_dir)) {
    std::fprintf(stderr, "cannot write artifacts to %s\n", corpus_dir.c_str());
    return 1;
  }
  if (!corpus_dir.empty()) {
    std::printf("artifacts: %s (find-K.min.genome replays via "
                "fuzz_corpus_test; find-K.trace.jsonl feeds trace_explain)\n",
                corpus_dir.c_str());
  }

  if (!report_path.empty()) {
    obs::BenchReport report = fuzz::fuzz_report(opts, result);
    report.timings["fuzz"] = s.wall_seconds;
    if (s.wall_seconds > 0.0) {
      report.timings["execs_per_second"] =
          static_cast<double>(s.execs) / s.wall_seconds;
    }
    if (!obs::write_report_json(report, report_path)) {
      std::fprintf(stderr, "cannot write report to %s\n", report_path.c_str());
      return 1;
    }
  }

  if (expect_find && result.finds.empty()) {
    std::fprintf(stderr, "expected at least one find, got none\n");
    return 1;
  }
  return 0;
}
