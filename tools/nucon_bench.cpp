// nucon_bench: benchmark trend tracking and regression detection over the
// BENCH_*.json documents the bench binaries emit (obs/report.hpp schema).
//
//   nucon_bench record --history bench/history [--sha REV] BENCH_*.json
//       validate each report, flatten it to trend metrics (prof/trend.hpp
//       key scheme), stamp machine + git sha + UTC timestamp, and append
//       one JSONL entry per report to <history>/ledger.jsonl.
//   nucon_bench diff A.json B.json [--tolerance 0.25]
//       compare two reports metric by metric; exit 0 when B holds the
//       line, 1 when any directional metric regressed past tolerance.
//   nucon_bench check --history bench/history [--informational]
//       for every (bench, machine) series in the ledger, diff the last
//       two entries; --informational reports but always exits 0.
//   nucon_bench manifest --out BENCH_manifest.json FILE...
//       validate every report and write a manifest of what a bench run
//       produced; exits nonzero if any report fails validation.
//
// Exit codes: 0 ok, 1 regression/validation failure, 2 usage or I/O error.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "prof/trend.hpp"

using namespace nucon;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: nucon_bench record --history DIR [--sha REV] [--machine M] "
      "REPORT.json...\n"
      "       nucon_bench diff BEFORE.json AFTER.json [--tolerance T]\n"
      "       nucon_bench check --history DIR [--tolerance T] "
      "[--informational]\n"
      "       nucon_bench manifest --out PATH REPORT.json...\n");
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

/// Loads + validates + flattens one BENCH report, or explains why not.
std::optional<prof::TrendEntry> load_report(const std::string& path) {
  const auto text = read_file(path);
  if (!text) {
    std::fprintf(stderr, "nucon_bench: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  if (const auto problem = obs::validate_report_json(*text)) {
    std::fprintf(stderr, "nucon_bench: %s: invalid report: %s\n",
                 path.c_str(), problem->c_str());
    return std::nullopt;
  }
  std::string error;
  auto entry = prof::extract_trend(*text, &error);
  if (!entry) {
    std::fprintf(stderr, "nucon_bench: %s: %s\n", path.c_str(),
                 error.c_str());
    return std::nullopt;
  }
  return entry;
}

std::string hostname_tag() {
  char buf[256] = {0};
  if (gethostname(buf, sizeof buf - 1) != 0) return "unknown";
  return buf[0] != '\0' ? buf : "unknown";
}

std::string utc_now_iso8601() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

struct CommonFlags {
  std::string history;
  std::string out;
  std::string sha;
  std::string machine;
  double tolerance = 0.25;
  bool informational = false;
  std::vector<std::string> files;
};

/// Shared flag loop; unknown flags abort with usage. Returns false on a
/// malformed invocation.
bool parse_flags(int argc, char** argv, int first, CommonFlags* out) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--history" && i + 1 < argc) {
      out->history = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out->out = argv[++i];
    } else if (arg == "--sha" && i + 1 < argc) {
      out->sha = argv[++i];
    } else if (arg == "--machine" && i + 1 < argc) {
      out->machine = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      out->tolerance = std::strtod(argv[++i], nullptr);
      if (out->tolerance <= 0.0) {
        std::fprintf(stderr, "nucon_bench: --tolerance must be > 0\n");
        return false;
      }
    } else if (arg == "--informational") {
      out->informational = true;
    } else if (!arg.empty() && arg[0] != '-') {
      out->files.push_back(arg);
    } else {
      std::fprintf(stderr, "nucon_bench: unknown or incomplete flag: %s\n",
                   arg.c_str());
      return false;
    }
  }
  return true;
}

int cmd_record(const CommonFlags& flags) {
  if (flags.history.empty() || flags.files.empty()) return usage();
  std::string sha = flags.sha;
  if (sha.empty()) {
    const char* env = std::getenv("NUCON_GIT_SHA");
    sha = env != nullptr && env[0] != '\0' ? env : "unknown";
  }
  const std::string machine =
      flags.machine.empty() ? hostname_tag() : flags.machine;
  const std::string at = utc_now_iso8601();

  std::vector<std::string> lines;
  for (const std::string& path : flags.files) {
    auto entry = load_report(path);
    if (!entry) return 1;
    entry->machine = machine;
    entry->git_sha = sha;
    entry->recorded_at = at;
    lines.push_back(prof::ledger_line(*entry));
    std::printf("recorded %s: %zu metrics from %s\n", entry->bench.c_str(),
                entry->metrics.size(), path.c_str());
  }

  std::error_code ec;
  std::filesystem::create_directories(flags.history, ec);
  const std::string ledger = flags.history + "/ledger.jsonl";
  std::ofstream f(ledger, std::ios::app | std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "nucon_bench: cannot append to %s\n",
                 ledger.c_str());
    return 2;
  }
  for (const std::string& line : lines) f << line << "\n";
  f.flush();
  return f.good() ? 0 : 2;
}

/// The H4 scaling table is the wide-set performance contract, so its
/// steps/s cells are held to a tighter relative tolerance than the global
/// default: a slide that the 25% envelope would absorb still fails the
/// check. Keys are collected from both sides so a series that disappears
/// on one side still diffs under the tightened bound.
std::map<std::string, double> scaling_guard_overrides(
    const prof::TrendEntry& before, const prof::TrendEntry& after,
    double global_tolerance) {
  constexpr double kTight = 0.10;
  const double tol = kTight < global_tolerance ? kTight : global_tolerance;
  constexpr const char* kPrefix = "table:H4:";
  constexpr const char* kSuffix = ":steps/s";
  std::map<std::string, double> out;
  const auto scan = [&](const prof::TrendEntry& e) {
    for (const auto& [key, value] : e.metrics) {
      (void)value;
      const std::size_t suffix_len = std::strlen(kSuffix);
      if (key.rfind(kPrefix, 0) == 0 && key.size() > suffix_len &&
          key.compare(key.size() - suffix_len, suffix_len, kSuffix) == 0) {
        out[key] = tol;
      }
    }
  };
  scan(before);
  scan(after);
  return out;
}

int cmd_diff(const CommonFlags& flags) {
  if (flags.files.size() != 2) return usage();
  const auto before = load_report(flags.files[0]);
  if (!before) return 2;
  const auto after = load_report(flags.files[1]);
  if (!after) return 2;
  const prof::TrendDiff diff =
      prof::diff_trends(*before, *after, flags.tolerance,
                        scaling_guard_overrides(*before, *after,
                                                flags.tolerance));
  std::printf("diff %s -> %s\n%s", flags.files[0].c_str(),
              flags.files[1].c_str(),
              prof::render_trend_diff(diff, flags.tolerance).c_str());
  return diff.has_regression() ? 1 : 0;
}

int cmd_check(const CommonFlags& flags) {
  if (flags.history.empty() || !flags.files.empty()) return usage();
  const std::string ledger = flags.history + "/ledger.jsonl";
  std::ifstream f(ledger, std::ios::binary);
  if (!f) {
    std::printf("nucon_bench: no ledger at %s (nothing recorded yet)\n",
                ledger.c_str());
    return 0;
  }

  // Each (bench, machine) pair is one series; keep its last two entries.
  std::map<std::string, std::vector<prof::TrendEntry>> series;
  std::string line;
  int lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string error;
    const auto entry = prof::parse_ledger_line(line, &error);
    if (!entry) {
      std::fprintf(stderr, "nucon_bench: %s:%d: %s\n", ledger.c_str(),
                   lineno, error.c_str());
      return 2;
    }
    auto& tail = series[entry->bench + "@" + entry->machine];
    tail.push_back(*entry);
    if (tail.size() > 2) tail.erase(tail.begin());
  }

  bool regressed = false;
  for (const auto& [key, entries] : series) {
    if (entries.size() < 2) {
      std::printf("%s: 1 entry, no baseline yet\n", key.c_str());
      continue;
    }
    const prof::TrendDiff diff = prof::diff_trends(
        entries[0], entries[1], flags.tolerance,
        scaling_guard_overrides(entries[0], entries[1], flags.tolerance));
    std::printf("%s: %s (%s) vs %s (%s)\n%s", key.c_str(),
                entries[0].git_sha.c_str(), entries[0].recorded_at.c_str(),
                entries[1].git_sha.c_str(), entries[1].recorded_at.c_str(),
                prof::render_trend_diff(diff, flags.tolerance).c_str());
    regressed = regressed || diff.has_regression();
  }
  if (regressed && flags.informational) {
    std::printf("regressions found, but --informational: exiting 0\n");
    return 0;
  }
  return regressed ? 1 : 0;
}

int cmd_manifest(const CommonFlags& flags) {
  if (flags.out.empty() || flags.files.empty()) return usage();
  std::ostringstream os;
  os << "{\"v\":1,\"reports\":[";
  bool all_valid = true;
  for (std::size_t i = 0; i < flags.files.size(); ++i) {
    const std::string& path = flags.files[i];
    const auto entry = load_report(path);
    if (!entry) {
      all_valid = false;
      continue;
    }
    if (i > 0) os << ",";
    os << "{\"file\":\""
       << std::filesystem::path(path).filename().string() << "\",\"bench\":\""
       << entry->bench << "\",\"metrics\":" << entry->metrics.size() << "}";
    std::printf("ok %s (%zu trend metrics)\n", path.c_str(),
                entry->metrics.size());
  }
  os << "]}";
  if (!all_valid) return 1;
  std::ofstream f(flags.out, std::ios::binary | std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "nucon_bench: cannot write %s\n",
                 flags.out.c_str());
    return 2;
  }
  f << os.str() << "\n";
  f.flush();
  return f.good() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  CommonFlags flags;
  if (!parse_flags(argc, argv, 2, &flags)) return 2;
  if (cmd == "record") return cmd_record(flags);
  if (cmd == "diff") return cmd_diff(flags);
  if (cmd == "check") return cmd_check(flags);
  if (cmd == "manifest") return cmd_manifest(flags);
  std::fprintf(stderr, "nucon_bench: unknown command: %s\n", cmd.c_str());
  return usage();
}
