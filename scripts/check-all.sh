#!/usr/bin/env sh
# check-all: the full verification matrix in one command.
#
# Chains the three CMake workflow presets — a workflow preset can only
# carry one configure step, so the matrix lives here:
#
#   check-default   configure + build + the whole ctest suite (RelWithDebInfo)
#   check-asan      configure + build + sweep/obs/mc/fuzz/fdqos/prof/scale-labeled ctest under ASan/UBSan
#   check-tsan      configure + build + sweep/obs/mc/fuzz/fdqos/prof/scale-labeled ctest under TSan
#
# (the mc label covers the model checker's parallel-frontier determinism
# suite, fuzz covers the schedule fuzzer's engine/minimizer/corpus
# suites, fdqos covers the timing-aware scheduler mode plus the
# heartbeat-implemented detectors, prof covers the hot-path profiling
# probes and the trend/regression engine, and scale covers the wide
# ProcessSet boundaries plus the incremental QuorumHistory equivalence
# oracle — all worth re-running under the sanitizers, the scale suite
# especially because the heap-spilled set words are fresh allocator
# traffic), then runs the
# quick throughput baselines plus the 10s fuzz smoke campaign
# (scripts/bench-quick.sh) so a perf regression in the simulation core or
# a lost rediscovery in the fuzzer shows up in the same pass, and finally
# the informational bench-trend target (last-two-ledger-entries diff per
# series; never fails the build).
#
# Usage: scripts/check-all.sh   (from the repo root)
set -e
cd "$(dirname "$0")/.."
for wf in check-default check-asan check-tsan; do
  echo "==> cmake --workflow --preset $wf"
  cmake --workflow --preset "$wf"
done
echo "==> scripts/bench-quick.sh"
scripts/bench-quick.sh
echo "==> bench-trend (informational)"
cmake --build build --target bench-trend
echo "==> check-all: all workflows passed"
