#!/usr/bin/env sh
# bench-quick: the scaled-down simulation-core throughput baseline.
#
# Builds and runs bench_hotpath with NUCON_HOTPATH_QUICK=1 (small seed
# counts and step budgets), emitting build/BENCH_hotpath.json: steps/sec
# and delivers/sec per registry algorithm, bytes-copied-per-broadcast for
# the shared-payload regression check, and the sweep-engine throughput
# section. See EXPERIMENTS.md "Throughput baseline".
#
# Usage: scripts/bench-quick.sh   (from the repo root)
set -e
cd "$(dirname "$0")/.."
cmake --preset default
cmake --build --preset bench-quick
echo "==> bench-quick: wrote build/BENCH_hotpath.json"
