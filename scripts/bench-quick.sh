#!/usr/bin/env sh
# bench-quick: the scaled-down throughput baselines.
#
# Builds and runs bench_hotpath with NUCON_HOTPATH_QUICK=1 (small seed
# counts and step budgets), emitting build/BENCH_hotpath.json: steps/sec
# and delivers/sec per registry algorithm, bytes-copied-per-broadcast for
# the shared-payload regression check, and the sweep-engine throughput
# section. Then runs bench_model with NUCON_MODEL_QUICK=1, emitting
# build/BENCH_model.json: the incremental model-checking engine vs the
# frozen replay-based DFS baseline on the depth-8 slice of the n=3
# reference space, with the determinism cross-checks (the full depth-12
# comparison runs when bench_model is invoked without the quick flag).
# Next comes bench_fdqos with NUCON_FDQOS_QUICK=1, emitting
# build/BENCH_fdqos.json: heartbeat <>S detection-time/mistake-rate
# tables, Omega stabilization under delay and skew, and the A_nuc
# decision-latency comparison of scripted vs measured Omega (see
# EXPERIMENTS.md "Implemented failure detectors & QoS").
# Finally chains the fuzz-smoke preset: a fixed-seed 10-second
# coverage-guided campaign against the naive Sigma^nu substitution that
# must rediscover and minimize the known nonuniform-agreement violation
# (nucon_fuzz exits nonzero otherwise), emitting build/BENCH_fuzz.json.
# See EXPERIMENTS.md "Throughput baseline", "Exhaustive model checking"
# and "Coverage-guided fuzzing".
#
# Usage: scripts/bench-quick.sh   (from the repo root)
set -e
cd "$(dirname "$0")/.."
cmake --preset default
cmake --build --preset bench-quick
cmake --build --preset fuzz-smoke
echo "==> bench-quick: wrote build/BENCH_hotpath.json, build/BENCH_model.json, build/BENCH_fdqos.json and build/BENCH_fuzz.json"
