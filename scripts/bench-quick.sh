#!/usr/bin/env sh
# bench-quick: the scaled-down throughput baselines.
#
# Builds and runs bench_hotpath with NUCON_HOTPATH_QUICK=1 (small seed
# counts and step budgets), emitting build/BENCH_hotpath.json: steps/sec
# and delivers/sec per registry algorithm, bytes-copied-per-broadcast for
# the shared-payload regression check, the sweep-engine throughput
# section, and the H4 wide-set scaling rows (quick mode keeps the n=64
# row so the ledger always carries one beyond-H3 scaling point). Then runs bench_model with NUCON_MODEL_QUICK=1, emitting
# build/BENCH_model.json: the incremental model-checking engine vs the
# frozen replay-based DFS baseline on the depth-8 slice of the n=3
# reference space, with the determinism cross-checks (the full depth-12
# comparison runs when bench_model is invoked without the quick flag).
# Next comes bench_fdqos with NUCON_FDQOS_QUICK=1, emitting
# build/BENCH_fdqos.json: heartbeat <>S detection-time/mistake-rate
# tables, Omega stabilization under delay and skew, and the A_nuc
# decision-latency comparison of scripted vs measured Omega (see
# EXPERIMENTS.md "Implemented failure detectors & QoS").
# Finally chains the fuzz-smoke preset: a fixed-seed 10-second
# coverage-guided campaign against the naive Sigma^nu substitution that
# must rediscover and minimize the known nonuniform-agreement violation
# (nucon_fuzz exits nonzero otherwise), emitting build/BENCH_fuzz.json.
# See EXPERIMENTS.md "Throughput baseline", "Exhaustive model checking"
# and "Coverage-guided fuzzing".
#
# Afterwards nucon_bench collects every BENCH_*.json into
# build/BENCH_manifest.json (validating each against the report schema),
# appends the run to the committed bench/history/ledger.jsonl trend
# ledger, and prints the diff against the previous ledger entry
# (informational here; `nucon_bench check` without --informational is the
# gating flavor). See EXPERIMENTS.md "Profiling & trend tracking".
#
# Usage: scripts/bench-quick.sh   (from the repo root)
set -e
cd "$(dirname "$0")/.."
cmake --preset default
cmake --build --preset bench-quick
cmake --build --preset fuzz-smoke
echo "==> bench-quick: wrote build/BENCH_hotpath.json, build/BENCH_model.json, build/BENCH_fdqos.json and build/BENCH_fuzz.json"
cmake --build build --target nucon_bench
echo "==> nucon_bench manifest"
build/tools/nucon_bench manifest --out build/BENCH_manifest.json \
  build/BENCH_hotpath.json build/BENCH_model.json \
  build/BENCH_fdqos.json build/BENCH_fuzz.json
echo "==> nucon_bench record + trend check"
NUCON_GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
  build/tools/nucon_bench record --history bench/history \
  build/BENCH_hotpath.json build/BENCH_model.json \
  build/BENCH_fdqos.json build/BENCH_fuzz.json
build/tools/nucon_bench check --history bench/history --informational
