// Golden-file pin of the JSONL trace schema.
//
// tests/golden/naive_contamination_n4_seed4.trace.jsonl is the committed
// byte-exact trace of one fixed SweepPoint — a small naive-algorithm
// contamination run (§6.3: two correct processes decide differently).
// Re-executing the point must reproduce it byte for byte; any schema or
// determinism change shows up as a diff against a reviewable file.
//
// To regenerate after an *intentional* schema change:
//   nucon_explore --algo naive --n 4 --faults 1 --seed 4 --stabilize 900
//     --crash-at 600 --max-steps 60000 --trace <golden path>  (one line)
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "exp/sweep.hpp"
#include "trace/trace_reader.hpp"

#ifndef NUCON_TEST_DATA_DIR
#error "NUCON_TEST_DATA_DIR must point at tests/golden"
#endif

namespace nucon {
namespace {

exp::SweepPoint golden_point() {
  exp::SweepPoint pt;
  pt.algo = exp::Algo::kNaive;
  pt.n = 4;
  pt.faults = 1;
  pt.stabilize = 900;
  pt.crash_at = 600;
  pt.max_steps = 60'000;
  pt.seed = 4;
  return pt;
}

std::string golden_path() {
  return std::string(NUCON_TEST_DATA_DIR) +
         "/naive_contamination_n4_seed4.trace.jsonl";
}

TEST(TraceGoldenTest, RecordedTraceMatchesCommittedGoldenByteForByte) {
  std::ifstream f(golden_path(), std::ios::binary);
  ASSERT_TRUE(f.good()) << "missing golden file: " << golden_path();
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string golden = buf.str();
  ASSERT_FALSE(golden.empty());

  const exp::TracedRun traced = exp::trace_point(golden_point());
  if (traced.jsonl != golden) {
    // Byte mismatch: localize it to a line for the failure message.
    std::istringstream got_lines(traced.jsonl);
    std::istringstream want_lines(golden);
    std::string got, want;
    std::size_t line = 0;
    while (true) {
      ++line;
      const bool has_got = static_cast<bool>(std::getline(got_lines, got));
      const bool has_want = static_cast<bool>(std::getline(want_lines, want));
      if (!has_got && !has_want) break;
      ASSERT_EQ(has_got, has_want) << "trace length differs at line " << line;
      ASSERT_EQ(got, want) << "first differing line: " << line;
    }
    FAIL() << "traces differ in bytes but not line content (line endings?)";
  }
}

TEST(TraceGoldenTest, GoldenTraceCarriesTheSchemaThisReaderUnderstands) {
  std::ifstream f(golden_path(), std::ios::binary);
  ASSERT_TRUE(f.good());
  std::ostringstream buf;
  buf << f.rdbuf();

  trace::ParseError error;
  const auto parsed = trace::parse_trace(buf.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error.to_string();
  EXPECT_EQ(parsed->version, trace::kTraceSchemaVersion);
  EXPECT_EQ(parsed->n, 4);
  EXPECT_EQ(parsed->expect, "none");
  // The committed run is a genuine contamination witness.
  const trace::DivergenceReport report = trace::find_divergence(*parsed);
  EXPECT_TRUE(report.nonuniform.found);
  EXPECT_TRUE(parsed->is_correct(report.nonuniform.p));
  EXPECT_TRUE(parsed->is_correct(report.nonuniform.earlier_p));
}

TEST(TraceGoldenTest, ReaderRejectsUnknownSchemaVersions) {
  trace::ParseError error;
  const std::string future =
      "{\"k\":\"meta\",\"v\":2,\"n\":3,\"correct\":[0,1,2]}\n";
  EXPECT_FALSE(trace::parse_trace(future, &error).has_value());
  EXPECT_NE(error.message.find("version"), std::string::npos);
  EXPECT_EQ(error.line, 1u);

  // Legacy traces without a "v" field are version 1 by definition.
  const std::string legacy = "{\"k\":\"meta\",\"n\":3,\"correct\":[0,1,2]}\n";
  const auto parsed = trace::parse_trace(legacy, &error);
  ASSERT_TRUE(parsed.has_value()) << error.to_string();
  EXPECT_EQ(parsed->version, 1);
}

TEST(TraceGoldenTest, ParseErrorsCarryLineNumbers) {
  trace::ParseError error;
  const std::string broken =
      "{\"k\":\"meta\",\"v\":1,\"n\":3,\"correct\":[0,1,2]}\n"
      "{\"k\":\"step\",\"t\":1,\"p\":0}\n"
      "this is not an event\n";
  EXPECT_FALSE(trace::parse_trace(broken, &error).has_value());
  EXPECT_EQ(error.line, 3u);
  EXPECT_FALSE(error.to_string().empty());
}

}  // namespace
}  // namespace nucon
