#include "check/consensus_checker.hpp"

#include <gtest/gtest.h>

namespace nucon {
namespace {

using Decisions = std::vector<std::optional<Value>>;

TEST(ConsensusChecker, AllGood) {
  const FailurePattern fp(3);
  const auto v = check_consensus(fp, {1, 1, 1}, Decisions{1, 1, 1});
  EXPECT_TRUE(v.termination);
  EXPECT_TRUE(v.validity);
  EXPECT_TRUE(v.nonuniform_agreement);
  EXPECT_TRUE(v.uniform_agreement);
  EXPECT_TRUE(v.solves_nonuniform());
  EXPECT_TRUE(v.solves_uniform());
  EXPECT_TRUE(v.detail.empty());
}

TEST(ConsensusChecker, TerminationNeedsAllCorrect) {
  const FailurePattern fp(3);
  const auto v = check_consensus(fp, {0, 0, 0}, Decisions{0, std::nullopt, 0});
  EXPECT_FALSE(v.termination);
  EXPECT_FALSE(v.solves_nonuniform());
  EXPECT_NE(v.detail.find("termination"), std::string::npos);
}

TEST(ConsensusChecker, FaultyNeedNotDecide) {
  FailurePattern fp(3);
  fp.set_crash(1, 5);
  const auto v = check_consensus(fp, {0, 0, 0}, Decisions{0, std::nullopt, 0});
  EXPECT_TRUE(v.termination);
  EXPECT_TRUE(v.solves_nonuniform());
}

TEST(ConsensusChecker, ValidityRejectsUnproposed) {
  const FailurePattern fp(2);
  const auto v = check_consensus(fp, {0, 1}, Decisions{2, 2});
  EXPECT_FALSE(v.validity);
  EXPECT_NE(v.detail.find("validity"), std::string::npos);
}

TEST(ConsensusChecker, ValidityAcceptsAnyProposed) {
  const FailurePattern fp(2);
  EXPECT_TRUE(check_consensus(fp, {0, 1}, Decisions{1, 1}).validity);
  EXPECT_TRUE(check_consensus(fp, {0, 1}, Decisions{0, 0}).validity);
}

TEST(ConsensusChecker, CorrectDisagreementBreaksBoth) {
  const FailurePattern fp(2);
  const auto v = check_consensus(fp, {0, 1}, Decisions{0, 1});
  EXPECT_FALSE(v.nonuniform_agreement);
  EXPECT_FALSE(v.uniform_agreement);
  EXPECT_FALSE(v.solves_nonuniform());
}

TEST(ConsensusChecker, FaultyDisagreementBreaksOnlyUniform) {
  FailurePattern fp(3);
  fp.set_crash(2, 100);
  const auto v = check_consensus(fp, {0, 0, 1}, Decisions{0, 0, 1});
  EXPECT_TRUE(v.nonuniform_agreement);
  EXPECT_FALSE(v.uniform_agreement);
  EXPECT_TRUE(v.solves_nonuniform());
  EXPECT_FALSE(v.solves_uniform());
  EXPECT_NE(v.detail.find("uniform"), std::string::npos);
}

TEST(ConsensusChecker, TwoFaultyDisagreeingBreaksOnlyUniform) {
  FailurePattern fp(4);
  fp.set_crash(2, 10);
  fp.set_crash(3, 10);
  const auto v = check_consensus(fp, {0, 0, 1, 0}, Decisions{0, 0, 1, 0});
  EXPECT_TRUE(v.nonuniform_agreement);
  EXPECT_FALSE(v.uniform_agreement);
}

TEST(ConsensusChecker, UndecidedProcessesDoNotDisagree) {
  const FailurePattern fp(3);
  const auto v =
      check_consensus(fp, {5, 5, 5}, Decisions{5, 5, 5});
  EXPECT_TRUE(v.uniform_agreement);
}

}  // namespace
}  // namespace nucon
