// Theorem 7.1, ONLY-IF direction: with t >= n/2, every candidate
// transformation from (Omega, Sigma^nu) to Sigma is defeated — either its
// emulated quorums on the two partition sides are disjoint (intersection
// violated in the merged run R') or a side never achieves completeness.
#include "core/partition_argument.hpp"

#include <gtest/gtest.h>

namespace nucon {
namespace {

TEST(PartitionArgument, IdentityCandidateIsDefeated) {
  for (Pid n : {2, 4, 6}) {
    const auto result =
        run_partition_argument(n, make_identity_candidate(), 4000, 1);
    EXPECT_EQ(result.outcome, PartitionOutcome::kIntersectionViolated)
        << "n=" << n << ": " << result.detail;
    EXPECT_FALSE(result.quorum_a.intersects(result.quorum_b));
    EXPECT_TRUE(result.quorum_a.is_subset_of(result.side_a));
    EXPECT_TRUE(result.quorum_b.is_subset_of(result.side_b));
  }
}

TEST(PartitionArgument, GossipUnionCandidateIsDefeated) {
  for (Pid n : {4, 6}) {
    const auto result =
        run_partition_argument(n, make_gossip_union_candidate(n), 4000, 2);
    EXPECT_EQ(result.outcome, PartitionOutcome::kIntersectionViolated)
        << "n=" << n << ": " << result.detail;
  }
}

TEST(PartitionArgument, WaitForNMinusTCandidateIsDefeated) {
  for (Pid n : {4, 6}) {
    const auto result = run_partition_argument(
        n, make_wait_for_n_minus_t_candidate(n), 6000, 3);
    EXPECT_EQ(result.outcome, PartitionOutcome::kIntersectionViolated)
        << "n=" << n << ": " << result.detail;
  }
}

TEST(PartitionArgument, MergedRunIsAValidRun) {
  // The defeat is witnessed by a genuine merged run (Lemma 2.2): the
  // schedule replays, and the witnesses' outputs in the merged run match
  // the originals.
  const auto result =
      run_partition_argument(6, make_identity_candidate(), 4000, 4);
  ASSERT_EQ(result.outcome, PartitionOutcome::kIntersectionViolated);
  EXPECT_TRUE(result.merged_run_valid);
  EXPECT_GE(result.tau, 0);
  EXPECT_NE(result.witness_a, -1);
  EXPECT_NE(result.witness_b, -1);
}

TEST(PartitionArgument, SidesPartitionTheSystem) {
  const auto result =
      run_partition_argument(5, make_identity_candidate(), 2000, 5);
  EXPECT_EQ(result.side_a | result.side_b, ProcessSet::full(5));
  EXPECT_FALSE(result.side_a.intersects(result.side_b));
  // Both sides have size <= ceil(n/2) <= t, so both crash sets are in E_t.
  EXPECT_LE(result.side_a.size(), 3);
  EXPECT_LE(result.side_b.size(), 3);
}

TEST(PartitionArgument, OddSystemSizes) {
  for (Pid n : {3, 5, 7}) {
    const auto result =
        run_partition_argument(n, make_identity_candidate(), 4000, 6);
    EXPECT_EQ(result.outcome, PartitionOutcome::kIntersectionViolated)
        << "n=" << n;
  }
}

}  // namespace
}  // namespace nucon
