// Happens-before reconstruction, decision provenance and trace diffing
// (the src/obs/ analysis layer). The hand-built trace pins cone semantics
// exactly; the algorithm matrix checks the self-diff invariant that makes
// --diff usable for determinism triage; the contamination hunt checks
// that provenance names the §6.3 chain on a real naive-algorithm run.
#include "obs/causal_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "obs/provenance.hpp"
#include "obs/trace_diff.hpp"
#include "trace/trace_reader.hpp"

namespace nucon {
namespace {

/// A 3-process trace exercising both edge kinds:
///
///   p0: step(t1), send #0 -> p1, send #1 -> p2
///   p1: step(t2) recv p0#0, deliver p0#0, decide 7
///   p2: step(t3) (lambda; never receives p0#1)
///
/// p0's sends reach p1 (delivered) and p2 (in flight forever).
std::string handmade_jsonl() {
  return
      R"({"k":"meta","v":1,"artifact":"handmade","expect":"uniform","n":3,"correct":[0,1,2]})"
      "\n"
      R"({"k":"step","t":1,"p":0})"                                        "\n"
      R"({"k":"send","t":1,"p":0,"to":1,"seq":0,"bytes":8})"               "\n"
      R"({"k":"send","t":1,"p":0,"to":2,"seq":1,"bytes":8})"               "\n"
      R"({"k":"step","t":2,"p":1,"from":0,"seq":0})"                       "\n"
      R"({"k":"deliver","t":2,"p":1,"from":0,"seq":0,"delay":1})"          "\n"
      R"({"k":"decide","t":2,"p":1,"value":7})"                            "\n"
      R"({"k":"step","t":3,"p":2})"                                        "\n";
}

// Event indices in the handmade trace.
constexpr obs::EventIndex kStep0 = 0;
constexpr obs::EventIndex kSendTo1 = 1;
constexpr obs::EventIndex kSendTo2 = 2;
constexpr obs::EventIndex kStep1 = 3;
constexpr obs::EventIndex kDeliver = 4;
constexpr obs::EventIndex kDecide = 5;
constexpr obs::EventIndex kStep2 = 6;

TEST(CausalGraphTest, HandmadeTraceEdgesAndCones) {
  const auto parsed = trace::parse_trace(handmade_jsonl());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->events.size(), 7u);
  const obs::CausalGraph g(*parsed);
  ASSERT_EQ(g.size(), 7u);

  // Program chains: p0 is 0 -> 1 -> 2, p1 is 3 -> 4 -> 5, p2 is just 6.
  EXPECT_EQ(g.node(kStep0).program_pred, obs::kNoEvent);
  EXPECT_EQ(g.node(kStep0).program_succ, kSendTo1);
  EXPECT_EQ(g.node(kSendTo1).program_pred, kStep0);
  EXPECT_EQ(g.node(kSendTo2).program_pred, kSendTo1);
  EXPECT_EQ(g.node(kSendTo2).program_succ, obs::kNoEvent);
  EXPECT_EQ(g.node(kDecide).program_pred, kDeliver);
  EXPECT_EQ(g.node(kStep2).program_pred, obs::kNoEvent);
  EXPECT_EQ(g.node(kStep2).program_succ, obs::kNoEvent);

  // Message edge: the deliver is matched to p0's send #0 and nothing else.
  EXPECT_EQ(g.node(kDeliver).message_pred, kSendTo1);
  EXPECT_EQ(g.node(kSendTo1).message_succ, kDeliver);
  EXPECT_EQ(g.node(kSendTo2).message_succ, obs::kNoEvent);

  // Cone of the decide: everything of p1, plus p0's history up to the
  // matched send — but NOT the second send or p2 (no path).
  const std::vector<obs::EventIndex> cone = g.causal_cone(kDecide);
  EXPECT_EQ(cone, (std::vector<obs::EventIndex>{kStep0, kSendTo1, kStep1,
                                                kDeliver, kDecide}));

  // Influence respects the edges just checked.
  EXPECT_TRUE(g.influences(kStep0, kDecide));
  EXPECT_TRUE(g.influences(kSendTo1, kDecide));
  EXPECT_FALSE(g.influences(kSendTo2, kDecide));
  EXPECT_FALSE(g.influences(kStep2, kDecide));
  EXPECT_FALSE(g.influences(kDecide, kStep0));
  EXPECT_TRUE(g.influences(kDecide, kDecide));

  // Future of the first send: itself, p0's own later send (program
  // order), the delivery, and p1's tail.
  EXPECT_EQ(g.causal_future(kSendTo1),
            (std::vector<obs::EventIndex>{kSendTo1, kSendTo2, kDeliver,
                                          kDecide}));

  // Registries.
  ASSERT_TRUE(g.first_decide_of(1).has_value());
  EXPECT_EQ(*g.first_decide_of(1), kDecide);
  EXPECT_FALSE(g.first_decide_of(0).has_value());
  EXPECT_EQ(g.decides(), std::vector<obs::EventIndex>{kDecide});
  EXPECT_EQ(g.undelivered_sends(), std::vector<obs::EventIndex>{kSendTo2});
}

TEST(CausalGraphTest, ConesAreTopologicallyClosed) {
  // On a real traced run: every predecessor edge of a cone member lands
  // inside the cone (the defining closure property), for every decide.
  exp::SweepPoint pt;
  pt.algo = exp::Algo::kAnuc;
  pt.n = 4;
  pt.faults = 1;
  pt.stabilize = 80;
  pt.seed = 3;
  pt.max_steps = 60'000;
  const auto parsed = trace::parse_trace(exp::trace_point(pt).jsonl);
  ASSERT_TRUE(parsed.has_value());
  const obs::CausalGraph g(*parsed);
  ASSERT_FALSE(g.decides().empty());
  for (const obs::EventIndex d : g.decides()) {
    const std::vector<obs::EventIndex> cone = g.causal_cone(d);
    ASSERT_FALSE(cone.empty());
    EXPECT_TRUE(std::is_sorted(cone.begin(), cone.end()));
    std::vector<bool> in_cone(g.size(), false);
    for (const obs::EventIndex e : cone) in_cone[e] = true;
    EXPECT_TRUE(in_cone[d]);
    for (const obs::EventIndex e : cone) {
      const obs::CausalGraph::Node& nd = g.node(e);
      if (nd.program_pred != obs::kNoEvent) {
        EXPECT_TRUE(in_cone[nd.program_pred]);
      }
      if (nd.message_pred != obs::kNoEvent) {
        EXPECT_TRUE(in_cone[nd.message_pred]);
      }
    }
  }
}

TEST(TraceDiffTest, SelfDiffIsEmptyForEveryAlgorithm) {
  // The determinism contract --diff is built on: a trace diffed against a
  // re-execution of the same point reports nothing, for every algorithm
  // in the registry.
  const exp::Algo algos[] = {
      exp::Algo::kAnuc,   exp::Algo::kStacked, exp::Algo::kMrMajority,
      exp::Algo::kMrSigma, exp::Algo::kNaive,  exp::Algo::kCt,
      exp::Algo::kBenOr,  exp::Algo::kFromScratch,
  };
  for (const exp::Algo algo : algos) {
    exp::SweepPoint pt;
    pt.algo = algo;
    pt.n = 4;
    pt.faults = 1;
    pt.stabilize = 60;
    pt.seed = 11;
    pt.max_steps = 40'000;
    const auto a = trace::parse_trace(exp::trace_point(pt).jsonl);
    const auto b = trace::parse_trace(exp::trace_point(pt).jsonl);
    ASSERT_TRUE(a.has_value()) << exp::algo_name(algo);
    ASSERT_TRUE(b.has_value()) << exp::algo_name(algo);
    const obs::TraceDiff d = obs::diff_traces(*a, *b);
    EXPECT_FALSE(d.diverged) << exp::algo_name(algo);
    EXPECT_FALSE(d.meta_differs) << exp::algo_name(algo);
    EXPECT_EQ(d.a_events, d.b_events) << exp::algo_name(algo);
  }
}

TEST(TraceDiffTest, DifferentSeedsDivergeWithContext) {
  exp::SweepPoint pt;
  pt.algo = exp::Algo::kAnuc;
  pt.n = 4;
  pt.faults = 1;
  pt.seed = 1;
  pt.max_steps = 40'000;
  const auto a = trace::parse_trace(exp::trace_point(pt).jsonl);
  pt.seed = 2;
  const auto b = trace::parse_trace(exp::trace_point(pt).jsonl);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  const obs::TraceDiff d = obs::diff_traces(*a, *b);
  ASSERT_TRUE(d.diverged);
  // Meta differs (different artifact seed is fine), but the event streams
  // must differ at the reported index and agree before it.
  EXPECT_NE(d.a_line, d.b_line);
  for (std::size_t i = 0; i < d.event_index; ++i) {
    EXPECT_EQ(a->events[i].raw, b->events[i].raw);
  }
  EXPECT_FALSE(d.a_context.empty());
  EXPECT_FALSE(d.b_context.empty());
}

TEST(ProvenanceTest, ContaminationChainOnANaiveViolation) {
  // Hunt the §6.3 witness the same way trace_recorder_test does, then
  // check the provenance layer tells the full story: the faulty decider
  // is named, the first contaminating edge lands on a correct process,
  // and the edge's timestamps are ordered sanely.
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    exp::SweepPoint pt;
    pt.algo = exp::Algo::kNaive;
    pt.n = 5;
    pt.faults = 1;
    pt.seed = seed;
    pt.max_steps = 50'000;
    const exp::TracedRun traced = exp::trace_point(pt);
    if (traced.stats.verdict.nonuniform_agreement) continue;

    const auto parsed = trace::parse_trace(traced.jsonl);
    ASSERT_TRUE(parsed.has_value());
    const obs::CausalGraph g(*parsed);
    const trace::DivergenceReport report = trace::find_divergence(*parsed);
    ASSERT_TRUE(report.nonuniform.found);

    // Explain both sides of the correct-vs-correct divergence. Every side
    // must be explainable; when a side's cone carries a faulty decision,
    // the contamination edge must obey the §6.3 shape. Not every
    // violating seed exhibits the chain (the naive quorums can disagree
    // before the faulty process decides), so keep hunting until one does.
    bool contamination_seen = false;
    for (const Pid p : {report.nonuniform.earlier_p, report.nonuniform.p}) {
      const auto decide = g.first_decide_of(p);
      ASSERT_TRUE(decide.has_value());
      const obs::Provenance prov = obs::explain_decide(g, *decide);
      EXPECT_EQ(prov.decider, p);
      EXPECT_TRUE(prov.decider_correct);
      EXPECT_GT(prov.cone_size, 0u);
      EXPECT_TRUE(prov.contributors.contains(p));
      if (!prov.contamination.found) continue;
      contamination_seen = true;
      const obs::ContaminationEdge& edge = prov.contamination;
      EXPECT_FALSE(parsed->is_correct(edge.faulty_decider));
      EXPECT_TRUE(parsed->is_correct(edge.to));
      EXPECT_GE(edge.send_t, edge.faulty_decide_t);
      EXPECT_GE(edge.deliver_t, edge.send_t);
      EXPECT_NE(edge.send_event, obs::kNoEvent);
      EXPECT_NE(edge.deliver_event, obs::kNoEvent);
      // The edge really is a matched send/deliver pair in the graph.
      EXPECT_EQ(g.node(edge.deliver_event).message_pred, edge.send_event);
      // Renderers cover the chain.
      const std::string text = obs::render_provenance(g, prov);
      EXPECT_NE(text.find("contamination"), std::string::npos);
      EXPECT_NE(text.find("p" + std::to_string(edge.faulty_decider)),
                std::string::npos);
      const std::string json = obs::provenance_json(g, prov);
      EXPECT_NE(json.find("\"faulty_decider\":" +
                          std::to_string(edge.faulty_decider)),
                std::string::npos);
    }
    if (contamination_seen) return;
  }
  FAIL() << "no contamination chain in 200 seeds — the naive algorithm's "
            "violations should include the §6.3 propagation story";
}

}  // namespace
}  // namespace nucon
