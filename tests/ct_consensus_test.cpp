// Chandra-Toueg rotating-coordinator consensus with <>S: uniform
// consensus whenever a majority of processes is correct.
#include "algo/ct_consensus.hpp"

#include <gtest/gtest.h>

#include "consensus_test_util.hpp"

namespace nucon {
namespace {

using testutil::SweepParam;

constexpr Time kStabilize = 120;
constexpr std::int64_t kMaxSteps = 150'000;

class CtSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(CtSweep, SolvesUniformConsensusWithMajority) {
  const FailurePattern fp = testutil::sweep_pattern(GetParam(), kStabilize - 20);
  ASSERT_TRUE(is_majority(fp.correct(), fp.n()));
  auto oracle = testutil::evt_strong(fp, kStabilize, GetParam().seed);

  SchedulerOptions opts;
  opts.seed = GetParam().seed;
  opts.max_steps = kMaxSteps;
  const auto stats =
      run_consensus(fp, oracle.top(), make_ct(GetParam().n),
                    testutil::mixed_proposals(GetParam().n), opts);

  EXPECT_TRUE(stats.all_correct_decided) << fp.to_string();
  EXPECT_TRUE(stats.verdict.solves_uniform()) << stats.verdict.detail;
}

std::vector<SweepParam> ct_params() {
  std::vector<SweepParam> out;
  for (Pid n : {3, 4, 5, 7}) {
    for (Pid faults = 0; 2 * faults < n; ++faults) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        out.push_back({n, faults, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CtSweep, testing::ValuesIn(ct_params()),
                         testutil::sweep_name);

TEST(CtConsensus, DecidesUnanimousValue) {
  const FailurePattern fp(3);
  auto oracle = testutil::evt_strong(fp, 0, 4);
  SchedulerOptions opts;
  opts.seed = 4;
  opts.max_steps = 60'000;
  const auto stats = run_consensus(fp, oracle.top(), make_ct(3), {8, 8, 8}, opts);
  ASSERT_TRUE(stats.all_correct_decided);
  for (Pid p = 0; p < 3; ++p) {
    EXPECT_EQ(stats.decisions[static_cast<std::size_t>(p)], 8);
  }
}

TEST(CtConsensus, ToleratesCrashedFirstCoordinator) {
  FailurePattern fp(5);
  fp.set_crash(0, 5);  // round-1 coordinator dies immediately
  auto oracle = testutil::evt_strong(fp, 80, 8);
  SchedulerOptions opts;
  opts.seed = 8;
  opts.max_steps = 150'000;
  const auto stats = run_consensus(fp, oracle.top(), make_ct(5),
                                   testutil::mixed_proposals(5), opts);
  EXPECT_TRUE(stats.all_correct_decided);
  EXPECT_TRUE(stats.verdict.solves_uniform()) << stats.verdict.detail;
}

TEST(CtConsensus, WithPerfectDetectorDecidesQuickly) {
  FailurePattern fp(4);
  fp.set_crash(3, 15);
  PerfectOracle oracle(fp);
  SchedulerOptions opts;
  opts.seed = 12;
  opts.max_steps = 60'000;
  const auto stats = run_consensus(fp, oracle, make_ct(4),
                                   testutil::mixed_proposals(4), opts);
  EXPECT_TRUE(stats.all_correct_decided);
  EXPECT_TRUE(stats.verdict.solves_uniform()) << stats.verdict.detail;
}

TEST(CtConsensus, SafetyHoldsEvenWhileBlockedWithoutMajority) {
  FailurePattern fp(4);
  fp.set_crash(1, 10);
  fp.set_crash(2, 10);
  auto oracle = testutil::evt_strong(fp, 60, 14);
  SchedulerOptions opts;
  opts.seed = 14;
  opts.max_steps = 40'000;
  const auto stats = run_consensus(fp, oracle.top(), make_ct(4),
                                   testutil::mixed_proposals(4), opts);
  EXPECT_TRUE(stats.verdict.uniform_agreement);
  EXPECT_TRUE(stats.verdict.validity);
}

}  // namespace
}  // namespace nucon
