// Local reductions between detector classes: run the emulation under a
// source-class oracle and check the emitted history against the TARGET
// class — the operational content of "D' is weaker than D".
#include "fd/reductions.hpp"

#include <gtest/gtest.h>

#include "fd/classic.hpp"
#include "fd/history.hpp"
#include "fd/sigma.hpp"
#include "fd/sigma_nu.hpp"
#include "sim/scheduler.hpp"

namespace nucon {
namespace {

struct RedParam {
  Pid n;
  Pid faults;
  std::uint64_t seed;
};

class ReductionSweep : public testing::TestWithParam<RedParam> {
 protected:
  static constexpr Time kStabilize = 50;

  FailurePattern pattern() const {
    const auto [n, faults, seed] = GetParam();
    Rng rng(seed * 104729);
    return Environment{n, static_cast<Pid>(n - 1)}.sample(rng, faults,
                                                          kStabilize - 10);
  }

  RecordedHistory emulate(const FailurePattern& fp, Oracle& oracle,
                          const AutomatonFactory& make) const {
    RecordedHistory emulated;
    SchedulerOptions opts;
    opts.seed = GetParam().seed;
    opts.max_steps = 1200;
    opts = with_emulation_recording(std::move(opts), emulated);
    (void)simulate(fp, oracle, make, opts);
    return emulated;
  }
};

TEST_P(ReductionSweep, PerfectIsInEveryWeakerSuspectClass) {
  const FailurePattern fp = pattern();
  PerfectOracle oracle(fp);
  const auto h = emulate(fp, oracle, make_identity_emulation());
  ASSERT_FALSE(h.empty());
  EXPECT_TRUE(check_perfect(h, fp).ok);
  EXPECT_TRUE(check_evt_perfect(h, fp).ok);
  EXPECT_TRUE(check_strong(h, fp).ok);
  EXPECT_TRUE(check_evt_strong(h, fp).ok);
}

TEST_P(ReductionSweep, EvtPerfectIsInEvtStrong) {
  const FailurePattern fp = pattern();
  SuspectsOptions so;
  so.stabilize_at = kStabilize;
  so.seed = GetParam().seed;
  EvtPerfectOracle oracle(fp, so);
  const auto h = emulate(fp, oracle, make_identity_emulation());
  EXPECT_TRUE(check_evt_strong(h, fp).ok);
}

TEST_P(ReductionSweep, SigmaIsInSigmaNu) {
  const FailurePattern fp = pattern();
  SigmaOptions so;
  so.stabilize_at = kStabilize;
  so.seed = GetParam().seed;
  SigmaOracle oracle(fp, so);
  const auto h = emulate(fp, oracle, make_identity_emulation());
  EXPECT_TRUE(check_sigma(h, fp).ok);
  EXPECT_TRUE(check_sigma_nu(h, fp).ok);
}

TEST_P(ReductionSweep, SigmaNuPlusIsInSigmaNu) {
  const FailurePattern fp = pattern();
  SigmaNuPlusOptions so;
  so.stabilize_at = kStabilize;
  so.seed = GetParam().seed;
  SigmaNuPlusOracle oracle(fp, so);
  const auto h = emulate(fp, oracle, make_identity_emulation());
  EXPECT_TRUE(check_sigma_nu_plus(h, fp).ok);
  EXPECT_TRUE(check_sigma_nu(h, fp).ok);
}

TEST_P(ReductionSweep, EvtPerfectToOmega) {
  const FailurePattern fp = pattern();
  SuspectsOptions so;
  so.stabilize_at = kStabilize;
  so.seed = GetParam().seed;
  EvtPerfectOracle oracle(fp, so);
  const auto h = emulate(fp, oracle, make_evt_perfect_to_omega(fp.n()));
  ASSERT_FALSE(h.empty());
  const auto result = check_omega(h, fp);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST_P(ReductionSweep, PerfectToOmegaIsImmediatelyStable) {
  // With P (never a false suspicion), the emitted leader is the smallest
  // alive process at every sample — in particular correct once all faulty
  // processes crashed.
  const FailurePattern fp = pattern();
  PerfectOracle oracle(fp);
  const auto h = emulate(fp, oracle, make_evt_perfect_to_omega(fp.n()));
  EXPECT_TRUE(check_omega(h, fp).ok);
  for (const Sample& s : h.samples()) {
    EXPECT_TRUE(fp.alive_at(s.value.leader(), s.t));
  }
}

std::vector<RedParam> reduction_params() {
  std::vector<RedParam> out;
  for (Pid n : {2, 3, 5, 8}) {
    for (Pid faults = 0; faults < n; faults += (n > 4 ? 2 : 1)) {
      for (std::uint64_t seed : {1ull, 2ull}) {
        out.push_back({n, faults, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReductionSweep,
                         testing::ValuesIn(reduction_params()),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_f" +
                                  std::to_string(info.param.faults) + "_s" +
                                  std::to_string(info.param.seed);
                         });

TEST(Reductions, OmegaCannotBeExtractedFromStrongAccuracyAloneNote) {
  // Negative control: the <>P -> Omega rule applied to <>S output does NOT
  // yield Omega (the never-suspected process of <>S need not be the
  // smallest unsuspected at every module). Verify the checker catches the
  // mismatch for at least one pattern/seed — i.e. the reduction genuinely
  // depends on <>P's eventual strong accuracy.
  int failures = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    FailurePattern fp(4);
    fp.set_crash(0, 20);  // the smallest process is faulty
    SuspectsOptions so;
    so.stabilize_at = 1'000'000;  // never stabilizes within the horizon
    so.seed = seed;
    EvtStrongOracle oracle(fp, so);
    RecordedHistory emulated;
    SchedulerOptions opts;
    opts.seed = seed;
    opts.max_steps = 1200;
    opts = with_emulation_recording(std::move(opts), emulated);
    (void)simulate(fp, oracle, make_evt_perfect_to_omega(4), opts);
    if (!check_omega(emulated, fp).ok) ++failures;
  }
  EXPECT_GT(failures, 0);
}

}  // namespace
}  // namespace nucon
