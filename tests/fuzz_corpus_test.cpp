// Regression corpus: every minimized genome committed under tests/corpus/
// replays to exactly the verdict recorded in its `expected` line, and its
// serialization round-trips byte for byte.
//
// The corpus is the fuzzer's long-term memory: a find minimized once (the
// naive Sigma^nu contamination, the n=3 split-quorum shape, clean runs of
// the safe algorithms) keeps being re-validated on every build, under
// every sanitizer preset, at any thread count — execute_genome is a pure
// function, so "expected nonuniform" is as strong as a golden file.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/genome.hpp"

namespace nucon::fuzz {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(NUCON_TEST_CORPUS_DIR)) {
    if (entry.path().extension() == ".genome") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

TEST(FuzzCorpus, DirectoryIsNonempty) {
  EXPECT_GE(corpus_files().size(), 4u)
      << "tests/corpus/ lost its committed genomes";
}

TEST(FuzzCorpus, EveryGenomeReplaysToItsRecordedVerdict) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = slurp(path);
    const auto genome = Genome::parse(text);
    ASSERT_TRUE(genome.has_value()) << "unparseable corpus entry";

    // Byte-for-byte: the file IS the canonical serialization.
    EXPECT_EQ(genome->to_string(), text);

    // Committed entries must say what they are expected to do; "ok" means
    // no violation.
    ASSERT_FALSE(genome->expected.empty())
        << "corpus entries must carry an `expected` line";

    ExecOptions eo;
    eo.collect_coverage = false;
    const ExecutionResult result = execute_genome(*genome, eo);
    const std::string want =
        genome->expected == "ok" ? std::string() : genome->expected;
    EXPECT_EQ(result.violation, want);
  }
}

TEST(FuzzCorpus, ReplayIsBitStableAcrossRepetition) {
  // Two replays of every entry produce identical traces — the property
  // that lets the same files validate under default, asan and tsan
  // presets interchangeably.
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const auto genome = Genome::parse(slurp(path));
    ASSERT_TRUE(genome.has_value());
    ExecOptions eo;
    eo.collect_coverage = false;
    const ExecutionResult a = execute_genome(*genome, eo);
    const ExecutionResult b = execute_genome(*genome, eo);
    EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
    EXPECT_EQ(a.violation, b.violation);
  }
}

}  // namespace
}  // namespace nucon::fuzz
