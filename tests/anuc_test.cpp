// A_nuc correctness sweeps (paper Theorem 6.27): termination, validity and
// nonuniform agreement under (Omega, Sigma^nu+), across system sizes,
// fault counts, adversarial faulty-quorum behaviors and seeds — including
// environments with a correct minority, where majority-based algorithms
// cannot terminate.
#include "core/anuc.hpp"

#include <gtest/gtest.h>

#include "algo/naive_sigma_nu.hpp"
#include "consensus_test_util.hpp"

namespace nucon {
namespace {

using testutil::SweepParam;

constexpr Time kStabilize = 120;
constexpr std::int64_t kMaxSteps = 120'000;

class AnucSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(AnucSweep, SolvesNonuniformConsensusUnderAdversarialOracle) {
  const FailurePattern fp = testutil::sweep_pattern(GetParam(), kStabilize - 20);
  auto oracle = testutil::omega_sigma_nu_plus(fp, kStabilize, GetParam().seed);

  SchedulerOptions opts;
  opts.seed = GetParam().seed;
  opts.max_steps = kMaxSteps;
  const auto stats =
      run_consensus(fp, oracle.top(), make_anuc(GetParam().n),
                    testutil::mixed_proposals(GetParam().n), opts);

  EXPECT_TRUE(stats.all_correct_decided) << fp.to_string();
  EXPECT_TRUE(stats.verdict.termination) << stats.verdict.detail;
  EXPECT_TRUE(stats.verdict.validity) << stats.verdict.detail;
  EXPECT_TRUE(stats.verdict.nonuniform_agreement) << stats.verdict.detail;
}

TEST_P(AnucSweep, UnanimousProposalsDecideTheProposedValue) {
  const FailurePattern fp = testutil::sweep_pattern(GetParam(), kStabilize - 20);
  auto oracle =
      testutil::omega_sigma_nu_plus(fp, kStabilize, GetParam().seed + 500);

  SchedulerOptions opts;
  opts.seed = GetParam().seed + 500;
  opts.max_steps = kMaxSteps;
  const std::vector<Value> sevens(static_cast<std::size_t>(GetParam().n), 7);
  const auto stats =
      run_consensus(fp, oracle.top(), make_anuc(GetParam().n), sevens, opts);

  ASSERT_TRUE(stats.all_correct_decided);
  for (Pid p : fp.correct()) {
    EXPECT_EQ(stats.decisions[static_cast<std::size_t>(p)], 7);
  }
}

std::vector<SweepParam> anuc_params() {
  std::vector<SweepParam> out;
  for (Pid n : {2, 3, 4, 5, 6}) {
    for (Pid faults = 0; faults < n; ++faults) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        out.push_back({n, faults, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AnucSweep, testing::ValuesIn(anuc_params()),
                         testutil::sweep_name);

TEST(Anuc, ToleratesCorrectMinority) {
  // 1 correct out of 5: impossible for majority-based algorithms, fine for
  // (Omega, Sigma^nu+).
  FailurePattern fp(5);
  for (Pid p = 1; p < 5; ++p) fp.set_crash(p, 40 + 10 * p);
  auto oracle = testutil::omega_sigma_nu_plus(fp, 150, 9);

  SchedulerOptions opts;
  opts.seed = 9;
  opts.max_steps = 120'000;
  const auto stats = run_consensus(fp, oracle.top(), make_anuc(5),
                                   testutil::mixed_proposals(5), opts);
  EXPECT_TRUE(stats.all_correct_decided);
  EXPECT_TRUE(stats.verdict.solves_nonuniform()) << stats.verdict.detail;
}

TEST(Anuc, NoFailuresFastPath) {
  const FailurePattern fp(4);
  auto oracle = testutil::omega_sigma_nu_plus(fp, 0, 11);
  SchedulerOptions opts;
  opts.seed = 11;
  opts.max_steps = 60'000;
  const auto stats = run_consensus(fp, oracle.top(), make_anuc(4),
                                   {5, 5, 9, 9}, opts);
  EXPECT_TRUE(stats.all_correct_decided);
  EXPECT_TRUE(stats.verdict.solves_nonuniform());
  // With an immediately-stable oracle the decision lands within few rounds.
  EXPECT_LE(stats.decide_round, 6);
}

TEST(Anuc, MultivaluedProposals) {
  const FailurePattern fp(5);
  auto oracle = testutil::omega_sigma_nu_plus(fp, 50, 13);
  SchedulerOptions opts;
  opts.seed = 13;
  opts.max_steps = 120'000;
  const auto stats = run_consensus(fp, oracle.top(), make_anuc(5),
                                   {10, 20, 30, 40, 50}, opts);
  EXPECT_TRUE(stats.verdict.solves_nonuniform()) << stats.verdict.detail;
}

TEST(Anuc, BenignFaultyBehaviorAlsoWorks) {
  FailurePattern fp(4);
  fp.set_crash(0, 60);  // crash the would-be kernel/leader
  auto oracle = testutil::omega_sigma_nu_plus(fp, 100, 17,
                                              FaultyQuorumBehavior::kBenign);
  SchedulerOptions opts;
  opts.seed = 17;
  opts.max_steps = 120'000;
  const auto stats = run_consensus(fp, oracle.top(), make_anuc(4),
                                   testutil::mixed_proposals(4), opts);
  EXPECT_TRUE(stats.verdict.solves_nonuniform()) << stats.verdict.detail;
}

TEST(Anuc, DecisionIsIrrevocable) {
  const FailurePattern fp(3);
  auto oracle = testutil::omega_sigma_nu_plus(fp, 0, 19);
  SchedulerOptions opts;
  opts.seed = 19;
  opts.max_steps = 20'000;
  // Run far beyond the first decision (no early stop).
  opts.stop_when = [](const auto&) { return false; };

  std::vector<std::optional<Value>> first_decision(3);
  opts.on_step = [&first_decision](
                     const StepRecord& rec,
                     const std::vector<std::unique_ptr<Automaton>>& all) {
    const auto* c = dynamic_cast<const ConsensusAutomaton*>(
        all[static_cast<std::size_t>(rec.p)].get());
    const auto d = c->decision();
    auto& first = first_decision[static_cast<std::size_t>(rec.p)];
    if (d && !first) first = d;
    if (d && first) EXPECT_EQ(d, first);  // never changes once set
  };
  const auto stats = run_consensus(fp, oracle.top(), make_anuc(3),
                                   {0, 1, 1}, opts);
  for (Pid p = 0; p < 3; ++p) {
    EXPECT_EQ(stats.decisions[static_cast<std::size_t>(p)],
              first_decision[static_cast<std::size_t>(p)]);
  }
}

TEST(AnucAblation, WithoutDistrustAgreementBreaks) {
  // Removing the distrust test (Fig. 4 lines 18/28) reverts A_nuc to a
  // contaminable algorithm: the adversarial family finds violations.
  const ContaminationSetup setup;
  const AnucOptions no_distrust{.use_distrust = false,
                                .use_quorum_awareness = true};
  const int violations = count_nonuniform_violations(
      setup, make_anuc(setup.n, no_distrust), 300, /*use_sigma_nu_plus=*/true);
  EXPECT_GT(violations, 0);
}

TEST(AnucAblation, FullAlgorithmSurvivesTheSameSeeds) {
  const ContaminationSetup setup;
  const int violations = count_nonuniform_violations(
      setup, make_anuc(setup.n), 300, /*use_sigma_nu_plus=*/true);
  EXPECT_EQ(violations, 0);
}

TEST(AnucAblation, AblationsDoNotAffectLiveness) {
  // Both ablated variants still terminate under benign conditions; the
  // mechanisms are safety devices.
  for (const AnucOptions options :
       {AnucOptions{.use_distrust = false, .use_quorum_awareness = true},
        AnucOptions{.use_distrust = true, .use_quorum_awareness = false}}) {
    FailurePattern fp(4);
    fp.set_crash(3, 60);
    auto oracle = testutil::omega_sigma_nu_plus(fp, 100, 31);
    SchedulerOptions opts;
    opts.seed = 31;
    opts.max_steps = 120'000;
    const auto stats = run_consensus(fp, oracle.top(), make_anuc(4, options),
                                     testutil::mixed_proposals(4), opts);
    EXPECT_TRUE(stats.all_correct_decided);
    EXPECT_TRUE(stats.verdict.validity);
  }
}

TEST(Anuc, HistoriesGrowButStayBounded) {
  const FailurePattern fp(4);
  auto oracle = testutil::omega_sigma_nu_plus(fp, 0, 23);
  SchedulerOptions opts;
  opts.seed = 23;
  opts.max_steps = 30'000;
  SimResult sim = simulate_consensus(fp, oracle.top(), make_anuc(4),
                                     {0, 0, 1, 1}, opts);
  for (Pid p = 0; p < 4; ++p) {
    const auto* a = dynamic_cast<const Anuc*>(
        sim.automata[static_cast<std::size_t>(p)].get());
    ASSERT_NE(a, nullptr);
    EXPECT_GT(a->history().size(), 0u);
    // At most n * 2^n distinct (process, quorum) entries for n=4.
    EXPECT_LE(a->history().size(), 4u * 16u);
    EXPECT_GT(a->distrust_calls(), 0);
  }
}

}  // namespace
}  // namespace nucon
