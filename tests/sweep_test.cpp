// Sweep engine determinism: the same grid must produce bit-identical
// aggregates and identical per-job verdicts for any thread count, failed
// expectations must emit replay artifacts, and artifacts must round-trip
// and re-execute to the original run.
#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <sstream>

namespace nucon::exp {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.algos = {Algo::kAnuc, Algo::kNaive};
  grid.ns = {4};
  grid.fault_counts = {1};
  grid.stabilizes = {80};
  grid.seed_begin = 1;
  grid.seed_count = 6;
  grid.max_steps = 60'000;
  return grid;
}

void expect_same_stats(const ConsensusRunStats& a, const ConsensusRunStats& b) {
  EXPECT_EQ(a.verdict.termination, b.verdict.termination);
  EXPECT_EQ(a.verdict.validity, b.verdict.validity);
  EXPECT_EQ(a.verdict.nonuniform_agreement, b.verdict.nonuniform_agreement);
  EXPECT_EQ(a.verdict.uniform_agreement, b.verdict.uniform_agreement);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.max_round, b.max_round);
  EXPECT_EQ(a.decide_round, b.decide_round);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.all_correct_decided, b.all_correct_decided);
}

void expect_same_accumulator(const Accumulator& a, const Accumulator& b) {
  EXPECT_EQ(a.count(), b.count());
  // Bitwise double equality on purpose: the engine promises bit-identical
  // aggregation for any thread count, not merely "close".
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.mean(), b.mean());
}

void expect_same_aggregate(const SweepAggregate& a, const SweepAggregate& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.undecided, b.undecided);
  EXPECT_EQ(a.termination_failures, b.termination_failures);
  EXPECT_EQ(a.uniform_violations, b.uniform_violations);
  EXPECT_EQ(a.nonuniform_violations, b.nonuniform_violations);
  EXPECT_EQ(a.expectation_failures, b.expectation_failures);
  expect_same_accumulator(a.decide_rounds, b.decide_rounds);
  expect_same_accumulator(a.steps, b.steps);
  expect_same_accumulator(a.messages, b.messages);
  expect_same_accumulator(a.kbytes, b.kbytes);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(SweepTest, GridExpansionIsDeterministicAndSkipsInfeasibleCells) {
  SweepGrid grid = small_grid();
  grid.ns = {3, 4};
  grid.fault_counts = {0, 3};  // faults=3 infeasible at n=3, feasible at n=4
  const auto points = grid.expand();
  // algos(2) x [n=3: 1 feasible fault count, n=4: 2] x stabilizes(1) x
  // modes(1) x seeds(6) = 2 * 3 * 6.
  ASSERT_EQ(points.size(), 36u);
  EXPECT_EQ(grid.expand(), points);  // same order every time
  for (const SweepPoint& pt : points) EXPECT_LT(pt.faults, pt.n);
}

TEST(SweepTest, AggregatesBitIdenticalAcrossThreadCounts) {
  const SweepGrid grid = small_grid();
  const SweepResult t1 = SweepRunner(1).run(grid);
  const SweepResult t2 = SweepRunner(2).run(grid);
  const SweepResult t8 = SweepRunner(8).run(grid);

  ASSERT_EQ(t1.jobs.size(), grid.expand().size());
  ASSERT_EQ(t2.jobs.size(), t1.jobs.size());
  ASSERT_EQ(t8.jobs.size(), t1.jobs.size());

  for (std::size_t i = 0; i < t1.jobs.size(); ++i) {
    EXPECT_EQ(t2.jobs[i].point, t1.jobs[i].point);
    EXPECT_EQ(t8.jobs[i].point, t1.jobs[i].point);
    EXPECT_EQ(t2.jobs[i].ok, t1.jobs[i].ok);
    EXPECT_EQ(t8.jobs[i].ok, t1.jobs[i].ok);
    expect_same_stats(t2.jobs[i].stats, t1.jobs[i].stats);
    expect_same_stats(t8.jobs[i].stats, t1.jobs[i].stats);
  }
  expect_same_aggregate(t2.aggregate, t1.aggregate);
  expect_same_aggregate(t8.aggregate, t1.aggregate);

  // The sweep actually ran: every job of this grid decides.
  EXPECT_EQ(t1.aggregate.runs, 12);
  EXPECT_GT(t1.aggregate.steps.sum(), 0.0);
}

TEST(SweepTest, AnucMeetsExpectationNaiveViolationsAreCountedNotFatal) {
  SweepGrid grid = small_grid();
  grid.seed_count = 12;
  const SweepResult r = SweepRunner(2).run(grid);
  for (const JobOutcome& job : r.jobs) {
    if (job.point.algo == Algo::kAnuc) {
      EXPECT_TRUE(job.stats.verdict.solves_nonuniform())
          << ReplayArtifact{job.point}.to_string();
    } else {
      // The broken §6.3 substitution is expected-broken: never an artifact.
      EXPECT_TRUE(job.ok);
    }
  }
  EXPECT_TRUE(r.aggregate.failures.empty());
}

TEST(SweepTest, FailedExpectationEmitsReplayArtifactThatReplaysIdentically) {
  // mr-majority with 3 of 5 crashed early can never decide: termination
  // fails, the uniform expectation fails, and each point must surface as a
  // replay artifact in expansion order.
  SweepGrid grid;
  grid.algos = {Algo::kMrMajority};
  grid.ns = {5};
  grid.fault_counts = {3};
  grid.stabilizes = {40};
  grid.crash_at = 5;
  grid.seed_begin = 1;
  grid.seed_count = 3;
  grid.max_steps = 4'000;
  const SweepResult r = SweepRunner(4).run(grid);

  ASSERT_EQ(r.aggregate.runs, 3);
  EXPECT_EQ(r.aggregate.expectation_failures, 3);
  EXPECT_EQ(r.aggregate.termination_failures, 3);
  ASSERT_EQ(r.aggregate.failures.size(), 3u);

  for (std::size_t i = 0; i < r.aggregate.failures.size(); ++i) {
    const ReplayArtifact& artifact = r.aggregate.failures[i];
    EXPECT_EQ(artifact.point, r.jobs[i].point);

    // Round-trip through the CLI string form...
    const auto parsed = ReplayArtifact::parse(artifact.to_string());
    ASSERT_TRUE(parsed.has_value()) << artifact.to_string();
    EXPECT_EQ(*parsed, artifact);

    // ...and serial re-execution reproduces the worker thread's run exactly.
    expect_same_stats(replay_failure(*parsed), r.jobs[i].stats);
  }
}

TEST(SweepTest, ArtifactRoundTripsBoundarySeedsForEveryAlgoAndMode) {
  // Regression: parse() once pushed the seed through the generic signed
  // std::stoll path, so any seed >= 2^63 threw and the artifact of such a
  // run could never be replayed. Property-check the full string round-trip
  // at the unsigned boundaries, across the whole algo/mode registry.
  const std::uint64_t seeds[] = {0, std::uint64_t{1} << 63,
                                 std::numeric_limits<std::uint64_t>::max()};
  const Algo algos[] = {Algo::kAnuc,  Algo::kStacked, Algo::kMrMajority,
                        Algo::kMrSigma, Algo::kNaive, Algo::kCt,
                        Algo::kBenOr, Algo::kFromScratch};
  const FaultyQuorumBehavior modes[] = {
      FaultyQuorumBehavior::kBenign, FaultyQuorumBehavior::kNoise,
      FaultyQuorumBehavior::kAdversarialDisjoint};
  for (const std::uint64_t seed : seeds) {
    for (const Algo algo : algos) {
      for (const FaultyQuorumBehavior mode : modes) {
        ReplayArtifact artifact;
        artifact.point.algo = algo;
        artifact.point.faulty_mode = mode;
        artifact.point.seed = seed;
        const std::string line = artifact.to_string();
        const auto parsed = ReplayArtifact::parse(line);
        ASSERT_TRUE(parsed.has_value()) << line;
        EXPECT_EQ(*parsed, artifact) << line;
        EXPECT_EQ(parsed->point.seed, seed) << line;
      }
    }
  }
}

TEST(SweepTest, ArtifactParseRejectsNegativeSeed) {
  EXPECT_FALSE(
      ReplayArtifact::parse("algo=anuc n=5 faults=2 stab=120 crash=0 "
                            "mode=adversarial steps=200000 seed=-1")
          .has_value());
}

TEST(SweepTest, CrashWindowIsNonDegenerateForSmallStabilization) {
  // Regression: crash times were drawn from rng.range(10, stabilize - 10),
  // which for stabilize <= 21 collapsed to an (effectively) constant window
  // and pinned every "random" crash to the same instant. The window must
  // stay open and actually spread crashes for small stabilization values.
  for (const Time stabilize : {Time{12}, Time{20}, Time{21}, Time{40}}) {
    std::set<Time> crash_times;
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
      SweepPoint pt;
      pt.n = 5;
      pt.faults = 2;
      pt.stabilize = stabilize;
      pt.crash_at = 0;  // spread randomly
      pt.seed = seed;
      const FailurePattern fp = failure_pattern_of(pt);
      ASSERT_EQ(fp.faulty().size(), 2);
      for (const Pid p : fp.faulty()) {
        const Time at = fp.crash_time(p);
        EXPECT_GE(at, 10);
        crash_times.insert(at);
      }
    }
    EXPECT_GT(crash_times.size(), 1u)
        << "all crashes pinned to one instant at stabilize=" << stabilize;
  }
}

TEST(SweepTest, BenOrDecideRoundReachesTheAggregate) {
  // Regression: the harness never read Ben-Or's decided round, so every
  // Ben-Or sweep reported decide_round == 0 and the aggregate's
  // decide_rounds accumulator stayed empty.
  SweepGrid grid;
  grid.algos = {Algo::kBenOr};
  grid.ns = {4};
  grid.fault_counts = {1};
  grid.stabilizes = {80};
  grid.seed_begin = 1;
  grid.seed_count = 4;
  grid.max_steps = 120'000;
  const SweepResult r = SweepRunner(2).run(grid);
  ASSERT_EQ(r.aggregate.runs, 4);
  for (const JobOutcome& job : r.jobs) {
    if (job.stats.all_correct_decided) {
      EXPECT_GT(job.stats.decide_round, 0)
          << ReplayArtifact{job.point}.to_string();
    }
  }
  EXPECT_GT(r.aggregate.decide_rounds.count(), 0);
}

TEST(SweepTest, ArtifactParseRejectsGarbage) {
  EXPECT_FALSE(ReplayArtifact::parse("").has_value());
  EXPECT_FALSE(ReplayArtifact::parse("n=5 seed=3").has_value());  // no algo
  EXPECT_FALSE(ReplayArtifact::parse("algo=warp n=5").has_value());
  EXPECT_FALSE(ReplayArtifact::parse("algo=anuc n=notanumber").has_value());
  EXPECT_FALSE(ReplayArtifact::parse("algo=anuc n=5 faults=5").has_value());
  EXPECT_FALSE(ReplayArtifact::parse("algo=anuc bogus-token").has_value());
  EXPECT_FALSE(ReplayArtifact::parse("algo=anuc n=5 extra=1").has_value());
}

TEST(SweepTest, AlgoNamesRoundTrip) {
  for (Algo a : {Algo::kAnuc, Algo::kStacked, Algo::kMrMajority,
                 Algo::kMrSigma, Algo::kNaive, Algo::kCt, Algo::kBenOr,
                 Algo::kFromScratch}) {
    const auto parsed = parse_algo(algo_name(a));
    ASSERT_TRUE(parsed.has_value()) << algo_name(a);
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_FALSE(parse_algo("paxos").has_value());
}

TEST(SweepTest, SimulatePointMatchesRunPointSummary) {
  SweepPoint pt;
  pt.algo = Algo::kAnuc;
  pt.n = 4;
  pt.faults = 1;
  pt.stabilize = 80;
  pt.seed = 3;
  pt.max_steps = 60'000;
  const ConsensusRunStats stats = run_point(pt);
  const SimResult sim = simulate_point(pt);
  EXPECT_EQ(sim.run.steps.size(), stats.steps);
  EXPECT_EQ(sim.messages_sent, stats.messages_sent);
  EXPECT_EQ(sim.bytes_sent, stats.bytes_sent);
  EXPECT_EQ(decisions_of(sim.automata), stats.decisions);
}

TEST(SweepTest, InfeasiblePointIsRejected) {
  SweepPoint pt;
  pt.n = 3;
  pt.faults = 3;
  EXPECT_THROW((void)run_point(pt), std::invalid_argument);
  EXPECT_THROW((void)SweepRunner(1).run(std::vector<SweepPoint>{pt}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nucon::exp
