// Regression tests for the hot-path allocation overhaul:
//
//   - SchedulerOptions::record_run only controls whether the schedule is
//     recorded; verdicts, decisions, costs and metrics stay bit-identical
//     with it off (the mode sweep workers run in);
//   - broadcast-heavy algorithms share their encoded payloads instead of
//     copying once per destination (the PayloadCounters contract behind
//     bench_hotpath's "reduction" column);
//   - with recording off in the workers, sweep aggregates and the emitted
//     report (timings aside) remain bit-identical for any thread count.
#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include "algo/harness.hpp"
#include "algo/mr_consensus.hpp"
#include "dag/dag_builder.hpp"
#include "fd/omega.hpp"
#include "fd/scripted.hpp"
#include "obs/report.hpp"
#include "util/shared_bytes.hpp"

namespace nucon {
namespace {

// --- record_run ----------------------------------------------------------

SchedulerOptions mr_opts(bool record) {
  SchedulerOptions opts;
  opts.seed = 7;
  opts.max_steps = 50'000;
  opts.record_run = record;
  return opts;
}

ConsensusRunStats run_mr(bool record) {
  FailurePattern fp(5);
  fp.set_crash(4, 20);
  OmegaOptions oo;
  oo.stabilize_at = 60;
  oo.seed = 7;
  OmegaOracle omega(fp, oo);
  return run_consensus(fp, omega, make_mr_majority(5), {0, 1, 0, 1, 0},
                       mr_opts(record));
}

SimResult sim_mr(bool record) {
  FailurePattern fp(5);
  fp.set_crash(4, 20);
  OmegaOptions oo;
  oo.stabilize_at = 60;
  oo.seed = 7;
  OmegaOracle omega(fp, oo);
  return simulate_consensus(fp, omega, make_mr_majority(5), {0, 1, 0, 1, 0},
                            mr_opts(record));
}

TEST(RecordRun, OffLeavesStatsIdentical) {
  const ConsensusRunStats on = run_mr(true);
  const ConsensusRunStats off = run_mr(false);
  EXPECT_EQ(on.verdict.termination, off.verdict.termination);
  EXPECT_EQ(on.verdict.validity, off.verdict.validity);
  EXPECT_EQ(on.verdict.nonuniform_agreement, off.verdict.nonuniform_agreement);
  EXPECT_EQ(on.verdict.uniform_agreement, off.verdict.uniform_agreement);
  EXPECT_EQ(on.decisions, off.decisions);
  EXPECT_EQ(on.max_round, off.max_round);
  EXPECT_EQ(on.decide_round, off.decide_round);
  EXPECT_EQ(on.messages_sent, off.messages_sent);
  EXPECT_EQ(on.bytes_sent, off.bytes_sent);
  EXPECT_EQ(on.steps, off.steps);
  EXPECT_EQ(on.end_time, off.end_time);
  EXPECT_EQ(on.all_correct_decided, off.all_correct_decided);
  EXPECT_EQ(on.metrics, off.metrics);
}

TEST(RecordRun, OffSkipsScheduleOnly) {
  const SimResult on = sim_mr(true);
  const SimResult off = sim_mr(false);
  ASSERT_GT(on.steps_taken, 0u);
  EXPECT_EQ(on.run.steps.size(), on.steps_taken);
  EXPECT_TRUE(off.run.steps.empty());
  EXPECT_EQ(off.steps_taken, on.steps_taken);
  EXPECT_EQ(off.end_time, on.end_time);
  EXPECT_EQ(off.messages_sent, on.messages_sent);
  EXPECT_EQ(off.bytes_sent, on.bytes_sent);
  EXPECT_EQ(off.undelivered_at_end, on.undelivered_at_end);
  EXPECT_EQ(off.metrics, on.metrics);
}

TEST(RecordRun, SweepWorkerMatchesTracedRun) {
  // run_point (record_run off, the sweep-worker body) must agree with
  // trace_point (record_run on, recorder attached) on every folded field.
  exp::SweepPoint pt;
  pt.algo = exp::Algo::kAnuc;
  pt.n = 5;
  pt.max_steps = 50'000;
  const ConsensusRunStats off = exp::run_point(pt);
  const ConsensusRunStats on = exp::trace_point(pt).stats;
  EXPECT_EQ(on.verdict.solves_nonuniform(), off.verdict.solves_nonuniform());
  EXPECT_EQ(on.decisions, off.decisions);
  EXPECT_EQ(on.steps, off.steps);
  EXPECT_EQ(on.messages_sent, off.messages_sent);
  EXPECT_EQ(on.bytes_sent, off.bytes_sent);
  EXPECT_EQ(on.metrics, off.metrics);
}

// --- shared broadcast payloads -------------------------------------------

double reduction(const PayloadCounters& c) {
  const std::uint64_t total = c.copied_bytes + c.shared_bytes;
  if (total == 0) return 1.0;
  return 1.0 - static_cast<double>(c.copied_bytes) / static_cast<double>(total);
}

PayloadCounters measure_point(exp::Algo algo, Pid n) {
  exp::SweepPoint pt;
  pt.algo = algo;
  pt.n = n;
  pt.max_steps = 30'000;
  const PayloadCounters before = SharedBytes::counters();
  (void)exp::run_point(pt);
  return SharedBytes::counters() - before;
}

// An n-1-way broadcast deep-copies at most one sealed scratch buffer where
// copy-per-destination copied n-1 times, so per-byte the reduction is at
// least (n-2)/(n-1); pure-move payloads push it higher.
TEST(SharedPayloads, AnucBroadcastsShareNotCopy) {
  const Pid n = 6;
  const PayloadCounters c = measure_point(exp::Algo::kAnuc, n);
  ASSERT_GT(c.broadcasts, 0u);
  ASSERT_GT(c.shares, 0u);
  EXPECT_GE(reduction(c), static_cast<double>(n - 2) / (n - 1));
}

TEST(SharedPayloads, StackedNucBroadcastsShareNotCopy) {
  const Pid n = 6;
  const PayloadCounters c = measure_point(exp::Algo::kStacked, n);
  ASSERT_GT(c.broadcasts, 0u);
  ASSERT_GT(c.shares, 0u);
  EXPECT_GE(reduction(c), static_cast<double>(n - 2) / (n - 1));
}

TEST(SharedPayloads, DagGossipCopiesNothing) {
  // A_DAG gossip moves the freshly serialized DAG into its payload; the
  // n-1 fan-out is all shares, so zero bytes are deep-copied.
  const Pid n = 5;
  FailurePattern fp(n);
  ScriptedOracle oracle([](Pid, Time) { return FdValue{}; });
  SchedulerOptions opts;
  opts.seed = 3;
  opts.max_steps = 4'000;
  const PayloadCounters before = SharedBytes::counters();
  const SimResult res = simulate(fp, oracle, make_adag(n), opts);
  const PayloadCounters c = SharedBytes::counters() - before;
  ASSERT_GT(res.steps_taken, 0u);
  ASSERT_GT(c.broadcasts, 0u);
  ASSERT_GT(c.shares, 0u);
  EXPECT_EQ(c.copied_bytes, 0u);
}

// --- thread-count determinism with recording off -------------------------

TEST(SweepDeterminism, ReportIdenticalAcrossThreadCounts) {
  exp::SweepGrid grid;
  grid.algos = {exp::Algo::kAnuc, exp::Algo::kMrSigma};
  grid.ns = {5};
  grid.seed_count = 3;
  grid.max_steps = 30'000;

  const exp::SweepResult one = exp::SweepRunner(1).run(grid);
  const exp::SweepResult eight = exp::SweepRunner(8).run(grid);

  ASSERT_EQ(one.jobs.size(), eight.jobs.size());
  EXPECT_EQ(one.aggregate.runs, eight.aggregate.runs);
  EXPECT_EQ(one.aggregate.undecided, eight.aggregate.undecided);
  EXPECT_EQ(one.aggregate.expectation_failures,
            eight.aggregate.expectation_failures);
  EXPECT_EQ(one.aggregate.steps.sum(), eight.aggregate.steps.sum());
  EXPECT_EQ(one.aggregate.messages.sum(), eight.aggregate.messages.sum());
  EXPECT_EQ(one.aggregate.kbytes.sum(), eight.aggregate.kbytes.sum());
  EXPECT_EQ(one.aggregate.decide_rounds.sum(),
            eight.aggregate.decide_rounds.sum());
  EXPECT_EQ(one.aggregate.metrics, eight.aggregate.metrics);

  obs::BenchReport r1;
  obs::BenchReport r8;
  r1.name = r8.name = "hotpath-test";
  r1.sweeps.push_back(obs::section_of("total", "grid", one));
  r8.sweeps.push_back(obs::section_of("total", "grid", eight));
  // Timings aside, the report is a pure function of the serial fold.
  EXPECT_EQ(obs::report_json(r1, false), obs::report_json(r8, false));
}

}  // namespace
}  // namespace nucon
