#include "util/process_set.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nucon {
namespace {

TEST(ProcessSet, DefaultIsEmpty) {
  ProcessSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.mask(), 0u);
}

TEST(ProcessSet, InitializerList) {
  ProcessSet s{0, 2, 5};
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(5));
}

TEST(ProcessSet, FullSet) {
  EXPECT_EQ(ProcessSet::full(0).size(), 0);
  EXPECT_EQ(ProcessSet::full(1).size(), 1);
  EXPECT_EQ(ProcessSet::full(5).size(), 5);
  EXPECT_EQ(ProcessSet::full(64).size(), 64);
  EXPECT_TRUE(ProcessSet::full(64).contains(63));
  EXPECT_FALSE(ProcessSet::full(5).contains(5));
}

TEST(ProcessSet, InsertErase) {
  ProcessSet s;
  s.insert(7);
  EXPECT_TRUE(s.contains(7));
  s.insert(7);  // idempotent
  EXPECT_EQ(s.size(), 1);
  s.erase(7);
  EXPECT_TRUE(s.empty());
  s.erase(7);  // idempotent
  EXPECT_TRUE(s.empty());
}

TEST(ProcessSet, SetOperations) {
  const ProcessSet a{0, 1, 2};
  const ProcessSet b{2, 3};
  EXPECT_EQ((a | b), (ProcessSet{0, 1, 2, 3}));
  EXPECT_EQ((a & b), ProcessSet{2});
  EXPECT_EQ((a - b), (ProcessSet{0, 1}));
  EXPECT_EQ((b - a), ProcessSet{3});
}

TEST(ProcessSet, CompoundAssignment) {
  ProcessSet a{0, 1};
  a |= ProcessSet{2};
  EXPECT_EQ(a, (ProcessSet{0, 1, 2}));
  a &= ProcessSet{1, 2, 3};
  EXPECT_EQ(a, (ProcessSet{1, 2}));
}

TEST(ProcessSet, Intersects) {
  EXPECT_TRUE((ProcessSet{0, 1}).intersects(ProcessSet{1, 2}));
  EXPECT_FALSE((ProcessSet{0, 1}).intersects(ProcessSet{2, 3}));
  EXPECT_FALSE(ProcessSet{}.intersects(ProcessSet{0}));
  EXPECT_FALSE(ProcessSet{}.intersects(ProcessSet{}));
}

TEST(ProcessSet, SubsetOf) {
  EXPECT_TRUE((ProcessSet{1}).is_subset_of(ProcessSet{0, 1}));
  EXPECT_TRUE(ProcessSet{}.is_subset_of(ProcessSet{}));
  EXPECT_TRUE(ProcessSet{}.is_subset_of(ProcessSet{5}));
  EXPECT_FALSE((ProcessSet{0, 2}).is_subset_of(ProcessSet{0, 1}));
  EXPECT_TRUE((ProcessSet{0, 2}).is_subset_of(ProcessSet{0, 1, 2}));
}

TEST(ProcessSet, MinMax) {
  const ProcessSet s{3, 17, 41};
  EXPECT_EQ(s.min(), 3);
  EXPECT_EQ(s.max(), 41);
  EXPECT_EQ(ProcessSet::single(0).min(), 0);
  EXPECT_EQ(ProcessSet::single(63).max(), 63);
}

TEST(ProcessSet, IterationOrder) {
  const ProcessSet s{9, 1, 33, 5};
  std::vector<Pid> seen;
  for (Pid p : s) seen.push_back(p);
  EXPECT_EQ(seen, (std::vector<Pid>{1, 5, 9, 33}));
}

TEST(ProcessSet, IterationEmpty) {
  int count = 0;
  for (Pid p : ProcessSet{}) {
    (void)p;
    ++count;
  }
  EXPECT_EQ(count, 0);
}

TEST(ProcessSet, ToString) {
  EXPECT_EQ(ProcessSet{}.to_string(), "{}");
  EXPECT_EQ((ProcessSet{0, 2, 5}).to_string(), "{0,2,5}");
}

TEST(ProcessSet, Majority) {
  EXPECT_TRUE(is_majority(ProcessSet{0, 1}, 3));
  EXPECT_FALSE(is_majority(ProcessSet{0}, 3));
  EXPECT_FALSE(is_majority(ProcessSet{0, 1}, 4));
  EXPECT_TRUE(is_majority(ProcessSet{0, 1, 2}, 4));
  EXPECT_FALSE(is_majority(ProcessSet{}, 1));
}

TEST(ProcessSet, Ordering) {
  // Total order (mask order) enables sorted unique containers.
  std::set<ProcessSet> sets;
  sets.insert(ProcessSet{0});
  sets.insert(ProcessSet{1});
  sets.insert(ProcessSet{0});
  EXPECT_EQ(sets.size(), 2u);
}

TEST(ProcessSet, FromMaskRoundTrip) {
  const ProcessSet s{2, 7, 63};
  EXPECT_EQ(ProcessSet::from_mask(s.mask()), s);
}

}  // namespace
}  // namespace nucon
