// Determinism and reduction guarantees of the incremental model-checking
// engine at n = 3: the verdict, witness, and every counter must be
// bit-identical across thread counts, the sleep-set POR must change only
// the arrival counts (never the verdict or the set of reached states),
// and the §6.3-style contaminated histories must keep producing the
// paper's violation for the naive quorum substitution while A_nuc
// exhausts the same spaces violation-free.
#include "check/model_checker.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"

namespace nucon {
namespace {

/// The n=3 contamination history of §6.3: processes 0 and 1 share quorum
/// {0, 1} under leader 0 while process 2 is partitioned behind quorum {2}
/// with itself as leader — legal for Sigma^nu when 2 is deemed faulty,
/// yet nobody crashes in the explored runs.
FdValue split_quorum_fd(Pid p, int /*own_step*/) {
  FdValue v = FdValue::of_quorum(p < 2 ? ProcessSet{0, 1}
                                       : ProcessSet::single(2));
  v.set_leader(p < 2 ? 0 : 2);
  return v;
}

/// A sharper contamination with a shallow witness: 0 and 2 are each
/// partitioned behind singleton quorums (so both decide alone within a
/// few steps) while 1 is the contaminated bystander trusting {0, 1}.
FdValue lone_deciders_fd(Pid p, int /*own_step*/) {
  FdValue v = FdValue::of_quorum(p == 1 ? ProcessSet{0, 1}
                                        : ProcessSet::single(p));
  v.set_leader(p == 1 ? 0 : p);
  return v;
}

McOptions triple(int depth, std::size_t budget) {
  McOptions opts;
  opts.n = 3;
  opts.make = make_mr_fd_quorum(3);
  opts.proposals = {0, 0, 1};
  opts.fd = split_quorum_fd;
  opts.max_depth = depth;
  opts.max_states = budget;
  return opts;
}

TEST(ModelCheckerParallel, EightThreadsBitIdenticalOnExhaustedSpace) {
  McOptions opts = triple(8, 4'000'000);
  const McResult serial = model_check_consensus(opts);
  ASSERT_TRUE(serial.exhausted);
  EXPECT_EQ(serial.hash_collisions, 0u);

  opts.threads = 8;
  const McResult parallel = model_check_consensus(opts);
  EXPECT_EQ(serial, parallel);
}

TEST(ModelCheckerParallel, EightThreadsBitIdenticalUnderStateBudget) {
  // The budget cut hits mid-layer; which arrivals get admitted (and in
  // what order the witness metadata is assigned) must not depend on the
  // thread count either.
  McOptions opts = triple(10, 200'000);
  const McResult serial = model_check_consensus(opts);
  ASSERT_FALSE(serial.exhausted);

  opts.threads = 8;
  const McResult parallel = model_check_consensus(opts);
  EXPECT_EQ(serial, parallel);
}

TEST(ModelCheckerParallel, PorChangesArrivalsButNotVerdictOrStates) {
  McOptions opts = triple(8, 4'000'000);
  const McResult with_por = model_check_consensus(opts);
  opts.use_por = false;
  const McResult without = model_check_consensus(opts);

  // Identical coverage and verdict...
  EXPECT_EQ(with_por.violation_found, without.violation_found);
  EXPECT_EQ(with_por.violation, without.violation);
  EXPECT_EQ(with_por.witness, without.witness);
  EXPECT_EQ(with_por.states_explored, without.states_explored);
  EXPECT_EQ(with_por.peak_depth, without.peak_depth);
  EXPECT_TRUE(with_por.exhausted);
  EXPECT_TRUE(without.exhausted);
  // ...reached through measurably fewer arrivals.
  EXPECT_GT(with_por.por_skipped, 0u);
  EXPECT_EQ(without.por_skipped, 0u);
  EXPECT_LT(with_por.states_deduped, without.states_deduped);
  EXPECT_EQ(without.states_reexpanded, 0u);
}

TEST(ModelCheckerParallel, NoPorEnvironmentOverrideForcesPorOff) {
  McOptions opts = triple(8, 4'000'000);
  opts.use_por = false;
  const McResult reference = model_check_consensus(opts);

  opts.use_por = true;
  ::setenv("NUCON_MC_NO_POR", "1", 1);
  const McResult overridden = model_check_consensus(opts);
  ::unsetenv("NUCON_MC_NO_POR");

  EXPECT_EQ(reference, overridden);
}

TEST(ModelCheckerParallel, FindsTripleContaminationAndWitnessReplays) {
  McOptions opts;
  opts.n = 3;
  opts.make = make_mr_fd_quorum(3);
  opts.proposals = {0, 0, 1};
  opts.fd = lone_deciders_fd;
  opts.max_depth = 10;
  opts.max_states = 4'000'000;

  const McResult result = model_check_consensus(opts);
  ASSERT_TRUE(result.violation_found);
  EXPECT_NE(result.violation.find("decided 0 vs 1"), std::string::npos)
      << result.violation;
  // BFS guarantees a minimum-depth witness; the two lone deciders reach
  // disagreement within 8 steps.
  EXPECT_LE(result.witness.size(), 8u);

  const auto replayed = replay_witness(opts, result.witness);
  ASSERT_TRUE(replayed.has_value()) << "witness does not replay";
  EXPECT_EQ(*replayed, result.violation);

  // The reduction must not even change which witness is reported: BFS
  // reaches the violating configuration at the same layer either way,
  // through the same canonically-first parent.
  opts.use_por = false;
  const McResult unreduced = model_check_consensus(opts);
  EXPECT_EQ(unreduced.witness, result.witness);
  EXPECT_EQ(unreduced.violation, result.violation);
}

TEST(ModelCheckerParallel, AnucExhaustsTheContaminatedSpaceViolationFree) {
  // A_nuc consuming the same split-quorum contamination: its distrust
  // machinery must keep every explored schedule agreement-safe, and with
  // snapshot/restore state encodings the whole depth-8 space is certified
  // (exhausted), not just sampled.
  McOptions opts = triple(8, 4'000'000);
  opts.make = make_anuc(3);

  const McResult result = model_check_consensus(opts);
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_TRUE(result.exhausted)
      << "state budget hit after " << result.states_explored;
  EXPECT_GT(result.states_explored, 10'000u);
  EXPECT_EQ(result.hash_collisions, 0u);
}

TEST(ModelCheckerParallel, BaselineEngineAgreesOnVerdicts) {
  // The frozen replay-based baseline must reach the same verdicts as the
  // incremental engine (its witness indexing and arrival accounting
  // differ, so only the verdicts are comparable).
  McOptions opts;
  opts.n = 2;
  opts.make = make_mr_fd_quorum(2);
  opts.proposals = {0, 1};
  opts.fd = [](Pid p, int) {
    FdValue v = FdValue::of_quorum(ProcessSet::single(p));
    v.set_leader(p);
    return v;
  };
  opts.max_depth = 12;
  opts.max_states = 2'000'000;

  const McResult incremental = model_check_consensus(opts);
  const McResult baseline = model_check_consensus_replay_baseline(opts);
  EXPECT_TRUE(incremental.violation_found);
  EXPECT_EQ(incremental.violation_found, baseline.violation_found);

  McOptions safe = triple(6, 4'000'000);
  const McResult inc_safe = model_check_consensus(safe);
  const McResult base_safe = model_check_consensus_replay_baseline(safe);
  EXPECT_FALSE(inc_safe.violation_found) << inc_safe.violation;
  EXPECT_EQ(inc_safe.violation_found, base_safe.violation_found);
  // Unique-state coverage agrees too: the baseline counts arrivals in
  // states_explored, so its unique count is explored minus deduped.
  EXPECT_EQ(inc_safe.states_explored,
            base_safe.states_explored - base_safe.states_deduped);
}

}  // namespace
}  // namespace nucon
