#include "sim/failure_pattern.hpp"

#include <gtest/gtest.h>

namespace nucon {
namespace {

TEST(FailurePattern, AllCorrectByDefault) {
  const FailurePattern fp(4);
  EXPECT_EQ(fp.n(), 4);
  EXPECT_TRUE(fp.faulty().empty());
  EXPECT_EQ(fp.correct(), ProcessSet::full(4));
  EXPECT_TRUE(fp.crashed_at(1000).empty());
}

TEST(FailurePattern, CrashTimesRespected) {
  FailurePattern fp(3);
  fp.set_crash(1, 10);
  EXPECT_EQ(fp.faulty(), ProcessSet{1});
  EXPECT_EQ(fp.correct(), (ProcessSet{0, 2}));
  EXPECT_TRUE(fp.alive_at(1, 9));
  EXPECT_FALSE(fp.alive_at(1, 10));
  EXPECT_FALSE(fp.alive_at(1, 11));
  EXPECT_TRUE(fp.alive_at(0, 1000000));
}

TEST(FailurePattern, CrashedAtIsMonotone) {
  FailurePattern fp(4);
  fp.set_crash(0, 5);
  fp.set_crash(2, 15);
  EXPECT_EQ(fp.crashed_at(0), ProcessSet{});
  EXPECT_EQ(fp.crashed_at(5), ProcessSet{0});
  EXPECT_EQ(fp.crashed_at(14), ProcessSet{0});
  EXPECT_EQ(fp.crashed_at(15), (ProcessSet{0, 2}));
  // F(t) subset of F(t+1) for every t.
  for (Time t = 0; t < 20; ++t) {
    EXPECT_TRUE(fp.crashed_at(t).is_subset_of(fp.crashed_at(t + 1)));
  }
}

TEST(FailurePattern, ConstructorFromVector) {
  const FailurePattern fp(3, {kNeverCrashes, 7, kNeverCrashes});
  EXPECT_EQ(fp.faulty(), ProcessSet{1});
  EXPECT_EQ(fp.crash_time(1), 7);
  EXPECT_EQ(fp.crash_time(0), kNeverCrashes);
}

TEST(FailurePattern, AllFaultyCrashedBy) {
  FailurePattern fp(4);
  EXPECT_EQ(fp.all_faulty_crashed_by(), 0);
  fp.set_crash(1, 10);
  fp.set_crash(3, 30);
  EXPECT_EQ(fp.all_faulty_crashed_by(), 30);
}

TEST(FailurePattern, ToStringMentionsCrashes) {
  FailurePattern fp(3);
  fp.set_crash(2, 9);
  const std::string s = fp.to_string();
  EXPECT_NE(s.find("2@9"), std::string::npos);
}

TEST(Environment, MajorityCorrectPredicate) {
  EXPECT_TRUE((Environment{5, 2}).majority_correct());
  EXPECT_FALSE((Environment{4, 2}).majority_correct());
  EXPECT_TRUE((Environment{4, 1}).majority_correct());
  EXPECT_FALSE((Environment{2, 1}).majority_correct());
}

TEST(Environment, SampleRespectsFaultBound) {
  const Environment env{6, 3};
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const FailurePattern fp = env.sample(rng, 100);
    EXPECT_LE(fp.faulty().size(), 3);
    EXPECT_EQ(fp.n(), 6);
    for (Pid p : fp.faulty()) {
      EXPECT_GE(fp.crash_time(p), 0);
      EXPECT_LE(fp.crash_time(p), 100);
    }
  }
}

TEST(Environment, SampleExactFaults) {
  const Environment env{5, 4};
  Rng rng(7);
  for (Pid f = 0; f <= 4; ++f) {
    const FailurePattern fp = env.sample(rng, f, 50);
    EXPECT_EQ(fp.faulty().size(), f);
  }
}

TEST(Environment, SampleCoversDifferentVictims) {
  const Environment env{4, 2};
  Rng rng(3);
  ProcessSet ever_faulty;
  for (int i = 0; i < 100; ++i) {
    ever_faulty |= env.sample(rng, 2, 10).faulty();
  }
  EXPECT_EQ(ever_faulty, ProcessSet::full(4));
}

}  // namespace
}  // namespace nucon
