// The timing-aware scheduler mode (sim/timing.hpp): default-off byte
// identity, determinism, delay/skew semantics.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include "fd/scripted.hpp"
#include "sim/timing.hpp"

namespace nucon {
namespace {

/// Counts steps/receives; broadcasts one message on its first step and
/// echoes every received message back to its sender (sustained traffic, so
/// delivery policy differences surface in the schedule).
class ChattyAutomaton final : public Automaton {
 public:
  explicit ChattyAutomaton(Pid n) : n_(n) {}

  void step(const Incoming* in, const FdValue&,
            std::vector<Outgoing>& out) override {
    ++steps_;
    if (in != nullptr) {
      ++received_;
      if (received_ < 64) {  // bounded echo storm
        ByteWriter w;
        w.u8(7);
        out.push_back({in->from, w.take()});
      }
    }
    if (steps_ == 1) {
      ByteWriter w;
      w.u8(42);
      broadcast(n_, w.take(), out);
    }
  }

  int steps_ = 0;
  int received_ = 0;

 private:
  Pid n_;
};

AutomatonFactory make_chatty(Pid n) {
  return [n](Pid) { return std::make_unique<ChattyAutomaton>(n); };
}

ScriptedOracle null_oracle() {
  return ScriptedOracle([](Pid, Time) { return FdValue{}; });
}

SchedulerOptions quick(std::uint64_t seed, std::int64_t steps) {
  SchedulerOptions o;
  o.seed = seed;
  o.max_steps = steps;
  return o;
}

void expect_same_schedule(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.run.steps.size(), b.run.steps.size());
  for (std::size_t i = 0; i < a.run.steps.size(); ++i) {
    EXPECT_EQ(a.run.steps[i].p, b.run.steps[i].p) << i;
    EXPECT_EQ(a.run.steps[i].t, b.run.steps[i].t) << i;
    EXPECT_EQ(a.run.steps[i].received, b.run.steps[i].received) << i;
  }
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_TRUE(a.metrics == b.metrics);
}

TEST(TimingMode, DisabledIsByteIdenticalNoMatterTheTimingFields) {
  // The contract sim/timing.hpp promises: with enabled == false every other
  // timing field is dead weight — the schedule, metrics and message counts
  // are those of the classic scheduler, byte for byte.
  const FailurePattern fp(4);
  auto o1 = null_oracle();
  auto o2 = null_oracle();

  const SimResult classic =
      simulate(fp, o1, make_chatty(4), quick(11, 600));

  SchedulerOptions weird = quick(11, 600);
  weird.timing.enabled = false;  // and everything below must not matter
  weird.timing.delay_base = 999;
  weird.timing.delay_jitter = 123;
  weird.timing.link_spread = 50;
  weird.timing.speed = {7, 1, 9, 3};
  weird.timing.seed = 0xdeadbeef;
  const SimResult with_fields = simulate(fp, o2, make_chatty(4), weird);

  expect_same_schedule(classic, with_fields);
}

TEST(TimingMode, TimedRunIsDeterministic) {
  FailurePattern fp(4);
  fp.set_crash(2, 200);
  SchedulerOptions opts = quick(5, 800);
  opts.timing.enabled = true;
  auto o1 = null_oracle();
  auto o2 = null_oracle();
  const SimResult a = simulate(fp, o1, make_chatty(4), opts);
  const SimResult b = simulate(fp, o2, make_chatty(4), opts);
  expect_same_schedule(a, b);
}

TEST(TimingMode, TimedScheduleDiffersFromClassic) {
  const FailurePattern fp(4);
  SchedulerOptions timed = quick(5, 600);
  timed.timing.enabled = true;
  auto o1 = null_oracle();
  auto o2 = null_oracle();
  const SimResult a = simulate(fp, o1, make_chatty(4), quick(5, 600));
  const SimResult b = simulate(fp, o2, make_chatty(4), timed);
  bool differs = a.run.steps.size() != b.run.steps.size();
  for (std::size_t i = 0; !differs && i < a.run.steps.size(); ++i) {
    differs = a.run.steps[i].p != b.run.steps[i].p ||
              a.run.steps[i].received != b.run.steps[i].received;
  }
  EXPECT_TRUE(differs);
}

TEST(TimingMode, NoMessageDeliveredBeforeItsDelay) {
  const FailurePattern fp(3);
  SchedulerOptions opts = quick(9, 600);
  opts.timing.enabled = true;
  opts.timing.delay_base = 10;
  opts.timing.delay_jitter = 0;
  auto oracle = null_oracle();
  const SimResult sim = simulate(fp, oracle, make_chatty(3), opts);

  // Reconstruct send times from the schedule: a message (sender, seq) is
  // sent at the sender's seq-th sending step; with echo traffic the easier
  // invariant is global — delivery_delay histogram never undercuts the
  // base delay.
  std::size_t delivered = 0;
  for (const StepRecord& s : sim.run.steps) delivered += s.received.has_value();
  ASSERT_GT(delivered, 0u);
  EXPECT_GE(sim.metrics.histograms().at("scheduler.delivery_delay").min(), 10);
}

TEST(TimingMode, DelaySamplingIsAPureFunctionOfIdentity) {
  TimingOptions t;
  t.enabled = true;
  t.delay_base = 2;
  t.delay_jitter = 9;
  t.link_spread = 5;
  t.seed = 77;
  // Same (from, seq, to) -> same delay, any call order; different identity
  // components change it somewhere.
  const Time d = t.message_delay(1, 42, 3);
  (void)t.message_delay(0, 1, 2);  // interleaved queries must not perturb
  EXPECT_EQ(t.message_delay(1, 42, 3), d);
  EXPECT_EQ(t.link_base(1, 3), t.link_base(1, 3));
  bool any_diff = false;
  for (std::uint64_t seq = 1; seq <= 32 && !any_diff; ++seq) {
    any_diff = t.message_delay(1, seq, 3) != d;
  }
  EXPECT_TRUE(any_diff) << "jitter never varied across sequence numbers";
  for (Time dd : {t.message_delay(1, 42, 3), t.message_delay(2, 7, 0)}) {
    EXPECT_GE(dd, t.delay_base);
    EXPECT_LE(dd, t.delay_base + t.delay_jitter + t.link_spread);
  }
}

TEST(TimingMode, SpeedSkewSlowsAProcessDown) {
  const FailurePattern fp(3);
  SchedulerOptions opts = quick(4, 900);
  opts.timing.enabled = true;
  opts.timing.speed = {1, 3, 1};  // p1 runs at a third of the speed
  auto oracle = null_oracle();
  const SimResult sim = simulate(fp, oracle, make_chatty(3), opts);

  std::int64_t steps[3] = {0, 0, 0};
  for (const StepRecord& s : sim.run.steps) ++steps[s.p];
  EXPECT_GT(steps[0], 2 * steps[1]);
  EXPECT_GT(steps[2], 2 * steps[1]);
  EXPECT_GT(steps[1], 0);  // slow, not crashed: still takes steps (prop (6))
}

TEST(TimingMode, AllCrashedStillTerminates) {
  // The all-crashed early exit must survive the skew bookkeeping.
  FailurePattern fp(2);
  fp.set_crash(0, 5);
  fp.set_crash(1, 5);
  SchedulerOptions opts = quick(3, 100000);
  opts.timing.enabled = true;
  opts.timing.speed = {4, 4};
  auto oracle = null_oracle();
  const SimResult sim = simulate(fp, oracle, make_chatty(2), opts);
  EXPECT_LT(sim.steps_taken, 100u);
}

}  // namespace
}  // namespace nucon
