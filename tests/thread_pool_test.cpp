// The sweep engine's work-stealing pool: completion under contention,
// exception propagation through futures, and drain-on-destruction
// semantics with work still queued.
#include "exp/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nucon::exp {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskUnderContention) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.size(), 8u);

  constexpr int kTasks = 10'000;
  std::atomic<int> ran{0};
  std::vector<std::future<int>> results;
  results.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    results.push_back(pool.submit([i, &ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
      return i;
    }));
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].get(), i);
  }
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(ThreadPoolTest, WorkIsDistributedAcrossWorkerThreads) {
  // With workers parked on slow tasks, stealing (or at least multi-thread
  // execution) must spread the work: more than one distinct thread id runs
  // tasks. Skipped on single-core machines where this is not guaranteed.
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs >= 2 hardware threads";
  }
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::vector<std::future<void>> done;
  for (int i = 0; i < 64; ++i) {
    done.push_back(pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      std::lock_guard<std::mutex> lk(mu);
      seen.insert(std::this_thread::get_id());
    }));
  }
  for (auto& f : done) f.get();
  EXPECT_GT(seen.size(), 1u);
}

TEST(ThreadPoolTest, ExceptionFromJobPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = pool.submit([] { return 41 + 1; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing sibling must not take the pool (or other jobs) down.
  EXPECT_EQ(good.get(), 42);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  constexpr int kTasks = 500;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destruction races with a mostly full queue; every task must still run.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, TasksMaySubmitFollowUpWork) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  auto outer = pool.submit([&] {
    std::vector<std::future<void>> inner;
    for (int i = 0; i < 16; ++i) {
      inner.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
    }
    for (auto& f : inner) f.get();
  });
  outer.get();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
}

}  // namespace
}  // namespace nucon::exp
