#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace nucon {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeDegenerate) {
  Rng rng(17);
  EXPECT_EQ(rng.range(4, 4), 4);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 100));
    EXPECT_TRUE(rng.chance(100, 100));
  }
}

TEST(Rng, ChanceRoughlyFair) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(1, 2);
  EXPECT_GT(hits, 4500);
  EXPECT_LT(hits, 5500);
}

TEST(Rng, PickFromSet) {
  Rng rng(29);
  const ProcessSet s{1, 4, 9};
  std::map<Pid, int> counts;
  for (int i = 0; i < 3000; ++i) {
    const Pid p = rng.pick(s);
    EXPECT_TRUE(s.contains(p));
    ++counts[p];
  }
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [p, c] : counts) EXPECT_GT(c, 700) << p;
}

TEST(Rng, PickSubsetExactSize) {
  Rng rng(31);
  const ProcessSet universe = ProcessSet::full(10);
  for (int k = 0; k <= 10; ++k) {
    const ProcessSet s = rng.pick_subset(universe, k);
    EXPECT_EQ(s.size(), k);
    EXPECT_TRUE(s.is_subset_of(universe));
  }
}

TEST(Rng, PickSubsetVaries) {
  Rng rng(37);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.pick_subset(ProcessSet::full(8), 4).mask());
  }
  EXPECT_GT(seen.size(), 20u);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(41);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child1.next() == child2.next());
  EXPECT_LT(equal, 5);
}

TEST(Splitmix, KnownGolden) {
  // splitmix64 with state 0 must produce the published first output.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace nucon
