#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include "fd/scripted.hpp"

namespace nucon {
namespace {

/// Counts its own steps and the messages it received; sends one greeting
/// to every process on its first step.
class GreeterAutomaton final : public Automaton {
 public:
  explicit GreeterAutomaton(Pid n) : n_(n) {}

  void step(const Incoming* in, const FdValue& d,
            std::vector<Outgoing>& out) override {
    (void)d;
    ++steps_;
    if (in != nullptr) ++received_;
    if (steps_ == 1) {
      ByteWriter w;
      w.u8(42);
      broadcast(n_, w.take(), out);
    }
  }

  [[nodiscard]] std::optional<Bytes> snapshot() const override {
    ByteWriter w;
    w.uvarint(static_cast<std::uint64_t>(steps_));
    w.uvarint(static_cast<std::uint64_t>(received_));
    return w.take();
  }

  int steps_ = 0;
  int received_ = 0;

 private:
  Pid n_;
};

AutomatonFactory make_greeter(Pid n) {
  return [n](Pid) { return std::make_unique<GreeterAutomaton>(n); };
}

ScriptedOracle null_oracle() {
  return ScriptedOracle([](Pid, Time) { return FdValue{}; });
}

SchedulerOptions quick(std::uint64_t seed, std::int64_t steps) {
  SchedulerOptions o;
  o.seed = seed;
  o.max_steps = steps;
  return o;
}

TEST(Scheduler, EveryCorrectProcessSteps) {
  const FailurePattern fp(5);
  auto oracle = null_oracle();
  const SimResult sim = simulate(fp, oracle, make_greeter(5), quick(1, 500));

  const ReplayOutcome replayed = replay(sim.run, 5, make_greeter(5));
  ASSERT_TRUE(replayed.ok) << replayed.error;
  const auto stats = admissibility_stats(sim.run, 5, replayed);
  for (Pid p = 0; p < 5; ++p) {
    // Macro-round scheduling: everyone gets 500/5 = 100 steps exactly.
    EXPECT_EQ(stats.steps_by_process[static_cast<std::size_t>(p)], 100) << p;
  }
}

TEST(Scheduler, CrashedProcessStopsStepping) {
  FailurePattern fp(3);
  fp.set_crash(1, 50);
  auto oracle = null_oracle();
  const SimResult sim = simulate(fp, oracle, make_greeter(3), quick(2, 600));

  for (const StepRecord& s : sim.run.steps) {
    if (s.p == 1) {
      EXPECT_LT(s.t, 50);
    }
  }
  EXPECT_FALSE(check_run_structure(sim.run));
}

TEST(Scheduler, RunStructureAlwaysValid) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FailurePattern fp(4);
    if (seed % 2 == 0) fp.set_crash(static_cast<Pid>(seed % 4), 30);
    auto oracle = null_oracle();
    const SimResult sim = simulate(fp, oracle, make_greeter(4), quick(seed, 400));
    const auto violation = check_run_structure(sim.run);
    EXPECT_FALSE(violation) << *violation;
  }
}

TEST(Scheduler, AllMessagesToCorrectEventuallyDelivered) {
  // Greeters send once; with the fairness backstop, a long run leaves no
  // message to a correct process undelivered (admissibility property (7)).
  const FailurePattern fp(4);
  auto oracle = null_oracle();
  const SimResult sim = simulate(fp, oracle, make_greeter(4), quick(3, 2000));

  const ReplayOutcome replayed = replay(sim.run, 4, make_greeter(4));
  ASSERT_TRUE(replayed.ok) << replayed.error;
  EXPECT_EQ(admissibility_stats(sim.run, 4, replayed).undelivered_to_correct, 0u);
}

TEST(Scheduler, ForcedDeliveryScanLengthIsMeasuredAndDeterministic) {
  // The destination-sharded MessageBuffer makes choose_delivery O(own
  // queue); the fairness backstop is the one path that still reads a
  // process's full pending count, and the scheduler histograms that
  // count per forced delivery. One sample per forced delivery, strictly
  // positive (a forced delivery implies a nonempty queue), and — being
  // an integer histogram fed in schedule order — byte-deterministic.
  const FailurePattern fp(4);
  auto o1 = null_oracle();
  const SimResult a = simulate(fp, o1, make_greeter(4), quick(11, 2000));
  const auto& scan = a.metrics.histograms().at("scheduler.pending_scan_length");
  EXPECT_EQ(scan.count(),
            a.metrics.counter_value("scheduler.forced_deliveries"));
  if (scan.count() > 0) EXPECT_GE(scan.min(), 1);

  auto o2 = null_oracle();
  const SimResult b = simulate(fp, o2, make_greeter(4), quick(11, 2000));
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST(Scheduler, DeterministicForSameSeed) {
  const FailurePattern fp(4);
  auto o1 = null_oracle();
  auto o2 = null_oracle();
  const SimResult a = simulate(fp, o1, make_greeter(4), quick(77, 300));
  const SimResult b = simulate(fp, o2, make_greeter(4), quick(77, 300));
  ASSERT_EQ(a.run.steps.size(), b.run.steps.size());
  for (std::size_t i = 0; i < a.run.steps.size(); ++i) {
    EXPECT_EQ(a.run.steps[i].p, b.run.steps[i].p);
    EXPECT_EQ(a.run.steps[i].t, b.run.steps[i].t);
    EXPECT_EQ(a.run.steps[i].received, b.run.steps[i].received);
  }
}

TEST(Scheduler, DifferentSeedsInterleaveDifferently) {
  const FailurePattern fp(4);
  auto o1 = null_oracle();
  auto o2 = null_oracle();
  const SimResult a = simulate(fp, o1, make_greeter(4), quick(1, 300));
  const SimResult b = simulate(fp, o2, make_greeter(4), quick(2, 300));
  bool any_difference = false;
  for (std::size_t i = 0; i < std::min(a.run.steps.size(), b.run.steps.size()); ++i) {
    any_difference = any_difference || a.run.steps[i].p != b.run.steps[i].p ||
                     a.run.steps[i].received != b.run.steps[i].received;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Scheduler, RestrictToLimitsParticipants) {
  const FailurePattern fp(6);
  auto oracle = null_oracle();
  SchedulerOptions opts = quick(5, 300);
  opts.restrict_to = ProcessSet{0, 2};
  const SimResult sim = simulate(fp, oracle, make_greeter(6), opts);
  EXPECT_EQ(sim.run.participants(), (ProcessSet{0, 2}));
}

TEST(Scheduler, StopWhenFires) {
  const FailurePattern fp(3);
  auto oracle = null_oracle();
  SchedulerOptions opts = quick(6, 100000);
  opts.stop_when = [](const std::vector<std::unique_ptr<Automaton>>& a) {
    return static_cast<const GreeterAutomaton*>(a[0].get())->steps_ >= 10;
  };
  const SimResult sim = simulate(fp, oracle, make_greeter(3), opts);
  EXPECT_TRUE(sim.stopped_by_predicate);
  EXPECT_LT(sim.run.steps.size(), 100u);
}

TEST(Scheduler, OracleValuesRecordedInRun) {
  const FailurePattern fp(2);
  ScriptedOracle oracle([](Pid p, Time) { return FdValue::of_leader(p); });
  const SimResult sim = simulate(fp, oracle, make_greeter(2), quick(7, 50));
  for (const StepRecord& s : sim.run.steps) {
    EXPECT_EQ(s.d, FdValue::of_leader(s.p));
  }
}

TEST(Scheduler, ReplayReproducesFinalStates) {
  FailurePattern fp(4);
  fp.set_crash(2, 80);
  auto oracle = null_oracle();
  const SimResult sim = simulate(fp, oracle, make_greeter(4), quick(9, 700));

  const ReplayOutcome replayed = replay(sim.run, 4, make_greeter(4));
  ASSERT_TRUE(replayed.ok) << replayed.error;
  for (Pid p = 0; p < 4; ++p) {
    EXPECT_EQ(sim.automata[static_cast<std::size_t>(p)]->snapshot(),
              replayed.automata[static_cast<std::size_t>(p)]->snapshot())
        << p;
  }
}

TEST(Replay, RejectsUnsentMessage) {
  nucon::Run run((FailurePattern(2)));
  StepRecord s;
  s.p = 0;
  s.t = 1;
  s.received = MsgId{1, 1};  // never sent
  run.steps.push_back(s);
  const ReplayOutcome outcome = replay(run, 2, make_greeter(2));
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("not applicable"), std::string::npos);
}

TEST(RunStructure, DetectsDecreasingTimes) {
  nucon::Run run((FailurePattern(2)));
  run.steps.push_back({0, std::nullopt, FdValue{}, 10});
  run.steps.push_back({1, std::nullopt, FdValue{}, 5});
  EXPECT_TRUE(check_run_structure(run));
}

TEST(RunStructure, DetectsStepsAfterCrash) {
  FailurePattern fp(2);
  fp.set_crash(0, 3);
  nucon::Run run(fp);
  run.steps.push_back({0, std::nullopt, FdValue{}, 5});
  EXPECT_TRUE(check_run_structure(run));
}

TEST(RunStructure, DetectsSameProcessSameTime) {
  nucon::Run run((FailurePattern(2)));
  run.steps.push_back({0, std::nullopt, FdValue{}, 4});
  run.steps.push_back({0, std::nullopt, FdValue{}, 4});
  EXPECT_TRUE(check_run_structure(run));
}

}  // namespace
}  // namespace nucon
