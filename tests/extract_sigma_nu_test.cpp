// T_{D -> Sigma^nu} (paper Fig. 2, Theorems 5.4 and 5.8): extracting
// Sigma^nu from detectors that solve nonuniform consensus, and Sigma from
// detectors that solve uniform consensus.
#include "core/extract_sigma_nu.hpp"

#include <gtest/gtest.h>

#include "algo/ct_consensus.hpp"
#include "algo/mr_consensus.hpp"
#include "consensus_test_util.hpp"
#include "core/anuc.hpp"
#include "fd/history.hpp"

namespace nucon {
namespace {

constexpr Time kStabilize = 40;

struct ExtractOutcome {
  RecordedHistory emulated;
  std::vector<std::int64_t> outputs_per_process;
};

ExtractOutcome run_extract(const FailurePattern& fp, Oracle& oracle,
                           const ConsensusFactory& algorithm,
                           std::uint64_t seed, std::int64_t steps) {
  ExtractOptions eo;
  eo.algorithm = algorithm;
  eo.n = fp.n();
  eo.check_every = 4;   // simulate every 4th step: same semantics, cheaper
  eo.max_chain = 600;

  ExtractOutcome outcome;
  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = steps;
  opts = with_emulation_recording(std::move(opts), outcome.emulated);

  const SimResult sim = simulate(fp, oracle, make_extract_sigma_nu(eo), opts);
  for (Pid p = 0; p < fp.n(); ++p) {
    outcome.outputs_per_process.push_back(
        static_cast<const ExtractSigmaNu*>(
            sim.automata[static_cast<std::size_t>(p)].get())
            ->outputs_produced());
  }
  return outcome;
}

TEST(Extract, FromAnucOracleYieldsSigmaNu) {
  // D = (Omega, Sigma^nu+) with adversarial faulty modules; A = A_nuc.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    FailurePattern fp(3);
    if (seed != 1) fp.set_crash(2, 25);
    auto oracle = testutil::omega_sigma_nu_plus(fp, kStabilize, seed);

    const ExtractOutcome outcome =
        run_extract(fp, oracle.top(), make_anuc(3), seed, 1400);
    ASSERT_FALSE(outcome.emulated.empty());
    const auto result = check_sigma_nu(outcome.emulated, fp);
    EXPECT_TRUE(result.ok) << result.detail << " seed " << seed;
  }
}

TEST(Extract, ProducesQuorumsAtCorrectProcesses) {
  FailurePattern fp(3);
  auto oracle = testutil::omega_sigma_nu_plus(fp, kStabilize, 7);
  const ExtractOutcome outcome =
      run_extract(fp, oracle.top(), make_anuc(3), 7, 1400);
  for (Pid p : fp.correct()) {
    EXPECT_GT(outcome.outputs_per_process[static_cast<std::size_t>(p)], 0)
        << "process " << p << " never emitted a quorum";
  }
}

TEST(Extract, FromUniformAlgorithmYieldsSigma) {
  // Theorem 5.8: with A solving UNIFORM consensus (MR with Sigma), the
  // same transformation emits a Sigma history — full intersection.
  for (std::uint64_t seed : {1ull, 2ull}) {
    FailurePattern fp(3);
    if (seed == 2) fp.set_crash(0, 25);
    auto oracle = testutil::omega_sigma(fp, kStabilize, seed);

    const ExtractOutcome outcome =
        run_extract(fp, oracle.top(), make_mr_fd_quorum(3), seed, 1400);
    ASSERT_FALSE(outcome.emulated.empty());
    const auto result = check_sigma(outcome.emulated, fp);
    EXPECT_TRUE(result.ok) << result.detail << " seed " << seed;
  }
}

TEST(Extract, FromEvtStrongAndCtYieldsSigmaNu) {
  // D = <>S, A = Chandra-Toueg: a detector with a completely different
  // range still reduces to Sigma^nu (majority environment).
  FailurePattern fp(3);
  auto oracle = testutil::evt_strong(fp, kStabilize, 11);
  const ExtractOutcome outcome =
      run_extract(fp, oracle.top(), make_ct(3), 11, 1600);
  ASSERT_FALSE(outcome.emulated.empty());
  const auto result = check_sigma_nu(outcome.emulated, fp);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Extract, EmittedQuorumsComeFromDecidingSchedules) {
  // Structural sanity: every emitted quorum is nonempty and contains the
  // emitting process (it decides in both simulated schedules, so it
  // participates in both).
  FailurePattern fp(4);
  fp.set_crash(3, 25);
  auto oracle = testutil::omega_sigma_nu_plus(fp, kStabilize, 13);
  const ExtractOutcome outcome =
      run_extract(fp, oracle.top(), make_anuc(4), 13, 2000);
  for (const Sample& s : outcome.emulated.samples()) {
    EXPECT_FALSE(s.value.quorum().empty());
    // Initial Pi outputs also satisfy this.
    EXPECT_TRUE(s.value.quorum().contains(s.p));
  }
}

TEST(Extract, InitialOutputIsPi) {
  ExtractOptions eo;
  eo.algorithm = make_anuc(4);
  eo.n = 4;
  ExtractSigmaNu a(1, eo);
  EXPECT_EQ(a.emulated_output().quorum(), ProcessSet::full(4));
}

}  // namespace
}  // namespace nucon
