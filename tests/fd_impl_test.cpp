// The heartbeat-implemented detectors (fd/impl/): module-level unit tests,
// recorded bare-module histories checked against their detector classes
// across a crash matrix, and hosted runs whose recorded history — the
// values the algorithm actually consumed — passes the same checkers.
#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/sweep.hpp"
#include "fd/history.hpp"
#include "fd/impl/host.hpp"
#include "fd/scripted.hpp"
#include "sim/scheduler.hpp"

namespace nucon {
namespace {

ScriptedOracle null_oracle() {
  return ScriptedOracle([](Pid, Time) { return FdValue{}; });
}

// --- HeartbeatFd unit tests -------------------------------------------------

TEST(HeartbeatFd, ResolvedDefaultsScaleWithN) {
  const HeartbeatOptions r = HeartbeatOptions{}.resolved(5);
  EXPECT_EQ(r.heartbeat_every, 10);
  EXPECT_EQ(r.timeout_init, 20);
  EXPECT_EQ(r.timeout_increment, 10);
  EXPECT_EQ(r.timeout_max, 160);

  HeartbeatOptions tight;
  tight.timeout_init = 100;
  tight.timeout_max = 7;  // below init: clamped up, never below init
  EXPECT_EQ(tight.resolved(3).timeout_max, 100);
}

TEST(HeartbeatFd, SuspectsASilentPeerAfterItsTimeout) {
  // n=2 resolved: heartbeat_every=4, timeout_init=8.
  HeartbeatFd hb(0, 2, HeartbeatMode::kDiamondS, {});
  std::vector<Outgoing> out;
  for (int i = 0; i < 8; ++i) hb.step(nullptr, FdValue{}, out);
  EXPECT_TRUE(hb.suspected().empty()) << "suspected before the timeout ran out";
  hb.step(nullptr, FdValue{}, out);  // local_time 9 > timeout 8
  EXPECT_EQ(hb.suspected(), ProcessSet{1});
  EXPECT_EQ(hb.output(), FdValue::of_suspects(ProcessSet{1}));
  EXPECT_EQ(hb.mistakes(), 0);
}

TEST(HeartbeatFd, MistakeUnsuspectsAndWidensTheTimeout) {
  HeartbeatFd hb(0, 2, HeartbeatMode::kDiamondS, {});
  std::vector<Outgoing> out;
  for (int i = 0; i < 9; ++i) hb.step(nullptr, FdValue{}, out);
  ASSERT_EQ(hb.suspected(), ProcessSet{1});
  ASSERT_EQ(hb.timeout_of(1), 8);

  const Bytes heartbeat;  // empty payload: the sender id is the message
  const Incoming in{1, &heartbeat};
  hb.step(&in, FdValue{}, out);
  EXPECT_TRUE(hb.suspected().empty());
  EXPECT_EQ(hb.mistakes(), 1);
  EXPECT_EQ(hb.timeout_of(1), 12);  // init 8 + increment 4

  // The widened timeout now tolerates the same silence.
  for (int i = 0; i < 12; ++i) hb.step(nullptr, FdValue{}, out);
  EXPECT_TRUE(hb.suspected().empty());
  hb.step(nullptr, FdValue{}, out);
  EXPECT_EQ(hb.suspected(), ProcessSet{1});
}

TEST(HeartbeatFd, BroadcastsEveryHeartbeatEveryOwnSteps) {
  HeartbeatFd hb(1, 3, HeartbeatMode::kDiamondS, {});  // heartbeat_every=6
  std::vector<Outgoing> out;
  for (int i = 0; i < 12; ++i) hb.step(nullptr, FdValue{}, out);
  // Two broadcasts (local_time 6 and 12), each to the two peers.
  ASSERT_EQ(out.size(), 4u);
  for (const Outgoing& o : out) {
    EXPECT_NE(o.to, 1);
    EXPECT_TRUE(o.payload.get().empty());
  }
}

TEST(HeartbeatFd, OmegaModeLeadsWithLowestUnsuspectedId) {
  HeartbeatFd hb(1, 2, HeartbeatMode::kOmega, {});
  std::vector<Outgoing> out;
  EXPECT_EQ(hb.leader(), 0);  // nobody suspected yet; id order decides
  for (int i = 0; i < 9; ++i) hb.step(nullptr, FdValue{}, out);
  EXPECT_EQ(hb.suspected(), ProcessSet{0});
  EXPECT_EQ(hb.leader(), 1);  // self is never suspected, so always defined
  EXPECT_EQ(hb.output(), FdValue::of_leader(1));
}

// --- Bare modules under the timed scheduler ---------------------------------

struct CrashCase {
  Pid n;
  Pid faults;
  std::uint64_t seed;
};

std::vector<CrashCase> crash_matrix() {
  std::vector<CrashCase> out;
  for (const auto& [n, faults] : std::vector<std::pair<Pid, Pid>>{
           {2, 1}, {3, 0}, {3, 1}, {4, 1}, {4, 2}, {5, 2}}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) out.push_back({n, faults, seed});
  }
  return out;
}

/// Crashes the lowest `faults` ids (so the heartbeat chain must advance its
/// leader past them), staggered in time.
FailurePattern crash_pattern(const CrashCase& c) {
  FailurePattern fp(c.n);
  for (Pid p = 0; p < c.faults; ++p) {
    fp.set_crash(p, 120 + 60 * static_cast<Time>(p));
  }
  return fp;
}

/// Runs bare heartbeat modules under the timing-aware scheduler and records
/// the history of their output variables via the on_step observer (the
/// documented idiom for sampling emulated outputs, SchedulerOptions::on_step).
RecordedHistory record_bare(HeartbeatMode mode, const FailurePattern& fp,
                            std::uint64_t seed) {
  RecordedHistory h;
  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = 8000;
  opts.record_run = false;
  opts.timing.enabled = true;
  opts.on_step = [&h](const StepRecord& rec,
                      const std::vector<std::unique_ptr<Automaton>>& automata) {
    const auto* hb = static_cast<const HeartbeatFd*>(
        automata[static_cast<std::size_t>(rec.p)].get());
    h.add(rec.p, rec.t, hb->output());
  };
  auto oracle = null_oracle();
  (void)simulate(fp, oracle, make_heartbeat_fd(fp.n(), mode), opts);
  return h;
}

TEST(HeartbeatBare, OmegaHistoryIsInOmegaAcrossCrashMatrix) {
  for (const CrashCase& c : crash_matrix()) {
    const FailurePattern fp = crash_pattern(c);
    const RecordedHistory h = record_bare(HeartbeatMode::kOmega, fp, c.seed);
    const CheckResult r = check_omega(h, fp);
    EXPECT_TRUE(r.ok) << "n=" << c.n << " f=" << c.faults << " s=" << c.seed
                      << ": " << r.detail;

    // The heartbeat chain converges on the lowest *correct* id.
    for (Pid p : fp.correct()) {
      const auto samples = h.of(p);
      ASSERT_FALSE(samples.empty());
      EXPECT_EQ(samples.back().value.leader(), fp.correct().min())
          << "n=" << c.n << " f=" << c.faults << " s=" << c.seed << " p=" << p;
    }
  }
}

TEST(HeartbeatBare, DiamondSHistoryIsInDiamondSAcrossCrashMatrix) {
  for (const CrashCase& c : crash_matrix()) {
    const FailurePattern fp = crash_pattern(c);
    const RecordedHistory h = record_bare(HeartbeatMode::kDiamondS, fp, c.seed);
    const CheckResult r = check_diamond_s(h, fp);
    EXPECT_TRUE(r.ok) << "n=" << c.n << " f=" << c.faults << " s=" << c.seed
                      << ": " << r.detail;
  }
}

TEST(HeartbeatBare, SlowedProcessIsEventuallyTolerated) {
  // A 3x-slow (but correct) process sends heartbeats a third as often; the
  // adaptive timeouts must stop wrongly suspecting it — the history stays
  // in <>S (eventual weak accuracy cares about *some* correct process, but
  // completeness would break if the slow process were permanently
  // suspected: it is correct, so check_diamond_s's accuracy clause plus
  // the leader chain below pin toleration).
  FailurePattern fp(3);
  fp.set_crash(2, 150);
  SchedulerOptions opts;
  opts.seed = 5;
  opts.max_steps = 12000;
  opts.record_run = false;
  opts.timing.enabled = true;
  opts.timing.speed = {1, 3, 1};  // p1 correct but slow
  RecordedHistory h;
  opts.on_step = [&h](const StepRecord& rec,
                      const std::vector<std::unique_ptr<Automaton>>& automata) {
    const auto* hb = static_cast<const HeartbeatFd*>(
        automata[static_cast<std::size_t>(rec.p)].get());
    h.add(rec.p, rec.t, hb->output());
  };
  auto oracle = null_oracle();
  (void)simulate(fp, oracle, make_heartbeat_fd(3, HeartbeatMode::kOmega), opts);

  const CheckResult r = check_omega(h, fp);
  EXPECT_TRUE(r.ok) << r.detail;
  // p0 ends up not suspecting the slow p1: the final leader samples of both
  // correct processes agree on 0, which requires p0 unsuspected everywhere.
  for (Pid p : fp.correct()) {
    const auto samples = h.of(p);
    ASSERT_FALSE(samples.empty());
    EXPECT_EQ(samples.back().value.leader(), 0) << "p=" << p;
  }
}

// --- Hosted runs ------------------------------------------------------------

/// Full-horizon hosted run (no early stop at decision, so the recorded
/// history has room to stabilize): heartbeat modules beside the algorithm,
/// the canonical oracle stack reading their board for its leader/suspects
/// layer.
SimResult simulate_hosted(exp::Algo algo, const FailurePattern& fp,
                          std::uint64_t seed) {
  const Pid n = fp.n();
  HostedConsensus hosted = make_hosted_consensus(
      exp::consensus_factory_of(algo, n, seed), n,
      algo == exp::Algo::kCt ? HeartbeatMode::kDiamondS
                             : HeartbeatMode::kOmega);
  exp::AlgoOracles oracles(algo, fp, /*stabilize=*/120,
                           FaultyQuorumBehavior::kAdversarialDisjoint, seed,
                           hosted.board);
  std::vector<Value> proposals;
  for (Pid p = 0; p < n; ++p) proposals.push_back(p % 2);
  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = 16000;
  opts.timing.enabled = true;
  opts.stop_when = [](const std::vector<std::unique_ptr<Automaton>>&) {
    return false;  // run the full horizon
  };
  return simulate_consensus(fp, oracles.top(), hosted.factory, proposals, opts);
}

TEST(Hosted, RecordedHistoryOfOmegaAlgosPassesCheckOmega) {
  // What the run records in StepRecord::d IS what the hosted algorithm
  // consumed; for Omega-consuming algorithms it must be an Omega history —
  // even when the initial leader is the process that crashes.
  for (const exp::Algo algo : {exp::Algo::kAnuc, exp::Algo::kStacked}) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      FailurePattern fp(4);
      fp.set_crash(0, 150);
      const SimResult sim = simulate_hosted(algo, fp, seed);
      EXPECT_FALSE(check_run_structure(sim.run));
      const CheckResult r = check_omega(RecordedHistory::from_run(sim.run), fp);
      EXPECT_TRUE(r.ok) << exp::algo_name(algo) << " seed " << seed << ": "
                        << r.detail;
      EXPECT_TRUE(all_correct_decided(fp, sim.automata))
          << exp::algo_name(algo) << " seed " << seed;
    }
  }
}

TEST(Hosted, RecordedHistoryOfCtPassesCheckDiamondS) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    FailurePattern fp(4);
    fp.set_crash(3, 150);
    const SimResult sim = simulate_hosted(exp::Algo::kCt, fp, seed);
    const CheckResult r =
        check_diamond_s(RecordedHistory::from_run(sim.run), fp);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
    EXPECT_TRUE(all_correct_decided(fp, sim.automata)) << "seed " << seed;
  }
}

TEST(Hosted, SweepPointWithImplementedFdDecides) {
  for (const exp::Algo algo :
       {exp::Algo::kAnuc, exp::Algo::kStacked, exp::Algo::kCt}) {
    exp::SweepPoint pt;
    pt.algo = algo;
    pt.n = 4;
    pt.faults = 1;
    pt.seed = 11;
    pt.fd = exp::FdSource::kImplemented;
    const ConsensusRunStats stats = exp::run_point(pt);
    EXPECT_TRUE(stats.verdict.termination) << exp::algo_name(algo);
    EXPECT_TRUE(stats.verdict.validity) << exp::algo_name(algo);
    EXPECT_TRUE(stats.verdict.nonuniform_agreement) << exp::algo_name(algo);
  }
}

TEST(Hosted, ReplayArtifactRoundTripsTheFdSource) {
  exp::SweepPoint pt;
  pt.algo = exp::Algo::kAnuc;
  pt.seed = 7;
  pt.fd = exp::FdSource::kImplemented;
  const exp::ReplayArtifact artifact{pt};
  const std::string line = artifact.to_string();
  EXPECT_NE(line.find("fd=implemented"), std::string::npos) << line;
  const auto parsed = exp::ReplayArtifact::parse(line);
  ASSERT_TRUE(parsed) << line;
  EXPECT_EQ(*parsed, artifact);

  // Default (generated) points keep their historical artifact strings — no
  // fd token — so pre-existing golden traces stay byte-identical.
  exp::SweepPoint generated;
  generated.seed = 7;
  EXPECT_EQ(exp::ReplayArtifact{generated}.to_string().find("fd="),
            std::string::npos);
}

TEST(Hosted, OracleStackRejectsABoardForOracleFreeAlgos) {
  const FailurePattern fp(3);
  const HostedConsensus hosted = make_hosted_consensus(
      exp::consensus_factory_of(exp::Algo::kBenOr, 3, 1), 3,
      HeartbeatMode::kOmega);
  EXPECT_FALSE(exp::supports_implemented_fd(exp::Algo::kBenOr));
  EXPECT_FALSE(exp::supports_implemented_fd(exp::Algo::kFromScratch));
  EXPECT_THROW(exp::AlgoOracles(exp::Algo::kBenOr, fp, 120,
                                FaultyQuorumBehavior::kAdversarialDisjoint, 1,
                                hosted.board),
               std::invalid_argument);
}

}  // namespace
}  // namespace nucon
