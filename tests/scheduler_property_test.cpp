// Scheduler-adversary property sweep: consensus safety, run-structure
// validity and replay determinism must hold under EVERY combination of
// delivery-policy knobs (lambda probability, reordering, fairness-backstop
// age) — the knobs only select among legal asynchronous schedules.
#include <gtest/gtest.h>

#include "algo/harness.hpp"
#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"
#include "fd/composed.hpp"
#include "fd/omega.hpp"
#include "fd/sigma.hpp"
#include "fd/sigma_nu.hpp"

namespace nucon {
namespace {

struct Knobs {
  int lambda_percent;
  int shuffle_percent;
  Time max_message_age;
  std::uint64_t seed;
};

class SchedulerKnobSweep : public testing::TestWithParam<Knobs> {};

TEST_P(SchedulerKnobSweep, AnucSafeAndLiveUnderAnyDeliveryPolicy) {
  const auto [lambda, shuffle, age, seed] = GetParam();
  FailurePattern fp(4);
  fp.set_crash(3, 70);

  OmegaOptions oo;
  oo.stabilize_at = 100;
  oo.seed = seed;
  OmegaOracle omega(fp, oo);
  SigmaNuPlusOptions so;
  so.stabilize_at = 100;
  so.seed = seed + 1;
  SigmaNuPlusOracle sigma(fp, so);
  ComposedOracle oracle(omega, sigma);

  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = 200'000;
  opts.lambda_percent = lambda;
  opts.shuffle_percent = shuffle;
  opts.max_message_age = age;

  const ConsensusRunStats stats =
      run_consensus(fp, oracle, make_anuc(4), {0, 1, 1, 0}, opts);
  EXPECT_TRUE(stats.all_correct_decided)
      << "lambda=" << lambda << " shuffle=" << shuffle << " age=" << age;
  EXPECT_TRUE(stats.verdict.solves_nonuniform()) << stats.verdict.detail;
}

TEST_P(SchedulerKnobSweep, RunsRemainStructurallyValidAndReplayable) {
  const auto [lambda, shuffle, age, seed] = GetParam();
  FailurePattern fp(4);
  fp.set_crash(1, 50);

  OmegaOptions oo;
  oo.stabilize_at = 80;
  oo.seed = seed;
  OmegaOracle omega(fp, oo);
  SigmaOptions so;
  so.stabilize_at = 80;
  so.seed = seed + 1;
  SigmaOracle sigma_oracle(fp, so);
  ComposedOracle oracle(omega, sigma_oracle);

  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = 6'000;
  opts.lambda_percent = lambda;
  opts.shuffle_percent = shuffle;
  opts.max_message_age = age;

  const ConsensusFactory make = make_mr_fd_quorum(4);
  const AutomatonFactory factory = [&make](Pid p) { return make(p, p % 2); };
  const SimResult sim = simulate(fp, oracle, factory, opts);

  const auto violation = check_run_structure(sim.run);
  EXPECT_FALSE(violation) << *violation;

  const ReplayOutcome replayed = replay(sim.run, 4, factory);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  for (Pid p = 0; p < 4; ++p) {
    EXPECT_EQ(sim.automata[static_cast<std::size_t>(p)]->snapshot(),
              replayed.automata[static_cast<std::size_t>(p)]->snapshot());
  }
}

std::vector<Knobs> knob_grid() {
  std::vector<Knobs> out;
  for (int lambda : {0, 20, 60}) {
    for (int shuffle : {0, 50, 100}) {
      for (Time age : {8, 64, 512}) {
        out.push_back({lambda, shuffle, age, 31});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, SchedulerKnobSweep,
                         testing::ValuesIn(knob_grid()), [](const auto& info) {
                           return "l" + std::to_string(info.param.lambda_percent) +
                                  "_s" + std::to_string(info.param.shuffle_percent) +
                                  "_a" + std::to_string(info.param.max_message_age);
                         });

TEST(SchedulerKnobs, ExtremeLambdaStillTerminatesViaBackstop) {
  // 90% lambda: almost every step refuses delivery; the fairness backstop
  // alone must carry liveness.
  const FailurePattern fp(3);
  OmegaOptions oo;
  OmegaOracle omega(fp, oo);
  SigmaNuPlusOptions so;
  SigmaNuPlusOracle sigma(fp, so);
  ComposedOracle oracle(omega, sigma);

  SchedulerOptions opts;
  opts.seed = 5;
  opts.max_steps = 300'000;
  opts.lambda_percent = 90;
  const ConsensusRunStats stats =
      run_consensus(fp, oracle, make_anuc(3), {2, 2, 2}, opts);
  EXPECT_TRUE(stats.all_correct_decided);
}

}  // namespace
}  // namespace nucon
