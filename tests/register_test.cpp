// The register contrast (paper §1 / Delporte et al.): ABD over Sigma
// quorums is an atomic register in any environment; the identical protocol
// over Sigma^nu loses atomicity the moment a faulty process's quorum stops
// intersecting the others — registers have no useful nonuniform weakening.
#include "reg/harness.hpp"

#include <gtest/gtest.h>

#include "fd/sigma.hpp"
#include "fd/sigma_nu.hpp"

namespace nucon {
namespace {

struct RegParam {
  Pid n;
  Pid faults;
  std::uint64_t seed;
};

class AbdSigmaSweep : public testing::TestWithParam<RegParam> {};

TEST_P(AbdSigmaSweep, AtomicUnderSigmaInAnyEnvironment) {
  const auto [n, faults, seed] = GetParam();
  Rng rng(seed * 7717);
  const FailurePattern fp =
      Environment{n, static_cast<Pid>(n - 1)}.sample(rng, faults, 80);

  SigmaOptions so;
  so.stabilize_at = 100;
  so.seed = seed;
  SigmaOracle oracle(fp, so);

  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = 120'000;
  const RegisterRunResult result = run_register_workload(
      fp, oracle, alternating_workloads(n, 3), opts);

  EXPECT_TRUE(result.all_correct_done) << fp.to_string();
  EXPECT_TRUE(result.verdict.ok) << result.verdict.detail;
  EXPECT_GE(result.records.size(),
            static_cast<std::size_t>(6 * fp.correct().size()));
}

std::vector<RegParam> reg_params() {
  std::vector<RegParam> out;
  for (Pid n : {2, 3, 4, 5}) {
    for (Pid faults = 0; faults < n; ++faults) {
      for (std::uint64_t seed : {1ull, 2ull}) {
        out.push_back({n, faults, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AbdSigmaSweep, testing::ValuesIn(reg_params()),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_f" +
                                  std::to_string(info.param.faults) + "_s" +
                                  std::to_string(info.param.seed);
                         });

/// Hand-driven executions: the test chooses which process steps and which
/// pending message (if any) it receives — any such sequence is a legal
/// finite run of the model (messages may be delayed arbitrarily).
class ManualSim {
 public:
  ManualSim(Pid n, AutomatonFactory make) : n_(n) {
    for (Pid p = 0; p < n; ++p) automata_.push_back(make(p));
    seq_.assign(static_cast<std::size_t>(n), 0);
  }

  /// Steps p, delivering the oldest pending message whose sender satisfies
  /// `from_ok` (lambda if none).
  void step(Pid p, const FdValue& d,
            const std::function<bool(Pid)>& from_ok) {
    ++now_;
    std::optional<Message> msg;
    for (std::size_t i = 0; i < buffer_.pending_for(p); ++i) {
      if (from_ok(buffer_.peek(p, i).id.sender)) {
        msg = buffer_.take(p, i);
        break;
      }
    }
    std::vector<Outgoing> sends;
    if (msg) {
      const Incoming in{msg->id.sender, &msg->payload.get()};
      automata_[static_cast<std::size_t>(p)]->step(&in, d, sends);
    } else {
      automata_[static_cast<std::size_t>(p)]->step(nullptr, d, sends);
    }
    for (Outgoing& o : sends) {
      Message m;
      m.id = MsgId{p, ++seq_[static_cast<std::size_t>(p)]};
      m.to = o.to;
      m.sent_at = now_;
      m.payload = std::move(o.payload);
      buffer_.add(std::move(m));
    }
    if (auto* reg = dynamic_cast<AbdRegister*>(
            automata_[static_cast<std::size_t>(p)].get())) {
      reg->stamp_times(now_);
    }
  }

  [[nodiscard]] AbdRegister& reg(Pid p) {
    return *dynamic_cast<AbdRegister*>(automata_[static_cast<std::size_t>(p)].get());
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Automaton>>& automata() const {
    return automata_;
  }

 private:
  Pid n_;
  std::vector<std::unique_ptr<Automaton>> automata_;
  MessageBuffer buffer_;
  std::vector<std::uint64_t> seq_;
  Time now_ = 0;
};

TEST(AbdSigmaNu, AdversarialQuorumsBreakAtomicityConstructed) {
  // The deterministic §1-style counterexample: process 0 completes
  // write(7) using the correct-side quorum {0,1} while every message to
  // the faulty process 3 stays in flight; 3 then completes read() using
  // its own legal Sigma^nu quorum {3} and returns the initial value —
  // a stale read, so the emulated object is not an atomic register.
  std::vector<std::vector<RegOp>> workloads(4);
  workloads[0] = {{RegOp::Kind::kWrite, 7}};
  workloads[3] = {{RegOp::Kind::kRead, 0}};
  ManualSim sim(4, make_abd(4, workloads));

  const FdValue correct_fd = FdValue::of_quorum(ProcessSet{0, 1});
  const FdValue faulty_fd = FdValue::of_quorum(ProcessSet{3});
  const auto between_01 = [](Pid from) { return from == 0 || from == 1; };
  const auto only_self3 = [](Pid from) { return from == 3; };

  // Let 0 and 1 run until the write completes; 3 receives nothing.
  for (int i = 0; i < 40 && sim.reg(0).completed().empty(); ++i) {
    sim.step(0, correct_fd, between_01);
    sim.step(1, correct_fd, between_01);
  }
  ASSERT_EQ(sim.reg(0).completed().size(), 1u);
  EXPECT_EQ(sim.reg(0).completed()[0].tag, (RegTag{1, 0}));

  // Now 3 performs a read against itself only.
  for (int i = 0; i < 20 && sim.reg(3).completed().empty(); ++i) {
    sim.step(3, faulty_fd, only_self3);
  }
  ASSERT_EQ(sim.reg(3).completed().size(), 1u);
  EXPECT_EQ(sim.reg(3).completed()[0].tag, (RegTag{0, -1}));  // initial!

  const auto verdict =
      check_register_atomicity(collect_records(sim.automata()));
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.detail.find("stale read"), std::string::npos);
}

TEST(AbdSigmaNu, SameConstructionWithIntersectingQuorumsIsAtomic) {
  // Control for the constructed counterexample: give process 3 a quorum
  // that intersects {0,1} and the stale read disappears (3 must wait for
  // 0 or 1, whose reply carries the written tag).
  std::vector<std::vector<RegOp>> workloads(4);
  workloads[0] = {{RegOp::Kind::kWrite, 7}};
  workloads[3] = {{RegOp::Kind::kRead, 0}};
  ManualSim sim(4, make_abd(4, workloads));

  const FdValue correct_fd = FdValue::of_quorum(ProcessSet{0, 1});
  const FdValue sigma_fd = FdValue::of_quorum(ProcessSet{0, 3});
  const auto between_01 = [](Pid from) { return from == 0 || from == 1; };
  const auto any = [](Pid) { return true; };

  for (int i = 0; i < 40 && sim.reg(0).completed().empty(); ++i) {
    sim.step(0, correct_fd, between_01);
    sim.step(1, correct_fd, between_01);
  }
  ASSERT_EQ(sim.reg(0).completed().size(), 1u);

  // 3 needs a reply from 0, so 0 must keep serving; deliver everything.
  for (int i = 0; i < 60 && sim.reg(3).completed().empty(); ++i) {
    sim.step(3, sigma_fd, any);
    sim.step(0, correct_fd, any);
  }
  ASSERT_EQ(sim.reg(3).completed().size(), 1u);
  EXPECT_EQ(sim.reg(3).completed()[0].tag, (RegTag{1, 0}));  // sees the write

  EXPECT_TRUE(check_register_atomicity(collect_records(sim.automata())).ok);
}

TEST(AbdSigmaNu, BenignFaultyModulesStayAtomic) {
  // Control: Sigma^nu with benign faulty modules behaves like Sigma.
  FailurePattern fp(4);
  fp.set_crash(3, 400);
  SigmaNuOptions so;
  so.stabilize_at = 60;
  so.faulty = FaultyQuorumBehavior::kBenign;
  SigmaNuOracle oracle(fp, so);
  SchedulerOptions opts;
  opts.seed = 5;
  opts.max_steps = 120'000;
  const RegisterRunResult result =
      run_register_workload(fp, oracle, alternating_workloads(4, 3), opts);
  EXPECT_TRUE(result.verdict.ok) << result.verdict.detail;
}

TEST(AbdRegister, ReadsSeeCompletedWrites) {
  const FailurePattern fp(3);
  SigmaOptions so;
  SigmaOracle oracle(fp, so);
  SchedulerOptions opts;
  opts.seed = 9;
  opts.max_steps = 60'000;
  const RegisterRunResult result =
      run_register_workload(fp, oracle, alternating_workloads(3, 2), opts);
  ASSERT_TRUE(result.all_correct_done);
  // Every read that followed this client's own write must return a tag at
  // least as large (covered by the checker, but assert the semantics
  // visibly: a client's read right after its own write sees ts >= 1).
  for (const RegOpRecord& r : result.records) {
    if (r.kind == RegOp::Kind::kRead) {
      EXPECT_GE(r.tag.ts, 1);
    }
  }
}

// --- Checker unit tests on handcrafted histories ---------------------------

RegOpRecord op(Pid client, RegOp::Kind kind, Value v, RegTag tag,
               std::int64_t invoked, std::int64_t responded) {
  return RegOpRecord{client, kind, v, tag, invoked, responded};
}

TEST(AtomicityChecker, AcceptsSequentialHistory) {
  const std::vector<RegOpRecord> records = {
      op(0, RegOp::Kind::kWrite, 7, {1, 0}, 1, 5),
      op(1, RegOp::Kind::kRead, 7, {1, 0}, 6, 9),
      op(1, RegOp::Kind::kWrite, 8, {2, 1}, 10, 14),
      op(0, RegOp::Kind::kRead, 8, {2, 1}, 15, 18),
  };
  EXPECT_TRUE(check_register_atomicity(records).ok);
}

TEST(AtomicityChecker, AcceptsInitialRead) {
  const std::vector<RegOpRecord> records = {
      op(0, RegOp::Kind::kRead, 0, {0, -1}, 1, 4),
  };
  EXPECT_TRUE(check_register_atomicity(records).ok);
}

TEST(AtomicityChecker, RejectsStaleRead) {
  const std::vector<RegOpRecord> records = {
      op(0, RegOp::Kind::kWrite, 7, {1, 0}, 1, 5),
      op(1, RegOp::Kind::kRead, 0, {0, -1}, 6, 9),  // missed the write
  };
  const auto verdict = check_register_atomicity(records);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.detail.find("stale read"), std::string::npos);
}

TEST(AtomicityChecker, RejectsReadOfUnwrittenTag) {
  const std::vector<RegOpRecord> records = {
      op(1, RegOp::Kind::kRead, 9, {3, 2}, 1, 4),
  };
  EXPECT_FALSE(check_register_atomicity(records).ok);
}

TEST(AtomicityChecker, RejectsDuplicateWriteTags) {
  const std::vector<RegOpRecord> records = {
      op(0, RegOp::Kind::kWrite, 1, {1, 0}, 1, 3),
      op(0, RegOp::Kind::kWrite, 2, {1, 0}, 4, 6),
  };
  EXPECT_FALSE(check_register_atomicity(records).ok);
}

TEST(AtomicityChecker, RejectsWriteBehindCompletedOp) {
  const std::vector<RegOpRecord> records = {
      op(0, RegOp::Kind::kWrite, 1, {2, 0}, 1, 3),
      op(1, RegOp::Kind::kWrite, 2, {1, 1}, 5, 8),  // later but smaller tag
  };
  EXPECT_FALSE(check_register_atomicity(records).ok);
}

TEST(AtomicityChecker, ConcurrentOpsMayOrderFreely) {
  // Overlapping intervals put no constraint between the two ops.
  const std::vector<RegOpRecord> records = {
      op(0, RegOp::Kind::kWrite, 1, {2, 0}, 1, 10),
      op(1, RegOp::Kind::kWrite, 2, {1, 1}, 2, 9),
  };
  EXPECT_TRUE(check_register_atomicity(records).ok);
}

TEST(AtomicityChecker, ValueMustMatchTagsWrite) {
  const std::vector<RegOpRecord> records = {
      op(0, RegOp::Kind::kWrite, 1, {1, 0}, 1, 3),
      op(1, RegOp::Kind::kRead, 42, {1, 0}, 4, 6),  // wrong value
  };
  EXPECT_FALSE(check_register_atomicity(records).ok);
}

}  // namespace
}  // namespace nucon
