// Executable Lemma 2.2: merging two mergeable finite runs yields a run of
// the same algorithm, and every participant ends in the same state as in
// its own original run.
#include "sim/merge.hpp"

#include <gtest/gtest.h>

#include "algo/mr_consensus.hpp"
#include "fd/scripted.hpp"
#include "sim/scheduler.hpp"

namespace nucon {
namespace {

constexpr Pid kN = 6;

/// The MR quorum algorithm with proposals fixed per side; side A proposes
/// 0, side B proposes 1 (a compatible joint initial configuration exists
/// by construction: it is exactly this factory).
AutomatonFactory split_factory() {
  return [](Pid p) -> std::unique_ptr<Automaton> {
    const Value proposal = p < kN / 2 ? 0 : 1;
    return std::make_unique<MrConsensus>(
        p, proposal, MrOptions{kN, MrQuorumMode::kFdQuorum});
  };
}

struct TwoRuns {
  SimResult a;
  SimResult b;
};

/// Runs the algorithm twice under the SAME failure pattern and oracle
/// (hence the same F and H), restricted to disjoint participant sets.
TwoRuns make_disjoint_runs(Oracle& oracle, const FailurePattern& fp,
                           std::uint64_t seed, std::int64_t steps) {
  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = steps;

  opts.restrict_to = ProcessSet{};
  for (Pid p = 0; p < kN / 2; ++p) opts.restrict_to.insert(p);
  SimResult a = simulate(fp, oracle, split_factory(), opts);

  opts.restrict_to = ProcessSet{};
  for (Pid p = kN / 2; p < kN; ++p) opts.restrict_to.insert(p);
  opts.seed = seed + 1;
  SimResult b = simulate(fp, oracle, split_factory(), opts);

  return {std::move(a), std::move(b)};
}

/// An (Omega, Sigma^nu)-shaped oracle in which each half trusts itself —
/// the partition-style history under which both halves make progress alone.
ScriptedOracle partition_oracle() {
  ProcessSet side_a, side_b;
  for (Pid p = 0; p < kN / 2; ++p) side_a.insert(p);
  for (Pid p = kN / 2; p < kN; ++p) side_b.insert(p);
  return ScriptedOracle([side_a, side_b](Pid p, Time) {
    const ProcessSet side = side_a.contains(p) ? side_a : side_b;
    FdValue v = FdValue::of_quorum(side);
    v.set_leader(side.min());
    return v;
  });
}

TEST(Merge, MergeableRequiresDisjointParticipants) {
  const FailurePattern fp(kN);
  auto oracle = partition_oracle();
  const TwoRuns runs = make_disjoint_runs(oracle, fp, 11, 300);
  EXPECT_TRUE(mergeable(runs.a.run, runs.b.run));
  EXPECT_FALSE(mergeable(runs.a.run, runs.a.run));
}

TEST(Merge, MergedStepsInterleaveByTime) {
  const FailurePattern fp(kN);
  auto oracle = partition_oracle();
  const TwoRuns runs = make_disjoint_runs(oracle, fp, 12, 300);
  const auto merged = merge_runs(runs.a.run, runs.b.run);
  ASSERT_TRUE(merged);
  EXPECT_EQ(merged->steps.size(),
            runs.a.run.steps.size() + runs.b.run.steps.size());
  Time prev = -1;
  for (const StepRecord& s : merged->steps) {
    EXPECT_LE(prev, s.t);
    prev = s.t;
  }
}

TEST(Merge, PreservesPerRunOrder) {
  const FailurePattern fp(kN);
  auto oracle = partition_oracle();
  const TwoRuns runs = make_disjoint_runs(oracle, fp, 13, 200);
  const auto merged = merge_runs(runs.a.run, runs.b.run);
  ASSERT_TRUE(merged);

  std::vector<StepRecord> only_a;
  for (const StepRecord& s : merged->steps) {
    if (s.p < kN / 2) only_a.push_back(s);
  }
  ASSERT_EQ(only_a.size(), runs.a.run.steps.size());
  for (std::size_t i = 0; i < only_a.size(); ++i) {
    EXPECT_EQ(only_a[i].p, runs.a.run.steps[i].p);
    EXPECT_EQ(only_a[i].t, runs.a.run.steps[i].t);
  }
}

TEST(Merge, Lemma22MergedRunIsARunAndStatesAgree) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FailurePattern fp(kN);
    auto oracle = partition_oracle();
    const TwoRuns runs = make_disjoint_runs(oracle, fp, seed, 400);

    const auto merged = merge_runs(runs.a.run, runs.b.run);
    ASSERT_TRUE(merged);

    // (a) The merging is a run: structurally valid and applicable.
    const auto violation = check_run_structure(*merged);
    EXPECT_FALSE(violation) << *violation;
    const ReplayOutcome outcome = replay(*merged, kN, split_factory());
    ASSERT_TRUE(outcome.ok) << outcome.error;

    // (b) Each participant's state in S(I) equals its state in its own
    // original run.
    for (Pid p = 0; p < kN; ++p) {
      const auto& original = p < kN / 2 ? runs.a : runs.b;
      EXPECT_EQ(outcome.automata[static_cast<std::size_t>(p)]->snapshot(),
                original.automata[static_cast<std::size_t>(p)]->snapshot())
          << "process " << p << " seed " << seed;
    }
  }
}

TEST(Merge, PartitionedHalvesDecideDifferently) {
  // The engine of Lemma 5.3: merged run where side A decides 0 and side B
  // decides 1 — legal here because the naive algorithm's quorums do not
  // intersect across sides.
  const FailurePattern fp(kN);
  auto oracle = partition_oracle();
  const TwoRuns runs = make_disjoint_runs(oracle, fp, 21, 4000);

  const auto merged = merge_runs(runs.a.run, runs.b.run);
  ASSERT_TRUE(merged);
  const ReplayOutcome outcome = replay(*merged, kN, split_factory());
  ASSERT_TRUE(outcome.ok) << outcome.error;

  const auto decisions = decisions_of(outcome.automata);
  bool decided0 = false;
  bool decided1 = false;
  for (Pid p = 0; p < kN; ++p) {
    if (decisions[static_cast<std::size_t>(p)] == 0) decided0 = true;
    if (decisions[static_cast<std::size_t>(p)] == 1) decided1 = true;
  }
  EXPECT_TRUE(decided0);
  EXPECT_TRUE(decided1);
}

TEST(Merge, RejectsDifferentPatterns) {
  const FailurePattern fp1(kN);
  FailurePattern fp2(kN);
  fp2.set_crash(0, 10);
  nucon::Run r1(fp1);
  nucon::Run r2(fp2);
  std::string error;
  EXPECT_FALSE(merge_runs(r1, r2, &error));
  EXPECT_NE(error.find("failure patterns"), std::string::npos);
}

TEST(Merge, RejectsOverlappingParticipants) {
  const FailurePattern fp(kN);
  nucon::Run r1(fp);
  r1.steps.push_back({0, std::nullopt, FdValue{}, 1});
  nucon::Run r2(fp);
  r2.steps.push_back({0, std::nullopt, FdValue{}, 2});
  std::string error;
  EXPECT_FALSE(merge_runs(r1, r2, &error));
  EXPECT_NE(error.find("intersect"), std::string::npos);
}

}  // namespace
}  // namespace nucon
