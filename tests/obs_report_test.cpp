// Sweep/bench reports (obs/report.hpp): schema validity of everything the
// runner emits, and the determinism contract the BENCH_*.json trajectory
// depends on — the report body (timings excluded) is bit-identical for
// any thread count, for each of the sweep shapes the benches run (E5d,
// E6d, E7b, scaled down).
#include "obs/report.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/sweep.hpp"

namespace nucon {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

/// E5d shape, scaled down: anuc across (n, faults) cells, a few seeds.
exp::SweepGrid e5d_small() {
  exp::SweepGrid grid;
  grid.algos = {exp::Algo::kAnuc};
  grid.ns = {3, 5};
  grid.fault_counts = {0, 1};
  grid.stabilizes = {80};
  grid.seed_begin = 1;
  grid.seed_count = 3;
  grid.max_steps = 60'000;
  return grid;
}

/// E6d shape, scaled down: the §6.3 family under the naive algorithm.
exp::SweepGrid e6_small() {
  exp::SweepGrid grid;
  grid.algos = {exp::Algo::kNaive};
  grid.ns = {4};
  grid.fault_counts = {1};
  grid.stabilizes = {900};
  grid.crash_at = 600;
  grid.seed_begin = 1;
  grid.seed_count = 4;
  grid.max_steps = 60'000;
  return grid;
}

/// E7b shape, scaled down: the oracle-free from-scratch stack.
exp::SweepGrid e7b_small() {
  exp::SweepGrid grid;
  grid.algos = {exp::Algo::kFromScratch};
  grid.ns = {3};
  grid.fault_counts = {0, 1};
  grid.stabilizes = {120};
  grid.seed_begin = 5;
  grid.seed_count = 2;
  grid.max_steps = 300'000;
  return grid;
}

TEST(ObsReportTest, RunnerWritesAValidatingReport) {
  const std::string path = testing::TempDir() + "nucon_report_" +
                           std::to_string(::getpid()) + ".json";
  exp::SweepRunner runner(2);
  runner.set_report_path(path);
  const exp::SweepResult result = runner.run(e5d_small());
  EXPECT_GT(result.aggregate.runs, 0);

  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  const auto problem = obs::validate_report_json(json);
  EXPECT_FALSE(problem.has_value()) << *problem;

  // One section per grid cell plus the "total" section.
  const std::size_t cells = 4;  // 2 ns x 2 fault counts
  std::size_t sections = 0;
  for (std::size_t at = json.find("{\"name\":"); at != std::string::npos;
       at = json.find("{\"name\":", at + 1)) {
    ++sections;
  }
  EXPECT_EQ(sections, cells + 1);
  EXPECT_NE(json.find("\"total\""), std::string::npos);

  std::remove(path.c_str());
}

TEST(ObsReportTest, ReportBodyIsBitIdenticalAcrossThreadCounts) {
  // The acceptance criterion behind every BENCH_*.json: for each sweep
  // shape the benches run, the folded report (timings excluded) from a
  // 1-thread execution equals the 8-thread one bit for bit.
  struct Shape {
    const char* name;
    exp::SweepGrid grid;
  };
  const Shape shapes[] = {
      {"E5d", e5d_small()}, {"E6d", e6_small()}, {"E7b", e7b_small()}};
  for (const Shape& shape : shapes) {
    const exp::SweepResult r1 = exp::SweepRunner(1).run(shape.grid);
    const exp::SweepResult r8 = exp::SweepRunner(8).run(shape.grid);

    obs::BenchReport a, b;
    a.name = b.name = shape.name;
    a.sweeps.push_back(obs::section_of(shape.name, "grid", r1));
    b.sweeps.push_back(obs::section_of(shape.name, "grid", r8));
    // Timings differ between executions by definition; everything else
    // may not.
    a.timings["execute"] = r1.wall_seconds;
    b.timings["execute"] = r8.wall_seconds;

    const std::string ja = obs::report_json(a, /*include_timings=*/false);
    const std::string jb = obs::report_json(b, /*include_timings=*/false);
    EXPECT_EQ(ja, jb) << shape.name
                      << " report differs between 1 and 8 threads";
    EXPECT_FALSE(obs::validate_report_json(ja).has_value());
    // And the timing-free body must not leak wall-clock fields at all.
    EXPECT_EQ(ja.find("wall_seconds"), std::string::npos);
    EXPECT_EQ(ja.find("timings"), std::string::npos);
  }
}

TEST(ObsReportTest, SectionOfMatchesAggregateCounts) {
  const exp::SweepResult result = exp::SweepRunner(2).run(e6_small());
  const obs::SweepSection s = obs::section_of("e6", "naive family", result);
  EXPECT_EQ(s.runs, result.aggregate.runs);
  EXPECT_EQ(s.undecided, result.aggregate.undecided);
  EXPECT_EQ(s.uniform_violations, result.aggregate.uniform_violations);
  EXPECT_EQ(s.nonuniform_violations, result.aggregate.nonuniform_violations);
  EXPECT_EQ(s.expectation_failures, result.aggregate.expectation_failures);
  EXPECT_DOUBLE_EQ(s.mean_decide_round, result.aggregate.decide_rounds.mean());
  EXPECT_EQ(s.metrics, result.aggregate.metrics);

  // section_of_jobs over ALL jobs folds to the same counts.
  std::vector<std::size_t> all(result.jobs.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const obs::SweepSection s2 =
      obs::section_of_jobs("e6", "naive family", result.jobs, all);
  EXPECT_EQ(s2.runs, s.runs);
  EXPECT_EQ(s2.undecided, s.undecided);
  EXPECT_EQ(s2.uniform_violations, s.uniform_violations);
  EXPECT_EQ(s2.nonuniform_violations, s.nonuniform_violations);
  EXPECT_DOUBLE_EQ(s2.mean_decide_round, s.mean_decide_round);
  EXPECT_EQ(s2.metrics, s.metrics);
}

TEST(ObsReportTest, MarkdownRendererCoversTablesAndSweeps) {
  obs::BenchReport report;
  report.name = "E99";
  report.tables.push_back(
      obs::TableSection{"demo table", {"col_a", "col_b"}, {{"1", "2"}}});
  report.sweeps.push_back(
      obs::section_of("cell-0", "spec", exp::SweepRunner(2).run(e5d_small())));
  const std::string md = obs::report_markdown(report);
  EXPECT_NE(md.find("## E99"), std::string::npos);
  EXPECT_NE(md.find("### demo table"), std::string::npos);
  EXPECT_NE(md.find("| col_a | col_b |"), std::string::npos);
  EXPECT_NE(md.find("cell-0"), std::string::npos);
}

TEST(ObsReportTest, ValidatorRejectsBrokenDocuments) {
  EXPECT_TRUE(obs::validate_report_json("").has_value());
  EXPECT_TRUE(obs::validate_report_json("not json").has_value());
  EXPECT_TRUE(obs::validate_report_json("{\"v\":99,\"name\":\"x\","
                                        "\"tables\":[],\"sweeps\":[]}")
                  .has_value());
  EXPECT_TRUE(
      obs::validate_report_json("{\"v\":1,\"tables\":[],\"sweeps\":[]}")
          .has_value());
  // A minimal conforming document passes.
  obs::BenchReport empty;
  empty.name = "empty";
  EXPECT_FALSE(
      obs::validate_report_json(obs::report_json(empty)).has_value());
}

}  // namespace
}  // namespace nucon
