// Shared helpers for the consensus-algorithm test sweeps.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "algo/harness.hpp"
#include "fd/classic.hpp"
#include "fd/composed.hpp"
#include "fd/omega.hpp"
#include "fd/sigma.hpp"
#include "fd/sigma_nu.hpp"

namespace nucon::testutil {

/// Owns the oracle stack for one run (component oracles must outlive the
/// composed one).
struct OracleStack {
  std::unique_ptr<Oracle> first;
  std::unique_ptr<Oracle> second;
  std::unique_ptr<Oracle> composed;

  Oracle& top() { return composed ? *composed : *first; }
};

inline OracleStack omega_sigma_nu_plus(const FailurePattern& fp,
                                       Time stabilize, std::uint64_t seed,
                                       FaultyQuorumBehavior behavior =
                                           FaultyQuorumBehavior::kAdversarialDisjoint) {
  OracleStack s;
  OmegaOptions oo;
  oo.stabilize_at = stabilize;
  oo.seed = seed;
  s.first = std::make_unique<OmegaOracle>(fp, oo);
  SigmaNuPlusOptions so;
  so.stabilize_at = stabilize;
  so.seed = seed + 0x9e37;
  so.faulty = behavior;
  s.second = std::make_unique<SigmaNuPlusOracle>(fp, so);
  s.composed = std::make_unique<ComposedOracle>(*s.first, *s.second);
  return s;
}

inline OracleStack omega_sigma(const FailurePattern& fp, Time stabilize,
                               std::uint64_t seed,
                               SigmaStrategy strategy = SigmaStrategy::kKernel) {
  OracleStack s;
  OmegaOptions oo;
  oo.stabilize_at = stabilize;
  oo.seed = seed;
  s.first = std::make_unique<OmegaOracle>(fp, oo);
  SigmaOptions so;
  so.stabilize_at = stabilize;
  so.seed = seed + 0x9e37;
  so.strategy = strategy;
  s.composed = nullptr;
  s.second = std::make_unique<SigmaOracle>(fp, so);
  s.composed = std::make_unique<ComposedOracle>(*s.first, *s.second);
  return s;
}

inline OracleStack omega_only(const FailurePattern& fp, Time stabilize,
                              std::uint64_t seed) {
  OracleStack s;
  OmegaOptions oo;
  oo.stabilize_at = stabilize;
  oo.seed = seed;
  s.first = std::make_unique<OmegaOracle>(fp, oo);
  return s;
}

inline OracleStack evt_strong(const FailurePattern& fp, Time stabilize,
                              std::uint64_t seed) {
  OracleStack s;
  SuspectsOptions so;
  so.stabilize_at = stabilize;
  so.seed = seed;
  s.first = std::make_unique<EvtStrongOracle>(fp, so);
  return s;
}

/// Mixed 0/1 proposals (process parity).
inline std::vector<Value> mixed_proposals(Pid n) {
  std::vector<Value> out(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) out[static_cast<std::size_t>(p)] = p % 2;
  return out;
}

struct SweepParam {
  Pid n;
  Pid faults;
  std::uint64_t seed;
};

inline std::string sweep_name(const testing::TestParamInfo<SweepParam>& info) {
  return "n" + std::to_string(info.param.n) + "_f" +
         std::to_string(info.param.faults) + "_s" +
         std::to_string(info.param.seed);
}

inline FailurePattern sweep_pattern(const SweepParam& param, Time latest_crash) {
  Rng rng(param.seed * 7919 + static_cast<std::uint64_t>(param.n) * 131 +
          static_cast<std::uint64_t>(param.faults));
  return Environment{param.n, static_cast<Pid>(param.n - 1)}.sample(
      rng, param.faults, latest_crash);
}

}  // namespace nucon::testutil
