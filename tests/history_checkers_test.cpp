// Hand-crafted histories exercising every clause of every detector-class
// checker, both passing and failing.
#include "fd/history.hpp"

#include <gtest/gtest.h>

namespace nucon {
namespace {

FailurePattern two_correct_one_faulty() {
  FailurePattern fp(3);
  fp.set_crash(2, 50);
  return fp;
}

TEST(OmegaChecker, UnanimousSuffixPasses) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_leader(2));  // early noise: trusts the faulty one
  h.add(1, 2, FdValue::of_leader(0));
  h.add(0, 10, FdValue::of_leader(1));
  h.add(1, 11, FdValue::of_leader(1));
  EXPECT_TRUE(check_omega(h, fp).ok);
}

TEST(OmegaChecker, EternalDisagreementFails) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  for (Time t = 1; t <= 10; ++t) {
    h.add(0, 2 * t, FdValue::of_leader(0));
    h.add(1, 2 * t + 1, FdValue::of_leader(1));
  }
  EXPECT_FALSE(check_omega(h, fp).ok);
}

TEST(OmegaChecker, FaultyEventualLeaderFails) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_leader(2));
  h.add(1, 2, FdValue::of_leader(2));
  EXPECT_FALSE(check_omega(h, fp).ok);
}

TEST(OmegaChecker, FaultyModulesUnconstrained) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_leader(0));
  h.add(1, 2, FdValue::of_leader(0));
  h.add(2, 3, FdValue::of_leader(2));  // faulty process trusts itself forever
  EXPECT_TRUE(check_omega(h, fp).ok);
}

TEST(OmegaChecker, NoSampleAfterViolationFails) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_leader(0));
  h.add(1, 2, FdValue::of_leader(0));
  h.add(0, 9, FdValue::of_leader(1));  // last sample of 0 disagrees
  EXPECT_FALSE(check_omega(h, fp).ok);
}

TEST(SigmaChecker, IntersectingCompleteHistoryPasses) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_quorum(ProcessSet{0, 1, 2}));
  h.add(1, 2, FdValue::of_quorum(ProcessSet{0, 2}));
  h.add(2, 3, FdValue::of_quorum(ProcessSet{0, 1}));
  h.add(0, 60, FdValue::of_quorum(ProcessSet{0, 1}));
  h.add(1, 61, FdValue::of_quorum(ProcessSet{0, 1}));
  EXPECT_TRUE(check_sigma(h, fp).ok);
}

TEST(SigmaChecker, FaultyDisjointQuorumFailsSigmaButPassesSigmaNu) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_quorum(ProcessSet{0, 1}));
  h.add(1, 2, FdValue::of_quorum(ProcessSet{0, 1}));
  h.add(2, 3, FdValue::of_quorum(ProcessSet{2}));  // faulty, disjoint
  EXPECT_FALSE(check_sigma(h, fp).ok);
  EXPECT_TRUE(check_sigma_nu(h, fp).ok);
}

TEST(SigmaNuChecker, CorrectDisjointQuorumsFail) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_quorum(ProcessSet{0}));
  h.add(1, 2, FdValue::of_quorum(ProcessSet{1}));
  const auto result = check_sigma_nu(h, fp);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("intersection"), std::string::npos);
}

TEST(SigmaNuChecker, StaleFaultyQuorumAtCorrectProcessFailsCompleteness) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  // Correct process 0 keeps outputting a quorum containing the faulty 2.
  h.add(0, 60, FdValue::of_quorum(ProcessSet{0, 2}));
  h.add(1, 61, FdValue::of_quorum(ProcessSet{0, 1}));
  const auto result = check_sigma_nu(h, fp);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("completeness"), std::string::npos);
}

TEST(SigmaNuChecker, MissingQuorumComponentFails) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_leader(0));
  EXPECT_FALSE(check_sigma_nu(h, fp).ok);
}

TEST(SigmaNuPlusChecker, LegalAdversarialHistoryPasses) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_quorum(ProcessSet{0, 1}));
  h.add(1, 2, FdValue::of_quorum(ProcessSet{0, 1}));
  h.add(2, 3, FdValue::of_quorum(ProcessSet{2}));  // faulty-only: legal
  EXPECT_TRUE(check_sigma_nu_plus(h, fp).ok);
}

TEST(SigmaNuPlusChecker, SelfInclusionViolationFails) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_quorum(ProcessSet{1}));  // 0 not in its own quorum
  h.add(1, 2, FdValue::of_quorum(ProcessSet{0, 1}));
  const auto result = check_sigma_nu_plus(h, fp);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("self-inclusion"), std::string::npos);
}

TEST(SigmaNuPlusChecker, ConditionalNonintersectionViolationFails) {
  FailurePattern fp(4);
  fp.set_crash(3, 50);
  RecordedHistory h;
  h.add(0, 1, FdValue::of_quorum(ProcessSet{0, 1}));
  h.add(1, 2, FdValue::of_quorum(ProcessSet{0, 1}));
  // Faulty process 3 outputs a quorum disjoint from {0,1} that contains
  // the CORRECT process 2: forbidden by conditional nonintersection.
  h.add(3, 3, FdValue::of_quorum(ProcessSet{2, 3}));
  h.add(2, 4, FdValue::of_quorum(ProcessSet{0, 1, 2}));
  const auto result = check_sigma_nu_plus(h, fp);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("nonintersection"), std::string::npos);
}

TEST(PerfectChecker, ExactSuspicionPasses) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_suspects(ProcessSet{}));
  h.add(0, 60, FdValue::of_suspects(ProcessSet{2}));
  h.add(1, 61, FdValue::of_suspects(ProcessSet{2}));
  EXPECT_TRUE(check_perfect(h, fp).ok);
}

TEST(PerfectChecker, PrematureSuspicionFails) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_suspects(ProcessSet{2}));  // 2 crashes at 50
  h.add(0, 60, FdValue::of_suspects(ProcessSet{2}));
  h.add(1, 61, FdValue::of_suspects(ProcessSet{2}));
  const auto result = check_perfect(h, fp);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("accuracy"), std::string::npos);
}

TEST(PerfectChecker, MissedFaultyFailsCompleteness) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 60, FdValue::of_suspects(ProcessSet{2}));
  h.add(1, 61, FdValue::of_suspects(ProcessSet{}));  // never suspects 2
  EXPECT_FALSE(check_perfect(h, fp).ok);
}

TEST(EvtPerfectChecker, EarlyNoiseAllowed) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_suspects(ProcessSet{0, 1}));  // wrong, early
  h.add(1, 2, FdValue::of_suspects(ProcessSet{1}));
  h.add(0, 60, FdValue::of_suspects(ProcessSet{2}));
  h.add(1, 61, FdValue::of_suspects(ProcessSet{2}));
  EXPECT_FALSE(check_perfect(h, fp).ok);
  EXPECT_TRUE(check_evt_perfect(h, fp).ok);
}

TEST(EvtPerfectChecker, PersistentWrongSuspicionFails) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 60, FdValue::of_suspects(ProcessSet{1, 2}));  // suspects correct 1
  h.add(1, 61, FdValue::of_suspects(ProcessSet{2}));
  EXPECT_FALSE(check_evt_perfect(h, fp).ok);
}

TEST(StrongChecker, OneNeverSuspectedPasses) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_suspects(ProcessSet{1, 2}));
  h.add(0, 60, FdValue::of_suspects(ProcessSet{2}));
  h.add(1, 61, FdValue::of_suspects(ProcessSet{2}));
  EXPECT_TRUE(check_strong(h, fp).ok);  // 0 is never suspected
}

TEST(StrongChecker, EveryCorrectSuspectedSomewhereFails) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_suspects(ProcessSet{1}));
  h.add(1, 2, FdValue::of_suspects(ProcessSet{0}));
  h.add(0, 60, FdValue::of_suspects(ProcessSet{2}));
  h.add(1, 61, FdValue::of_suspects(ProcessSet{2}));
  EXPECT_FALSE(check_strong(h, fp).ok);
  // ...but eventual weak accuracy is satisfied.
  EXPECT_TRUE(check_evt_strong(h, fp).ok);
}

TEST(EvtStrongChecker, PerpetualMutualSuspicionFails) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  for (Time t = 1; t <= 10; ++t) {
    h.add(0, 2 * t + 50, FdValue::of_suspects(ProcessSet{1, 2}));
    h.add(1, 2 * t + 51, FdValue::of_suspects(ProcessSet{0, 2}));
  }
  EXPECT_FALSE(check_evt_strong(h, fp).ok);
}

TEST(HistoryRecord, OfFiltersByProcess) {
  RecordedHistory h;
  h.add(0, 1, FdValue::of_leader(0));
  h.add(1, 2, FdValue::of_leader(1));
  h.add(0, 3, FdValue::of_leader(2));
  EXPECT_EQ(h.of(0).size(), 2u);
  EXPECT_EQ(h.of(1).size(), 1u);
  EXPECT_EQ(h.of(2).size(), 0u);
}

TEST(HistoryRecord, OfMatchesLinearScan) {
  // Regression guard for the indexed of(): must return exactly what a
  // linear filter over samples() returns, in record order.
  RecordedHistory h;
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<Pid>(i % 7), i, FdValue::of_leader(i % 3));
  }
  for (Pid p = 0; p < 9; ++p) {
    const auto got = h.of(p);
    std::vector<Sample> want;
    for (const Sample& s : h.samples()) {
      if (s.p == p) want.push_back(s);
    }
    ASSERT_EQ(got.size(), want.size()) << "p=" << p;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].t, want[i].t) << "p=" << p;
      EXPECT_EQ(got[i].value.leader(), want[i].value.leader()) << "p=" << p;
    }
  }
}

TEST(EventuallyClauses, CorrectProcessWithoutSamplesIsNeverWitnessed) {
  // Even with no violating sample anywhere, the "eventually" clause must
  // not hold vacuously: a correct process that never sampled has no
  // witness for the suffix.
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_leader(0));  // process 1 (correct) never samples
  EXPECT_FALSE(check_omega(h, fp).ok);
}

TEST(EventuallyClauses, ViolationAtTheLastSampleTimeFails) {
  // A violating sample at the very last recorded time leaves no process
  // with a strictly later witness, so the clause fails for everyone.
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 5, FdValue::of_leader(0));
  h.add(1, 5, FdValue::of_leader(1));  // disagrees at the shared last time
  EXPECT_FALSE(check_omega(h, fp).ok);
}

TEST(EventuallyClauses, CorrectProcessWithoutSamplesFailsEvtStrong) {
  // Adversarial vacuity probe: process 1 is correct but contributes no
  // samples, so strong completeness has no witness for it — the checker
  // must not pass on the strength of process 0's record alone.
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 60, FdValue::of_suspects(ProcessSet{2}));
  EXPECT_FALSE(check_evt_strong(h, fp).ok);
  EXPECT_FALSE(check_evt_perfect(h, fp).ok);
  EXPECT_FALSE(check_strong(h, fp).ok);
}

TEST(EventuallyClauses, MissingSuspectsComponentAtTheEndIsAViolation) {
  // A trailing sample without a suspects component cannot witness the
  // suffix: the clause treats it as violating, and with no later sample
  // the check fails rather than passing vacuously.
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 60, FdValue::of_suspects(ProcessSet{2}));
  h.add(1, 60, FdValue::of_suspects(ProcessSet{2}));
  h.add(1, 61, FdValue::of_leader(0));  // no suspects component, and last
  EXPECT_FALSE(check_evt_strong(h, fp).ok);
}

TEST(EventuallyClauses, EmptyCorrectSetIsVacuousAcrossAllThreeCheckers) {
  // Regression (alignment sweep): check_strong and check_evt_strong used to
  // reject the no-correct-process pattern — check_strong because
  // "correct - ever_suspected" is empty for the empty correct set,
  // check_evt_strong because its witness loop had nothing to iterate —
  // while check_omega passed it vacuously. All three now agree: no correct
  // process, no obligation.
  FailurePattern fp(2);
  fp.set_crash(0, 5);
  fp.set_crash(1, 5);

  const RecordedHistory empty;
  EXPECT_TRUE(check_omega(empty, fp).ok);
  EXPECT_TRUE(check_strong(empty, fp).ok);
  EXPECT_TRUE(check_evt_strong(empty, fp).ok);
  EXPECT_TRUE(check_diamond_s(empty, fp).ok);

  // Garbage from faulty processes changes nothing: the classes constrain
  // correct processes only.
  RecordedHistory garbage;
  garbage.add(0, 1, FdValue::of_suspects(ProcessSet{0, 1}));
  garbage.add(1, 2, FdValue::of_leader(1));
  garbage.add(0, 3, FdValue::of_suspects(ProcessSet{}));
  EXPECT_TRUE(check_omega(garbage, fp).ok);
  EXPECT_TRUE(check_strong(garbage, fp).ok);
  EXPECT_TRUE(check_evt_strong(garbage, fp).ok);
}

TEST(EventuallyClauses, DiamondSAliasMatchesEvtStrong) {
  const auto fp = two_correct_one_faulty();
  RecordedHistory h;
  h.add(0, 60, FdValue::of_suspects(ProcessSet{2}));
  h.add(1, 61, FdValue::of_suspects(ProcessSet{2}));
  EXPECT_EQ(check_diamond_s(h, fp).ok, check_evt_strong(h, fp).ok);
  EXPECT_TRUE(check_diamond_s(h, fp).ok);
}

}  // namespace
}  // namespace nucon
