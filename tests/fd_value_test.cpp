#include "util/fd_value.hpp"

#include <gtest/gtest.h>

namespace nucon {
namespace {

TEST(FdValue, EmptyHasNothing) {
  const FdValue v;
  EXPECT_FALSE(v.has_leader());
  EXPECT_FALSE(v.has_quorum());
  EXPECT_FALSE(v.has_suspects());
}

TEST(FdValue, LeaderOnly) {
  const FdValue v = FdValue::of_leader(3);
  EXPECT_TRUE(v.has_leader());
  EXPECT_EQ(v.leader(), 3);
  EXPECT_FALSE(v.has_quorum());
}

TEST(FdValue, QuorumOnly) {
  const FdValue v = FdValue::of_quorum(ProcessSet{1, 2});
  EXPECT_TRUE(v.has_quorum());
  EXPECT_EQ(v.quorum(), (ProcessSet{1, 2}));
}

TEST(FdValue, SuspectsOnly) {
  const FdValue v = FdValue::of_suspects(ProcessSet{0});
  EXPECT_TRUE(v.has_suspects());
  EXPECT_EQ(v.suspects(), ProcessSet{0});
}

TEST(FdValue, CombineDisjointComponents) {
  const FdValue pair = FdValue::combine(FdValue::of_leader(1),
                                        FdValue::of_quorum(ProcessSet{1, 2}));
  EXPECT_TRUE(pair.has_leader());
  EXPECT_TRUE(pair.has_quorum());
  EXPECT_EQ(pair.leader(), 1);
  EXPECT_EQ(pair.quorum(), (ProcessSet{1, 2}));
  EXPECT_FALSE(pair.has_suspects());
}

TEST(FdValue, CombineRightOverridesLeft) {
  const FdValue v = FdValue::combine(FdValue::of_leader(1), FdValue::of_leader(2));
  EXPECT_EQ(v.leader(), 2);
}

TEST(FdValue, Equality) {
  EXPECT_EQ(FdValue::of_leader(1), FdValue::of_leader(1));
  EXPECT_NE(FdValue::of_leader(1), FdValue::of_leader(2));
  EXPECT_NE(FdValue::of_leader(1), FdValue::of_quorum(ProcessSet{1}));
  EXPECT_EQ(FdValue{}, FdValue{});
}

TEST(FdValue, EncodeDecodeRoundTrip) {
  FdValue all;
  all.set_leader(5);
  all.set_quorum(ProcessSet{0, 5, 9});
  all.set_suspects(ProcessSet{1});

  for (const FdValue& v :
       {FdValue{}, FdValue::of_leader(0), FdValue::of_quorum(ProcessSet{}),
        FdValue::of_suspects(ProcessSet{63}), all}) {
    ByteWriter w;
    v.encode(w);
    const Bytes buf = w.take();
    ByteReader r(buf);
    const auto got = FdValue::decode(r);
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, v);
    EXPECT_TRUE(r.done());
  }
}

TEST(FdValue, DecodeRejectsBadFlags) {
  Bytes data = {0xFF};
  ByteReader r(data);
  EXPECT_FALSE(FdValue::decode(r));
}

TEST(FdValue, DecodeRejectsTruncated) {
  ByteWriter w;
  FdValue::of_quorum(ProcessSet{1}).encode(w);
  Bytes data = w.take();
  data.pop_back();
  ByteReader r(data);
  EXPECT_FALSE(FdValue::decode(r));
}

TEST(FdValue, ToStringMentionsComponents) {
  FdValue v;
  v.set_leader(2);
  v.set_quorum(ProcessSet{0, 1});
  const std::string s = v.to_string();
  EXPECT_NE(s.find("leader=2"), std::string::npos);
  EXPECT_NE(s.find("quorum={0,1}"), std::string::npos);
}

}  // namespace
}  // namespace nucon
